package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Table-driven semantics suite for the TryRWLock contract: every lock
// in the registry (multi-writer locks under both MCS and Anderson
// arbitration, the baselines, the Bravo wrappers) plus the
// single-writer cores must implement genuinely non-blocking
// TryLock/TryRLock with the same three-state truth table, and the
// probes must be allocation-free so a caller can poll them on a hot
// path.

// tryLocks returns every registry lock asserted to TryRWLock — the
// assertion itself is part of the suite: a lock that drops the
// interface fails here at compile time of the map literal.
func tryLocks(opts ...Option) map[string]interface {
	RWLock
	TryRWLock
} {
	out := map[string]interface {
		RWLock
		TryRWLock
	}{}
	for name, l := range locks(opts...) {
		out[name] = l.(interface {
			RWLock
			TryRWLock
		})
	}
	for name, l := range singleWriterLocks(opts...) {
		out[name] = l.(interface {
			RWLock
			TryRWLock
		})
	}
	return out
}

// TestTryLockTruthTable pins the three states of the contract on
// every lock × both wait strategies:
//
//	free       → TryLock ok, TryRLock ok
//	write-held → TryLock fails, TryRLock fails
//	read-held  → TryLock fails, TryRLock ok (readers share)
//
// and that a failed probe leaves the lock fully usable (the undo
// paths — zero-length reader passages, bias restores, released
// arbitration slots — must be complete).
func TestTryLockTruthTable(t *testing.T) {
	for _, strat := range strategies() {
		opt := WithWaitStrategy(strat)
		for name, l := range tryLocks(opt) {
			l := l
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()

				// Free.
				wt, ok := l.TryLock()
				if !ok {
					t.Fatal("TryLock failed on a free lock")
				}

				// Write-held.
				if _, ok := l.TryLock(); ok {
					t.Fatal("TryLock succeeded while write-held")
				}
				if _, ok := l.TryRLock(); ok {
					t.Fatal("TryRLock succeeded while write-held")
				}
				l.Unlock(wt)

				// Free again (the failed probes must have undone
				// themselves).
				rt, ok := l.TryRLock()
				if !ok {
					t.Fatal("TryRLock failed on a free lock")
				}

				// Read-held.
				if _, ok := l.TryLock(); ok {
					t.Fatal("TryLock succeeded while read-held")
				}
				rt2, ok := l.TryRLock()
				if !ok {
					t.Fatal("TryRLock failed while read-held (readers must share)")
				}
				l.RUnlock(rt2)
				l.RUnlock(rt)

				// Fully released: the blocking paths must interoperate
				// with probe-acquired state.
				l.Unlock(l.Lock())
				l.RUnlock(l.RLock())
				wt2, ok := l.TryLock()
				if !ok {
					t.Fatal("TryLock failed after a full probe/blocking cycle")
				}
				l.Unlock(wt2)
			})
		}
	}
}

// TestTryLockNonBlocking proves the probes cannot wait: with the lock
// write-held, a probing goroutine must come back within the test's
// generous bound even under SpinThenPark, where any accidental wait
// would park it indefinitely.
func TestTryLockNonBlocking(t *testing.T) {
	for name, l := range tryLocks(WithWaitStrategy(SpinThenPark)) {
		l := l
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			wt, _ := l.TryLock()
			done := make(chan struct{})
			go func() {
				for i := 0; i < 100; i++ {
					if _, ok := l.TryLock(); ok {
						t.Error("TryLock succeeded while held")
					}
					if _, ok := l.TryRLock(); ok {
						t.Error("TryRLock succeeded while write-held")
					}
				}
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("probe blocked: TryLock/TryRLock parked somewhere")
			}
			l.Unlock(wt)
		})
	}
}

// TestTryLockAllocFree: the probes are poll-path material, so a
// success/release cycle must not allocate in steady state (MCS nodes
// recycle through the pool; tokens are values).  Failed probes are
// measured too — a prober that allocates on every miss would bloat a
// polling loop.
func TestTryLockAllocFree(t *testing.T) {
	for name, l := range tryLocks() {
		l := l
		t.Run(name, func(t *testing.T) {
			// Warm the node pools so steady state is what is measured.
			for i := 0; i < 10; i++ {
				if wt, ok := l.TryLock(); ok {
					l.Unlock(wt)
				}
			}
			if n := testing.AllocsPerRun(100, func() {
				wt, ok := l.TryLock()
				if !ok {
					t.Fatal("TryLock failed on a free lock")
				}
				l.Unlock(wt)
			}); n != 0 {
				t.Fatalf("TryLock/Unlock allocates %.1f objects per cycle", n)
			}
			// The epoch wrapper's read probe leases a stamp slot, and
			// under -race that lease rides sync.Pool, whose deliberate
			// Put drops force slot re-registrations — the same noise
			// TestEpochFastReadZeroAlloc quantifies; the exact zero is
			// pinned by the non-race build, where the full lease path
			// (per-P cache + pool steady state) is active.
			rlimit := 0.0
			if raceEnabled {
				if _, ok := l.(epochStatser); ok {
					rlimit = 3.0
				}
			}
			if n := testing.AllocsPerRun(100, func() {
				rt, ok := l.TryRLock()
				if !ok {
					t.Fatal("TryRLock failed on a free lock")
				}
				l.RUnlock(rt)
			}); n > rlimit {
				t.Fatalf("TryRLock/RUnlock allocates %.1f objects per cycle", n)
			}
			wt, _ := l.TryLock()
			if n := testing.AllocsPerRun(100, func() {
				if _, ok := l.TryLock(); ok {
					t.Fatal("TryLock succeeded while held")
				}
				if _, ok := l.TryRLock(); ok {
					t.Fatal("TryRLock succeeded while write-held")
				}
			}); n != 0 {
				t.Fatalf("failed probes allocate %.1f objects per cycle", n)
			}
			l.Unlock(wt)
		})
	}
}

// TestTryLockHammer races probes against blocking acquirers on every
// lock: successful TryLocks mutate plain data (-race proves they are
// really exclusive), successful TryRLocks read it, and the final
// count proves probe passages are neither lost nor duplicated.
func TestTryLockHammer(t *testing.T) {
	for _, strat := range strategies() {
		opt := WithWaitStrategy(strat)
		for name, l := range tryLocks(opt) {
			l := l
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()
				var data int64 // plain, guarded only by l
				var writes atomic.Int64
				var wg sync.WaitGroup
				const lap = 300
				for i := 0; i < 2; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for k := 0; k < lap; k++ {
							tok := l.Lock()
							data++
							writes.Add(1)
							l.Unlock(tok)
						}
					}()
					wg.Add(1)
					go func() {
						defer wg.Done()
						for k := 0; k < lap; k++ {
							if tok, ok := l.TryLock(); ok {
								data++
								writes.Add(1)
								l.Unlock(tok)
							}
						}
					}()
					wg.Add(1)
					go func() {
						defer wg.Done()
						for k := 0; k < lap; k++ {
							if tok, ok := l.TryRLock(); ok {
								_ = data
								l.RUnlock(tok)
							}
						}
					}()
				}
				wg.Wait()
				if data != writes.Load() {
					t.Fatalf("data = %d, writes = %d (probe passage lost or doubled)", data, writes.Load())
				}
			})
		}
	}
}

// TestBravoTryLockRestoresBias: a Bravo TryLock that finds fast-path
// readers published in the slot table must fail AND restore the
// reader bias — a probe that permanently disabled the fast path would
// silently degrade every future reader.
func TestBravoTryLockRestoresBias(t *testing.T) {
	b := NewBravoMWSF()
	// Install a fast-path reader: with the bias up, RLock claims a
	// slot.
	rt := b.RLock()
	if rt.side != bravoFastSide {
		t.Skip("reader did not take the fast path (table contention)")
	}
	if _, ok := b.TryLock(); ok {
		t.Fatal("TryLock succeeded with a fast-path reader inside")
	}
	if !b.rbias.Load() {
		t.Fatal("failed TryLock left the reader bias revoked")
	}
	// The fast path must still be live for the next reader.
	rt2 := b.RLock()
	if rt2.side != bravoFastSide {
		t.Fatal("reader pushed off the fast path after a failed TryLock")
	}
	b.RUnlock(rt2)
	b.RUnlock(rt)
	// With no readers published, the probe must succeed and lower the
	// bias.
	wt, ok := b.TryLock()
	if !ok {
		t.Fatal("TryLock failed on an idle Bravo lock")
	}
	if b.rbias.Load() {
		t.Fatal("successful TryLock left the reader bias raised")
	}
	b.Unlock(wt)
}

// TestBravoTryRLockVsRevocation races TryRLock probes against
// writers: the probe claims a slot, re-checks the bias, and must back
// out when a revocation snuck in between — any miss shows up as a
// reader inside a writer's CS, which -race detects on the plain data
// word.
func TestBravoTryRLockVsRevocation(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			b := NewBravoMWSF(WithWaitStrategy(strat))
			var data int64 // plain, guarded only by b
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if tok, ok := b.TryRLock(); ok {
							_ = data
							b.RUnlock(tok)
						}
					}
				}()
			}
			for k := 0; k < 300; k++ {
				tok := b.Lock() // revokes the bias and drains the table
				data++
				b.Unlock(tok)
			}
			close(stop)
			wg.Wait()
		})
	}
}
