// Package rwlock provides reader-writer locks with constant RMR
// (remote-memory-reference) complexity on cache-coherent machines,
// implementing the algorithms of Bhatt & Jayanti, "Constant RMR
// Solutions to Reader Writer Synchronization" (Dartmouth TR2010-662,
// PODC 2010), plus the baselines they are evaluated against.
//
// Three priority disciplines are offered, exactly as in the paper:
//
//   - NewMWSF (Theorem 3): no priority; starvation freedom for both
//     classes, FCFS among writers, FIFE among readers.
//   - NewMWRP (Theorem 4): reader priority (RP1/RP2); writers may
//     starve under a continuous reader load.
//   - NewMWWP (Theorem 5): writer priority (WP1/WP2); readers may
//     starve under a continuous writer load.
//
// The single-writer cores (NewSWWP, NewSWRP — the paper's Figures 1
// and 2) are exported as well: when the application has one designated
// writer they avoid the multi-writer serialization layer entirely.
//
// # Writer arbitration
//
// The multi-writer locks serialize writers through an internal
// mutual-exclusion lock M, which the paper's proofs only require to
// be FCFS, starvation-free, and O(1) RMR per passage.  By default
// that layer is an unbounded MCS queue lock (mcs.go): any number of
// goroutines may attempt to write concurrently, so the constructors
// take no sizing parameter.  WithBoundedWriters(n) selects the
// paper's fixed-capacity Anderson array lock instead, whose admission
// gate caps concurrent write attempts at n — an explicit
// admission-control choice, not a correctness requirement (see
// AndersonLock for the gate's RMR accounting).  WithCombiningWriters
// layers a flat-combining batcher over either: writes submitted
// through the closure path (Write, Guard.Write) are executed in
// batches by one writer per acquisition of M, trading strict FCFS
// order (batches run in publication order) for one handoff per batch
// (see combiner.go).
//
// # Reader fast paths
//
// Two optional wrappers layer multicore reader scalability over any
// of the multi-writer locks; both trade strict arrival-order fairness
// while their fast path is open, and both preserve mutual exclusion
// and the wrapped lock's progress guarantees:
//
//   - NewBravo (bravo.go) keeps a distributed visible-readers table:
//     while the lock is read-biased a reader publishes itself with
//     one CAS in a private cache line and skips the inner lock; a
//     writer revokes the bias and drains the table.  One shared-word
//     RMW per read passage.
//   - NewEpoch (epoch.go) removes even that: readers stamp a padded
//     per-slot epoch word with a plain store and recheck the global
//     epoch — zero shared-word RMWs per read passage — while writers
//     advance the epoch and wait out a grace period.  The grace
//     machinery additionally buys deferred version reclamation
//     (Retire/VersionRetirer): old versions of the protected data are
//     freed only after a grace period in which no reader can still
//     observe them, swept at the writer arbitration layer's batch
//     boundary — the update-age vs retained-memory trade measured by
//     the age-frontier scenario.  WithEpochReclaimEvery sets the
//     sweep cadence.
//
// Pick Bravo when writers are frequent enough that grace waits would
// dominate (its revocation throttle adapts the bias to the write
// rate); pick Epoch at very high read ratios or when deferred
// reclamation is wanted (its fast path reopens unconditionally at
// every batch boundary, so there is no revocation dead zone).
//
// # Serving tier: shared tables and slim locks
//
// Both fast paths were designed for a handful of heavily contended
// locks; a serving tier inverts that — 10^5 to 10^6 lightly contended
// lock instances striping a key space (see the rwmap package).  At
// that scale the per-lock footprint dominates: a private Bravo table
// or Epoch slot array costs kilobytes per instance.  Two mechanisms
// shrink it:
//
//   - WithSharedReaderTable(tbl) makes a Bravo or Epoch wrapper
//     publish readers in a shared ReaderTable arena instead of a
//     private one, following the global-table design of BRAVO
//     (arXiv:1810.01553).  Slots carry owner identities, so a writer
//     drains only its own lock's readers; collisions between locks
//     cost a spurious slow-path read, never correctness.  Per-lock
//     cost drops to the wrapper header plus one table shared by the
//     whole grid.
//   - NewSlimBravo and NewSlimEpoch are 16-byte packed variants of
//     the same two protocols: one atomic word of state plus a
//     reference into a process-wide table registry.  They give up the
//     pluggable inner lock and the option set of the full wrappers to
//     hit the allocator's smallest size class — the build the
//     10^6-stripe grids use.
//
// The zipf-grid benchmark scenario measures the resulting trade:
// bytes per lock instance (private vs shared vs slim) against hot-key
// read throughput under Zipfian traffic.
//
// # Tokens
//
// Unlike sync.RWMutex, these algorithms require a few words of
// per-attempt state to flow from the acquire to the matching release
// (the paper's processes keep them in local variables across the
// critical section).  Acquire methods therefore return a small value
// token that must be passed to the matching release:
//
//	tok := l.RLock()
//	... read shared state ...
//	l.RUnlock(tok)
//
// Tokens are plain values (no allocation) and make the lock usable
// from any goroutine — there is no goroutine-local magic and no
// requirement that the releasing goroutine be the acquiring one.
//
// # Waiting
//
// The paper's processes busy-wait.  Every wait in this package goes
// through a wait cell — one padded atomic word with a wait side and a
// set+wake side — whose behavior is selected per lock with
// WithWaitStrategy:
//
//   - SpinYield (default): re-check the word, runtime.Gosched every
//     iteration.  This preserves the algorithms' structure and cost
//     model exactly: each re-check is one read of one cached word
//     that only the wake-up write invalidates, so passages stay O(1)
//     RMRs on cache-coherent machines.
//   - SpinThenPark: bounded local spinning, then park the goroutine
//     on the cell's semaphore; the signalling side's write doubles as
//     the wake.  Choose this when goroutines can outnumber
//     GOMAXPROCS — spinning waiters would burn the scheduler quanta
//     the lock holder needs — at the price of a slightly longer
//     wake-to-run latency when the machine is idle.
//
// Parking does not change the RMR accounting: the constant-RMR
// property is a bound on cache traffic per passage, and a parked
// waiter generates none at all — the pre-park spin performs the same
// O(1) re-reads the paper charges, the sleep is memory-silent, and
// the wake adds one semaphore post to the signaller's existing O(1)
// store.  What parking trades is latency, not traffic.
//
// # Deadline-aware acquisition
//
// Every lock additionally implements TryRWLock (non-blocking TryLock
// and TryRLock) and CtxRWLock (LockCtx and RLockCtx, which abort
// their wait when the context is cancelled), and every closure-path
// lock implements CtxFuncWriter (WriteCtx).  The paper's algorithms
// were not designed to abort — several of their steps are
// irreversible — so each path documents its commitment points:
//
//   - Readers abort cleanly everywhere.  A cancelled reader has at
//     most registered in a reader count; it retires through the
//     ordinary reader-exit protocol (a zero-length read passage), so
//     last-reader promotion handoffs stay exact.
//   - A writer's point of no return is the single-writer doorway
//     (the direction-bit toggle) and, below it, the arbitration
//     grant: an MCS waiter can abort while queued (its node is
//     adopted and recycled by the next releaser), an Anderson waiter
//     only before its ticket, and a combiner publisher only before
//     the publication CAS — a published closure always executes.
//   - TryLock probes availability (arbitration free AND no readers
//     registered) before committing through the doorway, so it is
//     conservative: it may report busy in schedules where a blocking
//     Lock would have been granted immediately.
//
// See the TryRWLock and CtxRWLock interface docs for the exact
// contracts, including how grant-vs-cancel races resolve and which
// ordering details of the paper (MWWP's early doorway, strict FCFS
// under combining) the abortable paths relax.
//
// # Observability
//
// Every constructor accepts WithStats(*LockStats), attaching a
// cache-padded block of atomic counters (acquire/contention tallies
// per mode, fast-path revocations, epoch reclamation, combiner
// batching, park/unpark traffic) plus sampled wait- and hold-time
// histograms.  A wrapper and its inner lock built from one option
// list share one block, so each passage is counted once at the layer
// that completed it.  Without the option the seam is a nil check on
// paths the hot passages already execute — the uninstrumented build
// measures identically to one compiled without the seam.  LockStats
// is read with Snapshot (coherent under concurrent traffic) and
// checked with CheckCoherence; the rwstats package exports snapshots
// over expvar, Prometheus text format, and JSON, and adds a stall
// watchdog.  The Slim locks and the classical baselines live outside
// the seam: they accept the option but count nothing (observe a Slim
// grid through rwmap.Map.Stats and rwmap.Map.Heatmap instead).
package rwlock

import "context"

// RWLock is the interface implemented by every lock in this package.
//
// The zero value of the implementations is NOT ready for use; always
// construct locks with their New functions (the paper's variables have
// nonzero initial values, e.g. Gate[0] = true).
type RWLock interface {
	// Lock acquires the lock in write (exclusive) mode.
	Lock() WToken
	// Unlock releases write mode; it must receive the token returned
	// by the matching Lock.
	Unlock(WToken)
	// RLock acquires the lock in read (shared) mode.
	RLock() RToken
	// RUnlock releases read mode; it must receive the token returned
	// by the matching RLock.
	RUnlock(RToken)
}

// TryRWLock is implemented by every lock in this package whose
// acquisitions have genuinely non-blocking variants.  TryLock and
// TryRLock never wait: they either take the lock — returning the
// token the matching Unlock/RUnlock needs — or report it busy, in a
// bounded number of steps with no allocation.
//
// "Busy" is evaluated against the lock's internal commitment points,
// which makes Try* slightly conservative rather than slightly
// blocking: a writer's TryLock probes that no writer holds or queues
// for the arbitration mutex AND that no reader is registered, and
// only then commits through the (irreversible) writer doorway.  A
// reader that registers between the probe and the commit waits out a
// bounded zero-length writer passage rather than blocking the caller
// indefinitely — see each lock's method doc.  On /bounded locks a
// full Anderson admission gate also counts as busy.
type TryRWLock interface {
	RWLock
	// TryLock attempts write mode without blocking; ok reports
	// whether the lock was taken.  On success the token must reach
	// Unlock.
	TryLock() (WToken, bool)
	// TryRLock attempts read mode without blocking; ok reports
	// whether the lock was taken.  On success the token must reach
	// RUnlock.
	TryRLock() (RToken, bool)
}

// CtxRWLock is implemented by every lock in this package whose
// acquisitions can be bounded by a context.  LockCtx/RLockCtx behave
// exactly like Lock/RLock until ctx is cancelled; then they abort the
// wait, undo any partial registration, and return ctx.Err().  The
// contract is exactly two-valued: a non-nil error means the caller
// does NOT hold the lock (and owes no release), a nil return means it
// does.  Cancellation races with the wake that would have granted the
// lock are resolved in the grant's favor — a LockCtx may return nil
// on an already-cancelled context when the handoff was in flight —
// so callers re-check their context after acquisition when that
// matters.
//
// Each discipline has a point of no return past which cancellation
// no longer wins: the MCS grant CAS and the Anderson ticket on the
// arbitration layer, the single-writer doorway on the core layer
// (once the direction bit D toggles, the writer is committed — the
// remaining waits are bounded by the readers already inside).
// Readers, by contrast, are abortable everywhere: an aborted reader
// retires through the ordinary reader-exit protocol (a zero-length
// read passage), so counts and promotion handoffs stay exact.
//
// On MWWP, LockCtx relaxes one ordering detail of the paper's Figure
// 4: the blocking Lock performs its doorway BEFORE queueing on the
// arbitration mutex, which lets a whole convoy of queued writers
// close the reader gates early; LockCtx must remain abortable while
// queued, so it performs the doorway AFTER the mutex grant.  Mutual
// exclusion, starvation-freedom, and writer priority while any
// writer is inside are unaffected; only the early cross-handoff gate
// closing is narrowed for ctx-path writers.
type CtxRWLock interface {
	RWLock
	// LockCtx acquires write mode, aborting with ctx.Err() if ctx is
	// cancelled while waiting.
	LockCtx(ctx context.Context) (WToken, error)
	// RLockCtx acquires read mode, aborting with ctx.Err() if ctx is
	// cancelled while waiting.
	RLockCtx(ctx context.Context) (RToken, error)
}

// RToken carries a read attempt's state (the paper's reader-local
// variables d and, for reader-priority locks, the attempt pid; for
// the epoch fast path, the leased stamp slot) from RLock to RUnlock.
// Treat it as opaque.
type RToken struct {
	side int32
	id   int64
	// eslot is the epoch fast path's leased stamp slot, carried in the
	// token so RUnlock reaches the slot directly instead of re-loading
	// the registry; nil on every other path.
	eslot *epochSlot
}

// WToken carries a write attempt's state (the paper's writer-local
// variables prevD/currD, the attempt pid, and the writer-arbitration
// slot — an MCS queue node or an Anderson array index, depending on
// how the lock was constructed) from Lock to Unlock.  Treat it as
// opaque.
type WToken struct {
	prev int32
	cur  int32
	slot wslot
	id   int64
}

// wwBit is the fetch&add unit of the writer-waiting component in the
// paper's packed [writer-waiting, reader-count] words: reader count in
// bits 0..31, writer-waiting flag at bit 32.  (Both components are
// manipulated only by atomic adds of +-1 and +-wwBit, and the reader
// count never goes negative, so the components cannot interfere below
// 2^31 concurrent readers.)
const wwBit = int64(1) << 32

// xTrue encodes the value "true" of the Figure 2 CAS variable X
// (domain PID ∪ {true}); attempt pids are positive.
const xTrue = int64(-1)

// W-token sentinels of Figure 4 (domain PID ∪ {false} ∪ {0,1}).
const (
	tokenFalse = int64(-2)
	tokenSide0 = int64(-3)
	tokenSide1 = int64(-4)
)

func tokenSide(d int32) int64 {
	if d == 0 {
		return tokenSide0
	}
	return tokenSide1
}

func isSideToken(t int64) bool { return t == tokenSide0 || t == tokenSide1 }

func sideOfToken(t int64) int32 {
	if t == tokenSide0 {
		return 0
	}
	return 1
}
