package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// epochLocks names the Epoch configurations the focused tests below
// drive; the generic exclusion/trylock/ctx suites cover Epoch through
// the shared locks() registry in rwlock_test.go.
func epochLocks(opts ...Option) map[string]*Epoch {
	return map[string]*Epoch{
		"Epoch(MWSF)": NewEpochMWSF(opts...),
		"Epoch(MWRP)": NewEpochMWRP(opts...),
		"Epoch(MWWP)": NewEpochMWWP(opts...),
	}
}

// TestEpochFastPathTokenTag: an uncontended read enters through the
// stamp fast path (the token carries the epoch side tag), and the
// first read AFTER a write is back on the fast path immediately — the
// batch-boundary hook reopens it unconditionally, the behavior that
// separates Epoch from Bravo's re-arm throttle.
func TestEpochFastPathTokenTag(t *testing.T) {
	for name, e := range epochLocks() {
		t.Run(name, func(t *testing.T) {
			rt := e.RLock()
			if rt.side != epochFastSide {
				t.Fatalf("uncontended RLock took the slow path (side %d)", rt.side)
			}
			e.RUnlock(rt)
			e.Unlock(e.Lock())
			rt = e.RLock()
			if rt.side != epochFastSide {
				t.Fatalf("first RLock after a write took the slow path (side %d): boundary did not reopen the epoch", rt.side)
			}
			e.RUnlock(rt)
		})
	}
}

// TestEpochFastReadZeroAlloc: the stamp fast path must not allocate —
// the slot lease is a pool hit in the steady state and the token is a
// value.  This is the Go-side half of the zero-cost claim; the
// zero-RMW half is pinned on the simulator in internal/core.
func TestEpochFastReadZeroAlloc(t *testing.T) {
	for name, e := range epochLocks() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ { // warm the pool and the registry
				e.RUnlock(e.RLock())
			}
			// Exactly zero in a normal build — the build where the whole
			// lease path (per-P cache + pool steady state) is active, so
			// a real per-op allocation is caught there.  Under -race the
			// per-P cache is off and sync.Pool deliberately drops ~1/4
			// of Puts, and each dropped slot re-registers at ~3 mallocs
			// (slot, registry slice, slice header) — ~0.75 mallocs/op on
			// average.  AllocsPerRun reports truncated integer
			// mallocs/runs, so the observable values are 0.00 or 1.00
			// around that mean; allow up to 3 (several sigma of drop
			// noise) rather than pretending the bound is sub-integer.
			limit := 0.0
			if raceEnabled {
				limit = 3.0
			}
			if n := testing.AllocsPerRun(100, func() {
				e.RUnlock(e.RLock())
			}); n > limit {
				t.Fatalf("fast read allocates %.2f objects per op, want 0", n)
			}
		})
	}
}

// TestEpochWriterWaitsForFastReader: the grace wait is the mutual
// exclusion seam — a writer must not enter while a fast-path reader
// is stamped in, and must enter promptly once the reader leaves.
func TestEpochWriterWaitsForFastReader(t *testing.T) {
	for _, strat := range strategies() {
		for name, e := range epochLocks(WithWaitStrategy(strat)) {
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				rt := e.RLock()
				if rt.side != epochFastSide {
					t.Fatal("reader did not take the fast path")
				}
				var entered atomic.Bool
				done := make(chan WToken)
				go func() {
					wt := e.Lock()
					entered.Store(true)
					done <- wt
				}()
				time.Sleep(10 * time.Millisecond)
				if entered.Load() {
					t.Fatal("writer entered while a fast-path reader was inside")
				}
				e.RUnlock(rt)
				select {
				case wt := <-done:
					e.Unlock(wt)
				case <-time.After(5 * time.Second):
					t.Fatal("writer never entered after the fast reader left")
				}
			})
		}
	}
}

// TestEpochTryLockNeverWaitsOnReaders: TryLock scans the stamp slots
// instead of draining them — with a fast reader inside it must fail
// promptly, restore the epoch's parity (the fast path stays open for
// new readers), and leave the lock fully functional.
func TestEpochTryLockNeverWaitsOnReaders(t *testing.T) {
	for name, e := range epochLocks() {
		t.Run(name, func(t *testing.T) {
			rt := e.RLock()
			if rt.side != epochFastSide {
				t.Fatal("reader did not take the fast path")
			}
			start := time.Now()
			if _, ok := e.TryLock(); ok {
				t.Fatal("TryLock succeeded against a fast-path reader")
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Fatalf("TryLock blocked %v against a fast-path reader", elapsed)
			}
			// Parity must be restored: a NEW reader takes the fast path
			// while the first is still inside.
			rt2 := e.RLock()
			if rt2.side != epochFastSide {
				t.Fatal("failed TryLock left the fast path closed")
			}
			e.RUnlock(rt2)
			e.RUnlock(rt)
			wt, ok := e.TryLock()
			if !ok {
				t.Fatal("TryLock failed on a quiescent lock")
			}
			e.Unlock(wt)
		})
	}
}

// TestEpochTryRLockUnderWriter: while a writer holds the lock the
// epoch is odd, so TryRLock must fail through the inner probe without
// blocking on the grace machinery — and succeed again after the
// writer leaves, through the fast path.
func TestEpochTryRLockUnderWriter(t *testing.T) {
	for name, e := range epochLocks() {
		t.Run(name, func(t *testing.T) {
			wt := e.Lock()
			start := time.Now()
			if _, ok := e.TryRLock(); ok {
				t.Fatal("TryRLock succeeded under a writer")
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Fatalf("TryRLock blocked %v under a writer", elapsed)
			}
			e.Unlock(wt)
			rt, ok := e.TryRLock()
			if !ok {
				t.Fatal("TryRLock failed on a quiescent lock")
			}
			if rt.side != epochFastSide {
				t.Fatal("post-writer TryRLock missed the fast path")
			}
			e.RUnlock(rt)
		})
	}
}

// TestEpochRetireReclaim: the grace rule.  A version retired inside
// write N is still retained at N's boundary (its grace period is the
// one N's own drain opened — no later drain has certified it dead)
// and reclaimed at write N+1's boundary.  Counters must balance.
func TestEpochRetireReclaim(t *testing.T) {
	e := NewEpochMWSF()
	v1 := make([]byte, 100)
	wt := e.Lock()
	e.Retire(v1, len(v1))
	e.Unlock(wt)
	st, ok := e.EpochStats()
	if !ok {
		t.Fatal("EpochStats not ok on *Epoch")
	}
	if st.Retired != 1 || st.Reclaimed != 0 || st.RetainedVersions != 1 || st.RetainedBytes != 100 {
		t.Fatalf("after retiring write: %+v", st)
	}
	v2 := make([]byte, 40)
	wt = e.Lock()
	e.Retire(v2, len(v2))
	e.Unlock(wt)
	st, _ = e.EpochStats()
	if st.Retired != 2 || st.Reclaimed != 1 || st.RetainedVersions != 1 || st.RetainedBytes != 40 {
		t.Fatalf("after second retiring write: %+v", st)
	}
	if st.MaxRetainedVersions != 2 || st.MaxRetainedBytes != 140 {
		t.Fatalf("high-water marks: %+v", st)
	}
	// A write with nothing retired still sweeps the leftover.
	e.Unlock(e.Lock())
	st, _ = e.EpochStats()
	if st.Reclaimed != 2 || st.RetainedVersions != 0 || st.RetainedBytes != 0 {
		t.Fatalf("after draining write: %+v", st)
	}
}

// TestEpochReclaimEveryDefersSweep: WithEpochReclaimEvery(k) must hold
// retired versions across boundaries that are not multiples of k —
// the lazy end of the age-memory frontier — and release the backlog
// when the cadence lands.
func TestEpochReclaimEveryDefersSweep(t *testing.T) {
	e := NewEpochMWSF(WithEpochReclaimEvery(4))
	for i := 0; i < 3; i++ {
		wt := e.Lock()
		e.Retire(make([]byte, 10), 10)
		e.Unlock(wt)
	}
	st, _ := e.EpochStats()
	if st.Boundaries != 3 || st.Reclaimed != 0 || st.RetainedVersions != 3 {
		t.Fatalf("before the cadence boundary: %+v", st)
	}
	e.Unlock(e.Lock()) // boundary 4: the sweep runs
	st, _ = e.EpochStats()
	if st.Reclaimed != 3 || st.RetainedVersions != 0 {
		t.Fatalf("at the cadence boundary: %+v", st)
	}
}

// TestEpochCombiningOneGracePerBatch: under flat-combining
// arbitration the epoch advance and grace wait run once per BATCH
// (the batch's first section pays; the boundary hook reopens), so at
// quiescence GraceWaits must equal the combiner's batch count while
// the op count says how many writes those grace waits covered — the
// amortization the tentpole exists for.
func TestEpochCombiningOneGracePerBatch(t *testing.T) {
	e := NewEpochMWSF(WithCombiningWriters())
	const writers, laps = 16, 200
	var data int64 // plain, guarded by the lock: -race checks exclusion
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < laps; k++ {
				e.Write(func() { data++ })
			}
		}()
	}
	wg.Wait()
	if data != writers*laps {
		t.Fatalf("data = %d, want %d", data, writers*laps)
	}
	cs, ok := e.CombinerStats()
	if !ok {
		t.Fatal("CombinerStats not forwarded from the combining inner lock")
	}
	st, _ := e.EpochStats()
	if cs.Ops != writers*laps {
		t.Fatalf("combiner ops = %d, want %d", cs.Ops, writers*laps)
	}
	if st.GraceWaits != cs.Batches {
		t.Fatalf("grace waits = %d, batches = %d: want exactly one grace wait per batch", st.GraceWaits, cs.Batches)
	}
	if st.Boundaries != cs.Batches {
		t.Fatalf("boundaries = %d, batches = %d", st.Boundaries, cs.Batches)
	}
}

// TestEpochRetireUnderCombining: versions retired by combined write
// sections are swept at batch boundaries; at quiescence one final
// empty write reclaims everything (every retired epoch then precedes
// the last drain).
func TestEpochRetireUnderCombining(t *testing.T) {
	e := NewEpochMWSF(WithCombiningWriters())
	const writers, laps = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < laps; k++ {
				e.Write(func() { e.Retire(make([]byte, 8), 8) })
			}
		}()
	}
	wg.Wait()
	e.Write(func() {}) // final boundary: drain the backlog
	st, _ := e.EpochStats()
	if st.Retired != writers*laps {
		t.Fatalf("retired = %d, want %d", st.Retired, writers*laps)
	}
	if st.Reclaimed != st.Retired || st.RetainedVersions != 0 || st.RetainedBytes != 0 {
		t.Fatalf("backlog not drained at quiescence: %+v", st)
	}
}

// TestEpochStatsOf: the generic accessor resolves epoch locks and
// rejects everything else.
func TestEpochStatsOf(t *testing.T) {
	if _, ok := EpochStatsOf(NewEpochMWSF()); !ok {
		t.Fatal("EpochStatsOf missed an epoch lock")
	}
	if _, ok := EpochStatsOf(NewMWSF()); ok {
		t.Fatal("EpochStatsOf matched a bare MWSF")
	}
	if _, ok := EpochStatsOf(NewBravoMWSF()); ok {
		t.Fatal("EpochStatsOf matched a Bravo wrapper")
	}
}

// TestEpochConstructorContract: nil inner defaults to MWSF; wrapping
// anything without a writer-arbitration layer to hook — including
// another wrapper — panics at construction, not at first use.
func TestEpochConstructorContract(t *testing.T) {
	e := NewEpoch(nil)
	e.RUnlock(e.RLock())
	e.Unlock(e.Lock())
	if _, ok := e.Inner().(*MWSF); !ok {
		t.Fatalf("nil inner resolved to %T, want *MWSF", e.Inner())
	}
	for name, bad := range map[string]RWLock{
		"centralized": NewCentralizedRW(),
		"bravo":       NewBravoMWSF(),
		"epoch":       NewEpochMWSF(),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEpoch(%s) did not panic", name)
				}
			}()
			NewEpoch(bad)
		}()
	}
}

// TestEpochReaderChurnManyGoroutines: distinct short-lived reader
// goroutines churn the slot pool and the registry while writers force
// grace waits — the shape that catches a leaked stamp (a writer would
// hang) or a registry race (-race).  The registry must stay bounded
// by the cap however many readers pass through.
func TestEpochReaderChurnManyGoroutines(t *testing.T) {
	e := NewEpochMWSF()
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			e.Unlock(e.Lock())
			time.Sleep(100 * time.Microsecond)
		}
	}()
	const readers = 2000
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := e.RLock()
			e.RUnlock(rt)
		}()
	}
	stop.Store(true)
	wg.Wait()
	if n := len(*e.slots.Load()); n > epochMaxSlots {
		t.Fatalf("registry grew to %d slots, cap is %d", n, epochMaxSlots)
	}
}
