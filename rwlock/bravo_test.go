package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// bravoLocks returns one Bravo wrapper per inner discipline, keyed the
// way the harness names them.
func bravoLocks() map[string]*Bravo {
	return map[string]*Bravo{
		"Bravo(MWSF)": NewBravoMWSF(),
		"Bravo(MWRP)": NewBravoMWRP(),
		"Bravo(MWWP)": NewBravoMWWP(),
	}
}

// TestBravoFastPathPublishes: on a fresh (read-biased) wrapper a
// reader must take the fast path — its token carries the slot tag and
// the inner lock is never touched — and RUnlock must free the slot.
func TestBravoFastPathPublishes(t *testing.T) {
	for name, b := range bravoLocks() {
		t.Run(name, func(t *testing.T) {
			if !b.ReadBiased() {
				t.Fatal("fresh Bravo lock is not read-biased")
			}
			tok := b.RLock()
			if tok.side != bravoFastSide {
				t.Fatalf("reader token side = %d, want fast-path tag %d", tok.side, bravoFastSide)
			}
			if got := b.slots.slots[tok.id].v.Load(); got != 1 {
				t.Fatalf("claimed slot %d holds %d, want 1", tok.id, got)
			}
			b.RUnlock(tok)
			if got := b.slots.slots[tok.id].v.Load(); got != 0 {
				t.Fatalf("released slot %d holds %d, want 0", tok.id, got)
			}
		})
	}
}

// TestBravoWriterRevokesBias: a writer arriving while a fast-path
// reader is inside must clear RBias and block in the revocation scan
// until that reader leaves — the wrapper's mutual-exclusion handoff.
func TestBravoWriterRevokesBias(t *testing.T) {
	for name, b := range bravoLocks() {
		t.Run(name, func(t *testing.T) {
			rt := b.RLock()
			if rt.side != bravoFastSide {
				t.Fatalf("reader did not take the fast path (side %d)", rt.side)
			}
			locked := make(chan WToken)
			go func() { locked <- b.Lock() }()
			select {
			case <-locked:
				t.Fatal("writer finished revocation with a fast-path reader inside")
			case <-time.After(10 * time.Millisecond):
			}
			b.RUnlock(rt)
			var wt WToken
			select {
			case wt = <-locked:
			case <-time.After(2 * time.Second):
				t.Fatal("writer not released by the fast-path reader's exit")
			}
			if b.ReadBiased() {
				t.Fatal("RBias still set after a writer's revocation")
			}
			// With the bias down, new readers must go through the inner
			// lock — and therefore wait for the writer.
			entered := make(chan RToken)
			go func() { entered <- b.RLock() }()
			select {
			case <-entered:
				t.Fatal("reader entered while the writer held the inner lock")
			case <-time.After(10 * time.Millisecond):
			}
			b.Unlock(wt)
			rt2 := <-entered
			if rt2.side == bravoFastSide {
				t.Fatal("reader took the fast path while the bias was revoked")
			}
			b.RUnlock(rt2)
		})
	}
}

// TestBravoBiasRearm: once the revocation-cost throttle expires, a
// slow-path reader re-arms the bias, and the next reader is fast again.
func TestBravoBiasRearm(t *testing.T) {
	b := NewBravoMWSF()
	wt := b.Lock() // revokes the (initial) bias
	b.Unlock(wt)
	if b.ReadBiased() {
		t.Fatal("bias survived a write passage")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !b.ReadBiased() {
		if time.Now().After(deadline) {
			t.Fatal("bias never re-armed after the inhibit window")
		}
		tok := b.RLock() // slow path; re-arms once inhibitUntil passes
		b.RUnlock(tok)
	}
	tok := b.RLock()
	if tok.side != bravoFastSide {
		t.Fatalf("reader after re-arm took side %d, want fast path", tok.side)
	}
	b.RUnlock(tok)
}

// TestBravoRevocationRace hammers the bias flip-flop itself: writers
// continuously revoke while readers bounce between fast and slow
// paths.  Writers mutate a plain integer through an odd intermediate
// state; under `go test -race` any fast-path reader overlapping a
// writer's critical section is also a detected data race.
func TestBravoRevocationRace(t *testing.T) {
	const (
		writers = 3
		readers = 6
		iters   = 2000
	)
	for name, b := range bravoLocks() {
		b := b
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var data int64 // guarded only by b
			var fail atomic.Bool
			var fastReads atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						tok := b.Lock()
						data++ // odd: no reader may observe this
						data++
						b.Unlock(tok)
					}
				}()
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						tok := b.RLock()
						if tok.side == bravoFastSide {
							fastReads.Add(1)
						}
						if data%2 != 0 {
							fail.Store(true)
						}
						b.RUnlock(tok)
					}
				}()
			}
			wg.Wait()
			if fail.Load() {
				t.Fatal("reader observed a writer mid-update across a bias transition")
			}
			if want := int64(2 * writers * iters); data != want {
				t.Fatalf("data = %d, want %d (lost writer updates)", data, want)
			}
		})
	}
}

// TestBravoFastPathSkipsInnerLock proves the fast path really bypasses
// the inner lock: readers sail through while a stalled SLOW-path
// holder... cannot exist, so instead we pin the inner lock's write
// side directly and verify a biased reader is unaffected only before
// the writer reaches the wrapper.  Concretely: readers publishing in
// the table never move the inner lock's reader count.
func TestBravoFastPathSkipsInnerLock(t *testing.T) {
	inner := NewMWSF()
	b := NewBravo(inner)
	tok := b.RLock()
	if tok.side != bravoFastSide {
		t.Fatalf("expected fast path, got side %d", tok.side)
	}
	// The inner MWSF must believe it has no readers: a writer on the
	// INNER lock alone must pass its waiting room immediately.
	done := make(chan struct{})
	go func() {
		wt := inner.Lock()
		inner.Unlock(wt)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("fast-path reader registered in the inner lock")
	}
	b.RUnlock(tok)
}

// TestBravoSlowPathUnderWriterLoad: with writers continuously holding
// the lock, the throttle keeps the bias down and reads flow through
// the inner discipline (the graceful-degradation property).
func TestBravoSlowPathUnderWriterLoad(t *testing.T) {
	b := NewBravoMWSF()
	wt := b.Lock() // bias revoked; inhibitUntil set
	// A reader queued behind the writer takes the slow path.
	entered := make(chan RToken)
	go func() { entered <- b.RLock() }()
	select {
	case <-entered:
		t.Fatal("reader entered while the writer held the lock")
	case <-time.After(10 * time.Millisecond):
	}
	b.Unlock(wt)
	rt := <-entered
	if rt.side == bravoFastSide {
		t.Fatal("queued reader cannot have used the fast path")
	}
	b.RUnlock(rt)
}

// TestBravoTokensAreTransferable: fast-path tokens, like every token
// in the package, are plain values releasable from another goroutine.
func TestBravoTokensAreTransferable(t *testing.T) {
	b := NewBravoMWWP()
	tokCh := make(chan RToken)
	go func() { tokCh <- b.RLock() }()
	tok := <-tokCh
	b.RUnlock(tok)
	wtCh := make(chan WToken)
	go func() { wtCh <- b.Lock() }()
	b.Unlock(<-wtCh)
}

// TestBravoNestedWrapPanics: Bravo(Bravo(L)) would misroute fast-path
// tokens, so the constructor refuses it.
func TestBravoNestedWrapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic wrapping a *Bravo in NewBravo")
		}
	}()
	NewBravo(NewBravoMWSF())
}

// TestBravoNilInnerDefaults: NewBravo(nil) matches NewGuard's default.
func TestBravoNilInnerDefaults(t *testing.T) {
	b := NewBravo(nil)
	if _, ok := b.Inner().(*MWSF); !ok {
		t.Fatalf("default inner lock is %T, want *MWSF", b.Inner())
	}
	tok := b.RLock()
	b.RUnlock(tok)
}

// TestReaderSlotsClaimReleaseDrain exercises the table directly,
// under both wait strategies: a parked drain must be woken by the
// slot's release.
func TestReaderSlotsClaimReleaseDrain(t *testing.T) {
	for _, strat := range []WaitStrategy{SpinYield, SpinThenPark} {
		t.Run(strat.String(), func(t *testing.T) {
			rs := newReaderTable(16, strat)
			if len(rs.slots)&(len(rs.slots)-1) != 0 || len(rs.slots) < 16 {
				t.Fatalf("table size %d: want power of two >= 16", len(rs.slots))
			}
			id := rs.assignID()
			idx, ok := rs.tryClaim(id)
			if !ok {
				t.Fatal("claim failed on an empty table")
			}
			// A drain for a DIFFERENT owner must skip the claimed slot
			// entirely — the shared-arena isolation property.
			if other := rs.drainFor(id + 1); other != 0 {
				t.Fatalf("drainFor(other) waited on %d foreign slots", other)
			}
			drained := make(chan struct{})
			go func() { rs.drainFor(id); close(drained) }()
			select {
			case <-drained:
				t.Fatal("drain completed with a slot claimed")
			case <-time.After(10 * time.Millisecond):
			}
			rs.release(idx)
			select {
			case <-drained:
			case <-time.After(2 * time.Second):
				t.Fatal("drain did not observe the release")
			}
		})
	}
}
