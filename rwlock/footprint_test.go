package rwlock

import (
	"runtime"
	"runtime/debug"
	"testing"
)

// TestLockFootprint pins measured bytes/instance for the private- vs
// shared-table builds of the two reader-fast-path protocols — the
// number the serving tier's 10^6-stripe grids stand on.  The measure
// is heap growth across n constructions PLUS one warm passage each
// (a read and a write), so lazily-allocated state — Epoch's pool
// locals and stamp slots, Bravo's first drain — is charged to the
// lock that owns it, exactly as the harness's bytes/lock metric
// charges it.
//
// The pinned bounds are deliberately loose (allocator size classes
// and Go-version drift must not flake this test); the ratio bound is
// the load-bearing one: the shared-arena slim builds must stay two
// orders of magnitude under the private builds, or the 10^6-stripe
// story in README.md is broken.
func TestLockFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement in -short")
	}
	const n = 4096
	measure := func(build func() RWLock) float64 {
		// Warm shared machinery (default arena, lazy globals) outside
		// the window, and the measurement slice too.
		w := build()
		rt := w.RLock()
		w.RUnlock(rt)
		wt := w.Lock()
		w.Unlock(wt)
		locks := make([]RWLock, n)
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := range locks {
			locks[i] = build()
		}
		for _, l := range locks {
			rt := l.RLock()
			l.RUnlock(rt)
			wt := l.Lock()
			l.Unlock(wt)
		}
		runtime.ReadMemStats(&after)
		per := float64(after.HeapAlloc-before.HeapAlloc) / n
		runtime.KeepAlive(locks)
		runtime.KeepAlive(w)
		return per
	}

	privBravo := measure(func() RWLock { return NewBravoMWSF() })
	slimBravo := measure(func() RWLock { return NewSlimBravo() })
	privEpoch := measure(func() RWLock { return NewEpochMWSF() })
	slimEpoch := measure(func() RWLock { return NewSlimEpoch() })
	sharedBravo := measure(func() RWLock { return NewBravoMWSF(WithSharedReaderTable(DefaultReaderTable())) })
	sharedEpoch := measure(func() RWLock { return NewEpochMWSF(WithSharedReaderTable(DefaultReaderTable())) })

	t.Logf("bytes/instance: Bravo(MWSF) private=%.0f shared=%.0f slim=%.0f", privBravo, sharedBravo, slimBravo)
	t.Logf("bytes/instance: Epoch(MWSF) private=%.0f shared=%.0f slim=%.0f", privEpoch, sharedEpoch, slimEpoch)

	// The slim builds are one 16-byte object; allow allocator slack.
	if slimBravo > 64 {
		t.Errorf("SlimBravo %.0f bytes/instance, want <= 64", slimBravo)
	}
	if slimEpoch > 64 {
		t.Errorf("SlimEpoch %.0f bytes/instance, want <= 64", slimEpoch)
	}
	// The acceptance ratio: shared-table slim builds >= 100x under the
	// private-table wrappers.
	if privBravo < 100*slimBravo {
		t.Errorf("private Bravo %.0f vs slim %.0f: ratio %.1fx, want >= 100x", privBravo, slimBravo, privBravo/slimBravo)
	}
	if privEpoch < 100*slimEpoch {
		t.Errorf("private Epoch %.0f vs slim %.0f: ratio %.1fx, want >= 100x", privEpoch, slimEpoch, privEpoch/slimEpoch)
	}
	// The full wrappers under WithSharedReaderTable shed their
	// private tables/caches: strictly smaller than the private builds
	// (the intermediate point README's table shows).
	if sharedBravo >= privBravo {
		t.Errorf("shared-table Bravo %.0f not below private %.0f", sharedBravo, privBravo)
	}
	if sharedEpoch >= privEpoch {
		t.Errorf("shared-table Epoch %.0f not below private %.0f", sharedEpoch, privEpoch)
	}
}
