package rwlock

import (
	"runtime"
	"sync"
	"testing"
)

// Oversubscription stress: far more goroutines than GOMAXPROCS, the
// regime SpinThenPark exists for and the regime where a retrofitted
// parking layer classically loses wakeups (a waiter parks just as the
// signal lands).  Every test here matches -run Oversub, which CI runs
// under the race detector with GOMAXPROCS=2 — so any reader/writer CS
// overlap is ALSO a detected data race, and any lost wakeup is a test
// timeout.

// underSmallGOMAXPROCS pins GOMAXPROCS low for the test body so that
// 64 workers genuinely oversubscribe even on big machines.
func underSmallGOMAXPROCS(t *testing.T, p int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(p)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// oversubHammer is the rwlock_test hammer at oversubscription scale:
// writers+readers goroutines (well above GOMAXPROCS) pushing a plain
// counter through transiently odd states.
func oversubHammer(t *testing.T, l RWLock, writers, readers, iters int) {
	t.Helper()
	var data int64 // deliberately plain, guarded only by l
	var wg sync.WaitGroup
	fail := make(chan string, 1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tok := l.Lock()
				data++ // odd: readers must never see this
				data++
				l.Unlock(tok)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tok := l.RLock()
				if v := data; v%2 != 0 {
					select {
					case fail <- "reader observed writer mid-update":
					default:
					}
				}
				l.RUnlock(tok)
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if want := int64(2 * writers * iters); data != want {
		t.Fatalf("data = %d, want %d (lost writer updates)", data, want)
	}
}

// TestOversubscribedStressAllLocks: 64 workers on 2 Ps, every lock in
// the package, both strategies.
func TestOversubscribedStressAllLocks(t *testing.T) {
	underSmallGOMAXPROCS(t, 2)
	iters := 300
	if testing.Short() {
		iters = 100
	}
	for _, strat := range strategies() {
		opt := WithWaitStrategy(strat)
		for name, l := range locks(opt) {
			l := l
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				oversubHammer(t, l, 8, 56, iters)
			})
		}
		for name, l := range singleWriterLocks(opt) {
			l := l
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				oversubHammer(t, l, 1, 63, iters)
			})
		}
	}
}

// TestOversubTokenTransfer: tokens acquired on one goroutine and
// released on another, under oversubscription.  The releasing
// goroutine's Unlock is the wake site for parked waiters, so this
// pins that wakeups survive the acquirer/releaser split.
func TestOversubTokenTransfer(t *testing.T) {
	underSmallGOMAXPROCS(t, 2)
	const handoffs = 200
	for _, strat := range strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			l := NewMWSF(WithWaitStrategy(strat))
			// Background readers so the transferred write tokens always
			// have waiters to wake.  They yield every pass: the point is
			// waiters on the gate, not CPU pressure (the AllLocks stress
			// covers that), and unyielding readers starve the handoff
			// goroutines on 2 Ps for seconds per strategy.
			stop := make(chan struct{})
			var readers sync.WaitGroup
			for i := 0; i < 4; i++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						tok := l.RLock()
						l.RUnlock(tok)
						runtime.Gosched()
					}
				}()
			}
			wtoks := make(chan WToken)
			rtoks := make(chan RToken)
			go func() {
				for i := 0; i < handoffs; i++ {
					wtoks <- l.Lock()
					rtoks <- l.RLock()
				}
			}()
			for i := 0; i < handoffs; i++ {
				l.Unlock(<-wtoks)  // write token released off-goroutine
				l.RUnlock(<-rtoks) // read token released off-goroutine
			}
			close(stop)
			readers.Wait()
		})
	}
}

// TestOversubGuard: the closure API end-to-end under oversubscription
// and parking — Guard moves tokens through its own frames, and the
// Locker adapter moves them across goroutines via its internal mutex.
func TestOversubGuard(t *testing.T) {
	underSmallGOMAXPROCS(t, 2)
	for _, strat := range strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			g := NewGuard(NewMWWP(WithWaitStrategy(strat)), map[string]int{})
			const workers, iters = 48, 100
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						if id%8 == 0 {
							g.Write(func(m *map[string]int) { (*m)["n"]++ })
						} else {
							g.Read(func(m map[string]int) { _ = m["n"] })
						}
					}
				}(w)
			}
			wg.Wait()
			if got := g.Load()["n"]; got != (workers/8)*iters {
				t.Fatalf("guarded counter = %d, want %d", got, (workers/8)*iters)
			}
		})
	}
}
