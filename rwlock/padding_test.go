package rwlock

import (
	"testing"
	"unsafe"
)

// False-sharing audit: every hot word a goroutine spins on, stamps, or
// publishes through must sit on its own cache line, or the package's
// RMR story is fiction — a waiter's re-read would be invalidated by
// its neighbor's unrelated store.  The load-bearing cases are the
// per-reader/per-slot words: Bravo's visible-readers table and the
// epoch stamp slots are ARRAYS of hot words, one per concurrent
// reader, where a misplaced field turns neighboring readers into a
// single contended line.  The assertions are offsets and sizes, so a
// refactor that reorders fields or shrinks a pad fails here instead
// of as a silent throughput regression.

const cacheLine = 64

// TestWaitCellPadding: the wait word is the package's universal hot
// word (readerSlots and the Anderson array are []waitCell, so their
// per-slot isolation IS this layout).  The word must open the struct
// alone on its line, the cold parking state must start on the next
// line, and the total size must be a whole number of lines so array
// elements never share.
func TestWaitCellPadding(t *testing.T) {
	var c waitCell
	if off := unsafe.Offsetof(c.v); off != 0 {
		t.Errorf("waitCell.v at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(c.park); off != cacheLine {
		t.Errorf("waitCell.park at offset %d, want %d (parking state must not share the wait word's line)", off, cacheLine)
	}
	if sz := unsafe.Sizeof(c); sz%cacheLine != 0 {
		t.Errorf("sizeof(waitCell) = %d, not a multiple of %d (adjacent slots in []waitCell would share a line)", sz, cacheLine)
	}
}

// TestReaderTablePadding: the shared arena is the []waitCell layout
// again (per-slot isolation comes from waitCell's audited size), but
// the table HEADER matters once the arena is process-shared: every
// fast-path claim loads mask and the slice header, so the id counter
// — RMW'd by every lock construction — must sit on its own line, or
// a grid build would invalidate every running reader's probe loads.
func TestReaderTablePadding(t *testing.T) {
	var rt ReaderTable
	if off := unsafe.Offsetof(rt.mask); off != 0 {
		t.Errorf("ReaderTable.mask at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(rt.nextID); off%cacheLine != 0 {
		t.Errorf("ReaderTable.nextID at offset %d, want a %d-byte boundary (construction traffic must not share the claim path's header line)", off, cacheLine)
	}
	if sz := unsafe.Sizeof(rt); sz%cacheLine != 0 {
		t.Errorf("sizeof(ReaderTable) = %d, not a multiple of %d", sz, cacheLine)
	}
	tbl := DefaultReaderTable()
	if n := tbl.Slots(); n&(n-1) != 0 || n < 8 {
		t.Errorf("DefaultReaderTable has %d slots, want a power of two >= 8", n)
	}
}

// TestEpochSlotPadding: the stamp word (the slot's embedded cell) is
// the word the zero-RMW read passage exists for — a reader's stamp
// must dirty only its own line.  idx is read-only after registration
// but still must not pull a neighbor's stamp onto its line, hence the
// whole-line slot size.
func TestEpochSlotPadding(t *testing.T) {
	var s epochSlot
	if off := unsafe.Offsetof(s.cell); off != 0 {
		t.Errorf("epochSlot.cell at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(s.idx); off%cacheLine != 0 {
		t.Errorf("epochSlot.idx at offset %d, want a %d-byte boundary (must not share the stamp word's line)", off, cacheLine)
	}
	if sz := unsafe.Sizeof(s); sz%cacheLine != 0 {
		t.Errorf("sizeof(epochSlot) = %d, not a multiple of %d", sz, cacheLine)
	}
}

// TestEpochPrivSlotPadding: the per-P lease cache is indexed by P, so
// adjacent entries belong to different cores — an entry that shared a
// line with its neighbor would put two Ps' lease traffic on one line
// and reintroduce exactly the coherence cost the cache avoids.
func TestEpochPrivSlotPadding(t *testing.T) {
	var p epochPrivSlot
	if off := unsafe.Offsetof(p.s); off != 0 {
		t.Errorf("epochPrivSlot.s at offset %d, want 0", off)
	}
	if sz := unsafe.Sizeof(p); sz%cacheLine != 0 {
		t.Errorf("sizeof(epochPrivSlot) = %d, not a multiple of %d (adjacent Ps' cache entries would share a line)", sz, cacheLine)
	}
}

// TestEpochGlobalPadding: the global epoch word is loaded by every
// fast-path reader; the registry pointer and the writer-side fields
// after it must live on other lines.
func TestEpochGlobalPadding(t *testing.T) {
	var e Epoch
	if off := unsafe.Offsetof(e.global); off != 0 {
		t.Errorf("Epoch.global at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(e.slots); off%cacheLine != 0 {
		t.Errorf("Epoch.slots at offset %d, want a %d-byte boundary", off, cacheLine)
	}
	if off := unsafe.Offsetof(e.inner); off%cacheLine != 0 {
		t.Errorf("Epoch.inner at offset %d, want a %d-byte boundary (cold state must not share the registry pointer's line)", off, cacheLine)
	}
	if sz := unsafe.Sizeof(paddedInt64{}); sz != cacheLine {
		t.Errorf("sizeof(paddedInt64) = %d, want %d", sz, cacheLine)
	}
}

// TestMCSNodePadding: a queued writer spins on its own node's grant
// cell while its successor writes the node's next/linked words; the
// handoff words and the grant cell must not share a line.
func TestMCSNodePadding(t *testing.T) {
	var n mcsNode
	if off := unsafe.Offsetof(n.linked); off%cacheLine != 0 {
		t.Errorf("mcsNode.linked at offset %d, want a %d-byte boundary", off, cacheLine)
	}
	if off := unsafe.Offsetof(n.grant); off%cacheLine != 0 {
		t.Errorf("mcsNode.grant at offset %d, want a %d-byte boundary", off, cacheLine)
	}
	if sz := unsafe.Sizeof(n); sz%cacheLine != 0 {
		t.Errorf("sizeof(mcsNode) = %d, not a multiple of %d (pooled nodes would share lines)", sz, cacheLine)
	}
}

// TestAndersonPadding: the ticket word is fetch&added by every
// acquirer while the released word is read by TryAcquire probes; each
// needs its own line, and the slot array inherits isolation from
// waitCell's size.
func TestAndersonPadding(t *testing.T) {
	var l AndersonLock
	if off := unsafe.Offsetof(l.ticket); off != 0 {
		t.Errorf("AndersonLock.ticket at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(l.released); off != cacheLine {
		t.Errorf("AndersonLock.released at offset %d, want %d", off, cacheLine)
	}
	if off := unsafe.Offsetof(l.slots); off%cacheLine != 0 {
		t.Errorf("AndersonLock.slots at offset %d, want a %d-byte boundary", off, cacheLine)
	}
}

// TestCombineRecordPadding: a publisher spins on its record's done
// cell while the combiner writes the record's cs and next words (it
// clears cs and reads next right before the completion store); the
// done cell on the header's line would make every batch step
// invalidate every waiting publisher's spin.
func TestCombineRecordPadding(t *testing.T) {
	var r combineRecord
	if off := unsafe.Offsetof(r.done); off%cacheLine != 0 {
		t.Errorf("combineRecord.done at offset %d, want a %d-byte boundary (publisher's spin word must not share the header's line)", off, cacheLine)
	}
	if sz := unsafe.Sizeof(r); sz%cacheLine != 0 {
		t.Errorf("sizeof(combineRecord) = %d, not a multiple of %d", sz, cacheLine)
	}
}

// TestCombinerHeadPadding: the publication-list head is CASed by every
// publisher; the inner-mutex pointer and stats after it must not ride
// the same line.
func TestCombinerHeadPadding(t *testing.T) {
	var c combiner
	if off := unsafe.Offsetof(c.head); off != 0 {
		t.Errorf("combiner.head at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(c.inner); off%cacheLine != 0 {
		t.Errorf("combiner.inner at offset %d, want a %d-byte boundary", off, cacheLine)
	}
}
