package rwlock

import (
	"context"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Semantics suite for the CtxRWLock contract on every lock in the
// registry: LockCtx/RLockCtx must behave exactly like Lock/RLock
// under an uncancellable context, must abort (or commit — the
// contract's two-valued outcome) under cancellation, and an aborted
// attempt must leave the lock indistinguishable from one the attempt
// never touched.

// ctxLocks returns every registry lock asserted to CtxRWLock.
func ctxLocks(opts ...Option) map[string]interface {
	RWLock
	CtxRWLock
} {
	out := map[string]interface {
		RWLock
		CtxRWLock
	}{}
	for name, l := range locks(opts...) {
		out[name] = l.(interface {
			RWLock
			CtxRWLock
		})
	}
	for name, l := range singleWriterLocks(opts...) {
		out[name] = l.(interface {
			RWLock
			CtxRWLock
		})
	}
	return out
}

// TestLockCtxBackground: with context.Background() the ctx paths are
// the blocking paths — same admission, same tokens, same release.
func TestLockCtxBackground(t *testing.T) {
	for name, l := range ctxLocks() {
		l := l
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx := context.Background()
			wt, err := l.LockCtx(ctx)
			if err != nil {
				t.Fatalf("LockCtx(Background) = %v", err)
			}
			l.Unlock(wt)
			rt, err := l.RLockCtx(ctx)
			if err != nil {
				t.Fatalf("RLockCtx(Background) = %v", err)
			}
			rt2, err := l.RLockCtx(ctx)
			if err != nil {
				t.Fatalf("second RLockCtx(Background) = %v (readers must share)", err)
			}
			l.RUnlock(rt2)
			l.RUnlock(rt)
		})
	}
}

// TestLockCtxAlreadyCancelled: a pre-cancelled context is the
// cheapest abort — but the contract allows a free lock's grant to win
// even here, so either outcome is accepted as long as the books
// balance and the lock stays usable.
func TestLockCtxAlreadyCancelled(t *testing.T) {
	for name, l := range ctxLocks() {
		l := l
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if wt, err := l.LockCtx(ctx); err == nil {
				l.Unlock(wt)
			}
			if rt, err := l.RLockCtx(ctx); err == nil {
				l.RUnlock(rt)
			}
			// Aborted or not, the lock must be fully usable.
			l.Unlock(l.Lock())
			l.RUnlock(l.RLock())
		})
	}
}

// TestRLockCtxCancelUnderWriter: a reader cancelled while a writer
// holds the lock must abort — every discipline's reader gate wait is
// abortable via the zero-length-passage undo, except TaskFairRW,
// whose strict arrival queue commits a reader at its ticket (the
// documented exception) and therefore resolves to a grant once the
// writer leaves.  Either way the retreat must not disturb the writer
// or later readers.
func TestRLockCtxCancelUnderWriter(t *testing.T) {
	for _, strat := range strategies() {
		opt := WithWaitStrategy(strat)
		for name, l := range ctxLocks(opt) {
			l := l
			committed := name == "TaskFairRW"
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()
				wt := l.Lock()
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan error, 1)
				go func() {
					rt, err := l.RLockCtx(ctx)
					if err == nil {
						l.RUnlock(rt)
					}
					done <- err
				}()
				time.Sleep(5 * time.Millisecond) // let the reader park on the gate
				cancel()
				if committed {
					// Ticket-committed: the reader resolves to a grant
					// only after the writer leaves.
					l.Unlock(wt)
					select {
					case err := <-done:
						if err != nil {
							t.Fatalf("committed reader = %v, want grant", err)
						}
					case <-time.After(10 * time.Second):
						t.Fatal("committed reader never granted after writer left")
					}
					l.RUnlock(l.RLock())
					l.Unlock(l.Lock())
					return
				}
				select {
				case err := <-done:
					if err != context.Canceled {
						t.Fatalf("RLockCtx under a writer = %v, want context.Canceled", err)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("cancelled reader never returned while writer held the lock")
				}
				l.Unlock(wt)
				// The aborted reader's zero-length passage must have kept
				// the counts exact: a real reader and a real writer must
				// both still be admitted.
				l.RUnlock(l.RLock())
				l.Unlock(l.Lock())
			})
		}
	}
}

// TestLockCtxCancelUnderWriter: a second writer cancelled while the
// first holds the lock.  Disciplines whose queues abort (MCS
// arbitration, the centralized/phase-fair retreat paths) return the
// error promptly; committed disciplines (Anderson past its ticket,
// the task-fair queue) return the lock after the holder leaves — both
// legal under the two-valued contract, and either way the books must
// balance afterwards.
func TestLockCtxCancelUnderWriter(t *testing.T) {
	for _, strat := range strategies() {
		opt := WithWaitStrategy(strat)
		// locks() only: a second writer on the single-writer cores is
		// misuse (they panic), not a queueing scenario.
		for name, l := range locks(opt) {
			l := l.(interface {
				RWLock
				CtxRWLock
			})
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()
				wt := l.Lock()
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan error, 1)
				go func() {
					wt2, err := l.LockCtx(ctx)
					if err == nil {
						l.Unlock(wt2)
					}
					done <- err
				}()
				time.Sleep(5 * time.Millisecond) // let the writer queue
				cancel()
				time.Sleep(5 * time.Millisecond)
				l.Unlock(wt)
				select {
				case <-done:
				case <-time.After(10 * time.Second):
					t.Fatal("cancelled writer resolved to neither grant nor abort")
				}
				l.Unlock(l.Lock())
				l.RUnlock(l.RLock())
			})
		}
	}
}

// TestWriteCtxCombinerPointOfNoReturn pins the closure path's
// commitment semantics on a combining lock: a pre-cancelled context
// must abort WITHOUT running cs, and a write that was published
// before its context died must run anyway — a published closure is a
// promise to every combiner that might batch it.
func TestWriteCtxCombinerPointOfNoReturn(t *testing.T) {
	for name, mk := range map[string]func() interface {
		RWLock
		CtxFuncWriter
	}{
		"MWSF/combining": func() interface {
			RWLock
			CtxFuncWriter
		} {
			return NewMWSF(WithCombiningWriters())
		},
		"MWRP/combining": func() interface {
			RWLock
			CtxFuncWriter
		} {
			return NewMWRP(WithCombiningWriters())
		},
		"MWWP/combining": func() interface {
			RWLock
			CtxFuncWriter
		} {
			return NewMWWP(WithCombiningWriters())
		},
	} {
		mk := mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			l := mk()

			// Pre-cancelled: cs must not run.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			ran := false
			if err := l.WriteCtx(ctx, func() { ran = true }); err != context.Canceled {
				t.Fatalf("WriteCtx(cancelled) = %v, want context.Canceled", err)
			}
			if ran {
				t.Fatal("WriteCtx ran cs under a pre-cancelled context")
			}

			// Published-then-cancelled: hold the lock via the token path,
			// publish a closure write, cancel, release — the closure must
			// execute exactly once.
			wt := l.Lock()
			ctx2, cancel2 := context.WithCancel(context.Background())
			var ran2 atomic.Int32
			done := make(chan error, 1)
			go func() {
				done <- l.WriteCtx(ctx2, func() { ran2.Add(1) })
			}()
			time.Sleep(10 * time.Millisecond) // let the write publish/queue
			cancel2()
			time.Sleep(5 * time.Millisecond)
			l.Unlock(wt)
			err := <-done
			if err == nil && ran2.Load() != 1 {
				t.Fatalf("WriteCtx returned nil but cs ran %d times", ran2.Load())
			}
			if err != nil && ran2.Load() != 0 {
				t.Fatalf("WriteCtx returned %v but cs ran anyway", err)
			}
			// Whatever won, the closure path must still work.
			var again atomic.Int32
			if err := l.WriteCtx(context.Background(), func() { again.Add(1) }); err != nil || again.Load() != 1 {
				t.Fatalf("post-race WriteCtx = %v, ran %d times", err, again.Load())
			}
		})
	}
}

// TestGuardCtxAndTry covers the Guard adapters end to end: Try*
// reports the truth table, Ctx* aborts without running the callback,
// and both compose with the combining closure path.
func TestGuardCtxAndTry(t *testing.T) {
	for name, l := range map[string]RWLock{
		"MWSF":           NewMWSF(),
		"MWSF/combining": NewMWSF(WithCombiningWriters()),
	} {
		l := l
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := NewGuard(l, 0)
			if !g.TryWrite(func(v *int) { *v = 41 }) {
				t.Fatal("TryWrite failed on a free guard")
			}
			if err := g.WriteCtx(context.Background(), func(v *int) { *v++ }); err != nil {
				t.Fatalf("WriteCtx = %v", err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := g.WriteCtx(ctx, func(v *int) { *v = -1 }); err != context.Canceled {
				t.Fatalf("WriteCtx(cancelled) = %v, want context.Canceled", err)
			}
			// On a FREE lock a reader's grant may win even against a
			// pre-cancelled ctx (the contract's two-valued outcome), so
			// force the abort by holding the write side.
			wt := l.Lock()
			if err := g.ReadCtx(ctx, func(v int) {}); err != context.Canceled {
				t.Fatalf("ReadCtx(cancelled, write-held) = %v, want context.Canceled", err)
			}
			l.Unlock(wt)
			got := -1
			if !g.TryRead(func(v int) { got = v }) {
				t.Fatal("TryRead failed on a free guard")
			}
			if got != 42 {
				t.Fatalf("guarded value = %d, want 42 (cancelled write leaked through?)", got)
			}
			if err := g.ReadCtx(context.Background(), func(v int) { got = v + 1 }); err != nil || got != 43 {
				t.Fatalf("ReadCtx = %v, got %d", err, got)
			}
		})
	}
}

// TestLockCtxWriterChurnRandomCancel is the acceptance hammer: 32768
// one-shot writers (256 lanes × 128 sequential attempts, the
// writer-churn geometry) take LockCtx under contexts cancelled at
// random fuses chosen to land before, during, and after the queue
// wait, racing a background of readers.  Plain data mutated under
// granted locks (-race proves exclusion), the grant count proves no
// passage was lost or duplicated, and a terminal passage on every
// side proves no cancelled attempt stranded a queue, a gate, or a
// count.  Run on both arbitration layers under SpinThenPark, where an
// aborted parked waiter is the hardest case.
func TestLockCtxWriterChurnRandomCancel(t *testing.T) {
	lanes, opsPerLane := 256, 128
	if testing.Short() {
		lanes, opsPerLane = 64, 32
	}
	for name, mk := range map[string]func() interface {
		RWLock
		CtxRWLock
	}{
		"MWSF/park": func() interface {
			RWLock
			CtxRWLock
		} {
			return NewMWSF(WithWaitStrategy(SpinThenPark))
		},
		"MWSF/bounded/park": func() interface {
			RWLock
			CtxRWLock
		} {
			return NewMWSF(WithWaitStrategy(SpinThenPark), WithBoundedWriters(8))
		},
	} {
		mk := mk
		t.Run(name, func(t *testing.T) {
			l := mk()
			var data int64 // plain, guarded only by l
			var granted atomic.Int64
			var cancelled atomic.Int64
			stop := make(chan struct{})
			var readers sync.WaitGroup
			for i := 0; i < 4; i++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if rt, err := l.RLockCtx(context.Background()); err == nil {
							_ = data
							l.RUnlock(rt)
						}
					}
				}()
			}
			var lanesWG sync.WaitGroup
			for lane := 0; lane < lanes; lane++ {
				lanesWG.Add(1)
				go func() {
					defer lanesWG.Done()
					for op := 0; op < opsPerLane; op++ {
						// Each op is a DISTINCT goroutine — the churn
						// shape — with its own context and a random fuse.
						opDone := make(chan struct{})
						go func() {
							defer close(opDone)
							ctx, cancel := context.WithCancel(context.Background())
							defer cancel()
							switch rand.IntN(4) {
							case 0:
								cancel() // aborts before queueing
							case 1, 2:
								fuse := time.Duration(rand.IntN(100)) * time.Microsecond
								go func() {
									time.Sleep(fuse)
									cancel() // races the queue wait and the handoff
								}()
							}
							wt, err := l.LockCtx(ctx)
							if err != nil {
								cancelled.Add(1)
								return
							}
							data++
							granted.Add(1)
							l.Unlock(wt)
						}()
						<-opDone
					}
				}()
			}
			lanesWG.Wait()
			close(stop)
			readers.Wait()
			if data != granted.Load() {
				t.Fatalf("data = %d, granted = %d (lost or phantom passages)", data, granted.Load())
			}
			if granted.Load()+cancelled.Load() != int64(lanes*opsPerLane) {
				t.Fatalf("grants %d + cancels %d != %d attempts", granted.Load(), cancelled.Load(), lanes*opsPerLane)
			}
			t.Logf("%s: %d granted, %d cancelled of %d attempts", name, granted.Load(), cancelled.Load(), lanes*opsPerLane)
			// No stranded state on any side.
			l.Unlock(l.Lock())
			l.RUnlock(l.RLock())
		})
	}
}
