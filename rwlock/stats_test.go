package rwlock

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// statsLock is the surface the churn driver exercises: every full
// lock in the package implements all three.
type statsLock interface {
	RWLock
	TryRWLock
	CtxRWLock
}

// checkLive asserts the invariant subset that holds in EVERY
// snapshot, including mid-traffic (see Snapshot's load-order note):
// the pairs whose write sites count the superset side first.
func checkLive(t *testing.T, name string, s *LockStatsSnapshot) {
	t.Helper()
	sheds := s.TrySheds + s.CtxSheds
	if s.ReadContended > s.ReadAcquires+sheds {
		t.Errorf("%s: live read_contended %d > read_acquires %d + sheds %d", name, s.ReadContended, s.ReadAcquires, sheds)
	}
	if s.ReclaimedVersions > s.RetiredVersions {
		t.Errorf("%s: live reclaimed %d > retired %d", name, s.ReclaimedVersions, s.RetiredVersions)
	}
	if s.RetainedVersionsMax > s.RetiredVersions {
		t.Errorf("%s: live retained_versions_max %d > retired %d", name, s.RetainedVersionsMax, s.RetiredVersions)
	}
	if s.Unparks > s.Parks {
		t.Errorf("%s: live unparks %d > parks %d", name, s.Unparks, s.Parks)
	}
	if s.Batches > s.CombinedOps || s.BatchMax > s.CombinedOps {
		t.Errorf("%s: live batches %d / batch_max %d > combined_ops %d", name, s.Batches, s.BatchMax, s.CombinedOps)
	}
	if s.BatchMax > 0 && s.Batches == 0 {
		t.Errorf("%s: live batch_max %d with zero batches", name, s.BatchMax)
	}
	if s.QueueDepth < 0 {
		t.Errorf("%s: live queue_depth %d < 0", name, s.QueueDepth)
	}
}

// monotone is the list of counters that may never decrease between
// two successive snapshots of the same block.
var monotoneCounters = []struct {
	name string
	get  func(*LockStatsSnapshot) uint64
}{
	{"read_acquires", func(s *LockStatsSnapshot) uint64 { return s.ReadAcquires }},
	{"read_contended", func(s *LockStatsSnapshot) uint64 { return s.ReadContended }},
	{"write_acquires", func(s *LockStatsSnapshot) uint64 { return s.WriteAcquires }},
	{"write_contended", func(s *LockStatsSnapshot) uint64 { return s.WriteContended }},
	{"try_sheds", func(s *LockStatsSnapshot) uint64 { return s.TrySheds }},
	{"ctx_sheds", func(s *LockStatsSnapshot) uint64 { return s.CtxSheds }},
	{"revocations", func(s *LockStatsSnapshot) uint64 { return s.Revocations }},
	{"re_arms", func(s *LockStatsSnapshot) uint64 { return s.ReArms }},
	{"epoch_advances", func(s *LockStatsSnapshot) uint64 { return s.EpochAdvances }},
	{"grace_waits", func(s *LockStatsSnapshot) uint64 { return s.GraceWaits }},
	{"queue_depth_max", func(s *LockStatsSnapshot) uint64 { return s.QueueDepthMax }},
	{"batches", func(s *LockStatsSnapshot) uint64 { return s.Batches }},
	{"batch_max", func(s *LockStatsSnapshot) uint64 { return s.BatchMax }},
	{"combined_ops", func(s *LockStatsSnapshot) uint64 { return s.CombinedOps }},
	{"parks", func(s *LockStatsSnapshot) uint64 { return s.Parks }},
	{"unparks", func(s *LockStatsSnapshot) uint64 { return s.Unparks }},
	{"retired_versions", func(s *LockStatsSnapshot) uint64 { return s.RetiredVersions }},
	{"reclaimed_versions", func(s *LockStatsSnapshot) uint64 { return s.ReclaimedVersions }},
	{"retained_versions_max", func(s *LockStatsSnapshot) uint64 { return s.RetainedVersionsMax }},
}

// churnTally is what the workers themselves observed; at quiescence
// the block must agree exactly.
type churnTally struct {
	reads, writes, trySheds, ctxSheds atomic.Uint64
}

// churnStats drives mixed traffic over l while snapshotting st from a
// separate goroutine, then checks the block against the workers' own
// tallies.  useTry must be false for the Bravo/Epoch wrappers: their
// TryLock can legitimately acquire and then shed the inner lock (a
// revocation that finds readers), so try-path counts are not 1:1 with
// caller-visible outcomes there.
func churnStats(t *testing.T, name string, l statsLock, st *LockStats, writers int, useTry bool, inWrite func()) {
	t.Helper()
	const readersN = 4
	deadline := time.Now().Add(60 * time.Millisecond)
	var tally churnTally
	var wg sync.WaitGroup

	for r := 0; r < readersN; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				if i%7 == 3 {
					ctx, cancel := context.WithTimeout(context.Background(), 20*time.Microsecond)
					tok, err := l.RLockCtx(ctx)
					if err != nil {
						tally.ctxSheds.Add(1)
					} else {
						tally.reads.Add(1)
						l.RUnlock(tok)
					}
					cancel()
					continue
				}
				tok := l.RLock()
				tally.reads.Add(1)
				l.RUnlock(tok)
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				if i%5 == 2 {
					ctx, cancel := context.WithTimeout(context.Background(), 20*time.Microsecond)
					tok, err := l.LockCtx(ctx)
					if err != nil {
						tally.ctxSheds.Add(1)
					} else {
						tally.writes.Add(1)
						if inWrite != nil {
							inWrite()
						}
						l.Unlock(tok)
					}
					cancel()
					continue
				}
				tok := l.Lock()
				tally.writes.Add(1)
				if inWrite != nil {
					inWrite()
				}
				l.Unlock(tok)
			}
		}()
	}
	if useTry {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if tok, ok := l.TryLock(); ok {
					tally.writes.Add(1)
					if inWrite != nil {
						inWrite()
					}
					l.Unlock(tok)
				} else {
					tally.trySheds.Add(1)
				}
				if tok, ok := l.TryRLock(); ok {
					tally.reads.Add(1)
					l.RUnlock(tok)
				} else {
					tally.trySheds.Add(1)
				}
			}
		}()
	}

	// The scrape: live snapshots must be monotone and satisfy the
	// stable invariant subset.
	stop := make(chan struct{})
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		prev := st.Snapshot()
		checkLive(t, name, &prev)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := st.Snapshot()
			checkLive(t, name, &cur)
			for _, m := range monotoneCounters {
				if m.get(&cur) < m.get(&prev) {
					t.Errorf("%s: counter %s went backwards: %d -> %d", name, m.name, m.get(&prev), m.get(&cur))
					return
				}
			}
			prev = cur
		}
	}()

	wg.Wait()
	close(stop)
	scrape.Wait()

	final := st.Snapshot()
	if err := final.CheckCoherence(); err != nil {
		t.Errorf("%s: quiescent CheckCoherence: %v", name, err)
	}
	if final.ReadAcquires != tally.reads.Load() {
		t.Errorf("%s: read_acquires %d != successful reads %d", name, final.ReadAcquires, tally.reads.Load())
	}
	if final.WriteAcquires != tally.writes.Load() {
		t.Errorf("%s: write_acquires %d != successful writes %d", name, final.WriteAcquires, tally.writes.Load())
	}
	if final.TrySheds != tally.trySheds.Load() {
		t.Errorf("%s: try_sheds %d != observed try failures %d", name, final.TrySheds, tally.trySheds.Load())
	}
	if final.CtxSheds != tally.ctxSheds.Load() {
		t.Errorf("%s: ctx_sheds %d != observed cancellations %d", name, final.CtxSheds, tally.ctxSheds.Load())
	}
	if final.QueueDepth != 0 {
		t.Errorf("%s: quiescent queue_depth %d != 0", name, final.QueueDepth)
	}
	if final.Unparks != final.Parks {
		t.Errorf("%s: quiescent unparks %d != parks %d", name, final.Unparks, final.Parks)
	}
}

// TestStatsChurn runs the churn driver over one lock of every layer
// combination the seam instruments and cross-checks the block against
// the workers' own tallies.
func TestStatsChurn(t *testing.T) {
	t.Run("mwsf-mcs", func(t *testing.T) {
		t.Parallel()
		st := &LockStats{}
		churnStats(t, "mwsf-mcs", NewMWSF(WithStats(st)), st, 2, true, nil)
	})
	t.Run("mwsf-bounded", func(t *testing.T) {
		t.Parallel()
		st := &LockStats{}
		churnStats(t, "mwsf-bounded", NewMWSF(WithStats(st), WithBoundedWriters(4)), st, 2, true, nil)
	})
	t.Run("mwrp", func(t *testing.T) {
		t.Parallel()
		st := &LockStats{}
		churnStats(t, "mwrp", NewMWRP(WithStats(st)), st, 2, true, nil)
	})
	t.Run("mwwp", func(t *testing.T) {
		t.Parallel()
		st := &LockStats{}
		churnStats(t, "mwwp", NewMWWP(WithStats(st)), st, 2, true, nil)
	})
	t.Run("swwp", func(t *testing.T) {
		t.Parallel()
		st := &LockStats{}
		// Single-writer contract: one writer goroutine, no TryLock
		// racer (a TryLock losing the writerBusy race would be a
		// legitimate shed, but Lock would panic — keep writers=1).
		churnStats(t, "swwp", NewSWWP(WithStats(st)), st, 1, false, nil)
	})
	t.Run("bravo-mwsf", func(t *testing.T) {
		t.Parallel()
		st := &LockStats{}
		churnStats(t, "bravo-mwsf", NewBravoMWSF(WithStats(st)), st, 2, false, nil)
	})
	t.Run("epoch-mwsf", func(t *testing.T) {
		t.Parallel()
		st := &LockStats{}
		e := NewEpochMWSF(WithStats(st))
		churnStats(t, "epoch-mwsf", e, st, 2, false, func() { e.Retire(make([]byte, 8), 8) })
	})
}

// TestStatsCombining checks the flat-combining batch counters: the
// closure write path must account every combined op, and batch
// geometry must be coherent.
func TestStatsCombining(t *testing.T) {
	st := &LockStats{}
	l := NewMWRP(WithStats(st), WithCombiningWriters())
	const writers, per = 8, 200
	var wg sync.WaitGroup
	var ran atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Write(func() { ran.Add(1) })
			}
		}()
	}
	wg.Wait()
	s := st.Snapshot()
	if err := s.CheckCoherence(); err != nil {
		t.Fatalf("CheckCoherence: %v", err)
	}
	if got, want := ran.Load(), uint64(writers*per); got != want {
		t.Fatalf("closures ran %d, want %d", got, want)
	}
	if s.CombinedOps != uint64(writers*per) {
		t.Errorf("combined_ops %d != closure writes %d", s.CombinedOps, writers*per)
	}
	if s.WriteAcquires != uint64(writers*per) {
		t.Errorf("write_acquires %d != closure writes %d", s.WriteAcquires, writers*per)
	}
	if s.Batches == 0 || s.Batches > s.CombinedOps {
		t.Errorf("batches %d out of range (combined_ops %d)", s.Batches, s.CombinedOps)
	}
	if s.BatchMax == 0 || s.BatchMax > s.CombinedOps {
		t.Errorf("batch_max %d out of range (combined_ops %d)", s.BatchMax, s.CombinedOps)
	}
}

// TestStatsBravoCounters pins the wrapper-specific Bravo counters:
// fast-path reads count as read acquires, a writer entering under
// read bias counts exactly one revocation.
func TestStatsBravoCounters(t *testing.T) {
	st := &LockStats{}
	b := NewBravoMWSF(WithStats(st))
	const reads = 100
	for i := 0; i < reads; i++ {
		tok := b.RLock()
		b.RUnlock(tok)
	}
	if s := st.Snapshot(); s.ReadAcquires != reads {
		t.Fatalf("read_acquires %d after %d reads", s.ReadAcquires, reads)
	}
	if !b.ReadBiased() {
		t.Fatal("expected read bias before first write")
	}
	wt := b.Lock()
	b.Unlock(wt)
	s := st.Snapshot()
	if s.Revocations != 1 {
		t.Errorf("revocations %d after one write under bias, want 1", s.Revocations)
	}
	if s.WriteAcquires != 1 {
		t.Errorf("write_acquires %d, want 1", s.WriteAcquires)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Errorf("CheckCoherence: %v", err)
	}
}

// TestStatsEpochCounters pins the wrapper-specific Epoch counters
// against the lock's own quiescent EpochStats mirror.
func TestStatsEpochCounters(t *testing.T) {
	st := &LockStats{}
	e := NewEpochMWSF(WithStats(st))
	const writes = 50
	for i := 0; i < writes; i++ {
		e.Write(func() { e.Retire(make([]byte, 16), 16) })
	}
	// Reads interleaved so epochs actually see readers.
	for i := 0; i < 10; i++ {
		tok := e.RLock()
		e.RUnlock(tok)
	}
	s := st.Snapshot()
	if err := s.CheckCoherence(); err != nil {
		t.Fatalf("CheckCoherence: %v", err)
	}
	es, _ := e.EpochStats()
	if s.RetiredVersions != uint64(es.Retired) {
		t.Errorf("retired_versions %d != EpochStats.Retired %d", s.RetiredVersions, es.Retired)
	}
	if s.ReclaimedVersions != uint64(es.Reclaimed) {
		t.Errorf("reclaimed_versions %d != EpochStats.Reclaimed %d", s.ReclaimedVersions, es.Reclaimed)
	}
	if s.RetainedVersionsMax != uint64(es.MaxRetainedVersions) {
		t.Errorf("retained_versions_max %d != EpochStats.MaxRetainedVersions %d", s.RetainedVersionsMax, es.MaxRetainedVersions)
	}
	if s.RetiredVersions != writes {
		t.Errorf("retired_versions %d, want %d", s.RetiredVersions, writes)
	}
	if s.EpochAdvances == 0 || s.GraceWaits == 0 {
		t.Errorf("epoch_advances %d / grace_waits %d, want both > 0", s.EpochAdvances, s.GraceWaits)
	}
}

// TestStatsParks forces an actual goroutine park under SpinThenPark
// and checks the waitCell accounting balances at quiescence.
func TestStatsParks(t *testing.T) {
	st := &LockStats{}
	l := NewMWSF(WithStats(st), WithWaitStrategy(SpinThenPark))
	tok := l.Lock()
	released := make(chan struct{})
	go func() {
		rt := l.RLock() // blocks past the spin budget and parks
		l.RUnlock(rt)
		close(released)
	}()
	time.Sleep(30 * time.Millisecond)
	l.Unlock(tok)
	<-released
	s := st.Snapshot()
	if s.Parks == 0 {
		t.Error("parks == 0 after a 30ms blocked reader under SpinThenPark")
	}
	if s.Unparks != s.Parks {
		t.Errorf("quiescent unparks %d != parks %d", s.Unparks, s.Parks)
	}
}

// TestStatsSampledLatency drives enough passages through one block to
// guarantee histogram samples on both classes.
func TestStatsSampledLatency(t *testing.T) {
	st := &LockStats{}
	l := NewMWSF(WithStats(st))
	// Separate loops: the sampling counter is shared between the two
	// classes, so strict alternation would pin one class to odd counts
	// and starve its histogram.
	for i := 0; i < statsSampleEvery*4; i++ {
		wt := l.Lock()
		l.Unlock(wt)
	}
	for i := 0; i < statsSampleEvery*4; i++ {
		rt := l.RLock()
		l.RUnlock(rt)
	}
	s := st.Snapshot()
	if s.ReadWait.Count == 0 {
		t.Error("read_wait histogram empty after 256 sampled-window reads")
	}
	if s.WriteWait.Count == 0 {
		t.Error("write_wait histogram empty after 256 sampled-window writes")
	}
	if s.WriteHold.Count == 0 {
		t.Error("write_hold histogram empty after 256 sampled-window writes")
	}
	if err := s.CheckCoherence(); err != nil {
		t.Errorf("CheckCoherence: %v", err)
	}
}

// TestStatsDisabledZeroAlloc pins the disabled path: a lock built
// without WithStats must not allocate on any steady-state acquire
// path — the seam is a nil check, nothing more.
func TestStatsDisabledZeroAlloc(t *testing.T) {
	locks := map[string]statsLock{
		"mwsf":       NewMWSF(),
		"bravo-mwsf": NewBravoMWSF(),
		"epoch-mwsf": NewEpochMWSF(),
	}
	for name, l := range locks {
		l := l
		// Warm pools (MCS nodes, epoch slots) before measuring.
		for i := 0; i < 8; i++ {
			wt := l.Lock()
			l.Unlock(wt)
			rt := l.RLock()
			l.RUnlock(rt)
		}
		if n := testing.AllocsPerRun(200, func() {
			rt := l.RLock()
			l.RUnlock(rt)
		}); n != 0 {
			t.Errorf("%s: RLock/RUnlock allocates %.1f/op without stats", name, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			wt := l.Lock()
			l.Unlock(wt)
		}); n != 0 {
			t.Errorf("%s: Lock/Unlock allocates %.1f/op without stats", name, n)
		}
	}
}

// BenchmarkStatsOverhead is the A/B pin for the seam: the same
// read-heavy uncontended loop with the block absent and present.
// The disabled cell is the one the acceptance criteria compare
// against the pre-seam baseline.
func BenchmarkStatsOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		l := NewBravoMWSF()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				tok := l.RLock()
				l.RUnlock(tok)
			}
		})
	})
	b.Run("on", func(b *testing.B) {
		st := &LockStats{}
		l := NewBravoMWSF(WithStats(st))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				tok := l.RLock()
				l.RUnlock(tok)
			}
		})
	})
}
