package rwlock

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
	"unsafe"
)

// The Slim variants' whole reason to exist is their size; everything
// else about them is the BRAVO / epoch-parity protocols restated over
// a shared arena.  These tests pin the size, the mutual exclusion
// (under -race, which sees through the packed state word), the
// shared-arena isolation between lock instances, and the Try/Ctx
// contracts' commitment points.

// TestSlimSize pins the 16-byte footprint — the number the serving
// tier's bytes/lock-instance metric is built on.  A field added to
// either struct is a deliberate decision that must change this test.
func TestSlimSize(t *testing.T) {
	if sz := unsafe.Sizeof(SlimBravo{}); sz != 16 {
		t.Errorf("sizeof(SlimBravo) = %d, want 16", sz)
	}
	if sz := unsafe.Sizeof(SlimEpoch{}); sz != 16 {
		t.Errorf("sizeof(SlimEpoch) = %d, want 16", sz)
	}
}

// exerciseRW hammers one lock with concurrent readers and writers
// over plain (non-atomic) shared variables: the race detector proves
// mutual exclusion, and the a==b invariant proves readers never
// observe a half-finished write section.
func exerciseRW(t *testing.T, l RWLock) {
	t.Helper()
	var a, b int64 // protected by l
	const writers, readers, iters = 4, 6, 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tok := l.Lock()
				a++
				if i%16 == 0 {
					runtime.Gosched() // widen the window inside the CS
				}
				b++
				l.Unlock(tok)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tok := l.RLock()
				x, y := a, b
				l.RUnlock(tok)
				if x != y {
					t.Errorf("torn read: a=%d b=%d", x, y)
					return
				}
			}
		}()
	}
	wg.Wait()
	if a != writers*iters || b != a {
		t.Fatalf("after run: a=%d b=%d, want both %d", a, b, writers*iters)
	}
}

func TestSlimBravoExclusion(t *testing.T) { exerciseRW(t, NewSlimBravo()) }
func TestSlimEpochExclusion(t *testing.T) { exerciseRW(t, NewSlimEpoch()) }

// TestSharedTableExclusion runs the same hammer over locks of every
// shared-arena flavor CONCURRENTLY on one arena: exclusion must hold
// per lock, with all their readers interleaved in the same slots.
func TestSharedTableExclusion(t *testing.T) {
	tbl := NewReaderTable(64)
	locks := []RWLock{
		NewSlimBravo(WithSharedReaderTable(tbl)),
		NewSlimEpoch(WithSharedReaderTable(tbl)),
		NewBravoMWSF(WithSharedReaderTable(tbl)),
		NewEpochMWSF(WithSharedReaderTable(tbl)),
	}
	var wg sync.WaitGroup
	for _, l := range locks {
		wg.Add(1)
		go func(l RWLock) {
			defer wg.Done()
			exerciseRW(t, l)
		}(l)
	}
	wg.Wait()
}

// TestSharedTableWriterIsolation: a fast-path reader of lock A must
// not delay a revoking writer of lock B sharing the same arena — B's
// drain skips A's slots.  (The reverse — A's own writer waiting for
// A's reader — is the ordinary drain, also checked.)
func TestSharedTableWriterIsolation(t *testing.T) {
	tbl := NewReaderTable(64)
	for _, tc := range []struct {
		name string
		mk   func() RWLock
	}{
		{"SlimBravo", func() RWLock { return NewSlimBravo(WithSharedReaderTable(tbl)) }},
		{"SlimEpoch", func() RWLock { return NewSlimEpoch(WithSharedReaderTable(tbl)) }},
		{"Bravo/shared", func() RWLock { return NewBravoMWSF(WithSharedReaderTable(tbl)) }},
		{"Epoch/shared", func() RWLock { return NewEpochMWSF(WithSharedReaderTable(tbl)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			la, lb := tc.mk(), tc.mk()
			rt := la.RLock() // fast claim in the shared arena (bias/epoch open)
			// B's writer must complete despite A's live reader.
			done := make(chan struct{})
			go func() {
				wt := lb.Lock()
				lb.Unlock(wt)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("lock B's writer blocked on lock A's fast-path reader")
			}
			// A's own writer must wait for the reader, then proceed.
			adone := make(chan struct{})
			go func() {
				wt := la.Lock()
				la.Unlock(wt)
				close(adone)
			}()
			select {
			case <-adone:
				t.Fatal("lock A's writer completed with A's fast-path reader inside")
			case <-time.After(20 * time.Millisecond):
			}
			la.RUnlock(rt)
			select {
			case <-adone:
			case <-time.After(5 * time.Second):
				t.Fatal("lock A's writer did not observe the reader's release")
			}
		})
	}
}

// TestSlimTryLock: the non-blocking probe's contract — busy while a
// writer holds, busy (with the bias restored, not drained) while a
// fast reader is published, granted on a quiet lock.
func TestSlimTryLock(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() TryRWLock
	}{
		{"SlimBravo", func() TryRWLock { return NewSlimBravo() }},
		{"SlimEpoch", func() TryRWLock { return NewSlimEpoch() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.mk()
			wt := l.Lock()
			if _, ok := l.TryLock(); ok {
				t.Fatal("TryLock succeeded while a writer holds")
			}
			if _, ok := l.TryRLock(); ok {
				t.Fatal("TryRLock succeeded while a writer holds")
			}
			l.Unlock(wt)

			rt := l.RLock() // fast path: lock is fresh/open
			if _, ok := l.TryLock(); ok {
				t.Fatal("TryLock succeeded with a fast-path reader inside")
			}
			l.RUnlock(rt)

			wt, ok := l.TryLock()
			if !ok {
				t.Fatal("TryLock failed on a quiet lock")
			}
			l.Unlock(wt)
			rt, ok = l.TryRLock()
			if !ok {
				t.Fatal("TryRLock failed on a quiet lock")
			}
			l.RUnlock(rt)
		})
	}
}

// TestSlimBravoTryLockRestoresBias: an aborted Try-revocation must
// leave the fast path armed (Bravo.TryLock's contract, kept by the
// slim build).
func TestSlimBravoTryLockRestoresBias(t *testing.T) {
	l := NewSlimBravo()
	rt := l.RLock()
	if _, ok := l.TryLock(); ok {
		t.Fatal("TryLock succeeded with a published reader")
	}
	if !l.ReadBiased() {
		t.Fatal("aborted TryLock left the bias revoked")
	}
	l.RUnlock(rt)
	rt = l.RLock()
	if rt.side != slimFastSide {
		t.Fatal("reader lost the fast path after an aborted TryLock")
	}
	l.RUnlock(rt)
}

// TestSlimCtx: cancellation aborts waits before the commitment point
// and never after — a granted Ctx acquisition on a cancelled context
// is impossible for these locks only before the CAS.
func TestSlimCtx(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() CtxRWLock
	}{
		{"SlimBravo", func() CtxRWLock { return NewSlimBravo() }},
		{"SlimEpoch", func() CtxRWLock { return NewSlimEpoch() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.mk()
			wt := l.Lock()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			if _, err := l.LockCtx(ctx); err == nil {
				t.Fatal("LockCtx returned nil while another writer holds forever")
			}
			ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel2()
			if _, err := l.RLockCtx(ctx2); err == nil {
				t.Fatal("RLockCtx returned nil while a writer holds forever")
			}
			l.Unlock(wt)
			// Quiet lock: both succeed with a live context.
			wt2, err := l.LockCtx(context.Background())
			if err != nil {
				t.Fatalf("LockCtx on a quiet lock: %v", err)
			}
			l.Unlock(wt2)
			rt, err := l.RLockCtx(context.Background())
			if err != nil {
				t.Fatalf("RLockCtx on a quiet lock: %v", err)
			}
			l.RUnlock(rt)
		})
	}
}

// TestSlimBravoRearm: after a revocation, slow passages spend the
// countdown and the bias re-arms, returning readers to the fast path
// — the full Bravo's throttle behavior at slim size.
func TestSlimBravoRearm(t *testing.T) {
	l := NewSlimBravo()
	wt := l.Lock() // revokes
	l.Unlock(wt)
	if l.ReadBiased() {
		t.Fatal("bias armed immediately after revocation")
	}
	// Budget is 1 + Slots()/8 (+0 busy); spend it with slow passages.
	tbl := slimTable(l.ref)
	for i := 0; i < tbl.Slots()/8+2; i++ {
		rt := l.RLock()
		l.RUnlock(rt)
	}
	if !l.ReadBiased() {
		t.Fatal("bias did not re-arm after the countdown was spent")
	}
	rt := l.RLock()
	if rt.side != slimFastSide {
		t.Fatal("reader not on the fast path after re-arm")
	}
	l.RUnlock(rt)
}

// TestSlimEpochReopens: every Unlock advances the epoch back to even,
// so the reader after any write is immediately on the fast path (the
// no-revocation-dead-zone property Epoch has over Bravo).
func TestSlimEpochReopens(t *testing.T) {
	l := NewSlimEpoch()
	for i := 0; i < 3; i++ {
		wt := l.Lock()
		l.Unlock(wt)
		rt := l.RLock()
		if rt.side != slimFastSide {
			t.Fatalf("write %d: next reader not on the fast path", i)
		}
		l.RUnlock(rt)
	}
}
