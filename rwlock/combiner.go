package rwlock

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file is the flat-combining writer-arbitration layer: the third
// implementation behind the writerMutex contract of mcs.go, after
// Hendler, Incze, Shavit & Tzafrir, "Flat Combining and the
// Synchronization-Parallelism Tradeoff" (SPAA 2010).
//
// The MCS queue and the Anderson array both pay one full lock handoff
// per write passage: the releasing writer performs a remote store+wake
// into the successor's cell, and the successor must then be scheduled
// before the lock makes progress.  Under writer churn (the PR 4
// writer-churn measurement) that wake-to-run latency, multiplied by
// the queue depth, is the whole writer-wait tail.  A combining arbiter
// turns N handoffs into one: writers PUBLISH their critical section as
// a closure instead of queueing for the lock, and one of them — the
// combiner — executes every pending critical section back-to-back on
// its own core inside a single acquisition of the inner mutex, then
// wakes each publisher through its record's waitCell.  The batch costs
// one handoff (the inner acquisition) however many writers it retires;
// the cache line holding the protected data stays hot on the
// combiner's core instead of bouncing between writers.
//
// What the trade buys and what it spends: throughput and tail latency
// under churn, paid for with STRICT FCFS ORDER.  Within one batch the
// combiner executes records in publication order, but publication
// order is CAS-success order on the list head, not arrival order, and
// a later batch can complete before an earlier-arrived token-path
// writer that is still queued on the inner mutex.  Starvation-freedom
// survives: every published record is executed before the combiner
// that took responsibility for it releases the inner mutex (see the
// no-stranding argument on exec).  This is the same
// throughput-over-strict-handoff trade Popov & Mazonka (arXiv:
// 1309.4507) motivate for fair RW locks, applied to the writer path
// the way BRAVO (arXiv:1810.01553) applies read-side bias to the
// reader path.
//
// The combiner only engages through the closure write path
// (Lock.Write / rwlock.Write / Guard.Write): a write critical section
// expressed as code between Lock and Unlock cannot be shipped to
// another goroutine.  Token-path writers on a combining lock fall
// through to the inner mutex (acquire/release below), fully mutually
// exclusive with batches but without the batching win.

// FuncWriter is the closure write path: Write runs cs under the
// lock's write lock.  Every lock in this package whose writer layer
// can batch implements it (MWSF, MWRP, MWWP, Bravo, and the
// single-writer locks for API uniformity); on a lock built with
// WithCombiningWriters, Write is the path on which flat combining
// engages — cs may then execute on another goroutine (the combiner),
// so it must not depend on goroutine identity (no goroutine-local
// state, no Lock/Unlock pairing expectations).  It must not call back
// into the same lock's write side, and it must not panic: on a
// combining lock the panic would unwind the combiner's goroutine —
// not necessarily the submitter's — with the arbitration mutex held.
type FuncWriter interface {
	Write(cs func())
}

// Write runs cs under l's write lock: through the lock's own Write
// method when it has one (the path on which a combining lock
// batches), otherwise through a plain Lock/Unlock pair.  It is the
// token-free way to issue a write against any RWLock.
func Write(l RWLock, cs func()) {
	if fw, ok := l.(FuncWriter); ok {
		fw.Write(cs)
		return
	}
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// CtxFuncWriter is the deadline-aware closure write path: WriteCtx
// runs cs under the lock's write lock unless ctx is cancelled first,
// in which case it returns ctx.Err() WITHOUT running cs.  A nil
// return guarantees cs ran to completion under the lock.  On a
// combining lock the publication CAS is the point of no return: a
// record already in the publication list belongs to some combiner and
// WILL execute, so past that instant WriteCtx commits and waits out
// the batch even on a cancelled context (see combiner.execCtx).
type CtxFuncWriter interface {
	WriteCtx(ctx context.Context, cs func()) error
}

// WriteCtx runs cs under l's write lock with ctx bounding the WAIT
// for the lock (never the critical section itself): through the
// lock's own WriteCtx when it has one, otherwise through a
// LockCtx/Unlock pair, otherwise — when l predates the ctx surface —
// by delegating to Write, uncancellably.  A non-nil error means cs
// did not and will not run.
func WriteCtx(ctx context.Context, l RWLock, cs func()) error {
	if fw, ok := l.(CtxFuncWriter); ok {
		return fw.WriteCtx(ctx, cs)
	}
	if cl, ok := l.(CtxRWLock); ok {
		t, err := cl.LockCtx(ctx)
		if err != nil {
			return err
		}
		defer l.Unlock(t)
		cs()
		return nil
	}
	Write(l, cs)
	return nil
}

// WithCombiningWriters selects flat-combining writer arbitration for
// the multi-writer constructors (NewMWSF, NewMWRP, NewMWWP and their
// Bravo wrappers): write critical sections submitted through the
// closure path (Write) are batched and executed by one writer — the
// combiner — inside a single acquisition of the inner arbitration
// mutex (the unbounded MCS queue by default; the bounded Anderson
// array if WithBoundedWriters is also given).  Choose it when many
// short write sections contend (writer churn, bursty update storms):
// a batch retires any number of writers for one lock handoff.  The
// cost is strict FCFS order among writers — combining preserves
// starvation-freedom but orders writers by publication, not arrival
// (see the package comment in combiner.go) — and that write sections
// run on the combiner's goroutine, so they must not rely on goroutine
// identity.  Token-path writers (Lock/Unlock) bypass the batching and
// go straight to the inner mutex.
//
// Composing with WithBoundedWriters puts the Anderson array under the
// combiner, which CHANGES what the bound means: publishers queue on
// the combiner's unbounded publication list and only combiner
// elections (and token-path writers) pass the Anderson admission
// gate, so the cap throttles concurrent batch executors — effectively
// nobody — rather than concurrent write attempts.  If the hard
// admission cap is the point, do not combine.
func WithCombiningWriters() Option {
	return func(o *options) { o.combining = true }
}

// combineSizeBuckets bounds the exact batch-size counts kept by a
// combiner: sizes 1..combineSizeBuckets-1 are counted exactly, the
// last bucket aggregates everything larger.  Sized past the 256
// concurrent publishers of the churn scenarios (whose maximum batch
// is the lane count) so their whole distribution is exact.
const combineSizeBuckets = 512

// CombinerStats is a snapshot of a combining lock's batching
// behavior: how many batches the combiner executed, how many write
// critical sections they retired, and the batch-size distribution.
// Ops/Batches is the mean handoff amortization; Sizes[i] counts
// batches of size i+1, with the last entry aggregating larger
// batches.  Read it at quiescence (no in-flight writers) — the
// counters are maintained under the inner mutex, so a concurrent read
// would be racy.
type CombinerStats struct {
	Batches  int64
	Ops      int64
	MaxBatch int64
	Sizes    []int64
}

// combineRecord is one published write critical section: the closure,
// the link to the previously published record, and the completion
// cell its publisher waits on.  Records are recycled through the
// combiner's pool; the done cell is the recycling barrier — after the
// combiner's storeWake the record belongs to its publisher again and
// the combiner must not touch it (the execute loop reads next before
// signaling for exactly this reason).  A wakeAll still in flight from
// a previous life of the cell is benign: it can only cause a spurious
// broadcast, which a parked waiter answers by re-checking its
// predicate — the VALUE word was re-written by the new owner before
// any new wait began.
type combineRecord struct {
	cs   func()
	next *combineRecord
	_    [48]byte
	done waitCell
}

// combiner is the flat-combining arbitration layer.  It implements
// writerMutex (token-path acquire/release pass through to the inner
// mutex) plus the batched-execute extension exec, which is what the
// locks' Write methods call.
//
// RMR accounting (cache-coherent model): a publisher performs one CAS
// to publish and then waits on its own record's done cell — re-reads
// of a locally cached word, invalidated only by the combiner's single
// completion store — so a combined passage is O(1) RMRs for the
// publisher, like a queue-lock passage.  The combiner performs O(1)
// RMRs per record it executes (one swap amortized over the batch, one
// store+wake per record) — the paper's per-passage bound, relocated
// onto one goroutine rather than exceeded.
type combiner struct {
	// head is the publication list: a Treiber stack the publishers CAS
	// themselves onto.  The pusher that turns the list non-empty (its
	// CAS observed nil) becomes the combiner for that epoch; everyone
	// else waits on their record.
	head atomic.Pointer[combineRecord]
	_    [56]byte
	// inner serializes batches against each other and against
	// token-path writers; every batch executes inside exactly one
	// inner acquisition.
	inner writerMutex
	// passage, when set, wraps every executed critical section in the
	// owning lock's write passage (e.g. swwpCore.writePassage), so
	// Write submits the bare caller closure and allocates nothing per
	// op.  Set once by the lock constructor before the lock escapes;
	// nil means records run their cs directly (the raw-mutex use the
	// conformance suite exercises).
	passage func(func())
	// retire is the batch-boundary hook (see writerMutex.onBatchRetire
	// in mcs.go): the drain loop invokes it once per swapped batch,
	// after the batch's last critical section has run and before the
	// next swap (or the inner release); the token path invokes it once
	// per release.  The registration is NOT forwarded to the inner
	// mutex — the batch boundary belongs to the outermost arbiter, and
	// forwarding would double-fire it on every inner handoff.  Written
	// once before the lock escapes, read under the inner mutex.
	retire func()
	pool   sync.Pool
	// stats, when non-nil, receives live batch counters (Batches,
	// BatchMax, CombinedOps) alongside the quiescent snapshot counters
	// below.  See WithStats.
	stats *LockStats

	// Batch statistics, written only while holding inner (batches are
	// serialized), read at quiescence via snapshot().
	batches  int64
	ops      int64
	maxBatch int64
	sizes    [combineSizeBuckets]int64
}

// newCombiner wraps inner with flat combining; published records'
// completion cells wait with strategy s, counting into st when
// non-nil.
func newCombiner(inner writerMutex, s WaitStrategy, st *LockStats) *combiner {
	c := &combiner{inner: inner, stats: st}
	c.pool.New = func() any {
		r := &combineRecord{}
		r.done.setStrategy(s)
		r.done.setStats(st)
		return r
	}
	return c
}

// exec publishes cs and returns once it has been executed under the
// inner mutex — by this goroutine if it wins the combiner election,
// by another combiner otherwise.
//
// No record can be stranded: the publication list turns non-empty
// only through a push whose CAS observed nil, and that pusher becomes
// a combiner which (holding inner) re-swaps the list until it
// personally observes empty.  A record pushed onto a non-empty list
// therefore always sits above some elected combiner's record, and
// every swap atomically takes the whole list — so each record is
// taken by exactly one combiner's swap and executed exactly once.
// Two elected combiners (the list can go empty and non-empty again
// while a batch runs) serialize on the inner mutex; a later combiner
// may find its own record already executed by an earlier one and its
// swap empty, which is fine — it never executes its closure outside
// the drain loop.
func (c *combiner) exec(cs func()) {
	r := c.pool.Get().(*combineRecord)
	r.cs = cs
	r.done.store(cellFalse)
	var elected bool
	for {
		old := c.head.Load()
		r.next = old
		if c.head.CompareAndSwap(old, r) {
			elected = old == nil
			break
		}
	}
	c.finish(r, elected)
}

// execCtx is exec with an abort seam whose point of no return is the
// publication CAS.  Before the CAS the record is exclusively ours and
// cancellation simply recycles it — cs has not run and never will.
// The instant the CAS lands the record is in the publication list,
// owned by whichever combiner's swap takes it, and WILL execute;
// retracting it is impossible (another combiner may already hold it
// in a swapped-off batch), so from there execCtx commits: it waits
// out the batch — or runs it, if elected — ignoring ctx, exactly like
// exec.  A nil return therefore means cs ran; a non-nil return means
// it did not and will not.
func (c *combiner) execCtx(ctx context.Context, cs func()) error {
	if ctx.Done() == nil {
		c.exec(cs)
		return nil
	}
	r := c.pool.Get().(*combineRecord)
	r.cs = cs
	r.done.store(cellFalse)
	var elected bool
	for {
		if err := ctx.Err(); err != nil {
			// Not yet published: the record is still exclusively ours.
			r.cs = nil
			c.pool.Put(r)
			return err
		}
		old := c.head.Load()
		r.next = old
		if c.head.CompareAndSwap(old, r) { // point of no return
			elected = old == nil
			break
		}
	}
	c.finish(r, elected)
	return nil
}

// finish completes a published record r: wait for its execution when
// another goroutine owns the epoch, or run the drain loop when this
// publisher was elected (its CAS observed nil).
func (c *combiner) finish(r *combineRecord, elected bool) {
	if !elected {
		// Another goroutine owns this epoch; its drain loop will
		// execute our record and signal the cell (spin or park per
		// the lock's strategy).
		if st := c.stats; st != nil && r.done.load() != cellTrue {
			st.WriteContended.Add(1)
		}
		r.done.wait(cellTrue)
		c.pool.Put(r)
		return
	}
	slot := c.inner.acquire()
	for {
		batch := c.head.Swap(nil)
		if batch == nil {
			break
		}
		// Reverse the LIFO stack into publication order and count it,
		// BEFORE executing or signaling anything: the stats write must
		// happen-before every publisher's wakeup (so a post-run reader
		// of the stats races with nothing), and next pointers must not
		// be read after a record's owner has been released.
		var fifo *combineRecord
		var n int64
		for rec := batch; rec != nil; {
			next := rec.next
			rec.next = fifo
			fifo = rec
			rec = next
			n++
		}
		c.batches++
		c.ops += n
		if n > c.maxBatch {
			c.maxBatch = n
		}
		if n < combineSizeBuckets {
			c.sizes[n-1]++
		} else {
			c.sizes[combineSizeBuckets-1]++
		}
		if st := c.stats; st != nil {
			// CombinedOps, then Batches, then BatchMax: each invariant's
			// superset side first, so a concurrent Snapshot (which loads
			// in the reverse order) never sees batches > combined_ops or
			// a positive batch_max with zero batches.
			st.CombinedOps.Add(uint64(n))
			st.Batches.Add(1)
			statsMax(&st.BatchMax, uint64(n))
		}
		for rec := fifo; rec != nil; {
			next := rec.next
			cs := rec.cs
			rec.cs = nil
			if c.passage != nil {
				c.passage(cs)
			} else {
				cs()
			}
			// After this store the record belongs to its publisher
			// again (it may be recycled immediately); rec must not be
			// touched past this line.  Our own record is the
			// exception — nobody waits on it, we recycle it below.
			rec.done.storeWake(cellTrue)
			rec = next
		}
		if c.retire != nil {
			// Batch boundary: every critical section of this batch has
			// run, the inner mutex is still held, and the next batch (if
			// the list refilled) has not started.  One firing here is
			// what lets one grace period retire the whole batch's
			// versions (see epoch.go).
			c.retire()
		}
	}
	c.inner.release(slot)
	// Our record was in the list we pushed onto and every record a
	// combiner takes responsibility for is executed before its drain
	// observes empty — see the comment above — so cs has run by now.
	c.pool.Put(r)
}

// acquire, tryAcquire, acquireCtx and release are the token path: a
// combining lock's Lock/Unlock cannot ship its critical section, so
// it serializes on the inner mutex directly, mutually exclusive with
// running batches.  The try/ctx semantics are therefore the inner
// mutex's own — a busy tryAcquire may be a running batch, and an
// acquireCtx cancellation unlinks from the inner queue, never from
// the publication list.
func (c *combiner) acquire() wslot            { return c.inner.acquire() }
func (c *combiner) tryAcquire() (wslot, bool) { return c.inner.tryAcquire() }
func (c *combiner) acquireCtx(ctx context.Context) (wslot, error) {
	return c.inner.acquireCtx(ctx)
}
func (c *combiner) release(s wslot) {
	if c.retire != nil {
		// A token-path passage is a batch of one; fire before the inner
		// release so the hook runs while the mutex is still held.
		c.retire()
	}
	c.inner.release(s)
}

// onBatchRetire registers the batch-boundary hook on the COMBINER (not
// the inner mutex; see the retire field).  Must be called before the
// lock is shared; at most once.
func (c *combiner) onBatchRetire(fn func()) {
	if c.retire != nil {
		panic("rwlock: onBatchRetire registered twice on the same writer mutex")
	}
	c.retire = fn
}

// snapshot copies the batch counters.  Quiescence is the caller's
// obligation (see CombinerStats).
func (c *combiner) snapshot() CombinerStats {
	s := CombinerStats{
		Batches:  c.batches,
		Ops:      c.ops,
		MaxBatch: c.maxBatch,
		Sizes:    make([]int64, combineSizeBuckets),
	}
	copy(s.Sizes, c.sizes[:])
	return s
}

var _ writerMutex = (*combiner)(nil)

// combinerStatser is implemented by every lock that can report
// batching statistics; CombinerStatsOf is the generic accessor.
type combinerStatser interface {
	CombinerStats() (CombinerStats, bool)
}

// CombinerStatsOf returns the batch statistics of l when l is (or
// wraps) a lock built with WithCombiningWriters, and ok == false
// otherwise.  Read at quiescence — the harness queries it after a
// workload's workers have joined.
func CombinerStatsOf(l RWLock) (CombinerStats, bool) {
	if cs, ok := l.(combinerStatser); ok {
		return cs.CombinerStats()
	}
	return CombinerStats{}, false
}
