package rwlock

import "sync/atomic"

// AndersonLock is T.E. Anderson's array-based queueing mutual
// exclusion lock (IEEE TPDS 1990): a fetch&increment ticket assigns
// each acquirer a slot in a circular array of spin flags, and release
// opens the successor slot.  Each process waits on its own cache line
// (a waitCell, so the waiting behavior follows the lock's
// WaitStrategy), giving O(1) RMR complexity on cache-coherent
// machines, plus FCFS and starvation freedom.
//
// The paper's Figure 3 transformation and Figure 4 algorithm use this
// lock (called M) to serialize writers; it is exported because it is
// independently useful and independently tested.
//
// The array has fixed capacity: at most maxConcurrent goroutines may
// be inside Acquire/Release at once.  A counting semaphore enforces
// the bound, so exceeding it blocks rather than corrupts.
type AndersonLock struct {
	ticket atomic.Uint64
	_      [56]byte
	slots  []waitCell
	sem    chan struct{}
}

// NewAnderson returns an Anderson lock sized for maxConcurrent
// concurrent acquirers (minimum 1).
func NewAnderson(maxConcurrent int, opts ...Option) *AndersonLock {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	o := applyOptions(opts)
	l := &AndersonLock{
		slots: make([]waitCell, maxConcurrent),
		sem:   make(chan struct{}, maxConcurrent),
	}
	for i := range l.slots {
		l.slots[i].setStrategy(o.strategy)
	}
	l.slots[0].store(cellTrue)
	return l
}

// Capacity returns the maximum number of concurrent acquirers.
func (l *AndersonLock) Capacity() int { return len(l.slots) }

// Acquire blocks until the caller owns the lock and returns the slot
// that must be passed to Release.
func (l *AndersonLock) Acquire() uint32 {
	l.sem <- struct{}{}
	slot := uint32((l.ticket.Add(1) - 1) % uint64(len(l.slots)))
	l.slots[slot].wait(cellTrue)
	l.slots[slot].store(cellFalse) // own slot reset: nobody waits for false
	return slot
}

// Release hands the lock to the next waiter (or leaves it free),
// waking the successor if it parked.
func (l *AndersonLock) Release(slot uint32) {
	l.slots[(slot+1)%uint32(len(l.slots))].storeWake(cellTrue)
	<-l.sem
}
