package rwlock

import (
	"context"
	"sync/atomic"
)

// AndersonLock is T.E. Anderson's array-based queueing mutual
// exclusion lock (IEEE TPDS 1990): a fetch&increment ticket assigns
// each acquirer a slot in a circular array of spin flags, and release
// opens the successor slot.  Each process waits on its own cache line
// (a waitCell, so the waiting behavior follows the lock's
// WaitStrategy), giving O(1) RMR complexity on cache-coherent
// machines, plus FCFS and starvation freedom.
//
// The paper's Figure 3 transformation and Figure 4 algorithm use this
// lock (called M) to serialize writers; in this package it is the
// BOUNDED writer-arbitration option, selected by WithBoundedWriters
// (the default is the unbounded MCS queue in mcs.go).  It remains
// exported because it is independently useful and independently
// tested.
//
// # The admission gate
//
// The array has fixed capacity: the ticket/slot protocol is only
// correct while at most maxConcurrent goroutines are between Acquire
// and Release.  This Go port enforces the bound with a counting
// semaphore (a buffered channel) at the top of Acquire, so exceeding
// the capacity blocks rather than corrupts.  That gate is ADMISSION
// CONTROL LAYERED OUTSIDE THE PAPER'S PROTOCOL, not part of it: the
// paper's model simply has no more than maxConcurrent processes, so
// its O(1)-RMR accounting covers only the ticket fetch&add and the
// per-slot wait.  A goroutine blocked at the gate is sleeping on a
// runtime channel — no spinning, no cache traffic, but also no FCFS
// ordering relative to other gate-blocked goroutines (channel wakeups
// are unordered) and no RMR bound, because the paper's cost model
// never priced this wait.  FCFS and the O(1) bound hold from the
// ticket fetch&add onward, i.e. among admitted goroutines.  TryAcquire
// surfaces the gate (and the lock state) as a non-blocking probe.
type AndersonLock struct {
	ticket atomic.Uint64
	_      [56]byte
	// released counts completed Releases.  The lock is unheld with an
	// empty queue exactly when released == ticket; TryAcquire uses the
	// pair as its non-blocking availability check.
	released atomic.Uint64
	_        [56]byte
	slots    []waitCell
	sem      chan struct{}
	// retire is the batch-boundary hook (see writerMutex.onBatchRetire
	// in mcs.go): one passage is a batch of one, so Release invokes it
	// once at entry, before the successor slot opens.  Written once
	// before the lock escapes, read per release — no atomicity needed.
	retire func()
	// stats, when non-nil, receives queue-geometry counters (depth,
	// depth high-water, contended acquisitions).  See WithStats.
	stats *LockStats
}

// NewAnderson returns an Anderson lock sized for maxConcurrent
// concurrent acquirers (minimum 1).
func NewAnderson(maxConcurrent int, opts ...Option) *AndersonLock {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	o := applyOptions(opts)
	l := &AndersonLock{
		slots: make([]waitCell, maxConcurrent),
		sem:   make(chan struct{}, maxConcurrent),
		stats: o.stats,
	}
	for i := range l.slots {
		l.slots[i].setStrategy(o.strategy)
		l.slots[i].setStats(o.stats)
	}
	l.slots[0].store(cellTrue)
	return l
}

// Capacity returns the maximum number of concurrent acquirers.
func (l *AndersonLock) Capacity() int { return len(l.slots) }

// Acquire blocks until the caller owns the lock and returns the slot
// that must be passed to Release.
func (l *AndersonLock) Acquire() uint32 {
	l.sem <- struct{}{} // admission gate (see the type doc)
	slot := uint32((l.ticket.Add(1) - 1) % uint64(len(l.slots)))
	if st := l.stats; st != nil {
		statsMax(&st.QueueDepthMax, uint64(st.QueueDepth.Add(1)))
		if l.slots[slot].load() != cellTrue {
			st.WriteContended.Add(1)
		}
	}
	l.slots[slot].wait(cellTrue)
	l.slots[slot].store(cellFalse) // own slot reset: nobody waits for false
	return slot
}

// TryAcquire attempts to take the lock without blocking.  It fails
// (returning ok == false) when the admission gate is full — capacity
// Releases are outstanding — or when the lock is held or queued, i.e.
// whenever Acquire would have to wait at either layer.  On success
// the caller owns the lock and must pass the returned slot to
// Release.  Tests use it to probe the admission gate directly; it is
// also the building block for caller-side load shedding.
func (l *AndersonLock) TryAcquire() (slot uint32, ok bool) {
	select {
	case l.sem <- struct{}{}:
	default:
		return 0, false // admission gate full
	}
	t := l.ticket.Load()
	// released == t means every issued ticket has completed its
	// Release, so the lock is free and slot t's flag is already open
	// (the opener's storeWake happens before its released increment).
	// Winning the CAS claims ticket t before any concurrent acquirer.
	if l.released.Load() != t || !l.ticket.CompareAndSwap(t, t+1) {
		<-l.sem
		return 0, false // held, queued, or lost the claim race
	}
	slot = uint32(t % uint64(len(l.slots)))
	if st := l.stats; st != nil {
		statsMax(&st.QueueDepthMax, uint64(st.QueueDepth.Add(1)))
	}
	l.slots[slot].wait(cellTrue)   // immediate: see the invariant above
	l.slots[slot].store(cellFalse) // own slot reset, as in Acquire
	return slot, true
}

// AcquireCtx is Acquire with an abort seam, which for an array lock
// is narrow: the ticket fetch&add is the point of no return.  A
// ticket assigns a fixed array slot that only this acquirer's
// completed passage can open for its successor — there is no way to
// give a ticket back without stranding everyone behind it (the
// classic limitation of array/ticket locks; abortable queue locks
// need the pointer structure MCS has).  Cancellation therefore wins
// only at the admission gate: while blocked on the semaphore, or on
// the recheck between the gate and the ticket.  Past the ticket the
// method ignores ctx and behaves exactly like Acquire.
func (l *AndersonLock) AcquireCtx(ctx context.Context) (uint32, error) {
	select {
	case l.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		// Both select cases were ready and the gate won the draw; honor
		// the cancellation while backing out is still free.
		<-l.sem
		return 0, err
	}
	// Point of no return: the ticket commits us to slot t.
	slot := uint32((l.ticket.Add(1) - 1) % uint64(len(l.slots)))
	if st := l.stats; st != nil {
		statsMax(&st.QueueDepthMax, uint64(st.QueueDepth.Add(1)))
		if l.slots[slot].load() != cellTrue {
			st.WriteContended.Add(1)
		}
	}
	l.slots[slot].wait(cellTrue)
	l.slots[slot].store(cellFalse)
	return slot, nil
}

// Release hands the lock to the next waiter (or leaves it free),
// waking the successor if it parked.
func (l *AndersonLock) Release(slot uint32) {
	if st := l.stats; st != nil {
		st.QueueDepth.Add(-1)
	}
	if l.retire != nil {
		// Batch boundary: the successor's slot has not opened yet, so
		// the hook runs while this passage still owns the lock.
		l.retire()
	}
	l.slots[(slot+1)%uint32(len(l.slots))].storeWake(cellTrue)
	l.released.Add(1)
	<-l.sem
}

// acquire, tryAcquire, acquireCtx and release adapt the exported API
// to the writerMutex contract (see mcs.go); the slot travels in the
// WToken.
func (l *AndersonLock) acquire() wslot { return wslot{idx: l.Acquire()} }

func (l *AndersonLock) tryAcquire() (wslot, bool) {
	idx, ok := l.TryAcquire()
	return wslot{idx: idx}, ok
}

func (l *AndersonLock) acquireCtx(ctx context.Context) (wslot, error) {
	idx, err := l.AcquireCtx(ctx)
	return wslot{idx: idx}, err
}

func (l *AndersonLock) release(s wslot) { l.Release(s.idx) }

// onBatchRetire registers the batch-boundary hook (see the writerMutex
// contract in mcs.go).  Must be called before the lock is shared; at
// most once.
func (l *AndersonLock) onBatchRetire(fn func()) {
	if l.retire != nil {
		panic("rwlock: onBatchRetire registered twice on the same writer mutex")
	}
	l.retire = fn
}

var _ writerMutex = (*AndersonLock)(nil)
