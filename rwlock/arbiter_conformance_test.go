package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Shared conformance suite for the writerMutex contract (mcs.go): any
// arbitration layer — today the unbounded MCS queue, the bounded
// Anderson array, and the flat combiner; tomorrow a NUMA cohort lock —
// must pass mutual exclusion, cross-goroutine slot transfer, and the
// one-shot-writer churn shape, under both wait strategies.  A new
// arbiter earns the whole suite by adding one line to
// conformanceArbiters.  CI runs the package under -race -shuffle=on,
// so any CS overlap is also a detected data race and any inter-test
// ordering assumption fails loudly.

// conformanceArbiters names every writerMutex implementation under a
// constructor taking the wait strategy.  The combiner is conformed
// over its token path here (acquire/release pass through to the inner
// mutex); its batched exec path has its own suite in combiner_test.go,
// including exec-vs-token mutual exclusion.
func conformanceArbiters(s WaitStrategy) map[string]func() writerMutex {
	return map[string]func() writerMutex{
		"mcs":      func() writerMutex { return newMCS(s) },
		"anderson": func() writerMutex { return NewAnderson(64, WithWaitStrategy(s)) },
		"combiner": func() writerMutex { return newCombiner(newMCS(s), s) },
	}
}

// forEachArbiter runs f once per (arbiter, wait strategy) pair as a
// parallel subtest.
func forEachArbiter(t *testing.T, f func(t *testing.T, newM func() writerMutex)) {
	for _, strat := range strategies() {
		for name, mk := range conformanceArbiters(strat) {
			mk := mk
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()
				f(t, mk)
			})
		}
	}
}

// TestArbiterMutualExclusion: exactly one holder at a time under heavy
// contention, and no passage is lost.
func TestArbiterMutualExclusion(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		const goroutines, laps = 8, 500
		var inside atomic.Int32
		var data int64 // plain, guarded only by m: -race checks exclusion
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < laps; k++ {
					s := m.acquire()
					if v := inside.Add(1); v != 1 {
						t.Errorf("%d holders inside the mutex", v)
					}
					data++
					inside.Add(-1)
					m.release(s)
				}
			}()
		}
		wg.Wait()
		if data != goroutines*laps {
			t.Fatalf("data = %d, want %d (lost passages)", data, goroutines*laps)
		}
	})
}

// TestArbiterSlotTransfer: slots are plain values that ride in WTokens
// across goroutines, so a release on a different goroutine than the
// acquire — with a live queue behind it, so the release performs a
// real handoff — must neither strand the queue nor corrupt the slot.
func TestArbiterSlotTransfer(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		const handoffs = 200
		slots := make(chan wslot)
		done := make(chan struct{})
		// Contender: keeps the queue non-empty so the remote releases
		// below hand off to a real waiter.
		go func() {
			defer close(done)
			for i := 0; i < handoffs; i++ {
				m.release(m.acquire())
			}
		}()
		// Acquirer: takes the mutex and ships the slot to the main
		// goroutine, which releases it.
		go func() {
			for i := 0; i < handoffs; i++ {
				slots <- m.acquire()
			}
		}()
		for i := 0; i < handoffs; i++ {
			m.release(<-slots)
		}
		<-done
	})
}

// TestArbiterOneShotWriters: the churn shape — well over 1000 DISTINCT
// goroutines, each acquiring and releasing exactly once.  This is the
// shape that distinguishes the contract's obligations from a
// convenient "same goroutines loop forever" assumption: queue nodes
// must recycle across owners (MCS), the admission gate must block
// rather than corrupt (Anderson, capacity 64 ≪ 1200), and the
// combiner's election must tolerate electors that die right after
// their only passage.
func TestArbiterOneShotWriters(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		const churners = 1200
		var data int64 // plain, guarded only by m
		var wg sync.WaitGroup
		for i := 0; i < churners; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := m.acquire()
				data++
				m.release(s)
			}()
		}
		wg.Wait()
		if data != churners {
			t.Fatalf("data = %d, want %d (lost one-shot passages)", data, churners)
		}
	})
}
