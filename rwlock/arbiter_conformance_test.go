package rwlock

import (
	"context"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Shared conformance suite for the writerMutex contract (mcs.go): any
// arbitration layer — today the unbounded MCS queue, the bounded
// Anderson array, and the flat combiner; tomorrow a NUMA cohort lock —
// must pass mutual exclusion, cross-goroutine slot transfer, and the
// one-shot-writer churn shape, under both wait strategies.  A new
// arbiter earns the whole suite by adding one line to
// conformanceArbiters.  CI runs the package under -race -shuffle=on,
// so any CS overlap is also a detected data race and any inter-test
// ordering assumption fails loudly.

// conformanceArbiters names every writerMutex implementation under a
// constructor taking the wait strategy.  The combiner is conformed
// over its token path here (acquire/release pass through to the inner
// mutex); its batched exec path has its own suite in combiner_test.go,
// including exec-vs-token mutual exclusion.
func conformanceArbiters(s WaitStrategy) map[string]func() writerMutex {
	return map[string]func() writerMutex{
		"mcs":      func() writerMutex { return newMCS(s, nil) },
		"anderson": func() writerMutex { return NewAnderson(64, WithWaitStrategy(s)) },
		"combiner": func() writerMutex { return newCombiner(newMCS(s, nil), s, nil) },
	}
}

// forEachArbiter runs f once per (arbiter, wait strategy) pair as a
// parallel subtest.
func forEachArbiter(t *testing.T, f func(t *testing.T, newM func() writerMutex)) {
	for _, strat := range strategies() {
		for name, mk := range conformanceArbiters(strat) {
			mk := mk
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()
				f(t, mk)
			})
		}
	}
}

// TestArbiterMutualExclusion: exactly one holder at a time under heavy
// contention, and no passage is lost.
func TestArbiterMutualExclusion(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		const goroutines, laps = 8, 500
		var inside atomic.Int32
		var data int64 // plain, guarded only by m: -race checks exclusion
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < laps; k++ {
					s := m.acquire()
					if v := inside.Add(1); v != 1 {
						t.Errorf("%d holders inside the mutex", v)
					}
					data++
					inside.Add(-1)
					m.release(s)
				}
			}()
		}
		wg.Wait()
		if data != goroutines*laps {
			t.Fatalf("data = %d, want %d (lost passages)", data, goroutines*laps)
		}
	})
}

// TestArbiterSlotTransfer: slots are plain values that ride in WTokens
// across goroutines, so a release on a different goroutine than the
// acquire — with a live queue behind it, so the release performs a
// real handoff — must neither strand the queue nor corrupt the slot.
func TestArbiterSlotTransfer(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		const handoffs = 200
		slots := make(chan wslot)
		done := make(chan struct{})
		// Contender: keeps the queue non-empty so the remote releases
		// below hand off to a real waiter.
		go func() {
			defer close(done)
			for i := 0; i < handoffs; i++ {
				m.release(m.acquire())
			}
		}()
		// Acquirer: takes the mutex and ships the slot to the main
		// goroutine, which releases it.
		go func() {
			for i := 0; i < handoffs; i++ {
				slots <- m.acquire()
			}
		}()
		for i := 0; i < handoffs; i++ {
			m.release(<-slots)
		}
		<-done
	})
}

// TestArbiterTryAcquire: the non-blocking probe of the contract —
// succeeds on a free mutex, fails without blocking on a held one, and
// a probe-taken mutex releases like any other.
func TestArbiterTryAcquire(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		s, ok := m.tryAcquire()
		if !ok {
			t.Fatal("tryAcquire failed on a free mutex")
		}
		if _, ok := m.tryAcquire(); ok {
			t.Fatal("tryAcquire succeeded while the mutex was held")
		}
		m.release(s)
		// Probe → blocking-path interleaving must stay coherent.
		s2 := m.acquire()
		if _, ok := m.tryAcquire(); ok {
			t.Fatal("tryAcquire succeeded against a blocking-path holder")
		}
		m.release(s2)
		s3, ok := m.tryAcquire()
		if !ok {
			t.Fatal("tryAcquire failed after release")
		}
		m.release(s3)
	})
}

// TestArbiterAcquireCtxGrantVsCancel: the contract's two-valued
// outcome under a deliberate cancel-while-queued.  A waiter whose
// context is cancelled behind a holder returns either an error (the
// cancellation won: it must NOT own the mutex, and the queue must not
// be stranded) or a valid slot (the grant won past the point of no
// return: it MUST own the mutex — Anderson's committed ticket takes
// this branch by design).  Either way the mutex stays fully
// functional afterwards.
func TestArbiterAcquireCtxGrantVsCancel(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		holder := m.acquire()
		ctx, cancel := context.WithCancel(context.Background())
		type res struct {
			s   wslot
			err error
		}
		done := make(chan res, 1)
		go func() {
			s, err := m.acquireCtx(ctx)
			done <- res{s, err}
		}()
		time.Sleep(5 * time.Millisecond) // let the waiter queue
		cancel()
		// An abortable arbiter returns the error now, before the
		// release; a committed one (Anderson past its ticket) returns
		// only after it.  Release and then collect either outcome.
		time.Sleep(5 * time.Millisecond)
		m.release(holder)
		r := <-done
		if r.err == nil {
			m.release(r.s) // grant won: we own it and must release it
		}
		// Queue must not be stranded either way.
		m.release(m.acquire())
	})
}

// TestArbiterAcquireCtxAlreadyCancelled: a pre-cancelled context on a
// FREE mutex may still be granted (the grant can win the race — MCS's
// empty-queue swap and Anderson's gate-then-ticket both commit before
// looking at ctx), but an error return must leave the mutex free.
func TestArbiterAcquireCtxAlreadyCancelled(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if s, err := m.acquireCtx(ctx); err == nil {
			m.release(s)
		}
		m.release(m.acquire()) // must not be stranded
	})
}

// TestArbiterCtxChurnRandomCancel is the conformance suite's
// cancellation hammer: many one-shot goroutines acquireCtx under
// contexts cancelled at random points — before queueing, while
// queued, during handoff — against a background of blocking
// acquirers.  Successful grants mutate plain data (-race proves
// exclusion held throughout); the final count proves no passage was
// lost and no cancellation leaked a held mutex; the terminal
// acquire/release proves no cancelled node stranded the queue.
// Recycled-node integrity is exercised by construction: every MCS
// adoption recycles nodes into the pool that the churn immediately
// reuses, so a stale wake or a missed reset shows up as a data race
// or a lost/duplicated passage.
func TestArbiterCtxChurnRandomCancel(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		const churners = 600
		var data int64 // plain, guarded only by m
		var granted atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < churners; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				// A third of the churners get a racing canceller with a
				// tiny random fuse; a sixth start already cancelled.
				switch rand.IntN(6) {
				case 0:
					cancel()
				case 1, 2:
					go func() {
						time.Sleep(time.Duration(rand.IntN(50)) * time.Microsecond)
						cancel()
					}()
				}
				s, err := m.acquireCtx(ctx)
				if err != nil {
					return
				}
				data++
				granted.Add(1)
				m.release(s)
			}()
		}
		// Blocking acquirers keep the queue non-empty so cancellations
		// land mid-queue and during handoffs, not only at the tail.
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 200; k++ {
					s := m.acquire()
					data++
					granted.Add(1)
					m.release(s)
				}
			}()
		}
		wg.Wait()
		if data != granted.Load() {
			t.Fatalf("data = %d, granted = %d (lost or phantom passages)", data, granted.Load())
		}
		m.release(m.acquire()) // queue must survive the churn
	})
}

// The three MCS-specific unlink geometries.  The conformance churn
// above hits them probabilistically; these pin each one
// deterministically, under both wait strategies.

// TestMCSCancelMidQueue: holder ← W1(ctx) ← W2.  Cancelling W1 must
// let the holder's release adopt W1's node and hand the lock to W2.
func TestMCSCancelMidQueue(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			m := newMCS(strat, nil)
			holder := m.acquire()
			ctx, cancel := context.WithCancel(context.Background())
			w1 := make(chan error, 1)
			go func() {
				_, err := m.acquireCtx(ctx)
				w1 <- err
			}()
			time.Sleep(5 * time.Millisecond) // W1 queued behind holder
			w2 := make(chan wslot, 1)
			go func() { w2 <- m.acquire() }()
			time.Sleep(5 * time.Millisecond) // W2 queued behind W1
			cancel()
			if err := <-w1; err != context.Canceled {
				t.Fatalf("mid-queue cancel: W1 err = %v, want context.Canceled", err)
			}
			m.release(holder)
			select {
			case s := <-w2:
				m.release(s)
			case <-time.After(5 * time.Second):
				t.Fatal("W2 never granted: cancelled mid-queue node stranded the handoff")
			}
			m.release(m.acquire())
		})
	}
}

// TestMCSCancelAtTail: holder ← W1(ctx), W1 cancelled while LAST in
// the queue.  The holder's release must adopt the node and find the
// queue empty behind it (tail reset), leaving the lock free.
func TestMCSCancelAtTail(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			m := newMCS(strat, nil)
			holder := m.acquire()
			ctx, cancel := context.WithCancel(context.Background())
			w1 := make(chan error, 1)
			go func() {
				_, err := m.acquireCtx(ctx)
				w1 <- err
			}()
			time.Sleep(5 * time.Millisecond)
			cancel()
			if err := <-w1; err != context.Canceled {
				t.Fatalf("at-tail cancel: W1 err = %v, want context.Canceled", err)
			}
			m.release(holder)
			if m.tail.Load() != nil {
				t.Fatal("tail not reset after adopting a cancelled tail node")
			}
			s, ok := m.tryAcquire()
			if !ok {
				t.Fatal("lock not free after cancelled-tail adoption")
			}
			m.release(s)
		})
	}
}

// TestMCSCancelDuringHandoff races the releaser's grant CAS against
// the waiter's cancel CAS many times.  Exactly one must win each
// round: err==nil means we own the lock (release it), err!=nil means
// we never did (the releaser adopted the node).  Either way the next
// round's acquire must succeed — a both-won round deadlocks it, a
// neither-won round leaks the lock.
func TestMCSCancelDuringHandoff(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			m := newMCS(strat, nil)
			rounds := 3000
			if testing.Short() {
				rounds = 300
			}
			for i := 0; i < rounds; i++ {
				holder := m.acquire()
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan error, 1)
				go func() {
					s, err := m.acquireCtx(ctx)
					if err == nil {
						m.release(s)
					}
					done <- err
				}()
				// No sleep: the waiter may be pre-queue, queued, or
				// parked when the release and the cancel race below.
				var wg sync.WaitGroup
				wg.Add(2)
				go func() { defer wg.Done(); m.release(holder) }()
				go func() { defer wg.Done(); cancel() }()
				wg.Wait()
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					t.Fatalf("round %d: waiter resolved neither to grant nor to cancel", i)
				}
				// The lock must be exactly free now.
				m.release(m.acquire())
			}
		})
	}
}

// TestArbiterBatchRetireOncePerBatch: the onBatchRetire hook must fire
// exactly once per batch, while the mutex is still held.  On the MCS
// queue and the Anderson array every passage is a batch of one, and on
// the combiner's token path likewise, so here firings must equal
// passages exactly.  The hook increments a PLAIN int64 that the
// critical sections also mutate: under -race, a hook firing outside
// the mutex's exclusion is a detected data race, which is the
// "while held" half of the contract.
func TestArbiterBatchRetireOncePerBatch(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		var data int64     // plain, guarded only by m
		var boundary int64 // plain: hook runs under the same exclusion
		m.onBatchRetire(func() { boundary++ })
		const goroutines, laps = 8, 300
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < laps; k++ {
					s := m.acquire()
					data++
					m.release(s)
				}
			}()
		}
		wg.Wait()
		if data != goroutines*laps {
			t.Fatalf("data = %d, want %d (lost passages)", data, goroutines*laps)
		}
		if boundary != goroutines*laps {
			t.Fatalf("hook fired %d times for %d single-passage batches", boundary, goroutines*laps)
		}
	})
}

// TestArbiterBatchRetireDoubleRegisterPanics: the contract allows at
// most one registration per mutex.
func TestArbiterBatchRetireDoubleRegisterPanics(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		m.onBatchRetire(func() {})
		defer func() {
			if recover() == nil {
				t.Fatal("second onBatchRetire registration did not panic")
			}
		}()
		m.onBatchRetire(func() {})
	})
}

// TestCombinerBatchRetireOncePerDrainedBatch pins the combiner's side
// of the hook contract on its EXEC path: one firing per swapped batch
// (however many records the batch retired — firings must equal the
// batch counter, not the op counter), fired after the batch's last
// critical section and before the inner release, and NOT forwarded to
// the inner mutex (forwarding would double-fire on every inner
// handoff).  csRun is plain: the hook reads it under the same
// exclusion the critical sections write it, so -race checks the
// ordering claim too.
func TestCombinerBatchRetireOncePerDrainedBatch(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			c := newCombiner(newMCS(strat, nil), strat, nil)
			var csRun int64    // plain, written by combined critical sections
			var boundary int64 // plain, written by the hook under the same mutex
			var behind int64   // critical sections the hook had not yet seen
			c.onBatchRetire(func() {
				boundary++
				behind = csRun // every published-so-far cs of this batch has run
			})
			const publishers, laps = 16, 200
			var wg sync.WaitGroup
			for i := 0; i < publishers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < laps; k++ {
						c.exec(func() { csRun++ })
					}
				}()
			}
			wg.Wait()
			st := c.snapshot()
			if csRun != publishers*laps || st.Ops != publishers*laps {
				t.Fatalf("csRun = %d, stats.Ops = %d, want %d", csRun, st.Ops, publishers*laps)
			}
			if boundary != st.Batches {
				t.Fatalf("hook fired %d times for %d batches", boundary, st.Batches)
			}
			if behind != csRun {
				t.Fatalf("last firing saw %d critical sections, %d ran (hook fired before its batch finished)", behind, csRun)
			}
		})
	}
}

// TestArbiterOneShotWriters: the churn shape — well over 1000 DISTINCT
// goroutines, each acquiring and releasing exactly once.  This is the
// shape that distinguishes the contract's obligations from a
// convenient "same goroutines loop forever" assumption: queue nodes
// must recycle across owners (MCS), the admission gate must block
// rather than corrupt (Anderson, capacity 64 ≪ 1200), and the
// combiner's election must tolerate electors that die right after
// their only passage.
func TestArbiterOneShotWriters(t *testing.T) {
	forEachArbiter(t, func(t *testing.T, newM func() writerMutex) {
		m := newM()
		const churners = 1200
		var data int64 // plain, guarded only by m
		var wg sync.WaitGroup
		for i := 0; i < churners; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := m.acquire()
				data++
				m.release(s)
			}()
		}
		wg.Wait()
		if data != churners {
			t.Fatalf("data = %d, want %d (lost one-shot passages)", data, churners)
		}
	})
}
