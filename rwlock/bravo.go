package rwlock

import (
	"context"
	"sync/atomic"
)

// Bravo layers the BRAVO reader fast path (Dice & Kogan, USENIX ATC
// 2019, arXiv:1810.01553) over any lock in this package.  The wrapped
// lock keeps its RMR bound and its writer-side discipline; the wrapper
// adds reader-side multicore scalability, which the Bhatt & Jayanti
// algorithms lack because every reader fetch&adds the same packed
// [writer-waiting, reader-count] word.
//
// While the lock is read-biased (the common state under read-mostly
// load), a reader publishes itself in a private cache line of the
// visible-readers table and enters the critical section without
// touching the inner lock at all — one uncontended CAS in, one store
// out.  A writer first acquires the inner lock (inheriting its FCFS /
// priority / starvation-freedom guarantees against other writers and
// slow-path readers), then revokes the bias: it clears the flag and
// scans the table until every published reader has left.  Readers that
// arrive with the bias down take the inner lock's ordinary read path
// unchanged, and re-arm the bias once the revocation throttle — a
// countdown of slow read passages sized to the revocation the writer
// just paid for — is spent.  (The BRAVO paper throttles with a wall
// clock; counting slow passages measures the same thing, the work done
// between revocations, without putting a clock read on any path.)
//
// # What is preserved, and what is traded
//
// Mutual exclusion, deadlock-freedom and both classes' starvation-
// freedom are preserved for every wrapped discipline: a writer always
// completes revocation because slots quiesce (see ReaderTable.drainFor),
// and readers always have either the fast path or the inner lock's own
// progress guarantee.  Strict arrival-order fairness (FIFE, RP1/WP1)
// is what BRAVO trades away while the bias is armed: a fast-path
// reader can overtake a writer that is still revoking, exactly as in
// the BRAVO paper.  Once the bias is revoked — which every writer does
// on arrival — the inner discipline's semantics apply verbatim until
// readers re-arm.  Under write-heavy load the inhibit throttle keeps
// the bias down, so Bravo(L) degenerates gracefully to L plus one
// atomic load per operation.
type Bravo struct {
	// rbias is the paper's RBias flag: readers may use the fast path
	// iff it is set.  Set only by slow-path readers that hold the inner
	// read lock (so never while a writer is in the CS), cleared only by
	// writers that hold the inner write lock.
	rbias atomic.Bool
	_     [63]byte
	// slowBudget throttles re-arming: the revoking writer sets it to
	// the number of slow read passages that must complete before the
	// bias may be re-armed, scaled to the revocation cost it just paid
	// (table size plus occupied slots waited on), so revocation
	// overhead stays a bounded fraction of the work done between
	// revocations — the role of the BRAVO paper's wall-clock inhibit,
	// without a clock read on any path.
	slowBudget atomic.Int64
	_          [56]byte
	// slots is the visible-readers table: private to this lock by
	// default, or a process-shared arena under WithSharedReaderTable
	// (same code either way — a private table is an arena with one
	// owner).  id tags this lock's claims so a shared drain waits only
	// on its own readers.
	slots *ReaderTable
	id    int64
	inner RWLock
	// innerCombines records (once, at construction) whether the inner
	// lock batches closure-path writes: only then does Write pay for
	// shipping the revocation inside a wrapper closure — on every
	// other inner lock the token path is the same semantics with zero
	// allocations.
	innerCombines bool
	// stats, when non-nil, receives the wrapper's own events: fast-path
	// read acquisitions, revocations and re-arms.  Slow-path reads fall
	// through to the inner lock, which counts them itself — build both
	// layers from one option list (as the NewBravoMW* helpers do) and
	// they share the block, so the sum is all reads with no double
	// count.  See WithStats.
	stats *LockStats
}

// bravoFastSide tags an RToken issued by the fast path: RToken.side is
// a gate index (0 or 1) for every inner lock, so -1 is unambiguous.
const bravoFastSide = int32(-1)

// bravoBusyFactor scales the re-arm countdown by the revocation cost
// actually observed: each occupied slot the revoking writer had to
// wait on (a live fast-path reader, the expensive part of a scan on a
// busy machine) buys this many more slow passages before readers may
// re-arm.  The empty-table part of the scan is charged at one slow
// passage per 8 slots (see Lock), so a large table on a large machine
// also keeps the flip-flop frequency bounded.
const bravoBusyFactor = 2

// NewBravo wraps inner with the BRAVO reader fast path.  If inner is
// nil, a starvation-free MWSF lock (unbounded writers, matching
// NewGuard's default) is used.  Options configure the wrapper's own
// waiting (the revoking writer's table drain); the inner lock's
// strategy is whatever it was constructed with — the NewBravoMW*
// helpers apply one option list to both layers.
// WithSharedReaderTable(tbl) publishes fast-path readers in tbl
// instead of a private table (see the option doc for the trade).
// Wrapping a *Bravo in another *Bravo panics: the outer wrapper would
// misroute the inner one's fast-path tokens.
func NewBravo(inner RWLock, opts ...Option) *Bravo {
	o := applyOptions(opts)
	if inner == nil {
		inner = NewMWSF(opts...)
	}
	tbl := o.sharedTable
	if tbl == nil {
		tbl = newReaderTable(0, o.strategy)
	}
	b := newBravoOn(tbl, inner)
	b.stats = o.stats
	return b
}

// newBravoOn is the resolved-form core shared by NewBravo and
// NewBravoShared: every input is already a concrete value, so nothing
// here forces an options struct (or anything else) to escape.
func newBravoOn(tbl *ReaderTable, inner RWLock) *Bravo {
	if _, ok := inner.(*Bravo); ok {
		panic("rwlock: NewBravo applied to a *Bravo (nested BRAVO wrappers are not supported)")
	}
	b := &Bravo{slots: tbl, id: tbl.assignID(), inner: inner}
	_, b.innerCombines = CombinerStatsOf(inner)
	// Start read-biased: the wrapper exists for read-mostly workloads,
	// and the first writer revokes in O(table) time regardless.
	b.rbias.Store(true)
	return b
}

// NewBravoShared is the promotion-path constructor: Bravo(inner) with
// its fast-path readers published in the shared arena tbl (nil selects
// DefaultReaderTable), equivalent to
// NewBravo(inner, WithSharedReaderTable(tbl)) but with no variadic
// options to resolve — a caller that builds wrappers on demand (the
// rwmap serving tier promotes a stripe's lock whenever its traffic
// crosses the threshold) pays only the wrapper allocation, not the
// options-struct heap escape the zero-options fast path exists to
// avoid.  A nil inner uses a fresh default MWSF.
func NewBravoShared(tbl *ReaderTable, inner RWLock) *Bravo {
	if tbl == nil {
		tbl = DefaultReaderTable()
	}
	if inner == nil {
		inner = NewMWSF()
	}
	return newBravoOn(tbl, inner)
}

// NewBravoMWSF returns Bravo(MWSF): the starvation-free Theorem 3 lock
// with the BRAVO reader fast path.  Options (wait strategy, writer
// bound) apply to both layers.
func NewBravoMWSF(opts ...Option) *Bravo {
	return NewBravo(NewMWSF(opts...), opts...)
}

// NewBravoMWRP returns Bravo(MWRP): the reader-priority Theorem 4 lock
// with the BRAVO reader fast path.  Options apply to both layers.
func NewBravoMWRP(opts ...Option) *Bravo {
	return NewBravo(NewMWRP(opts...), opts...)
}

// NewBravoMWWP returns Bravo(MWWP): the writer-priority Theorem 5 lock
// with the BRAVO reader fast path.  Options apply to both layers.
// Note the trade documented on Bravo: while the bias is armed,
// fast-path readers overtake waiting writers; WP1 applies from each
// revocation until the next re-arm.
func NewBravoMWWP(opts ...Option) *Bravo {
	return NewBravo(NewMWWP(opts...), opts...)
}

// RLock acquires the lock in read mode, through the fast path when the
// lock is read-biased.
func (b *Bravo) RLock() RToken {
	if b.rbias.Load() {
		if idx, ok := b.slots.tryClaim(b.id); ok {
			// Recheck AFTER publishing (the BRAVO ordering): with
			// sequentially consistent atomics, either this load sees the
			// revoking writer's clear — and we back out — or our slot
			// claim is visible to that writer's scan, which then waits
			// for us.  Entering on a stale bias is impossible.
			if b.rbias.Load() {
				if st := b.stats; st != nil {
					st.ReadAcquires.Add(1)
				}
				return RToken{side: bravoFastSide, id: idx}
			}
			b.slots.release(idx)
		}
	}
	t := b.inner.RLock()
	// Count down the revocation throttle and re-arm the bias while
	// HOLDING the inner read lock, so the store cannot race with a
	// writer's check-and-revoke (writers hold the inner write lock
	// there, excluding us).  Exactly one reader sees the countdown hit
	// zero, so the bias is re-armed once per revocation cycle.
	if !b.rbias.Load() && b.slowBudget.Add(-1) == 0 {
		b.rbias.Store(true)
		if st := b.stats; st != nil {
			st.ReArms.Add(1)
		}
	}
	return t
}

// RUnlock releases read mode; it must receive the token returned by
// the matching RLock.
func (b *Bravo) RUnlock(t RToken) {
	if t.side == bravoFastSide {
		b.slots.release(t.id)
		return
	}
	b.inner.RUnlock(t)
}

// Lock acquires the lock in write mode: the inner lock first (keeping
// its writer-side discipline), then bias revocation if needed.
func (b *Bravo) Lock() WToken {
	t := b.inner.Lock()
	b.revoke()
	return t
}

// revoke clears the read bias and sets the re-arm budget.  MUST be
// called while the inner write lock is held (by this goroutine after
// inner.Lock, or by the combiner inside a combined write section):
// that is the invariant that keeps the rbias clear and the budget
// store from racing with the countdown in RLock — slow readers only
// run outside the write critical section.
func (b *Bravo) revoke() {
	if b.rbias.Load() {
		b.rbias.Store(false)
		busy := b.slots.drainFor(b.id)
		b.slowBudget.Store(int64(1 + len(b.slots.slots)/8 + bravoBusyFactor*busy))
		if st := b.stats; st != nil {
			st.Revocations.Add(1)
		}
	}
}

// Unlock releases write mode.
func (b *Bravo) Unlock(t WToken) { b.inner.Unlock(t) }

// Write runs cs in write mode (the closure path; see FuncWriter).
// When the inner lock combines (WithCombiningWriters), the wrapper
// ships the bias revocation along with cs so it still happens while
// the inner write lock is held — by the executing combiner, inside
// the combined section.  On every other inner lock the token path is
// used: same semantics, and no wrapper closure on the hot path.
func (b *Bravo) Write(cs func()) {
	if !b.innerCombines {
		t := b.Lock()
		defer b.Unlock(t)
		cs()
		return
	}
	b.inner.(FuncWriter).Write(func() {
		b.revoke()
		cs()
	})
}

// TryLock attempts write mode without blocking.  The inner lock's
// TryLock runs first; if the bias is then armed, the wrapper clears
// it and SCANS the visible-readers table instead of draining it — on
// any occupied slot it restores the bias, releases the inner lock,
// and reports busy, so a published fast-path reader is never waited
// on.  The restore is safe because no drain began and the wrapper
// holds the inner write lock, which excludes both the slow readers
// that normally re-arm the bias and any other writer's revocation.
// Requires the inner lock to implement TryRWLock (every lock in this
// package does).
func (b *Bravo) TryLock() (WToken, bool) {
	t, ok := b.inner.(TryRWLock).TryLock()
	if !ok {
		return WToken{}, false
	}
	if b.rbias.Load() {
		b.rbias.Store(false)
		if !b.slots.idleFor(b.id) {
			b.rbias.Store(true)
			b.inner.Unlock(t)
			if st := b.stats; st != nil {
				st.TrySheds.Add(1)
			}
			return WToken{}, false
		}
		b.slowBudget.Store(int64(1 + len(b.slots.slots)/8))
		if st := b.stats; st != nil {
			st.Revocations.Add(1)
		}
	}
	return t, true
}

// TryRLock attempts read mode without blocking: the ordinary BRAVO
// fast path (claim, then recheck the bias — a revoking writer either
// sees our slot or we see its clear and back out), falling through to
// the inner lock's TryRLock when the bias is down or the table is
// contended.  A slow-path success counts down the re-arm throttle
// exactly as RLock does, since it holds the inner read lock at that
// point.  Requires the inner lock to implement TryRWLock.
func (b *Bravo) TryRLock() (RToken, bool) {
	if b.rbias.Load() {
		if idx, ok := b.slots.tryClaim(b.id); ok {
			if b.rbias.Load() {
				if st := b.stats; st != nil {
					st.ReadAcquires.Add(1)
				}
				return RToken{side: bravoFastSide, id: idx}, true
			}
			b.slots.release(idx)
		}
	}
	t, ok := b.inner.(TryRWLock).TryRLock()
	if !ok {
		return RToken{}, false
	}
	if !b.rbias.Load() && b.slowBudget.Add(-1) == 0 {
		b.rbias.Store(true)
		if st := b.stats; st != nil {
			st.ReArms.Add(1)
		}
	}
	return t, true
}

// LockCtx acquires write mode with the inner lock's cancellation
// semantics; once the inner lock is granted the wrapper is committed,
// and the bias revocation (including the table drain) runs to
// completion regardless of ctx — the drain is bounded by the read
// passages of the published fast-path readers.  Requires the inner
// lock to implement CtxRWLock.
func (b *Bravo) LockCtx(ctx context.Context) (WToken, error) {
	t, err := b.inner.(CtxRWLock).LockCtx(ctx)
	if err != nil {
		return WToken{}, err
	}
	b.revoke() // committed: the drain runs to completion
	return t, nil
}

// RLockCtx acquires read mode: the non-blocking fast path first (it
// never waits, so ctx plays no part in it), then the inner lock's
// RLockCtx, with the re-arm countdown on slow-path success as in
// RLock.  Requires the inner lock to implement CtxRWLock.
func (b *Bravo) RLockCtx(ctx context.Context) (RToken, error) {
	if b.rbias.Load() {
		if idx, ok := b.slots.tryClaim(b.id); ok {
			if b.rbias.Load() {
				if st := b.stats; st != nil {
					st.ReadAcquires.Add(1)
				}
				return RToken{side: bravoFastSide, id: idx}, nil
			}
			b.slots.release(idx)
		}
	}
	t, err := b.inner.(CtxRWLock).RLockCtx(ctx)
	if err != nil {
		return RToken{}, err
	}
	if !b.rbias.Load() && b.slowBudget.Add(-1) == 0 {
		b.rbias.Store(true)
		if st := b.stats; st != nil {
			st.ReArms.Add(1)
		}
	}
	return t, nil
}

// WriteCtx runs cs in write mode unless ctx is cancelled first.  On a
// combining inner lock the revocation ships inside the combined
// closure as in Write, and the inner WriteCtx's commitment point (the
// publication CAS, or MWWP's doorway) applies; otherwise LockCtx's
// semantics apply.
func (b *Bravo) WriteCtx(ctx context.Context, cs func()) error {
	if !b.innerCombines {
		t, err := b.LockCtx(ctx)
		if err != nil {
			return err
		}
		defer b.Unlock(t)
		cs()
		return nil
	}
	return b.inner.(CtxFuncWriter).WriteCtx(ctx, func() {
		b.revoke()
		cs()
	})
}

// CombinerStats forwards the wrapped lock's batching statistics (see
// CombinerStatsOf); ok is false when the inner lock does not combine.
func (b *Bravo) CombinerStats() (CombinerStats, bool) {
	return CombinerStatsOf(b.inner)
}

// ReadBiased reports whether the reader fast path is currently armed.
// It is a racy snapshot, useful for tests and metrics.
func (b *Bravo) ReadBiased() bool { return b.rbias.Load() }

// Inner returns the wrapped lock.
func (b *Bravo) Inner() RWLock { return b.inner }

var _ RWLock = (*Bravo)(nil)
var _ FuncWriter = (*Bravo)(nil)
var _ TryRWLock = (*Bravo)(nil)
var _ CtxRWLock = (*Bravo)(nil)
var _ CtxFuncWriter = (*Bravo)(nil)
