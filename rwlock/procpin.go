package rwlock

import (
	_ "unsafe" // for go:linkname
)

// procPin / procUnpin expose the runtime's goroutine-to-P pinning
// primitive, the same one sync.Pool builds its per-P private slots
// on.  Between a pin and the matching unpin the goroutine cannot be
// preempted or migrated, so the returned P index is a stable,
// exclusive identity: no other goroutine can be running on that P at
// the same time.  That exclusivity is what lets the epoch lock keep a
// one-item slot cache per P with plain loads and stores — the pin
// guarantees at most one accessor per cache entry, and cache
// coherence orders same-location plain accesses, so no RMW or fence
// is needed to claim the cached slot.
//
// These are grandfathered linknames (sync.Pool and several popular
// modules depend on them), so the runtime keeps them exported.
//
//go:linkname procPin runtime.procPin
func procPin() int

//go:linkname procUnpin runtime.procUnpin
func procUnpin()
