package rwlock

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file is the package's writer-arbitration layer.
//
// The paper's Section 5 transformation T (Figure 3) and the Figure 4
// writer-priority algorithm serialize writers through a mutual-
// exclusion lock M.  The proofs of Theorems 3-5 place exactly three
// obligations on M — it must be mutually exclusive, FCFS (so the
// multi-writer lock inherits FCFS among writers), and starvation-free
// with O(1) RMR complexity per passage on cache-coherent machines —
// and Anderson's array lock is merely the instance the paper picks.
// Any lock meeting the contract may stand in for M, so this package
// makes the choice pluggable: writerMutex is the contract, and the
// constructors select an implementation from the options.
//
// Three implementations exist:
//
//   - mcsLock (below): an UNBOUNDED MCS queue lock (Mellor-Crummey &
//     Scott, ACM TOCS 1991).  The default: any number of goroutines
//     may attempt to write concurrently, so constructors no longer
//     need a writer bound.
//   - AndersonLock (anderson.go): the paper's fixed-capacity array
//     lock, selected by WithBoundedWriters(n) for callers who WANT a
//     hard cap on concurrent write attempts as admission control.
//   - combiner (combiner.go): a flat-combining layer over either of
//     the above, selected by WithCombiningWriters().  Closure-path
//     writes (Write) are batched: one writer executes every pending
//     critical section inside a single acquisition of the inner
//     mutex.  Batching keeps starvation-freedom but relaxes strict
//     FCFS to publication order — see combiner.go for the trade.

// writerMutex is the writer-arbitration contract: the obligations the
// Theorem 3-5 proofs place on the serializing lock M.  acquire blocks
// until the caller owns the mutex and returns an opaque slot; release
// must receive that slot and hands the mutex to the next waiter in
// FCFS order.  Implementations must be mutually exclusive, FCFS from
// a well-defined linearization point in acquire, starvation-free, and
// O(1) RMR per acquire/release pair on cache-coherent machines.
// Slots are plain values and may cross goroutines (they travel inside
// WTokens).
//
// The contract has one extension, realized today only by the
// combiner (combiner.go): a batched-execute path, exec(cs func()),
// which runs cs while holding the mutex — possibly on another
// goroutine, batched with concurrently submitted critical sections.
// The locks bind to the CONCRETE *combiner type (their constructors
// install a per-lock passage hook on it, and Write type-asserts it),
// so a new batching arbiter plugs in by becoming the combiner's
// inner mutex, not by re-implementing exec; the token path
// (acquire/release) must remain available and mutually exclusive
// with exec'd sections.
// Beyond the blocking pair, the contract has a deadline-aware side
// (PR 6): tryAcquire is a genuinely non-blocking probe (no waits, no
// unbounded loops) that either takes the mutex or reports it busy,
// and acquireCtx is acquire with an abort seam — it returns ctx.Err()
// once the context is cancelled, leaving the mutex NOT held and the
// queue/array state as if the attempt never happened.  Each
// implementation has a point of no return past which cancellation can
// no longer win (the MCS grant CAS, the Anderson ticket fetch&add,
// the combiner's publication CAS); acquireCtx may therefore return
// nil on an already-cancelled context when the grant got there first.
// The contract's second extension (PR 7) is the batch-boundary hook:
// onBatchRetire registers a function that every implementation invokes
// exactly once per retired batch, while the arbitration mutex is still
// held — i.e. before the handoff that admits the next writer.  For the
// queue and array mutexes a "batch" is a single passage, so the hook
// fires at the top of every release; the combiner fires it once per
// drained publication batch (however many write sections the batch
// retired) plus once per token-path release, and does NOT forward the
// registration to its inner mutex (the boundary belongs to the
// outermost arbiter).  The epoch layer (epoch.go) rides this hook: the
// mutual exclusion the mutex already provides makes the hook a free
// serialization point for end-of-passage bookkeeping, and on the
// combiner one hook firing — one grace period — retires a whole batch
// of versions.  Register at most one hook, before the lock escapes its
// constructor; registering twice panics.
type writerMutex interface {
	acquire() wslot
	tryAcquire() (wslot, bool)
	acquireCtx(ctx context.Context) (wslot, error)
	release(wslot)
	onBatchRetire(fn func())
}

// wslot is the opaque writer-arbitration slot carried in a WToken: an
// MCS queue node when the arbitration is the unbounded queue, an
// array index when it is the bounded Anderson lock.  Treat it as
// opaque; it is only meaningful to the writerMutex that issued it.
type wslot struct {
	n   *mcsNode // MCS queue node (nil under Anderson arbitration)
	idx uint32   // Anderson array slot (unused under MCS arbitration)
}

// newWriterMutex builds the writer-arbitration layer an options block
// selects: the unbounded MCS queue by default, Anderson's array when
// WithBoundedWriters was given, either wrapped in the flat-combining
// layer (combiner.go) when WithCombiningWriters was given.
func newWriterMutex(o options) writerMutex {
	var m writerMutex
	if o.boundedWriters > 0 {
		m = NewAnderson(o.boundedWriters, WithWaitStrategy(o.strategy), WithStats(o.stats))
	} else {
		m = newMCS(o.strategy, o.stats)
	}
	if o.combining {
		return newCombiner(m, o.strategy, o.stats)
	}
	return m
}

// WithBoundedWriters selects the bounded Anderson-array arbitration
// for the multi-writer constructors (NewMWSF, NewMWRP, NewMWWP and
// their Bravo wrappers): at most n goroutines may be inside a write
// attempt at once, and additional writers block at an admission gate
// until one leaves.  Use it when writer concurrency must be capped as
// a form of admission control; the default (no option) is the
// unbounded MCS queue, which needs no sizing decision.  n must be at
// least 1.  See AndersonLock for what the admission gate is — and is
// not — in RMR terms, and WithCombiningWriters for how combining on
// top of the bound changes (effectively voids) the admission-control
// semantics for closure-path writers.
func WithBoundedWriters(n int) Option {
	if n < 1 {
		panic("rwlock: WithBoundedWriters needs n >= 1")
	}
	return func(o *options) { o.boundedWriters = n }
}

// mcsNode is one queue cell of the MCS lock.  The owner spins (or
// parks) on its OWN node's grant cell — the locally cached word the
// O(1)-RMR argument needs — and the releasing predecessor performs
// the single remote write that hands the lock over.  Nodes are
// recycled through the lock's pool, so steady-state passages allocate
// nothing.
// A queued node is in one of three states, resolved by a single CAS
// race between its releaser and (only for acquireCtx attempts) its
// own canceller:
//
//	mcsWaiting --releaser CAS--> mcsGranted    (handoff: grant follows)
//	mcsWaiting --waiter  CAS--> mcsCancelled  (abort: waiter walks away)
//
// Exactly one CAS wins, so a grant is never sent to a node whose
// owner has left (no lost handoff) and a waiter never abandons a node
// that owns the lock (no lost lock).  A cancelled node is NOT
// physically unlinked by its owner — under SpinThenPark the owner may
// not even be running — instead the next releaser to reach it ADOPTS
// it: recycles it and carries the release on to its successor,
// honoring the same linked-announcement recycling barrier on every
// hop.  Cancellation therefore costs the canceller O(1) steps and
// shifts the queue-repair work onto a lock holder that was already
// performing a handoff.
const (
	mcsWaiting int32 = iota
	mcsGranted
	mcsCancelled
)

type mcsNode struct {
	// next points to the successor's node once it has linked itself
	// behind this one.
	next atomic.Pointer[mcsNode]
	// state is the grant/cancel race word (see the state diagram
	// above).  It shares the next pointer's line: the two are touched
	// by the same releaser in the same handoff.
	state atomic.Int32
	_     [52]byte
	// linked is set (with a wake) by the successor right after it
	// stores next.  It is the successor's LAST write into this node,
	// so release treats it — not the next pointer — as the node's
	// recycling barrier: it waits for linked even when next is already
	// visible (the link store and its announcement are two separate
	// instructions, and the successor can be descheduled between
	// them).  The wait goes through the cell so that window also
	// honors the lock's WaitStrategy.
	linked waitCell
	// grant is the handoff: the releaser sets it (with a wake) to pass
	// ownership to this node's owner.
	grant waitCell
}

// mcsLock is an unbounded FCFS queue mutex after Mellor-Crummey &
// Scott (1991): acquirers swap themselves onto a tail pointer — the
// FCFS linearization point — link behind their predecessor, and wait
// on their own node's grant cell; release hands the lock to the
// linked successor with one store+wake, or resets the tail when the
// queue is empty.  Every wait goes through a waitCell, so both
// SpinYield and SpinThenPark work unchanged.
//
// RMR accounting (cache-coherent model): acquire is one swap, at most
// one store+wake into the predecessor's node, and a wait on the
// acquirer's own node (re-reads of a locally cached word, invalidated
// only by the single handoff write); release is at most one CAS and
// one store+wake.  That is O(1) per passage with no dependence on the
// number of waiters — the same bound Anderson's array gives, without
// its fixed capacity.
type mcsLock struct {
	tail atomic.Pointer[mcsNode]
	_    [56]byte
	pool sync.Pool
	// retire is the batch-boundary hook (see writerMutex.onBatchRetire):
	// for a plain queue mutex every passage is a batch of one, so
	// release invokes it once at entry, before any handoff.  Written
	// once before the lock escapes its constructor, read on every
	// release — no atomicity needed.
	retire func()
	// stats, when non-nil, receives queue-geometry counters (depth,
	// depth high-water, contended acquisitions).  See WithStats.
	stats *LockStats
}

// newMCS returns an unbounded MCS queue mutex whose waits follow s,
// counting into st when non-nil.
func newMCS(s WaitStrategy, st *LockStats) *mcsLock {
	l := &mcsLock{stats: st}
	l.pool.New = func() any {
		n := &mcsNode{}
		n.linked.setStrategy(s)
		n.grant.setStrategy(s)
		n.linked.setStats(st)
		n.grant.setStats(st)
		return n
	}
	return l
}

// acquire blocks until the caller owns the mutex.  The returned slot
// carries the caller's queue node; it must reach the matching release
// (possibly on another goroutine — WTokens are transferable).
func (l *mcsLock) acquire() wslot {
	n := l.getNode()
	pred := l.tail.Swap(n) // FCFS linearization point
	if st := l.stats; st != nil {
		statsMax(&st.QueueDepthMax, uint64(st.QueueDepth.Add(1)))
		if pred != nil {
			st.WriteContended.Add(1)
		}
	}
	if pred != nil {
		// Link behind pred, then announce the link.  pred cannot be
		// recycled under us: once our swap moved the tail, pred's
		// release cannot reset it, and release never recycles a node
		// with a successor until this announcement lands (the
		// recycling barrier on mcsNode.linked).
		pred.next.Store(n)
		pred.linked.storeWake(cellTrue)
		n.grant.wait(cellTrue)
	}
	return wslot{n: n}
}

// getNode takes a node from the pool and resets its per-attempt state.
func (l *mcsLock) getNode() *mcsNode {
	n := l.pool.Get().(*mcsNode)
	n.next.Store(nil)
	n.state.Store(mcsWaiting)
	n.linked.store(cellFalse)
	n.grant.store(cellFalse)
	return n
}

// tryAcquire takes the mutex only when the queue is empty: one CAS of
// the tail, no waits.  Failure means some writer holds or is queued
// for the mutex at the instant of the CAS — exactly the condition
// under which acquire would have waited.
func (l *mcsLock) tryAcquire() (wslot, bool) {
	n := l.getNode()
	if l.tail.CompareAndSwap(nil, n) {
		if st := l.stats; st != nil {
			statsMax(&st.QueueDepthMax, uint64(st.QueueDepth.Add(1)))
		}
		return wslot{n: n}, true
	}
	// Never published: the node is still exclusively ours.
	l.pool.Put(n)
	return wslot{}, false
}

// acquireCtx is acquire with an abort seam.  The waiter queues
// normally; on cancellation it CASes its node mcsWaiting →
// mcsCancelled and walks away in O(1) steps, leaving the node in the
// queue for the next releaser to adopt (see the state diagram on
// mcsNode).  If the releaser's grant CAS wins the race instead, the
// handoff is already in flight and cannot be refused: the waiter
// absorbs it and returns the slot with a nil error, so a caller that
// sees an error never owns the mutex, and a caller that sees nil
// always does — even if its context is by now cancelled.
func (l *mcsLock) acquireCtx(ctx context.Context) (wslot, error) {
	n := l.getNode()
	pred := l.tail.Swap(n) // FCFS linearization point
	if st := l.stats; st != nil {
		statsMax(&st.QueueDepthMax, uint64(st.QueueDepth.Add(1)))
		if pred != nil {
			st.WriteContended.Add(1)
		}
	}
	if pred == nil {
		return wslot{n: n}, nil
	}
	pred.next.Store(n)
	pred.linked.storeWake(cellTrue)
	if err := n.grant.waitCtx(ctx, cellTrue); err != nil {
		if n.state.CompareAndSwap(mcsWaiting, mcsCancelled) {
			// The node now belongs to the queue, not to us: the next
			// releaser to reach it recycles it.  We must not touch it
			// again.
			if st := l.stats; st != nil {
				st.QueueDepth.Add(-1)
			}
			return wslot{}, err
		}
		// A releaser granted us first (its CAS beat ours): the
		// storeWake is committed or in flight.  Absorb it — the wait
		// is bounded by that one store.
		n.grant.wait(cellTrue)
	}
	return wslot{n: n}, nil
}

// release hands the mutex to the next queued acquirer (or leaves it
// free) and recycles the caller's node — plus any run of CANCELLED
// successors it finds on the way, which it adopts and recycles while
// carrying the handoff onward (the loop; see the state diagram on
// mcsNode).
func (l *mcsLock) release(s wslot) {
	if st := l.stats; st != nil {
		st.QueueDepth.Add(-1)
	}
	if l.retire != nil {
		// Batch boundary: the caller still owns the mutex (nothing has
		// been handed off yet), so the hook runs fully serialized
		// against every other passage's hook and critical section.
		l.retire()
	}
	n := s.n
	for {
		if n.next.Load() == nil && l.tail.CompareAndSwap(n, nil) {
			// Queue empty: the lock is free and n was never observed by
			// a successor, so it can be recycled immediately.
			l.pool.Put(n)
			return
		}
		// A successor exists — possibly still between its tail swap and
		// its link (under oversubscription those two instructions can be
		// a descheduled goroutine away, so the wait goes through the
		// cell rather than burning the quantum).  Wait for the link
		// announcement even when next is already visible: the
		// announcement is the successor's last write into n (see
		// mcsNode.linked), so it — not the next pointer — is what makes
		// n recyclable; keying off next alone would let a pending
		// announcement land on this node's NEXT owner and corrupt its
		// linked cell.  In the common case the announcement is long
		// since set and this is one read of an owned cached word.
		n.linked.wait(cellTrue)
		next := n.next.Load()
		if next.state.CompareAndSwap(mcsWaiting, mcsGranted) {
			// The grant writes into next, not n, so n is recyclable
			// now.
			next.grant.storeWake(cellTrue)
			l.pool.Put(n)
			return
		}
		// next's owner cancelled and walked away; the winning
		// mcsCancelled CAS was its last touch of the node (its context
		// machinery may still broadcast into next.grant's cond, which
		// parked waiters treat as a spurious wake — harmless).  Adopt
		// the node: recycle ours and continue the release from next,
		// re-running the full empty-queue / link-barrier protocol
		// there.  The walk charges O(cancelled run) to this handoff,
		// keeping the canceller itself O(1).
		l.pool.Put(n)
		n = next
	}
}

// onBatchRetire registers the batch-boundary hook (see the writerMutex
// contract).  Must be called before the lock is shared; at most once.
func (l *mcsLock) onBatchRetire(fn func()) {
	if l.retire != nil {
		panic("rwlock: onBatchRetire registered twice on the same writer mutex")
	}
	l.retire = fn
}

var _ writerMutex = (*mcsLock)(nil)
