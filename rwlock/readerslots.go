package rwlock

import (
	"math/bits"
	"math/rand/v2"
	"runtime"
)

// This file implements the visible-readers table of the BRAVO reader
// fast path (Dice & Kogan, "BRAVO — Biased Locking for Reader-Writer
// Locks", USENIX ATC 2019, arXiv:1810.01553), adapted to this
// package: instead of one global hash table keyed by (thread, lock),
// each Bravo wrapper owns a private table sized to the machine, and
// the claimed index travels in the RToken (the package already
// threads per-attempt state through tokens, so no thread-local
// storage is needed).
//
// Each slot is a one-word reader-presence flag alone on its cache
// line.  A publishing reader dirties only its own line, so readers
// scale with cores instead of serializing on the packed
// [writer-waiting, reader-count] word that every reader of the
// Bhatt & Jayanti locks must fetch&add.  Writers pay for that reader
// scalability with a full-table scan during bias revocation — the
// BRAVO trade-off.

// slotProbes is how many adjacent table entries a reader tries to
// claim before giving up and taking the slow path.  A small bound
// keeps the fast path O(1) and bounds the probability of spurious
// slow-path trips at reasonable load (the table has at least four
// slots per P, so three probes fail only under heavy oversubscription).
const slotProbes = 3

// readerSlots is a fixed-size power-of-two table of reader-presence
// flags.  0 = free, 1 = a fast-path reader is inside the critical
// section.  Each slot is a waitCell: the revoking writer's drain is a
// wait on the slot, and a fast-path reader's release is the matching
// wake, so drains follow the wrapper's WaitStrategy like every other
// wait in the package.
type readerSlots struct {
	mask  uint64
	slots []waitCell
}

// newReaderSlots sizes the table to at least min entries and at least
// four slots per P, rounded up to a power of two so claim probes can
// wrap with a mask instead of a modulo.
func newReaderSlots(min int, s WaitStrategy) *readerSlots {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < min {
		n = min
	}
	if n < 8 {
		n = 8
	}
	n = 1 << bits.Len(uint(n-1))
	t := &readerSlots{mask: uint64(n - 1), slots: make([]waitCell, n)}
	for i := range t.slots {
		t.slots[i].setStrategy(s)
	}
	return t
}

// tryClaim publishes a reader into a free slot and returns its index.
// The starting probe point is drawn from the runtime's per-M cheap
// random source (math/rand/v2's global functions), which costs a few
// nanoseconds and no shared state — claiming never creates a
// contended hot spot the way a shared counter would.  (The claim CAS
// needs no wake: setting a slot busy satisfies nobody's wait.)
func (t *readerSlots) tryClaim() (int64, bool) {
	h := rand.Uint64()
	for i := uint64(0); i < slotProbes; i++ {
		s := &t.slots[(h+i)&t.mask]
		if s.load() == 0 && s.cas(0, 1) {
			return int64((h + i) & t.mask), true
		}
	}
	return 0, false
}

// release frees a slot claimed by tryClaim, waking a writer whose
// drain parked on it.  When no drain is in progress (the common case)
// the wake probe is one load of the slot's cold line.
func (t *readerSlots) release(idx int64) { t.slots[idx].storeWake(0) }

// idle is the non-blocking face of drain: one scan, no waits,
// reporting whether every slot was free at the instant it was read.
// A TryLock-path revocation uses it to abort (and restore the bias)
// instead of waiting for published readers to leave.
func (t *readerSlots) idle() bool {
	for i := range t.slots {
		if t.slots[i].load() != 0 {
			return false
		}
	}
	return true
}

// drain waits until every slot is free and returns how many slots it
// found occupied — the revocation-cost signal that sizes the re-arm
// throttle.  Only a revoking writer calls drain, strictly after
// clearing the bias flag: readers that claimed a slot before the flag
// fell will be waited for, and readers that claim one afterwards
// observe the cleared flag, back out, and head for the inner lock, so
// each slot quiesces and the scan terminates.
func (t *readerSlots) drain() (busy int) {
	for i := range t.slots {
		s := &t.slots[i]
		if s.load() == 0 {
			continue
		}
		busy++
		s.wait(0)
	}
	return busy
}
