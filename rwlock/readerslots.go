package rwlock

import (
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the visible-readers table of the BRAVO reader
// fast path (Dice & Kogan, "BRAVO — Biased Locking for Reader-Writer
// Locks", USENIX ATC 2019, arXiv:1810.01553).  The table exists in two
// deployments:
//
//   - PRIVATE (the default): each Bravo wrapper owns a machine-sized
//     table, which buys the fewest claim collisions per lock but costs
//     O(GOMAXPROCS) cache lines PER LOCK INSTANCE — the right call for
//     a handful of hot locks, dead on arrival at 10^5-10^6 lock
//     instances (a sharded map's stripe grid).
//   - SHARED (WithSharedReaderTable): one ReaderTable arena is shared
//     by any number of locks, the BRAVO paper's original global-table
//     design.  Slots are tagged with the claiming lock's owner id, so
//     a revoking writer's drain waits only on its own lock's readers;
//     the per-lock cost drops to one integer id.
//
// Both deployments run the same code: a private table is simply an
// arena with a single owner.  Each slot is a one-word presence flag
// alone on its cache line (0 = free, otherwise the owner id of the
// lock whose reader is inside).  A publishing reader dirties only its
// own line, so readers scale with cores instead of serializing on the
// packed [writer-waiting, reader-count] word that every reader of the
// Bhatt & Jayanti locks must fetch&add.  Writers pay for that reader
// scalability with a full-arena scan during bias revocation — the
// BRAVO trade-off, and in the shared deployment the scan cost is paid
// to the PROCESS-wide arena size, not per lock (the reason the default
// arena is kept modest; see DefaultReaderTable).

// slotProbes is how many adjacent table entries a reader tries to
// claim before giving up and taking the slow path.  A small bound
// keeps the fast path O(1) and bounds the probability of spurious
// slow-path trips at reasonable load (the table has at least four
// slots per P, so three probes fail only under heavy oversubscription).
const slotProbes = 3

// ReaderTable is a fixed-size power-of-two arena of reader-presence
// slots, shareable between any number of Bravo/Epoch/Slim locks via
// WithSharedReaderTable.  Each slot is a waitCell: the revoking
// writer's drain is a wait on the slot, and a fast-path reader's
// release is the matching wake, so drains follow the table's
// WaitStrategy like every other wait in the package.
//
// A table is safe for concurrent use by any number of locks and
// goroutines.  Lock constructors draw a unique owner id from the
// table, and every claim is tagged with it, so one lock's revocation
// never waits on another lock's readers — at worst it scans past
// their slots.
type ReaderTable struct {
	mask  uint64
	slots []waitCell
	_     [32]byte
	// nextID hands out per-lock owner ids (contended only at lock
	// construction; padded off the read-only header above so a
	// construction burst does not invalidate the fast path's mask and
	// slice loads).
	nextID atomic.Int64
	_      [56]byte
}

// NewReaderTable returns an arena with at least min slots (rounded up
// to a power of two, floor 8), for sharing among locks constructed
// with WithSharedReaderTable.  The only option honored is
// WithWaitStrategy, which selects how revoking writers wait on the
// arena's slots.  Sizing guidance: the arena bounds the number of
// concurrent FAST-PATH readers process-wide (a reader that cannot
// claim a slot in a bounded number of probes takes its lock's slow
// path, which is correct but slower), while every revocation scans
// the whole arena — so size to the expected concurrent reader count,
// not to the lock count.  A few slots per P is plenty.
func NewReaderTable(min int, opts ...Option) *ReaderTable {
	o := applyOptions(opts)
	return newReaderTable(min, o.strategy)
}

// newReaderTable sizes the table to at least min entries and at least
// four slots per P, rounded up to a power of two so claim probes can
// wrap with a mask instead of a modulo.
func newReaderTable(min int, s WaitStrategy) *ReaderTable {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < min {
		n = min
	}
	if n < 8 {
		n = 8
	}
	n = 1 << bits.Len(uint(n-1))
	t := &ReaderTable{mask: uint64(n - 1), slots: make([]waitCell, n)}
	for i := range t.slots {
		t.slots[i].setStrategy(s)
	}
	return t
}

// defaultReaderTable backs DefaultReaderTable: one process-wide arena,
// sized up from the private default (more locks share it) but capped —
// every revocation scans the whole arena, so "bigger" is not free.
var defaultReaderTable = sync.OnceValue(func() *ReaderTable {
	n := 32 * runtime.GOMAXPROCS(0)
	if n < 64 {
		n = 64
	}
	if n > 4096 {
		n = 4096
	}
	return newReaderTable(n, SpinYield)
})

// DefaultReaderTable returns the package's process-wide shared arena,
// created on first use: the table WithSharedReaderTable callers use
// unless they construct their own, and the one the Slim locks default
// to.  Sized to 32 slots per P (floor 64, cap 4096 — the BRAVO
// paper's global table size), with SpinYield waits.
func DefaultReaderTable() *ReaderTable { return defaultReaderTable() }

// Slots returns the arena's slot count (a power of two) — the bound
// on concurrent fast-path readers across every lock sharing the
// table, and the length of every revocation scan.
func (t *ReaderTable) Slots() int { return len(t.slots) }

// assignID draws a fresh owner id for a lock built over this table.
// Ids are nonzero (0 is the free-slot value) and their low 24 bits are
// nonzero too, so the Slim locks' truncated ids stay valid (slim.go).
func (t *ReaderTable) assignID() int64 {
	for {
		id := t.nextID.Add(1)
		if id&slimIDMask != 0 {
			return id
		}
	}
}

// tryClaim publishes a reader of the lock that owns id into a free
// slot and returns its index.  The starting probe point mixes the
// runtime's per-M cheap random source (math/rand/v2's global
// functions, a few nanoseconds and no shared state) with the owner id
// — the BRAVO paper's hash of (thread, lock) — so different locks'
// readers spread across a shared arena instead of piling onto one
// run of slots.  (The claim CAS needs no wake: setting a slot busy
// satisfies nobody's wait.)
func (t *ReaderTable) tryClaim(id int64) (int64, bool) {
	h := rand.Uint64() + uint64(id)*0x9e3779b97f4a7c15
	for i := uint64(0); i < slotProbes; i++ {
		s := &t.slots[(h+i)&t.mask]
		if s.load() == 0 && s.cas(0, id) {
			return int64((h + i) & t.mask), true
		}
	}
	return 0, false
}

// release frees a slot claimed by tryClaim, waking a writer whose
// drain parked on it.  When no drain is in progress (the common case)
// the wake probe is one load of the slot's cold line.
func (t *ReaderTable) release(idx int64) { t.slots[idx].storeWake(0) }

// idleFor is the non-blocking face of drainFor: one scan, no waits,
// reporting whether no slot was claimed by id's lock at the instant
// it was read.  A TryLock-path revocation uses it to abort (and
// restore the bias) instead of waiting for published readers to
// leave.
func (t *ReaderTable) idleFor(id int64) bool {
	for i := range t.slots {
		if t.slots[i].load() == id {
			return false
		}
	}
	return true
}

// drainFor waits until no slot holds id and returns how many it found
// occupied — the revocation-cost signal that sizes Bravo's re-arm
// throttle.  Only a revoking writer of the owning lock calls drainFor,
// strictly after closing its fast path (clearing the bias flag or
// advancing the epoch): readers that claimed a slot before the close
// will be waited for, and readers that claim one afterwards observe
// the closed fast path, back out, and head for the slow path, so each
// owned slot quiesces and the scan terminates.  Other locks' slots
// are skipped without waiting — on a shared arena a drain costs one
// scan plus only its OWN readers' residual passages.
//
// (A skipped-then-reclaimed slot is benign: a reader of this lock
// that claims a slot after the scan passed it rechecks the closed
// fast path and backs out before entering, the same Dekker argument
// the per-slot wait relies on.)
func (t *ReaderTable) drainFor(id int64) (busy int) {
	notID := func(v int64) bool { return v != id }
	for i := range t.slots {
		s := &t.slots[i]
		if s.load() != id {
			continue
		}
		busy++
		s.waitUntil(notID)
	}
	return busy
}
