package rwlock_test

import (
	"fmt"
	"sync"

	"rwsync/rwlock"
)

// The basic token discipline: keep the value returned by an acquire
// and hand it to the matching release.
func ExampleNewMWSF() {
	l := rwlock.NewMWSF() // any number of concurrent writers (MCS arbitration)

	wt := l.Lock()
	// ... exclusive access ...
	l.Unlock(wt)

	rt := l.RLock()
	// ... shared access ...
	l.RUnlock(rt)

	fmt.Println("done")
	// Output: done
}

// Writer priority: pending writers overtake readers that arrive after
// them, so updates land promptly even under read storms.
func ExampleNewMWWP() {
	l := rwlock.NewMWWP()
	config := "v1"

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wt := l.Lock()
		config = "v2"
		l.Unlock(wt)
	}()
	wg.Wait()

	rt := l.RLock()
	fmt.Println(config)
	l.RUnlock(rt)
	// Output: v2
}

// Guard hides the tokens behind closures — the recommended high-level
// API for protecting a single value.
func ExampleGuard() {
	g := rwlock.NewGuard(rwlock.NewMWRP(), map[string]int{})

	g.Write(func(m *map[string]int) { (*m)["hits"] = 41 })
	g.Write(func(m *map[string]int) { (*m)["hits"]++ })

	g.Read(func(m map[string]int) { fmt.Println(m["hits"]) })
	// Output: 42
}

// WithBoundedWriters swaps the default unbounded MCS writer
// arbitration for the paper's Anderson array: at most n goroutines may
// be inside a write attempt at once, and excess writers block at an
// admission gate — an explicit admission-control choice.
func ExampleWithBoundedWriters() {
	l := rwlock.NewMWSF(rwlock.WithBoundedWriters(4))

	wt := l.Lock()
	l.Unlock(wt)

	fmt.Println("bounded")
	// Output: bounded
}

// Locker adapts the write side to sync.Locker, e.g. for sync.Cond.
func ExampleLocker() {
	l := rwlock.NewMWSF()
	mu := rwlock.Locker(l)

	mu.Lock()
	fmt.Println("exclusive")
	mu.Unlock()
	// Output: exclusive
}

// The single-writer cores skip the writer-serialization layer when the
// application has one designated writer.
func ExampleNewSWWP() {
	l := rwlock.NewSWWP()

	wt := l.Lock() // only one goroutine may ever be between Lock/Unlock
	l.Unlock(wt)

	rt := l.RLock()
	l.RUnlock(rt)
	fmt.Println("ok")
	// Output: ok
}
