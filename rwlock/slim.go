package rwlock

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the footprint-slim lock variants for
// 10^5-10^6-instance deployments (a sharded map's stripe grid, one
// lock per stripe).  The full Bravo and Epoch wrappers spend their
// per-instance bytes on machinery that only pays off when the
// INSTANCE itself is contended: a padded bias word, a padded re-arm
// budget, an inner Bhatt & Jayanti lock with its gates and writer
// arbitration (~2.5 KB per Bravo(MWSF) instance on a small box).  At
// a million instances that is gigabytes for machinery that per-stripe
// traffic — contention spread over 10^6 locks — never exercises.
//
// SlimBravo and SlimEpoch keep the two reader fast-path PROTOCOLS
// (BRAVO's claim/recheck against a bias, Epoch's publish/recheck
// against an epoch parity) but shrink everything else:
//
//   - All reader visibility lives in a shared ReaderTable arena
//     (WithSharedReaderTable, DefaultReaderTable by default) — the
//     BRAVO paper's global table — so the per-instance reader state
//     is an owner id.
//   - The slow path is a single packed state word (reader count,
//     writer bit, bias/epoch), i.e. the centralized reader-writer
//     protocol the paper's baselines use, NOT the constant-RMR
//     Bhatt & Jayanti machinery: slow waiters re-read the shared
//     state word (Gosched-yield loops, SpinYield semantics).  That
//     is the deliberate trade — O(1)-RMR waiting needs per-waiter
//     cells the footprint budget cannot carry, and with instances ≫
//     cores the expected per-instance queue length is ~0, so there
//     is no queue to manage.
//   - The whole lock is ONE 16-byte allocation: the state word plus
//     a packed reference (arena registry index in the high 8 bits,
//     owner id in the low 24 — see slimRef).
//
// Fairness: neither variant orders its writers (no FCFS, no
// starvation-freedom under sustained single-instance contention).
// They are serving-tier locks: correct always, fair enough when
// instances ≫ goroutines, and 100x+ smaller.  For a hot single lock,
// use the full wrappers.
//
// Owner ids are 24-bit truncations of the arena's id sequence, so
// after ~16.7M lock constructions over one table ids recycle.  An id
// collision is a PERFORMANCE hazard only, never a correctness one:
// a drain that waits on a same-id slot claimed by another lock's
// reader waits out one bounded read passage spuriously; mutual
// exclusion always comes from the lock's own state word plus the
// claim/recheck ordering.
//
// Observability: the Slim locks do NOT implement the WithStats seam —
// they take no options, and a per-instance stats pointer would double
// the 16-byte footprint the whole design exists to protect.  Observe
// a Slim grid one level up, through rwmap.Map.Stats and its
// per-stripe heatmap, which samples traffic without touching the
// locks.

// slimFastSide tags an RToken issued by a Slim lock's arena fast
// path: -1 is Bravo's, -2 is Epoch's, so -3 is unambiguous.
const slimFastSide = int32(-3)

// slimIDMask extracts the 24-bit owner id from a packed slim ref (and
// bounds the id bits ReaderTable.assignID keeps nonzero).
const slimIDMask = 1<<24 - 1

// slimMaxTables bounds the arena registry: a slim lock addresses its
// table through an 8-bit registry index instead of an 8-byte pointer
// (half the lock's total size).  Tables are process-wide singletons
// (usually just DefaultReaderTable), so 256 is generous.
const slimMaxTables = 256

var (
	slimTableMu sync.Mutex
	slimTableN  atomic.Int32
	slimTables  [slimMaxTables]atomic.Pointer[ReaderTable]
)

// slimRegister returns t's index in the arena registry, assigning one
// on first use.  Constructor-path only; lookups on the lock's hot
// paths are one bounds-checked atomic load (slimTable).
func slimRegister(t *ReaderTable) uint32 {
	n := int(slimTableN.Load())
	for i := 0; i < n; i++ {
		if slimTables[i].Load() == t {
			return uint32(i)
		}
	}
	slimTableMu.Lock()
	defer slimTableMu.Unlock()
	n = int(slimTableN.Load())
	for i := 0; i < n; i++ {
		if slimTables[i].Load() == t {
			return uint32(i)
		}
	}
	if n >= slimMaxTables {
		panic("rwlock: Slim locks constructed over more than 256 distinct ReaderTables; share tables (see DefaultReaderTable)")
	}
	slimTables[n].Store(t)
	slimTableN.Store(int32(n + 1))
	return uint32(n)
}

// slimRef packs a lock's arena identity into one word: registry index
// in the high 8 bits, 24-bit owner id below.
func slimRef(t *ReaderTable) uint32 {
	idx := slimRegister(t)
	id := uint32(t.assignID()) & slimIDMask
	return idx<<24 | id
}

func slimTable(ref uint32) *ReaderTable { return slimTables[ref>>24].Load() }
func slimOwner(ref uint32) int64        { return int64(ref & slimIDMask) }

// slimResolve applies the shared-table option with the package
// default, the common constructor head of both Slim variants.
func slimResolve(opts []Option) uint32 {
	o := applyOptions(opts)
	t := o.sharedTable
	if t == nil {
		t = DefaultReaderTable()
	}
	return slimRef(t)
}

// SlimBravo state-word layout.  Readers inside through the slow path
// are counted in rc; the re-arm countdown occupies its own field so
// the reader that spends the budget arms the bias in the same CAS
// that registers it (full Bravo needs a separate padded word for
// this; here the whole protocol shares one line by design — the
// footprint trade again).
const (
	slimWH     = int64(1) << 0 // writer holds
	slimBias   = int64(1) << 1 // readers may use the arena fast path
	slimRC     = int64(1) << 2 // slow-reader count unit (32 bits)
	slimRCMask = (int64(1)<<32 - 1) << 2
	slimCD     = int64(1) << 34 // re-arm countdown unit (16 bits)
	slimCDMask = (int64(1)<<16 - 1) << 34
	slimCDMax  = int64(1)<<16 - 1
)

// SlimBravo is the BRAVO protocol at minimum footprint: a 16-byte
// lock (one packed state word + one packed arena reference) whose
// fast-path readers publish themselves in a shared ReaderTable.  See
// the file comment for what is kept and what is traded against the
// full Bravo wrapper.  Construct with NewSlimBravo; the zero value is
// not ready (the bias starts armed).
type SlimBravo struct {
	state atomic.Int64
	ref   uint32
}

// NewSlimBravo returns a read-biased SlimBravo.  The only options
// honored are WithSharedReaderTable (default: DefaultReaderTable();
// the table also supplies the wait strategy for revocation drains —
// every other wait is a yield loop, see the file comment).
func NewSlimBravo(opts ...Option) *SlimBravo {
	l := &SlimBravo{ref: slimResolve(opts)}
	l.state.Store(slimBias)
	return l
}

// RLock acquires read mode: the arena fast path while the bias is
// armed, the state-word reader count otherwise.
func (l *SlimBravo) RLock() RToken {
	tbl := slimTable(l.ref)
	id := slimOwner(l.ref)
	for {
		s := l.state.Load()
		if s&slimBias != 0 {
			if idx, ok := tbl.tryClaim(id); ok {
				// Recheck AFTER publishing, the BRAVO ordering: either
				// this load sees a revoking writer's clear and we back
				// out, or our claim is visible to that writer's drain.
				if l.state.Load()&slimBias != 0 {
					return RToken{side: slimFastSide, id: idx}
				}
				tbl.release(idx)
				continue
			}
			// Arena contended: fall through to the slow path.
		}
		if s&slimWH != 0 {
			runtime.Gosched()
			continue
		}
		ns := s + slimRC
		if s&slimBias == 0 && s&slimCDMask != 0 {
			// Count down the re-arm throttle; the passage that spends
			// it arms the bias in the same CAS.
			ns -= slimCD
			if ns&slimCDMask == 0 {
				ns |= slimBias
			}
		}
		if l.state.CompareAndSwap(s, ns) {
			return RToken{}
		}
	}
}

// RUnlock releases read mode; it must receive the token returned by
// the matching RLock.
func (l *SlimBravo) RUnlock(t RToken) {
	if t.side == slimFastSide {
		slimTable(l.ref).release(t.id)
		return
	}
	l.state.Add(-slimRC)
}

// Lock acquires write mode: take the writer bit and clear the bias in
// one CAS, then wait out the registered slow readers and drain this
// lock's arena claims.  The CAS is the commitment point.
func (l *SlimBravo) Lock() WToken {
	for {
		s := l.state.Load()
		if s&slimWH != 0 {
			runtime.Gosched()
			continue
		}
		if l.state.CompareAndSwap(s, (s&^slimBias)|slimWH) {
			l.writerSettle(s&slimBias != 0)
			return WToken{}
		}
	}
}

// writerSettle finishes a write acquisition after the commitment CAS:
// slow readers drain from rc, and if the bias was armed, the arena is
// drained and the re-arm budget set (sized as the full Bravo sizes
// it: the scan paid plus the busy slots waited on).  Runs with the
// writer bit held, so no concurrent writer and no bias re-arm can
// interleave.
func (l *SlimBravo) writerSettle(hadBias bool) {
	for l.state.Load()&slimRCMask != 0 {
		runtime.Gosched()
	}
	if !hadBias {
		return
	}
	tbl := slimTable(l.ref)
	busy := tbl.drainFor(slimOwner(l.ref))
	budget := int64(1 + tbl.Slots()/8 + bravoBusyFactor*busy)
	if budget > slimCDMax {
		budget = slimCDMax
	}
	for {
		s := l.state.Load()
		if l.state.CompareAndSwap(s, (s&^slimCDMask)|budget<<34) {
			return
		}
	}
}

// Unlock releases write mode.
func (l *SlimBravo) Unlock(WToken) { l.state.Add(-slimWH) }

// Write runs cs in write mode (the closure path; see FuncWriter).
func (l *SlimBravo) Write(cs func()) {
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// TryLock attempts write mode without blocking: it commits only when
// the lock is writer-free with no registered slow readers, and — as
// the full Bravo does — on an armed bias it SCANS the arena instead
// of draining it, restoring the bias and reporting busy if any of
// this lock's claims are live.
func (l *SlimBravo) TryLock() (WToken, bool) {
	s := l.state.Load()
	if s&slimWH != 0 || s&slimRCMask != 0 {
		return WToken{}, false
	}
	if !l.state.CompareAndSwap(s, (s&^slimBias)|slimWH) {
		return WToken{}, false
	}
	if s&slimBias != 0 {
		tbl := slimTable(l.ref)
		if !tbl.idleFor(slimOwner(l.ref)) {
			// Restore bias and release in one add: we hold the writer
			// bit, so nothing else can touch either bit concurrently.
			l.state.Add(slimBias - slimWH)
			return WToken{}, false
		}
		budget := int64(1 + tbl.Slots()/8)
		for {
			cur := l.state.Load()
			if l.state.CompareAndSwap(cur, (cur&^slimCDMask)|budget<<34) {
				break
			}
		}
	}
	return WToken{}, true
}

// TryRLock attempts read mode without blocking: one arena claim
// attempt while biased, else one registration CAS.
func (l *SlimBravo) TryRLock() (RToken, bool) {
	tbl := slimTable(l.ref)
	s := l.state.Load()
	if s&slimBias != 0 {
		if idx, ok := tbl.tryClaim(slimOwner(l.ref)); ok {
			if l.state.Load()&slimBias != 0 {
				return RToken{side: slimFastSide, id: idx}, true
			}
			tbl.release(idx)
		}
		s = l.state.Load()
	}
	if s&slimWH != 0 {
		return RToken{}, false
	}
	ns := s + slimRC
	if s&slimBias == 0 && s&slimCDMask != 0 {
		ns -= slimCD
		if ns&slimCDMask == 0 {
			ns |= slimBias
		}
	}
	if l.state.CompareAndSwap(s, ns) {
		return RToken{}, true
	}
	return RToken{}, false
}

// LockCtx acquires write mode, aborting with ctx.Err() while waiting
// for the writer bit; the commitment CAS ends cancellation — the
// reader drains then run to completion, bounded by the passages of
// the readers already inside.
func (l *SlimBravo) LockCtx(ctx context.Context) (WToken, error) {
	done := ctx.Done()
	for {
		s := l.state.Load()
		if s&slimWH != 0 {
			if done != nil {
				select {
				case <-done:
					return WToken{}, ctx.Err()
				default:
				}
			}
			runtime.Gosched()
			continue
		}
		if l.state.CompareAndSwap(s, (s&^slimBias)|slimWH) {
			l.writerSettle(s&slimBias != 0)
			return WToken{}, nil
		}
	}
}

// RLockCtx acquires read mode, aborting with ctx.Err() while waiting
// out a writer; the fast path never waits, so ctx plays no part in it.
func (l *SlimBravo) RLockCtx(ctx context.Context) (RToken, error) {
	tbl := slimTable(l.ref)
	id := slimOwner(l.ref)
	done := ctx.Done()
	for {
		s := l.state.Load()
		if s&slimBias != 0 {
			if idx, ok := tbl.tryClaim(id); ok {
				if l.state.Load()&slimBias != 0 {
					return RToken{side: slimFastSide, id: idx}, nil
				}
				tbl.release(idx)
				continue
			}
		}
		if s&slimWH != 0 {
			if done != nil {
				select {
				case <-done:
					return RToken{}, ctx.Err()
				default:
				}
			}
			runtime.Gosched()
			continue
		}
		ns := s + slimRC
		if s&slimBias == 0 && s&slimCDMask != 0 {
			ns -= slimCD
			if ns&slimCDMask == 0 {
				ns |= slimBias
			}
		}
		if l.state.CompareAndSwap(s, ns) {
			return RToken{}, nil
		}
	}
}

// WriteCtx runs cs in write mode unless ctx is cancelled first;
// LockCtx's commitment point applies.
func (l *SlimBravo) WriteCtx(ctx context.Context, cs func()) error {
	t, err := l.LockCtx(ctx)
	if err != nil {
		return err
	}
	defer l.Unlock(t)
	cs()
	return nil
}

// ReadBiased reports whether the arena fast path is currently armed
// (racy snapshot, for tests and metrics).
func (l *SlimBravo) ReadBiased() bool { return l.state.Load()&slimBias != 0 }

// SlimEpoch state-word layout: slow-reader count in the low 20 bits,
// the epoch counter above it, so the counter's lowest bit doubles as
// the writer-present flag (odd = writer inside, exactly the full
// Epoch's parity convention).
const (
	slimERCMask  = int64(1)<<20 - 1
	slimEpochOne = int64(1) << 20
)

// SlimEpoch is the epoch-parity protocol at minimum footprint: a
// 16-byte lock whose fast-path readers claim shared-arena slots and
// recheck the packed epoch, and whose writers advance the epoch to
// odd and wait out a grace period.  Unlike the full Epoch wrapper
// there is no deferred version reclamation (no Retire) and no batch
// amortization — every write pays its own grace scan.  See the file
// comment for the full trade.  Construct with NewSlimEpoch.
type SlimEpoch struct {
	state atomic.Int64
	ref   uint32
}

// NewSlimEpoch returns a SlimEpoch.  The only option honored is
// WithSharedReaderTable (default: DefaultReaderTable()).
func NewSlimEpoch(opts ...Option) *SlimEpoch {
	return &SlimEpoch{ref: slimResolve(opts)}
}

// RLock acquires read mode: claim an arena slot and recheck the epoch
// while it is even, registering in the packed reader count when the
// arena is contended, yielding while a writer (odd epoch) is inside.
func (l *SlimEpoch) RLock() RToken {
	tbl := slimTable(l.ref)
	id := slimOwner(l.ref)
	for {
		s := l.state.Load()
		if s&slimEpochOne != 0 {
			runtime.Gosched()
			continue
		}
		g := s &^ slimERCMask
		if idx, ok := tbl.tryClaim(id); ok {
			// Recheck AFTER publishing: if the epoch still reads g, our
			// claim precedes any advancing writer's drain (seq-cst
			// Dekker), which will wait us out; otherwise back out.
			if l.state.Load()&^slimERCMask == g {
				return RToken{side: slimFastSide, id: idx}
			}
			tbl.release(idx) // wake: a grace scan may be parked here
			continue
		}
		if l.state.CompareAndSwap(s, s+1) {
			return RToken{}
		}
	}
}

// RUnlock releases read mode; it must receive the token returned by
// the matching RLock.
func (l *SlimEpoch) RUnlock(t RToken) {
	if t.side == slimFastSide {
		slimTable(l.ref).release(t.id)
		return
	}
	l.state.Add(-1)
}

// Lock acquires write mode: advance the epoch to odd (the commitment
// point — fast entries now recheck-fail), then wait out registered
// readers and drain this lock's arena claims (the grace period).
func (l *SlimEpoch) Lock() WToken {
	for {
		s := l.state.Load()
		if s&slimEpochOne != 0 {
			runtime.Gosched()
			continue
		}
		if l.state.CompareAndSwap(s, s+slimEpochOne) {
			for l.state.Load()&slimERCMask != 0 {
				runtime.Gosched()
			}
			slimTable(l.ref).drainFor(slimOwner(l.ref))
			return WToken{}
		}
	}
}

// Unlock releases write mode by advancing the epoch back to even — a
// fresh value, so stamped rechecks against any older epoch fail.
func (l *SlimEpoch) Unlock(WToken) { l.state.Add(slimEpochOne) }

// Write runs cs in write mode (the closure path; see FuncWriter).
func (l *SlimEpoch) Write(cs func()) {
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// TryLock attempts write mode without blocking: it commits the epoch
// advance only when no writer is in and no reader is registered, and
// SCANS the arena instead of draining it — on any live claim of this
// lock it advances again (reopening the fast path at a fresh even
// epoch; the monotonic counter makes the double advance safe) and
// reports busy, so a fast-path reader is never waited on.
func (l *SlimEpoch) TryLock() (WToken, bool) {
	s := l.state.Load()
	if s&slimEpochOne != 0 || s&slimERCMask != 0 {
		return WToken{}, false
	}
	if !l.state.CompareAndSwap(s, s+slimEpochOne) {
		return WToken{}, false
	}
	if !slimTable(l.ref).idleFor(slimOwner(l.ref)) {
		l.state.Add(slimEpochOne) // reopen without a grace wait
		return WToken{}, false
	}
	return WToken{}, true
}

// TryRLock attempts read mode without blocking: one arena claim
// attempt, else one registration CAS while the epoch is even.
func (l *SlimEpoch) TryRLock() (RToken, bool) {
	tbl := slimTable(l.ref)
	s := l.state.Load()
	if s&slimEpochOne != 0 {
		return RToken{}, false
	}
	g := s &^ slimERCMask
	if idx, ok := tbl.tryClaim(slimOwner(l.ref)); ok {
		if l.state.Load()&^slimERCMask == g {
			return RToken{side: slimFastSide, id: idx}, true
		}
		tbl.release(idx)
		return RToken{}, false
	}
	if l.state.CompareAndSwap(s, s+1) {
		return RToken{}, true
	}
	return RToken{}, false
}

// LockCtx acquires write mode, aborting with ctx.Err() while waiting
// for the epoch to turn even; the advance CAS is the commitment point
// — the grace wait runs to completion past it.
func (l *SlimEpoch) LockCtx(ctx context.Context) (WToken, error) {
	done := ctx.Done()
	for {
		s := l.state.Load()
		if s&slimEpochOne != 0 {
			if done != nil {
				select {
				case <-done:
					return WToken{}, ctx.Err()
				default:
				}
			}
			runtime.Gosched()
			continue
		}
		if l.state.CompareAndSwap(s, s+slimEpochOne) {
			for l.state.Load()&slimERCMask != 0 {
				runtime.Gosched()
			}
			slimTable(l.ref).drainFor(slimOwner(l.ref))
			return WToken{}, nil
		}
	}
}

// RLockCtx acquires read mode, aborting with ctx.Err() while a writer
// holds the epoch odd; the fast path never waits.
func (l *SlimEpoch) RLockCtx(ctx context.Context) (RToken, error) {
	tbl := slimTable(l.ref)
	id := slimOwner(l.ref)
	done := ctx.Done()
	for {
		s := l.state.Load()
		if s&slimEpochOne != 0 {
			if done != nil {
				select {
				case <-done:
					return RToken{}, ctx.Err()
				default:
				}
			}
			runtime.Gosched()
			continue
		}
		g := s &^ slimERCMask
		if idx, ok := tbl.tryClaim(id); ok {
			if l.state.Load()&^slimERCMask == g {
				return RToken{side: slimFastSide, id: idx}, nil
			}
			tbl.release(idx)
			continue
		}
		if l.state.CompareAndSwap(s, s+1) {
			return RToken{}, nil
		}
	}
}

// WriteCtx runs cs in write mode unless ctx is cancelled first;
// LockCtx's commitment point applies.
func (l *SlimEpoch) WriteCtx(ctx context.Context, cs func()) error {
	t, err := l.LockCtx(ctx)
	if err != nil {
		return err
	}
	defer l.Unlock(t)
	cs()
	return nil
}

var _ RWLock = (*SlimBravo)(nil)
var _ TryRWLock = (*SlimBravo)(nil)
var _ CtxRWLock = (*SlimBravo)(nil)
var _ FuncWriter = (*SlimBravo)(nil)
var _ CtxFuncWriter = (*SlimBravo)(nil)
var _ RWLock = (*SlimEpoch)(nil)
var _ TryRWLock = (*SlimEpoch)(nil)
var _ CtxRWLock = (*SlimEpoch)(nil)
var _ FuncWriter = (*SlimEpoch)(nil)
var _ CtxFuncWriter = (*SlimEpoch)(nil)
