package rwlock

import (
	"sync"
	"testing"
)

func TestGuardBasic(t *testing.T) {
	g := NewGuard[int](NewMWSF(), 41)
	g.Write(func(v *int) { *v++ })
	var got int
	g.Read(func(v int) { got = v })
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	if g.Load() != 42 {
		t.Fatalf("Load = %d, want 42", g.Load())
	}
	g.Store(7)
	if g.Load() != 7 {
		t.Fatalf("after Store, Load = %d, want 7", g.Load())
	}
}

func TestGuardNilLockDefaults(t *testing.T) {
	g := NewGuard[string](nil, "hello")
	if g.Load() != "hello" {
		t.Fatal("default-lock guard broken")
	}
}

func TestGuardConcurrentMap(t *testing.T) {
	g := NewGuard(NewMWWP(), map[string]int{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Write(func(m *map[string]int) { (*m)["k"]++ })
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Read(func(m map[string]int) { _ = m["k"] })
			}
		}()
	}
	wg.Wait()
	var final int
	g.Read(func(m map[string]int) { final = m["k"] })
	if final != 2000 {
		t.Fatalf("counter = %d, want 2000", final)
	}
}

func TestLockerAdapter(t *testing.T) {
	l := NewMWSF()
	lk := Locker(l)
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				lk.Lock()
				counter++
				lk.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 2000 {
		t.Fatalf("counter = %d, want 2000", counter)
	}
}

func TestLockerWithCond(t *testing.T) {
	// The write Locker must be usable with sync.Cond.
	l := NewMWSF()
	lk := Locker(l)
	cond := sync.NewCond(lk)
	ready := false

	done := make(chan struct{})
	go func() {
		lk.Lock()
		for !ready {
			cond.Wait()
		}
		lk.Unlock()
		close(done)
	}()

	lk.Lock()
	ready = true
	cond.Signal()
	lk.Unlock()
	<-done
}

func TestRLockerPerGoroutine(t *testing.T) {
	l := NewMWRP()
	var data int
	wt := Locker(l)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rl := RLocker(l) // one per goroutine, per the contract
			for j := 0; j < 500; j++ {
				rl.Lock()
				_ = data
				rl.Unlock()
			}
		}()
	}
	for j := 0; j < 200; j++ {
		wt.Lock()
		data++
		wt.Unlock()
	}
	wg.Wait()
	if data != 200 {
		t.Fatalf("data = %d, want 200", data)
	}
}
