package rwlock

import (
	"context"
	"sync/atomic"
)

// This file implements the paper's Section 5: the single-writer cores
// lifted to multi-writer locks.
//
// MWSF and MWRP use the Figure 3 transformation T verbatim: writers
// are serialized through the mutual-exclusion lock M around the
// single-writer protocol; readers run the single-writer protocol
// unchanged.  M is the pluggable writer-arbitration layer (mcs.go):
// the unbounded MCS queue by default, Anderson's array under
// WithBoundedWriters — either meets the FCFS + starvation-free +
// O(1)-RMR contract the Theorem 3-5 proofs require of M.
//
// MWWP implements Figure 4: T alone does not preserve writer priority
// (Section 5.1), so exiting writers hand the SWWP core directly to
// arriving writers through the W-token, and only the last writer to
// leave (with no writer waiting) exits the SWWP core and reopens the
// gate for readers.

// MWSF is the multi-writer multi-reader STARVATION-FREE lock of
// Theorem 3 (no priority class): mutual exclusion, bounded exit,
// FCFS among writers, FIFE among readers, concurrent entering,
// livelock- and starvation-freedom, with O(1) RMR complexity.
type MWSF struct {
	core  swwpCore
	m     writerMutex
	stats *LockStats
}

// NewMWSF returns a starvation-free reader-writer lock.  Writer
// concurrency is unbounded by default (MCS arbitration); pass
// WithBoundedWriters(n) to cap concurrent write attempts at n.
func NewMWSF(opts ...Option) *MWSF {
	o := applyOptions(opts)
	l := &MWSF{m: newWriterMutex(o), stats: o.stats}
	l.core.init(o.strategy, o.stats)
	if c, ok := l.m.(*combiner); ok {
		// Bind the combiner's per-record passage once, so Write can
		// submit the caller's closure unwrapped (no per-op allocation).
		c.passage = l.core.writePassage
	}
	return l
}

// Lock acquires the lock in write mode.
func (l *MWSF) Lock() WToken {
	if st := l.stats; st != nil {
		return l.lockStats(st)
	}
	slot := l.m.acquire()
	prev, cur := l.core.writerDoorway()
	l.core.writerWaitingRoom(prev)
	return WToken{prev: prev, cur: cur, slot: slot}
}

// lockStats is Lock's instrumented twin, kept separate so the
// stats-disabled path above stays the pre-instrumentation body plus
// one nil check.  holdStartNS is safe as a plain register: only the
// 1-in-statsSampleEvery sampled passage stores it, and write mode is
// exclusive, so the matching Unlock's swap sees either its own stamp
// or zero.
func (l *MWSF) lockStats(st *LockStats) WToken {
	var start int64
	sample := st.sampleNow()
	if sample {
		start = nowNanos()
	}
	slot := l.m.acquire()
	prev, cur := l.core.writerDoorway()
	l.core.writerWaitingRoom(prev)
	st.WriteAcquires.Add(1)
	if sample {
		now := nowNanos()
		st.recordWriteWait(now - start)
		st.holdStartNS.Store(now)
	}
	return WToken{prev: prev, cur: cur, slot: slot}
}

// Unlock releases write mode.
func (l *MWSF) Unlock(t WToken) {
	if st := l.stats; st != nil {
		if hs := st.holdStartNS.Swap(0); hs != 0 {
			st.recordWriteHold(nowNanos() - hs)
		}
	}
	l.core.writerExit(t.cur)
	l.m.release(t.slot)
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// On a lock built with WithCombiningWriters this is where batching
// happens: cs is published to the combiner, which runs pending
// sections back-to-back — each inside the full Figure 1 write passage
// (the combiner's pre-bound passage hook) — within one acquisition of
// the arbitration mutex.
func (l *MWSF) Write(cs func()) {
	if c, ok := l.m.(*combiner); ok {
		c.exec(cs)
		if st := l.stats; st != nil {
			st.WriteAcquires.Add(1)
		}
		return
	}
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// CombinerStats reports the batching statistics when the lock was
// built with WithCombiningWriters (see CombinerStatsOf).
func (l *MWSF) CombinerStats() (CombinerStats, bool) {
	if c, ok := l.m.(*combiner); ok {
		return c.snapshot(), true
	}
	return CombinerStats{}, false
}

// TryLock attempts write mode without blocking: a non-blocking probe
// of the arbitration mutex (tryAcquire — one CAS on the MCS tail, or
// the Anderson gate + availability check on /bounded locks) followed
// by the no-readers probe, and only then the irreversible doorway.
// The probe and the commit are not atomic: a reader registering in
// that window is drained by the ordinary waiting room, so TryLock
// never waits on a writer but can briefly wait out such a racer.
func (l *MWSF) TryLock() (WToken, bool) {
	slot, ok := l.m.tryAcquire()
	if !ok {
		if st := l.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return WToken{}, false
	}
	if !l.core.readersIdle() {
		l.m.release(slot)
		if st := l.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return WToken{}, false
	}
	prev, cur := l.core.writerDoorway()
	l.core.writerWaitingRoom(prev)
	if st := l.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return WToken{prev: prev, cur: cur, slot: slot}, true
}

// TryRLock attempts read mode without blocking; a failed attempt
// retires through a zero-length read passage (see
// swwpCore.tryReaderLock).
func (l *MWSF) TryRLock() (RToken, bool) { return l.core.tryReaderLock() }

// LockCtx acquires write mode with the queue wait cancellable: while
// the writer waits its turn on the arbitration mutex — where an
// oversubscribed writer convoy actually waits — cancellation unlinks
// it (the MCS abort seam; on /bounded locks only the admission gate
// is abortable, see AndersonLock.AcquireCtx).  Once the mutex is
// granted the doorway commits the writer and ctx is not consulted
// again.
func (l *MWSF) LockCtx(ctx context.Context) (WToken, error) {
	slot, err := l.m.acquireCtx(ctx)
	if err != nil {
		if st := l.stats; st != nil {
			st.CtxSheds.Add(1)
		}
		return WToken{}, err
	}
	if err := ctx.Err(); err != nil {
		// Cancelled between grant and doorway: nothing of the core has
		// been touched, so handing the mutex on is a complete undo.
		l.m.release(slot)
		if st := l.stats; st != nil {
			st.CtxSheds.Add(1)
		}
		return WToken{}, err
	}
	prev, cur := l.core.writerDoorway() // point of no return
	l.core.writerWaitingRoom(prev)
	if st := l.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return WToken{prev: prev, cur: cur, slot: slot}, nil
}

// RLockCtx acquires read mode, aborting the gate wait when ctx is
// cancelled; the aborted reader retires through a zero-length read
// passage, keeping counts and permit handoffs exact.
func (l *MWSF) RLockCtx(ctx context.Context) (RToken, error) {
	return l.core.readerLockCtx(ctx)
}

// WriteCtx runs cs in write mode unless ctx is cancelled first.  On a
// combining lock cancellation wins only before the publication CAS (a
// published record always executes — see combiner.execCtx); otherwise
// LockCtx's commitment point applies.
func (l *MWSF) WriteCtx(ctx context.Context, cs func()) error {
	if c, ok := l.m.(*combiner); ok {
		err := c.execCtx(ctx, cs)
		if st := l.stats; st != nil {
			if err != nil {
				st.CtxSheds.Add(1)
			} else {
				st.WriteAcquires.Add(1)
			}
		}
		return err
	}
	t, err := l.LockCtx(ctx)
	if err != nil {
		return err
	}
	defer l.Unlock(t)
	cs()
	return nil
}

// RLock acquires the lock in read mode.
func (l *MWSF) RLock() RToken { return l.core.readerLock() }

// RUnlock releases read mode.
func (l *MWSF) RUnlock(t RToken) { l.core.readerUnlock(t) }

var _ RWLock = (*MWSF)(nil)
var _ FuncWriter = (*MWSF)(nil)
var _ TryRWLock = (*MWSF)(nil)
var _ CtxRWLock = (*MWSF)(nil)
var _ CtxFuncWriter = (*MWSF)(nil)

// MWRP is the multi-writer multi-reader READER-PRIORITY lock of
// Theorem 4: properties P1-P6 plus RP1/RP2, with O(1) RMR
// complexity.  Writers may starve while readers keep arriving.
type MWRP struct {
	core  swrpCore
	m     writerMutex
	stats *LockStats
}

// NewMWRP returns a reader-priority reader-writer lock.  Writer
// concurrency is unbounded by default (MCS arbitration); pass
// WithBoundedWriters(n) to cap concurrent write attempts at n.
func NewMWRP(opts ...Option) *MWRP {
	o := applyOptions(opts)
	l := &MWRP{m: newWriterMutex(o), stats: o.stats}
	l.core.init(o.strategy, o.stats)
	if c, ok := l.m.(*combiner); ok {
		c.passage = l.core.writePassage // see NewMWSF
	}
	return l
}

// Lock acquires the lock in write mode.
func (l *MWRP) Lock() WToken {
	if st := l.stats; st != nil {
		return l.lockStats(st)
	}
	slot := l.m.acquire()
	t := l.core.writerLock()
	t.slot = slot
	return t
}

// lockStats is Lock's instrumented twin; see MWSF.lockStats for the
// holdStartNS register discipline.
func (l *MWRP) lockStats(st *LockStats) WToken {
	var start int64
	sample := st.sampleNow()
	if sample {
		start = nowNanos()
	}
	slot := l.m.acquire()
	t := l.core.writerLock()
	t.slot = slot
	st.WriteAcquires.Add(1)
	if sample {
		now := nowNanos()
		st.recordWriteWait(now - start)
		st.holdStartNS.Store(now)
	}
	return t
}

// Unlock releases write mode.
func (l *MWRP) Unlock(t WToken) {
	if st := l.stats; st != nil {
		if hs := st.holdStartNS.Swap(0); hs != 0 {
			st.recordWriteHold(nowNanos() - hs)
		}
	}
	l.core.writerUnlock(t)
	l.m.release(t.slot)
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// On a combining lock cs is published and batched, each record run
// inside the full Figure 2 write passage; see MWSF.Write.
func (l *MWRP) Write(cs func()) {
	if c, ok := l.m.(*combiner); ok {
		c.exec(cs)
		if st := l.stats; st != nil {
			st.WriteAcquires.Add(1)
		}
		return
	}
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// CombinerStats reports the batching statistics when the lock was
// built with WithCombiningWriters (see CombinerStatsOf).
func (l *MWRP) CombinerStats() (CombinerStats, bool) {
	if c, ok := l.m.(*combiner); ok {
		return c.snapshot(), true
	}
	return CombinerStats{}, false
}

// TryLock attempts write mode without blocking: the arbitration
// mutex's non-blocking probe, then the no-readers probe (under reader
// priority a writer facing registered readers may wait unboundedly),
// then the commit.  As with every TryLock in the package, a reader
// registering between probe and commit is waited out through the
// promotion handoff — the documented race window.
func (l *MWRP) TryLock() (WToken, bool) {
	slot, ok := l.m.tryAcquire()
	if !ok {
		if st := l.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return WToken{}, false
	}
	if l.core.c.Load() != 0 {
		l.m.release(slot)
		if st := l.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return WToken{}, false
	}
	t := l.core.writerLock()
	t.slot = slot
	if st := l.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return t, true
}

// TryRLock attempts read mode without blocking; under reader priority
// it fails only while a writer owns (or has just been promoted into)
// the CS.  See swrpCore.tryReaderLock.
func (l *MWRP) TryRLock() (RToken, bool) { return l.core.tryReaderLock() }

// LockCtx acquires write mode with the arbitration-queue wait
// cancellable.  Once the mutex is granted and the core's direction
// toggle runs, the writer is committed; under reader priority that
// committed wait is unbounded while readers keep arriving, and ctx
// cannot recall it — deadline writers on a reader-priority lock
// should expect cancellation to win only in the queue.
func (l *MWRP) LockCtx(ctx context.Context) (WToken, error) {
	slot, err := l.m.acquireCtx(ctx)
	if err != nil {
		if st := l.stats; st != nil {
			st.CtxSheds.Add(1)
		}
		return WToken{}, err
	}
	if err := ctx.Err(); err != nil {
		l.m.release(slot) // core untouched: a complete undo
		if st := l.stats; st != nil {
			st.CtxSheds.Add(1)
		}
		return WToken{}, err
	}
	t := l.core.writerLock() // point of no return
	t.slot = slot
	if st := l.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return t, nil
}

// RLockCtx acquires read mode, aborting the gate wait when ctx is
// cancelled; the aborted reader retires through a zero-length read
// passage (C decrement + Promote), keeping the promotion handoff
// exact.
func (l *MWRP) RLockCtx(ctx context.Context) (RToken, error) {
	return l.core.readerLockCtx(ctx)
}

// WriteCtx runs cs in write mode unless ctx is cancelled first; on a
// combining lock the publication CAS is the point of no return (see
// combiner.execCtx), otherwise LockCtx's commitment points apply.
func (l *MWRP) WriteCtx(ctx context.Context, cs func()) error {
	if c, ok := l.m.(*combiner); ok {
		err := c.execCtx(ctx, cs)
		if st := l.stats; st != nil {
			if err != nil {
				st.CtxSheds.Add(1)
			} else {
				st.WriteAcquires.Add(1)
			}
		}
		return err
	}
	t, err := l.LockCtx(ctx)
	if err != nil {
		return err
	}
	defer l.Unlock(t)
	cs()
	return nil
}

// RLock acquires the lock in read mode.
func (l *MWRP) RLock() RToken { return l.core.readerLock() }

// RUnlock releases read mode.
func (l *MWRP) RUnlock(t RToken) { l.core.readerUnlock(t) }

var _ RWLock = (*MWRP)(nil)
var _ FuncWriter = (*MWRP)(nil)
var _ TryRWLock = (*MWRP)(nil)
var _ CtxRWLock = (*MWRP)(nil)
var _ CtxFuncWriter = (*MWRP)(nil)

// MWWP is the multi-writer multi-reader WRITER-PRIORITY lock of
// Theorem 5 (the paper's Figure 4): properties P1-P6 plus WP1/WP2,
// with O(1) RMR complexity.  Readers may starve while writers keep
// arriving.
type MWWP struct {
	core   swwpCore
	wcount atomic.Int64
	_      [56]byte
	wtoken atomic.Int64 // PID (>=0) ∪ {tokenFalse} ∪ side tokens
	_      [56]byte
	idCtr  atomic.Int64
	_      [56]byte
	m      writerMutex
	stats  *LockStats
}

// NewMWWP returns a writer-priority reader-writer lock.  Writer
// concurrency is unbounded by default (MCS arbitration); pass
// WithBoundedWriters(n) to cap concurrent write attempts at n.
func NewMWWP(opts ...Option) *MWWP {
	o := applyOptions(opts)
	l := &MWWP{m: newWriterMutex(o), stats: o.stats}
	l.core.init(o.strategy, o.stats)
	// W-token starts as the side token for side 1 so the first writer
	// behaves exactly like the first SWWP attempt (D: 0 -> 1).
	l.wtoken.Store(tokenSide(1))
	if c, ok := l.m.(*combiner); ok {
		c.passage = l.combinedPassage // see NewMWSF
	}
	return l
}

// doorway is Figure 4 lines 2-8: the wait-free announcement every
// writer — token-path or combining — performs before queueing on (or
// publishing to) the arbitration mutex M.
func (l *MWWP) doorway() {
	l.wcount.Add(1)      // line 2
	t := l.wtoken.Load() // line 3
	if t >= 0 {          // line 4: t is a pid
		l.wtoken.CompareAndSwap(t, tokenFalse) // line 5
	}
	t = l.wtoken.Load() // line 6
	if isSideToken(t) { // line 7
		l.core.d.Store(int32(sideOfToken(t))) // line 8: SWWP doorway
	}
}

// Lock acquires the lock in write mode (Figure 4 lines 2-13).  The
// line 12 gate wait inside enterHeld covers the previous writer
// having won the CAS at line 19 but not yet reopened the gate at line
// 20; writerExit's storeWake is the matching signal.
func (l *MWWP) Lock() WToken {
	if st := l.stats; st != nil {
		return l.lockStats(st)
	}
	id := l.idCtr.Add(1)
	l.doorway()           // lines 2-8
	slot := l.m.acquire() // line 9
	prev, cur := l.enterHeld()
	return WToken{prev: prev, cur: cur, slot: slot, id: id}
}

// lockStats is Lock's instrumented twin; see MWSF.lockStats for the
// holdStartNS register discipline.
func (l *MWWP) lockStats(st *LockStats) WToken {
	var start int64
	sample := st.sampleNow()
	if sample {
		start = nowNanos()
	}
	id := l.idCtr.Add(1)
	l.doorway()           // lines 2-8
	slot := l.m.acquire() // line 9
	prev, cur := l.enterHeld()
	st.WriteAcquires.Add(1)
	if sample {
		now := nowNanos()
		st.recordWriteWait(now - start)
		st.holdStartNS.Store(now)
	}
	return WToken{prev: prev, cur: cur, slot: slot, id: id}
}

// Unlock releases write mode (Figure 4 lines 15-20).
func (l *MWWP) Unlock(t WToken) {
	if st := l.stats; st != nil {
		if hs := st.holdStartNS.Swap(0); hs != 0 {
			st.recordWriteHold(nowNanos() - hs)
		}
	}
	l.wtoken.Store(t.id)      // line 15
	l.wcount.Add(-1)          // line 16
	l.m.release(t.slot)       // line 17
	if l.wcount.Load() == 0 { // line 18
		if l.wtoken.CompareAndSwap(t.id, tokenSide(t.prev)) { // line 19
			l.core.writerExit(t.cur) // line 20
		}
	}
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// On a combining lock the Figure 4 passage is split around the
// arbitration mutex M exactly where Lock/Unlock are: the doorway
// (lines 2-8) runs on the calling goroutine before publication, and
// the combiner — holding M in place of line 9's acquire — runs
// combinedPassage (lines 10-20) once per record.
func (l *MWWP) Write(cs func()) {
	c, ok := l.m.(*combiner)
	if !ok {
		t := l.Lock()
		defer l.Unlock(t)
		cs()
		return
	}
	l.doorway() // lines 2-8, before publication
	c.exec(cs)
	if st := l.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
}

// combinedPassage is the combiner-side half of a combined Figure 4
// write: M is held for the whole batch (lines 9/17), the submitter
// already ran the doorway, and this runs lines 10-13, cs, and lines
// 15-16 for one record.  The attempt pid is drawn here rather than at
// the doorway — it is unused before line 15, and drawing it inside
// the passage keeps the published record closure-free.  The
// last-writer exit check (lines 18-20) also runs per record, with M
// still held rather than after line 17's release; that narrows but
// does not change the race the line-19 CAS already arbitrates — a
// writer arriving after the check handles both outcomes (pid → fast
// handoff, side token → doorway + waiting room), exactly as in the
// unbatched algorithm.  Mid-batch records see wcount > 0 (their
// publishers counted in at line 2 before publishing, which precedes
// the combiner's drain), so the gate stays closed across a batch —
// the writer-priority batching.
func (l *MWWP) combinedPassage(cs func()) {
	id := l.idCtr.Add(1)
	cur := l.core.d.Load() // line 10
	prev := 1 - cur
	if isSideToken(l.wtoken.Load()) { // line 11
		l.core.gate[prev].wait(cellTrue) // line 12
		l.core.writerWaitingRoom(prev)   // line 13
	}
	cs()
	l.wtoken.Store(id)        // line 15
	l.wcount.Add(-1)          // line 16
	if l.wcount.Load() == 0 { // line 18
		if l.wtoken.CompareAndSwap(id, tokenSide(prev)) { // line 19
			l.core.writerExit(cur) // line 20
		}
	}
}

// CombinerStats reports the batching statistics when the lock was
// built with WithCombiningWriters (see CombinerStatsOf).
func (l *MWWP) CombinerStats() (CombinerStats, bool) {
	if c, ok := l.m.(*combiner); ok {
		return c.snapshot(), true
	}
	return CombinerStats{}, false
}

// enterHeld is Figure 4 lines 10-13, run with the arbitration mutex
// held and the doorway done: take the fast W-token handoff when a
// predecessor left the SWWP core held, or run the gate wait + waiting
// room when the side token says the core must be (re)entered.
func (l *MWWP) enterHeld() (prev, cur int32) {
	cur = l.core.d.Load() // line 10
	prev = 1 - cur
	if isSideToken(l.wtoken.Load()) { // line 11
		l.core.gate[prev].wait(cellTrue) // line 12
		l.core.writerWaitingRoom(prev)   // line 13
	}
	return prev, cur
}

// TryLock attempts write mode without blocking: the arbitration
// mutex's non-blocking probe first, then — only when the W-token is a
// side token, i.e. no predecessor left the core held for us — the
// no-readers probe, and then the commit (doorway + lines 10-13).
// Unlike the blocking Lock, the doorway runs AFTER the mutex probe;
// see LockCtx for why that reordering is sound.  The probes and the
// commit are not atomic: a reader registering (or a predecessor
// reopening the gate) in that window is drained by the ordinary
// waiting room — the documented race window.
func (l *MWWP) TryLock() (WToken, bool) {
	slot, ok := l.m.tryAcquire()
	if !ok {
		if st := l.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return WToken{}, false
	}
	if isSideToken(l.wtoken.Load()) && !l.core.readersIdle() {
		l.m.release(slot)
		if st := l.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return WToken{}, false
	}
	id := l.idCtr.Add(1)
	l.doorway() // commit
	prev, cur := l.enterHeld()
	if st := l.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return WToken{prev: prev, cur: cur, slot: slot, id: id}, true
}

// TryRLock attempts read mode without blocking; a failed attempt
// retires through a zero-length read passage (see
// swwpCore.tryReaderLock).
func (l *MWWP) TryRLock() (RToken, bool) { return l.core.tryReaderLock() }

// LockCtx acquires write mode with the arbitration-queue wait
// cancellable.  To stay abortable while queued it DELAYS the Figure 4
// doorway until after the mutex grant: the blocking Lock announces
// itself (Wcount, the W-token CAS) before queueing so that even a
// deeply queued writer convoy keeps the reader gate closed across
// handoffs, but an announced writer cannot retract (nothing ever
// decrements Wcount except a completed passage).  Exclusion and
// starvation-freedom are unaffected — every CS-entry wait (lines
// 10-13) runs under the mutex either way, and the line 19 CAS
// arbitrates the exit race identically — but a ctx writer parked in
// the queue does not hold the gate closed, so WP1's early
// cross-handoff gate closing narrows to announced (blocking-path)
// writers.  After the grant, the doorway is the point of no return.
func (l *MWWP) LockCtx(ctx context.Context) (WToken, error) {
	slot, err := l.m.acquireCtx(ctx)
	if err != nil {
		if st := l.stats; st != nil {
			st.CtxSheds.Add(1)
		}
		return WToken{}, err
	}
	if err := ctx.Err(); err != nil {
		// Not yet announced: handing the mutex on is a complete undo.
		l.m.release(slot)
		if st := l.stats; st != nil {
			st.CtxSheds.Add(1)
		}
		return WToken{}, err
	}
	id := l.idCtr.Add(1)
	l.doorway() // point of no return
	prev, cur := l.enterHeld()
	if st := l.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return WToken{prev: prev, cur: cur, slot: slot, id: id}, nil
}

// RLockCtx acquires read mode, aborting the gate wait when ctx is
// cancelled; the aborted reader retires through a zero-length read
// passage, keeping counts and permit handoffs exact.
func (l *MWWP) RLockCtx(ctx context.Context) (RToken, error) {
	return l.core.readerLockCtx(ctx)
}

// WriteCtx runs cs in write mode unless ctx is cancelled first.  On a
// combining lock the point of no return is the DOORWAY, not the
// publication CAS: Write must announce Wcount before publishing (the
// writer-priority batching depends on it), and an announced writer
// cannot retract, so WriteCtx checks ctx once and then commits
// through the uncancellable Write path.  On a non-combining lock
// LockCtx's commitment points apply.
func (l *MWWP) WriteCtx(ctx context.Context, cs func()) error {
	c, ok := l.m.(*combiner)
	if !ok {
		t, err := l.LockCtx(ctx)
		if err != nil {
			return err
		}
		defer l.Unlock(t)
		cs()
		return nil
	}
	if err := ctx.Err(); err != nil {
		if st := l.stats; st != nil {
			st.CtxSheds.Add(1)
		}
		return err
	}
	l.doorway() // point of no return: Wcount is announced
	c.exec(cs)
	if st := l.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return nil
}

// RLock acquires the lock in read mode (the unchanged SWWP reader).
func (l *MWWP) RLock() RToken { return l.core.readerLock() }

// RUnlock releases read mode.
func (l *MWWP) RUnlock(t RToken) { l.core.readerUnlock(t) }

var _ RWLock = (*MWWP)(nil)
var _ FuncWriter = (*MWWP)(nil)
var _ TryRWLock = (*MWWP)(nil)
var _ CtxRWLock = (*MWWP)(nil)
var _ CtxFuncWriter = (*MWWP)(nil)
