package rwlock

import "sync/atomic"

// This file implements the paper's Section 5: the single-writer cores
// lifted to multi-writer locks.
//
// MWSF and MWRP use the Figure 3 transformation T verbatim: writers
// are serialized through the mutual-exclusion lock M around the
// single-writer protocol; readers run the single-writer protocol
// unchanged.  M is the pluggable writer-arbitration layer (mcs.go):
// the unbounded MCS queue by default, Anderson's array under
// WithBoundedWriters — either meets the FCFS + starvation-free +
// O(1)-RMR contract the Theorem 3-5 proofs require of M.
//
// MWWP implements Figure 4: T alone does not preserve writer priority
// (Section 5.1), so exiting writers hand the SWWP core directly to
// arriving writers through the W-token, and only the last writer to
// leave (with no writer waiting) exits the SWWP core and reopens the
// gate for readers.

// MWSF is the multi-writer multi-reader STARVATION-FREE lock of
// Theorem 3 (no priority class): mutual exclusion, bounded exit,
// FCFS among writers, FIFE among readers, concurrent entering,
// livelock- and starvation-freedom, with O(1) RMR complexity.
type MWSF struct {
	core swwpCore
	m    writerMutex
}

// NewMWSF returns a starvation-free reader-writer lock.  Writer
// concurrency is unbounded by default (MCS arbitration); pass
// WithBoundedWriters(n) to cap concurrent write attempts at n.
func NewMWSF(opts ...Option) *MWSF {
	o := applyOptions(opts)
	l := &MWSF{m: newWriterMutex(o)}
	l.core.init(o.strategy)
	if c, ok := l.m.(*combiner); ok {
		// Bind the combiner's per-record passage once, so Write can
		// submit the caller's closure unwrapped (no per-op allocation).
		c.passage = l.core.writePassage
	}
	return l
}

// Lock acquires the lock in write mode.
func (l *MWSF) Lock() WToken {
	slot := l.m.acquire()
	prev, cur := l.core.writerDoorway()
	l.core.writerWaitingRoom(prev)
	return WToken{prev: prev, cur: cur, slot: slot}
}

// Unlock releases write mode.
func (l *MWSF) Unlock(t WToken) {
	l.core.writerExit(t.cur)
	l.m.release(t.slot)
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// On a lock built with WithCombiningWriters this is where batching
// happens: cs is published to the combiner, which runs pending
// sections back-to-back — each inside the full Figure 1 write passage
// (the combiner's pre-bound passage hook) — within one acquisition of
// the arbitration mutex.
func (l *MWSF) Write(cs func()) {
	if c, ok := l.m.(*combiner); ok {
		c.exec(cs)
		return
	}
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// CombinerStats reports the batching statistics when the lock was
// built with WithCombiningWriters (see CombinerStatsOf).
func (l *MWSF) CombinerStats() (CombinerStats, bool) {
	if c, ok := l.m.(*combiner); ok {
		return c.snapshot(), true
	}
	return CombinerStats{}, false
}

// RLock acquires the lock in read mode.
func (l *MWSF) RLock() RToken { return l.core.readerLock() }

// RUnlock releases read mode.
func (l *MWSF) RUnlock(t RToken) { l.core.readerUnlock(t) }

var _ RWLock = (*MWSF)(nil)
var _ FuncWriter = (*MWSF)(nil)

// MWRP is the multi-writer multi-reader READER-PRIORITY lock of
// Theorem 4: properties P1-P6 plus RP1/RP2, with O(1) RMR
// complexity.  Writers may starve while readers keep arriving.
type MWRP struct {
	core swrpCore
	m    writerMutex
}

// NewMWRP returns a reader-priority reader-writer lock.  Writer
// concurrency is unbounded by default (MCS arbitration); pass
// WithBoundedWriters(n) to cap concurrent write attempts at n.
func NewMWRP(opts ...Option) *MWRP {
	o := applyOptions(opts)
	l := &MWRP{m: newWriterMutex(o)}
	l.core.init(o.strategy)
	if c, ok := l.m.(*combiner); ok {
		c.passage = l.core.writePassage // see NewMWSF
	}
	return l
}

// Lock acquires the lock in write mode.
func (l *MWRP) Lock() WToken {
	slot := l.m.acquire()
	t := l.core.writerLock()
	t.slot = slot
	return t
}

// Unlock releases write mode.
func (l *MWRP) Unlock(t WToken) {
	l.core.writerUnlock(t)
	l.m.release(t.slot)
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// On a combining lock cs is published and batched, each record run
// inside the full Figure 2 write passage; see MWSF.Write.
func (l *MWRP) Write(cs func()) {
	if c, ok := l.m.(*combiner); ok {
		c.exec(cs)
		return
	}
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// CombinerStats reports the batching statistics when the lock was
// built with WithCombiningWriters (see CombinerStatsOf).
func (l *MWRP) CombinerStats() (CombinerStats, bool) {
	if c, ok := l.m.(*combiner); ok {
		return c.snapshot(), true
	}
	return CombinerStats{}, false
}

// RLock acquires the lock in read mode.
func (l *MWRP) RLock() RToken { return l.core.readerLock() }

// RUnlock releases read mode.
func (l *MWRP) RUnlock(t RToken) { l.core.readerUnlock(t) }

var _ RWLock = (*MWRP)(nil)
var _ FuncWriter = (*MWRP)(nil)

// MWWP is the multi-writer multi-reader WRITER-PRIORITY lock of
// Theorem 5 (the paper's Figure 4): properties P1-P6 plus WP1/WP2,
// with O(1) RMR complexity.  Readers may starve while writers keep
// arriving.
type MWWP struct {
	core   swwpCore
	wcount atomic.Int64
	_      [56]byte
	wtoken atomic.Int64 // PID (>=0) ∪ {tokenFalse} ∪ side tokens
	_      [56]byte
	idCtr  atomic.Int64
	_      [56]byte
	m      writerMutex
}

// NewMWWP returns a writer-priority reader-writer lock.  Writer
// concurrency is unbounded by default (MCS arbitration); pass
// WithBoundedWriters(n) to cap concurrent write attempts at n.
func NewMWWP(opts ...Option) *MWWP {
	o := applyOptions(opts)
	l := &MWWP{m: newWriterMutex(o)}
	l.core.init(o.strategy)
	// W-token starts as the side token for side 1 so the first writer
	// behaves exactly like the first SWWP attempt (D: 0 -> 1).
	l.wtoken.Store(tokenSide(1))
	if c, ok := l.m.(*combiner); ok {
		c.passage = l.combinedPassage // see NewMWSF
	}
	return l
}

// doorway is Figure 4 lines 2-8: the wait-free announcement every
// writer — token-path or combining — performs before queueing on (or
// publishing to) the arbitration mutex M.
func (l *MWWP) doorway() {
	l.wcount.Add(1)      // line 2
	t := l.wtoken.Load() // line 3
	if t >= 0 {          // line 4: t is a pid
		l.wtoken.CompareAndSwap(t, tokenFalse) // line 5
	}
	t = l.wtoken.Load() // line 6
	if isSideToken(t) { // line 7
		l.core.d.Store(int32(sideOfToken(t))) // line 8: SWWP doorway
	}
}

// Lock acquires the lock in write mode (Figure 4 lines 2-13).
func (l *MWWP) Lock() WToken {
	id := l.idCtr.Add(1)
	l.doorway()            // lines 2-8
	slot := l.m.acquire()  // line 9
	cur := l.core.d.Load() // line 10
	prev := 1 - cur
	if isSideToken(l.wtoken.Load()) { // line 11
		// line 12: wait for the previous writer to finish exiting the
		// SWWP core (it may have won the CAS at line 19 but not yet
		// reopened the gate at line 20; writerExit's storeWake is the
		// matching signal).
		l.core.gate[prev].wait(cellTrue)
		l.core.writerWaitingRoom(prev) // line 13
	}
	return WToken{prev: prev, cur: cur, slot: slot, id: id}
}

// Unlock releases write mode (Figure 4 lines 15-20).
func (l *MWWP) Unlock(t WToken) {
	l.wtoken.Store(t.id)      // line 15
	l.wcount.Add(-1)          // line 16
	l.m.release(t.slot)       // line 17
	if l.wcount.Load() == 0 { // line 18
		if l.wtoken.CompareAndSwap(t.id, tokenSide(t.prev)) { // line 19
			l.core.writerExit(t.cur) // line 20
		}
	}
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// On a combining lock the Figure 4 passage is split around the
// arbitration mutex M exactly where Lock/Unlock are: the doorway
// (lines 2-8) runs on the calling goroutine before publication, and
// the combiner — holding M in place of line 9's acquire — runs
// combinedPassage (lines 10-20) once per record.
func (l *MWWP) Write(cs func()) {
	c, ok := l.m.(*combiner)
	if !ok {
		t := l.Lock()
		defer l.Unlock(t)
		cs()
		return
	}
	l.doorway() // lines 2-8, before publication
	c.exec(cs)
}

// combinedPassage is the combiner-side half of a combined Figure 4
// write: M is held for the whole batch (lines 9/17), the submitter
// already ran the doorway, and this runs lines 10-13, cs, and lines
// 15-16 for one record.  The attempt pid is drawn here rather than at
// the doorway — it is unused before line 15, and drawing it inside
// the passage keeps the published record closure-free.  The
// last-writer exit check (lines 18-20) also runs per record, with M
// still held rather than after line 17's release; that narrows but
// does not change the race the line-19 CAS already arbitrates — a
// writer arriving after the check handles both outcomes (pid → fast
// handoff, side token → doorway + waiting room), exactly as in the
// unbatched algorithm.  Mid-batch records see wcount > 0 (their
// publishers counted in at line 2 before publishing, which precedes
// the combiner's drain), so the gate stays closed across a batch —
// the writer-priority batching.
func (l *MWWP) combinedPassage(cs func()) {
	id := l.idCtr.Add(1)
	cur := l.core.d.Load() // line 10
	prev := 1 - cur
	if isSideToken(l.wtoken.Load()) { // line 11
		l.core.gate[prev].wait(cellTrue) // line 12
		l.core.writerWaitingRoom(prev)   // line 13
	}
	cs()
	l.wtoken.Store(id)        // line 15
	l.wcount.Add(-1)          // line 16
	if l.wcount.Load() == 0 { // line 18
		if l.wtoken.CompareAndSwap(id, tokenSide(prev)) { // line 19
			l.core.writerExit(cur) // line 20
		}
	}
}

// CombinerStats reports the batching statistics when the lock was
// built with WithCombiningWriters (see CombinerStatsOf).
func (l *MWWP) CombinerStats() (CombinerStats, bool) {
	if c, ok := l.m.(*combiner); ok {
		return c.snapshot(), true
	}
	return CombinerStats{}, false
}

// RLock acquires the lock in read mode (the unchanged SWWP reader).
func (l *MWWP) RLock() RToken { return l.core.readerLock() }

// RUnlock releases read mode.
func (l *MWWP) RUnlock(t RToken) { l.core.readerUnlock(t) }

var _ RWLock = (*MWWP)(nil)
var _ FuncWriter = (*MWWP)(nil)
