package rwlock

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file provides the baselines the paper's locks are benchmarked
// against in EXPERIMENTS.md:
//
//   - CentralizedRW: the folklore one-word counter reader-writer spin
//     lock.  Simple and fast uncontended, but every waiter waits on
//     the same word, so its RMR traffic grows with the number of
//     processes — the gap the paper closes.
//   - PhaseFairRW: a ticket-based phase-fair reader-writer lock in
//     the style of Brandenburg & Anderson (ECRTS 2009, the paper's
//     [26]): writers are FIFO, and readers that arrive while a writer
//     waits are admitted after exactly one writer phase.
//   - RWMutexLock: the Go standard library's sync.RWMutex behind the
//     package's token interface (tokens are ignored).
//
// All waiting goes through waitCells, so the baselines honor the same
// WaitStrategy options as the paper's locks — the oversubscription
// experiments compare like with like.
type noCopy struct{}

// Lock and Unlock make noCopy trip `go vet -copylocks`.
func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// CentralizedRW is the classical counter-based reader-writer spin
// lock: readers fetch&add a reader unit and back off if a writer is
// present; writers fetch&add a writer unit, then drain readers.
// Mutual exclusion holds, but there is no FCFS/FIFE and no RMR bound:
// all waiting is on one global word.
type CentralizedRW struct {
	_   noCopy
	cnt waitCell // writer count at bit 32+, reader count below
}

// NewCentralizedRW returns a ready centralized lock.
func NewCentralizedRW(opts ...Option) *CentralizedRW {
	l := &CentralizedRW{}
	l.cnt.setStrategy(applyOptions(opts).strategy)
	return l
}

// noReaders/noWriters are the wait conditions of the packed word:
// static predicates, so waitUntil calls allocate nothing.
func noReaders(v int64) bool { return v&(wwBit-1) == 0 }
func noWriters(v int64) bool { return v>>32 == 0 }

// Lock acquires write mode.
func (l *CentralizedRW) Lock() WToken {
	for {
		old := l.cnt.add(wwBit) - wwBit
		if old == 0 {
			return WToken{}
		}
		if old>>32 == 0 {
			// Only readers ahead: drain them.
			l.cnt.waitUntil(noReaders)
			return WToken{}
		}
		// Another writer: back off and retry when it leaves.  The
		// retreat clears our writer unit, which waiting readers watch
		// for, so it must wake.
		l.cnt.addWake(-wwBit)
		l.cnt.waitUntil(noWriters)
	}
}

// Unlock releases write mode.
func (l *CentralizedRW) Unlock(WToken) { l.cnt.addWake(-wwBit) }

// RLock acquires read mode.
func (l *CentralizedRW) RLock() RToken {
	for {
		old := l.cnt.add(1) - 1
		if old>>32 == 0 {
			return RToken{}
		}
		// A writer is present: retreat (waking the writer draining
		// readers) and wait for a writer-free word.
		l.cnt.addWake(-1)
		l.cnt.waitUntil(noWriters)
	}
}

// RUnlock releases read mode.
func (l *CentralizedRW) RUnlock(RToken) { l.cnt.addWake(-1) }

// TryLock attempts write mode without blocking: one CAS of the free
// word.  The centralized lock is the one discipline whose whole state
// is a single word, so its try is exact — no probe window.
func (l *CentralizedRW) TryLock() (WToken, bool) {
	if l.cnt.cas(0, wwBit) {
		return WToken{}, true
	}
	return WToken{}, false
}

// TryRLock attempts read mode without blocking: register, and retreat
// (waking any draining writer) if a writer was present.
func (l *CentralizedRW) TryRLock() (RToken, bool) {
	if (l.cnt.add(1)-1)>>32 == 0 {
		return RToken{}, true
	}
	l.cnt.addWake(-1)
	return RToken{}, false
}

// LockCtx acquires write mode; every wait is cancellable because
// every step of this lock is reversible — a cancelled drain retreats
// by removing the writer unit (waking the readers watching for it),
// exactly as the back-off path of Lock does.
func (l *CentralizedRW) LockCtx(ctx context.Context) (WToken, error) {
	for {
		old := l.cnt.add(wwBit) - wwBit
		if old == 0 {
			return WToken{}, nil
		}
		if old>>32 == 0 {
			if err := l.cnt.waitUntilCtx(ctx, noReaders); err != nil {
				l.cnt.addWake(-wwBit) // retreat; readers watch noWriters
				return WToken{}, err
			}
			return WToken{}, nil
		}
		l.cnt.addWake(-wwBit)
		if err := l.cnt.waitUntilCtx(ctx, noWriters); err != nil {
			return WToken{}, err
		}
	}
}

// RLockCtx acquires read mode; cancellation can only land in the
// retreated (nothing-held) wait, so the undo is free.
func (l *CentralizedRW) RLockCtx(ctx context.Context) (RToken, error) {
	for {
		if (l.cnt.add(1)-1)>>32 == 0 {
			return RToken{}, nil
		}
		l.cnt.addWake(-1)
		if err := l.cnt.waitUntilCtx(ctx, noWriters); err != nil {
			return RToken{}, err
		}
	}
}

var _ RWLock = (*CentralizedRW)(nil)
var _ TryRWLock = (*CentralizedRW)(nil)
var _ CtxRWLock = (*CentralizedRW)(nil)

// PhaseFairRW is a phase-fair ticket reader-writer lock: writers take
// FIFO tickets; a writer publishes its presence (and phase parity) in
// the low bits of rin and waits for the readers that arrived before
// it; readers that see a writer present wait only until the writer
// bits CHANGE — i.e. they are admitted at the next phase boundary,
// after at most one writer, regardless of how many writers are queued.
type PhaseFairRW struct {
	_    noCopy
	rin  waitCell     // readers-in << 8 | writer presence/phase bits
	rout waitCell     // readers-out << 8
	win  atomic.Int64 // writer ticket dispenser (never waited on)
	_    [56]byte
	wout waitCell // writer tickets served
}

const (
	pfReader = int64(0x100) // one reader unit in rin/rout
	pfPres   = int64(0x2)   // writer-present bit
	pfPhase  = int64(0x1)   // writer phase parity bit
	pfWBits  = pfPres | pfPhase
)

// NewPhaseFairRW returns a ready phase-fair lock.
func NewPhaseFairRW(opts ...Option) *PhaseFairRW {
	l := &PhaseFairRW{}
	s := applyOptions(opts).strategy
	l.rin.setStrategy(s)
	l.rout.setStrategy(s)
	l.wout.setStrategy(s)
	return l
}

// Lock acquires write mode.
func (l *PhaseFairRW) Lock() WToken {
	t := l.win.Add(1) - 1
	l.wout.wait(t) // writers FIFO
	w := pfPres | (t & pfPhase)
	entered := l.rin.add(w) - w // readers that arrived before me
	l.rout.wait(entered &^ pfWBits)
	return WToken{id: w}
}

// Unlock releases write mode.
func (l *PhaseFairRW) Unlock(t WToken) {
	// Clear the writer bits first so waiting readers see the phase
	// change, then admit the next writer; both are wake sites (a
	// parked reader watches rin's low bits, the next writer wout).
	l.rin.addWake(-t.id)
	l.wout.addWake(1)
}

// RLock acquires read mode.
func (l *PhaseFairRW) RLock() RToken {
	w := (l.rin.add(pfReader) - pfReader) & pfWBits
	if w != 0 {
		// A writer holds or awaits the lock: wait for the next phase
		// boundary (the writer bits changing), after which we hold a
		// counted reservation the next writer will wait for.
		l.rin.waitUntil(func(v int64) bool { return v&pfWBits != w })
	}
	return RToken{}
}

// RUnlock releases read mode.
func (l *PhaseFairRW) RUnlock(RToken) { l.rout.addWake(pfReader) }

// TryLock attempts write mode without blocking.  The head-of-queue
// probe (wout == win) plus the ticket CAS stands in for the FIFO
// wait; a reader found inside after the writer bits are up is undone
// by a zero-length writer passage — clearing the bits and advancing
// wout exactly as Unlock would, which is consistent because no
// successor ticket can exist (the CAS admitted only us).
func (l *PhaseFairRW) TryLock() (WToken, bool) {
	t := l.win.Load()
	if l.wout.load() != t || !l.win.CompareAndSwap(t, t+1) {
		return WToken{}, false // writer held/queued, or lost the claim
	}
	w := pfPres | (t & pfPhase)
	entered := l.rin.add(w) - w
	if l.rout.load() != entered&^pfWBits {
		// Readers inside: undo via a zero-length writer passage.
		l.rin.addWake(-w)
		l.wout.addWake(1)
		return WToken{}, false
	}
	return WToken{id: w}, true
}

// TryRLock attempts read mode without blocking; failure retires
// through a zero-length read passage (count out through rout), which
// the writer draining rin-before-me readers accounts exactly.
func (l *PhaseFairRW) TryRLock() (RToken, bool) {
	if (l.rin.add(pfReader)-pfReader)&pfWBits != 0 {
		l.rout.addWake(pfReader)
		return RToken{}, false
	}
	return RToken{}, true
}

// LockCtx acquires write mode.  The ticket fetch&add is the point of
// no return for the FIFO wait — a ticket cannot be returned without
// stranding every later ticket, the classic limitation of ticket
// locks — so cancellation wins before the ticket, or during the
// reader drain at the queue head (undone by a zero-length writer
// passage, as in TryLock), but not in the FIFO queue between them.
func (l *PhaseFairRW) LockCtx(ctx context.Context) (WToken, error) {
	if err := ctx.Err(); err != nil {
		return WToken{}, err
	}
	t := l.win.Add(1) - 1 // ticket: the queue wait is now committed
	l.wout.wait(t)
	w := pfPres | (t & pfPhase)
	entered := l.rin.add(w) - w
	if err := l.rout.waitCtx(ctx, entered&^pfWBits); err != nil {
		l.rin.addWake(-w) // zero-length writer passage, as in TryLock
		l.wout.addWake(1)
		return WToken{}, err
	}
	return WToken{id: w}, nil
}

// RLockCtx acquires read mode; a reader cancelled at the phase
// boundary retires through a zero-length read passage.
func (l *PhaseFairRW) RLockCtx(ctx context.Context) (RToken, error) {
	w := (l.rin.add(pfReader) - pfReader) & pfWBits
	if w != 0 {
		err := l.rin.waitUntilCtx(ctx, func(v int64) bool { return v&pfWBits != w })
		if err != nil {
			l.rout.addWake(pfReader)
			return RToken{}, err
		}
	}
	return RToken{}, nil
}

var _ RWLock = (*PhaseFairRW)(nil)
var _ TryRWLock = (*PhaseFairRW)(nil)
var _ CtxRWLock = (*PhaseFairRW)(nil)

// TaskFairRW is a task-fair ticket reader-writer lock in the style of
// Krieger, Stumm, Unrau & Hanna (ICPP 1993, the paper's [25]):
// readers and writers are served in strict arrival order and
// consecutive readers share the CS.  Strong fairness, but it does NOT
// satisfy concurrent entering: a reader stalled at the queue head
// blocks every later reader even when no writer exists — the defect
// the paper's algorithms avoid (see the task-fair tests in
// internal/core for the directed counterexample).
type TaskFairRW struct {
	_       noCopy
	tail    atomic.Int64 // ticket dispenser (never waited on)
	_       [56]byte
	serving waitCell
	readers waitCell
}

// NewTaskFairRW returns a ready task-fair lock.
func NewTaskFairRW(opts ...Option) *TaskFairRW {
	l := &TaskFairRW{}
	s := applyOptions(opts).strategy
	l.serving.setStrategy(s)
	l.readers.setStrategy(s)
	return l
}

// Lock acquires write mode.
func (l *TaskFairRW) Lock() WToken {
	t := l.tail.Add(1) - 1
	l.serving.wait(t)
	l.readers.wait(0)
	return WToken{}
}

// Unlock releases write mode, handing the queue head onward.
func (l *TaskFairRW) Unlock(WToken) { l.serving.addWake(1) }

// RLock acquires read mode.
func (l *TaskFairRW) RLock() RToken {
	t := l.tail.Add(1) - 1
	l.serving.wait(t)
	l.readers.add(1) // register before releasing the head
	l.serving.addWake(1)
	return RToken{}
}

// RUnlock releases read mode (waking a writer draining readers).
func (l *TaskFairRW) RUnlock(RToken) { l.readers.addWake(-1) }

// TryLock attempts write mode without blocking: it claims a ticket
// only when the queue is empty at the head (serving == tail) AND no
// reader shares the CS.  Both Lock waits are then already satisfied —
// serving is ours by the CAS, and no reader can register without a
// later ticket, which queues behind us.
func (l *TaskFairRW) TryLock() (WToken, bool) {
	t := l.tail.Load()
	if l.serving.load() != t || l.readers.load() != 0 {
		return WToken{}, false
	}
	if !l.tail.CompareAndSwap(t, t+1) {
		return WToken{}, false
	}
	return WToken{}, true
}

// TryRLock attempts read mode without blocking: the same
// empty-at-head claim (readers inside are fine — they share), then
// the ordinary register-and-release-the-head tail of RLock.
func (l *TaskFairRW) TryRLock() (RToken, bool) {
	t := l.tail.Load()
	if l.serving.load() != t || !l.tail.CompareAndSwap(t, t+1) {
		return RToken{}, false
	}
	l.readers.add(1)
	l.serving.addWake(1)
	return RToken{}, true
}

// LockCtx acquires write mode; the ticket fetch&add is the point of
// no return — strict arrival order means an abandoned ticket would
// strand every later arrival, reader or writer, so cancellation wins
// only before the ticket.  (The task-fair queue is the least
// abortable discipline here; prefer MWSF's MCS arbitration when
// deadline writers matter.)
func (l *TaskFairRW) LockCtx(ctx context.Context) (WToken, error) {
	if err := ctx.Err(); err != nil {
		return WToken{}, err
	}
	return l.Lock(), nil // ticket = point of no return
}

// RLockCtx acquires read mode; the same ticket commitment as LockCtx
// applies — strict task-fairness makes a queued reader unabortable.
func (l *TaskFairRW) RLockCtx(ctx context.Context) (RToken, error) {
	if err := ctx.Err(); err != nil {
		return RToken{}, err
	}
	return l.RLock(), nil // ticket = point of no return
}

var _ RWLock = (*TaskFairRW)(nil)
var _ TryRWLock = (*TaskFairRW)(nil)
var _ CtxRWLock = (*TaskFairRW)(nil)

// RWMutexLock adapts sync.RWMutex to the package interface so the
// standard library participates in the same benchmarks and tests.
// Note sync.RWMutex's own discipline: writers block new readers
// (roughly writer-preference for admission, FIFO via the mutex), and
// waiters always park in the runtime — it is the all-park point of
// comparison for the WaitStrategy experiments.
type RWMutexLock struct {
	mu sync.RWMutex
}

// NewRWMutexLock returns a ready adapter.
func NewRWMutexLock() *RWMutexLock { return &RWMutexLock{} }

// Lock acquires write mode.
func (l *RWMutexLock) Lock() WToken {
	l.mu.Lock()
	return WToken{}
}

// Unlock releases write mode.
func (l *RWMutexLock) Unlock(WToken) { l.mu.Unlock() }

// RLock acquires read mode.
func (l *RWMutexLock) RLock() RToken {
	l.mu.RLock()
	return RToken{}
}

// RUnlock releases read mode.
func (l *RWMutexLock) RUnlock(RToken) { l.mu.RUnlock() }

// TryLock attempts write mode without blocking (sync.RWMutex.TryLock).
func (l *RWMutexLock) TryLock() (WToken, bool) {
	return WToken{}, l.mu.TryLock()
}

// TryRLock attempts read mode without blocking
// (sync.RWMutex.TryRLock).
func (l *RWMutexLock) TryRLock() (RToken, bool) {
	return RToken{}, l.mu.TryRLock()
}

// LockCtx acquires write mode by polling TryLock until it succeeds or
// ctx is cancelled.  sync.RWMutex has no cancellable blocking wait,
// so this adapter trades the runtime's queue fairness for
// cancellability: a poller can be overtaken indefinitely by direct
// Lock callers.  It exists so the standard library participates in
// the deadline benchmarks; production deadline writers should use the
// package's own locks, whose queues abort cleanly.
func (l *RWMutexLock) LockCtx(ctx context.Context) (WToken, error) {
	for {
		if l.mu.TryLock() {
			return WToken{}, nil
		}
		if err := ctx.Err(); err != nil {
			return WToken{}, err
		}
		runtime.Gosched()
	}
}

// RLockCtx acquires read mode by polling TryRLock; the same fairness
// caveat as LockCtx applies.
func (l *RWMutexLock) RLockCtx(ctx context.Context) (RToken, error) {
	for {
		if l.mu.TryRLock() {
			return RToken{}, nil
		}
		if err := ctx.Err(); err != nil {
			return RToken{}, err
		}
		runtime.Gosched()
	}
}

var _ RWLock = (*RWMutexLock)(nil)
var _ TryRWLock = (*RWMutexLock)(nil)
var _ CtxRWLock = (*RWMutexLock)(nil)
