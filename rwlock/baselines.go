package rwlock

import (
	"sync"
	"sync/atomic"
)

// This file provides the baselines the paper's locks are benchmarked
// against in EXPERIMENTS.md:
//
//   - CentralizedRW: the folklore one-word counter reader-writer spin
//     lock.  Simple and fast uncontended, but every waiter waits on
//     the same word, so its RMR traffic grows with the number of
//     processes — the gap the paper closes.
//   - PhaseFairRW: a ticket-based phase-fair reader-writer lock in
//     the style of Brandenburg & Anderson (ECRTS 2009, the paper's
//     [26]): writers are FIFO, and readers that arrive while a writer
//     waits are admitted after exactly one writer phase.
//   - RWMutexLock: the Go standard library's sync.RWMutex behind the
//     package's token interface (tokens are ignored).
//
// All waiting goes through waitCells, so the baselines honor the same
// WaitStrategy options as the paper's locks — the oversubscription
// experiments compare like with like.
type noCopy struct{}

// Lock and Unlock make noCopy trip `go vet -copylocks`.
func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// CentralizedRW is the classical counter-based reader-writer spin
// lock: readers fetch&add a reader unit and back off if a writer is
// present; writers fetch&add a writer unit, then drain readers.
// Mutual exclusion holds, but there is no FCFS/FIFE and no RMR bound:
// all waiting is on one global word.
type CentralizedRW struct {
	_   noCopy
	cnt waitCell // writer count at bit 32+, reader count below
}

// NewCentralizedRW returns a ready centralized lock.
func NewCentralizedRW(opts ...Option) *CentralizedRW {
	l := &CentralizedRW{}
	l.cnt.setStrategy(applyOptions(opts).strategy)
	return l
}

// noReaders/noWriters are the wait conditions of the packed word:
// static predicates, so waitUntil calls allocate nothing.
func noReaders(v int64) bool { return v&(wwBit-1) == 0 }
func noWriters(v int64) bool { return v>>32 == 0 }

// Lock acquires write mode.
func (l *CentralizedRW) Lock() WToken {
	for {
		old := l.cnt.add(wwBit) - wwBit
		if old == 0 {
			return WToken{}
		}
		if old>>32 == 0 {
			// Only readers ahead: drain them.
			l.cnt.waitUntil(noReaders)
			return WToken{}
		}
		// Another writer: back off and retry when it leaves.  The
		// retreat clears our writer unit, which waiting readers watch
		// for, so it must wake.
		l.cnt.addWake(-wwBit)
		l.cnt.waitUntil(noWriters)
	}
}

// Unlock releases write mode.
func (l *CentralizedRW) Unlock(WToken) { l.cnt.addWake(-wwBit) }

// RLock acquires read mode.
func (l *CentralizedRW) RLock() RToken {
	for {
		old := l.cnt.add(1) - 1
		if old>>32 == 0 {
			return RToken{}
		}
		// A writer is present: retreat (waking the writer draining
		// readers) and wait for a writer-free word.
		l.cnt.addWake(-1)
		l.cnt.waitUntil(noWriters)
	}
}

// RUnlock releases read mode.
func (l *CentralizedRW) RUnlock(RToken) { l.cnt.addWake(-1) }

var _ RWLock = (*CentralizedRW)(nil)

// PhaseFairRW is a phase-fair ticket reader-writer lock: writers take
// FIFO tickets; a writer publishes its presence (and phase parity) in
// the low bits of rin and waits for the readers that arrived before
// it; readers that see a writer present wait only until the writer
// bits CHANGE — i.e. they are admitted at the next phase boundary,
// after at most one writer, regardless of how many writers are queued.
type PhaseFairRW struct {
	_    noCopy
	rin  waitCell     // readers-in << 8 | writer presence/phase bits
	rout waitCell     // readers-out << 8
	win  atomic.Int64 // writer ticket dispenser (never waited on)
	_    [56]byte
	wout waitCell // writer tickets served
}

const (
	pfReader = int64(0x100) // one reader unit in rin/rout
	pfPres   = int64(0x2)   // writer-present bit
	pfPhase  = int64(0x1)   // writer phase parity bit
	pfWBits  = pfPres | pfPhase
)

// NewPhaseFairRW returns a ready phase-fair lock.
func NewPhaseFairRW(opts ...Option) *PhaseFairRW {
	l := &PhaseFairRW{}
	s := applyOptions(opts).strategy
	l.rin.setStrategy(s)
	l.rout.setStrategy(s)
	l.wout.setStrategy(s)
	return l
}

// Lock acquires write mode.
func (l *PhaseFairRW) Lock() WToken {
	t := l.win.Add(1) - 1
	l.wout.wait(t) // writers FIFO
	w := pfPres | (t & pfPhase)
	entered := l.rin.add(w) - w // readers that arrived before me
	l.rout.wait(entered &^ pfWBits)
	return WToken{id: w}
}

// Unlock releases write mode.
func (l *PhaseFairRW) Unlock(t WToken) {
	// Clear the writer bits first so waiting readers see the phase
	// change, then admit the next writer; both are wake sites (a
	// parked reader watches rin's low bits, the next writer wout).
	l.rin.addWake(-t.id)
	l.wout.addWake(1)
}

// RLock acquires read mode.
func (l *PhaseFairRW) RLock() RToken {
	w := (l.rin.add(pfReader) - pfReader) & pfWBits
	if w != 0 {
		// A writer holds or awaits the lock: wait for the next phase
		// boundary (the writer bits changing), after which we hold a
		// counted reservation the next writer will wait for.
		l.rin.waitUntil(func(v int64) bool { return v&pfWBits != w })
	}
	return RToken{}
}

// RUnlock releases read mode.
func (l *PhaseFairRW) RUnlock(RToken) { l.rout.addWake(pfReader) }

var _ RWLock = (*PhaseFairRW)(nil)

// TaskFairRW is a task-fair ticket reader-writer lock in the style of
// Krieger, Stumm, Unrau & Hanna (ICPP 1993, the paper's [25]):
// readers and writers are served in strict arrival order and
// consecutive readers share the CS.  Strong fairness, but it does NOT
// satisfy concurrent entering: a reader stalled at the queue head
// blocks every later reader even when no writer exists — the defect
// the paper's algorithms avoid (see the task-fair tests in
// internal/core for the directed counterexample).
type TaskFairRW struct {
	_       noCopy
	tail    atomic.Int64 // ticket dispenser (never waited on)
	_       [56]byte
	serving waitCell
	readers waitCell
}

// NewTaskFairRW returns a ready task-fair lock.
func NewTaskFairRW(opts ...Option) *TaskFairRW {
	l := &TaskFairRW{}
	s := applyOptions(opts).strategy
	l.serving.setStrategy(s)
	l.readers.setStrategy(s)
	return l
}

// Lock acquires write mode.
func (l *TaskFairRW) Lock() WToken {
	t := l.tail.Add(1) - 1
	l.serving.wait(t)
	l.readers.wait(0)
	return WToken{}
}

// Unlock releases write mode, handing the queue head onward.
func (l *TaskFairRW) Unlock(WToken) { l.serving.addWake(1) }

// RLock acquires read mode.
func (l *TaskFairRW) RLock() RToken {
	t := l.tail.Add(1) - 1
	l.serving.wait(t)
	l.readers.add(1) // register before releasing the head
	l.serving.addWake(1)
	return RToken{}
}

// RUnlock releases read mode (waking a writer draining readers).
func (l *TaskFairRW) RUnlock(RToken) { l.readers.addWake(-1) }

var _ RWLock = (*TaskFairRW)(nil)

// RWMutexLock adapts sync.RWMutex to the package interface so the
// standard library participates in the same benchmarks and tests.
// Note sync.RWMutex's own discipline: writers block new readers
// (roughly writer-preference for admission, FIFO via the mutex), and
// waiters always park in the runtime — it is the all-park point of
// comparison for the WaitStrategy experiments.
type RWMutexLock struct {
	mu sync.RWMutex
}

// NewRWMutexLock returns a ready adapter.
func NewRWMutexLock() *RWMutexLock { return &RWMutexLock{} }

// Lock acquires write mode.
func (l *RWMutexLock) Lock() WToken {
	l.mu.Lock()
	return WToken{}
}

// Unlock releases write mode.
func (l *RWMutexLock) Unlock(WToken) { l.mu.Unlock() }

// RLock acquires read mode.
func (l *RWMutexLock) RLock() RToken {
	l.mu.RLock()
	return RToken{}
}

// RUnlock releases read mode.
func (l *RWMutexLock) RUnlock(RToken) { l.mu.RUnlock() }

var _ RWLock = (*RWMutexLock)(nil)
