package rwlock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// locks returns one instance of every lock in the package, keyed by
// name, waiting with the given strategy (RWMutexLock has no strategy;
// sync.RWMutex always parks).  The multi-writer locks appear twice:
// with the default unbounded MCS writer arbitration and, under a
// "/bounded" suffix, with the Anderson-array arbitration capped at 4
// concurrent writers — so every suite that iterates locks() covers
// both sides of the arbitration layer.
func locks(opts ...Option) map[string]RWLock {
	bounded := func(extra Option) []Option {
		return append(append([]Option{}, opts...), extra)
	}
	b := WithBoundedWriters(4)
	return map[string]RWLock{
		"MWSF":                NewMWSF(opts...),
		"MWRP":                NewMWRP(opts...),
		"MWWP":                NewMWWP(opts...),
		"MWSF/bounded":        NewMWSF(bounded(b)...),
		"MWRP/bounded":        NewMWRP(bounded(b)...),
		"MWWP/bounded":        NewMWWP(bounded(b)...),
		"CentralizedRW":       NewCentralizedRW(opts...),
		"PhaseFairRW":         NewPhaseFairRW(opts...),
		"TaskFairRW":          NewTaskFairRW(opts...),
		"RWMutexLock":         NewRWMutexLock(),
		"Bravo(MWSF)":         NewBravoMWSF(opts...),
		"Bravo(MWRP)":         NewBravoMWRP(opts...),
		"Bravo(MWWP)":         NewBravoMWWP(opts...),
		"Bravo(MWSF)/bounded": NewBravoMWSF(bounded(b)...),
		"Epoch(MWSF)":         NewEpochMWSF(opts...),
		"Epoch(MWRP)":         NewEpochMWRP(opts...),
		"Epoch(MWWP)":         NewEpochMWWP(opts...),
		"Epoch(MWSF)/bounded": NewEpochMWSF(bounded(b)...),
		"Epoch(MWSF)/combine": NewEpochMWSF(bounded(WithCombiningWriters())...),
	}
}

// singleWriterLocks returns the single-writer cores.
func singleWriterLocks(opts ...Option) map[string]RWLock {
	return map[string]RWLock{
		"SWWP": NewSWWP(opts...),
		"SWRP": NewSWRP(opts...),
	}
}

// hammer drives writers and readers through the lock.  Inside the CS,
// writers mutate a plain (non-atomic) integer through a temporarily
// odd state; readers verify they only ever observe even values.  Under
// `go test -race` this additionally lets the race detector prove
// exclusion: any reader/writer CS overlap is a detected data race.
func hammer(t *testing.T, l RWLock, writers, readers, iters int) {
	t.Helper()
	var data int64 // deliberately plain, guarded only by l
	var wg sync.WaitGroup
	fail := make(chan string, 1)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tok := l.Lock()
				data++ // odd: readers must never see this
				data++
				l.Unlock(tok)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tok := l.RLock()
				if v := data; v%2 != 0 {
					select {
					case fail <- "reader observed writer mid-update":
					default:
					}
				}
				l.RUnlock(tok)
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if want := int64(2 * writers * iters); data != want {
		t.Fatalf("data = %d, want %d (lost writer updates)", data, want)
	}
}

func TestMutualExclusionAllLocks(t *testing.T) {
	const iters = 2000
	for _, strat := range strategies() {
		opt := WithWaitStrategy(strat)
		for name, l := range locks(opt) {
			l := l
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()
				hammer(t, l, 4, 4, iters)
			})
		}
		for name, l := range singleWriterLocks(opt) {
			l := l
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()
				hammer(t, l, 1, 6, iters)
			})
		}
	}
}

func TestReadersRunConcurrently(t *testing.T) {
	// Concurrent entering (P5): with no writer around, n readers must
	// all be able to sit in the CS at the same time without anyone
	// releasing.  A WaitGroup-style barrier inside the CS deadlocks
	// unless all readers are admitted simultaneously.
	for name, l := range map[string]RWLock{
		"SWWP": NewSWWP(), "SWRP": NewSWRP(),
		"MWSF": NewMWSF(), "MWRP": NewMWRP(), "MWWP": NewMWWP(),
		"MWSF/bounded": NewMWSF(WithBoundedWriters(2)),
		"PhaseFairRW":  NewPhaseFairRW(),
		"Bravo(MWSF)":  NewBravoMWSF(), "Bravo(MWWP)": NewBravoMWWP(),
	} {
		l := l
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const n = 8
			var inside atomic.Int32
			release := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					tok := l.RLock()
					inside.Add(1)
					<-release // hold the CS until everyone is in
					l.RUnlock(tok)
				}()
			}
			// Wait until all n readers co-occupy the CS.
			for inside.Load() != n {
				// spin; a blocked reader would hang the test (caught
				// by the test timeout)
			}
			close(release)
			wg.Wait()
		})
	}
}

func TestWriterExcludesNewReaders(t *testing.T) {
	for name, l := range locks() {
		l := l
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			wt := l.Lock()
			entered := make(chan struct{})
			go func() {
				rt := l.RLock()
				close(entered)
				l.RUnlock(rt)
			}()
			select {
			case <-entered:
				t.Fatal("reader entered while writer held the lock")
			default:
			}
			l.Unlock(wt)
			<-entered // must now be admitted
		})
	}
}

func TestSingleWriterMisusePanics(t *testing.T) {
	l := NewSWWP()
	tok := l.Lock()
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		l.Lock() // second concurrent writer: must panic
	}()
	if p := <-done; p == nil {
		t.Fatal("expected panic on concurrent Lock of SWWP")
	}
	l.Unlock(tok)

	l2 := NewSWRP()
	tok2 := l2.Lock()
	done2 := make(chan any, 1)
	go func() {
		defer func() { done2 <- recover() }()
		l2.Lock()
	}()
	if p := <-done2; p == nil {
		t.Fatal("expected panic on concurrent Lock of SWRP")
	}
	l2.Unlock(tok2)
}

func TestWriteLockIsExclusiveAmongWriters(t *testing.T) {
	for name, l := range locks() {
		l := l
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var inside atomic.Int32
			var maxSeen atomic.Int32
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						tok := l.Lock()
						if v := inside.Add(1); v > maxSeen.Load() {
							maxSeen.Store(v)
						}
						inside.Add(-1)
						l.Unlock(tok)
					}
				}()
			}
			wg.Wait()
			if maxSeen.Load() > 1 {
				t.Fatalf("saw %d writers in the CS simultaneously", maxSeen.Load())
			}
		})
	}
}

func TestAndersonLockFIFO(t *testing.T) {
	// Tickets fix the service order: with one goroutine acquiring at a
	// time there is nothing to show, so launch n that record their
	// entry order relative to their ticket (slot) order per lap.
	l := NewAnderson(4)
	var wg sync.WaitGroup
	var inside atomic.Int32
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				s := l.Acquire()
				if v := inside.Add(1); v != 1 {
					t.Errorf("anderson admitted %d holders", v)
				}
				inside.Add(-1)
				l.Release(s)
			}
		}()
	}
	wg.Wait()
}

func TestAndersonCapacityBlocksExtraWriters(t *testing.T) {
	l := NewAnderson(1)
	s := l.Acquire()
	acquired := make(chan uint32)
	go func() { acquired <- l.Acquire() }()
	select {
	case <-acquired:
		t.Fatal("second acquire succeeded while held at capacity 1")
	default:
	}
	l.Release(s)
	s2 := <-acquired
	l.Release(s2)
}

func TestAndersonTryAcquire(t *testing.T) {
	// TryAcquire is the non-blocking probe of both Anderson layers: the
	// admission gate (the channel semaphore OUTSIDE the O(1)-RMR
	// protocol) and the lock itself.
	l := NewAnderson(2)

	s, ok := l.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed on a free lock")
	}
	// Held: a second TryAcquire must fail without blocking (the lock is
	// owned, though the admission gate still has room).
	if _, ok := l.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded while the lock was held")
	}
	// Fill the admission gate: one holder plus one queued acquirer is
	// capacity 2, so the gate itself now rejects.
	queued := make(chan uint32)
	go func() { queued <- l.Acquire() }()
	for len(l.sem) != cap(l.sem) { // wait for the acquirer to pass the gate
		runtime.Gosched()
	}
	if _, ok := l.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded with the admission gate full")
	}
	l.Release(s)
	s2 := <-queued
	// One admission slot is free again but the lock is held by the
	// queued acquirer: still a clean non-blocking failure.
	if _, ok := l.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded while the lock was held by a successor")
	}
	l.Release(s2)
	// Free again: TryAcquire must succeed, and FCFS Acquire after it
	// must still work (the probe uses a real ticket).
	s3, ok := l.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed after full release")
	}
	l.Release(s3)
	s4 := l.Acquire()
	l.Release(s4)
}

func TestTokensAreTransferable(t *testing.T) {
	// Tokens are plain values: a lock acquired on one goroutine may be
	// released on another (unlike sync.RWMutex.Lock documented rules,
	// this is explicitly supported).
	l := NewMWSF()
	tokCh := make(chan WToken)
	go func() { tokCh <- l.Lock() }()
	tok := <-tokCh
	l.Unlock(tok) // released on a different goroutine
	rt := l.RLock()
	l.RUnlock(rt)
}

func TestManyReadersOneWriterProgress(t *testing.T) {
	// Starvation-freedom smoke test for the no-priority lock: a writer
	// must complete a fixed number of attempts while 8 readers hammer.
	l := NewMWSF()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tok := l.RLock()
				l.RUnlock(tok)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		tok := l.Lock()
		l.Unlock(tok)
	}
	close(stop)
	wg.Wait()
}
