package rwlock

import (
	"sync/atomic"
	"testing"
	"time"
)

// These tests exercise the locks' internal semantics (they live in the
// package so they may drive the cores step by step), pinning the
// paper's behavioural claims on the NATIVE implementations.  Each
// core-level test runs under BOTH wait strategies: the blocked-then-
// released choreography is exactly where a retrofitted parking layer
// would lose a wakeup, so running the same scripts over SpinThenPark
// is the lost-wakeup regression net.

// strategies lists every wait strategy for test parameterization.
func strategies() []WaitStrategy { return []WaitStrategy{SpinYield, SpinThenPark} }

// TestSWWPCoreGateSemantics: after the writer's doorway (D toggled),
// the gate of the new side is closed, so a reader arriving now blocks
// until the writer's exit — the writer-priority mechanism (WP1).
func TestSWWPCoreGateSemantics(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c swwpCore
			c.init(strat, nil)

			prev, cur := c.writerDoorway()
			if prev != 0 || cur != 1 {
				t.Fatalf("first doorway: prev=%d cur=%d, want 0,1", prev, cur)
			}
			if c.gate[cur].load() != cellFalse {
				t.Fatal("gate of the writer's new side must be closed after the doorway")
			}

			entered := make(chan RToken)
			go func() { entered <- c.readerLock() }()
			select {
			case <-entered:
				t.Fatal("reader passed the closed gate")
			case <-time.After(10 * time.Millisecond):
			}

			c.writerWaitingRoom(prev) // no readers on the previous side: immediate
			c.writerExit(cur)
			select {
			case tok := <-entered: // the exit released (and woke) the reader
				c.readerUnlock(tok)
			case <-time.After(2 * time.Second):
				t.Fatal("reader not released by the writer's exit")
			}
		})
	}
}

// TestSWWPCoreLastReaderWakesWriter: with readers registered on the
// previous side, the writer blocks in its waiting room until the LAST
// reader of that side leaves — and only that reader writes the permit
// word (the O(1)-RMR handoff).
func TestSWWPCoreLastReaderWakesWriter(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c swwpCore
			c.init(strat, nil)

			// Two readers enter on side 0 (writer idle, gate[0] open).
			t1 := c.readerLock()
			t2 := c.readerLock()
			if t1.side != 0 || t2.side != 0 {
				t.Fatalf("readers on side %d/%d, want 0/0", t1.side, t2.side)
			}

			prev, cur := c.writerDoorway()
			done := make(chan struct{})
			go func() {
				c.writerWaitingRoom(prev)
				close(done)
			}()
			select {
			case <-done:
				t.Fatal("writer passed the waiting room with readers in the CS")
			case <-time.After(10 * time.Millisecond):
			}

			c.readerUnlock(t1) // not the last: the writer must stay blocked
			select {
			case <-done:
				t.Fatal("writer released by a non-last reader")
			case <-time.After(10 * time.Millisecond):
			}

			c.readerUnlock(t2) // last reader of side 0: wakes the writer
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("writer not released by the last reader")
			}
			c.writerExit(cur)
		})
	}
}

// TestSWRPCorePromoteSemantics: Promote only enables the writer when
// the reader count is zero, and goes through the caller's pid.
func TestSWRPCorePromoteSemantics(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c swrpCore
			c.init(strat, nil)

			// A reader registers; the writer's own Promote must NOT set
			// Permit (C != 0).
			rt := c.readerLock()
			c.d.Store(1) // writer doorway equivalent
			c.permit.store(cellFalse)
			c.promote(c.newID())
			if c.permit.load() != cellFalse {
				t.Fatal("Promote granted the writer with a reader registered")
			}

			// The exiting reader's Promote (inside readerUnlock) finds C == 0
			// and hands over: X becomes true and Permit is set.
			c.readerUnlock(rt)
			if c.permit.load() != cellTrue {
				t.Fatal("last reader's Promote did not wake the writer")
			}
			if c.x.Load() != xTrue {
				t.Fatalf("X = %d, want true sentinel", c.x.Load())
			}
		})
	}
}

// TestSWRPReadersBypassWaitingWriter: reader priority in action — a
// reader arriving while the writer WAITS (X != true yet) sails into
// the CS; the writer stays blocked (RP1).
func TestSWRPReadersBypassWaitingWriter(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			l := NewSWRP(WithWaitStrategy(strat))
			rt0 := l.RLock() // pin a reader so the writer cannot be promoted

			locked := make(chan WToken)
			go func() { locked <- l.Lock() }()
			// The writer cannot proceed while rt0 is in the CS.
			select {
			case <-locked:
				t.Fatal("writer entered with a reader in the CS")
			case <-time.After(10 * time.Millisecond):
			}

			// New readers keep entering without waiting.
			for i := 0; i < 3; i++ {
				done := make(chan struct{})
				go func() {
					tok := l.RLock()
					l.RUnlock(tok)
					close(done)
				}()
				select {
				case <-done:
				case <-time.After(2 * time.Second):
					t.Fatal("reader blocked although the CS was read-occupied (RP violated)")
				}
			}

			l.RUnlock(rt0) // last reader out: the writer gets in
			wt := <-locked
			l.Unlock(wt)
		})
	}
}

// TestPhaseFairOnePhaseBound: a reader that arrives during writer A's
// critical section is admitted when A leaves, even if writer B is
// already queued — and B then waits for that reader (phase
// alternation R/W/R/W).
func TestPhaseFairOnePhaseBound(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			l := NewPhaseFairRW(WithWaitStrategy(strat))
			wtA := l.Lock()

			readerIn := make(chan RToken)
			go func() { readerIn <- l.RLock() }()
			// Give the reader time to register its rin increment.
			time.Sleep(5 * time.Millisecond)

			wtBCh := make(chan WToken)
			go func() { wtBCh <- l.Lock() }()
			select {
			case <-wtBCh:
				t.Fatal("writer B entered while A held the lock")
			case <-time.After(10 * time.Millisecond):
			}

			l.Unlock(wtA)
			// The reader must be admitted now (one phase boundary), while
			// writer B keeps waiting for it.
			var rt RToken
			select {
			case rt = <-readerIn:
			case <-time.After(2 * time.Second):
				t.Fatal("reader not admitted at the phase boundary")
			}
			select {
			case <-wtBCh:
				t.Fatal("writer B overtook the phase-boundary reader")
			case <-time.After(10 * time.Millisecond):
			}

			l.RUnlock(rt)
			wtB := <-wtBCh
			l.Unlock(wtB)
		})
	}
}

// TestMWWPTokenHandoff: with a writer queued behind the one in the
// CS, the exiting writer leaves the SWWP core held (W-token = pid),
// and the reader gate stays closed until the LAST writer leaves with
// nobody waiting — Figure 4's mechanism for WP1 across handoffs.
func TestMWWPTokenHandoff(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			l := NewMWWP(WithWaitStrategy(strat))
			wt1 := l.Lock()

			wt2Ch := make(chan WToken)
			go func() { wt2Ch <- l.Lock() }()
			time.Sleep(5 * time.Millisecond) // writer 2 increments Wcount and queues

			readerIn := make(chan RToken)
			go func() { readerIn <- l.RLock() }()
			time.Sleep(5 * time.Millisecond)

			l.Unlock(wt1)
			// Writer 2 must get in next (writer priority), not the reader.
			var wt2 WToken
			select {
			case wt2 = <-wt2Ch:
			case <-time.After(2 * time.Second):
				t.Fatal("queued writer not admitted after handoff")
			}
			select {
			case <-readerIn:
				t.Fatal("reader overtook the queued writer (WP violated)")
			case <-time.After(10 * time.Millisecond):
			}

			l.Unlock(wt2) // last writer out, no writer waiting: readers released
			rt := <-readerIn
			l.RUnlock(rt)
		})
	}
}

// TestCentralizedNoFairness documents (rather than fixes) the
// baseline's weakness: it provides exclusion but no ordering—this
// test only verifies exclusion holds under a writer/reader tug-of-war.
func TestCentralizedNoFairness(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			l := NewCentralizedRW(WithWaitStrategy(strat))
			var inCS atomic.Int32
			stop := make(chan struct{})
			for i := 0; i < 2; i++ {
				go func() {
					for {
						select {
						case <-stop:
							return
						default:
						}
						tok := l.Lock()
						if v := inCS.Add(1); v != 1 {
							t.Errorf("writer saw %d occupants", v)
						}
						inCS.Add(-1)
						l.Unlock(tok)
					}
				}()
			}
			for i := 0; i < 1000; i++ {
				tok := l.RLock()
				l.RUnlock(tok)
			}
			close(stop)
		})
	}
}
