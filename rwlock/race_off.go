//go:build !race

package rwlock

// raceEnabled reports whether the race detector instrumented this
// build; see race_on.go.
const raceEnabled = false
