package rwlock

import (
	"context"
	"sync/atomic"
)

// swrpCore is the shared-variable state and code of the paper's
// Figure 2 single-writer multi-reader reader-priority algorithm.
// SWRP uses it directly; MWRP wraps its writer side in Anderson's
// lock (Figure 3).  Gate and Permit — the variables processes wait on
// — are waitCells; X and C are only read/CAS'd/fetch&added, never
// waited on, so they stay plain atomics.
type swrpCore struct {
	d      atomic.Int32
	_      [60]byte
	gate   [2]waitCell
	x      atomic.Int64 // X in PID ∪ {true}; xTrue encodes true
	_      [56]byte
	permit waitCell
	c      atomic.Int64
	_      [56]byte
	// idCtr issues fresh attempt pids.  The paper only needs pids to
	// be unique among concurrent attempts; monotone fresh ids give
	// that and additionally rule out ABA on X entirely.
	idCtr atomic.Int64
	// stats, when non-nil, receives the read-path counters; write-path
	// counters belong to the wrapping lock.  See WithStats and the
	// matching field on swwpCore.
	stats *LockStats
}

// init sets the paper's initial values — D=0, Gate[0]=true, X = some
// pid (0, smaller than every issued id), Permit=true, C=0 — selects
// the wait strategy of every cell, and installs the stats block.
func (l *swrpCore) init(s WaitStrategy, st *LockStats) {
	l.stats = st
	for i := range l.gate {
		l.gate[i].setStrategy(s)
		l.gate[i].setStats(st)
	}
	l.permit.setStrategy(s)
	l.permit.setStats(st)
	l.gate[0].store(cellTrue)
	l.permit.store(cellTrue)
}

// newID returns a fresh positive attempt pid.
func (l *swrpCore) newID() int64 { return l.idCtr.Add(1) }

// promote is the paper's Promote() (Figure 2 lines 10-16): enable the
// writer iff no readers are registered.  The two-step CAS through the
// caller's own pid is the Section 4.3(B) subtlety: CASing true
// directly breaks mutual exclusion.  The Permit store is the wake
// side of the writer's wait at line 5, so it must signal: an exiting
// reader's Promote may be what releases a parked writer.
func (l *swrpCore) promote(id int64) {
	x := l.x.Load() // line 10
	if x == xTrue { // line 11
		return
	}
	if !l.x.CompareAndSwap(x, id) { // line 12
		return
	}
	if l.permit.load() != cellFalse { // line 13
		return
	}
	if l.c.Load() != 0 { // line 14
		return
	}
	if l.x.CompareAndSwap(id, xTrue) { // line 15
		l.permit.storeWake(cellTrue) // line 16
	}
}

// writerLock is Figure 2 lines 2-5.
func (l *swrpCore) writerLock() WToken {
	id := l.newID()
	cur := 1 - l.d.Load() // line 2
	l.d.Store(cur)
	l.permit.store(cellFalse) // line 3: own reset, nobody waits for false
	l.promote(id)             // line 4
	l.permit.wait(cellTrue)   // line 5
	return WToken{cur: cur, prev: 1 - cur, id: id}
}

// writerUnlock is Figure 2 lines 7-9.
func (l *swrpCore) writerUnlock(t WToken) {
	l.gate[1-t.cur].store(cellFalse)  // line 7: closing, no wake needed
	l.gate[t.cur].storeWake(cellTrue) // line 8: releases queued readers
	l.x.Store(t.id)                   // line 9
}

// writePassage runs one complete Figure 2 write passage on the
// calling goroutine — the closure-path write MWRP's combined batches
// run once per record while the combiner holds the arbitration mutex.
func (l *swrpCore) writePassage(cs func()) {
	t := l.writerLock()
	cs()
	l.writerUnlock(t)
}

// registerReader is Figure 2 lines 18-23: register in C, run the X
// dance, and report whether the writer owns the CS (X == true), i.e.
// whether line 24 would wait at the gate.
func (l *swrpCore) registerReader() (d int32, id int64, mustWait bool) {
	id = l.newID()
	l.c.Add(1)      // line 18
	d = l.d.Load()  // line 19
	x := l.x.Load() // line 20
	if x != xTrue { // line 21
		l.x.CompareAndSwap(x, id) // line 22
	}
	mustWait = l.x.Load() == xTrue // line 23
	return d, id, mustWait
}

// readerLock is Figure 2 lines 18-24.
func (l *swrpCore) readerLock() RToken {
	if st := l.stats; st != nil {
		return l.readerLockStats(st)
	}
	d, id, mustWait := l.registerReader()
	if mustWait {
		l.gate[d].wait(cellTrue) // line 24
	}
	return RToken{side: d, id: id}
}

// readerLockStats is readerLock's instrumented twin (see the swwpCore
// counterpart); mustWait is the algorithm's own contended signal.
func (l *swrpCore) readerLockStats(st *LockStats) RToken {
	var start int64
	sample := st.sampleNow()
	if sample {
		start = nowNanos()
	}
	d, id, mustWait := l.registerReader()
	if mustWait {
		l.gate[d].wait(cellTrue) // line 24
	}
	// Acquires before contended; see the swwpCore twin.
	st.ReadAcquires.Add(1)
	if mustWait {
		st.ReadContended.Add(1)
	}
	if sample {
		st.recordReadWait(nowNanos() - start)
	}
	return RToken{side: d, id: id}
}

// tryReaderLock is the non-blocking readerLock: it fails exactly when
// line 24 would wait (the writer holds or has just been promoted into
// the CS), retiring through the ordinary reader exit — C decrement
// plus Promote, a zero-length read passage that keeps the
// last-reader-promotes-the-writer handoff exact.
func (l *swrpCore) tryReaderLock() (RToken, bool) {
	d, id, mustWait := l.registerReader()
	if mustWait {
		l.readerUnlock(RToken{side: d, id: id})
		if st := l.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return RToken{}, false
	}
	if st := l.stats; st != nil {
		st.ReadAcquires.Add(1)
	}
	return RToken{side: d, id: id}, true
}

// readerLockCtx is readerLock with the gate wait made cancellable; a
// cancelled reader retires through the same zero-length-passage undo
// tryReaderLock uses.
func (l *swrpCore) readerLockCtx(ctx context.Context) (RToken, error) {
	d, id, mustWait := l.registerReader()
	if mustWait {
		if err := l.gate[d].waitCtx(ctx, cellTrue); err != nil {
			l.readerUnlock(RToken{side: d, id: id})
			if st := l.stats; st != nil {
				st.CtxSheds.Add(1)
			}
			return RToken{}, err
		}
	}
	if st := l.stats; st != nil {
		st.ReadAcquires.Add(1)
	}
	return RToken{side: d, id: id}, nil
}

// readerUnlock is Figure 2 lines 26-27.
func (l *swrpCore) readerUnlock(t RToken) {
	l.c.Add(-1)     // line 26
	l.promote(t.id) // line 27
}

// SWRP is the paper's Figure 2: a single-writer multi-reader lock
// with READER PRIORITY (RP1, RP2): a reader that is waiting while the
// CS is read-occupied is always enabled, and a writer never overtakes
// a reader that has higher >rp priority.  The writer may starve while
// readers keep arriving — that is the specified behaviour.  RMR
// complexity is O(1) on cache-coherent machines (Theorem 2).
//
// At most one goroutine may be between Lock and Unlock at a time
// (single-writer contract); a second concurrent Lock panics.  Use
// NewMWRP when multiple writers are possible.
type SWRP struct {
	core       swrpCore
	writerBusy atomic.Bool
}

// NewSWRP returns a ready-to-use single-writer reader-priority lock.
func NewSWRP(opts ...Option) *SWRP {
	o := applyOptions(opts)
	l := &SWRP{}
	l.core.init(o.strategy, o.stats)
	return l
}

// Lock acquires the lock in write mode.  It panics if another write
// attempt is in progress (single-writer contract).
func (l *SWRP) Lock() WToken {
	if !l.writerBusy.CompareAndSwap(false, true) {
		panic("rwlock: concurrent Lock on single-writer SWRP lock (use NewMWRP)")
	}
	t := l.core.writerLock()
	if st := l.core.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return t
}

// Unlock releases write mode.
func (l *SWRP) Unlock(t WToken) {
	l.core.writerUnlock(t)
	if !l.writerBusy.CompareAndSwap(true, false) {
		panic("rwlock: Unlock of unlocked SWRP lock")
	}
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// The single-writer contract applies: a concurrent write attempt
// panics.
func (l *SWRP) Write(cs func()) {
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// TryLock attempts write mode without blocking.  It fails when
// another write attempt is in progress (where Lock would panic —
// single-writer contract) or when any reader is registered (under
// reader priority a writer facing readers may wait unboundedly, so
// "reader present" is the busy condition).  The probe and the commit
// (the line 2 direction toggle) are not atomic: a reader registering
// in that window is waited out via the promotion handoff — TryLock
// never waits on a writer but can briefly wait on such a racer.
func (l *SWRP) TryLock() (WToken, bool) {
	if !l.writerBusy.CompareAndSwap(false, true) {
		if st := l.core.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return WToken{}, false
	}
	if l.core.c.Load() != 0 {
		l.writerBusy.Store(false)
		if st := l.core.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return WToken{}, false
	}
	t := l.core.writerLock()
	if st := l.core.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return t, true
}

// TryRLock attempts read mode without blocking; see
// swrpCore.tryReaderLock for the failure condition and undo.
func (l *SWRP) TryRLock() (RToken, bool) { return l.core.tryReaderLock() }

// LockCtx acquires write mode; cancellation wins only BEFORE the
// line 2 direction toggle, Figure 2's point of no return.  Past it
// the writer is committed and exposed to the discipline's own
// semantics — under reader priority that wait is unbounded while
// readers keep arriving, and ctx cannot recall it (aborting after
// Promote poisons the X/Permit handshake).  Like Lock, it panics on
// a concurrent write attempt (single-writer contract).
func (l *SWRP) LockCtx(ctx context.Context) (WToken, error) {
	if err := ctx.Err(); err != nil {
		return WToken{}, err
	}
	if !l.writerBusy.CompareAndSwap(false, true) {
		panic("rwlock: concurrent Lock on single-writer SWRP lock (use NewMWRP)")
	}
	if err := ctx.Err(); err != nil {
		l.writerBusy.Store(false)
		if st := l.core.stats; st != nil {
			st.CtxSheds.Add(1)
		}
		return WToken{}, err
	}
	t := l.core.writerLock() // line 2 = point of no return
	if st := l.core.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return t, nil
}

// RLockCtx acquires read mode, aborting the gate wait when ctx is
// cancelled; the aborted reader retires through a zero-length read
// passage.
func (l *SWRP) RLockCtx(ctx context.Context) (RToken, error) {
	return l.core.readerLockCtx(ctx)
}

// WriteCtx runs cs in write mode unless ctx is cancelled first (see
// CtxFuncWriter); LockCtx's commitment point applies.
func (l *SWRP) WriteCtx(ctx context.Context, cs func()) error {
	t, err := l.LockCtx(ctx)
	if err != nil {
		return err
	}
	defer l.Unlock(t)
	cs()
	return nil
}

// RLock acquires the lock in read mode.
func (l *SWRP) RLock() RToken { return l.core.readerLock() }

// RUnlock releases read mode.
func (l *SWRP) RUnlock(t RToken) { l.core.readerUnlock(t) }

var _ RWLock = (*SWRP)(nil)
var _ FuncWriter = (*SWRP)(nil)
var _ TryRWLock = (*SWRP)(nil)
var _ CtxRWLock = (*SWRP)(nil)
var _ CtxFuncWriter = (*SWRP)(nil)
