package rwlock

import "sync/atomic"

// swrpCore is the shared-variable state and code of the paper's
// Figure 2 single-writer multi-reader reader-priority algorithm.
// SWRP uses it directly; MWRP wraps its writer side in Anderson's
// lock (Figure 3).  Gate and Permit — the variables processes wait on
// — are waitCells; X and C are only read/CAS'd/fetch&added, never
// waited on, so they stay plain atomics.
type swrpCore struct {
	d      atomic.Int32
	_      [60]byte
	gate   [2]waitCell
	x      atomic.Int64 // X in PID ∪ {true}; xTrue encodes true
	_      [56]byte
	permit waitCell
	c      atomic.Int64
	_      [56]byte
	// idCtr issues fresh attempt pids.  The paper only needs pids to
	// be unique among concurrent attempts; monotone fresh ids give
	// that and additionally rule out ABA on X entirely.
	idCtr atomic.Int64
}

// init sets the paper's initial values — D=0, Gate[0]=true, X = some
// pid (0, smaller than every issued id), Permit=true, C=0 — and
// selects the wait strategy of every cell.
func (l *swrpCore) init(s WaitStrategy) {
	for i := range l.gate {
		l.gate[i].setStrategy(s)
	}
	l.permit.setStrategy(s)
	l.gate[0].store(cellTrue)
	l.permit.store(cellTrue)
}

// newID returns a fresh positive attempt pid.
func (l *swrpCore) newID() int64 { return l.idCtr.Add(1) }

// promote is the paper's Promote() (Figure 2 lines 10-16): enable the
// writer iff no readers are registered.  The two-step CAS through the
// caller's own pid is the Section 4.3(B) subtlety: CASing true
// directly breaks mutual exclusion.  The Permit store is the wake
// side of the writer's wait at line 5, so it must signal: an exiting
// reader's Promote may be what releases a parked writer.
func (l *swrpCore) promote(id int64) {
	x := l.x.Load() // line 10
	if x == xTrue { // line 11
		return
	}
	if !l.x.CompareAndSwap(x, id) { // line 12
		return
	}
	if l.permit.load() != cellFalse { // line 13
		return
	}
	if l.c.Load() != 0 { // line 14
		return
	}
	if l.x.CompareAndSwap(id, xTrue) { // line 15
		l.permit.storeWake(cellTrue) // line 16
	}
}

// writerLock is Figure 2 lines 2-5.
func (l *swrpCore) writerLock() WToken {
	id := l.newID()
	cur := 1 - l.d.Load() // line 2
	l.d.Store(cur)
	l.permit.store(cellFalse) // line 3: own reset, nobody waits for false
	l.promote(id)             // line 4
	l.permit.wait(cellTrue)   // line 5
	return WToken{cur: cur, prev: 1 - cur, id: id}
}

// writerUnlock is Figure 2 lines 7-9.
func (l *swrpCore) writerUnlock(t WToken) {
	l.gate[1-t.cur].store(cellFalse)  // line 7: closing, no wake needed
	l.gate[t.cur].storeWake(cellTrue) // line 8: releases queued readers
	l.x.Store(t.id)                   // line 9
}

// writePassage runs one complete Figure 2 write passage on the
// calling goroutine — the closure-path write MWRP's combined batches
// run once per record while the combiner holds the arbitration mutex.
func (l *swrpCore) writePassage(cs func()) {
	t := l.writerLock()
	cs()
	l.writerUnlock(t)
}

// readerLock is Figure 2 lines 18-24.
func (l *swrpCore) readerLock() RToken {
	id := l.newID()
	l.c.Add(1)      // line 18
	d := l.d.Load() // line 19
	x := l.x.Load() // line 20
	if x != xTrue { // line 21
		l.x.CompareAndSwap(x, id) // line 22
	}
	if l.x.Load() == xTrue { // line 23
		l.gate[d].wait(cellTrue) // line 24
	}
	return RToken{side: d, id: id}
}

// readerUnlock is Figure 2 lines 26-27.
func (l *swrpCore) readerUnlock(t RToken) {
	l.c.Add(-1)     // line 26
	l.promote(t.id) // line 27
}

// SWRP is the paper's Figure 2: a single-writer multi-reader lock
// with READER PRIORITY (RP1, RP2): a reader that is waiting while the
// CS is read-occupied is always enabled, and a writer never overtakes
// a reader that has higher >rp priority.  The writer may starve while
// readers keep arriving — that is the specified behaviour.  RMR
// complexity is O(1) on cache-coherent machines (Theorem 2).
//
// At most one goroutine may be between Lock and Unlock at a time
// (single-writer contract); a second concurrent Lock panics.  Use
// NewMWRP when multiple writers are possible.
type SWRP struct {
	core       swrpCore
	writerBusy atomic.Bool
}

// NewSWRP returns a ready-to-use single-writer reader-priority lock.
func NewSWRP(opts ...Option) *SWRP {
	o := applyOptions(opts)
	l := &SWRP{}
	l.core.init(o.strategy)
	return l
}

// Lock acquires the lock in write mode.  It panics if another write
// attempt is in progress (single-writer contract).
func (l *SWRP) Lock() WToken {
	if !l.writerBusy.CompareAndSwap(false, true) {
		panic("rwlock: concurrent Lock on single-writer SWRP lock (use NewMWRP)")
	}
	return l.core.writerLock()
}

// Unlock releases write mode.
func (l *SWRP) Unlock(t WToken) {
	l.core.writerUnlock(t)
	if !l.writerBusy.CompareAndSwap(true, false) {
		panic("rwlock: Unlock of unlocked SWRP lock")
	}
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// The single-writer contract applies: a concurrent write attempt
// panics.
func (l *SWRP) Write(cs func()) {
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// RLock acquires the lock in read mode.
func (l *SWRP) RLock() RToken { return l.core.readerLock() }

// RUnlock releases read mode.
func (l *SWRP) RUnlock(t RToken) { l.core.readerUnlock(t) }

var _ RWLock = (*SWRP)(nil)
var _ FuncWriter = (*SWRP)(nil)
