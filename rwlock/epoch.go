package rwlock

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Epoch layers a grace-period reader fast path over the paper's
// multi-writer locks, in the style of epoch- and RCU-based reclamation
// schemes (the frontier Ramani et al., arXiv:2402.06860, chart) and of
// percpu reader-writer semaphores.  It is a peer of Bravo (bravo.go):
// both trade writer-side latency for reader-side scalability, but they
// sit at different points of the read-cost spectrum.  BRAVO's fast
// path still performs one shared-word RMW per read passage (the slot
// claim CAS); Epoch's fast path performs NONE — a reader enters by
// STAMPING a padded per-slot epoch word with a plain store, rechecking
// the global epoch, and walking in:
//
//	g := G            // global epoch, even = fast path open
//	slot.word = g     // plain store into a private cache line
//	if G == g { enter } else { back out, take the slow path }
//
// A writer closes the fast path by advancing G to an odd value and
// then waiting out the GRACE PERIOD: every stamped slot must read 0
// before the writer's critical section begins.  With Go's
// sequentially consistent atomics the stamp/recheck vs advance/scan
// pair is a Dekker handshake — either the reader's stamp is visible
// to the writer's scan (which then waits the reader out), or the
// reader's recheck sees the advance and backs out without entering —
// so mutual exclusion is preserved exactly; this wrapper is an epoch
// lock, not bare RCU.  The epoch counter is monotonic, which makes
// the recheck immune to ABA: any passage of any writer changes G
// forever.
//
// # Versions, grace periods, and the batch boundary
//
// What the grace machinery buys beyond the zero-RMW read path is
// DEFERRED RECLAMATION: a writer that replaces the protected data
// publishes the new version and hands the old one to Retire, and the
// wrapper frees its references only after a grace period in which the
// version can no longer be observed — the update-age vs
// retained-memory trade the age-frontier scenario measures.  The
// sweep runs at the writer arbitration layer's BATCH BOUNDARY, via
// the writerMutex contract's onBatchRetire hook (mcs.go): under
// flat-combining arbitration (WithCombiningWriters) the hook fires
// once per drained batch, so ONE grace wait retires every version the
// whole batch produced; under the queue/array arbitrations every
// passage is a batch of one.  WithEpochReclaimEvery(k) stretches the
// cadence further — sweep only every k-th boundary — trading retained
// memory for fewer sweeps.
//
// # What is preserved, and what is traded
//
// Mutual exclusion, deadlock-freedom and both classes' progress are
// preserved for every wrapped discipline (readers always have either
// the fast path or the inner lock's own guarantee; writers' grace
// waits are bounded by the read passages already stamped).  As with
// Bravo's armed bias, strict arrival-order fairness is what the fast
// path trades away: while the epoch is even, fast readers overtake
// writers that are still queued on the arbitration mutex — FIFE,
// RP1/WP1 windows apply from each epoch advance (when the fast path
// closes) until the batch boundary reopens it.  Unlike Bravo there is
// no re-arm throttle: the boundary hook reopens the fast path
// unconditionally, so the first reader after every write is back on
// the zero-RMW path — which is also why Epoch outruns Bravo at very
// high read ratios (no revocation dead zone) — at the price of every
// writer paying one grace wait (Bravo's writers pay a table scan only
// while the bias is armed).
type Epoch struct {
	// global is the epoch counter: even = fast path open, odd = a
	// writer (or batch) holds the lock and fast entry is closed.
	// Advanced only while the writer-arbitration mutex is held, so
	// parity changes are serialized; starts at 2 so no valid stamp is
	// ever 0 (0 is the quiescent slot value).
	global paddedInt64
	// slots is the grow-only registry of per-reader stamp slots the
	// grace scan walks: an immutable slice swapped whole on append
	// (registration is rare — pool misses only), loaded once per scan
	// and once per fast RUnlock.
	slots atomic.Pointer[[]*epochSlot]
	_     [56]byte

	inner RWLock
	m     writerMutex
	// priv is the first-level slot lease: one cached slot per P,
	// claimed with PLAIN loads and stores under a runtime procPin —
	// the pin makes the entry single-accessor, so no RMW, fence or
	// even atomic is needed (procpin.go).  This is the same structure
	// sync.Pool's private slot uses, inlined here because Pool's
	// general machinery (pin's pool-chain lookup, victim handling,
	// Put's race hooks) costs about twice the whole stamp/recheck
	// passage on the steady-state path.  The slice is immutable after
	// construction; a P index beyond its length (GOMAXPROCS raised at
	// runtime) simply falls through to the pool.  Under -race the
	// cache is disabled — its cross-goroutine handoffs are plain
	// stores the detector cannot see — and every lease rides the
	// annotated sync.Pool instead.
	priv []epochPrivSlot
	// pool backs priv: cold starts, overflow when a P's cache entry is
	// already full or empty, and the whole lease under -race.  Its
	// per-P caches keep even the overflow path free of shared RMWs in
	// the steady state; a Treiber free list would put a CAS right back
	// on the read path.  A slot evicted by GC stays in the registry
	// (the scan keeps visiting it; it reads 0) but is never handed out
	// again, so the registry can grow toward epochMaxSlots across GC
	// cycles; past the cap Get returns nil and readers take the slow
	// path.
	pool sync.Pool
	// mu serializes registry appends (the pool.New path only).
	mu sync.Mutex

	// shared/sid select the shared-arena deployment
	// (WithSharedReaderTable): fast readers claim a slot in the shared
	// table tagged with sid instead of stamping a leased private slot,
	// and the grace scan walks the arena waiting only on sid's slots.
	// This trades the zero-RMW read passage for a one-CAS passage
	// (Bravo's fast-path cost) but shrinks the per-lock footprint from
	// the priv cache + pool + registry to one id — the deployment for
	// 10^5-10^6 lock instances.  nil/0 in the private deployment.
	shared *ReaderTable
	sid    int64

	innerCombines bool
	// reclaimEvery is the sweep cadence in batch boundaries (1 =
	// every boundary); see WithEpochReclaimEvery.
	reclaimEvery int64

	// Writer-side bookkeeping, all guarded by the arbitration mutex
	// (writerEnter, Retire and the boundary hook run while it is
	// held); read at quiescence via EpochStats.
	lastDrain  int64 // odd epoch whose grace wait last completed
	boundaries int64
	retired    []retiredVersion
	stats      EpochStats
	// lstats, when non-nil, is the live (atomic, scrape-anytime) mirror
	// of the quiescent EpochStats above, plus the fast-path read count
	// and the watchdog's grace register.  See WithStats.
	lstats *LockStats
}

// epochSlot is one reader's stamp word: the waitCell keeps the word on
// its own cache line (the padding the false-sharing audit asserts) and
// gives the writer's grace scan the lock's wait strategy for free.
// idx is the slot's registry index (the fast-path RToken payload),
// written once at registration; the trailing pad keeps it off the next
// slot's line in case slots are ever allocated contiguously.
type epochSlot struct {
	cell waitCell
	idx  int64
	_    [56]byte
}

// epochPrivSlot is one P's entry in the first-level slot cache: a
// single cached *epochSlot, padded to a cache line so neighboring Ps'
// lease traffic never collides.  Accessed only between procPin and
// procUnpin, with plain operations — see the priv field doc.
type epochPrivSlot struct {
	s *epochSlot
	_ [56]byte
}

// epochFastSide tags an RToken issued by the epoch fast path:
// RToken.side is a gate index (0 or 1) for every inner lock and -1 for
// Bravo's fast path, so -2 is unambiguous.
const epochFastSide = int32(-2)

// epochMaxSlots caps the stamp-slot registry.  The grace scan visits
// every registered slot, so the cap bounds writer-side scan work; a
// reader that finds the pool empty at the cap simply takes the slow
// path.  4096 comfortably exceeds any plausible concurrent-reader
// count on one machine.
const epochMaxSlots = 4096

// retiredVersion is one deferred reclamation entry: the version's
// reference (held live until the sweep drops it), its accounted size,
// and the epoch at which it was retired.
type retiredVersion struct {
	v     any
	bytes int64
	epoch int64
}

// EpochStats is a snapshot of an epoch lock's grace-period and
// reclamation behavior.  Advances counts global-epoch increments
// (close and reopen both count); GraceWaits counts writer grace scans;
// Boundaries counts batch-boundary hook firings (under combining
// arbitration, one per batch — compare against GraceWaits for the
// batching win).  Retired/Reclaimed count versions through Retire and
// the sweep; Retained* are the CURRENT backlog (Retired - Reclaimed)
// and MaxRetained* its high-water marks — the memory half of the
// age-memory frontier.  Read at quiescence (no in-flight writers):
// the counters are maintained under the arbitration mutex, so a
// concurrent read would be racy.
type EpochStats struct {
	Advances   int64
	GraceWaits int64
	Boundaries int64

	Retired             int64
	Reclaimed           int64
	RetainedVersions    int64
	RetainedBytes       int64
	MaxRetainedVersions int64
	MaxRetainedBytes    int64
}

// VersionRetirer is implemented by locks that support deferred version
// reclamation (today: Epoch).  Retire must be called while holding the
// write lock (inside Write's closure, or between Lock and Unlock).
type VersionRetirer interface {
	// Retire hands the previous version of the protected data to the
	// lock for reclamation after a grace period; bytes is the size the
	// retained-memory accounting should charge for it.
	Retire(old any, bytes int)
}

// WithEpochReclaimEvery sets an epoch lock's reclaim cadence: retired
// versions are swept every k-th batch boundary instead of every
// boundary.  k = 1 (the default) reclaims as eagerly as the grace
// rule allows — a version is dropped at the first boundary after the
// grace period that outlives it; larger k batches sweep work and
// RETAINS up to k boundaries' worth of versions, the lazy end of the
// age-memory frontier the age-frontier scenario sweeps.  The option
// is ignored by non-epoch constructors.  k must be at least 1.
func WithEpochReclaimEvery(k int) Option {
	if k < 1 {
		panic("rwlock: WithEpochReclaimEvery needs k >= 1")
	}
	return func(o *options) { o.epochReclaimEvery = k }
}

// NewEpoch wraps inner with the epoch-stamped reader fast path and
// grace-period reclamation.  If inner is nil, a starvation-free MWSF
// lock is used.  inner must be one of the package's multi-writer
// locks (*MWSF, *MWRP, *MWWP) — the wrapper registers the
// batch-boundary hook on their writer-arbitration layer, which is
// where the epoch reopens and retired versions are swept; any other
// lock (including a *Bravo or another *Epoch) panics.  Options
// configure the wrapper's own waiting (the grace scan and the stamp
// slots) and the reclaim cadence; the NewEpochMW* helpers apply one
// option list to both layers.  WithSharedReaderTable(tbl) selects the
// shared-arena deployment: fast readers claim tagged slots in tbl
// (one CAS — the zero-RMW passage is the private deployment's) and
// the per-lock reader state shrinks to one owner id; see the option
// doc for the full trade.
func NewEpoch(inner RWLock, opts ...Option) *Epoch {
	o := applyOptions(opts)
	if inner == nil {
		inner = NewMWSF(opts...)
	}
	reclaimEvery := int64(1)
	if o.epochReclaimEvery > 1 {
		reclaimEvery = int64(o.epochReclaimEvery)
	}
	return newEpochOn(inner, o.sharedTable, o.strategy, reclaimEvery, o.stats)
}

// NewEpochShared is the promotion-path constructor: Epoch(inner) in
// the shared-arena deployment over tbl (nil selects
// DefaultReaderTable), equivalent to
// NewEpoch(inner, WithSharedReaderTable(tbl)) but with no variadic
// options to resolve — see NewBravoShared for why on-demand wrapper
// builders care.  A nil inner uses a fresh default MWSF; the inner
// lock must still be one of the multi-writer builds.
func NewEpochShared(tbl *ReaderTable, inner RWLock) *Epoch {
	if tbl == nil {
		tbl = DefaultReaderTable()
	}
	if inner == nil {
		inner = NewMWSF()
	}
	return newEpochOn(inner, tbl, SpinYield, 1, nil)
}

// newEpochOn is the resolved-form core shared by NewEpoch and
// NewEpochShared: every input is already a concrete value, so nothing
// here forces an options struct to escape.
func newEpochOn(inner RWLock, shared *ReaderTable, strategy WaitStrategy, reclaimEvery int64, st *LockStats) *Epoch {
	var m writerMutex
	switch l := inner.(type) {
	case *MWSF:
		m = l.m
	case *MWRP:
		m = l.m
	case *MWWP:
		m = l.m
	default:
		panic("rwlock: NewEpoch requires a multi-writer inner lock (*MWSF, *MWRP or *MWWP)")
	}
	e := &Epoch{inner: inner, m: m, reclaimEvery: reclaimEvery, lstats: st}
	if shared != nil {
		// Shared-arena deployment: no per-P cache, no pool, no private
		// slot registry — the per-lock reader state is one owner id,
		// and every path below branches on e.shared before touching
		// the private-deployment fields.
		e.shared = shared
		e.sid = shared.assignID()
	}
	e.global.v.Store(2)
	if e.shared == nil {
		// Private deployment only: size the per-P cache for the Ps
		// that exist now, with a floor so tiny boxes still cache and a
		// cap so a huge GOMAXPROCS doesn't buy a page of padding per
		// lock.  Ps added later miss the bound check and lease from
		// the pool — correct, just slower.
		n := runtime.GOMAXPROCS(0)
		if n < 4 {
			n = 4
		}
		if n > 128 {
			n = 128
		}
		e.priv = make([]epochPrivSlot, n)
		empty := make([]*epochSlot, 0)
		e.slots.Store(&empty)
		e.pool.New = func() any {
			e.mu.Lock()
			defer e.mu.Unlock()
			cur := *e.slots.Load()
			if len(cur) >= epochMaxSlots {
				return (*epochSlot)(nil) // cap reached: caller takes the slow path
			}
			s := &epochSlot{idx: int64(len(cur))}
			s.cell.setStrategy(strategy)
			s.cell.setStats(st)
			next := make([]*epochSlot, len(cur)+1)
			copy(next, cur)
			next[len(cur)] = s
			// The registry store is sequentially consistent and precedes
			// the new slot's first stamp (same goroutine), so a grace scan
			// whose advance the stamping reader did not observe is
			// guaranteed to load a registry that includes this slot — the
			// Dekker argument on RLock covers late registrations too.
			e.slots.Store(&next)
			return s
		}
	}
	_, e.innerCombines = CombinerStatsOf(inner)
	m.onBatchRetire(e.onBoundary)
	return e
}

// NewEpochMWSF returns Epoch(MWSF): the starvation-free Theorem 3 lock
// with the zero-RMW epoch reader fast path.  Options (wait strategy,
// writer arbitration, reclaim cadence) apply to both layers.
func NewEpochMWSF(opts ...Option) *Epoch {
	return NewEpoch(NewMWSF(opts...), opts...)
}

// NewEpochMWRP returns Epoch(MWRP): the reader-priority Theorem 4 lock
// with the epoch fast path.  Options apply to both layers.  Note that
// during a writer's grace wait the fast path is closed and arriving
// readers take the inner slow path — RP1's overtaking applies there,
// not to the grace scan itself.
func NewEpochMWRP(opts ...Option) *Epoch {
	return NewEpoch(NewMWRP(opts...), opts...)
}

// NewEpochMWWP returns Epoch(MWWP): the writer-priority Theorem 5 lock
// with the epoch fast path.  Options apply to both layers.  Note the
// trade documented on Epoch: while the epoch is even, fast readers
// overtake queued writers; WP1 applies from each epoch advance until
// the batch boundary reopens the fast path.
func NewEpochMWWP(opts ...Option) *Epoch {
	return NewEpoch(NewMWWP(opts...), opts...)
}

// RLock acquires the lock in read mode, through the zero-RMW fast
// path when the epoch is even (no writer inside or draining).
func (e *Epoch) RLock() RToken {
	if t, ok := e.tryFast(); ok {
		return t
	}
	return e.inner.RLock()
}

// putSlot returns a leased slot: into this P's cache entry if it is
// empty, else to the pool.  A slot parked in priv is still strongly
// referenced (unlike pool entries it can never be GC-evicted), which
// also means the registry stops growing once every P holds a slot.
// The handoff between the goroutine that caches a slot and the one
// that later claims it is safe with plain stores because both held
// the SAME P pinned at their access, and the runtime's P handoff
// between threads is itself a synchronization point — sync.Pool's
// private-slot argument, restated.  (The claim side lives inlined in
// tryFast; getSlot/putSlot don't fit the inliner's budget, and a call
// frame per passage is measurable against Bravo's fast path.)
func (e *Epoch) putSlot(s *epochSlot) {
	if !raceEnabled {
		pid := procPin()
		if pid < len(e.priv) && e.priv[pid].s == nil {
			e.priv[pid].s = s
			procUnpin()
			return
		}
		procUnpin()
	}
	e.pool.Put(s)
}

// tryFast is the stamp/recheck fast passage: a slot lease (the per-P
// cache, with the pool as cold/overflow backing — see putSlot), one
// plain store into the slot's private line, and one recheck load — no
// shared-word RMW anywhere (the property TestEpochReaderZeroRMW pins
// on the simulator encoding of this exact protocol).
//
// In the shared-arena deployment the lease+stamp is instead one
// tagged claim CAS in the shared table (the zero-RMW property is the
// private deployment's); the recheck-after-publish Dekker argument is
// unchanged — either the claim is visible to the advancing writer's
// arena scan, or the recheck sees the odd epoch and backs out.
func (e *Epoch) tryFast() (RToken, bool) {
	g := e.global.v.Load()
	if g&1 != 0 {
		return RToken{}, false
	}
	if e.shared != nil {
		idx, ok := e.shared.tryClaim(e.sid)
		if !ok {
			return RToken{}, false // arena contended: slow path
		}
		if e.global.v.Load() == g {
			if st := e.lstats; st != nil {
				st.ReadAcquires.Add(1)
			}
			return RToken{side: epochFastSide, id: idx}, true
		}
		e.shared.release(idx) // wake matters: a grace scan may be parked here
		return RToken{}, false
	}
	var s *epochSlot
	if !raceEnabled {
		pid := procPin()
		if pid < len(e.priv) {
			s = e.priv[pid].s
			e.priv[pid].s = nil
		}
		procUnpin()
	}
	if s == nil {
		s = e.pool.Get().(*epochSlot)
		if s == nil {
			return RToken{}, false // registry at cap
		}
	}
	s.cell.store(g) // stamp: announce the passage
	if e.global.v.Load() == g {
		// Dekker: this load seeing no advance means our stamp precedes
		// any advancing writer's scan, which will wait us out.
		if st := e.lstats; st != nil {
			st.ReadAcquires.Add(1)
		}
		return RToken{side: epochFastSide, id: s.idx, eslot: s}, true
	}
	// A writer advanced between stamp and recheck (or an older even
	// epoch ended): back out without entering.  The wake matters — the
	// advancing writer's scan may already be parked on this slot.
	s.cell.storeWake(0)
	e.putSlot(s)
	return RToken{}, false
}

// RUnlock releases read mode; it must receive the token returned by
// the matching RLock.
func (e *Epoch) RUnlock(t RToken) {
	if t.side == epochFastSide {
		if t.eslot == nil {
			// Shared-arena fast token: the claim index is the payload.
			e.shared.release(t.id)
			return
		}
		s := t.eslot
		s.cell.storeWake(0) // clear the stamp, waking a draining writer
		// putSlot, inlined by hand (see its doc): cache the slot on
		// this P if the entry is free, overflow to the pool otherwise.
		if !raceEnabled {
			pid := procPin()
			if pid < len(e.priv) && e.priv[pid].s == nil {
				e.priv[pid].s = s
				procUnpin()
				return
			}
			procUnpin()
		}
		e.pool.Put(s)
		return
	}
	e.inner.RUnlock(t)
}

// Lock acquires the lock in write mode: the inner lock first (keeping
// its writer-side discipline), then the epoch advance and grace wait.
func (e *Epoch) Lock() WToken {
	t := e.inner.Lock()
	e.writerEnter()
	return t
}

// Unlock releases write mode.  The epoch reopens and retired versions
// are swept inside the release, at the arbitration layer's batch
// boundary (the onBatchRetire hook), while the mutex is still held.
func (e *Epoch) Unlock(t WToken) { e.inner.Unlock(t) }

// writerEnter closes the fast path and waits out the grace period.
// MUST be called while the writer-arbitration mutex is held (by this
// goroutine after inner.Lock, or by the combiner inside a combined
// write section): that is the invariant that serializes every parity
// change of the global epoch.  Under combining arbitration only the
// batch's first section pays the advance and the grace wait — the
// epoch stays odd until the batch boundary — which is exactly the
// "one grace wait retires a whole batch" amortization.
func (e *Epoch) writerEnter() {
	g := e.global.v.Load()
	if g&1 != 0 {
		return // this batch already closed the fast path
	}
	g = e.global.v.Add(1) // odd: fast entry now impossible
	e.stats.Advances++
	e.stats.GraceWaits++
	st := e.lstats
	if st != nil {
		st.EpochAdvances.Add(1)
		st.GraceWaits.Add(1)
		// The watchdog's grace register: nonzero exactly while this
		// writer is waiting out the grace period.  Write mode at this
		// layer is exclusive (the arbitration mutex is held), so plain
		// store/clear pairs cannot interleave.
		st.GraceActiveNS.Store(nowNanos())
	}
	if e.shared != nil {
		// Shared-arena grace wait: scan the arena, waiting only on
		// this lock's own claims (other locks' slots are skipped).
		// The same ordering argument as below applies — a claim
		// either precedes the advance (and is waited for) or its
		// recheck sees the odd epoch and backs out.
		e.shared.drainFor(e.sid)
		e.lastDrain = g
		if st != nil {
			st.GraceActiveNS.Store(0)
		}
		return
	}
	// Grace wait: every slot stamped before the advance must clear.
	// The registry is loaded AFTER the advance, so any reader whose
	// recheck will succeed is either already registered here (its
	// stamp precedes our advance, sequentially consistent) or will
	// see the odd epoch and back out.  Each wait honors the lock's
	// strategy; a transient stamp from a backing-out reader clears in
	// a bounded number of its own steps.
	for _, s := range *e.slots.Load() {
		s.cell.wait(0)
	}
	e.lastDrain = g
	if st != nil {
		st.GraceActiveNS.Store(0)
	}
}

// onBoundary is the batch-boundary hook (writerMutex.onBatchRetire):
// it runs inside the arbitration layer's release — combiner batch
// drains and token-path releases alike — while the mutex is still
// held.  It reopens the fast path and, on the configured cadence,
// sweeps retired versions whose grace period has passed.
func (e *Epoch) onBoundary() {
	if e.global.v.Load()&1 != 0 {
		e.global.v.Add(1) // reopen: back to even
		e.stats.Advances++
		if st := e.lstats; st != nil {
			st.EpochAdvances.Add(1)
		}
	}
	e.boundaries++
	e.stats.Boundaries++
	if e.reclaimEvery <= 1 || e.boundaries%e.reclaimEvery == 0 {
		e.sweep()
	}
}

// sweep reclaims every retired version whose retire epoch precedes
// the last completed grace wait: after that wait no reader can still
// observe the version (fast readers were waited out; slow readers
// were excluded by the inner lock the retiring writer held).
func (e *Epoch) sweep() {
	kept := e.retired[:0]
	for _, r := range e.retired {
		if r.epoch < e.lastDrain {
			e.stats.Reclaimed++
			e.stats.RetainedVersions--
			e.stats.RetainedBytes -= r.bytes
			if st := e.lstats; st != nil {
				st.ReclaimedVersions.Add(1)
			}
			continue
		}
		kept = append(kept, r)
	}
	// Zero the dropped tail so the reclaimed versions' references are
	// actually released to the GC.
	for i := len(kept); i < len(e.retired); i++ {
		e.retired[i] = retiredVersion{}
	}
	e.retired = kept
}

// Retire hands the previous version of the protected data to the lock
// for deferred reclamation (see VersionRetirer).  MUST be called while
// holding the write lock; the version's reference is held until a
// sweep at a batch boundary finds its grace period complete.
func (e *Epoch) Retire(old any, bytes int) {
	e.retired = append(e.retired, retiredVersion{v: old, bytes: int64(bytes), epoch: e.global.v.Load()})
	e.stats.Retired++
	e.stats.RetainedVersions++
	e.stats.RetainedBytes += int64(bytes)
	if e.stats.RetainedVersions > e.stats.MaxRetainedVersions {
		e.stats.MaxRetainedVersions = e.stats.RetainedVersions
	}
	if e.stats.RetainedBytes > e.stats.MaxRetainedBytes {
		e.stats.MaxRetainedBytes = e.stats.RetainedBytes
	}
	if st := e.lstats; st != nil {
		st.RetiredVersions.Add(1)
		statsMax(&st.RetainedVersionsMax, uint64(e.stats.RetainedVersions))
		statsMax(&st.RetainedBytesMax, uint64(e.stats.RetainedBytes))
	}
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// When the inner lock combines (WithCombiningWriters), the wrapper
// ships the epoch entry along with cs so the advance and grace wait
// happen on the combiner's goroutine, once per batch; on every other
// inner lock the token path is used — same semantics, and no wrapper
// closure on the hot path.
func (e *Epoch) Write(cs func()) {
	if !e.innerCombines {
		t := e.Lock()
		defer e.Unlock(t)
		cs()
		return
	}
	e.inner.(FuncWriter).Write(func() {
		e.writerEnter()
		cs()
	})
}

// TryLock attempts write mode without blocking.  The inner lock's
// TryLock runs first; the wrapper then advances the epoch and SCANS
// the stamp slots instead of waiting on them — on any live stamp it
// advances again (reopening the fast path; the monotonic counter
// makes the double advance safe, stamped-but-unentered readers back
// out against EITHER value), releases the inner lock, and reports
// busy, so a fast-path reader is never waited on.  Requires the inner
// lock to implement TryRWLock (every multi-writer lock does).
func (e *Epoch) TryLock() (WToken, bool) {
	t, ok := e.inner.(TryRWLock).TryLock()
	if !ok {
		return WToken{}, false
	}
	e.global.v.Add(1) // odd: new fast entries now impossible
	e.stats.Advances++
	if st := e.lstats; st != nil {
		st.EpochAdvances.Add(1)
	}
	if e.shared != nil {
		if !e.shared.idleFor(e.sid) {
			e.global.v.Add(1) // restore even without a grace wait
			e.stats.Advances++
			e.inner.Unlock(t)
			if st := e.lstats; st != nil {
				st.EpochAdvances.Add(1)
				st.TrySheds.Add(1)
			}
			return WToken{}, false
		}
	} else {
		for _, s := range *e.slots.Load() {
			if s.cell.load() != 0 {
				e.global.v.Add(1) // restore even without a grace wait
				e.stats.Advances++
				e.inner.Unlock(t)
				if st := e.lstats; st != nil {
					st.EpochAdvances.Add(1)
					st.TrySheds.Add(1)
				}
				return WToken{}, false
			}
		}
	}
	// No stamps were live after the advance, which is exactly what a
	// completed grace wait certifies.
	e.lastDrain = e.global.v.Load()
	e.stats.GraceWaits++
	if st := e.lstats; st != nil {
		st.GraceWaits.Add(1)
	}
	return t, true
}

// TryRLock attempts read mode without blocking: the stamp/recheck
// fast passage never waits — in particular it NEVER blocks on a
// writer's grace period — and the fallback is the inner lock's own
// non-blocking probe.  Requires the inner lock to implement
// TryRWLock.
func (e *Epoch) TryRLock() (RToken, bool) {
	if t, ok := e.tryFast(); ok {
		return t, true
	}
	return e.inner.(TryRWLock).TryRLock()
}

// LockCtx acquires write mode with the inner lock's cancellation
// semantics; once the inner lock is granted the wrapper is committed,
// and the epoch advance plus grace wait run to completion regardless
// of ctx — the wait is bounded by the read passages of the readers
// already stamped.  Requires the inner lock to implement CtxRWLock.
func (e *Epoch) LockCtx(ctx context.Context) (WToken, error) {
	t, err := e.inner.(CtxRWLock).LockCtx(ctx)
	if err != nil {
		return WToken{}, err
	}
	e.writerEnter() // committed: the grace wait runs to completion
	return t, nil
}

// RLockCtx acquires read mode: the non-blocking fast passage first
// (it never waits, so ctx plays no part in it), then the inner lock's
// RLockCtx — the wait a cancellation can abort is the inner slow
// path's, on the same waitCell parking seam every other ctx wait in
// the package rides.  Requires the inner lock to implement CtxRWLock.
func (e *Epoch) RLockCtx(ctx context.Context) (RToken, error) {
	if t, ok := e.tryFast(); ok {
		return t, nil
	}
	return e.inner.(CtxRWLock).RLockCtx(ctx)
}

// WriteCtx runs cs in write mode unless ctx is cancelled first.  On a
// combining inner lock the epoch entry ships inside the combined
// closure as in Write, and the inner WriteCtx's commitment point (the
// publication CAS, or MWWP's doorway) applies; otherwise LockCtx's
// semantics apply.
func (e *Epoch) WriteCtx(ctx context.Context, cs func()) error {
	if !e.innerCombines {
		t, err := e.LockCtx(ctx)
		if err != nil {
			return err
		}
		defer e.Unlock(t)
		cs()
		return nil
	}
	return e.inner.(CtxFuncWriter).WriteCtx(ctx, func() {
		e.writerEnter()
		cs()
	})
}

// EpochStats returns a snapshot of the grace-period and reclamation
// counters.  Quiescence is the caller's obligation (see the
// EpochStats type doc); ok is always true on *Epoch — the two-valued
// form exists for the EpochStatsOf accessor.
func (e *Epoch) EpochStats() (EpochStats, bool) { return e.stats, true }

// CombinerStats forwards the wrapped lock's batching statistics (see
// CombinerStatsOf); ok is false when the inner lock does not combine.
func (e *Epoch) CombinerStats() (CombinerStats, bool) {
	return CombinerStatsOf(e.inner)
}

// Inner returns the wrapped lock.
func (e *Epoch) Inner() RWLock { return e.inner }

// epochStatser is implemented by every lock that can report epoch
// statistics; EpochStatsOf is the generic accessor.
type epochStatser interface {
	EpochStats() (EpochStats, bool)
}

// EpochStatsOf returns the grace-period and retained-memory counters
// of l when l is (or wraps) an epoch lock, and ok == false otherwise.
// Read at quiescence — the harness queries it after a workload's
// workers have joined.
func EpochStatsOf(l RWLock) (EpochStats, bool) {
	if es, ok := l.(epochStatser); ok {
		return es.EpochStats()
	}
	return EpochStats{}, false
}

var _ RWLock = (*Epoch)(nil)
var _ FuncWriter = (*Epoch)(nil)
var _ TryRWLock = (*Epoch)(nil)
var _ CtxRWLock = (*Epoch)(nil)
var _ CtxFuncWriter = (*Epoch)(nil)
var _ VersionRetirer = (*Epoch)(nil)
