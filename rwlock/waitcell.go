package rwlock

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the package's waiting layer.  Every wait in the paper's
// algorithms is "read one word until it holds the value I need"; every
// signal is one write of that word.  waitCell packages that pair — one
// atomic word, a Wait side and a Set+Wake side — behind a pluggable
// WaitStrategy, so the same algorithm text can either busy-wait (the
// paper's cost model) or park the goroutine (the production regime
// where goroutines outnumber cores).

// WaitStrategy selects how goroutines wait on the package's locks.
type WaitStrategy int32

const (
	// SpinYield re-reads the wait word in a loop, calling
	// runtime.Gosched every iteration.  This is the paper's busy-wait
	// realized cooperatively: each re-check is one read of one locally
	// cached word, so a passage stays O(1) RMRs, and the goroutine
	// never blocks.  It is the default, and the right choice when
	// goroutines do not exceed GOMAXPROCS: the wake-to-run latency is
	// one cache-line transfer.
	SpinYield WaitStrategy = iota

	// SpinThenPark spins briefly (bounded local re-checks, then a few
	// scheduler yields), and then parks the goroutine on a per-cell
	// semaphore until the signalling side wakes it.  Under
	// oversubscription (goroutines ≫ GOMAXPROCS) this is dramatically
	// faster: a spinning waiter burns whole scheduler quanta that the
	// lock holder needs to make progress, while a parked waiter costs
	// nothing until the handoff.  Wake-to-run latency is higher than
	// SpinYield's, so lightly loaded low-latency use favors SpinYield.
	//
	// Parking does not change the RMR accounting: the waiter performs
	// O(1) RMRs before parking, the sleep itself generates no memory
	// traffic, and the signaller's wake is one store plus (only when a
	// waiter is actually parked) one semaphore post.
	SpinThenPark
)

// String names the strategy the way the lock registry does ("spin",
// "park").
func (s WaitStrategy) String() string {
	switch s {
	case SpinYield:
		return "spin"
	case SpinThenPark:
		return "park"
	default:
		return "unknown"
	}
}

// Option configures a lock constructor.
type Option func(*options)

type options struct {
	strategy WaitStrategy
	// boundedWriters > 0 selects the bounded Anderson-array writer
	// arbitration with that capacity; 0 (the default) selects the
	// unbounded MCS queue.  See WithBoundedWriters in mcs.go.
	boundedWriters int
	// combining wraps the selected writer arbitration in the
	// flat-combining layer.  See WithCombiningWriters in combiner.go.
	combining bool
	// epochReclaimEvery is the epoch wrapper's reclaim cadence: sweep
	// retired versions every k-th batch boundary (0/1 = every
	// boundary).  See WithEpochReclaimEvery in epoch.go.
	epochReclaimEvery int
	// sharedTable, when non-nil, puts the constructed lock's reader
	// fast path on a shared visible-readers arena instead of private
	// per-lock state.  See WithSharedReaderTable in readerslots.go
	// and the footprint discussion there.
	sharedTable *ReaderTable
	// stats, when non-nil, is the lock's observability counter block.
	// See WithStats in stats.go; every instrumented site nil-checks
	// this pointer, so the default (nil) path is unchanged.
	stats *LockStats
}

// WithSharedReaderTable makes the constructed lock publish its
// fast-path readers in tbl — a ReaderTable arena shared by any number
// of locks — instead of allocating private per-lock reader state: the
// BRAVO paper's global-table design.  The per-lock footprint of the
// reader fast path drops from O(GOMAXPROCS) cache lines to one
// integer owner id, which is what makes 10^5-10^6 lock instances (a
// sharded map's stripe grid) affordable.  The trades:
//
//   - On Bravo, a revoking writer scans the WHOLE shared arena (it
//     waits only on its own lock's readers, but it reads every slot),
//     so the scan cost tracks the arena size, not the lock's own
//     reader count.
//   - On Epoch, fast-path readers claim an arena slot with a CAS
//     instead of stamping a leased private slot with a plain store —
//     the shared deployment gives up the zero-RMW read passage and
//     costs exactly what Bravo's fast path does.  Grace waits scan
//     the arena like Bravo's revocations.
//
// Pass DefaultReaderTable() unless you need your own sizing or wait
// strategy.  The option is ignored by constructors without a reader
// fast path (the inner-lock constructors), mirroring the other
// layer-specific options.  tbl must not be nil.
func WithSharedReaderTable(tbl *ReaderTable) Option {
	if tbl == nil {
		panic("rwlock: WithSharedReaderTable needs a non-nil table")
	}
	return func(o *options) { o.sharedTable = tbl }
}

// WithWaitStrategy selects the waiting layer's behavior for every wait
// inside the constructed lock.  The default is SpinYield.
func WithWaitStrategy(s WaitStrategy) Option {
	return func(o *options) { o.strategy = s }
}

// applyOptions keeps the zero-options path escape-free: passing &o to
// the opaque option funcs forces o to the heap, a 48-byte charge that
// would quadruple the footprint of every optionless Slim construction
// (the 10^6-instance grids build their locks exactly that way).  The
// split keeps the escape confined to callers that actually pass
// options.
func applyOptions(opts []Option) options {
	if len(opts) == 0 {
		return options{}
	}
	return applyOptionsAll(opts)
}

func applyOptionsAll(opts []Option) options {
	var o options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// Bounds of SpinThenPark's pre-park phase: parkSpin tight re-checks
// (the word is locally cached, so this costs no memory traffic), then
// parkYield scheduler yields, then the semaphore.  The numbers are
// small on purpose: when the machine is NOT oversubscribed the wake
// usually lands inside the tight phase, and when it IS, yielding more
// only delays the inevitable park.
const (
	parkSpin  = 128
	parkYield = 4
)

// cellFalse/cellTrue encode the paper's boolean shared variables in a
// cell's int64 word.
const (
	cellFalse int64 = 0
	cellTrue  int64 = 1
)

// waitCell is one shared word that some processes wait on and other
// processes signal.  The hot word sits alone on its cache line (the
// layout the RMR argument needs: a waiter's re-read invalidates
// nothing); the parking state lives on the lines after it and is
// touched only when a waiter actually parks, or by the signaller's
// single parked-count probe.
//
// The zero value is a ready-to-use SpinYield cell holding 0; call
// setStrategy before first use to opt into parking.
type waitCell struct {
	v atomic.Int64
	_ [56]byte

	// Cold parking state.  parked counts goroutines that are committed
	// to sleeping on cond (they increment it under mu before the final
	// re-check).  A signaller stores the word FIRST and probes parked
	// SECOND; a waiter increments parked FIRST and re-checks the word
	// SECOND.  sync/atomic is sequentially consistent, so one of the
	// two always sees the other — the standard futex handshake — and a
	// wake cannot be lost.
	park   bool
	_      [3]byte
	parked atomic.Int32
	mu     sync.Mutex
	cond   *sync.Cond
	// stats, when non-nil, receives Parks/Unparks counts from the
	// park slow path (see WithStats).  Cold by construction: it is
	// only touched after the spin and yield phases have given up.
	stats *LockStats
	_     [32]byte
}

// setStrategy selects the cell's wait behavior.  Not safe to call
// concurrently with waits; lock constructors call it before the lock
// escapes.
func (c *waitCell) setStrategy(s WaitStrategy) { c.park = s == SpinThenPark }

// setStats installs the owning lock's counter block on the cell so
// actual goroutine parks are counted.  Like setStrategy, it must be
// called before the cell is waited on.
func (c *waitCell) setStats(st *LockStats) { c.stats = st }

// load returns the cell's current value.
func (c *waitCell) load() int64 { return c.v.Load() }

// store writes v without waking parked waiters.  Use it only for
// writes that cannot satisfy any wait (closing a gate, a waiter
// resetting its own permit); a store that a waiter may be waiting for
// must go through storeWake.
func (c *waitCell) store(v int64) { c.v.Store(v) }

// add atomically adds delta without waking parked waiters, returning
// the new value.  Same caveat as store.
func (c *waitCell) add(delta int64) int64 { return c.v.Add(delta) }

// cas is a compare-and-swap on the cell's word (no wake: the package's
// CAS sites only ever make waited-for conditions false).
func (c *waitCell) cas(old, new int64) bool { return c.v.CompareAndSwap(old, new) }

// storeWake writes v and wakes parked waiters: the signal side of the
// cell.
func (c *waitCell) storeWake(v int64) {
	c.v.Store(v)
	c.wakeAll()
}

// addWake atomically adds delta, wakes parked waiters, and returns the
// new value.
func (c *waitCell) addWake(delta int64) int64 {
	nv := c.v.Add(delta)
	c.wakeAll()
	return nv
}

// wakeAll wakes every parked waiter so each re-checks its condition.
// When nobody is parked (always, under SpinYield) it is one relaxed
// load of the cold line.
func (c *waitCell) wakeAll() {
	if c.parked.Load() == 0 {
		return
	}
	c.mu.Lock()
	if c.cond != nil {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// wait blocks until the cell's word equals want.
func (c *waitCell) wait(want int64) {
	if c.v.Load() == want {
		return
	}
	if !c.park {
		for c.v.Load() != want {
			runtime.Gosched()
		}
		return
	}
	for i := 0; i < parkSpin; i++ {
		if c.v.Load() == want {
			return
		}
	}
	for i := 0; i < parkYield; i++ {
		runtime.Gosched()
		if c.v.Load() == want {
			return
		}
	}
	c.parkUntil(func(v int64) bool { return v == want })
}

// waitUntil blocks until pred holds for the cell's word.  pred must be
// monotone in the signals that wake this waiter (once satisfied it may
// only be falsified by this waiter's own later actions), the property
// every wait condition in this package has.
func (c *waitCell) waitUntil(pred func(int64) bool) {
	if pred(c.v.Load()) {
		return
	}
	if !c.park {
		for !pred(c.v.Load()) {
			runtime.Gosched()
		}
		return
	}
	for i := 0; i < parkSpin; i++ {
		if pred(c.v.Load()) {
			return
		}
	}
	for i := 0; i < parkYield; i++ {
		runtime.Gosched()
		if pred(c.v.Load()) {
			return
		}
	}
	c.parkUntil(pred)
}

// parkUntil is the slow path: commit to sleeping, with the final
// re-check ordered after the parked-count increment (see the handshake
// comment on waitCell).  Broadcast rather than Signal on the wake side
// keeps this correct when several goroutines park on one cell (e.g.
// readers on a gate): each wakes and re-checks its own predicate.
func (c *waitCell) parkUntil(pred func(int64) bool) {
	c.mu.Lock()
	if c.cond == nil {
		c.cond = sync.NewCond(&c.mu)
	}
	c.parked.Add(1)
	slept := false
	for !pred(c.v.Load()) {
		if st := c.stats; st != nil && !slept {
			slept = true
			st.Parks.Add(1)
		}
		c.cond.Wait()
	}
	c.parked.Add(-1)
	c.mu.Unlock()
	if slept {
		c.stats.Unparks.Add(1)
	}
}

// waitCtx blocks until the cell's word equals want or ctx is
// cancelled, returning nil in the first case and ctx.Err() in the
// second.  The value check always wins a race against cancellation: a
// waiter whose condition became true is reported woken, never
// cancelled, so a signal is never lost to a simultaneous deadline.
// Conversely a cancellation is never lost to a missing signal: the
// cancel side broadcasts into the same cond the wake side does, so a
// parked waiter re-checks ctx exactly as it re-checks the word.  A nil
// ctx (or one that can never be cancelled) degenerates to wait.
func (c *waitCell) waitCtx(ctx context.Context, want int64) error {
	if c.v.Load() == want {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		c.wait(want)
		return nil
	}
	if !c.park {
		for c.v.Load() != want {
			select {
			case <-done:
				// Final re-check: the wake may have landed in the same
				// instant; the condition wins.
				if c.v.Load() == want {
					return nil
				}
				return ctx.Err()
			default:
			}
			runtime.Gosched()
		}
		return nil
	}
	for i := 0; i < parkSpin; i++ {
		if c.v.Load() == want {
			return nil
		}
	}
	for i := 0; i < parkYield; i++ {
		runtime.Gosched()
		if c.v.Load() == want {
			return nil
		}
	}
	return c.parkUntilCtx(ctx, done, func(v int64) bool { return v == want })
}

// waitUntilCtx is waitUntil with the same cancellation contract as
// waitCtx: nil when pred held, ctx.Err() on cancellation, with the
// predicate re-checked last so a simultaneous signal wins.
func (c *waitCell) waitUntilCtx(ctx context.Context, pred func(int64) bool) error {
	if pred(c.v.Load()) {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		c.waitUntil(pred)
		return nil
	}
	if !c.park {
		for !pred(c.v.Load()) {
			select {
			case <-done:
				if pred(c.v.Load()) {
					return nil
				}
				return ctx.Err()
			default:
			}
			runtime.Gosched()
		}
		return nil
	}
	for i := 0; i < parkSpin; i++ {
		if pred(c.v.Load()) {
			return nil
		}
	}
	for i := 0; i < parkYield; i++ {
		runtime.Gosched()
		if pred(c.v.Load()) {
			return nil
		}
	}
	return c.parkUntilCtx(ctx, done, pred)
}

// parkUntilCtx is parkUntil with a second wake source: ctx's
// cancellation.  The AfterFunc broadcasts under the same mutex the
// signalling side uses, so the standard no-lost-wakeup argument covers
// cancellation too — a waiter between its predicate check and
// cond.Wait holds mu, which the canceller needs before broadcasting.
// The predicate is re-checked before ctx on every wake, so a
// simultaneous signal+cancel resolves to "woken".
func (c *waitCell) parkUntilCtx(ctx context.Context, done <-chan struct{}, pred func(int64) bool) error {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		if c.cond != nil {
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	if c.cond == nil {
		c.cond = sync.NewCond(&c.mu)
	}
	c.parked.Add(1)
	slept := false
	for !pred(c.v.Load()) {
		select {
		case <-done:
			c.parked.Add(-1)
			c.mu.Unlock()
			if slept {
				c.stats.Unparks.Add(1)
			}
			if pred(c.v.Load()) {
				return nil
			}
			return ctx.Err()
		default:
		}
		if st := c.stats; st != nil && !slept {
			slept = true
			st.Parks.Add(1)
		}
		c.cond.Wait()
	}
	c.parked.Add(-1)
	c.mu.Unlock()
	if slept {
		c.stats.Unparks.Add(1)
	}
	return nil
}
