package rwlock

import (
	"context"
	"sync"
)

// Guard couples a value with a reader-writer lock and exposes
// closure-based access, hiding token management entirely.  It is the
// recommended high-level API:
//
//	g := rwlock.NewGuard(rwlock.NewMWWP(), map[string]int{})
//	g.Write(func(m *map[string]int) { (*m)["x"] = 1 })
//	g.Read(func(m map[string]int) { fmt.Println(m["x"]) })
//
// The callbacks run inside the critical section; they must not retain
// references to the guarded value (or its aliased internals) after
// returning, and must not call back into the same Guard.
type Guard[T any] struct {
	l RWLock
	// combines records (once) whether l batches closure-path writes;
	// only then does Write pay for an adapter closure per call — on
	// every other lock the token path is the same semantics with zero
	// allocations.
	combines bool
	value    T
}

// NewGuard wraps value with lock l.  If l is nil, a starvation-free
// MWSF lock (unbounded writers) is used.
func NewGuard[T any](l RWLock, value T) *Guard[T] {
	if l == nil {
		l = NewMWSF()
	}
	_, combines := CombinerStatsOf(l)
	return &Guard[T]{l: l, combines: combines, value: value}
}

// Read runs f with shared (read) access to the value.
func (g *Guard[T]) Read(f func(T)) {
	tok := g.l.RLock()
	defer g.l.RUnlock(tok)
	f(g.value)
}

// Write runs f with exclusive (write) access to the value.  On a
// lock built with WithCombiningWriters it goes through the closure
// write path (see FuncWriter), so the update batches with concurrent
// writers; f then runs on the combiner's goroutine and must not rely
// on goroutine identity.
func (g *Guard[T]) Write(f func(*T)) {
	if g.combines {
		Write(g.l, func() { f(&g.value) })
		return
	}
	tok := g.l.Lock()
	defer g.l.Unlock(tok)
	f(&g.value)
}

// TryRead runs f with read access if the lock can be taken without
// blocking, reporting whether it ran.  Requires the underlying lock
// to implement TryRWLock (every lock in this package does).
func (g *Guard[T]) TryRead(f func(T)) bool {
	tok, ok := g.l.(TryRWLock).TryRLock()
	if !ok {
		return false
	}
	defer g.l.RUnlock(tok)
	f(g.value)
	return true
}

// TryWrite runs f with exclusive access if the lock can be taken
// without blocking, reporting whether it ran.  It always uses the
// token path — a combining lock's batch publication cannot fail, so
// it has no non-blocking form.  Requires TryRWLock of the underlying
// lock.
func (g *Guard[T]) TryWrite(f func(*T)) bool {
	tok, ok := g.l.(TryRWLock).TryLock()
	if !ok {
		return false
	}
	defer g.l.Unlock(tok)
	f(&g.value)
	return true
}

// ReadCtx runs f with read access, aborting with ctx.Err() — without
// running f — if ctx is cancelled while waiting for the lock.
// Requires CtxRWLock of the underlying lock.
func (g *Guard[T]) ReadCtx(ctx context.Context, f func(T)) error {
	tok, err := g.l.(CtxRWLock).RLockCtx(ctx)
	if err != nil {
		return err
	}
	defer g.l.RUnlock(tok)
	f(g.value)
	return nil
}

// WriteCtx runs f with exclusive access, aborting with ctx.Err() —
// without running f — if ctx is cancelled while waiting.  On a
// combining lock it goes through the closure write path, where the
// publication CAS is the point of no return (a published update
// always executes; see CtxFuncWriter).
func (g *Guard[T]) WriteCtx(ctx context.Context, f func(*T)) error {
	if g.combines {
		return WriteCtx(ctx, g.l, func() { f(&g.value) })
	}
	tok, err := g.l.(CtxRWLock).LockCtx(ctx)
	if err != nil {
		return err
	}
	defer g.l.Unlock(tok)
	f(&g.value)
	return nil
}

// Load returns a read-locked shallow copy of the value.  For pointer-
// or map-typed T the copy aliases the same underlying data; use Read
// when you need the shared state to stay consistent while you look.
func (g *Guard[T]) Load() T {
	tok := g.l.RLock()
	defer g.l.RUnlock(tok)
	return g.value
}

// Store replaces the value under the write lock.
func (g *Guard[T]) Store(v T) {
	tok := g.l.Lock()
	defer g.l.Unlock(tok)
	g.value = v
}

// Locker adapts the write side of l to sync.Locker (e.g. for use with
// sync.Cond).  The adapter serializes its users with an internal
// mutex so that the token handoff between Lock and Unlock is safe
// even when multiple goroutines share one Locker.
func Locker(l RWLock) sync.Locker {
	return &wLocker{l: l}
}

type wLocker struct {
	mu  sync.Mutex
	l   RWLock
	tok WToken
}

func (w *wLocker) Lock() {
	w.mu.Lock()
	w.tok = w.l.Lock()
}

func (w *wLocker) Unlock() {
	w.l.Unlock(w.tok)
	w.mu.Unlock()
}

// RLocker adapts the read side of l to sync.Locker.  Unlike Locker,
// the returned value must NOT be shared between goroutines that hold
// it concurrently — readers are admitted simultaneously, and the
// adapter has room for only one token.  Create one RLocker per
// goroutine (they are cheap).
func RLocker(l RWLock) sync.Locker {
	return &rLocker{l: l}
}

type rLocker struct {
	l   RWLock
	tok RToken
}

func (r *rLocker) Lock()   { r.tok = r.l.RLock() }
func (r *rLocker) Unlock() { r.l.RUnlock(r.tok) }
