//go:build race

package rwlock

// raceEnabled reports whether the race detector instrumented this
// build.  Two consumers: the epoch lock's per-P slot cache hands
// slots between goroutines through plain (unannotated) stores, which
// is invisible to the detector's happens-before graph, so the cache
// turns itself off under -race and leans on sync.Pool, whose handoffs
// are annotated.  And under -race sync.Pool deliberately drops a
// fraction of Puts to shake out lifetime bugs, so exact
// zero-allocation pins on pool-backed fast paths must relax to a
// small average.
const raceEnabled = true
