package rwlock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Tests for the flat-combining arbitration layer: the exec path that
// the conformance suite (arbiter_conformance_test.go) deliberately
// leaves to this file — batching, exec-vs-token exclusion, record
// recycling, the stats snapshot — plus the combining locks end to end
// (Write on MWSF/MWRP/MWWP/Bravo, Guard.Write, both wait strategies).
// The package runs under -race in CI, so every plain-variable CS here
// doubles as an exclusion check.

// stackLen walks the publication list (test-only; publishers may still
// be pushing, but next pointers of pushed records are stable).
func stackLen(c *combiner) int {
	n := 0
	for r := c.head.Load(); r != nil; r = r.next {
		n++
	}
	return n
}

// TestCombinerExecRunsEveryCS: every submitted critical section runs
// exactly once, mutually excluded, under heavy concurrent exec.
func TestCombinerExecRunsEveryCS(t *testing.T) {
	for _, strat := range strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			c := newCombiner(newMCS(strat, nil), strat, nil)
			const goroutines, laps = 8, 500
			var data int64 // plain: -race checks the batches exclude each other
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < laps; k++ {
						c.exec(func() { data++ })
					}
				}()
			}
			wg.Wait()
			if data != goroutines*laps {
				t.Fatalf("data = %d, want %d (a CS was lost or doubled)", data, goroutines*laps)
			}
			s := c.snapshot()
			if s.Ops != goroutines*laps {
				t.Fatalf("stats count %d ops, want %d", s.Ops, goroutines*laps)
			}
			if s.Batches < 1 || s.Batches > s.Ops {
				t.Fatalf("implausible batch count %d for %d ops", s.Batches, s.Ops)
			}
		})
	}
}

// TestCombinerBatchFormsWhileInnerHeld: the deterministic batching
// choreography — hold the inner mutex through the token path, let N
// publishers pile up (the elect among them is blocked acquiring the
// inner mutex, everyone else waits on their record), then release:
// the elect must drain all N in ONE batch.
func TestCombinerBatchFormsWhileInnerHeld(t *testing.T) {
	for _, strat := range strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			c := newCombiner(newMCS(strat, nil), strat, nil)
			const publishers = 8
			slot := c.acquire() // token path: batches must wait for us
			var data int64
			var wg sync.WaitGroup
			for i := 0; i < publishers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c.exec(func() { data++ })
				}()
			}
			// Wait until all records are published (the list only
			// shrinks under the inner mutex, which we hold).
			for stackLen(c) < publishers {
				runtime.Gosched()
			}
			c.release(slot)
			wg.Wait()
			if data != publishers {
				t.Fatalf("data = %d, want %d", data, publishers)
			}
			s := c.snapshot()
			if s.Batches != 1 || s.Ops != publishers || s.MaxBatch != publishers {
				t.Fatalf("batches=%d ops=%d max=%d, want one batch of %d",
					s.Batches, s.Ops, s.MaxBatch, publishers)
			}
			if s.Sizes[publishers-1] != 1 {
				t.Fatalf("size histogram %v lacks the batch of %d", s.Sizes[:publishers+1], publishers)
			}
		})
	}
}

// TestCombinerExecVsTokenPath: batches and token-path holders exclude
// each other — the property that makes Lock/Unlock safe on a
// combining lock.
func TestCombinerExecVsTokenPath(t *testing.T) {
	for _, strat := range strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			c := newCombiner(newMCS(strat, nil), strat, nil)
			const goroutines, laps = 6, 400
			var inside atomic.Int32
			var data int64
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for k := 0; k < laps; k++ {
						if id%2 == 0 {
							c.exec(func() {
								if v := inside.Add(1); v != 1 {
									t.Errorf("%d holders (exec)", v)
								}
								data++
								inside.Add(-1)
							})
						} else {
							s := c.acquire()
							if v := inside.Add(1); v != 1 {
								t.Errorf("%d holders (token)", v)
							}
							data++
							inside.Add(-1)
							c.release(s)
						}
					}
				}(i)
			}
			wg.Wait()
			if data != goroutines*laps {
				t.Fatalf("data = %d, want %d", data, goroutines*laps)
			}
		})
	}
}

// TestCombinerRecyclesRecords: steady-state exec must come back from
// the record pool, not the heap.  Same caveat as the MCS test: GC may
// clear a sync.Pool mid-run, so assert "well under one allocation per
// op", not zero.
func TestCombinerRecyclesRecords(t *testing.T) {
	c := newCombiner(newMCS(SpinYield, nil), SpinYield, nil)
	c.exec(func() {}) // warm the pool
	if n := testing.AllocsPerRun(500, func() {
		c.exec(func() {})
	}); n > 0.5 {
		t.Fatalf("uncontended combined passage allocates %.2f objects (records not recycled)", n)
	}
}

// TestCombiningWriteDoesNotAllocate: the full combining write path —
// Write on the lock, not just the raw exec — must stay allocation-free
// in steady state: the record comes from the pool and the per-lock
// passage hook is pre-bound at construction, so no per-op closure is
// created.  (cs here captures nothing, as a steady-state caller's
// hoisted closure wouldn't.)
func TestCombiningWriteDoesNotAllocate(t *testing.T) {
	for name, l := range map[string]FuncWriter{
		"MWSF":         NewMWSF(WithCombiningWriters()),
		"MWRP":         NewMWRP(WithCombiningWriters()),
		"MWWP":         NewMWWP(WithCombiningWriters()),
		"MWSF/plain":   NewMWSF(),
		"Bravo(MWSF)":  NewBravoMWSF(),
		"MWWP/plain":   NewMWWP(),
		"Bravo/c":      NewBravoMWSF(WithCombiningWriters()),
		"SWWP (plain)": NewSWWP(),
	} {
		cs := func() {}
		l.Write(cs) // warm the pool
		limit := 0.5
		if name == "Bravo/c" {
			// The one tolerated allocation: Bravo over a COMBINING
			// inner lock wraps cs to ship the bias revocation into the
			// combined section.  Every non-combining path must be
			// allocation-free.
			limit = 1.5
		}
		if n := testing.AllocsPerRun(500, func() { l.Write(cs) }); n > limit {
			t.Errorf("%s: Write allocates %.2f objects per op (limit %.1f)", name, n, limit)
		}
	}
	// Guard.Write over a non-combining lock must not allocate an
	// adapter per call either.
	g := NewGuard(NewMWSF(), 0)
	g.Write(func(v *int) { *v++ })
	if n := testing.AllocsPerRun(500, func() { g.Write(func(v *int) { *v++ }) }); n > 0.5 {
		t.Errorf("Guard.Write on a plain lock allocates %.2f objects per op", n)
	}
}

// TestCombinerOverBoundedInner: WithCombiningWriters composes with
// WithBoundedWriters — the combiner batches over the Anderson array.
func TestCombinerOverBoundedInner(t *testing.T) {
	l := NewMWSF(WithCombiningWriters(), WithBoundedWriters(4))
	c, ok := l.m.(*combiner)
	if !ok {
		t.Fatalf("arbitration is %T, want *combiner", l.m)
	}
	if _, ok := c.inner.(*AndersonLock); !ok {
		t.Fatalf("combiner's inner mutex is %T, want *AndersonLock", c.inner)
	}
	var data int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Write(func() { data++ })
		}()
	}
	wg.Wait()
	if data != 32 {
		t.Fatalf("data = %d, want 32", data)
	}
}

// TestCombiningLocksWriteSemantics: every combining multi-writer lock
// (bare and Bravo-wrapped) retires concurrent closure writes exactly
// once, mutually excluded against readers, under both strategies.
func TestCombiningLocksWriteSemantics(t *testing.T) {
	combiningLocks := func(strat WaitStrategy) map[string]RWLock {
		o := []Option{WithWaitStrategy(strat), WithCombiningWriters()}
		return map[string]RWLock{
			"MWSF/combine":        NewMWSF(o...),
			"MWRP/combine":        NewMWRP(o...),
			"MWWP/combine":        NewMWWP(o...),
			"Bravo(MWSF)/combine": NewBravoMWSF(o...),
		}
	}
	const writers, writesEach, readers = 6, 300, 2
	for _, strat := range strategies() {
		for name, l := range combiningLocks(strat) {
			l := l
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()
				var data int64 // plain: -race checks writer/writer AND writer/reader exclusion
				stop := make(chan struct{})
				var rg sync.WaitGroup
				for i := 0; i < readers; i++ {
					rg.Add(1)
					go func() {
						defer rg.Done()
						var last int64
						for {
							select {
							case <-stop:
								return
							default:
							}
							tok := l.RLock()
							v := data
							l.RUnlock(tok)
							if v < last {
								t.Errorf("read counter went backwards: %d after %d", v, last)
								return
							}
							last = v
							runtime.Gosched()
						}
					}()
				}
				var wg sync.WaitGroup
				for i := 0; i < writers; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for k := 0; k < writesEach; k++ {
							Write(l, func() { data++ })
						}
					}()
				}
				wg.Wait()
				close(stop)
				rg.Wait()
				if data != writers*writesEach {
					t.Fatalf("data = %d, want %d", data, writers*writesEach)
				}
				s, ok := CombinerStatsOf(l)
				if !ok {
					t.Fatal("CombinerStatsOf reports no combiner on a combining lock")
				}
				if s.Ops != writers*writesEach {
					t.Fatalf("combiner retired %d ops, want %d", s.Ops, writers*writesEach)
				}
			})
		}
	}
}

// TestCombinerStatsOf: the accessor distinguishes combining from
// non-combining builds, through the Bravo wrapper too.
func TestCombinerStatsOf(t *testing.T) {
	if _, ok := CombinerStatsOf(NewMWSF()); ok {
		t.Fatal("plain MWSF reports combiner stats")
	}
	if _, ok := CombinerStatsOf(NewRWMutexLock()); ok {
		t.Fatal("sync.RWMutex adapter reports combiner stats")
	}
	if _, ok := CombinerStatsOf(NewMWWP(WithCombiningWriters())); !ok {
		t.Fatal("combining MWWP reports no stats")
	}
	if _, ok := CombinerStatsOf(NewBravoMWSF(WithCombiningWriters())); !ok {
		t.Fatal("Bravo over a combining lock does not forward stats")
	}
	if _, ok := CombinerStatsOf(NewBravoMWSF()); ok {
		t.Fatal("Bravo over a plain lock reports combiner stats")
	}
}

// TestGuardWriteCombines: Guard.Write routes through the closure path,
// so a guarded combining lock batches guarded updates.
func TestGuardWriteCombines(t *testing.T) {
	l := NewMWSF(WithCombiningWriters())
	g := NewGuard(l, 0)
	const writers, writesEach = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < writesEach; k++ {
				g.Write(func(v *int) { *v++ })
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != writers*writesEach {
		t.Fatalf("guarded value = %d, want %d", got, writers*writesEach)
	}
	s, ok := CombinerStatsOf(l)
	if !ok || s.Ops != writers*writesEach {
		t.Fatalf("combiner saw %d ops (ok=%v), want %d", s.Ops, ok, writers*writesEach)
	}
}

// TestWriteHelperFallback: rwlock.Write works (and excludes) on locks
// without a closure path of their own.
func TestWriteHelperFallback(t *testing.T) {
	l := NewRWMutexLock()
	var data int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				Write(l, func() { data++ })
			}
		}()
	}
	wg.Wait()
	if data != 800 {
		t.Fatalf("data = %d, want 800", data)
	}
}

// TestCombiningSelection: the option wires the layer in, over the
// right inner mutex.
func TestCombiningSelection(t *testing.T) {
	l := NewMWSF(WithCombiningWriters())
	c, ok := l.m.(*combiner)
	if !ok {
		t.Fatalf("arbitration is %T, want *combiner", l.m)
	}
	if _, ok := c.inner.(*mcsLock); !ok {
		t.Fatalf("combiner's default inner mutex is %T, want *mcsLock", c.inner)
	}
}
