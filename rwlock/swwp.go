package rwlock

import (
	"context"
	"sync/atomic"
)

// swwpCore is the shared-variable state and code of the paper's
// Figure 1 single-writer multi-reader algorithm.  SWWP uses it
// directly; MWSF wraps its writer side in Anderson's lock (Figure 3)
// and MWWP threads it through the Figure 4 W-token handoff.  The
// variables that distinct processes wait on are waitCells (one padded
// word plus the wake seam of the chosen WaitStrategy); the counters,
// which are only fetch&added and never waited on, stay plain padded
// atomics.
type swwpCore struct {
	d          atomic.Int32
	_          [60]byte
	exitPermit waitCell
	permit     [2]waitCell
	gate       [2]waitCell
	ec         atomic.Int64
	_          [56]byte
	c          [2]paddedInt64
	// stats, when non-nil, receives the read-path counters (acquires,
	// contended, sheds) and sampled read-wait latencies.  Write-path
	// counters belong to the wrapping lock, which knows its own
	// arbitration; the core only ever counts reads.  See WithStats.
	stats *LockStats
}

// paddedInt64 is an atomic.Int64 alone on its cache line.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// init sets the paper's initial values — D=0, Gate[0]=true,
// Gate[1]=false, counters zero — selects the wait strategy of every
// cell, and installs the stats block (nil disables all accounting).
func (l *swwpCore) init(s WaitStrategy, st *LockStats) {
	l.stats = st
	l.exitPermit.setStrategy(s)
	l.exitPermit.setStats(st)
	for i := range l.permit {
		l.permit[i].setStrategy(s)
		l.permit[i].setStats(st)
		l.gate[i].setStrategy(s)
		l.gate[i].setStats(st)
	}
	l.gate[0].store(cellTrue)
}

// writerDoorway is Figure 1 lines 2-3: toggle the side.
func (l *swwpCore) writerDoorway() (prev, cur int32) {
	prev = l.d.Load()
	cur = 1 - prev
	l.d.Store(cur)
	return prev, cur
}

// writerWaitingRoom is Figure 1 lines 4-12: wait for readers of the
// previous side to leave the CS, close their gate, then wait for the
// exit section to clear (the Section 3.3 subtlety — skipping this
// breaks mutual exclusion, as the repo's model checker demonstrates).
// The permit/exitPermit resets are plain stores: only this writer
// waits on them, and it is the one writing.
func (l *swwpCore) writerWaitingRoom(prev int32) {
	l.permit[prev].store(cellFalse)
	if l.c[prev].v.Add(wwBit) != wwBit { // old value != [0,0]
		l.permit[prev].wait(cellTrue)
	}
	l.c[prev].v.Add(-wwBit)
	l.gate[prev].store(cellFalse) // closing: nobody waits for false
	l.exitPermit.store(cellFalse)
	if l.ec.Add(wwBit) != wwBit { // old value != [0,0]
		l.exitPermit.wait(cellTrue)
	}
	l.ec.Add(-wwBit)
}

// writerExit is Figure 1 line 14: open the gate of the side the
// writer used, releasing (and waking) the readers queued behind it.
func (l *swwpCore) writerExit(cur int32) {
	l.gate[cur].storeWake(cellTrue)
}

// writePassage runs one complete Figure 1 write passage — doorway,
// waiting room, cs, exit — on the calling goroutine.  It is the
// closure-path write: MWSF's combined batches run it once per record
// while the combiner holds the arbitration mutex, so readers still
// get their gate window between any two batched writes.
func (l *swwpCore) writePassage(cs func()) {
	prev, cur := l.writerDoorway()
	l.writerWaitingRoom(prev)
	cs()
	l.writerExit(cur)
}

// registerReader is Figure 1 lines 16-23: register in the reader
// count of the current side, handling the writer-moved re-register
// dance.  It returns the side whose gate the reader is now entitled
// to wait on.
func (l *swwpCore) registerReader() int32 {
	d := l.d.Load()
	l.c[d].v.Add(1) // line 17
	d2 := l.d.Load()
	if d != d2 { // line 19: the writer moved; re-register
		l.c[d2].v.Add(1) // line 20
		d = l.d.Load()   // line 21
		other := 1 - d
		if l.c[other].v.Add(-1) == wwBit { // line 22: old value was [1,1]
			l.permit[other].storeWake(cellTrue) // line 23
		}
	}
	return d
}

// readerLock is Figure 1 lines 16-24.
func (l *swwpCore) readerLock() RToken {
	if st := l.stats; st != nil {
		return l.readerLockStats(st)
	}
	d := l.registerReader()
	l.gate[d].wait(cellTrue) // line 24
	return RToken{side: d}
}

// readerLockStats is readerLock's instrumented twin, kept separate so
// the stats-disabled path above stays the pre-instrumentation body
// plus one nil check.  The contended probe reads the gate once before
// the wait: observing an open gate means the wait would have returned
// without blocking, so anything else counts as a contended entry.
func (l *swwpCore) readerLockStats(st *LockStats) RToken {
	var start int64
	sample := st.sampleNow()
	if sample {
		start = nowNanos()
	}
	d := l.registerReader()
	contended := l.gate[d].load() != cellTrue
	l.gate[d].wait(cellTrue) // line 24
	// Acquires before contended, so a concurrent Snapshot (which loads
	// contended first) always sees ReadContended <= ReadAcquires.
	st.ReadAcquires.Add(1)
	if contended {
		st.ReadContended.Add(1)
	}
	if sample {
		st.recordReadWait(nowNanos() - start)
	}
	return RToken{side: d}
}

// tryReaderLock is the non-blocking readerLock: it registers exactly
// as lines 17-23 do, then — where line 24 would wait — either finds
// the gate open and enters, or retires through the ordinary reader
// exit (a zero-length read passage) and reports failure.  The undo
// is clean because a registered reader that never entered is
// indistinguishable, protocol-wise, from one that entered and left
// immediately: readerUnlock keeps the counts and the last-reader
// permit handoffs exact either way.  Entering on an open gate is
// safe even when a writer is mid-passage on this side: the writer's
// waiting room drains this side's count BEFORE closing its gate, so
// an open gate with our registration in the count means any such
// writer is blocked on us.
func (l *swwpCore) tryReaderLock() (RToken, bool) {
	d := l.registerReader()
	if l.gate[d].load() != cellTrue {
		l.readerUnlock(RToken{side: d})
		if st := l.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return RToken{}, false
	}
	if st := l.stats; st != nil {
		st.ReadAcquires.Add(1)
	}
	return RToken{side: d}, true
}

// readerLockCtx is readerLock with the line 24 gate wait made
// cancellable; a cancelled reader retires through the same
// zero-length-passage undo tryReaderLock uses.
func (l *swwpCore) readerLockCtx(ctx context.Context) (RToken, error) {
	d := l.registerReader()
	if err := l.gate[d].waitCtx(ctx, cellTrue); err != nil {
		l.readerUnlock(RToken{side: d})
		if st := l.stats; st != nil {
			st.CtxSheds.Add(1)
		}
		return RToken{}, err
	}
	if st := l.stats; st != nil {
		st.ReadAcquires.Add(1)
	}
	return RToken{side: d}, nil
}

// readersIdle reports that no reader is registered on either side and
// the exit section is clear — the availability probe the writer-side
// TryLock runs before committing through the irreversible doorway.
// The three loads are a snapshot, not an atomic predicate: a reader
// may register the next instant, which is the race window TryLock's
// documentation qualifies.
func (l *swwpCore) readersIdle() bool {
	return l.c[0].v.Load()&(wwBit-1) == 0 &&
		l.c[1].v.Load()&(wwBit-1) == 0 &&
		l.ec.Load()&(wwBit-1) == 0
}

// readerUnlock is Figure 1 lines 26-30.
func (l *swwpCore) readerUnlock(t RToken) {
	l.ec.Add(1)                         // line 26
	if l.c[t.side].v.Add(-1) == wwBit { // line 27: old value was [1,1]
		l.permit[t.side].storeWake(cellTrue) // line 28
	}
	if l.ec.Add(-1) == wwBit { // line 29: old value was [1,1]
		l.exitPermit.storeWake(cellTrue) // line 30
	}
}

// SWWP is the paper's Figure 1: a single-writer multi-reader lock
// with WRITER PRIORITY (WP1, WP2) that also satisfies mutual
// exclusion, bounded exit, FIFE among readers, concurrent entering
// and starvation freedom (P1-P7).  Its RMR complexity is O(1) on
// cache-coherent machines (Theorem 1).
//
// At most one goroutine may be between Lock and Unlock at a time BY
// CONTRACT: this is the single-writer algorithm.  A second concurrent
// Lock panics.  Use NewMWWP when multiple writers are possible.
type SWWP struct {
	core       swwpCore
	writerBusy atomic.Bool
}

// NewSWWP returns a ready-to-use single-writer writer-priority lock.
func NewSWWP(opts ...Option) *SWWP {
	o := applyOptions(opts)
	l := &SWWP{}
	l.core.init(o.strategy, o.stats)
	return l
}

// Lock acquires the lock in write mode.  It panics if another write
// attempt is in progress (single-writer contract).
func (l *SWWP) Lock() WToken {
	if !l.writerBusy.CompareAndSwap(false, true) {
		panic("rwlock: concurrent Lock on single-writer SWWP lock (use NewMWWP)")
	}
	prev, cur := l.core.writerDoorway()
	l.core.writerWaitingRoom(prev)
	if st := l.core.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return WToken{prev: prev, cur: cur}
}

// Unlock releases write mode.
func (l *SWWP) Unlock(t WToken) {
	l.core.writerExit(t.cur)
	if !l.writerBusy.CompareAndSwap(true, false) {
		panic("rwlock: Unlock of unlocked SWWP lock")
	}
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// The single-writer contract applies: a concurrent write attempt
// panics.
func (l *SWWP) Write(cs func()) {
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// TryLock attempts write mode without blocking.  It fails when
// another write attempt is in progress (where Lock would panic —
// single-writer contract) or when any reader is registered.  The
// availability probe and the doorway commit are not atomic: a reader
// whose registration races into that window is drained by the
// ordinary waiting room, so TryLock never waits on a writer but can
// briefly wait out such a racing reader's passage.
func (l *SWWP) TryLock() (WToken, bool) {
	if !l.writerBusy.CompareAndSwap(false, true) {
		if st := l.core.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return WToken{}, false
	}
	if !l.core.readersIdle() {
		l.writerBusy.Store(false)
		if st := l.core.stats; st != nil {
			st.TrySheds.Add(1)
		}
		return WToken{}, false
	}
	prev, cur := l.core.writerDoorway()
	l.core.writerWaitingRoom(prev)
	if st := l.core.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return WToken{prev: prev, cur: cur}, true
}

// TryRLock attempts read mode without blocking; see
// swwpCore.tryReaderLock for why the failure undo is clean.
func (l *SWWP) TryRLock() (RToken, bool) { return l.core.tryReaderLock() }

// LockCtx acquires write mode; cancellation wins only BEFORE the
// doorway (the direction-bit toggle), Figure 1's point of no return —
// past it the waiting room runs to completion regardless of ctx,
// bounded by the passages of the readers already inside.  Like Lock,
// it panics on a concurrent write attempt (single-writer contract).
func (l *SWWP) LockCtx(ctx context.Context) (WToken, error) {
	if err := ctx.Err(); err != nil {
		return WToken{}, err
	}
	if !l.writerBusy.CompareAndSwap(false, true) {
		panic("rwlock: concurrent Lock on single-writer SWWP lock (use NewMWWP)")
	}
	if err := ctx.Err(); err != nil {
		l.writerBusy.Store(false)
		if st := l.core.stats; st != nil {
			st.CtxSheds.Add(1)
		}
		return WToken{}, err
	}
	prev, cur := l.core.writerDoorway() // point of no return
	l.core.writerWaitingRoom(prev)
	if st := l.core.stats; st != nil {
		st.WriteAcquires.Add(1)
	}
	return WToken{prev: prev, cur: cur}, nil
}

// RLockCtx acquires read mode, aborting the gate wait when ctx is
// cancelled; an aborted reader retires through a zero-length read
// passage, keeping the counts exact.
func (l *SWWP) RLockCtx(ctx context.Context) (RToken, error) {
	return l.core.readerLockCtx(ctx)
}

// WriteCtx runs cs in write mode unless ctx is cancelled first (see
// CtxFuncWriter); LockCtx's commitment point applies.
func (l *SWWP) WriteCtx(ctx context.Context, cs func()) error {
	t, err := l.LockCtx(ctx)
	if err != nil {
		return err
	}
	defer l.Unlock(t)
	cs()
	return nil
}

// RLock acquires the lock in read mode.
func (l *SWWP) RLock() RToken { return l.core.readerLock() }

// RUnlock releases read mode.
func (l *SWWP) RUnlock(t RToken) { l.core.readerUnlock(t) }

var _ RWLock = (*SWWP)(nil)
var _ FuncWriter = (*SWWP)(nil)
var _ TryRWLock = (*SWWP)(nil)
var _ CtxRWLock = (*SWWP)(nil)
var _ CtxFuncWriter = (*SWWP)(nil)
