package rwlock

import "sync/atomic"

// swwpCore is the shared-variable state and code of the paper's
// Figure 1 single-writer multi-reader algorithm.  SWWP uses it
// directly; MWSF wraps its writer side in Anderson's lock (Figure 3)
// and MWWP threads it through the Figure 4 W-token handoff.  The
// variables that distinct processes wait on are waitCells (one padded
// word plus the wake seam of the chosen WaitStrategy); the counters,
// which are only fetch&added and never waited on, stay plain padded
// atomics.
type swwpCore struct {
	d          atomic.Int32
	_          [60]byte
	exitPermit waitCell
	permit     [2]waitCell
	gate       [2]waitCell
	ec         atomic.Int64
	_          [56]byte
	c          [2]paddedInt64
}

// paddedInt64 is an atomic.Int64 alone on its cache line.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// init sets the paper's initial values — D=0, Gate[0]=true,
// Gate[1]=false, counters zero — and selects the wait strategy of
// every cell.
func (l *swwpCore) init(s WaitStrategy) {
	l.exitPermit.setStrategy(s)
	for i := range l.permit {
		l.permit[i].setStrategy(s)
		l.gate[i].setStrategy(s)
	}
	l.gate[0].store(cellTrue)
}

// writerDoorway is Figure 1 lines 2-3: toggle the side.
func (l *swwpCore) writerDoorway() (prev, cur int32) {
	prev = l.d.Load()
	cur = 1 - prev
	l.d.Store(cur)
	return prev, cur
}

// writerWaitingRoom is Figure 1 lines 4-12: wait for readers of the
// previous side to leave the CS, close their gate, then wait for the
// exit section to clear (the Section 3.3 subtlety — skipping this
// breaks mutual exclusion, as the repo's model checker demonstrates).
// The permit/exitPermit resets are plain stores: only this writer
// waits on them, and it is the one writing.
func (l *swwpCore) writerWaitingRoom(prev int32) {
	l.permit[prev].store(cellFalse)
	if l.c[prev].v.Add(wwBit) != wwBit { // old value != [0,0]
		l.permit[prev].wait(cellTrue)
	}
	l.c[prev].v.Add(-wwBit)
	l.gate[prev].store(cellFalse) // closing: nobody waits for false
	l.exitPermit.store(cellFalse)
	if l.ec.Add(wwBit) != wwBit { // old value != [0,0]
		l.exitPermit.wait(cellTrue)
	}
	l.ec.Add(-wwBit)
}

// writerExit is Figure 1 line 14: open the gate of the side the
// writer used, releasing (and waking) the readers queued behind it.
func (l *swwpCore) writerExit(cur int32) {
	l.gate[cur].storeWake(cellTrue)
}

// writePassage runs one complete Figure 1 write passage — doorway,
// waiting room, cs, exit — on the calling goroutine.  It is the
// closure-path write: MWSF's combined batches run it once per record
// while the combiner holds the arbitration mutex, so readers still
// get their gate window between any two batched writes.
func (l *swwpCore) writePassage(cs func()) {
	prev, cur := l.writerDoorway()
	l.writerWaitingRoom(prev)
	cs()
	l.writerExit(cur)
}

// readerLock is Figure 1 lines 16-24.
func (l *swwpCore) readerLock() RToken {
	d := l.d.Load()
	l.c[d].v.Add(1) // line 17
	d2 := l.d.Load()
	if d != d2 { // line 19: the writer moved; re-register
		l.c[d2].v.Add(1) // line 20
		d = l.d.Load()   // line 21
		other := 1 - d
		if l.c[other].v.Add(-1) == wwBit { // line 22: old value was [1,1]
			l.permit[other].storeWake(cellTrue) // line 23
		}
	}
	l.gate[d].wait(cellTrue) // line 24
	return RToken{side: d}
}

// readerUnlock is Figure 1 lines 26-30.
func (l *swwpCore) readerUnlock(t RToken) {
	l.ec.Add(1)                         // line 26
	if l.c[t.side].v.Add(-1) == wwBit { // line 27: old value was [1,1]
		l.permit[t.side].storeWake(cellTrue) // line 28
	}
	if l.ec.Add(-1) == wwBit { // line 29: old value was [1,1]
		l.exitPermit.storeWake(cellTrue) // line 30
	}
}

// SWWP is the paper's Figure 1: a single-writer multi-reader lock
// with WRITER PRIORITY (WP1, WP2) that also satisfies mutual
// exclusion, bounded exit, FIFE among readers, concurrent entering
// and starvation freedom (P1-P7).  Its RMR complexity is O(1) on
// cache-coherent machines (Theorem 1).
//
// At most one goroutine may be between Lock and Unlock at a time BY
// CONTRACT: this is the single-writer algorithm.  A second concurrent
// Lock panics.  Use NewMWWP when multiple writers are possible.
type SWWP struct {
	core       swwpCore
	writerBusy atomic.Bool
}

// NewSWWP returns a ready-to-use single-writer writer-priority lock.
func NewSWWP(opts ...Option) *SWWP {
	o := applyOptions(opts)
	l := &SWWP{}
	l.core.init(o.strategy)
	return l
}

// Lock acquires the lock in write mode.  It panics if another write
// attempt is in progress (single-writer contract).
func (l *SWWP) Lock() WToken {
	if !l.writerBusy.CompareAndSwap(false, true) {
		panic("rwlock: concurrent Lock on single-writer SWWP lock (use NewMWWP)")
	}
	prev, cur := l.core.writerDoorway()
	l.core.writerWaitingRoom(prev)
	return WToken{prev: prev, cur: cur}
}

// Unlock releases write mode.
func (l *SWWP) Unlock(t WToken) {
	l.core.writerExit(t.cur)
	if !l.writerBusy.CompareAndSwap(true, false) {
		panic("rwlock: Unlock of unlocked SWWP lock")
	}
}

// Write runs cs in write mode (the closure path; see FuncWriter).
// The single-writer contract applies: a concurrent write attempt
// panics.
func (l *SWWP) Write(cs func()) {
	t := l.Lock()
	defer l.Unlock(t)
	cs()
}

// RLock acquires the lock in read mode.
func (l *SWWP) RLock() RToken { return l.core.readerLock() }

// RUnlock releases read mode.
func (l *SWWP) RUnlock(t RToken) { l.core.readerUnlock(t) }

var _ RWLock = (*SWWP)(nil)
var _ FuncWriter = (*SWWP)(nil)
