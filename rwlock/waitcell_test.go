package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWaitCellStoreWake: a single waiter, both strategies — the
// wait/Set+Wake handshake in isolation.
func TestWaitCellStoreWake(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c waitCell
			c.setStrategy(strat)
			done := make(chan struct{})
			go func() {
				c.wait(7)
				close(done)
			}()
			select {
			case <-done:
				t.Fatal("wait returned before the store")
			case <-time.After(10 * time.Millisecond):
			}
			c.storeWake(7)
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("waiter not woken by storeWake")
			}
			if c.parked.Load() != 0 {
				t.Fatalf("parked count %d after wake, want 0", c.parked.Load())
			}
		})
	}
}

// TestWaitCellBroadcast: many goroutines parked on one cell (readers
// on a gate) must ALL be released by one storeWake.
func TestWaitCellBroadcast(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c waitCell
			c.setStrategy(strat)
			const n = 16
			var woken atomic.Int32
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c.wait(cellTrue)
					woken.Add(1)
				}()
			}
			time.Sleep(20 * time.Millisecond) // let waiters park
			c.storeWake(cellTrue)
			wg.Wait()
			if woken.Load() != n {
				t.Fatalf("woke %d of %d waiters", woken.Load(), n)
			}
		})
	}
}

// TestWaitCellWaitUntil: predicate waits (the baselines' masked
// conditions) wake on adds.
func TestWaitCellWaitUntil(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c waitCell
			c.setStrategy(strat)
			c.store(3)
			done := make(chan struct{})
			go func() {
				c.waitUntil(func(v int64) bool { return v == 0 })
				close(done)
			}()
			c.addWake(-1)
			c.addWake(-1)
			select {
			case <-done:
				t.Fatal("waitUntil returned with value 1")
			case <-time.After(10 * time.Millisecond):
			}
			c.addWake(-1)
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("waitUntil not released at 0")
			}
		})
	}
}

// TestWaitCellWakeRace hammers the park/wake handshake: a ping-pong
// pair where each side's storeWake is the other's release.  Any lost
// wakeup deadlocks (caught by the test timeout); run under -race this
// also checks the parking path's memory discipline.
func TestWaitCellWakeRace(t *testing.T) {
	var ping, pong waitCell
	ping.setStrategy(SpinThenPark)
	pong.setStrategy(SpinThenPark)
	const rounds = 5000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			ping.wait(int64(i + 1))
			pong.storeWake(int64(i + 1))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			ping.storeWake(int64(i + 1))
			pong.wait(int64(i + 1))
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ping-pong deadlocked: lost wakeup in the parking layer")
	}
}

// TestWaitStrategyString pins the names the lock registry builds on.
func TestWaitStrategyString(t *testing.T) {
	if SpinYield.String() != "spin" || SpinThenPark.String() != "park" {
		t.Fatalf("strategy names changed: %q/%q", SpinYield, SpinThenPark)
	}
	if WaitStrategy(99).String() != "unknown" {
		t.Fatalf("out-of-range strategy name %q", WaitStrategy(99))
	}
}
