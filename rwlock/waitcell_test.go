package rwlock

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWaitCellStoreWake: a single waiter, both strategies — the
// wait/Set+Wake handshake in isolation.
func TestWaitCellStoreWake(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c waitCell
			c.setStrategy(strat)
			done := make(chan struct{})
			go func() {
				c.wait(7)
				close(done)
			}()
			select {
			case <-done:
				t.Fatal("wait returned before the store")
			case <-time.After(10 * time.Millisecond):
			}
			c.storeWake(7)
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("waiter not woken by storeWake")
			}
			if c.parked.Load() != 0 {
				t.Fatalf("parked count %d after wake, want 0", c.parked.Load())
			}
		})
	}
}

// TestWaitCellBroadcast: many goroutines parked on one cell (readers
// on a gate) must ALL be released by one storeWake.
func TestWaitCellBroadcast(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c waitCell
			c.setStrategy(strat)
			const n = 16
			var woken atomic.Int32
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c.wait(cellTrue)
					woken.Add(1)
				}()
			}
			time.Sleep(20 * time.Millisecond) // let waiters park
			c.storeWake(cellTrue)
			wg.Wait()
			if woken.Load() != n {
				t.Fatalf("woke %d of %d waiters", woken.Load(), n)
			}
		})
	}
}

// TestWaitCellWaitUntil: predicate waits (the baselines' masked
// conditions) wake on adds.
func TestWaitCellWaitUntil(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c waitCell
			c.setStrategy(strat)
			c.store(3)
			done := make(chan struct{})
			go func() {
				c.waitUntil(func(v int64) bool { return v == 0 })
				close(done)
			}()
			c.addWake(-1)
			c.addWake(-1)
			select {
			case <-done:
				t.Fatal("waitUntil returned with value 1")
			case <-time.After(10 * time.Millisecond):
			}
			c.addWake(-1)
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("waitUntil not released at 0")
			}
		})
	}
}

// TestWaitCellWakeRace hammers the park/wake handshake: a ping-pong
// pair where each side's storeWake is the other's release.  Any lost
// wakeup deadlocks (caught by the test timeout); run under -race this
// also checks the parking path's memory discipline.
func TestWaitCellWakeRace(t *testing.T) {
	var ping, pong waitCell
	ping.setStrategy(SpinThenPark)
	pong.setStrategy(SpinThenPark)
	const rounds = 5000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			ping.wait(int64(i + 1))
			pong.storeWake(int64(i + 1))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			ping.storeWake(int64(i + 1))
			pong.wait(int64(i + 1))
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ping-pong deadlocked: lost wakeup in the parking layer")
	}
}

// TestWaitCellWaitCtxWake: an uncancelled waitCtx behaves exactly
// like wait — released by the signal, returning nil — under both
// strategies.
func TestWaitCellWaitCtxWake(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c waitCell
			c.setStrategy(strat)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan error, 1)
			go func() { done <- c.waitCtx(ctx, 7) }()
			select {
			case <-done:
				t.Fatal("waitCtx returned before the store")
			case <-time.After(10 * time.Millisecond):
			}
			c.storeWake(7)
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("waitCtx = %v after a real wake, want nil", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("waitCtx waiter not woken by storeWake")
			}
			if c.parked.Load() != 0 {
				t.Fatalf("parked count %d after wake, want 0", c.parked.Load())
			}
		})
	}
}

// TestWaitCellWaitCtxCancel: cancellation releases a waiter whose
// condition never becomes true, with ctx.Err() reported and no
// parked-count leak — the leak would silently break wakeAll's
// nobody-parked fast path forever after.
func TestWaitCellWaitCtxCancel(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c waitCell
			c.setStrategy(strat)
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- c.waitCtx(ctx, 7) }()
			time.Sleep(10 * time.Millisecond) // let the waiter park
			cancel()
			select {
			case err := <-done:
				if err != context.Canceled {
					t.Fatalf("waitCtx = %v, want context.Canceled", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("cancellation did not release the waiter")
			}
			if c.parked.Load() != 0 {
				t.Fatalf("parked count %d after cancel, want 0 (leak)", c.parked.Load())
			}
			// The cell must still work for later waiters: the cancelled
			// attempt may not have consumed or corrupted anything.
			go func() { done <- c.waitCtx(context.Background(), 7) }()
			c.storeWake(7)
			if err := <-done; err != nil {
				t.Fatalf("post-cancel waitCtx = %v, want nil", err)
			}
		})
	}
}

// TestWaitCellWaitCtxAlreadySatisfied: the value check always wins —
// a satisfied condition reports nil even on an already-cancelled ctx,
// and an already-cancelled ctx on an unsatisfied cell reports the
// error without waiting.
func TestWaitCellWaitCtxAlreadySatisfied(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var c waitCell
	c.store(7)
	if err := c.waitCtx(ctx, 7); err != nil {
		t.Fatalf("waitCtx on a satisfied cell = %v, want nil (value wins)", err)
	}
	c.store(0)
	if err := c.waitCtx(ctx, 7); err != context.Canceled {
		t.Fatalf("waitCtx on an unsatisfied cell = %v, want context.Canceled", err)
	}
	if err := c.waitUntilCtx(ctx, func(v int64) bool { return v == 7 }); err != context.Canceled {
		t.Fatalf("waitUntilCtx = %v, want context.Canceled", err)
	}
	c.store(7)
	if err := c.waitUntilCtx(ctx, func(v int64) bool { return v == 7 }); err != nil {
		t.Fatalf("waitUntilCtx on a satisfied cell = %v, want nil", err)
	}
}

// TestWaitCellWaitUntilCtxCancel: the predicate form's cancellation
// path, including a waiter that is later re-satisfied.
func TestWaitCellWaitUntilCtxCancel(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c waitCell
			c.setStrategy(strat)
			c.store(3)
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				done <- c.waitUntilCtx(ctx, func(v int64) bool { return v == 0 })
			}()
			c.addWake(-1) // 2: not yet satisfied
			time.Sleep(10 * time.Millisecond)
			cancel()
			if err := <-done; err != context.Canceled {
				t.Fatalf("waitUntilCtx = %v, want context.Canceled", err)
			}
			if c.parked.Load() != 0 {
				t.Fatalf("parked count %d after cancel, want 0", c.parked.Load())
			}
		})
	}
}

// TestWaitCellCancelVsWakeRace races a storeWake against a cancel for
// the same parked waiter, many rounds, under both strategies.  Either
// outcome is legal, but the contract pins one asymmetry: when waitCtx
// returns nil the value was observed, and when it returns an error a
// LATER waiter must still be wakeable (no lost wakeup, no leaked
// parked count).  Run under -race this also exercises the
// AfterFunc-vs-broadcast path in parkUntilCtx.
func TestWaitCellCancelVsWakeRace(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			var c waitCell
			c.setStrategy(strat)
			const rounds = 2000
			for i := 0; i < rounds; i++ {
				c.store(0)
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan error, 1)
				go func() { done <- c.waitCtx(ctx, 1) }()
				var wg sync.WaitGroup
				wg.Add(2)
				go func() { defer wg.Done(); c.storeWake(1) }()
				go func() { defer wg.Done(); cancel() }()
				var err error
				select {
				case err = <-done:
				case <-time.After(5 * time.Second):
					t.Fatalf("round %d: waiter released by neither wake nor cancel", i)
				}
				wg.Wait()
				if err == nil && c.load() != 1 {
					t.Fatalf("round %d: waitCtx reported woken with value %d", i, c.load())
				}
				if n := c.parked.Load(); n != 0 {
					t.Fatalf("round %d: parked count %d leaked", i, n)
				}
			}
		})
	}
}

// TestWaitStrategyString pins the names the lock registry builds on.
func TestWaitStrategyString(t *testing.T) {
	if SpinYield.String() != "spin" || SpinThenPark.String() != "park" {
		t.Fatalf("strategy names changed: %q/%q", SpinYield, SpinThenPark)
	}
	if WaitStrategy(99).String() != "unknown" {
		t.Fatalf("out-of-range strategy name %q", WaitStrategy(99))
	}
}
