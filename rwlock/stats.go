package rwlock

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rwsync/internal/stats"
)

// Per-lock runtime observability: the WithStats seam.
//
// Every layer of the stack already keeps SOME counters (EpochStats
// under the arbitration mutex, CombinerStats under the inner mutex),
// but those are "read at quiescence" — correct for benchmarks, useless
// for a live scrape.  LockStats is the always-coherent counterpart: a
// cache-padded block of independent atomic words a deployed service
// can snapshot at any instant while traffic is running.  BRAVO's own
// evaluation (arXiv:1810.01553) leans on exactly these per-lock
// statistics — revocation rates, fast-path hit ratios — to explain
// its behavior; this seam makes them observable in production, not
// just in the paper.
//
// The contract that keeps the seam honest: a lock built WITHOUT
// WithStats pays nothing.  Every instrumented site is guarded by a
// single nil-pointer check on a field that is nil by default, so the
// disabled path is the pre-instrumentation path plus one predictable
// branch (pinned by TestStatsDisabledZeroAlloc and the A/B benchmark
// BenchmarkStatsOverhead).  The enabled path pays one atomic add per
// counted event — measured and documented in the README, not hidden.

// statsSampleEvery is the latency-histogram sampling cadence: one in
// every statsSampleEvery acquisitions (per LockStats block) records
// its wait — and, for writers, hold — duration.  Power of two so the
// sample test is a mask, the same economics as the workload package's
// DefaultSampleEvery.
const statsSampleEvery = 64

// LockStats is a per-lock block of atomic counters installed with
// WithStats.  Allocate one per lock (or deliberately share one block
// across several locks to aggregate them — every counter is a plain
// atomic add, so sharing sums), pass it at construction, and snapshot
// it at any time with Snapshot while traffic runs.
//
// Layout: counters are grouped by which side of the lock touches them
// — read-path, write-path, arbitration/waiting, reclamation — with
// cache-line padding between the groups, so a scrape or a writer
// burst does not invalidate the line the read fast path is adding to.
//
// Which layers feed which counters:
//
//   - Read/Write acquires + contended: the multi-writer lock layer
//     (and the Bravo/Epoch wrappers' fast paths, which count their
//     fast-path reads themselves; slow-path reads fall through to the
//     inner lock, which shares the same block when built from the
//     same option list — the sum is all reads, with no double count).
//   - TrySheds/CtxSheds: TryLock/TryRLock failures and
//     LockCtx/RLockCtx/WriteCtx cancellations, at the layer that
//     decided to shed.
//   - Revocations/ReArms: the Bravo wrapper (bias revoked by a
//     writer; bias re-armed by the slow-path budget).
//   - EpochAdvances/GraceWaits/Retired/Reclaimed/Retained*: the Epoch
//     wrapper (the live mirror of the quiescent EpochStats).
//   - QueueDepth/QueueDepthMax, WriteContended: the writer-arbitration
//     layer (MCS queue or Anderson array).
//   - Batches/BatchMax/CombinedOps: the flat-combining arbitration.
//   - Parks/Unparks: the waitCell layer — every cell owned by the
//     lock (core gates, MCS nodes, Anderson slots, combiner records)
//     counts actual goroutine parks.  Shared ReaderTable arena slots
//     are excluded: they belong to every lock at once.
//
// The Slim locks (NewSlimBravo/NewSlimEpoch) do NOT implement the
// seam: their contract is a 16-byte footprint, and a stats pointer
// would double it.  Observe a Slim grid one level up, through
// rwmap.Map.Stats and its per-stripe heatmap.
type LockStats struct {
	// Read-path line: bumped by every instrumented read acquisition.
	ReadAcquires  atomic.Uint64 // completed read passages
	ReadContended atomic.Uint64 // read passages that found their gate closed and waited
	sampleCtr     atomic.Uint64 // latency-sampling clock (both classes)
	_             [40]byte

	// Write-path line: bumped by write acquisitions and wrapper events.
	WriteAcquires  atomic.Uint64 // completed write passages (token and closure paths)
	WriteContended atomic.Uint64 // write acquisitions that waited at the arbitration layer
	TrySheds       atomic.Uint64 // TryLock/TryRLock attempts that reported busy
	CtxSheds       atomic.Uint64 // LockCtx/RLockCtx/WriteCtx attempts aborted by their context
	Revocations    atomic.Uint64 // Bravo read-bias revocations
	ReArms         atomic.Uint64 // Bravo read-bias re-arms (slow-path budget expiry)
	EpochAdvances  atomic.Uint64 // epoch global advances (one per writer entry)
	GraceWaits     atomic.Uint64 // grace periods waited out by writers

	// Arbitration/waiting line: queue geometry and parking traffic.
	QueueDepth    atomic.Int64  // writers currently holding or queued at the arbitration layer
	QueueDepthMax atomic.Uint64 // high-water mark of QueueDepth
	Batches       atomic.Uint64 // flat-combining batches retired
	BatchMax      atomic.Uint64 // largest batch retired
	CombinedOps   atomic.Uint64 // closure writes retired through combining batches
	Parks         atomic.Uint64 // goroutines that actually parked on an owned waitCell
	Unparks       atomic.Uint64 // parked goroutines that woke
	Stalls        atomic.Uint64 // stall-watchdog firings (see the rwstats package)

	// Reclamation line: epoch version accounting plus the watchdog's
	// grace register and the writer-hold sampling register.
	RetiredVersions     atomic.Uint64 // versions handed to Retire
	ReclaimedVersions   atomic.Uint64 // versions swept after their grace period
	RetainedVersionsMax atomic.Uint64 // high-water count of retired-not-yet-reclaimed versions
	RetainedBytesMax    atomic.Uint64 // high-water bytes of retired-not-yet-reclaimed versions
	GraceActiveNS       atomic.Int64  // UnixNano when the in-progress grace wait began; 0 when none
	holdStartNS         atomic.Int64  // sampled writer's hold-start stamp (write mode is exclusive)
	_                   [16]byte

	// Cold: sampled latency histograms, shared-mutex guarded — only
	// 1-in-statsSampleEvery passages reach them.
	mu        sync.Mutex
	readWait  stats.Histogram
	writeWait stats.Histogram
	writeHold stats.Histogram
}

// WithStats installs st as the lock's counter block.  The same block
// may be passed to several constructors to aggregate them.  Honored
// by every full lock in the package (the MW*/SW* locks, their
// Bravo/Epoch wrappers, and the arbitration variants); the 16-byte
// Slim locks do not take options and do not implement the seam.
func WithStats(st *LockStats) Option {
	return func(o *options) { o.stats = st }
}

// nowNanos is the sampling clock: wall-clock nanoseconds, read only
// on sampled (1-in-statsSampleEvery) passages and in watchdog-facing
// registers, never on the per-op path.
func nowNanos() int64 { return time.Now().UnixNano() }

// statsMax lifts c to at least v (the lock-free high-water update).
func statsMax(c *atomic.Uint64, v uint64) {
	for {
		old := c.Load()
		if v <= old || c.CompareAndSwap(old, v) {
			return
		}
	}
}

// sampleNow reports whether this acquisition should record latency.
func (s *LockStats) sampleNow() bool {
	return s.sampleCtr.Add(1)&(statsSampleEvery-1) == 0
}

func (s *LockStats) recordReadWait(ns int64) {
	s.mu.Lock()
	s.readWait.Record(ns)
	s.mu.Unlock()
}

func (s *LockStats) recordWriteWait(ns int64) {
	s.mu.Lock()
	s.writeWait.Record(ns)
	s.mu.Unlock()
}

func (s *LockStats) recordWriteHold(ns int64) {
	s.mu.Lock()
	s.writeHold.Record(ns)
	s.mu.Unlock()
}

// LatencySummary condenses one sampled latency histogram for export.
type LatencySummary struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50_ns"`
	P90   int64 `json:"p90_ns"`
	P99   int64 `json:"p99_ns"`
	Max   int64 `json:"max_ns"`
}

func summarize(h *stats.Histogram) LatencySummary {
	if h.N() == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: h.N(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// LockStatsSnapshot is a point-in-time copy of a LockStats block,
// safe to serialize.  Each counter is read with one atomic load — no
// torn 64-bit reads on any layout — so every individual value is
// exact, and because every counter is monotone (QueueDepth and
// GraceActiveNS excepted, both instantaneous gauges), a snapshot
// taken under traffic is a consistent lower bound: invariants like
// ReclaimedVersions <= RetiredVersions hold in every snapshot.
//
// The json tags are the rwbench -metrics schema (additive fields
// under schema_version 2) and the rwstats exporters' field names.
type LockStatsSnapshot struct {
	ReadAcquires   uint64 `json:"read_acquires"`
	ReadContended  uint64 `json:"read_contended"`
	WriteAcquires  uint64 `json:"write_acquires"`
	WriteContended uint64 `json:"write_contended"`
	TrySheds       uint64 `json:"try_sheds"`
	CtxSheds       uint64 `json:"ctx_sheds"`
	Revocations    uint64 `json:"revocations"`
	ReArms         uint64 `json:"re_arms"`
	EpochAdvances  uint64 `json:"epoch_advances"`
	GraceWaits     uint64 `json:"grace_waits"`

	QueueDepth    int64  `json:"queue_depth"`
	QueueDepthMax uint64 `json:"queue_depth_max"`
	Batches       uint64 `json:"batches"`
	BatchMax      uint64 `json:"batch_max"`
	CombinedOps   uint64 `json:"combined_ops"`
	Parks         uint64 `json:"parks"`
	Unparks       uint64 `json:"unparks"`
	Stalls        uint64 `json:"stalls"`

	RetiredVersions     uint64 `json:"retired_versions"`
	ReclaimedVersions   uint64 `json:"reclaimed_versions"`
	RetainedVersionsMax uint64 `json:"retained_versions_max"`
	RetainedBytesMax    uint64 `json:"retained_bytes_max"`

	ReadWait  LatencySummary `json:"read_wait"`
	WriteWait LatencySummary `json:"write_wait"`
	WriteHold LatencySummary `json:"write_hold"`
}

// Snapshot copies the block.  Safe to call at any time from any
// goroutine, including while the lock is under full traffic.
//
// Load order matters for mid-traffic coherence: for every invariant
// pair "subset <= superset" whose write sites increment the superset
// counter first (read contention, parking, reclamation, combining),
// the snapshot loads the SUBSET counter first.  With both orders
// fixed, those inequalities hold in every snapshot, not just at
// quiescence.
func (s *LockStats) Snapshot() LockStatsSnapshot {
	readContended := s.ReadContended.Load()
	unparks := s.Unparks.Load()
	reclaimed := s.ReclaimedVersions.Load()
	retainedVMax := s.RetainedVersionsMax.Load()
	retainedBMax := s.RetainedBytesMax.Load()
	batchMax := s.BatchMax.Load()
	batches := s.Batches.Load()
	snap := LockStatsSnapshot{
		ReadAcquires:   s.ReadAcquires.Load(),
		ReadContended:  readContended,
		WriteAcquires:  s.WriteAcquires.Load(),
		WriteContended: s.WriteContended.Load(),
		TrySheds:       s.TrySheds.Load(),
		CtxSheds:       s.CtxSheds.Load(),
		Revocations:    s.Revocations.Load(),
		ReArms:         s.ReArms.Load(),
		EpochAdvances:  s.EpochAdvances.Load(),
		GraceWaits:     s.GraceWaits.Load(),

		QueueDepth:    s.QueueDepth.Load(),
		QueueDepthMax: s.QueueDepthMax.Load(),
		Batches:       batches,
		BatchMax:      batchMax,
		CombinedOps:   s.CombinedOps.Load(),
		Parks:         s.Parks.Load(),
		Unparks:       unparks,
		Stalls:        s.Stalls.Load(),

		RetiredVersions:     s.RetiredVersions.Load(),
		ReclaimedVersions:   reclaimed,
		RetainedVersionsMax: retainedVMax,
		RetainedBytesMax:    retainedBMax,
	}
	s.mu.Lock()
	snap.ReadWait = summarize(&s.readWait)
	snap.WriteWait = summarize(&s.writeWait)
	snap.WriteHold = summarize(&s.writeHold)
	s.mu.Unlock()
	return snap
}

// CheckCoherence verifies the snapshot's cross-counter invariants.
// The full set is guaranteed at quiescence (no acquisition in
// flight); the harness asserts it after every instrumented scenario
// cell and the rwbench validator re-asserts it on serialized records,
// so the instrumentation is itself tested.  A subset — the pairs
// whose write sites and Snapshot's load order are both arranged for
// it (reclaimed <= retired, unparks <= parks, read contention,
// batch accounting, quantile ordering) — additionally holds in every
// mid-traffic snapshot; the write-side invariants involving counters
// split across layers (e.g. write_contended, counted at the
// arbitration layer before the wrapper counts the acquisition) can be
// transiently ahead by the number of in-flight writers.
func (s *LockStatsSnapshot) CheckCoherence() error {
	sheds := s.TrySheds + s.CtxSheds
	if s.ReadContended > s.ReadAcquires+sheds {
		return fmt.Errorf("read_contended %d > read_acquires %d + sheds %d", s.ReadContended, s.ReadAcquires, sheds)
	}
	if s.WriteContended > s.WriteAcquires+sheds {
		return fmt.Errorf("write_contended %d > write_acquires %d + sheds %d", s.WriteContended, s.WriteAcquires, sheds)
	}
	// A revocation that sticks is followed by a write acquisition —
	// unless the attempt shed after revoking (ctx cancelled between
	// the revoke and the inner grant).
	if s.Revocations > s.WriteAcquires+sheds {
		return fmt.Errorf("revocations %d > write_acquires %d + sheds %d", s.Revocations, s.WriteAcquires, sheds)
	}
	if s.ReclaimedVersions > s.RetiredVersions {
		return fmt.Errorf("reclaimed_versions %d > retired_versions %d", s.ReclaimedVersions, s.RetiredVersions)
	}
	if s.RetainedVersionsMax > s.RetiredVersions {
		return fmt.Errorf("retained_versions_max %d > retired_versions %d", s.RetainedVersionsMax, s.RetiredVersions)
	}
	if s.GraceWaits > 0 && s.EpochAdvances == 0 {
		return fmt.Errorf("grace_waits %d with zero epoch_advances", s.GraceWaits)
	}
	if s.BatchMax > 0 && s.Batches == 0 {
		return fmt.Errorf("batch_max %d with zero batches", s.BatchMax)
	}
	if s.BatchMax > s.CombinedOps {
		return fmt.Errorf("batch_max %d > combined_ops %d", s.BatchMax, s.CombinedOps)
	}
	if s.Batches > s.CombinedOps {
		return fmt.Errorf("batches %d > combined_ops %d", s.Batches, s.CombinedOps)
	}
	if s.Unparks > s.Parks {
		return fmt.Errorf("unparks %d > parks %d", s.Unparks, s.Parks)
	}
	if s.QueueDepth < 0 {
		return fmt.Errorf("queue_depth %d < 0", s.QueueDepth)
	}
	if uint64(s.QueueDepth) > s.QueueDepthMax {
		return fmt.Errorf("queue_depth %d > queue_depth_max %d", s.QueueDepth, s.QueueDepthMax)
	}
	for _, h := range []struct {
		name string
		l    LatencySummary
	}{{"read_wait", s.ReadWait}, {"write_wait", s.WriteWait}, {"write_hold", s.WriteHold}} {
		if h.l.Count == 0 {
			if h.l.P50 != 0 || h.l.P99 != 0 || h.l.Max != 0 {
				return fmt.Errorf("%s: nonzero quantiles with zero count", h.name)
			}
			continue
		}
		if h.l.P50 > h.l.P90 || h.l.P90 > h.l.P99 || h.l.P99 > h.l.Max {
			return fmt.Errorf("%s: unordered quantiles p50=%d p90=%d p99=%d max=%d", h.name, h.l.P50, h.l.P90, h.l.P99, h.l.Max)
		}
	}
	return nil
}
