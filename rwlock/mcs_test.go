package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Tests for the writer-arbitration layer: the unbounded MCS queue
// mutex itself, qnode recycling, and the writer-churn shape the
// bounded API made impossible — thousands of short-lived goroutines
// each performing exactly one write passage.  CI runs this package
// under -race, so any CS overlap is also a detected data race.

// TestMCSMutualExclusion: the queue mutex admits exactly one holder
// under heavy contention, under both wait strategies.
func TestMCSMutualExclusion(t *testing.T) {
	for _, strat := range strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			l := newMCS(strat, nil)
			var inside atomic.Int32
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < 1000; k++ {
						s := l.acquire()
						if v := inside.Add(1); v != 1 {
							t.Errorf("mcs admitted %d holders", v)
						}
						inside.Add(-1)
						l.release(s)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestMCSRecyclesNodes: steady-state passages must not allocate — the
// qnode comes back from the pool, not the heap.  GC may clear the
// pool mid-run (sync.Pool's contract), so the assertion is an average
// well under one allocation per passage rather than exactly zero.
func TestMCSRecyclesNodes(t *testing.T) {
	l := newMCS(SpinYield, nil)
	s := l.acquire() // warm the pool
	l.release(s)
	if n := testing.AllocsPerRun(500, func() {
		s := l.acquire()
		l.release(s)
	}); n > 0.5 {
		t.Fatalf("uncontended MCS passage allocates %.2f objects (qnodes not recycled)", n)
	}
}

// TestMCSHandoffRecycling: a released node must be reusable while its
// former successor still holds the lock — the recycle-after-grant
// path, driven deterministically: A holds, B queues, A releases
// (recycling A's node), and the lock keeps working through many laps.
func TestMCSHandoffRecycling(t *testing.T) {
	for _, strat := range strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			l := newMCS(strat, nil)
			var held atomic.Int32
			for lap := 0; lap < 200; lap++ {
				a := l.acquire()
				queued := make(chan wslot)
				go func() {
					s := l.acquire() // links behind a, waits for the grant
					if v := held.Add(1); v != 1 {
						t.Errorf("lap %d: %d holders after handoff", lap, v)
					}
					held.Add(-1)
					queued <- s
				}()
				l.release(a) // hands off to the queued goroutine, recycles a's node
				l.release(<-queued)
			}
		})
	}
}

// TestWriterChurn is the satellite stress: at least 1000 DISTINCT
// goroutines, each performing exactly one Lock/Unlock, per lock and
// per wait strategy.  The bounded constructors of the old API could
// not express this shape at all (1000 concurrent write attempts would
// need maxWriters=1000 decided up front); the MCS arbitration takes
// it in stride, and the bounded variant survives it too because its
// admission gate blocks rather than corrupts.
func TestWriterChurn(t *testing.T) {
	const churners = 1200
	churnLocks := func(strat WaitStrategy) map[string]RWLock {
		o := WithWaitStrategy(strat)
		return map[string]RWLock{
			"MWSF":         NewMWSF(o),
			"MWRP":         NewMWRP(o),
			"MWWP":         NewMWWP(o),
			"MWSF/bounded": NewMWSF(o, WithBoundedWriters(8)),
			"Bravo(MWSF)":  NewBravoMWSF(o),
		}
	}
	for _, strat := range strategies() {
		for name, l := range churnLocks(strat) {
			l := l
			t.Run(name+"/"+strat.String(), func(t *testing.T) {
				t.Parallel()
				var data int64 // plain, guarded only by l: -race checks exclusion
				var wg sync.WaitGroup
				for i := 0; i < churners; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						tok := l.Lock()
						data++
						l.Unlock(tok)
					}()
				}
				wg.Wait()
				if data != churners {
					t.Fatalf("data = %d, want %d (lost write passages)", data, churners)
				}
			})
		}
	}
}

// TestMCSSlotCrossGoroutineTransfer: the MCS slot rides in the WToken,
// so a write acquired on one goroutine may be released on another —
// and that remote release is the handoff site for the next queued
// writer, so the transfer must not strand the queue.
func TestMCSSlotCrossGoroutineTransfer(t *testing.T) {
	for _, strat := range strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			l := NewMWSF(WithWaitStrategy(strat))
			const handoffs = 300
			toks := make(chan WToken)
			// Acquirer goroutine: locks, ships the token (with its MCS
			// qnode) to the main goroutine, which releases it.  A third
			// party keeps the queue non-empty so every remote release
			// performs a real MCS handoff.
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < handoffs; i++ {
					tok := l.Lock()
					l.Unlock(tok)
				}
			}()
			go func() {
				for i := 0; i < handoffs; i++ {
					toks <- l.Lock()
				}
			}()
			for i := 0; i < handoffs; i++ {
				l.Unlock(<-toks) // released off-goroutine
			}
			<-done
		})
	}
}

// TestBoundedWritersOptionValidation: the bounded-arbitration option
// rejects a nonsensical capacity loudly.
func TestBoundedWritersOptionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithBoundedWriters(0) did not panic")
		}
	}()
	WithBoundedWriters(0)
}

// TestArbitrationSelection: the option actually switches the layer.
func TestArbitrationSelection(t *testing.T) {
	if _, ok := NewMWSF().m.(*mcsLock); !ok {
		t.Fatalf("default arbitration is %T, want *mcsLock", NewMWSF().m)
	}
	l := NewMWSF(WithBoundedWriters(3))
	a, ok := l.m.(*AndersonLock)
	if !ok {
		t.Fatalf("bounded arbitration is %T, want *AndersonLock", l.m)
	}
	if a.Capacity() != 3 {
		t.Fatalf("bounded capacity = %d, want 3", a.Capacity())
	}
}
