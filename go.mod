module rwsync

go 1.24
