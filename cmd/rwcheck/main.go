// Command rwcheck verifies the paper's properties (E5/E6 in
// DESIGN.md).  It model-checks bounded configurations of every
// algorithm — including the paper's Appendix invariants — and runs
// monitored random stress schedules with enabledness probes.  It also
// model-checks the deliberately broken variants of Sections 3.3 and
// 4.3, which MUST fail: finding their counterexamples reproduces the
// paper's subtle-feature arguments.
//
// Usage:
//
//	rwcheck [-attempts N] [-seeds N] [-skip-mc] [-witness] [-native=false]
//
// The native section (on by default) hammers every lock in the native
// registry — including the BRAVO wrappers, which have no simulator
// model because their fast path is about real cache traffic — with
// real goroutines and checks the exclusion invariant directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"rwsync/internal/ccsim"
	"rwsync/internal/check"
	"rwsync/internal/core"
	"rwsync/internal/harness"
	"rwsync/internal/mc"
	"rwsync/rwlock"
)

// splitLines splits s into lines, dropping a trailing empty line.
func splitLines(s string) []string {
	lines := strings.Split(s, "\n")
	for len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rwcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rwcheck", flag.ContinueOnError)
	attempts := fs.Int("attempts", 2, "attempts per process for model checking")
	seeds := fs.Int("seeds", 16, "random stress schedules per system")
	skipMC := fs.Bool("skip-mc", false, "skip exhaustive model checking")
	witness := fs.Bool("witness", false, "print counterexample schedules for broken variants")
	native := fs.Bool("native", true, "stress the native locks (incl. BRAVO wrappers) with real goroutines")
	nativeIters := fs.Int("native-iters", 1500, "operations per goroutine in the native stress")
	if err := fs.Parse(args); err != nil {
		return err
	}

	type sysCase struct {
		sys    *core.System
		config string
	}
	good := []sysCase{
		{core.NewFig1System(2), "1 writer + 2 readers"},
		{core.NewFig2System(2), "1 writer + 2 readers"},
		{core.NewMWSFSystem(2, 1), "2 writers + 1 reader"},
		{core.NewMWRPSystem(2, 1), "2 writers + 1 reader"},
		{core.NewMWWPSystem(2, 1), "2 writers + 1 reader"},
		{core.NewAndersonSystem(3), "3 processes"},
		{core.NewCentralizedSystem(2, 2), "2 writers + 2 readers"},
		{core.NewPFTicketSystem(2, 2), "2 writers + 2 readers"},
		{core.NewTaskFairSystem(2, 2), "2 writers + 2 readers"},
		{core.NewTournamentSystem(3), "3 processes"},
	}
	broken := []sysCase{
		{core.NewFig1BrokenSystem(2), "Section 3.3: writer skips the exit-section wait"},
		{core.NewFig2BrokenSystem(2, core.Fig2BreakNoLines2022), "Section 4.3(A): reader skips lines 20-22"},
		{core.NewFig2BrokenSystem(2, core.Fig2BreakDirectCAS), "Section 4.3(B): Promote CASes true directly"},
	}

	failures := 0

	if !*skipMC {
		fmt.Fprintln(out, "== E5: exhaustive model checking (P1 + appendix invariants + stuck states) ==")
		for _, c := range good {
			r, err := c.sys.NewRunner(*attempts)
			if err != nil {
				return err
			}
			t0 := time.Now()
			res := mc.Explore(r, mc.Options{
				Attempts:    *attempts,
				Invariant:   c.sys.Invariant,
				DetectStuck: true,
			})
			status := "OK"
			if res.Violation != nil {
				status = "FAIL: " + res.Violation.Error()
				failures++
			} else if res.Truncated {
				status = "TRUNCATED"
				failures++
			}
			fmt.Fprintf(out, "  %-22s %-28s %9d states  %8s  %s\n",
				c.sys.Name, c.config, res.States, time.Since(t0).Round(time.Millisecond), status)
		}

		fmt.Fprintln(out, "\n== E6: broken variants (violations EXPECTED — reproducing Sections 3.3/4.3) ==")
		for _, c := range broken {
			r, err := c.sys.NewRunner(3)
			if err != nil {
				return err
			}
			res := mc.Explore(r, mc.Options{Attempts: 3, KeepWitness: *witness})
			if res.Violation == nil {
				fmt.Fprintf(out, "  %-26s UNEXPECTED: no violation found (%d states)\n", c.sys.Name, res.States)
				failures++
				continue
			}
			fmt.Fprintf(out, "  %-26s violation found as the paper predicts: %v\n", c.sys.Name, res.Violation)
			fmt.Fprintf(out, "  %-26s (%s)\n", "", c.config)
			if *witness {
				fmt.Fprintf(out, "    counterexample schedule (%d steps):\n", len(res.Witness))
				for _, line := range splitLines(mc.FormatWitness(r, res.Witness, 3)) {
					fmt.Fprintf(out, "    %s\n", line)
				}
			}
		}
	}

	fmt.Fprintln(out, "\n== E5: monitored random stress (P1-P5, RP1/WP1, probes) ==")
	for _, c := range good {
		bad := 0
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			r, err := c.sys.NewRunner(5)
			if err != nil {
				return err
			}
			res := check.RunChecked(r, check.RunOpts{
				Attempts:     5,
				Sched:        ccsim.NewRandomSched(seed),
				EnabledBound: c.sys.EnabledBound,
				FIFE:         c.sys.EnabledBound > 0,
				Invariant:    c.sys.Invariant,
				SectionBound: 64,
			})
			tr := res.Trace.Attempts()
			if v := res.FirstViolation(); v != nil {
				fmt.Fprintf(out, "  %-22s seed=%d FAIL: %v\n", c.sys.Name, seed, v)
				bad++
				continue
			}
			switch c.sys.Name {
			case "fig2-swrp", "mwrp":
				if v := check.ReaderPriority(tr); v != nil {
					fmt.Fprintf(out, "  %-22s seed=%d FAIL: %v\n", c.sys.Name, seed, v)
					bad++
				}
			case "fig1-swwp", "fig4-mwwp":
				if v := check.WriterPriority(tr); v != nil {
					fmt.Fprintf(out, "  %-22s seed=%d FAIL: %v\n", c.sys.Name, seed, v)
					bad++
				}
			}
		}
		if bad == 0 {
			fmt.Fprintf(out, "  %-22s %d seeds OK\n", c.sys.Name, *seeds)
		} else {
			failures += bad
		}
	}

	if *native {
		if *nativeIters < 0 {
			*nativeIters = 0
		}
		fmt.Fprintln(out, "\n== E10: native lock exclusion stress (real goroutines; incl. BRAVO wrappers) ==")
		builders := harness.NativeLocks()
		for _, name := range harness.LockNames() {
			if err := nativeHammer(builders[name](), 4, 4, *nativeIters); err != nil {
				fmt.Fprintf(out, "  %-22s FAIL: %v\n", name, err)
				failures++
			} else {
				fmt.Fprintf(out, "  %-22s OK (%d writers x %d readers x %d ops)\n", name, 4, 4, *nativeIters)
			}
		}
	}

	if failures > 0 {
		return fmt.Errorf("%d check(s) failed", failures)
	}
	fmt.Fprintln(out, "\nall checks passed")
	return nil
}

// nativeHammer drives writers and readers through a native lock.
// Writers mutate a plain integer through a transiently odd state;
// readers must only ever observe even values, and at the end every
// writer increment must be present.  Both failures indicate a mutual-
// exclusion violation.  (Under `go test -race` this also lets the race
// detector prove exclusion: any CS overlap is a detected data race.)
func nativeHammer(l rwlock.RWLock, writers, readers, iters int) error {
	var data int64 // deliberately plain, guarded only by l
	var sawOdd, lost bool
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tok := l.Lock()
				data++ // odd: no reader may observe this
				data++
				l.Unlock(tok)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tok := l.RLock()
				odd := data%2 != 0
				l.RUnlock(tok)
				if odd {
					mu.Lock()
					sawOdd = true
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	lost = data != int64(2*writers*iters)
	switch {
	case sawOdd:
		return fmt.Errorf("reader observed a writer mid-update (P1 violated)")
	case lost:
		return fmt.Errorf("lost writer updates: data = %d, want %d", data, 2*writers*iters)
	}
	return nil
}
