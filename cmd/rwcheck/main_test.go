package main

import (
	"strings"
	"testing"
)

func TestRunStressOnly(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-skip-mc", "-seeds", "2", "-native=false"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "monitored random stress") {
		t.Fatalf("missing stress section:\n%s", out)
	}
	if !strings.Contains(out, "all checks passed") {
		t.Fatalf("checks did not pass:\n%s", out)
	}
	for _, sys := range []string{"fig1-swwp", "fig2-swrp", "mwsf", "mwrp", "fig4-mwwp", "pfticket-rw"} {
		if !strings.Contains(out, sys) {
			t.Fatalf("system %s missing from output:\n%s", sys, out)
		}
	}
	if strings.Contains(out, "native lock exclusion stress") {
		t.Fatalf("-native=false still ran the native section:\n%s", out)
	}
}

func TestRunNativeStress(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-skip-mc", "-seeds", "1", "-native-iters", "300"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "native lock exclusion stress") {
		t.Fatalf("missing native stress section:\n%s", out)
	}
	for _, name := range []string{"Bravo(MWSF)", "Bravo(MWRP)", "Bravo(MWWP)", "sync.RWMutex"} {
		if !strings.Contains(out, name) {
			t.Fatalf("native stress missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "all checks passed") {
		t.Fatalf("native stress failed:\n%s", out)
	}
}

func TestRunFullWithWitness(t *testing.T) {
	if testing.Short() {
		t.Skip("full model checking in -short mode")
	}
	var b strings.Builder
	if err := run([]string{"-seeds", "1", "-attempts", "2", "-witness"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "exhaustive model checking") {
		t.Fatalf("missing MC section:\n%s", out)
	}
	if strings.Count(out, "violation found as the paper predicts") != 3 {
		t.Fatalf("expected all 3 broken variants to fail:\n%s", out)
	}
	if !strings.Contains(out, "counterexample schedule") || !strings.Contains(out, "final CS occupancy") {
		t.Fatalf("witness not printed:\n%s", out)
	}
}

func TestSplitLines(t *testing.T) {
	got := splitLines("a\nb\n")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("splitLines = %v", got)
	}
	if len(splitLines("")) != 0 {
		t.Fatal("empty input should yield no lines")
	}
}
