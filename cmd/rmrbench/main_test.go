package main

import (
	"strings"
	"testing"
)

func TestRunSingleAlgo(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-algo", "fig1-swwp", "-attempts", "4"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E1: fig1-swwp") {
		t.Fatalf("missing E1 table:\n%s", out)
	}
	if strings.Contains(out, "E2:") {
		t.Fatalf("-algo should filter to one experiment:\n%s", out)
	}
}

func TestRunUnknownAlgo(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-algo", "nope"}, &b)
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("expected unknown-algorithm error, got %v", err)
	}
	// The error lists the available names.
	if !strings.Contains(err.Error(), "fig1-swwp") {
		t.Fatalf("error should enumerate algorithms: %v", err)
	}
}

func TestRunMarkdown(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-algo", "mwsf", "-attempts", "2", "-markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| writers | readers |") {
		t.Fatalf("markdown output malformed:\n%s", b.String())
	}
}

func TestRunDSM(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-algo", "fig2-swrp", "-attempts", "2", "-dsm"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "E9:") {
		t.Fatalf("-dsm did not add E9 tables:\n%s", b.String())
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	var b strings.Builder
	if err := run([]string{"-attempts", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1:", "E2:", "E3a:", "E3b:", "E3c:", "E4a:", "E4b:", "E4c:"} {
		if !strings.Contains(b.String(), id) {
			t.Fatalf("missing experiment %s", id)
		}
	}
}
