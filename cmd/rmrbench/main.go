// Command rmrbench regenerates the RMR-complexity experiments (E1-E4
// in DESIGN.md) on the cache-coherent simulator: it executes the
// paper's algorithms and the baselines across process-count sweeps
// and prints RMRs per passage by role, demonstrating Theorems 1-5
// (flat, constant rows) against the growing baseline rows.
//
// Usage:
//
//	rmrbench [-attempts N] [-seed S] [-algo name] [-markdown]
//
// With no -algo, all experiments run in DESIGN.md order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"rwsync/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmrbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rmrbench", flag.ContinueOnError)
	attempts := fs.Int("attempts", 16, "attempts per process at each sweep point")
	seed := fs.Int64("seed", 1, "scheduler seed")
	algo := fs.String("algo", "", "run a single algorithm (fig1-swwp, fig2-swrp, mwsf, mwrp, mwwp, centralized, pfticket, tournament)")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	dsm := fs.Bool("dsm", false, "also run E9: the same sweeps under the DSM model (expect unbounded growth)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	type experiment struct {
		id     string
		name   string
		points [][2]int
	}
	experiments := []experiment{
		{"E1", "fig1-swwp", harness.SingleWriterPoints()},
		{"E2", "fig2-swrp", harness.SingleWriterPoints()},
		{"E3a", "mwsf", harness.MultiWriterPoints()},
		{"E3b", "mwrp", harness.MultiWriterPoints()},
		{"E3c", "mwwp", harness.MultiWriterPoints()},
		{"E4a", "centralized", harness.MultiWriterPoints()},
		{"E4b", "tournament", harness.MultiWriterPoints()},
		{"E4c", "pfticket", harness.MultiWriterPoints()},
	}
	builders := harness.Builders()

	if *algo != "" {
		if _, ok := builders[*algo]; !ok {
			names := make([]string, 0, len(builders))
			for n := range builders {
				names = append(names, n)
			}
			sort.Strings(names)
			return fmt.Errorf("unknown algorithm %q (have %v)", *algo, names)
		}
		var kept []experiment
		for _, e := range experiments {
			if e.name == *algo {
				kept = append(kept, e)
			}
		}
		experiments = kept
	}

	for _, e := range experiments {
		rows, err := harness.RMRSweep(builders[e.name], e.points, *attempts, *seed)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("%s: %s — RMRs per passage (CC model, %d attempts/proc, seed %d)",
			e.id, e.name, *attempts, *seed)
		t := harness.RMRTable(title, rows)
		if *markdown {
			fmt.Fprintln(out, t.Markdown())
		} else {
			fmt.Fprintln(out, t.Render())
		}
	}

	if *dsm {
		for _, name := range []string{"fig1-swwp", "fig2-swrp"} {
			rows, err := harness.RMRSweepDSM(builders[name], harness.SingleWriterPoints(), *attempts, *seed)
			if err != nil {
				return err
			}
			title := fmt.Sprintf("E9: %s under the DSM model — the O(1) bound is CC-specific "+
				"(Danek-Hadzilacos: sublinear DSM is impossible)", name)
			t := harness.RMRTable(title, rows)
			if *markdown {
				fmt.Fprintln(out, t.Markdown())
			} else {
				fmt.Fprintln(out, t.Render())
			}
		}
	}
	return nil
}
