package main

import (
	"strings"
	"testing"
)

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseIntList = %v", got)
	}
	if _, err := parseIntList("1,x"); err == nil {
		t.Fatal("expected error for non-integer")
	}
	got, err = parseIntList("4,")
	if err != nil || len(got) != 1 {
		t.Fatalf("trailing comma: %v %v", got, err)
	}
}

func TestRunQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E7: native throughput") {
		t.Fatalf("missing E7:\n%s", out)
	}
	if !strings.Contains(out, "E8:") {
		t.Fatalf("missing E8:\n%s", out)
	}
	if !strings.Contains(out, "sync.RWMutex") {
		t.Fatalf("missing baseline column:\n%s", out)
	}
}

func TestRunMarkdownOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "1", "-markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| workers | read% |") {
		t.Fatalf("markdown table malformed:\n%s", b.String())
	}
}

func TestRunBadWorkers(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-workers", "abc"}, &b); err == nil {
		t.Fatal("expected error for bad -workers")
	}
}

func TestRunLocksSubset(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2",
		"-locks", "MWSF,Bravo(MWSF),sync.RWMutex"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{"MWSF", "Bravo(MWSF)", "sync.RWMutex"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing selected lock %s:\n%s", name, out)
		}
	}
	if strings.Contains(out, "TaskFairRW") {
		t.Fatalf("unselected lock leaked into the sweep:\n%s", out)
	}
}

func TestRunUnknownLock(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-locks", "NoSuchLock"}, &b); err == nil ||
		!strings.Contains(err.Error(), "NoSuchLock") {
		t.Fatalf("expected unknown-lock error, got %v", err)
	}
}
