package main

import (
	"encoding/json"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rwsync/internal/harness"
)

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseIntList = %v", got)
	}
	if _, err := parseIntList("1,x"); err == nil {
		t.Fatal("expected error for non-integer")
	}
	got, err = parseIntList("4,")
	if err != nil || len(got) != 1 {
		t.Fatalf("trailing comma: %v %v", got, err)
	}
}

func TestRunQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E7: native throughput") {
		t.Fatalf("missing E7:\n%s", out)
	}
	if !strings.Contains(out, "E8:") {
		t.Fatalf("missing E8:\n%s", out)
	}
	if !strings.Contains(out, "sync.RWMutex") {
		t.Fatalf("missing baseline column:\n%s", out)
	}
}

func TestRunMarkdownOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "1", "-markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| workers | read% |") {
		t.Fatalf("markdown table malformed:\n%s", b.String())
	}
}

func TestRunBadWorkers(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-workers", "abc"}, &b); err == nil {
		t.Fatal("expected error for bad -workers")
	}
}

func TestRunLocksSubset(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2",
		"-locks", "MWSF,Bravo(MWSF),sync.RWMutex"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{"MWSF", "Bravo(MWSF)", "sync.RWMutex"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing selected lock %s:\n%s", name, out)
		}
	}
	if strings.Contains(out, "TaskFairRW") {
		t.Fatalf("unselected lock leaked into the sweep:\n%s", out)
	}
}

func TestRunUnknownLock(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-locks", "NoSuchLock"}, &b)
	if err == nil || !strings.Contains(err.Error(), "NoSuchLock") {
		t.Fatalf("expected unknown-lock error, got %v", err)
	}
	// The listing must name the epoch variants and print sorted — the
	// reader is scanning it for one name, not browsing the families.
	if !strings.Contains(err.Error(), "MWSF/epoch") {
		t.Fatalf("unknown-lock listing misses the epoch variants: %v", err)
	}
	if !sort.StringsAreSorted(harness.SortedLockNames()) {
		t.Fatal("SortedLockNames is not sorted")
	}
}

func TestRunParkVariantSelectable(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2",
		"-locks", "MWSF,MWSF/park"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "MWSF/park") {
		t.Fatalf("park variant missing from sweep:\n%s", b.String())
	}
}

func TestRunBoundedVariantSelectable(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2",
		"-locks", "MWSF,MWSF/bounded,MWSF/bounded/park"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"MWSF/bounded", "MWSF/bounded/park"} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("bounded variant %s missing from sweep:\n%s", name, b.String())
		}
	}
}

func TestRunScenarioWriterChurn(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-scenario", "writer-churn"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"writer churn", "MWSF/park", "MWSF/bounded/park",
		"MWSF/combine/park", "sync.RWMutex", "wr wait p99", "batch p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("writer-churn output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCombineVariantSelectable(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2",
		"-locks", "MWSF,MWSF/combine,MWSF/combine/park"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"MWSF/combine", "MWSF/combine/park"} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("combine variant %s missing from sweep:\n%s", name, b.String())
		}
	}
}

func TestRunScenarioCombineBatch(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "32", "-scenario", "combine-batch"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"flat-combining batches", "MWSF/park",
		"MWSF/bounded/park", "MWSF/combine/park", "sync.RWMutex",
		"batch p50", "batch p99", "batch max", "age p50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("combine-batch output missing %q:\n%s", want, out)
		}
	}
}

// TestRunRejectsEmptySelections: a -locks or -scenario value that
// parses to zero names must be rejected with the valid names, not
// silently swept as something else (the default set, or nothing).
func TestRunRejectsEmptySelections(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-locks", ","}, &b)
	if err == nil || !strings.Contains(err.Error(), "selects no lock names") ||
		!strings.Contains(err.Error(), "MWSF/combine") {
		t.Fatalf("empty -locks error = %v, want rejection listing the registry", err)
	}
	err = run([]string{"-scenario", ","}, &b)
	if err == nil || !strings.Contains(err.Error(), "selects nothing") ||
		!strings.Contains(err.Error(), "combine-batch") {
		t.Fatalf("empty -scenario error = %v, want rejection listing the scenarios", err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2", "-json",
		"-oversub", "-oversub-workers", "8", "-oversub-duration", "20ms",
		"-locks", "MWSF,MWSF/park,sync.RWMutex"}, &b); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, b.String())
	}
	if rep.GOMAXPROCS <= 0 || len(rep.Locks) != 3 {
		t.Fatalf("metadata missing: %+v", rep)
	}
	if len(rep.Throughput) == 0 || len(rep.Priority) == 0 || len(rep.Oversubscribed) == 0 {
		t.Fatalf("sweep points missing: tp=%d prio=%d oversub=%d",
			len(rep.Throughput), len(rep.Priority), len(rep.Oversubscribed))
	}
	for _, p := range rep.Oversubscribed {
		if p.Workers != 8 || p.OpsPerSec <= 0 {
			t.Fatalf("bad oversubscribed point %+v", p)
		}
	}
	// Tables must not leak into machine-readable output.
	if strings.Contains(b.String(), "E7:") {
		t.Fatalf("table text mixed into -json output:\n%s", b.String())
	}
}

func TestRunScenarioSelection(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-scenario", "latency-grid,starvation",
		"-locks", "MWSF,MWRP"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"latency grid", "starvation", "rd wait p99.9", "MWRP"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scenario output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "E7: native throughput") {
		t.Fatalf("-scenario must replace the classic pair:\n%s", out)
	}
}

func TestRunScenarioRejectsOversubFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scenario", "throughput", "-oversub"}, &b); err == nil ||
		!strings.Contains(err.Error(), "oversub") {
		t.Fatalf("-oversub with -scenario must be rejected, got %v", err)
	}
}

func TestRunScenarioRejectsInapplicableOverrides(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scenario", "rmr", "-locks", "MWSF"}, &b); err == nil ||
		!strings.Contains(err.Error(), "-locks") {
		t.Fatalf("-locks on a sim-only selection must be rejected, got %v", err)
	}
	if err := run([]string{"-scenario", "oversub", "-ops", "100"}, &b); err == nil ||
		!strings.Contains(err.Error(), "-ops") {
		t.Fatalf("-ops on a deadline-only selection must be rejected, got %v", err)
	}
	// But a mixed selection accepts them (they apply somewhere).
	if err := run([]string{"-quick", "-scenario", "starvation,rmr-dsm",
		"-locks", "MWSF"}, &b); err != nil {
		t.Fatalf("override applying to one of two scenarios rejected: %v", err)
	}
}

func TestRunScenarioUnknown(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scenario", "nope"}, &b); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown scenario not rejected: %v", err)
	}
}

func TestRunScenarioAllJSONValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every scenario")
	}
	var b strings.Builder
	if err := run([]string{"-quick", "-json", "-scenario", "all"}, &b); err != nil {
		t.Fatal(err)
	}
	if err := validateReport([]byte(b.String())); err != nil {
		t.Fatalf("fresh -scenario all emission fails validation: %v", err)
	}
	var rep report
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != schemaVersion {
		t.Fatalf("schema_version = %d, want %d", rep.SchemaVersion, schemaVersion)
	}
	names := map[string]bool{}
	for _, sr := range rep.Scenarios {
		names[sr.Scenario.Name] = true
	}
	for _, want := range []string{"throughput", "priority", "oversub", "rmr",
		"bursty-writers", "starvation", "writer-churn", "latency-grid"} {
		if !names[want] {
			t.Fatalf("-scenario all missing %s (got %v)", want, names)
		}
	}
}

func TestRunScenarioMarkdownHasLatencyColumns(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-markdown", "-scenario", "bursty-writers",
		"-locks", "MWWP"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "| lock |") ||
		!strings.Contains(out, "wr wait p99.9") || !strings.Contains(out, "age p99") {
		t.Fatalf("markdown scenario table missing latency/age columns:\n%s", out)
	}
}

func TestValidateRejectsBadSchema(t *testing.T) {
	for name, raw := range map[string]string{
		"missing version": `{"gomaxprocs":1,"numcpu":1,"seed":1}`,
		"future version":  `{"schema_version":99,"gomaxprocs":1,"numcpu":1,"seed":1}`,
		"old version":     `{"schema_version":1,"gomaxprocs":1,"numcpu":1,"seed":1}`,
		"unknown field":   `{"schema_version":2,"gomaxprocs":1,"numcpu":1,"seed":1,"throughput":[{"lock":"MWSF","workers":1,"read_fraction":0.9,"ops_per_sec":1}],"wat":true}`,
		"empty report":    `{"schema_version":2,"gomaxprocs":1,"numcpu":1,"seed":1}`,
		"not json":        `]`,
	} {
		if err := validateReport([]byte(raw)); err == nil {
			t.Errorf("%s: validator accepted %s", name, raw)
		}
	}
}

// scenarioReport wraps one scenario's points in a minimal schema-2
// report, for validator tests that need full control of the fields.
func scenarioReport(scenario, points string) string {
	return `{"schema_version":2,"gomaxprocs":1,"numcpu":1,"seed":1,` +
		`"scenarios":[{"scenario":` + scenario +
		`,"seed":1,"gomaxprocs":1,"points":[` + points + `]}]}`
}

func TestValidateRetainedMemoryFields(t *testing.T) {
	const epochScenario = `{"name":"age-frontier","title":"t","cs_work":0,"think_work":0,"version_bytes":1024}`
	const bareScenario = `{"name":"throughput","title":"t","cs_work":0,"think_work":0}`
	good := `{"lock":"MWSF/epoch","workers":8,"read_fraction":0.95,"ops_per_sec":1,` +
		`"epoch_advances":10,"grace_waits":5,"retired_versions":40,` +
		`"reclaimed_versions":30,"retained_versions_max":12,"retained_bytes_max":12288}`
	if err := validateReport([]byte(scenarioReport(epochScenario, good))); err != nil {
		t.Fatalf("consistent retained-memory point rejected: %v", err)
	}
	for name, point := range map[string]string{
		"reclaimed exceeds retired": `{"lock":"MWSF/epoch","workers":8,"ops_per_sec":1,` +
			`"epoch_advances":10,"grace_waits":5,"retired_versions":4,"reclaimed_versions":5,"retained_versions_max":4}`,
		"high-water below residue": `{"lock":"MWSF/epoch","workers":8,"ops_per_sec":1,` +
			`"epoch_advances":10,"grace_waits":5,"retired_versions":40,"reclaimed_versions":10,"retained_versions_max":5}`,
		"retired without grace waits": `{"lock":"MWSF/epoch","workers":8,"ops_per_sec":1,` +
			`"retired_versions":4,"retained_versions_max":4}`,
	} {
		if err := validateReport([]byte(scenarioReport(epochScenario, point))); err == nil {
			t.Errorf("%s: validator accepted %s", name, point)
		}
	}
	// Retained counters on a scenario that never installed versions
	// are bookkeeping corruption, not a measurement.
	stray := `{"lock":"MWSF/epoch","workers":8,"ops_per_sec":1,` +
		`"epoch_advances":10,"grace_waits":5,"retired_versions":4,"retained_versions_max":4}`
	if err := validateReport([]byte(scenarioReport(bareScenario, stray))); err == nil {
		t.Error("validator accepted retained counters without version_bytes")
	}
	// Epoch advances alone (an /epoch lock swept without versioned
	// writes) are legitimate on any scenario.
	advancesOnly := `{"lock":"MWSF/epoch","workers":8,"ops_per_sec":1,` +
		`"epoch_advances":10,"grace_waits":5}`
	if err := validateReport([]byte(scenarioReport(bareScenario, advancesOnly))); err != nil {
		t.Errorf("epoch counters without retirement rejected: %v", err)
	}
}

func TestRunScenarioAgeFrontier(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "400", "-scenario", "age-frontier"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The frontier's two halves must both be columns: update age and
	// retained memory.
	for _, col := range []string{"age p50", "age p99", "grace", "ret vers max", "ret bytes max"} {
		if !strings.Contains(out, col) {
			t.Errorf("age-frontier table missing %q column:\n%s", col, out)
		}
	}
	for _, lock := range []string{"MWSF", "Bravo(MWSF)", "MWSF/epoch", "MWSF/epoch/lazy64"} {
		if !strings.Contains(out, lock) {
			t.Errorf("age-frontier table missing %q row:\n%s", lock, out)
		}
	}
	// And the JSON emission must validate, retained fields included.
	var j strings.Builder
	if err := run([]string{"-quick", "-ops", "400", "-json", "-scenario", "age-frontier"}, &j); err != nil {
		t.Fatal(err)
	}
	if err := validateReport([]byte(j.String())); err != nil {
		t.Fatalf("age-frontier JSON report invalid: %v", err)
	}
	if !strings.Contains(j.String(), "retained_versions_max") {
		t.Fatalf("age-frontier JSON carries no retained-memory fields:\n%s", j.String())
	}
}

func TestValidateFlagOnFile(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-json", "-scenario", "starvation",
		"-locks", "MWSF"}, &b); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/rep.json"
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-validate", path}, &out); err != nil {
		t.Fatalf("validating a fresh report failed: %v", err)
	}
	if !strings.Contains(out.String(), "valid") {
		t.Fatalf("no confirmation: %s", out.String())
	}
	if err := run([]string{"-validate", t.TempDir() + "/nope.json"}, &out); err == nil {
		t.Fatal("missing file not rejected")
	}
}

func TestLegacyJSONCarriesSchemaVersion(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2", "-json",
		"-locks", "MWSF"}, &b); err != nil {
		t.Fatal(err)
	}
	if err := validateReport([]byte(b.String())); err != nil {
		t.Fatalf("legacy-path emission fails validation: %v", err)
	}
}

func TestRunOversubTable(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "1",
		"-oversub", "-oversub-workers", "8", "-oversub-duration", "20ms",
		"-locks", "MWSF,MWSF/park"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "E12: oversubscribed throughput") {
		t.Fatalf("missing oversubscribed table:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "GOMAXPROCS=2") {
		t.Fatalf("oversub sweep did not pin GOMAXPROCS:\n%s", b.String())
	}
}

func TestParseFloatList(t *testing.T) {
	got, err := parseFloatList("0, 1.07,1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1.07 || got[2] != 1.5 {
		t.Fatalf("parseFloatList = %v", got)
	}
	if _, err := parseFloatList("1.07,x"); err == nil {
		t.Fatal("expected error for non-number")
	}
}

// TestRunScenarioZipfGrid: the serving-tier scenario renders the
// sharded columns — stripe count, skew, bytes/lock, hot-key read
// rate — on every data row, and the -stripes/-skew overrides narrow
// the axes.
func TestRunScenarioZipfGrid(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-scenario", "zipf-grid",
		"-stripes", "4,16", "-skew", "1.07",
		"-locks", "SlimBravo,sync.RWMutex"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, col := range []string{"stripes", "zipf s", "B/lock", "hot rd/s", "age p50"} {
		if !strings.Contains(out, col) {
			t.Fatalf("zipf-grid table missing %q column:\n%s", col, out)
		}
	}
	// Shape check: every data row must carry both grid axes — a row
	// without a stripe count or skew means some cell bypassed the
	// sharded runner.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "SlimBravo") && !strings.HasPrefix(line, "sync.RWMutex") {
			continue
		}
		rows++
		if !strings.Contains(line, "1.07") {
			t.Fatalf("row without skew column: %q", line)
		}
		fields := strings.Fields(line)
		if len(fields) < 6 || (fields[3] != "4" && fields[3] != "16") {
			t.Fatalf("row without overridden stripe count: %q", line)
		}
	}
	if rows != 4 { // 2 locks x 2 stripe counts x 1 skew
		t.Fatalf("zipf-grid rendered %d data rows, want 4:\n%s", rows, out)
	}
}

func TestRunScenarioZipfGridJSONValidates(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-json", "-scenario", "zipf-grid",
		"-stripes", "8", "-skew", "1.07", "-locks", "SlimEpoch"}, &b); err != nil {
		t.Fatal(err)
	}
	if err := validateReport([]byte(b.String())); err != nil {
		t.Fatalf("fresh zipf-grid emission fails validation: %v", err)
	}
	for _, field := range []string{`"stripes"`, `"zipf_s"`, `"bytes_per_lock"`, `"hot_read_ops"`} {
		if !strings.Contains(b.String(), field) {
			t.Fatalf("zipf-grid JSON missing %s:\n%s", field, b.String())
		}
	}
}

// TestRunRejectsShardedOverridesElsewhere: -stripes/-skew must be
// rejected — naming the sharded scenarios — when the selection has no
// stripe axis, when there is no -scenario at all, and when the value
// parses to nothing.
func TestRunRejectsShardedOverridesElsewhere(t *testing.T) {
	var b strings.Builder
	for name, args := range map[string][]string{
		"flat scenario": {"-scenario", "latency-grid", "-stripes", "4"},
		"classic path":  {"-skew", "1.07"},
	} {
		err := run(args, &b)
		if err == nil || !strings.Contains(err.Error(), "zipf-grid") {
			t.Fatalf("%s: error = %v, want rejection listing sharded scenarios", name, err)
		}
	}
	if err := run([]string{"-scenario", "zipf-grid", "-stripes", ","}, &b); err == nil ||
		!strings.Contains(err.Error(), "selects no stripe counts") {
		t.Fatalf("empty -stripes error = %v", err)
	}
	if err := run([]string{"-scenario", "zipf-grid", "-skew", ","}, &b); err == nil ||
		!strings.Contains(err.Error(), "selects no Zipf exponents") {
		t.Fatalf("empty -skew error = %v", err)
	}
}

func TestValidateShardedFields(t *testing.T) {
	const shardedScenario = `{"name":"zipf-grid","title":"t","cs_work":0,"think_work":0,"stripes":[4],"zipf_s":[1.07]}`
	const flatScenario = `{"name":"throughput","title":"t","cs_work":0,"think_work":0}`
	good := `{"lock":"SlimBravo","workers":8,"read_fraction":0.9,"ops_per_sec":1,` +
		`"read_ops":90,"write_ops":10,"stripes":4,"zipf_s":1.07,"bytes_per_lock":16,"hot_read_ops":40}`
	if err := validateReport([]byte(scenarioReport(shardedScenario, good))); err != nil {
		t.Fatalf("consistent sharded point rejected: %v", err)
	}
	for name, point := range map[string]string{
		"missing stripes": `{"lock":"SlimBravo","workers":8,"ops_per_sec":1,` +
			`"read_ops":90,"zipf_s":1.07,"bytes_per_lock":16}`,
		"missing bytes_per_lock": `{"lock":"SlimBravo","workers":8,"ops_per_sec":1,` +
			`"read_ops":90,"stripes":4,"zipf_s":1.07}`,
		"hot reads exceed reads": `{"lock":"SlimBravo","workers":8,"ops_per_sec":1,` +
			`"read_ops":90,"stripes":4,"zipf_s":1.07,"bytes_per_lock":16,"hot_read_ops":91}`,
	} {
		if err := validateReport([]byte(scenarioReport(shardedScenario, point))); err == nil {
			t.Errorf("%s: validator accepted %s", name, point)
		}
	}
	stray := `{"lock":"MWSF","workers":8,"ops_per_sec":1,"stripes":4,"bytes_per_lock":16}`
	if err := validateReport([]byte(scenarioReport(flatScenario, stray))); err == nil {
		t.Error("validator accepted sharded columns on a flat scenario")
	}
}

// TestRunScenarioAdaptiveGrid: the adaptive scenario renders the
// promotion columns — budget, promo/demo counters, hot-set high
// water, bytes high water — numerically on every data row (budget-0
// baseline rows included), and -hotset narrows the budget axis.
func TestRunScenarioAdaptiveGrid(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-scenario", "adaptive-grid",
		"-stripes", "4,16", "-skew", "1.07", "-hotset", "0,4",
		"-locks", "SlimBravo"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, col := range []string{"hotset", "promo", "demo", "hot max", "B/lk hi", "hot rd/s"} {
		if !strings.Contains(out, col) {
			t.Fatalf("adaptive-grid table missing %q column:\n%s", col, out)
		}
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "SlimBravo") {
			continue
		}
		rows++
		fields := strings.Fields(line)
		// lock workers read% stripes zipf B/lock hotset promo demo hotmax B/lk-hi ...
		if len(fields) < 11 {
			t.Fatalf("adaptive row too short: %q", line)
		}
		if fields[6] != "0" && fields[6] != "4" {
			t.Fatalf("row without overridden hot-set budget: %q", line)
		}
		for _, f := range fields[7:11] {
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				t.Fatalf("non-numeric adaptive cell %q in row %q", f, line)
			}
		}
	}
	if rows != 4 { // 1 lock x 2 stripe counts x 2 budgets x 1 skew
		t.Fatalf("adaptive-grid rendered %d data rows, want 4:\n%s", rows, out)
	}
}

func TestRunScenarioAdaptiveGridJSONValidates(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-json", "-scenario", "adaptive-grid",
		"-stripes", "8", "-skew", "1.5", "-hotset", "0,4",
		"-locks", "SlimEpoch"}, &b); err != nil {
		t.Fatal(err)
	}
	if err := validateReport([]byte(b.String())); err != nil {
		t.Fatalf("fresh adaptive-grid emission fails validation: %v", err)
	}
	for _, field := range []string{`"hot_sets"`, `"hot_set_budget"`, `"bytes_per_lock_high"`} {
		if !strings.Contains(b.String(), field) {
			t.Fatalf("adaptive-grid JSON missing %s:\n%s", field, b.String())
		}
	}
}

// TestRunRejectsHotsetElsewhere: -hotset must be rejected — naming the
// adaptive scenarios — when the selection has no hot-set axis
// (including sharded-but-not-adaptive scenarios and the classic
// path), when the budget rides a non-Slim lock row, and when the
// value parses to nothing.
func TestRunRejectsHotsetElsewhere(t *testing.T) {
	var b strings.Builder
	for name, args := range map[string][]string{
		"flat scenario": {"-scenario", "latency-grid", "-hotset", "4"},
		"sharded-only":  {"-scenario", "zipf-grid", "-hotset", "4"},
		"classic path":  {"-hotset", "4"},
	} {
		err := run(args, &b)
		if err == nil || !strings.Contains(err.Error(), "adaptive-grid") {
			t.Fatalf("%s: error = %v, want rejection listing adaptive scenarios", name, err)
		}
	}
	if err := run([]string{"-scenario", "adaptive-grid", "-hotset", ","}, &b); err == nil ||
		!strings.Contains(err.Error(), "selects no hot-set budgets") {
		t.Fatalf("empty -hotset error = %v", err)
	}
	err := run([]string{"-quick", "-scenario", "adaptive-grid",
		"-hotset", "4", "-locks", "sync.RWMutex"}, &b)
	if err == nil || !strings.Contains(err.Error(), "SlimBravo") {
		t.Fatalf("non-Slim budget error = %v, want rejection listing Slim locks", err)
	}
}

func TestValidateAdaptiveFields(t *testing.T) {
	const adaptiveScenario = `{"name":"adaptive-grid","title":"t","cs_work":0,"think_work":0,` +
		`"stripes":[4],"zipf_s":[1.07],"hot_sets":[0,4]}`
	shared := `{"lock":"SlimBravo","workers":8,"read_fraction":0.9,"ops_per_sec":1,` +
		`"read_ops":90,"write_ops":10,"stripes":4,"zipf_s":1.07,"bytes_per_lock":16,"hot_read_ops":40`
	good := shared + `,"hot_set_budget":4,"promotions":3,"demotions":1,` +
		`"hot_set_max":2,"bytes_per_lock_high":560}`
	baseline := shared + `}`
	for name, points := range map[string]string{
		"budgeted point": good,
		"baseline point": baseline,
		"both":           good + "," + baseline,
	} {
		if err := validateReport([]byte(scenarioReport(adaptiveScenario, points))); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
	for name, point := range map[string]string{
		"hot set over budget": shared + `,"hot_set_budget":4,"promotions":9,"demotions":1,` +
			`"hot_set_max":5,"bytes_per_lock_high":560}`,
		"demotions exceed promotions": shared + `,"hot_set_budget":4,"promotions":1,"demotions":2,` +
			`"hot_set_max":1,"bytes_per_lock_high":560}`,
		"promotions without high water": shared + `,"hot_set_budget":4,"promotions":3,` +
			`"bytes_per_lock_high":560}`,
		"bytes high water below cold": shared + `,"hot_set_budget":4,"promotions":3,"demotions":1,` +
			`"hot_set_max":2,"bytes_per_lock_high":8}`,
		"counters without budget": shared + `,"promotions":3,"demotions":1,` +
			`"hot_set_max":2,"bytes_per_lock_high":560}`,
	} {
		if err := validateReport([]byte(scenarioReport(adaptiveScenario, point))); err == nil {
			t.Errorf("%s: validator accepted %s", name, point)
		}
	}
}

func TestRunOversubDefaultsToParkComparison(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "1", "-json",
		"-oversub", "-oversub-workers", "8", "-oversub-duration", "20ms"}, &b); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatal(err)
	}
	// Without -locks, the oversub sweep must use the spin-vs-park set,
	// not the spin-only E7 default.
	park := 0
	for _, p := range rep.Oversubscribed {
		if strings.HasSuffix(p.Lock, "/park") {
			park++
		}
	}
	if park == 0 {
		t.Fatalf("default -oversub sweep has no /park variants: %v", rep.OversubLocks)
	}
	if rep.OversubGOMAXPROCS != 2 {
		t.Fatalf("oversub GOMAXPROCS = %d, want pinned 2", rep.OversubGOMAXPROCS)
	}
}

// metricsReport wraps one scenario's points in a minimal schema-2
// report whose scenario result is flagged as a -metrics run.
func metricsReport(scenario, points string) string {
	return `{"schema_version":2,"gomaxprocs":1,"numcpu":1,"seed":1,` +
		`"scenarios":[{"scenario":` + scenario +
		`,"seed":1,"gomaxprocs":1,"metrics":true,"points":[` + points + `]}]}`
}

func TestValidateCounterFields(t *testing.T) {
	const flat = `{"name":"throughput","title":"t","cs_work":0,"think_work":0}`
	const base = `"lock":"MWSF","workers":4,"read_fraction":0.9,"ops_per_sec":1,"read_ops":90,"write_ops":10`
	good := `{` + base + `,"counters":{"read_acquires":90,"write_acquires":10,"read_contended":5}}`
	if err := validateReport([]byte(metricsReport(flat, good))); err != nil {
		t.Fatalf("consistent counter point rejected: %v", err)
	}
	// A row outside the stats seam (Slim, baselines, sync.RWMutex)
	// legitimately reports an all-zero block on a metrics run.
	zero := `{` + base + `,"counters":{}}`
	if err := validateReport([]byte(metricsReport(flat, zero))); err != nil {
		t.Fatalf("all-zero counter block rejected: %v", err)
	}
	for name, rep := range map[string]string{
		"metrics run without counters": metricsReport(flat, `{`+base+`}`),
		"counters without metrics":     scenarioReport(flat, good),
		"read acquires disagree with ops": metricsReport(flat,
			`{`+base+`,"counters":{"read_acquires":80,"write_acquires":10}}`),
		"write acquires disagree with ops": metricsReport(flat,
			`{`+base+`,"counters":{"read_acquires":90,"write_acquires":11}}`),
		"sheds disagree with ops": metricsReport(flat,
			`{`+base+`,"counters":{"read_acquires":90,"write_acquires":10,"ctx_sheds":3}}`),
		"incoherent block": metricsReport(flat,
			`{`+base+`,"counters":{"read_acquires":90,"write_acquires":10,"read_contended":91}}`),
	} {
		if err := validateReport([]byte(rep)); err == nil {
			t.Errorf("%s: validator accepted the report", name)
		}
	}
	// The counter block and the point's epoch columns are two
	// bookkeepers of one history; a disagreement is corruption.
	const epochScenario = `{"name":"age-frontier","title":"t","cs_work":0,"think_work":0,"version_bytes":1024}`
	mirrorBad := `{"lock":"MWSF/epoch","workers":8,"ops_per_sec":1,"read_ops":90,"write_ops":10,` +
		`"epoch_advances":10,"grace_waits":5,"retired_versions":40,` +
		`"reclaimed_versions":30,"retained_versions_max":12,` +
		`"counters":{"read_acquires":90,"write_acquires":10,"retired_versions":39,"reclaimed_versions":30}}`
	if err := validateReport([]byte(metricsReport(epochScenario, mirrorBad))); err == nil {
		t.Error("validator accepted counter reclamation disagreeing with the epoch columns")
	}
	// Counters never ride on simulator points.
	const simScenario = `{"name":"rmr","title":"t","cs_work":0,"think_work":0,` +
		`"sim":{"systems":["mwsf"],"attempts":1}}`
	simPoint := `{"system":"mwsf","writers":1,"readers":1,` +
		`"reader_rmr":{},"writer_rmr":{},"counters":{}}`
	if err := validateReport([]byte(scenarioReport(simScenario, simPoint))); err == nil {
		t.Error("validator accepted counters on a simulator point")
	}
}

func TestRunScenarioMetricsJSONValidates(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-json", "-metrics", "-ops", "400",
		"-scenario", "throughput,zipf-grid",
		"-locks", "MWSF,Bravo(MWSF),sync.RWMutex"}, &b); err != nil {
		t.Fatal(err)
	}
	if err := validateReport([]byte(b.String())); err != nil {
		t.Fatalf("fresh -metrics emission fails validation: %v", err)
	}
	var rep report
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatal(err)
	}
	instrumented, silent := 0, 0
	for _, sr := range rep.Scenarios {
		if !sr.Metrics {
			t.Fatalf("scenario %s: metrics bit not recorded", sr.Scenario.Name)
		}
		for i, p := range sr.Points {
			c := p.Counters
			if c == nil {
				t.Fatalf("scenario %s point %d: no counters on a -metrics run", sr.Scenario.Name, i)
			}
			switch {
			case c.ReadAcquires > 0 || c.WriteAcquires > 0:
				instrumented++
			case p.Lock == "sync.RWMutex":
				silent++ // outside the stats seam: documented all-zero block
			default:
				t.Fatalf("scenario %s point %d: lock %s recorded nothing", sr.Scenario.Name, i, p.Lock)
			}
		}
	}
	if instrumented == 0 {
		t.Fatal("no instrumented points recorded")
	}
	if silent == 0 {
		t.Fatal("no sync.RWMutex baseline points ran")
	}
}

func TestRunMetricsRequiresScenario(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-metrics"}, &b); err == nil ||
		!strings.Contains(err.Error(), "-metrics requires") {
		t.Fatalf("classic path accepted -metrics: %v", err)
	}
	if err := run([]string{"-quick", "-metrics", "-scenario", "rmr"}, &b); err == nil ||
		!strings.Contains(err.Error(), "-metrics applies to no selected scenario") {
		t.Fatalf("simulator-only selection accepted -metrics: %v", err)
	}
}
