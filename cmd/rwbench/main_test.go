package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseIntList = %v", got)
	}
	if _, err := parseIntList("1,x"); err == nil {
		t.Fatal("expected error for non-integer")
	}
	got, err = parseIntList("4,")
	if err != nil || len(got) != 1 {
		t.Fatalf("trailing comma: %v %v", got, err)
	}
}

func TestRunQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E7: native throughput") {
		t.Fatalf("missing E7:\n%s", out)
	}
	if !strings.Contains(out, "E8:") {
		t.Fatalf("missing E8:\n%s", out)
	}
	if !strings.Contains(out, "sync.RWMutex") {
		t.Fatalf("missing baseline column:\n%s", out)
	}
}

func TestRunMarkdownOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "1", "-markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| workers | read% |") {
		t.Fatalf("markdown table malformed:\n%s", b.String())
	}
}

func TestRunBadWorkers(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-workers", "abc"}, &b); err == nil {
		t.Fatal("expected error for bad -workers")
	}
}

func TestRunLocksSubset(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2",
		"-locks", "MWSF,Bravo(MWSF),sync.RWMutex"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{"MWSF", "Bravo(MWSF)", "sync.RWMutex"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing selected lock %s:\n%s", name, out)
		}
	}
	if strings.Contains(out, "TaskFairRW") {
		t.Fatalf("unselected lock leaked into the sweep:\n%s", out)
	}
}

func TestRunUnknownLock(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-locks", "NoSuchLock"}, &b); err == nil ||
		!strings.Contains(err.Error(), "NoSuchLock") {
		t.Fatalf("expected unknown-lock error, got %v", err)
	}
}

func TestRunParkVariantSelectable(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2",
		"-locks", "MWSF,MWSF/park"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "MWSF/park") {
		t.Fatalf("park variant missing from sweep:\n%s", b.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "2", "-json",
		"-oversub", "-oversub-workers", "8", "-oversub-duration", "20ms",
		"-locks", "MWSF,MWSF/park,sync.RWMutex"}, &b); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, b.String())
	}
	if rep.GOMAXPROCS <= 0 || len(rep.Locks) != 3 {
		t.Fatalf("metadata missing: %+v", rep)
	}
	if len(rep.Throughput) == 0 || len(rep.Priority) == 0 || len(rep.Oversubscribed) == 0 {
		t.Fatalf("sweep points missing: tp=%d prio=%d oversub=%d",
			len(rep.Throughput), len(rep.Priority), len(rep.Oversubscribed))
	}
	for _, p := range rep.Oversubscribed {
		if p.Workers != 8 || p.OpsPerSec <= 0 {
			t.Fatalf("bad oversubscribed point %+v", p)
		}
	}
	// Tables must not leak into machine-readable output.
	if strings.Contains(b.String(), "E7:") {
		t.Fatalf("table text mixed into -json output:\n%s", b.String())
	}
}

func TestRunOversubTable(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "1",
		"-oversub", "-oversub-workers", "8", "-oversub-duration", "20ms",
		"-locks", "MWSF,MWSF/park"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "E12: oversubscribed throughput") {
		t.Fatalf("missing oversubscribed table:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "GOMAXPROCS=2") {
		t.Fatalf("oversub sweep did not pin GOMAXPROCS:\n%s", b.String())
	}
}

func TestRunOversubDefaultsToParkComparison(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-ops", "200", "-workers", "1", "-json",
		"-oversub", "-oversub-workers", "8", "-oversub-duration", "20ms"}, &b); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatal(err)
	}
	// Without -locks, the oversub sweep must use the spin-vs-park set,
	// not the spin-only E7 default.
	park := 0
	for _, p := range rep.Oversubscribed {
		if strings.HasSuffix(p.Lock, "/park") {
			park++
		}
	}
	if park == 0 {
		t.Fatalf("default -oversub sweep has no /park variants: %v", rep.OversubLocks)
	}
	if rep.OversubGOMAXPROCS != 2 {
		t.Fatalf("oversub GOMAXPROCS = %d, want pinned 2", rep.OversubGOMAXPROCS)
	}
}
