// Command rwbench runs the native-lock experiments (E7 throughput and
// E8 priority latency in DESIGN.md) against real goroutines and
// sync/atomic, comparing the paper's locks with sync.RWMutex and the
// classical baselines.
//
// Usage:
//
//	rwbench [-ops N] [-seed S] [-workers list] [-locks list]
//	        [-scenario names|all] [-stripes list] [-skew list]
//	        [-hotset list] [-metrics] [-markdown] [-json] [-quick]
//	        [-oversub] [-oversub-workers list] [-oversub-duration d]
//	        [-validate file]
//
// -scenario selects entries of the declarative scenario registry
// (internal/harness.RunScenario) by name — `-scenario all` runs every
// registered scenario, `-scenario latency-grid,bursty-writers` a
// subset.  Scenario tables carry tail-latency (wait p50/p99/p99.9 per
// class) and, where the writer-visibility probe runs, read-view age
// columns; the -json report carries the full latency histograms.
// Without -scenario the tool runs the classic default pair
// (throughput + priority), which goes through the same engine.
//
// -locks restricts any sweep to a comma-separated subset of the lock
// registry, e.g. `-locks "MWSF,Bravo(MWSF),sync.RWMutex"` to isolate
// the BRAVO fast path's effect against its own inner lock.  The
// registry includes "/park" variants of every lock (e.g. "MWSF/park")
// that wait with rwlock.SpinThenPark instead of the default spinning,
// "/bounded" variants of the multi-writer locks (e.g. "MWSF/bounded",
// "MWSF/bounded/park") that serialize writers through the bounded
// Anderson array (rwlock.WithBoundedWriters) instead of the default
// unbounded MCS queue, and "/combine" variants (e.g. "MWSF/combine",
// "MWSF/combine/park") that batch closure-path writes through the
// flat-combining arbiter (rwlock.WithCombiningWriters) — the
// "writer-churn" and "combine-batch" scenarios compare the three
// arbitrations under thousands of one-shot writers, the latter also
// reporting the combiner's batch-size distribution, and the
// "writer-shed" scenario reruns the churn with a per-write deadline
// through LockCtx, reporting the shed rate (writes abandoned at
// deadline) against the writer-wait tail the survivors pay.
//
// -stripes and -skew override the grid-size and Zipf-exponent axes of
// the sharded (serving tier) scenarios, e.g. `-scenario zipf-grid
// -stripes 1000,1000000 -skew 1.07`.  They apply only to scenarios
// that sweep a stripe axis and are rejected — with the sorted list of
// sharded scenario names — when the selection contains none.
//
// -hotset overrides the hot-set-budget axis of the adaptive scenarios
// the same way, e.g. `-scenario adaptive-grid -hotset 0,512` (0 runs
// the stripe grid with adaptive promotion off — the all-Slim
// baseline).  It applies only to scenarios that sweep a hot-set axis
// and is rejected — with the sorted list of adaptive scenario names —
// when the selection contains none.
//
// Unknown -locks or -scenario names are rejected with the list of
// valid names, and so is a selection that parses to nothing (e.g.
// `-locks ","` or `-stripes ","`): a sweep that silently ran an empty
// selection would look like an instant success.
//
// -oversub adds the oversubscription experiment: GOMAXPROCS is pinned
// to -oversub-gomaxprocs (default 2) for the sweep's duration so the
// workers genuinely oversubscribe even on big machines, the regime
// where the /park variants earn their keep.  Unless -locks narrows
// the sweep explicitly, the oversubscription table uses the spin-vs-
// park comparison set (harness.OversubLockNames) rather than the
// spin-only E7 default.  (The "oversub" scenario is the same
// experiment through the registry.)
//
// -metrics instruments every native and sharded scenario cell with a
// fresh rwlock.WithStats counter block (the observability seam the
// rwstats exporters serve) and folds its quiescent snapshot into the
// point as a "counters" object — an additive schema_version 2 column,
// like the sharded and adaptive fields before it.  The harness
// cross-checks each block before reporting it (CheckCoherence plus
// the one-passage-per-op tie), and -validate re-asserts the same
// invariants on the serialized record, requiring counters exactly on
// the points of a metrics run.  Rows outside the stats seam (Slim,
// the classical baselines, sync.RWMutex) report all-zero blocks;
// simulator scenarios carry no counters, so -metrics is rejected when
// the selection contains no native scenario.
//
// -json emits one versioned JSON object (schema_version 2) with every
// sweep's points instead of tables, so per-PR benchmark grids can be
// recorded mechanically (BENCH_*.json) rather than hand-copied.
// -validate reads such a report back, rejects unknown schema versions
// and checks the structural invariants — the CI bench-smoke job runs
// it against a fresh `-quick -json -scenario all` emission so schema
// drift fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rwsync/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rwbench:", err)
		os.Exit(1)
	}
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad worker count %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad skew %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// schemaVersion identifies the -json report layout.  Version 1 was
// the unversioned PR 2 shape (throughput/priority/oversubscribed
// arrays only); version 2 added schema_version itself and the
// scenarios array with full latency histograms.  Bump on any change
// that would break a reader of the previous shape, and teach
// validateReport both the new version and the rejection of the old.
const schemaVersion = 2

// report is the -json output schema: enough run metadata to rerun the
// sweep, plus every point of every enabled experiment.
type report struct {
	SchemaVersion     int                       `json:"schema_version"`
	GOMAXPROCS        int                       `json:"gomaxprocs"`
	NumCPU            int                       `json:"numcpu"`
	OpsPerWorker      int                       `json:"ops_per_worker,omitempty"`
	Seed              int64                     `json:"seed"`
	Locks             []string                  `json:"locks,omitempty"`
	Throughput        []harness.ThroughputPoint `json:"throughput,omitempty"`
	Priority          []harness.PriorityPoint   `json:"priority,omitempty"`
	Oversubscribed    []harness.ThroughputPoint `json:"oversubscribed,omitempty"`
	OversubLocks      []string                  `json:"oversub_locks,omitempty"`
	OversubMs         int64                     `json:"oversub_duration_ms,omitempty"`
	OversubGOMAXPROCS int                       `json:"oversub_gomaxprocs,omitempty"`
	Scenarios         []*harness.ScenarioResult `json:"scenarios,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rwbench", flag.ContinueOnError)
	ops := fs.Int("ops", 20000, "operations per worker")
	seed := fs.Int64("seed", 1, "workload seed")
	workersFlag := fs.String("workers", "", "comma-separated worker counts (default 1,2,4,..,2*NumCPU)")
	locksFlag := fs.String("locks", "", "comma-separated lock names to sweep (default: all spin locks; /park variants available)")
	scenarioFlag := fs.String("scenario", "", "comma-separated scenario names, or \"all\" (default: classic throughput+priority pair)")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	jsonOut := fs.Bool("json", false, "emit one JSON object instead of tables")
	quick := fs.Bool("quick", false, "smaller sweep for smoke runs")
	oversub := fs.Bool("oversub", false, "also run the oversubscription sweep (workers >> GOMAXPROCS)")
	oversubWorkers := fs.String("oversub-workers", "16,64", "worker counts for -oversub")
	oversubDur := fs.Duration("oversub-duration", 100*time.Millisecond, "measurement window per -oversub point")
	oversubProcs := fs.Int("oversub-gomaxprocs", 2, "GOMAXPROCS pinned for the -oversub sweep (0 = leave unpinned)")
	stripesFlag := fs.String("stripes", "", "comma-separated stripe counts for sharded scenarios (e.g. 1000,1000000)")
	skewFlag := fs.String("skew", "", "comma-separated Zipf exponents for sharded scenarios (e.g. 0,1.07)")
	hotsetFlag := fs.String("hotset", "", "comma-separated hot-set budgets for adaptive scenarios (0 = adaptive off, e.g. 0,64,512)")
	metrics := fs.Bool("metrics", false, "instrument every scenario cell with a rwlock.WithStats counter block and fold the snapshots into the points (requires -scenario)")
	validate := fs.String("validate", "", "validate a -json report file against the schema and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validate != "" {
		if err := validateReportFile(*validate); err != nil {
			return fmt.Errorf("validate %s: %w", *validate, err)
		}
		fmt.Fprintf(out, "%s: valid (schema_version %d)\n", *validate, schemaVersion)
		return nil
	}

	var requested []string
	for _, part := range strings.Split(*locksFlag, ",") {
		if part = strings.TrimSpace(part); part != "" {
			requested = append(requested, part)
		}
	}
	if *locksFlag != "" && len(requested) == 0 {
		// "-locks ," parses to zero names; falling back to the default
		// set would silently sweep something other than what was asked.
		return fmt.Errorf("-locks %q selects no lock names (have %v)",
			*locksFlag, harness.SortedLockNames())
	}
	lockNames, err := harness.SelectLockNames(requested)
	if err != nil {
		return err
	}

	var workers []int
	if *workersFlag != "" {
		workers, err = parseIntList(*workersFlag)
		if err != nil {
			return err
		}
	}

	// The sharded-axis overrides get the same reject-empty rule as
	// -locks: "-stripes ," must not silently run the scenario's own
	// grid under the guise of a narrowed one.
	var stripes []int
	if *stripesFlag != "" {
		if stripes, err = parseIntList(*stripesFlag); err != nil {
			return err
		}
		if len(stripes) == 0 {
			return fmt.Errorf("-stripes %q selects no stripe counts", *stripesFlag)
		}
	}
	var skews []float64
	if *skewFlag != "" {
		if skews, err = parseFloatList(*skewFlag); err != nil {
			return err
		}
		if len(skews) == 0 {
			return fmt.Errorf("-skew %q selects no Zipf exponents", *skewFlag)
		}
	}
	var hotSets []int
	if *hotsetFlag != "" {
		if hotSets, err = parseIntList(*hotsetFlag); err != nil {
			return err
		}
		if len(hotSets) == 0 {
			return fmt.Errorf("-hotset %q selects no hot-set budgets", *hotsetFlag)
		}
	}

	emit := func(t interface {
		Render() string
		Markdown() string
	}) {
		if *markdown {
			fmt.Fprintln(out, t.Markdown())
		} else {
			fmt.Fprintln(out, t.Render())
		}
	}

	rep := report{
		SchemaVersion: schemaVersion,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Seed:          *seed,
	}

	if *scenarioFlag != "" {
		// Refuse the legacy oversub flags rather than silently
		// dropping them: the oversubscription experiment is a
		// scenario, and its knobs live in the registry entry.
		var conflict error
		opts := harness.ScenarioOptions{
			Seed:    *seed,
			Quick:   *quick,
			Workers: workers,
			Stripes: stripes,
			ZipfS:   skews,
			HotSets: hotSets,
			Metrics: *metrics,
		}
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "oversub", "oversub-workers", "oversub-duration", "oversub-gomaxprocs":
				conflict = fmt.Errorf("-%s does not combine with -scenario; select the \"oversub\" scenario (its knobs are the registry entry's) instead", f.Name)
			case "ops":
				// Only an explicit -ops overrides a scenario's budget.
				opts.Ops = *ops
			}
		})
		if conflict != nil {
			return conflict
		}
		scs, err := harness.SelectScenarios(*scenarioFlag)
		if err != nil {
			return err
		}
		if len(requested) > 0 {
			opts.Locks = lockNames
		}
		// Same loud-rejection rule for the generic overrides: an
		// override that applies to NONE of the selected scenarios
		// (e.g. -locks on a simulator sweep, -ops on a deadline-based
		// one) must not be silently dropped.
		anyNative, anyOpsBased, anySharded, anyAdaptive := false, false, false, false
		for _, sc := range scs {
			if sc.Sim == nil {
				anyNative = true
				if sc.Duration == 0 {
					anyOpsBased = true
				}
			}
			if len(sc.Stripes) > 0 {
				anySharded = true
			}
			if len(sc.HotSets) > 0 {
				anyAdaptive = true
			}
		}
		if len(opts.Locks) > 0 && !anyNative {
			return fmt.Errorf("-locks applies to no selected scenario (simulator scenarios sweep systems, not locks)")
		}
		if opts.Ops > 0 && !anyOpsBased {
			return fmt.Errorf("-ops applies to no selected scenario (deadline-based scenarios size by duration)")
		}
		if (len(stripes) > 0 || len(skews) > 0) && !anySharded {
			return fmt.Errorf("-stripes/-skew apply to no selected scenario (sharded scenarios: %v)",
				harness.ShardedScenarioNames())
		}
		if len(hotSets) > 0 && !anyAdaptive {
			return fmt.Errorf("-hotset applies to no selected scenario (adaptive scenarios: %v)",
				harness.AdaptiveScenarioNames())
		}
		if *metrics && !anyNative {
			return fmt.Errorf("-metrics applies to no selected scenario (simulator scenarios have no native locks to instrument)")
		}
		for _, sc := range scs {
			res, err := harness.RunScenario(sc, opts)
			if err != nil {
				return err
			}
			rep.Scenarios = append(rep.Scenarios, res)
			if !*jsonOut {
				emit(harness.ScenarioTable(res))
			}
		}
		if *jsonOut {
			// Compact: BENCH_*.json records carry full histograms, and
			// indentation roughly doubles them for no machine benefit.
			return json.NewEncoder(out).Encode(rep)
		}
		return nil
	}

	// Classic path: the default throughput+priority pair (plus
	// -oversub), through the same RunScenario core via the legacy
	// sweep adapters, in the legacy report shape.  A nil workers grid
	// means the engine's default doubling grid (one policy, owned by
	// the harness).
	if len(stripes) > 0 || len(skews) > 0 {
		return fmt.Errorf("-stripes/-skew require a sharded -scenario selection (sharded scenarios: %v)",
			harness.ShardedScenarioNames())
	}
	if len(hotSets) > 0 {
		return fmt.Errorf("-hotset requires an adaptive -scenario selection (adaptive scenarios: %v)",
			harness.AdaptiveScenarioNames())
	}
	if *metrics {
		return fmt.Errorf("-metrics requires a -scenario selection (the classic pair reports through the legacy tables)")
	}
	fractions := []float64{0.5, 0.9, 0.99, 1.0}
	readers := 8
	oversubFractions := []float64{0.9, 0.99}
	if *quick {
		fractions = []float64{0.9}
		oversubFractions = []float64{0.9}
		readers = 4
	}

	pts := harness.ThroughputSweepLocks(lockNames, workers, fractions, *ops, *seed)
	prio := harness.PrioritySweepLocks(lockNames, readers, *ops, *seed)

	rep.OpsPerWorker = *ops
	rep.Locks = lockNames
	rep.Throughput = pts
	rep.Priority = prio

	if !*jsonOut {
		emit(harness.ThroughputTable(
			fmt.Sprintf("E7: native throughput, ops/sec (GOMAXPROCS=%d, %d ops/worker)", runtime.GOMAXPROCS(0), *ops), pts))
		emit(harness.PriorityTable(
			fmt.Sprintf("E8: 1 dedicated writer vs %d readers — latency by class", readers), prio))
	}

	if *oversub {
		ow, err := parseIntList(*oversubWorkers)
		if err != nil {
			return err
		}
		// The spin-vs-park comparison set by default; an explicit
		// -locks narrows the oversub sweep like every other sweep.
		oversubLocks := harness.OversubLockNames()
		if len(requested) > 0 {
			oversubLocks = lockNames
		}
		// Pin GOMAXPROCS so the workers oversubscribe even on a big
		// machine (OversubscribedSweepLocks only shapes the workload).
		if *oversubProcs > 0 {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(*oversubProcs))
		}
		opts := harness.OversubscribedSweepLocks(oversubLocks, ow, oversubFractions, *oversubDur, *seed)
		rep.Oversubscribed = opts
		rep.OversubLocks = oversubLocks
		rep.OversubMs = oversubDur.Milliseconds()
		rep.OversubGOMAXPROCS = runtime.GOMAXPROCS(0)
		if !*jsonOut {
			emit(harness.ThroughputTable(
				fmt.Sprintf("E12: oversubscribed throughput, ops/sec (GOMAXPROCS=%d, %s/point)",
					runtime.GOMAXPROCS(0), *oversubDur), opts))
		}
	}

	if *jsonOut {
		return json.NewEncoder(out).Encode(rep)
	}
	return nil
}
