// Command rwbench runs the native-lock experiments (E7 throughput and
// E8 priority latency in DESIGN.md) against real goroutines and
// sync/atomic, comparing the paper's locks with sync.RWMutex and the
// classical baselines.
//
// Usage:
//
//	rwbench [-ops N] [-seed S] [-workers list] [-locks list]
//	        [-markdown] [-json] [-quick]
//	        [-oversub] [-oversub-workers list] [-oversub-duration d]
//
// -locks restricts the sweep to a comma-separated subset of the lock
// registry, e.g. `-locks "MWSF,Bravo(MWSF),sync.RWMutex"` to isolate
// the BRAVO fast path's effect against its own inner lock.  The
// registry includes "/park" variants of every lock (e.g. "MWSF/park")
// that wait with rwlock.SpinThenPark instead of the default spinning.
//
// -oversub adds the oversubscription experiment: GOMAXPROCS is pinned
// to -oversub-gomaxprocs (default 2) for the sweep's duration so the
// workers genuinely oversubscribe even on big machines, the regime
// where the /park variants earn their keep.  Unless -locks narrows
// the sweep explicitly, the oversubscription table uses the spin-vs-
// park comparison set (harness.OversubLockNames) rather than the
// spin-only E7 default.
//
// -json emits one JSON object with every sweep's points instead of
// tables, so per-PR benchmark grids can be recorded mechanically
// (BENCH_*.json) rather than hand-copied.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rwsync/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rwbench:", err)
		os.Exit(1)
	}
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad worker count %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// report is the -json output schema: enough run metadata to rerun the
// sweep, plus every point of every enabled experiment.
type report struct {
	GOMAXPROCS        int                       `json:"gomaxprocs"`
	NumCPU            int                       `json:"numcpu"`
	OpsPerWorker      int                       `json:"ops_per_worker"`
	Seed              int64                     `json:"seed"`
	Locks             []string                  `json:"locks"`
	Throughput        []harness.ThroughputPoint `json:"throughput"`
	Priority          []harness.PriorityPoint   `json:"priority"`
	Oversubscribed    []harness.ThroughputPoint `json:"oversubscribed,omitempty"`
	OversubLocks      []string                  `json:"oversub_locks,omitempty"`
	OversubMs         int64                     `json:"oversub_duration_ms,omitempty"`
	OversubGOMAXPROCS int                       `json:"oversub_gomaxprocs,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rwbench", flag.ContinueOnError)
	ops := fs.Int("ops", 20000, "operations per worker")
	seed := fs.Int64("seed", 1, "workload seed")
	workersFlag := fs.String("workers", "", "comma-separated worker counts (default 1,2,4,..,2*NumCPU)")
	locksFlag := fs.String("locks", "", "comma-separated lock names to sweep (default: all spin locks; /park variants available)")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	jsonOut := fs.Bool("json", false, "emit one JSON object instead of tables")
	quick := fs.Bool("quick", false, "smaller sweep for smoke runs")
	oversub := fs.Bool("oversub", false, "also run the oversubscription sweep (workers >> GOMAXPROCS)")
	oversubWorkers := fs.String("oversub-workers", "16,64", "worker counts for -oversub")
	oversubDur := fs.Duration("oversub-duration", 100*time.Millisecond, "measurement window per -oversub point")
	oversubProcs := fs.Int("oversub-gomaxprocs", 2, "GOMAXPROCS pinned for the -oversub sweep (0 = leave unpinned)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var requested []string
	for _, part := range strings.Split(*locksFlag, ",") {
		if part = strings.TrimSpace(part); part != "" {
			requested = append(requested, part)
		}
	}
	lockNames, err := harness.SelectLockNames(requested)
	if err != nil {
		return err
	}

	var workers []int
	if *workersFlag != "" {
		var err error
		workers, err = parseIntList(*workersFlag)
		if err != nil {
			return err
		}
	} else {
		for w := 1; w <= 2*runtime.NumCPU(); w *= 2 {
			workers = append(workers, w)
		}
		if len(workers) == 0 {
			workers = []int{1}
		}
	}
	fractions := []float64{0.5, 0.9, 0.99, 1.0}
	readers := 8
	oversubFractions := []float64{0.9, 0.99}
	if *quick {
		fractions = []float64{0.9}
		oversubFractions = []float64{0.9}
		readers = 4
	}

	emit := func(t interface {
		Render() string
		Markdown() string
	}) {
		if *markdown {
			fmt.Fprintln(out, t.Markdown())
		} else {
			fmt.Fprintln(out, t.Render())
		}
	}

	pts := harness.ThroughputSweepLocks(lockNames, workers, fractions, *ops, *seed)
	prio := harness.PrioritySweepLocks(lockNames, readers, *ops, *seed)

	rep := report{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		OpsPerWorker: *ops,
		Seed:         *seed,
		Locks:        lockNames,
		Throughput:   pts,
		Priority:     prio,
	}

	if !*jsonOut {
		emit(harness.ThroughputTable(
			fmt.Sprintf("E7: native throughput, ops/sec (GOMAXPROCS=%d, %d ops/worker)", runtime.GOMAXPROCS(0), *ops), pts))
		emit(harness.PriorityTable(
			fmt.Sprintf("E8: 1 dedicated writer vs %d readers — latency by class", readers), prio))
	}

	if *oversub {
		ow, err := parseIntList(*oversubWorkers)
		if err != nil {
			return err
		}
		// The spin-vs-park comparison set by default; an explicit
		// -locks narrows the oversub sweep like every other sweep.
		oversubLocks := harness.OversubLockNames()
		if len(requested) > 0 {
			oversubLocks = lockNames
		}
		// Pin GOMAXPROCS so the workers oversubscribe even on a big
		// machine (OversubscribedSweepLocks only shapes the workload).
		if *oversubProcs > 0 {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(*oversubProcs))
		}
		opts := harness.OversubscribedSweepLocks(oversubLocks, ow, oversubFractions, *oversubDur, *seed)
		rep.Oversubscribed = opts
		rep.OversubLocks = oversubLocks
		rep.OversubMs = oversubDur.Milliseconds()
		rep.OversubGOMAXPROCS = runtime.GOMAXPROCS(0)
		if !*jsonOut {
			emit(harness.ThroughputTable(
				fmt.Sprintf("E12: oversubscribed throughput, ops/sec (GOMAXPROCS=%d, %s/point)",
					runtime.GOMAXPROCS(0), *oversubDur), opts))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return nil
}
