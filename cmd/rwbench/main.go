// Command rwbench runs the native-lock experiments (E7 throughput and
// E8 priority latency in DESIGN.md) against real goroutines and
// sync/atomic, comparing the paper's locks with sync.RWMutex and the
// classical baselines.
//
// Usage:
//
//	rwbench [-ops N] [-seed S] [-workers list] [-locks list] [-markdown] [-quick]
//
// -locks restricts the sweep to a comma-separated subset of the lock
// registry, e.g. `-locks "MWSF,Bravo(MWSF),sync.RWMutex"` to isolate
// the BRAVO fast path's effect against its own inner lock.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"rwsync/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rwbench:", err)
		os.Exit(1)
	}
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad worker count %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rwbench", flag.ContinueOnError)
	ops := fs.Int("ops", 20000, "operations per worker")
	seed := fs.Int64("seed", 1, "workload seed")
	workersFlag := fs.String("workers", "", "comma-separated worker counts (default 1,2,4,..,2*NumCPU)")
	locksFlag := fs.String("locks", "", "comma-separated lock names to sweep (default: all registered locks)")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	quick := fs.Bool("quick", false, "smaller sweep for smoke runs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var requested []string
	for _, part := range strings.Split(*locksFlag, ",") {
		if part = strings.TrimSpace(part); part != "" {
			requested = append(requested, part)
		}
	}
	lockNames, err := harness.SelectLockNames(requested)
	if err != nil {
		return err
	}

	var workers []int
	if *workersFlag != "" {
		var err error
		workers, err = parseIntList(*workersFlag)
		if err != nil {
			return err
		}
	} else {
		for w := 1; w <= 2*runtime.NumCPU(); w *= 2 {
			workers = append(workers, w)
		}
		if len(workers) == 0 {
			workers = []int{1}
		}
	}
	fractions := []float64{0.5, 0.9, 0.99, 1.0}
	readers := 8
	if *quick {
		fractions = []float64{0.9}
		readers = 4
	}

	emit := func(t interface {
		Render() string
		Markdown() string
	}) {
		if *markdown {
			fmt.Fprintln(out, t.Markdown())
		} else {
			fmt.Fprintln(out, t.Render())
		}
	}

	pts := harness.ThroughputSweepLocks(lockNames, workers, fractions, *ops, *seed)
	emit(harness.ThroughputTable(
		fmt.Sprintf("E7: native throughput, ops/sec (GOMAXPROCS=%d, %d ops/worker)", runtime.GOMAXPROCS(0), *ops), pts))

	prio := harness.PrioritySweepLocks(lockNames, readers, *ops, *seed)
	emit(harness.PriorityTable(
		fmt.Sprintf("E8: 1 dedicated writer vs %d readers — latency by class", readers), prio))
	return nil
}
