package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"rwsync/internal/harness"
	"rwsync/internal/stats"
)

// validateReportFile checks a -json report (a BENCH_*.json record or
// the CI bench-smoke emission) against the versioned schema.  The
// point is to fail loudly on drift: an unknown schema_version, a
// field the current schema doesn't know, or an internally
// inconsistent histogram all mean some producer and consumer of
// benchmark records disagree, and the disagreement should break the
// build rather than silently corrupt the perf trajectory.
func validateReportFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return validateReport(raw)
}

func validateReport(raw []byte) error {
	// Version gate first, against a loose decode, so a report from a
	// future schema is rejected as "unknown version" rather than as a
	// confusing unknown-field error.
	var versioned struct {
		SchemaVersion *int `json:"schema_version"`
	}
	if err := json.Unmarshal(raw, &versioned); err != nil {
		return fmt.Errorf("not a JSON report: %w", err)
	}
	if versioned.SchemaVersion == nil {
		return fmt.Errorf("missing schema_version (pre-versioning report?); current is %d", schemaVersion)
	}
	if *versioned.SchemaVersion != schemaVersion {
		return fmt.Errorf("unknown schema_version %d (this build understands %d)",
			*versioned.SchemaVersion, schemaVersion)
	}

	// Strict structural decode: any field the schema doesn't declare
	// is drift.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var rep report
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("schema drift: %w", err)
	}

	if rep.GOMAXPROCS <= 0 || rep.NumCPU <= 0 {
		return fmt.Errorf("run metadata missing (gomaxprocs=%d numcpu=%d)", rep.GOMAXPROCS, rep.NumCPU)
	}
	if len(rep.Throughput) == 0 && len(rep.Priority) == 0 &&
		len(rep.Oversubscribed) == 0 && len(rep.Scenarios) == 0 {
		return fmt.Errorf("report carries no measurements")
	}
	for _, p := range rep.Throughput {
		if p.Lock == "" || p.Workers <= 0 || p.OpsPerSec <= 0 {
			return fmt.Errorf("bad throughput point %+v", p)
		}
	}
	for _, p := range rep.Oversubscribed {
		if p.Lock == "" || p.Workers <= 0 || p.OpsPerSec <= 0 {
			return fmt.Errorf("bad oversubscribed point %+v", p)
		}
	}
	for _, p := range rep.Priority {
		if p.Lock == "" {
			return fmt.Errorf("bad priority point %+v", p)
		}
	}
	for _, sr := range rep.Scenarios {
		if err := validateScenarioResult(sr); err != nil {
			return err
		}
	}
	return nil
}

func validateScenarioResult(sr *harness.ScenarioResult) error {
	if sr == nil || sr.Scenario.Name == "" {
		return fmt.Errorf("scenario result without a name")
	}
	if len(sr.Points) == 0 {
		return fmt.Errorf("scenario %s: no points", sr.Scenario.Name)
	}
	if sr.GOMAXPROCS <= 0 {
		return fmt.Errorf("scenario %s: missing gomaxprocs", sr.Scenario.Name)
	}
	sim := sr.Scenario.Sim != nil
	sharded := len(sr.Scenario.Stripes) > 0
	for i, p := range sr.Points {
		if sim {
			if p.System == "" || p.ReaderRMR == nil || p.WriterRMR == nil {
				return fmt.Errorf("scenario %s point %d: incomplete sim point", sr.Scenario.Name, i)
			}
			if p.Counters != nil {
				return fmt.Errorf("scenario %s point %d: counters on a simulator point", sr.Scenario.Name, i)
			}
			continue
		}
		if p.Lock == "" || p.Workers <= 0 || p.OpsPerSec <= 0 {
			return fmt.Errorf("scenario %s point %d: incomplete native point (%+v)", sr.Scenario.Name, i, p)
		}
		// Sharded bookkeeping (schema_version 2, additive): a scenario
		// that sweeps a stripe axis must carry the grid size and the
		// measured footprint on every point; a flat scenario must not
		// carry either — a stray stripes column would mean some producer
		// routed a flat sweep through the sharded runner.
		if sharded {
			if p.Stripes <= 0 {
				return fmt.Errorf("scenario %s point %d: sharded point without a stripe count", sr.Scenario.Name, i)
			}
			if p.BytesPerLock <= 0 {
				return fmt.Errorf("scenario %s point %d: sharded point without bytes_per_lock", sr.Scenario.Name, i)
			}
			if p.HotReadOps < 0 || p.HotReadOps > p.ReadOps {
				return fmt.Errorf("scenario %s point %d: hot_read_ops %d outside [0, read_ops=%d]",
					sr.Scenario.Name, i, p.HotReadOps, p.ReadOps)
			}
		} else if p.Stripes != 0 || p.ZipfS != 0 || p.BytesPerLock != 0 || p.HotReadOps != 0 {
			return fmt.Errorf("scenario %s point %d: sharded columns without a stripe axis", sr.Scenario.Name, i)
		}
		// Adaptive-promotion bookkeeping (additive on the sharded
		// columns): the counters exist exactly when the point ran with
		// a hot-set budget.  On a budgeted point the maintainer's
		// invariants must hold — the promoted-set high water respects
		// the budget, a demotion implies an earlier promotion, and the
		// bytes high water is at least the cold grid it sits on.  A
		// budget-0 (or non-sharded) point carrying any adaptive
		// counter means a producer billed promotion work to a baseline
		// row.
		if p.HotSetBudget > 0 {
			if !sharded {
				return fmt.Errorf("scenario %s point %d: hot-set budget without a stripe axis", sr.Scenario.Name, i)
			}
			if p.HotSetMax > p.HotSetBudget {
				return fmt.Errorf("scenario %s point %d: hot_set_max %d over budget %d",
					sr.Scenario.Name, i, p.HotSetMax, p.HotSetBudget)
			}
			if p.Demotions > p.Promotions {
				return fmt.Errorf("scenario %s point %d: %d demotions exceed %d promotions",
					sr.Scenario.Name, i, p.Demotions, p.Promotions)
			}
			if p.Promotions > 0 && p.HotSetMax <= 0 {
				return fmt.Errorf("scenario %s point %d: %d promotions with hot_set_max %d",
					sr.Scenario.Name, i, p.Promotions, p.HotSetMax)
			}
			if p.BytesPerLockHigh < p.BytesPerLock {
				return fmt.Errorf("scenario %s point %d: bytes_per_lock_high %v below bytes_per_lock %v",
					sr.Scenario.Name, i, p.BytesPerLockHigh, p.BytesPerLock)
			}
		} else if p.HotSetBudget != 0 || p.Promotions != 0 || p.Demotions != 0 ||
			p.HotSetMax != 0 || p.BytesPerLockHigh != 0 {
			return fmt.Errorf("scenario %s point %d: adaptive counters without a hot-set budget", sr.Scenario.Name, i)
		}
		// Deadline bookkeeping: shed counts exist exactly when the
		// scenario ran with a write deadline, and the rate must agree
		// with the counts it summarizes.
		if sr.Scenario.WriteDeadlineUs > 0 {
			if p.ShedRate < 0 || p.ShedRate > 1 {
				return fmt.Errorf("scenario %s point %d: shed_rate %v outside [0,1]", sr.Scenario.Name, i, p.ShedRate)
			}
			if p.WriteOps+p.ShedOps <= 0 {
				return fmt.Errorf("scenario %s point %d: deadline run with no write attempts", sr.Scenario.Name, i)
			}
		} else if p.ShedOps != 0 || p.ShedRate != 0 {
			return fmt.Errorf("scenario %s point %d: shed counts without a write deadline", sr.Scenario.Name, i)
		}
		// Epoch reclamation bookkeeping: retained-memory counters exist
		// only on epoch-wrapped points, and only a versioned-datum run
		// (VersionBytes > 0) retires anything; the counts must be
		// internally consistent — nothing is reclaimed that was never
		// retired, the high-water marks cover the unreclaimed residue,
		// and retiring without ever paying a grace wait would mean
		// versions were freed with readers possibly still inside them.
		if p.RetiredVersions < 0 || p.ReclaimedVersions < 0 ||
			p.ReclaimedVersions > p.RetiredVersions {
			return fmt.Errorf("scenario %s point %d: reclaimed %d of %d retired versions",
				sr.Scenario.Name, i, p.ReclaimedVersions, p.RetiredVersions)
		}
		if p.RetainedVersionsMax < p.RetiredVersions-p.ReclaimedVersions {
			return fmt.Errorf("scenario %s point %d: retained_versions_max %d below unreclaimed residue %d",
				sr.Scenario.Name, i, p.RetainedVersionsMax, p.RetiredVersions-p.ReclaimedVersions)
		}
		if p.RetiredVersions > 0 && (p.GraceWaits <= 0 || p.EpochAdvances <= 0) {
			return fmt.Errorf("scenario %s point %d: %d versions retired without grace waits (grace=%d advances=%d)",
				sr.Scenario.Name, i, p.RetiredVersions, p.GraceWaits, p.EpochAdvances)
		}
		if sr.Scenario.VersionBytes <= 0 &&
			(p.RetiredVersions != 0 || p.ReclaimedVersions != 0 ||
				p.RetainedVersionsMax != 0 || p.RetainedBytesMax != 0) {
			return fmt.Errorf("scenario %s point %d: retained-memory counters without version_bytes",
				sr.Scenario.Name, i)
		}
		// Counter bookkeeping (additive, schema_version 2): the lock's
		// LockStats snapshot exists exactly when the run was
		// instrumented (-metrics, recorded as the result's metrics
		// bit).  A recorded block must pass the library's own quiescent
		// coherence check, and — when the row is inside the stats seam
		// at all (any acquire or shed counted) — the lock-level passage
		// counts must tie to the workload's op counts: every completed
		// op was exactly one completed passage, every deadline shed one
		// context shed.  On epoch rows the reclamation counters must
		// agree with the point's own epoch columns (the same run seen
		// through rwlock.EpochStatsOf) — two bookkeepers of one
		// history.
		if sr.Metrics && p.Counters == nil {
			return fmt.Errorf("scenario %s point %d: metrics run without counters", sr.Scenario.Name, i)
		}
		if !sr.Metrics && p.Counters != nil {
			return fmt.Errorf("scenario %s point %d: counters without a metrics run", sr.Scenario.Name, i)
		}
		if c := p.Counters; c != nil {
			if err := c.CheckCoherence(); err != nil {
				return fmt.Errorf("scenario %s point %d: %w", sr.Scenario.Name, i, err)
			}
			if c.ReadAcquires > 0 || c.WriteAcquires > 0 || c.CtxSheds > 0 {
				if int64(c.ReadAcquires) != p.ReadOps {
					return fmt.Errorf("scenario %s point %d: %d read acquires for %d read ops",
						sr.Scenario.Name, i, c.ReadAcquires, p.ReadOps)
				}
				if int64(c.WriteAcquires) != p.WriteOps {
					return fmt.Errorf("scenario %s point %d: %d write acquires for %d write ops",
						sr.Scenario.Name, i, c.WriteAcquires, p.WriteOps)
				}
				if int64(c.CtxSheds) != p.ShedOps {
					return fmt.Errorf("scenario %s point %d: %d context sheds for %d shed ops",
						sr.Scenario.Name, i, c.CtxSheds, p.ShedOps)
				}
				if p.RetiredVersions > 0 {
					if int64(c.RetiredVersions) != p.RetiredVersions ||
						int64(c.ReclaimedVersions) != p.ReclaimedVersions {
						return fmt.Errorf("scenario %s point %d: counter reclamation %d/%d disagrees with epoch columns %d/%d",
							sr.Scenario.Name, i, c.RetiredVersions, c.ReclaimedVersions,
							p.RetiredVersions, p.ReclaimedVersions)
					}
				}
			}
		}
		for name, h := range map[string]*stats.HistSnapshot{
			"read_wait_ns": p.ReadWait, "read_hold_ns": p.ReadHold, "read_total_ns": p.ReadTotal,
			"write_wait_ns": p.WriteWait, "write_hold_ns": p.WriteHold, "write_total_ns": p.WriteTotal,
			"age_ns": p.Age, "batch_size": p.BatchSize,
		} {
			if err := h.Validate(); err != nil {
				return fmt.Errorf("scenario %s point %d %s: %w", sr.Scenario.Name, i, name, err)
			}
		}
		// An absent histogram (nil) is legitimate — a tiny -quick run
		// can sample zero ops of a class — so only presence is
		// validated, not existence.
	}
	return nil
}
