// counterexample: watch the model checker reproduce Section 3.3.
//
// The paper argues that the Figure 1 writer MUST wait for readers to
// clear the exit section before entering the CS, sketching a subtle
// interleaving that breaks mutual exclusion otherwise.  This example
// model-checks the deliberately broken variant (writer skips lines
// 9-12), finds the violation, and prints the machine-discovered
// counterexample schedule — every step from the initial state to a
// writer and a reader co-occupying the critical section.
//
// Run with:
//
//	go run ./examples/counterexample
package main

import (
	"fmt"

	"rwsync/internal/core"
	"rwsync/internal/mc"
)

func main() {
	fmt.Println("Model-checking the broken Figure 1 variant (no exit-section wait)")
	fmt.Println("with 1 writer + 2 readers, 3 attempts each ...")
	fmt.Println()

	sys := core.NewFig1BrokenSystem(2)
	r, err := sys.NewRunner(3)
	if err != nil {
		panic(err)
	}
	res := mc.Explore(r, mc.Options{Attempts: 3, KeepWitness: true})
	if res.Violation == nil {
		fmt.Println("no violation found — this should not happen!")
		return
	}
	fmt.Printf("violation after exploring %d states: %v\n\n", res.States, res.Violation)
	fmt.Printf("counterexample schedule (%d steps; proc 0 is the writer):\n\n", len(res.Witness))
	fmt.Print(mc.FormatWitness(r, res.Witness, 3))

	fmt.Println()
	fmt.Println("The correct Figure 1 passes the same search: its writer waits for")
	fmt.Println("the exit section (lines 9-12), and the checker visits every")
	fmt.Println("reachable state without finding any violation:")
	fmt.Println()

	good := core.NewFig1System(2)
	rg, err := good.NewRunner(3)
	if err != nil {
		panic(err)
	}
	resg := mc.Explore(rg, mc.Options{Attempts: 3, Invariant: good.Invariant, DetectStuck: true})
	if resg.Violation != nil {
		fmt.Printf("unexpected violation: %v\n", resg.Violation)
		return
	}
	fmt.Printf("fig1 (correct): %d states explored, mutual exclusion and all\n", resg.States)
	fmt.Println("appendix invariants hold in every one of them.")
}
