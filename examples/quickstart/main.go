// Quickstart: the three multi-writer locks of the paper, side by side.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"rwsync/rwlock"
)

func demo(name string, l rwlock.RWLock) {
	var counter int // guarded by l
	var wg sync.WaitGroup

	// Four writers increment the counter 1000 times each.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tok := l.Lock() // keep the token; Unlock needs it
				counter++
				l.Unlock(tok)
			}
		}()
	}
	// Eight readers watch the counter; they may share the CS.
	var reads int64
	var readsMu sync.Mutex
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < 1000; i++ {
				tok := l.RLock()
				_ = counter // consistent snapshot: no writer is inside
				local++
				l.RUnlock(tok)
			}
			readsMu.Lock()
			reads += local
			readsMu.Unlock()
		}()
	}
	wg.Wait()
	fmt.Printf("%-6s counter=%d (want 4000), reads=%d\n", name, counter, reads)
}

func main() {
	fmt.Println("rwsync quickstart: constant-RMR reader-writer locks")
	fmt.Println()

	// No priority: neither class can starve (Theorem 3).
	demo("MWSF", rwlock.NewMWSF())

	// Reader priority: readers never wait for waiting writers
	// (Theorem 4) — ideal when reads are latency-critical.
	demo("MWRP", rwlock.NewMWRP())

	// Writer priority: writers overtake waiting readers (Theorem 5) —
	// ideal when updates must become visible quickly.
	demo("MWWP", rwlock.NewMWWP())

	// Writer concurrency is unbounded by default (MCS arbitration).
	// WithBoundedWriters caps concurrent write attempts via the
	// paper's Anderson array — explicit admission control.
	demo("MWSF/b", rwlock.NewMWSF(rwlock.WithBoundedWriters(4)))

	// Flat-combining writer arbitration: closure-path writes
	// (rwlock.Write, Guard.Write, or the lock's own Write method) are
	// batched — one writer executes every pending critical section per
	// lock handoff.  Best under writer churn; relaxes strict FCFS to
	// publication order within a batch.
	demoCombining()

	// Epoch reader fast path: readers enter with zero shared-word RMWs
	// (a plain stamp + recheck); writers advance the epoch and wait out
	// a grace period, which also buys deferred version reclamation.
	demoEpoch()

	// Single-writer cores: when the application has one designated
	// writer, skip the writer-serialization layer entirely.
	demo("SWWP", oneWriter{rwlock.NewSWWP()})

	fmt.Println()
	fmt.Println("Tokens returned by Lock/RLock must be passed to the matching")
	fmt.Println("Unlock/RUnlock; they are plain values and may cross goroutines.")
}

// demoCombining drives the combining build through the closure write
// path (token-path Lock/Unlock would bypass the batching) and reports
// how many handoffs the batches saved.
func demoCombining() {
	l := rwlock.NewMWSF(rwlock.WithCombiningWriters())
	var counter int // guarded by l
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Write(func() { counter++ })
			}
		}()
	}
	wg.Wait()
	st, _ := l.CombinerStats()
	fmt.Printf("%-6s counter=%d (want 4000), %d writes retired in %d batches (max batch %d)\n",
		"MWSF/c", counter, st.Ops, st.Batches, st.MaxBatch)
}

// demoEpoch runs the shared demo over Epoch(MWSF), then shows the two
// things the wrapper adds: Retire hands an old version of the
// protected data to the lock for reclamation after a grace period (no
// reader can still observe it), and EpochStats reports the
// grace-period and retained-memory counters at quiescence.
func demoEpoch() {
	l := rwlock.NewEpochMWSF()
	demo("MWSF/e", l)

	// A versioned datum: each write publishes a fresh copy and retires
	// the old one instead of freeing it in place.
	version := []byte("v0")
	for i := 0; i < 3; i++ {
		tok := l.Lock()
		old := version
		version = []byte(fmt.Sprintf("v%d", i+1))
		l.Retire(old, len(old)) // reclaimed only after a grace period
		l.Unlock(tok)
	}
	st, _ := l.EpochStats()
	fmt.Printf("       epoch: %d advances, %d grace waits; retired %d versions, reclaimed %d, high-water %d (%dB)\n",
		st.Advances, st.GraceWaits, st.Retired, st.Reclaimed,
		st.MaxRetainedVersions, st.MaxRetainedBytes)
}

// oneWriter adapts the single-writer SWWP to the demo by funneling the
// four demo writers through a mutex (the single-writer contract allows
// only one write attempt at a time).
type oneWriter struct {
	l *rwlock.SWWP
}

var writerGate sync.Mutex

func (o oneWriter) Lock() rwlock.WToken {
	writerGate.Lock()
	return o.l.Lock()
}

func (o oneWriter) Unlock(t rwlock.WToken) {
	o.l.Unlock(t)
	writerGate.Unlock()
}

func (o oneWriter) RLock() rwlock.RToken    { return o.l.RLock() }
func (o oneWriter) RUnlock(t rwlock.RToken) { o.l.RUnlock(t) }
