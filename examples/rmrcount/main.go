// rmrcount: watch the paper's headline claim materialize.
//
// This example drives the Figure 1 algorithm and the centralized
// baseline on the repository's cache-coherent-machine simulator and
// prints exact remote-memory-reference (RMR) counts per lock passage
// as the number of readers doubles.  Figure 1 stays flat (Theorem 1:
// O(1) RMR); the centralized lock's writer pays for every reader.
//
// Run with:
//
//	go run ./examples/rmrcount
package main

import (
	"fmt"

	"rwsync/internal/ccsim"
	"rwsync/internal/core"
	"rwsync/internal/stats"
)

// worstRMR runs sys for attempts per process under a seeded random
// schedule and returns per-role RMR summaries.
func worstRMR(sys *core.System, attempts int, seed int64) (reader, writer stats.Summary) {
	r, err := sys.NewRunner(attempts)
	if err != nil {
		panic(err)
	}
	r.CollectStats = true
	if err := r.Run(ccsim.NewRandomSched(seed), 1<<26); err != nil {
		panic(err)
	}
	var rs, ws []int64
	for _, s := range r.Stats {
		if s.Reader {
			rs = append(rs, s.RMR)
		} else {
			ws = append(ws, s.RMR)
		}
	}
	return stats.Summarize(rs), stats.Summarize(ws)
}

func main() {
	fmt.Println("RMRs per passage on the simulated cache-coherent machine")
	fmt.Println("(writer column is the one to watch)")
	fmt.Println()

	t := stats.NewTable("",
		"readers",
		"fig1 writer max RMR", "fig1 reader max RMR",
		"centralized writer max RMR", "centralized reader max RMR")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		_, f1w := worstRMR(core.NewFig1System(n), 12, 42)
		f1r, _ := worstRMR(core.NewFig1System(n), 12, 43)
		cr, cw := worstRMR(core.NewCentralizedSystem(1, n), 12, 42)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", f1w.Max),
			fmt.Sprintf("%d", f1r.Max),
			fmt.Sprintf("%d", cw.Max),
			fmt.Sprintf("%d", cr.Max),
		)
	}
	fmt.Println(t.Render())
	fmt.Println("fig1 columns are constant in the number of readers (Theorem 1);")
	fmt.Println("the centralized writer spins on a word every reader modifies.")
}
