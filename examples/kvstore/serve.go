package main

import (
	"expvar"
	"fmt"
	"log"
	"math/rand/v2"
	"net/http"
	"time"

	"rwsync/rwlock"
	"rwsync/rwmap"
	"rwsync/rwstats"
)

// serve runs the store as a long-lived process with the observability
// surface mounted — the deployment shape the rwstats package is for:
//
//	/debug/rwsync  JSON snapshot of every registered lock and the
//	               store's per-stripe heatmap (?top=N for more stripes)
//	/metrics       the same counters in Prometheus text format
//	/debug/vars    expvar, with the registry published as "rwsync"
//
// Background traffic keeps the counters moving: skewed reads over the
// striped store (so the adaptive heatmap has something to show) and
// an administrative config writer on a stats-enabled MWWP — the
// writer-priority lock the example's batch mode measures.  A stall
// watchdog with a 1s threshold logs any wedged writer and bumps the
// stalls counter the endpoints serve.
func serve(addr string) {
	// The serving store: adaptive stripes so the heatmap shows hot-set
	// promotion under the skewed read traffic.
	store := rwmap.New[string, string](rwmap.WithStripes(64), rwmap.WithHotSet(4))

	// The administrative config lock: writer-priority, instrumented.
	cfgStats := &rwlock.LockStats{}
	cfgLock := rwlock.NewMWWP(rwlock.WithStats(cfgStats))
	cfg := map[string]string{"mode": "normal"}

	reg := rwstats.NewRegistry()
	if err := reg.RegisterLock("config(MWWP)", cfgStats); err != nil {
		log.Fatal(err)
	}
	if err := reg.RegisterMap("store", store); err != nil {
		log.Fatal(err)
	}
	if err := reg.PublishExpvar("rwsync"); err != nil {
		log.Fatal(err)
	}
	wd, err := reg.StartWatchdog(rwstats.WatchdogConfig{
		Threshold: time.Second,
		OnStall: func(s rwstats.Stall) {
			log.Printf("STALL: lock %q blocked at the %s layer for %v", s.Lock, s.Layer, s.Duration)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer wd.Stop()

	// Background traffic: skewed reads (a few hot keys draw most
	// lookups), a trickle of store writes, and periodic config updates
	// read by every request loop.
	for g := 0; g < 4; g++ {
		go func(seed uint64) {
			r := rand.New(rand.NewPCG(seed, 0))
			for i := 0; ; i++ {
				var key string
				if r.IntN(100) < 80 {
					key = fmt.Sprintf("hot-%d", r.IntN(4))
				} else {
					key = fmt.Sprintf("key-%d", r.IntN(4096))
				}
				if r.IntN(100) < 10 {
					store.Put(key, time.Now().Format(time.RFC3339Nano))
				} else {
					store.Get(key)
				}
				rt := cfgLock.RLock()
				_ = cfg["mode"]
				cfgLock.RUnlock(rt)
				if i%1024 == 0 {
					time.Sleep(time.Millisecond) // keep the demo polite
				}
			}
		}(uint64(g) + 1)
	}
	go func() {
		for i := 0; ; i++ {
			wt := cfgLock.Lock()
			cfg["mode"] = fmt.Sprintf("generation-%d", i)
			cfgLock.Unlock(wt)
			time.Sleep(50 * time.Millisecond)
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/debug/rwsync", reg)
	mux.Handle("/metrics", reg.Prometheus())
	mux.Handle("/debug/vars", expvar.Handler())
	log.Printf("kvstore serving observability on http://%s/debug/rwsync (JSON), /metrics (Prometheus), /debug/vars (expvar)", addr)
	log.Fatal(http.ListenAndServe(addr, mux))
}
