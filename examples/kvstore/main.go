// kvstore: an in-memory key-value store on the sharded serving tier —
// a striped rwmap.Map whose per-stripe locks are the paper's
// reader-writer disciplines.
//
// The scenario the paper's writer-priority case motivates:
// configuration data is read by many request handlers, and an
// occasional administrative update MUST become visible promptly even
// under a heavy read load.  With a reader-preference or task-fair
// lock, the writer can be delayed arbitrarily by a continuous stream
// of readers; with MWWP, a writer that completes its doorway overtakes
// every reader that arrives after it (WP1), and waiting writers are
// collectively unstoppable (WP2).
//
// The store itself is no longer a single lock around one map: it is a
// rwmap.Map, hash-striped over many locks so concurrent requests for
// different keys never contend.  Real serving traffic is skewed —
// a few keys draw most of the reads (classically Zipfian, s ≈ 1.07) —
// so the first measurement drives exactly that shape through striped
// grids of each lock (the harness's "zipf-grid" scenario, trimmed to
// example size) and reports throughput, the hot key's read rate, and
// the measured bytes per lock instance: the number that decides
// whether a 10^6-stripe grid is affordable.
//
// The second measurement is the harness's "bursty-writers" scenario —
// one administrative writer bursting updates against a storm of
// readers on a single cell — the regime every individual stripe is in
// when the traffic concentrates on one hot key: for each discipline
// it reports how long updates waited to land (write wait p50/p99) and
// how stale the readers' view got (age p99).
//
// Run with:
//
//	go run ./examples/kvstore
//
// or serve the live observability endpoints instead of running the
// batch measurements (see serve.go):
//
//	go run ./examples/kvstore -serve 127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"time"

	"rwsync/internal/harness"
	"rwsync/rwlock"
	"rwsync/rwmap"
)

// Store is a sharded key-value store: a striped map whose stripes are
// guarded by the configured reader-writer lock.
type Store struct {
	m *rwmap.Map[string, string]
}

// NewStore builds a store striped over n locks built by factory (nil
// means rwmap's default: 16-byte SlimBravo locks on the shared reader
// arena).
func NewStore(n int, factory func() rwlock.RWLock) *Store {
	opts := []rwmap.Option{rwmap.WithStripes(n)}
	if factory != nil {
		opts = append(opts, rwmap.WithLockFactory(factory))
	}
	return &Store{m: rwmap.New[string, string](opts...)}
}

// Get returns the value for key.
func (s *Store) Get(key string) (string, bool) { return s.m.Get(key) }

// Set stores value under key.
func (s *Store) Set(key, value string) { s.m.Put(key, value) }

// Compact deletes every key the keep predicate rejects, taking each
// stripe's write lock once per matching key via the closure path.
func (s *Store) Compact(keep func(key string) bool) {
	var doomed []string
	s.m.Range(func(k, _ string) bool {
		if !keep(k) {
			doomed = append(doomed, k)
		}
		return true
	})
	for _, k := range doomed {
		s.m.Delete(k)
	}
}

func main() {
	serveAddr := flag.String("serve", "", "serve /debug/rwsync, /metrics and /debug/vars on this address under background traffic instead of running the batch measurements")
	flag.Parse()
	if *serveAddr != "" {
		serve(*serveAddr)
		return
	}

	// The store API in one breath (and a sanity check that the stripes
	// actually guard the map): 256 stripes of writer-priority locks.
	s := NewStore(256, func() rwlock.RWLock { return rwlock.NewMWWP() })
	s.Set("mode", "normal")
	s.Set("mode", "maintenance")
	if v, _ := s.Get("mode"); v != "maintenance" {
		panic("update lost")
	}
	s.Set("mode/stale", "x")
	s.Compact(func(k string) bool { return k == "mode" })
	if _, ok := s.Get("mode/stale"); ok {
		panic("compaction lost")
	}

	// Measurement 1: Zipfian serving traffic over striped grids.  The
	// registry's zipf-grid scenario sweeps up to 10^6 stripes; the
	// example trims the axes to stay demo-sized and narrows the lock
	// set to one private/shared/slim triple plus the baseline.
	zg, ok := harness.ScenarioByName("zipf-grid")
	if !ok {
		panic("zipf-grid scenario not registered")
	}
	fmt.Printf("kvstore serving tier: %s\n", zg.Title)
	fmt.Println("(Zipf s=1.07 key popularity over striped maps; B/lock is measured")
	fmt.Println(" marginal heap per stripe lock — what 10^6 stripes would cost)")
	fmt.Println()
	res, err := harness.RunScenario(zg, harness.ScenarioOptions{
		Seed:    1,
		Locks:   []string{"Bravo(MWSF)", "Bravo(MWSF)/shared", "SlimBravo", "sync.RWMutex"},
		Stripes: []int{1 << 4, 1 << 10},
		ZipfS:   []float64{1.07},
	})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Points {
		fmt.Printf("%-19s %7d stripes  %7.0f B/lock  %9.0f ops/s  hot-key reads %5.1f%%\n",
			p.Lock, p.Stripes, p.BytesPerLock, p.OpsPerSec,
			100*float64(p.HotReadOps)/float64(p.ReadOps))
	}
	fmt.Println()

	// Measurement 2: the single-stripe regime — one hot cell, bursty
	// administrative writer vs a reader storm — where the lock
	// DISCIPLINE (who wins when both classes wait) decides update
	// latency and read-view staleness.
	sc, ok := harness.ScenarioByName("bursty-writers")
	if !ok {
		panic("bursty-writers scenario not registered")
	}
	fmt.Printf("hot-stripe discipline: %s\n", sc.Title)
	fmt.Printf("(1 dedicated writer bursting updates vs %d non-stop reader loops\n"+
		" on a cell guarded by each lock, %v per lock)\n\n",
		sc.Workers[0]-1, sc.Duration)

	notes := map[string]string{
		"MWWP":         "writer priority: updates overtake arriving readers (WP1)",
		"MWSF":         "no priority, starvation-free for both classes",
		"MWSF/bounded": "MWSF over the bounded Anderson writer arbitration",
		"MWSF/combine": "MWSF over the flat-combining writer arbitration",
		"MWRP":         "reader priority: updates wait for a reader gap (RP1)",
		"sync.RWMutex": "runtime baseline",
	}
	bres, err := harness.RunScenario(sc, harness.ScenarioOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	for _, p := range bres.Points {
		if p.WriteWait == nil || p.Age == nil {
			fmt.Printf("%-13s (run too short to sample)\n", p.Lock)
			continue
		}
		fmt.Printf("%-13s update waits p50 %-9s p99 %-9s  read-view age p99 %-9s  (%s)\n",
			p.Lock,
			time.Duration(p.WriteWait.P50),
			time.Duration(p.WriteWait.P99),
			time.Duration(p.Age.P99),
			notes[p.Lock])
	}

	fmt.Println("\nAll disciplines guarantee mutual exclusion and constant RMR complexity;")
	fmt.Println("striping decides how often two requests meet at the same lock, the")
	fmt.Println("discipline decides who wins when they do, and bytes/lock decides how")
	fmt.Println("many stripes you can afford — the three knobs the tables above measure.")
}
