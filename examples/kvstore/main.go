// kvstore: an in-memory key-value store guarded by the writer-priority
// lock (MWWP, the paper's Figure 4).
//
// The scenario the paper's writer-priority case motivates:
// configuration data is read by many request handlers, and an
// occasional administrative update MUST become visible promptly even
// under a heavy read load.  With a reader-preference or task-fair
// lock, the writer can be delayed arbitrarily by a continuous stream
// of readers; with MWWP, a writer that completes its doorway overtakes
// every reader that arrives after it (WP1), and waiting writers are
// collectively unstoppable (WP2).
//
// The demo runs the same storm against MWWP and against the
// reader-priority lock (MWRP) and prints how long the writer's update
// took to land in each case.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rwsync/rwlock"
)

// Store is a reader-writer-locked string map.
type Store struct {
	l rwlock.RWLock
	m map[string]string
}

// NewStore builds a store guarded by l.
func NewStore(l rwlock.RWLock) *Store {
	return &Store{l: l, m: make(map[string]string)}
}

// Get returns the value for key.
func (s *Store) Get(key string) (string, bool) {
	tok := s.l.RLock()
	v, ok := s.m[key]
	s.l.RUnlock(tok)
	return v, ok
}

// Set stores value under key.
func (s *Store) Set(key, value string) {
	tok := s.l.Lock()
	s.m[key] = value
	s.l.Unlock(tok)
}

// stormUpdateLatency measures how long one Set takes while nReaders
// goroutines hammer Get without pause.
func stormUpdateLatency(l rwlock.RWLock, nReaders int) time.Duration {
	s := NewStore(l)
	s.Set("mode", "normal")

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < nReaders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s.Get("mode")
			}
		}()
	}

	// Let the storm develop, then time the administrative update.
	time.Sleep(20 * time.Millisecond)
	t0 := time.Now()
	s.Set("mode", "maintenance")
	elapsed := time.Since(t0)

	stop.Store(true)
	wg.Wait()

	if v, _ := s.Get("mode"); v != "maintenance" {
		panic("update lost")
	}
	return elapsed
}

func main() {
	const readers = 8
	fmt.Printf("kvstore: one Set racing %d non-stop Get loops\n\n", readers)

	for _, cfg := range []struct {
		name string
		l    rwlock.RWLock
		note string
	}{
		{"MWWP (writer priority)", rwlock.NewMWWP(4), "writer overtakes arriving readers (WP1)"},
		{"MWSF (no priority)", rwlock.NewMWSF(4), "starvation-free for both classes"},
		{"MWRP (reader priority)", rwlock.NewMWRP(4), "readers go first; writer waits for a gap"},
	} {
		lat := stormUpdateLatency(cfg.l, readers)
		fmt.Printf("%-26s update visible after %8s   (%s)\n", cfg.name, lat, cfg.note)
	}

	fmt.Println("\nAll three guarantee mutual exclusion and constant RMR complexity;")
	fmt.Println("they differ only in who wins when both classes are waiting.")
}
