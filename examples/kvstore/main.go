// kvstore: an in-memory key-value store guarded by the writer-priority
// lock (MWWP, the paper's Figure 4).
//
// The scenario the paper's writer-priority case motivates:
// configuration data is read by many request handlers, and an
// occasional administrative update MUST become visible promptly even
// under a heavy read load.  With a reader-preference or task-fair
// lock, the writer can be delayed arbitrarily by a continuous stream
// of readers; with MWWP, a writer that completes its doorway overtakes
// every reader that arrives after it (WP1), and waiting writers are
// collectively unstoppable (WP2).
//
// The measurement is the harness's "bursty-writers" scenario — one
// administrative writer bursting updates against a storm of readers —
// run here through the same declarative engine rwbench uses
// (`rwbench -scenario bursty-writers`), instead of a hand-rolled
// stopwatch: for each discipline it reports how long updates waited
// to land (write wait p50/p99) and how stale the readers' view of the
// store got (age p99).
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"time"

	"rwsync/internal/harness"
	"rwsync/rwlock"
)

// Store is a reader-writer-locked string map.
type Store struct {
	l rwlock.RWLock
	m map[string]string
}

// NewStore builds a store guarded by l.
func NewStore(l rwlock.RWLock) *Store {
	return &Store{l: l, m: make(map[string]string)}
}

// Get returns the value for key.
func (s *Store) Get(key string) (string, bool) {
	tok := s.l.RLock()
	v, ok := s.m[key]
	s.l.RUnlock(tok)
	return v, ok
}

// Set stores value under key.
func (s *Store) Set(key, value string) {
	tok := s.l.Lock()
	s.m[key] = value
	s.l.Unlock(tok)
}

func main() {
	// The store API in one breath (and a sanity check that the lock
	// actually guards the map).
	s := NewStore(rwlock.NewMWWP())
	s.Set("mode", "normal")
	s.Set("mode", "maintenance")
	if v, _ := s.Get("mode"); v != "maintenance" {
		panic("update lost")
	}

	sc, ok := harness.ScenarioByName("bursty-writers")
	if !ok {
		panic("bursty-writers scenario not registered")
	}
	fmt.Printf("kvstore: %s\n", sc.Title)
	// The engine measures the harness workload (a lock-guarded cell
	// with the same storm shape the Store would see), not Store.Set
	// itself — the numbers characterize the lock discipline, which is
	// what the Store inherits.
	fmt.Printf("(scenario: 1 dedicated writer bursting updates vs %d non-stop reader loops\n"+
		" on a cell guarded by each lock, %v per lock)\n\n",
		sc.Workers[0]-1, sc.Duration)

	notes := map[string]string{
		"MWWP":         "writer priority: updates overtake arriving readers (WP1)",
		"MWSF":         "no priority, starvation-free for both classes",
		"MWSF/bounded": "MWSF over the bounded Anderson writer arbitration",
		"MWSF/combine": "MWSF over the flat-combining writer arbitration",
		"MWRP":         "reader priority: updates wait for a reader gap (RP1)",
		"sync.RWMutex": "runtime baseline",
	}
	res, err := harness.RunScenario(sc, harness.ScenarioOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Points {
		if p.WriteWait == nil || p.Age == nil {
			fmt.Printf("%-13s (run too short to sample)\n", p.Lock)
			continue
		}
		fmt.Printf("%-13s update waits p50 %-9s p99 %-9s  read-view age p99 %-9s  (%s)\n",
			p.Lock,
			time.Duration(p.WriteWait.P50),
			time.Duration(p.WriteWait.P99),
			time.Duration(p.Age.P99),
			notes[p.Lock])
	}

	fmt.Println("\nAll disciplines guarantee mutual exclusion and constant RMR complexity;")
	fmt.Println("they differ in who wins when both classes are waiting — which is exactly")
	fmt.Println("what the update-wait and age tails above make visible.")
}
