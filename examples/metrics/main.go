// metrics: a telemetry registry guarded by the reader-priority lock
// (MWRP, the paper's Theorem 4).
//
// The scenario the reader-priority case motivates: request handlers
// update counters on the hot path (here they are the READERS of the
// registry STRUCTURE — they only look up existing counter cells and
// bump atomics), while an administrative goroutine occasionally
// registers new metrics (the WRITER, restructuring the map).  Handler
// latency is sacred; registration can wait.  Under MWRP, handlers are
// never blocked by a waiting registrar (RP1), and handlers that share
// the structure keep entering together (RP2) — registration proceeds
// only when no handler is inside.
//
// Run with:
//
//	go run ./examples/metrics
package main

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rwsync/rwlock"
)

// Registry maps metric names to counter cells.  The map structure is
// guarded by an MWRP lock; the cells themselves are atomics, so
// handlers only need read (shared) access to bump them.
type Registry struct {
	l rwlock.RWLock
	m map[string]*atomic.Int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{l: rwlock.NewMWRP(), m: make(map[string]*atomic.Int64)}
}

// Register adds a metric (writer path; restructures the map).
func (r *Registry) Register(name string) {
	tok := r.l.Lock()
	if _, ok := r.m[name]; !ok {
		r.m[name] = &atomic.Int64{}
	}
	r.l.Unlock(tok)
}

// Inc bumps a metric if it exists (reader path; hot).
func (r *Registry) Inc(name string) bool {
	tok := r.l.RLock()
	c, ok := r.m[name]
	r.l.RUnlock(tok)
	if ok {
		c.Add(1)
	}
	return ok
}

// Snapshot returns a consistent name->value copy (reader path).
func (r *Registry) Snapshot() map[string]int64 {
	tok := r.l.RLock()
	out := make(map[string]int64, len(r.m))
	for k, v := range r.m {
		out[k] = v.Load()
	}
	r.l.RUnlock(tok)
	return out
}

func main() {
	reg := NewRegistry()
	reg.Register("requests")
	reg.Register("errors")

	var wg sync.WaitGroup
	// Eight handler goroutines on the hot path.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 50_000; j++ {
				reg.Inc("requests")
				if j%1000 == id {
					reg.Inc("errors")
				}
				// Late-registered metrics start counting the moment
				// the registrar's write lands.
				reg.Inc("retries")
			}
		}(i)
	}
	// The registrar adds a metric mid-flight; under MWRP it waits for
	// a natural gap between readers rather than stalling them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reg.Register("retries")
	}()
	wg.Wait()

	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("metrics snapshot (reader-priority registry):")
	for _, n := range names {
		fmt.Printf("  %-10s %d\n", n, snap[n])
	}
	fmt.Printf("\nrequests = %d (want 400000); retries counted only after registration\n", snap["requests"])
}
