package workload

import (
	"testing"
	"time"

	"rwsync/rwlock"
)

func TestRunMixedCounts(t *testing.T) {
	res := Run(rwlock.NewMWSF(), Config{
		Workers:      4,
		ReadFraction: 0.5,
		OpsPerWorker: 1000,
		Seed:         1,
	})
	total := res.ReadOps + res.WriteOps
	if total != 4000 {
		t.Fatalf("total ops = %d, want 4000", total)
	}
	// With fraction 0.5 and 4000 ops, both classes must be amply
	// represented (binomial tail bounds make <1200 astronomically
	// unlikely with a fixed seed this is deterministic anyway).
	if res.ReadOps < 1200 || res.WriteOps < 1200 {
		t.Fatalf("implausible split: %d reads / %d writes", res.ReadOps, res.WriteOps)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestRunDedicated(t *testing.T) {
	res := Run(rwlock.NewMWWP(), Config{
		Workers:          5,
		DedicatedWriters: 2,
		OpsPerWorker:     500,
		Seed:             3,
	})
	if res.WriteOps != 2*500 {
		t.Fatalf("write ops = %d, want 1000", res.WriteOps)
	}
	if res.ReadOps != 3*500 {
		t.Fatalf("read ops = %d, want 1500", res.ReadOps)
	}
}

func TestRunChurn(t *testing.T) {
	// Churn mode: every op on a fresh goroutine.  Counts, sampling and
	// the seeded op mix must be identical to the non-churn run — only
	// the goroutine identity of each passage changes.  The shared cell
	// is a plain int mutated by every one-shot writer, so -race checks
	// that the handoff between short-lived goroutines preserves
	// exclusion.
	cfg := Config{
		Workers:      8,
		ReadFraction: 0.25,
		OpsPerWorker: 150, // 1200 distinct goroutines
		Seed:         5,
		SampleEvery:  1,
	}
	churn := cfg
	churn.Churn = true
	a := Run(rwlock.NewMWSF(), cfg)
	b := Run(rwlock.NewMWSF(), churn)
	if a.ReadOps != b.ReadOps || a.WriteOps != b.WriteOps {
		t.Fatalf("churn changed the op mix: %d/%d vs %d/%d",
			a.ReadOps, a.WriteOps, b.ReadOps, b.WriteOps)
	}
	if total := b.ReadOps + b.WriteOps; total != 8*150 {
		t.Fatalf("churn total ops = %d, want 1200", total)
	}
	if b.WriteWaitNs.N() != b.WriteOps || b.ReadWaitNs.N() != b.ReadOps {
		t.Fatalf("churn lost samples: %d/%d waits for %d/%d ops",
			b.ReadWaitNs.N(), b.WriteWaitNs.N(), b.ReadOps, b.WriteOps)
	}
}

func TestRunReadOnlyAndWriteOnly(t *testing.T) {
	ro := Run(rwlock.NewMWRP(), Config{Workers: 2, ReadFraction: 1.0, OpsPerWorker: 200, Seed: 1})
	if ro.WriteOps != 0 || ro.ReadOps != 400 {
		t.Fatalf("read-only run: %d reads / %d writes", ro.ReadOps, ro.WriteOps)
	}
	wo := Run(rwlock.NewMWSF(), Config{Workers: 2, ReadFraction: 0.0, OpsPerWorker: 200, Seed: 1})
	if wo.ReadOps != 0 || wo.WriteOps != 400 {
		t.Fatalf("write-only run: %d reads / %d writes", wo.ReadOps, wo.WriteOps)
	}
}

func TestLatencySampling(t *testing.T) {
	res := Run(rwlock.NewCentralizedRW(), Config{
		Workers:      2,
		ReadFraction: 0.5,
		OpsPerWorker: 1000,
		SampleEvery:  1,
		Seed:         9,
	})
	if res.ReadLatNs.N == 0 || res.WriteLatNs.N == 0 {
		t.Fatalf("no latency samples: read n=%d write n=%d", res.ReadLatNs.N, res.WriteLatNs.N)
	}
	if res.ReadLatNs.N+res.WriteLatNs.N != 2000 {
		t.Fatalf("SampleEvery=1 must sample every op; got %d", res.ReadLatNs.N+res.WriteLatNs.N)
	}
}

func TestDefaultsApplied(t *testing.T) {
	res := Run(rwlock.NewRWMutexLock(), Config{Seed: 1, ReadFraction: 1.0})
	if res.ReadOps+res.WriteOps != 1000 { // 1 worker x 1000 default ops
		t.Fatalf("defaults not applied: %d ops", res.ReadOps+res.WriteOps)
	}
}

func TestDurationOverridesOps(t *testing.T) {
	park := rwlock.WithWaitStrategy(rwlock.SpinThenPark)
	res := Run(rwlock.NewMWSF(park), Config{
		Workers:      8,
		ReadFraction: 0.9,
		Duration:     30 * time.Millisecond,
		OpsPerWorker: 1, // must be ignored in duration mode
		Seed:         1,
	})
	if total := res.ReadOps + res.WriteOps; total <= 8 {
		t.Fatalf("duration mode stopped after the op budget: %d ops", total)
	}
	if res.Elapsed < 30*time.Millisecond {
		t.Fatalf("run ended before the deadline: %v", res.Elapsed)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestWaitHoldSplit(t *testing.T) {
	res := Run(rwlock.NewMWSF(), Config{
		Workers:      2,
		ReadFraction: 0.5,
		OpsPerWorker: 2000,
		SampleEvery:  1,
		CSWork:       256, // make hold time clearly nonzero
		Seed:         5,
	})
	for name, h := range map[string]struct {
		wait, hold, total interface{ N() int64 }
	}{
		"read":  {res.ReadWaitNs, res.ReadHoldNs, res.ReadTotalNs},
		"write": {res.WriteWaitNs, res.WriteHoldNs, res.WriteTotalNs},
	} {
		if h.wait.N() == 0 || h.hold.N() == 0 || h.total.N() == 0 {
			t.Fatalf("%s histograms empty: wait=%d hold=%d total=%d",
				name, h.wait.N(), h.hold.N(), h.total.N())
		}
		if h.wait.N() != h.total.N() || h.hold.N() != h.total.N() {
			t.Fatalf("%s sample counts disagree: wait=%d hold=%d total=%d",
				name, h.wait.N(), h.hold.N(), h.total.N())
		}
	}
	// Total must dominate each component (they are the same op's
	// split timings), at least in aggregate.
	if res.ReadTotalNs.Mean() < res.ReadWaitNs.Mean() ||
		res.ReadTotalNs.Mean() < res.ReadHoldNs.Mean() {
		t.Fatalf("total mean %.0f below a component (wait %.0f hold %.0f)",
			res.ReadTotalNs.Mean(), res.ReadWaitNs.Mean(), res.ReadHoldNs.Mean())
	}
	// The legacy summaries mirror the Total histograms.
	if res.ReadLatNs.N != int(res.ReadTotalNs.N()) || res.ReadLatNs.Max != res.ReadTotalNs.Max() {
		t.Fatalf("legacy summary diverged from histogram: %+v vs n=%d max=%d",
			res.ReadLatNs, res.ReadTotalNs.N(), res.ReadTotalNs.Max())
	}
}

func TestAgeProbe(t *testing.T) {
	res := Run(rwlock.NewMWWP(), Config{
		Workers:          4,
		DedicatedWriters: 1,
		OpsPerWorker:     2000,
		SampleEvery:      1,
		MeasureAge:       true,
		// Yield keeps the probe deterministic on a single P: without
		// it a reader can drain its whole op budget inside one
		// scheduler quantum, finishing before the dedicated writer's
		// first stamp — and an age histogram with zero samples is a
		// scheduling artifact, not a probe failure.
		Yield: true,
		Seed:  7,
	})
	if res.AgeNs == nil || res.AgeNs.N() == 0 {
		t.Fatal("age probe recorded nothing")
	}
	// Ages are sane: non-negative (clamped) and bounded by the run.
	if res.AgeNs.Max() > res.Elapsed.Nanoseconds() {
		t.Fatalf("observed age %d exceeds run duration %d",
			res.AgeNs.Max(), res.Elapsed.Nanoseconds())
	}
	off := Run(rwlock.NewMWWP(), Config{
		Workers: 2, ReadFraction: 0.5, OpsPerWorker: 200, Seed: 7,
	})
	if off.AgeNs != nil {
		t.Fatal("age histogram present without MeasureAge")
	}
}

func TestBurstyWriters(t *testing.T) {
	res := Run(rwlock.NewMWSF(), Config{
		Workers:          3,
		DedicatedWriters: 1,
		OpsPerWorker:     600,
		WriterBurstLen:   8,
		WriterBurstPause: 64,
		SampleEvery:      1,
		Seed:             2,
	})
	if res.WriteOps != 600 || res.ReadOps != 2*600 {
		t.Fatalf("burst shape changed the op budget: %d writes / %d reads",
			res.WriteOps, res.ReadOps)
	}
	if res.WriteWaitNs.N() != 600 {
		t.Fatalf("burst writer samples = %d, want 600", res.WriteWaitNs.N())
	}
}

func TestDeterministicMixWithSeed(t *testing.T) {
	cfg := Config{Workers: 3, ReadFraction: 0.7, OpsPerWorker: 500, Seed: 42}
	a := Run(rwlock.NewMWSF(), cfg)
	b := Run(rwlock.NewMWSF(), cfg)
	if a.ReadOps != b.ReadOps || a.WriteOps != b.WriteOps {
		t.Fatalf("same seed produced different mixes: (%d,%d) vs (%d,%d)",
			a.ReadOps, a.WriteOps, b.ReadOps, b.WriteOps)
	}
}

// TestRunWritesUseClosurePath: the workload's writes must go through
// the lock's closure write path (rwlock.Write) — on a combining lock
// every write passage then shows up in the combiner's op count.  If a
// refactor reverted runOp to token-path Lock/Unlock, combining would
// silently disengage and the combine scenarios would measure nothing;
// this pins the seam.
func TestRunWritesUseClosurePath(t *testing.T) {
	l := rwlock.NewMWSF(rwlock.WithCombiningWriters())
	res := Run(l, Config{
		Workers:      4,
		ReadFraction: 0.5,
		OpsPerWorker: 400,
		SampleEvery:  1,
		Seed:         3,
		MeasureAge:   true,
	})
	st, ok := rwlock.CombinerStatsOf(l)
	if !ok {
		t.Fatal("combining lock reports no combiner stats")
	}
	if st.Ops != res.WriteOps {
		t.Fatalf("combiner retired %d ops, workload wrote %d — writes bypassed the closure path",
			st.Ops, res.WriteOps)
	}
	if res.WriteWaitNs.N() != res.WriteOps {
		t.Fatalf("write samples = %d, want %d (acquire stamp lost on the combined path)",
			res.WriteWaitNs.N(), res.WriteOps)
	}
}
