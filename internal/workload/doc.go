// Package workload generates reproducible reader/writer workloads
// against the native rwlock implementations and measures throughput,
// per-operation latency distributions and writer-visibility age.  It
// is the measurement substrate of the scenario engine
// (internal/harness.RunScenario) and, through it, of the native
// experiments (E7 throughput, E8 priority latency, E12
// oversubscription, and the storm/latency-grid scenarios).
//
// A Config fixes the goroutine count, read fraction (or a dedicated-
// writer split, optionally bursty, for the storm shapes), per-worker
// operation count or deadline, busy-work inside and outside the
// critical section, and a seed, so any measurement can be replayed
// exactly.  The protected datum is a plain (non-atomic) cell mutated
// by writers and read by readers: running any workload under `go test
// -race` therefore doubles as a mutual-exclusion check on the lock
// under test — the native counterpart of the P1 verification that
// internal/check and internal/mc perform on the simulator, and the
// reason the BRAVO wrappers (which have no simulator model) are still
// race-verified.
//
// # Sampling design
//
// Latency is measured by sampling, not exhaustively: every k-th
// operation per worker (Config.SampleEvery, default DefaultSampleEvery)
// is timed at three points — request, acquire, release — and its
// request→acquire (wait) and acquire→release (hold) durations are
// recorded into histograms preallocated per worker before the clock
// starts.  Recording is allocation-free (stats.Histogram is one fixed
// array; see the AllocsPerRun test in internal/stats), per-worker
// state shares nothing, and the workers' histograms are merged only
// after the last worker has stopped — so the hot path the measurement
// observes is the same hot path that runs with measurement off, and
// the reported numbers stay honest.
//
// Sampling does not bias the percentiles it reports: whether op i is
// sampled is fixed by the worker id and op index alone, *before* the
// op runs, so the sampling decision cannot correlate with the op's
// eventual duration — the sample is a systematic 1-in-k slice, at a
// per-worker phase derived from the seed, of a latency sequence that
// cannot see the slice's phase, which makes the sampled distribution
// an unbiased estimate of the full one.  (The phase offset also keeps
// the guaranteed-cold op 0 — goroutine start, cache-cold lock — out
// of most workers' samples, so small smoke runs aren't dominated by
// startup cost.)  The caveat is periodicity: a workload whose latency
// oscillated with a period dividing k could alias, which is why the
// storm scenarios — whose write bursts ARE periodic — set SampleEvery
// to 1 and pay the (then-irrelevant) overhead instead.
//
// # The age probe
//
// Config.MeasureAge measures the other side of writer latency: not
// how long a write takes to land, but how stale the values readers
// observe are.  Every write stamps the protected cell with a
// monotonic timestamp under the write lock; every sampled read
// subtracts that stamp from its own clock while still holding the
// read lock.  The result — Result.AgeNs — is the distribution of the
// "age" of the data served, the freshness lens of the RCU age-memory
// trade-off literature (arXiv:2402.06860) applied to lock-based
// readers: a writer-priority lock bounds the tail of this
// distribution under storms, a reader-priority lock lets it stretch.
// The probe adds one clock read to every write's critical section, so
// it is opt-in rather than folded silently into unrelated numbers.
package workload
