// Package workload generates reproducible reader/writer workloads
// against the native rwlock implementations and measures throughput
// and per-operation latency.  It backs the native-performance
// experiments (E7 mixed-ratio throughput and E8 priority latency),
// driven through internal/harness and cmd/rwbench.
//
// A Config fixes the goroutine count, read fraction (or a dedicated-
// writer split for the E8 storm shape), per-worker operation count,
// busy-work inside and outside the critical section, and a seed, so
// any measurement can be replayed exactly.  The protected datum is a
// plain (non-atomic) counter mutated by writers and read by readers:
// running any workload under `go test -race` therefore doubles as a
// mutual-exclusion check on the lock under test — the native
// counterpart of the P1 verification that internal/check and
// internal/mc perform on the simulator, and the reason the BRAVO
// wrappers (which have no simulator model) are still race-verified.
package workload
