package workload

import (
	"math"
	"testing"
)

// TestZipfDeterministic: two samplers with the same seed produce the
// same stream; a different seed produces a different one.  The grids
// stand on this — a scenario's key sequence must be a function of the
// recorded seed alone.
func TestZipfDeterministic(t *testing.T) {
	tbl := NewZipfTable(1024, 1.07)
	a := NewZipfSampler(tbl, 42)
	b := NewZipfSampler(tbl, 42)
	c := NewZipfSampler(tbl, 43)
	same, diff := true, false
	for i := 0; i < 4096; i++ {
		av, bv, cv := a.Next(), b.Next(), c.Next()
		if av != bv {
			same = false
		}
		if av != cv {
			diff = true
		}
	}
	if !same {
		t.Error("same-seed samplers diverged")
	}
	if !diff {
		t.Error("different-seed samplers produced identical streams")
	}
}

// TestZipfRankFrequency: observed rank frequencies must track the
// analytic Zipf mass within tolerance on the head (where counts are
// large enough for a tight bound), and rank 0 must dominate.
func TestZipfRankFrequency(t *testing.T) {
	const keys, draws = 256, 1 << 20
	const s = 1.07
	tbl := NewZipfTable(keys, s)
	z := NewZipfSampler(tbl, 7)
	counts := make([]int, keys)
	for i := 0; i < draws; i++ {
		r := z.Next()
		if r >= keys {
			t.Fatalf("rank %d out of range [0,%d)", r, keys)
		}
		counts[r]++
	}
	// Analytic mass of rank r: (1/(r+1)^s) / H where H = sum.
	h := 0.0
	for r := 0; r < keys; r++ {
		h += 1 / math.Pow(float64(r+1), s)
	}
	for r := 0; r < 8; r++ {
		want := 1 / math.Pow(float64(r+1), s) / h
		got := float64(counts[r]) / draws
		if relErr := math.Abs(got-want) / want; relErr > 0.05 {
			t.Errorf("rank %d: observed mass %.4f, analytic %.4f (rel err %.1f%%)",
				r, got, want, relErr*100)
		}
	}
	if counts[0] <= counts[1] {
		t.Errorf("rank 0 (%d draws) not hotter than rank 1 (%d)", counts[0], counts[1])
	}
}

// TestZipfUniformDegenerate: s = 0 is the uniform control — every
// rank within a loose band of draws/keys, and the head must NOT be
// hot.
func TestZipfUniformDegenerate(t *testing.T) {
	const keys, draws = 64, 1 << 18
	tbl := NewZipfTable(keys, 0)
	z := NewZipfSampler(tbl, 11)
	counts := make([]int, keys)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	want := float64(draws) / keys
	for r, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.10 {
			t.Errorf("uniform rank %d: %d draws, want ~%.0f", r, c, want)
		}
	}
}

// TestZipfFullRangeCovered: the top CDF entry is pinned to exactly 1,
// so no draw can fall past the last rank, and with enough draws over
// a tiny space every rank appears.
func TestZipfFullRangeCovered(t *testing.T) {
	tbl := NewZipfTable(8, 1.5)
	z := NewZipfSampler(tbl, 3)
	seen := make([]bool, 8)
	for i := 0; i < 1<<16; i++ {
		seen[z.Next()] = true
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d never drawn", r)
		}
	}
	if NewZipfTable(0, 1).Keys() != 1 {
		t.Error("keys < 1 not clamped to 1")
	}
}

// TestZipfSamplerDoesNotAllocate pins the draw path at zero
// allocations — the property that lets every worker sample inside
// its measured loop without disturbing the allocator behavior of the
// run it is measuring.
func TestZipfSamplerDoesNotAllocate(t *testing.T) {
	tbl := NewZipfTable(1<<16, 1.07)
	z := NewZipfSampler(tbl, 5)
	var sink uint64
	if avg := testing.AllocsPerRun(1000, func() { sink += z.Next() }); avg != 0 {
		t.Errorf("Next allocates %.1f objects per draw, want 0", avg)
	}
	_ = sink
}
