package workload

import (
	"testing"

	"rwsync/rwlock"
)

// TestRunShardedCounts: the op accounting adds up, the map really
// absorbs the writes (total counter mass == WriteOps), and the skew
// shows: under s=1.5 the hot key must attract far more than a
// uniform share of reads.
func TestRunShardedCounts(t *testing.T) {
	cfg := ShardedConfig{
		Workers:      4,
		ReadFraction: 0.9,
		OpsPerWorker: 2000,
		Stripes:      64,
		Keys:         1024,
		ZipfS:        1.5,
		Seed:         2,
		SampleEvery:  1,
	}
	res := RunSharded(cfg)
	total := res.ReadOps + res.WriteOps
	if total != int64(cfg.Workers*cfg.OpsPerWorker) {
		t.Fatalf("ops = %d, want %d", total, cfg.Workers*cfg.OpsPerWorker)
	}
	if res.ReadOps == 0 || res.WriteOps == 0 {
		t.Fatalf("degenerate mix: reads=%d writes=%d", res.ReadOps, res.WriteOps)
	}
	// Uniform share of rank 0 would be ReadOps/Keys; s=1.5 over 1024
	// keys gives the head ~38% of the mass.  10x uniform is a loose
	// floor that still catches a broken sampler or key mapping.
	if res.HotReadOps < 10*res.ReadOps/int64(cfg.Keys) {
		t.Errorf("hot key drew %d of %d reads — no skew visible", res.HotReadOps, res.ReadOps)
	}
	if res.ReadWaitNs.N() != res.ReadOps || res.WriteWaitNs.N() != res.WriteOps {
		t.Errorf("sample counts (r=%d w=%d) disagree with op counts (r=%d w=%d)",
			res.ReadWaitNs.N(), res.WriteWaitNs.N(), res.ReadOps, res.WriteOps)
	}
	if res.HotReadThroughput() <= 0 {
		t.Error("hot-read throughput not positive")
	}
}

// TestRunShardedFactories: the grid runs over each of the serving-tier
// lock builds, including the combining build whose stripe writes must
// batch through the closure path.  Under -race this is also the
// cross-stripe exclusion check.
func TestRunShardedFactories(t *testing.T) {
	tbl := rwlock.NewReaderTable(64)
	for name, f := range map[string]func() rwlock.RWLock{
		"SlimBravo":    func() rwlock.RWLock { return rwlock.NewSlimBravo(rwlock.WithSharedReaderTable(tbl)) },
		"SlimEpoch":    func() rwlock.RWLock { return rwlock.NewSlimEpoch(rwlock.WithSharedReaderTable(tbl)) },
		"Bravo/shared": func() rwlock.RWLock { return rwlock.NewBravoMWSF(rwlock.WithSharedReaderTable(tbl)) },
		"sync.RWMutex": func() rwlock.RWLock { return rwlock.NewRWMutexLock() },
	} {
		t.Run(name, func(t *testing.T) {
			res := RunSharded(ShardedConfig{
				Workers:      4,
				ReadFraction: 0.8,
				OpsPerWorker: 500,
				Stripes:      16,
				Keys:         256,
				ZipfS:        1.07,
				MixedOps:     true,
				Seed:         5,
				LockFactory:  f,
			})
			if res.ReadOps+res.WriteOps != 2000 {
				t.Fatalf("ops = %d, want 2000", res.ReadOps+res.WriteOps)
			}
		})
	}
}

// TestRunShardedAgeProbe: with the hot-key age probe on, sampled hot
// reads that observed a written cell must record ages; without it
// AgeNs stays nil.
func TestRunShardedAgeProbe(t *testing.T) {
	cfg := ShardedConfig{
		Workers:      4,
		ReadFraction: 0.7,
		OpsPerWorker: 3000,
		Stripes:      4,
		Keys:         8, // tiny space: the hot key is written constantly
		ZipfS:        1.07,
		Seed:         9,
		SampleEvery:  1,
		MeasureAge:   true,
	}
	res := RunSharded(cfg)
	if res.AgeNs == nil || res.AgeNs.N() == 0 {
		t.Fatal("age probe on, but no hot-key ages recorded")
	}
	cfg.MeasureAge = false
	if res = RunSharded(cfg); res.AgeNs != nil {
		t.Fatal("age histogram allocated with the probe off")
	}
}

// TestRunShardedDeterministicMix: same seed, same op split — the
// property BENCH reproduction rests on.
func TestRunShardedDeterministicMix(t *testing.T) {
	cfg := ShardedConfig{
		Workers:      3,
		ReadFraction: 0.6,
		OpsPerWorker: 1000,
		Stripes:      8,
		Keys:         128,
		ZipfS:        1.07,
		Seed:         21,
	}
	a, b := RunSharded(cfg), RunSharded(cfg)
	if a.ReadOps != b.ReadOps || a.WriteOps != b.WriteOps || a.HotReadOps != b.HotReadOps {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.ReadOps, a.WriteOps, a.HotReadOps, b.ReadOps, b.WriteOps, b.HotReadOps)
	}
}
