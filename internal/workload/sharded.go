package workload

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rwsync/internal/stats"
	"rwsync/rwlock"
	"rwsync/rwmap"
)

// Cell is the protected per-key datum of the sharded scenarios: a
// counter plus the monotonic stamp of the write that produced it (the
// age probe's input).  Guarded by the key's stripe lock — plain
// fields, so -race runs double as an exclusion check on the grid.
type Cell struct {
	Value int64
	Stamp int64 // ns since run start, written inside the stripe's write CS
}

// ShardedConfig describes one serving-tier run: a striped map under
// Zipfian key traffic.
type ShardedConfig struct {
	// Workers is the number of goroutines issuing operations.
	Workers int
	// ReadFraction is the probability an op is a read.
	ReadFraction float64
	// OpsPerWorker is each worker's op budget; Duration > 0 overrides
	// it with a deadline (see Config.Duration for why).
	OpsPerWorker int
	Duration     time.Duration
	// Stripes is the map's stripe count (power of two; see rwmap).
	Stripes int
	// Keys is the key-space size ranks are drawn from; 0 defaults to
	// 16384.  Keys is independent of Stripes: a small key space over
	// many stripes measures per-stripe isolation, a large one over few
	// stripes measures stripe sharing.
	Keys int
	// ZipfS is the popularity exponent (0 = uniform; serving traffic
	// is classically s ≈ 1.07).  Rank 0 is the hot key.
	ZipfS float64
	// CSWork/ThinkWork shape the critical and remainder sections.
	CSWork    int
	ThinkWork int
	// MixedOps makes every 16th op heavy: 8x CSWork inside the
	// critical section — the mixed-op-size shape where occasional fat
	// ops ride the same stripe locks as the fast majority.
	MixedOps bool
	// Seed drives both the per-worker op mix and the Zipf streams.
	Seed int64
	// SampleEvery records every k-th op's latency (0 = workload
	// default).
	SampleEvery int
	// MeasureAge enables the hot-key read-view age probe: every write
	// stamps its cell, every sampled read of rank 0 reports how stale
	// the value it saw was.  Cheaper than Config.MeasureAge's global
	// probe — only the hot key's reads pay the clock read.
	MeasureAge bool
	// Yield yields after each op (see Config.Yield).
	Yield bool
	// LockFactory builds each stripe's lock; nil means rwmap's
	// default (SlimBravo on the shared reader table).  Ignored when
	// Adaptive is set (adaptive mode owns the stripe locks).
	LockFactory func() rwlock.RWLock
	// Adaptive, when non-nil, runs the map with adaptive hot-stripe
	// promotion (rwmap.WithAdaptiveLocks); the promotion counters come
	// back in ShardedResult.MapStats.
	Adaptive *rwmap.AdaptiveConfig
}

// ShardedResult aggregates a sharded run.  The embedded Result's
// histograms carry per-class wait/hold/total exactly as the flat
// workload's do; HotReadOps counts reads that landed on rank 0 (the
// skew made visible), and AgeNs — when the probe ran — is the hot
// key's read-view age distribution.
type ShardedResult struct {
	Result
	HotReadOps int64
	// MapStats carries the adaptive promotion counters when the run
	// was adaptive (MapStats.Adaptive true).
	MapStats rwmap.MapStats
}

// RunSharded executes the serving-tier workload against a fresh
// striped map and returns aggregate results.
func RunSharded(cfg ShardedConfig) *ShardedResult {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 1000
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 1
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 16384
	}

	mopts := []rwmap.Option{rwmap.WithStripes(cfg.Stripes)}
	if cfg.Adaptive != nil {
		mopts = append(mopts, rwmap.WithAdaptiveLocks(*cfg.Adaptive))
	} else if cfg.LockFactory != nil {
		mopts = append(mopts, rwmap.WithLockFactory(cfg.LockFactory))
	}
	m := rwmap.New[uint64, Cell](mopts...)

	// One shared CDF table (read-only), one sampler per worker.
	ztbl := NewZipfTable(cfg.Keys, cfg.ZipfS)

	var (
		readOps    atomic.Int64
		writeOps   atomic.Int64
		hotReadOps atomic.Int64
		deadline   atomic.Bool
	)
	hists := make([]*workerHists, cfg.Workers)
	for i := range hists {
		hists[i] = new(workerHists)
	}
	if cfg.Duration > 0 {
		timer := time.AfterFunc(cfg.Duration, func() { deadline.Store(true) })
		defer timer.Stop()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			zipf := NewZipfSampler(ztbl, cfg.Seed+int64(id)*104729+1)
			var sink int64
			h := hists[id]
			phase := int(((cfg.Seed+int64(id)*7919)%int64(cfg.SampleEvery) +
				int64(cfg.SampleEvery)) % int64(cfg.SampleEvery))

			// The write critical section, hoisted so the closure is
			// built once per worker; per-op state flows through the
			// captured locals (the same pattern as the flat workload's
			// writeCS).  It runs inside the stripe's write CS — on a
			// combining stripe lock possibly on the combiner's
			// goroutine — so the acquire stamp is taken inside and read
			// back after Update returns.
			var wSample bool
			var wAcq time.Time
			var wWork int
			updateCS := func(v Cell, ok bool) (Cell, bool) {
				if wSample {
					wAcq = time.Now()
				}
				v.Value++
				spin(wWork, &sink)
				v.Stamp = int64(time.Since(start))
				return v, true
			}
			// The read section mirror: acquire stamp, observed stamp.
			var rSample bool
			var rAcq time.Time
			var rStamp int64
			var rWork int
			readCS := func(v Cell, ok bool) {
				if rSample {
					rAcq = time.Now()
				}
				_ = v.Value
				rStamp = v.Stamp
				spin(rWork, &sink)
			}

			for i := 0; ; i++ {
				if cfg.Duration > 0 {
					if deadline.Load() {
						break
					}
				} else if i >= cfg.OpsPerWorker {
					break
				}
				k := zipf.Next()
				write := rng.Float64() >= cfg.ReadFraction
				sample := (i+phase)%cfg.SampleEvery == 0
				work := cfg.CSWork
				if cfg.MixedOps && i%16 == 0 {
					work *= 8
				}
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				if write {
					wSample, wWork = sample, work
					m.Update(k, updateCS)
					writeOps.Add(1)
					if sample {
						tEnd := time.Now()
						h.writeWait.Record(wAcq.Sub(t0).Nanoseconds())
						h.writeHold.Record(tEnd.Sub(wAcq).Nanoseconds())
						h.writeTotal.Record(tEnd.Sub(t0).Nanoseconds())
					}
				} else {
					rSample, rWork, rStamp = sample, work, 0
					m.Read(k, readCS)
					readOps.Add(1)
					if k == 0 {
						hotReadOps.Add(1)
					}
					if sample {
						tEnd := time.Now()
						h.readWait.Record(rAcq.Sub(t0).Nanoseconds())
						h.readHold.Record(tEnd.Sub(rAcq).Nanoseconds())
						h.readTotal.Record(tEnd.Sub(t0).Nanoseconds())
						if cfg.MeasureAge && k == 0 && rStamp != 0 {
							if age := int64(time.Since(start)) - rStamp; age >= 0 {
								h.age.Record(age)
							}
						}
					}
				}
				spin(cfg.ThinkWork, &sink)
				if cfg.Yield {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &ShardedResult{
		Result: Result{
			Elapsed:      elapsed,
			ReadOps:      readOps.Load(),
			WriteOps:     writeOps.Load(),
			ReadWaitNs:   new(stats.Histogram),
			ReadHoldNs:   new(stats.Histogram),
			ReadTotalNs:  new(stats.Histogram),
			WriteWaitNs:  new(stats.Histogram),
			WriteHoldNs:  new(stats.Histogram),
			WriteTotalNs: new(stats.Histogram),
		},
		HotReadOps: hotReadOps.Load(),
		MapStats:   m.Stats(),
	}
	if cfg.MeasureAge {
		res.AgeNs = new(stats.Histogram)
	}
	for _, h := range hists {
		res.ReadWaitNs.Merge(&h.readWait)
		res.ReadHoldNs.Merge(&h.readHold)
		res.ReadTotalNs.Merge(&h.readTotal)
		res.WriteWaitNs.Merge(&h.writeWait)
		res.WriteHoldNs.Merge(&h.writeHold)
		res.WriteTotalNs.Merge(&h.writeTotal)
		if res.AgeNs != nil {
			res.AgeNs.Merge(&h.age)
		}
	}
	res.ReadLatNs = res.ReadTotalNs.Summary()
	res.WriteLatNs = res.WriteTotalNs.Summary()
	return res
}

// HotReadThroughput returns hot-key (rank 0) reads per second.
func (r *ShardedResult) HotReadThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.HotReadOps) / r.Elapsed.Seconds()
}
