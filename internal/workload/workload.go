package workload

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rwsync/internal/stats"
	"rwsync/rwlock"
)

// DefaultSampleEvery is the sampling rate applied when Config leaves
// SampleEvery zero: every 64th operation per worker is timed.  At
// this rate the sampling cost (three clock reads on the sampled op)
// amortizes to well under a nanosecond per operation — invisible even
// in the ~50 ns/op read-heavy grids — while a normal run still
// collects thousands of samples per class.  Scenarios whose product
// is the latency distribution itself (priority, latency-grid, bursty
// storms) set a denser rate explicitly.
const DefaultSampleEvery = 64

// Config describes one workload run.
type Config struct {
	// Workers is the number of goroutines issuing operations.
	Workers int
	// ReadFraction is the probability that a worker's next operation
	// is a read (1.0 = read-only, 0.0 = write-only).
	ReadFraction float64
	// DedicatedWriters, if > 0, overrides the mixed model: that many
	// workers write exclusively and the rest read exclusively.
	DedicatedWriters int
	// OpsPerWorker is how many operations each worker performs.
	OpsPerWorker int
	// Duration, if > 0, overrides OpsPerWorker: every worker issues
	// operations until the deadline passes.  This is the right mode
	// for oversubscribed runs (Workers ≫ GOMAXPROCS), where a fixed
	// per-worker op count would let the measurement tail off as
	// workers finish at very different times.
	Duration time.Duration
	// CSWork is the amount of busy work (loop iterations) inside the
	// critical section, modeling the protected operation's cost.
	CSWork int
	// ThinkWork is busy work between operations (remainder section).
	ThinkWork int
	// Seed makes the per-worker operation mix reproducible.
	Seed int64
	// SampleEvery records the latency of every k-th operation per
	// worker (default DefaultSampleEvery; 1 records all).  Sampling
	// is decided by op index alone, before the op runs, so whether an
	// op is sampled cannot correlate with how long it takes.
	SampleEvery int
	// MeasureAge enables the writer-visibility probe: every write
	// timestamps the protected value, and every sampled read reports
	// the age of the value it observed (now − write time) into
	// Result.AgeNs.  Off by default because it adds a clock read to
	// EVERY write's critical section — the probe's cost must be
	// opt-in, not silently folded into unrelated measurements.
	MeasureAge bool
	// WriterBurstLen, if > 0, makes dedicated writers bursty: each
	// writer issues WriterBurstLen back-to-back writes (no think
	// time inside the burst), then pauses for WriterBurstPause
	// iterations of busy work before the next burst.  Requires
	// DedicatedWriters > 0; readers are unaffected.  This is the
	// "administrative update storm" shape: long read-mostly quiet,
	// then a clump of writes whose wait latency and visibility age
	// are the product.
	WriterBurstLen int
	// WriterBurstPause is the busy-work pause between bursts
	// (default 4096 iterations when WriterBurstLen > 0).
	WriterBurstPause int
	// Yield makes every worker yield to the scheduler after each
	// operation (outside the timed window).  Storm-shaped scenarios
	// need it when goroutines can outnumber GOMAXPROCS: a non-stop
	// reader loop otherwise runs whole preemption quanta (~10ms)
	// unbroken, so a short run degenerates into sequential per-worker
	// phases and the probes measure scheduler quanta, not the lock —
	// the same reason bench_test.go's E8 storm readers yield.
	Yield bool
	// WriteDeadline, if > 0, gives every write a per-op budget: the
	// write acquires through the lock's LockCtx (the deadline-aware
	// token path) under a context that expires after WriteDeadline,
	// and a write whose context wins is SHED — it never enters the
	// critical section, counts into Result.ShedOps instead of
	// WriteOps, and records no latency sample.  The lock under test
	// must implement rwlock.CtxRWLock (every lock in the package
	// does).  Note the contract's commitment points: disciplines
	// whose queues abort (MCS arbitration) shed from anywhere in the
	// wait, while committed disciplines (Anderson past its admission
	// gate, the task-fair ticket queue) can only shed before their
	// point of no return — the shed-rate difference between the two
	// under the same deadline is exactly what the writer-shed
	// scenario measures.  Writes bypass the closure write path in
	// this mode (a combining lock's batches are not deadline-aware;
	// its LockCtx token path is).
	WriteDeadline time.Duration
	// VersionBytes, if > 0, makes the protected datum VERSIONED: each
	// write prepares a fresh VersionBytes-sized version outside the
	// lock (the copy-on-write shape), installs it in the critical
	// section, and hands the displaced version to the lock's deferred
	// reclamation when the lock implements rwlock.VersionRetirer (the
	// epoch wrapper); on any other lock the old version is simply
	// dropped for the garbage collector.  Combined with MeasureAge
	// this is the age-frontier probe: update age on one axis, the
	// lock's retained-version backlog (rwlock.EpochStatsOf) on the
	// other.
	VersionBytes int
	// Churn runs every operation on a FRESH goroutine: each worker
	// becomes a lane that spawns one short-lived goroutine per op and
	// waits for it before the next, so the number of distinct
	// goroutines that touch the lock equals the total op count while
	// concurrency stays bounded by Workers.  This is the
	// "thousands of one-shot writers" service shape (request handlers
	// that each take the lock once and die); the lock under test must
	// tolerate every passage coming from a goroutine it has never
	// seen — which is exactly what a bounded writer-arbitration layer
	// turns into an admission-gate stress.  Sampled timings include
	// the spawned goroutine's start-up in the wait component only if
	// the op is sampled before the spawn; to keep the wait histogram
	// about the LOCK, the clock starts inside the spawned goroutine.
	Churn bool
}

// Result aggregates a run.  The histograms hold the sampled per-op
// timings, split at the acquire point: Wait is request→acquire (time
// spent in the lock's entry protocol), Hold is acquire→release (the
// critical section including the release protocol), Total is
// request→release (Wait + Hold, the whole passage — what the legacy
// ReadLatNs/WriteLatNs summaries report).  Writes go through the
// lock's closure path (rwlock.Write), so on a combining lock the
// acquire stamp is taken when the combiner starts the section: Wait
// then includes the time queued in the publication list, and Hold
// ends when the completion signal reaches the submitter.  AgeNs is the
// writer-visibility probe (see Config.MeasureAge).  Histograms with
// no samples have N() == 0; AgeNs is nil unless MeasureAge was set.
type Result struct {
	Elapsed  time.Duration
	ReadOps  int64
	WriteOps int64
	// ShedOps counts writes whose WriteDeadline expired before the
	// lock was granted (always 0 when Config.WriteDeadline is 0).
	// A shed op is an op that ran and failed: it is counted in
	// neither WriteOps nor the latency histograms.
	ShedOps int64
	// ReadLatNs and WriteLatNs summarize the Total histograms
	// (bucket-resolution percentiles, exact min/max/mean).
	ReadLatNs  stats.Summary
	WriteLatNs stats.Summary

	ReadWaitNs   *stats.Histogram
	ReadHoldNs   *stats.Histogram
	ReadTotalNs  *stats.Histogram
	WriteWaitNs  *stats.Histogram
	WriteHoldNs  *stats.Histogram
	WriteTotalNs *stats.Histogram
	AgeNs        *stats.Histogram
}

// Throughput returns total operations per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.ReadOps+r.WriteOps) / r.Elapsed.Seconds()
}

// ShedRate returns the fraction of write attempts that were shed at
// their deadline (0 when no deadline ran or no writes were attempted).
func (r *Result) ShedRate() float64 {
	attempts := r.WriteOps + r.ShedOps
	if attempts == 0 {
		return 0
	}
	return float64(r.ShedOps) / float64(attempts)
}

// spin performs n iterations of un-optimizable busy work.
func spin(n int, sink *int64) {
	s := *sink
	for i := 0; i < n; i++ {
		s += int64(i) ^ s<<1
	}
	*sink = s
}

// workerHists is one worker's preallocated sample buffers.  Each
// histogram is a fixed array; recording into them is allocation-free
// (stats.TestHistogramRecordDoesNotAllocate), so the measurement
// cannot disturb the allocator behavior of the run it measures.
type workerHists struct {
	readWait, readHold, readTotal    stats.Histogram
	writeWait, writeHold, writeTotal stats.Histogram
	age                              stats.Histogram
}

// shared is the protected datum: a counter plus, when the age probe
// is on, the monotonic timestamp of the write that produced the
// current value.  Both fields are guarded by the lock under test
// (plain, non-atomic — running under -race doubles as an exclusion
// check on the lock).
type sharedCell struct {
	value int64
	stamp int64 // ns since run start, written under the write lock
	// version is the versioned payload (Config.VersionBytes > 0):
	// writers swap in a freshly built slice and retire the old one,
	// readers touch the current one.  Guarded by the lock like the
	// other fields.
	version []byte
}

// Run executes the workload against l and returns aggregate results.
// The protected data is a plain counter mutated by writers and read by
// readers, so running tests under -race doubles as an exclusion check.
func Run(l rwlock.RWLock, cfg Config) *Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 1000
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.WriterBurstLen > 0 && cfg.WriterBurstPause <= 0 {
		cfg.WriterBurstPause = 4096
	}

	var (
		shared   sharedCell // guarded by l
		readOps  atomic.Int64
		writeOps atomic.Int64
		shedOps  atomic.Int64
		deadline atomic.Bool
	)

	// The deadline-aware write path needs the lock's LockCtx; assert
	// once, up front, so a misconfigured run fails loudly instead of
	// silently measuring the wrong path.
	var cl rwlock.CtxRWLock
	if cfg.WriteDeadline > 0 {
		var ok bool
		if cl, ok = l.(rwlock.CtxRWLock); !ok {
			panic("workload: WriteDeadline set but the lock does not implement rwlock.CtxRWLock")
		}
	}

	// Versioned writes retire the displaced version through the lock
	// when it supports deferred reclamation; resolved once, up front.
	var retirer rwlock.VersionRetirer
	if cfg.VersionBytes > 0 {
		retirer, _ = l.(rwlock.VersionRetirer)
	}

	// Preallocate every worker's sample buffers before the clock (and
	// the deadline timer) starts so no allocation happens on the
	// measured path.
	hists := make([]*workerHists, cfg.Workers)
	for i := range hists {
		hists[i] = new(workerHists)
	}
	if cfg.Duration > 0 {
		timer := time.AfterFunc(cfg.Duration, func() { deadline.Store(true) })
		defer timer.Stop()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			var sink int64
			h := hists[id]
			isDedicatedWriter := cfg.DedicatedWriters > 0 && id < cfg.DedicatedWriters
			dedicated := cfg.DedicatedWriters > 0
			bursty := isDedicatedWriter && cfg.WriterBurstLen > 0
			// Phase-offset the systematic sample per worker so the
			// guaranteed-cold op 0 (goroutine start, cache-cold lock)
			// is not in every worker's sample set.  Derived from the
			// seed, not drawn from rng, so the op mix for a given seed
			// is unchanged.
			phase := int(((cfg.Seed+int64(id)*7919)%int64(cfg.SampleEvery) +
				int64(cfg.SampleEvery)) % int64(cfg.SampleEvery))

			// writeCS is the worker's write critical section, hoisted
			// out of runOp so the closure is allocated once per worker,
			// not once per op (the measured path must stay
			// allocation-free).  It runs through the lock's closure
			// write path (rwlock.Write), which is where a combining
			// lock batches — possibly on the combiner's goroutine, so
			// the acquire stamp is taken inside the section and read
			// back after the Write returns (the completion signal is
			// the happens-before edge).  On non-combining locks the
			// path is a plain Lock/cs/Unlock with identical clock
			// placement to the pre-combining workload.
			var wSample bool
			var wAcq time.Time
			var newVersion []byte // built outside the lock, installed inside
			writeCS := func() {
				if wSample {
					wAcq = time.Now()
				}
				shared.value++
				if newVersion != nil {
					// Copy-on-write install: the displaced version goes
					// to the lock's deferred reclamation when it has one
					// (the retained-memory half of the age-frontier
					// probe), otherwise straight to the GC.
					old := shared.version
					shared.version = newVersion
					newVersion = nil
					if retirer != nil && old != nil {
						retirer.Retire(old, len(old))
					}
				}
				spin(cfg.CSWork, &sink)
				if cfg.MeasureAge {
					// Stamp last: the value's age starts when the
					// write is complete and about to become visible
					// at release.
					shared.stamp = int64(time.Since(start))
				}
			}

			// runOp performs operation i: the class draw, the sampled
			// clock stamps, the locked critical section, and the
			// histogram recording.  Under Churn it runs on a fresh
			// goroutine; the lane waits for it before the next op, so
			// the captured per-worker state (rng, sink, h) is still
			// touched by one goroutine at a time, with the lane
			// channel providing the happens-before edge.
			runOp := func(i int) {
				var write bool
				if dedicated {
					write = isDedicatedWriter
				} else {
					write = rng.Float64() >= cfg.ReadFraction
				}
				sample := (i+phase)%cfg.SampleEvery == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				if write {
					wSample = sample
					if cfg.VersionBytes > 0 {
						// Prepare the new version OUTSIDE the lock — the
						// copy-on-write shape — so the allocation cost is
						// not charged to the critical section.
						newVersion = make([]byte, cfg.VersionBytes)
						newVersion[0] = byte(i)
					}
					if cl != nil {
						// Deadline-aware token path: the context's timer
						// is the per-op budget, stopped as soon as the
						// grant/shed race resolves.
						ctx, cancelOp := context.WithTimeout(context.Background(), cfg.WriteDeadline)
						tok, err := cl.LockCtx(ctx)
						cancelOp()
						if err != nil {
							shedOps.Add(1)
							return
						}
						writeCS()
						l.Unlock(tok)
					} else {
						rwlock.Write(l, writeCS)
					}
					writeOps.Add(1)
					if sample {
						tEnd := time.Now()
						h.writeWait.Record(wAcq.Sub(t0).Nanoseconds())
						h.writeHold.Record(tEnd.Sub(wAcq).Nanoseconds())
						h.writeTotal.Record(tEnd.Sub(t0).Nanoseconds())
					}
				} else {
					tok := l.RLock()
					var tAcq time.Time
					if sample {
						tAcq = time.Now()
					}
					_ = shared.value
					if shared.version != nil {
						_ = shared.version[0] // touch the current version
					}
					var age int64 = -1
					if sample && cfg.MeasureAge && shared.stamp != 0 {
						age = int64(time.Since(start)) - shared.stamp
					}
					spin(cfg.CSWork, &sink)
					l.RUnlock(tok)
					readOps.Add(1)
					if sample {
						tEnd := time.Now()
						h.readWait.Record(tAcq.Sub(t0).Nanoseconds())
						h.readHold.Record(tEnd.Sub(tAcq).Nanoseconds())
						h.readTotal.Record(tEnd.Sub(t0).Nanoseconds())
						if age >= 0 {
							h.age.Record(age)
						}
					}
				}
			}

			// lane is the churn handoff: one reusable channel per
			// worker, so churning allocates a goroutine per op but
			// nothing else.
			var lane chan struct{}
			if cfg.Churn {
				lane = make(chan struct{}, 1)
			}
			for i := 0; ; i++ {
				if cfg.Duration > 0 {
					if deadline.Load() {
						break
					}
				} else if i >= cfg.OpsPerWorker {
					break
				}
				if bursty && i%cfg.WriterBurstLen == 0 {
					spin(cfg.WriterBurstPause, &sink)
				}
				if cfg.Churn {
					op := i
					go func() {
						runOp(op)
						lane <- struct{}{}
					}()
					<-lane
				} else {
					runOp(i)
				}
				if !bursty {
					spin(cfg.ThinkWork, &sink)
				}
				if cfg.Yield {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Elapsed:      elapsed,
		ReadOps:      readOps.Load(),
		WriteOps:     writeOps.Load(),
		ShedOps:      shedOps.Load(),
		ReadWaitNs:   new(stats.Histogram),
		ReadHoldNs:   new(stats.Histogram),
		ReadTotalNs:  new(stats.Histogram),
		WriteWaitNs:  new(stats.Histogram),
		WriteHoldNs:  new(stats.Histogram),
		WriteTotalNs: new(stats.Histogram),
	}
	if cfg.MeasureAge {
		res.AgeNs = new(stats.Histogram)
	}
	for _, h := range hists {
		res.ReadWaitNs.Merge(&h.readWait)
		res.ReadHoldNs.Merge(&h.readHold)
		res.ReadTotalNs.Merge(&h.readTotal)
		res.WriteWaitNs.Merge(&h.writeWait)
		res.WriteHoldNs.Merge(&h.writeHold)
		res.WriteTotalNs.Merge(&h.writeTotal)
		if res.AgeNs != nil {
			res.AgeNs.Merge(&h.age)
		}
	}
	res.ReadLatNs = res.ReadTotalNs.Summary()
	res.WriteLatNs = res.WriteTotalNs.Summary()
	return res
}
