package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rwsync/internal/stats"
	"rwsync/rwlock"
)

// Config describes one workload run.
type Config struct {
	// Workers is the number of goroutines issuing operations.
	Workers int
	// ReadFraction is the probability that a worker's next operation
	// is a read (1.0 = read-only, 0.0 = write-only).
	ReadFraction float64
	// DedicatedWriters, if > 0, overrides the mixed model: that many
	// workers write exclusively and the rest read exclusively.
	DedicatedWriters int
	// OpsPerWorker is how many operations each worker performs.
	OpsPerWorker int
	// Duration, if > 0, overrides OpsPerWorker: every worker issues
	// operations until the deadline passes.  This is the right mode
	// for oversubscribed runs (Workers ≫ GOMAXPROCS), where a fixed
	// per-worker op count would let the measurement tail off as
	// workers finish at very different times.
	Duration time.Duration
	// CSWork is the amount of busy work (loop iterations) inside the
	// critical section, modeling the protected operation's cost.
	CSWork int
	// ThinkWork is busy work between operations (remainder section).
	ThinkWork int
	// Seed makes the per-worker operation mix reproducible.
	Seed int64
	// SampleEvery records the latency of every k-th operation
	// (default 8; 1 records all).
	SampleEvery int
}

// Result aggregates a run.
type Result struct {
	Elapsed    time.Duration
	ReadOps    int64
	WriteOps   int64
	ReadLatNs  stats.Summary
	WriteLatNs stats.Summary
}

// Throughput returns total operations per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.ReadOps+r.WriteOps) / r.Elapsed.Seconds()
}

// spin performs n iterations of un-optimizable busy work.
func spin(n int, sink *int64) {
	s := *sink
	for i := 0; i < n; i++ {
		s += int64(i) ^ s<<1
	}
	*sink = s
}

// Run executes the workload against l and returns aggregate results.
// The protected data is a plain counter mutated by writers and read by
// readers, so running tests under -race doubles as an exclusion check.
func Run(l rwlock.RWLock, cfg Config) *Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 1000
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 8
	}

	var (
		shared   int64 // guarded by l
		readOps  atomic.Int64
		writeOps atomic.Int64
		mu       sync.Mutex
		readLat  []int64
		writeLat []int64
		deadline atomic.Bool
	)
	if cfg.Duration > 0 {
		timer := time.AfterFunc(cfg.Duration, func() { deadline.Store(true) })
		defer timer.Stop()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			var sink int64
			var myReadLat, myWriteLat []int64
			isDedicatedWriter := cfg.DedicatedWriters > 0 && id < cfg.DedicatedWriters
			dedicated := cfg.DedicatedWriters > 0

			for i := 0; ; i++ {
				if cfg.Duration > 0 {
					if deadline.Load() {
						break
					}
				} else if i >= cfg.OpsPerWorker {
					break
				}
				var write bool
				if dedicated {
					write = isDedicatedWriter
				} else {
					write = rng.Float64() >= cfg.ReadFraction
				}
				sample := i%cfg.SampleEvery == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				if write {
					tok := l.Lock()
					shared++
					spin(cfg.CSWork, &sink)
					l.Unlock(tok)
					writeOps.Add(1)
					if sample {
						myWriteLat = append(myWriteLat, time.Since(t0).Nanoseconds())
					}
				} else {
					tok := l.RLock()
					_ = shared
					spin(cfg.CSWork, &sink)
					l.RUnlock(tok)
					readOps.Add(1)
					if sample {
						myReadLat = append(myReadLat, time.Since(t0).Nanoseconds())
					}
				}
				spin(cfg.ThinkWork, &sink)
			}
			mu.Lock()
			readLat = append(readLat, myReadLat...)
			writeLat = append(writeLat, myWriteLat...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	return &Result{
		Elapsed:    time.Since(start),
		ReadOps:    readOps.Load(),
		WriteOps:   writeOps.Load(),
		ReadLatNs:  stats.Summarize(readLat),
		WriteLatNs: stats.Summarize(writeLat),
	}
}
