package workload

import "math"

// Zipfian key popularity for the sharded serving-tier scenarios: rank
// r (0-based) is drawn with probability proportional to 1/(r+1)^s.
// The standard library's rand.Zipf is not used because the measured
// path needs (a) an allocation-free, splittable per-worker sampler
// whose determinism depends only on its seed, and (b) s <= 1 support
// (rand.Zipf requires s > 1; serving traffic is classically fit at
// s ≈ 1.07 but sweeps dip below 1).  An inverse-CDF table does both:
// the CDF is precomputed once per run (O(keys) floats, shared
// read-only by every worker), and a draw is one splitmix64 step plus
// a branch-free-ish binary search — no allocation, no locks.

// ZipfTable is the precomputed inverse-CDF of a Zipf(s) distribution
// over a fixed key space.  It is immutable after construction and
// safe to share across goroutines.
type ZipfTable struct {
	cdf []float64 // cdf[r] = P(rank <= r); cdf[len-1] == 1
	s   float64
}

// NewZipfTable builds the CDF for `keys` ranks with exponent s.
// s = 0 degenerates to the uniform distribution (every rank equally
// likely), the control row of the skew sweeps.  keys < 1 is clamped
// to 1.
func NewZipfTable(keys int, s float64) *ZipfTable {
	if keys < 1 {
		keys = 1
	}
	t := &ZipfTable{cdf: make([]float64, keys), s: s}
	sum := 0.0
	for r := 0; r < keys; r++ {
		sum += zipfWeight(r, s)
		t.cdf[r] = sum
	}
	inv := 1 / sum
	for r := range t.cdf {
		t.cdf[r] *= inv
	}
	t.cdf[keys-1] = 1 // exact top: no draw can fall past the last rank
	return t
}

// zipfWeight is 1/(r+1)^s; construction is cold, so math.Pow's cost
// is irrelevant — only the draw path below must stay lean.
func zipfWeight(r int, s float64) float64 {
	if s == 0 {
		return 1
	}
	return 1 / math.Pow(float64(r+1), s)
}

// Keys returns the rank-space size.
func (t *ZipfTable) Keys() int { return len(t.cdf) }

// S returns the exponent the table was built with.
func (t *ZipfTable) S() float64 { return t.s }

// rank maps a uniform u ∈ [0,1) to the smallest rank r with
// cdf[r] > u — a manual binary search (sort.SearchFloat64s would be
// equivalent; the manual loop keeps the draw path self-evidently
// allocation- and interface-free for the AllocsPerRun pin).
func (t *ZipfTable) rank(u float64) uint64 {
	lo, hi := 0, len(t.cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint64(lo)
}

// ZipfSampler draws ranks from a ZipfTable.  Each sampler owns a
// splitmix64 state, so workers get independent, seed-deterministic
// streams by constructing one sampler each; Next is allocation-free
// and must not be called concurrently on one sampler.
type ZipfSampler struct {
	t     *ZipfTable
	state uint64
}

// NewZipfSampler returns a sampler over t seeded with seed.  Two
// samplers with the same table and seed produce identical streams.
func NewZipfSampler(t *ZipfTable, seed int64) *ZipfSampler {
	return &ZipfSampler{t: t, state: uint64(seed)}
}

// Next draws one rank (0-based; rank 0 is the hottest key).
func (z *ZipfSampler) Next() uint64 {
	// splitmix64 (Steele, Lea & Flood): one add, three xor-multiply
	// rounds.  The golden-gamma increment makes consecutive states a
	// low-discrepancy walk; the finalizer decorrelates them.
	z.state += 0x9e3779b97f4a7c15
	x := z.state
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	// Top 53 bits -> uniform float64 in [0,1).
	u := float64(x>>11) * (1.0 / (1 << 53))
	return z.t.rank(u)
}
