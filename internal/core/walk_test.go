package core

import (
	"testing"

	"rwsync/internal/mc"
)

// Larger configurations than BFS can exhaust are sampled with many
// independent random walks, with the proof invariants evaluated at
// every step.  (The bounded configurations are verified exhaustively
// in the *ModelCheck tests; these runs extend confidence to wider
// process counts.)
func TestRandomWalksLargeConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling in -short mode")
	}
	cases := []struct {
		name string
		sys  *System
	}{
		{"fig1 1w+5r", NewFig1System(5)},
		{"fig2 1w+5r", NewFig2System(5)},
		{"mwsf 3w+3r", NewMWSFSystem(3, 3)},
		{"mwrp 3w+3r", NewMWRPSystem(3, 3)},
		{"mwwp 3w+3r", NewMWWPSystem(3, 3)},
		{"pfticket 3w+3r", NewPFTicketSystem(3, 3)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r, err := c.sys.NewRunner(3)
			if err != nil {
				t.Fatal(err)
			}
			res := mc.RandomWalks(r, mc.WalkOptions{
				Attempts:  3,
				Walks:     120,
				Seed:      99,
				Invariant: c.sys.Invariant,
			})
			if res.Violation != nil {
				t.Fatalf("%s: %v", c.sys.Name, res.Violation)
			}
			t.Logf("%s: %d walks, %d steps, invariants hold everywhere", c.sys.Name, res.Walks, res.Steps)
		})
	}
}

// TestRandomWalksFindBrokenVariants: sampling also finds the
// Sections 3.3/4.3 bugs without exhaustive search, demonstrating that
// the violations are not corner-of-the-state-space artifacts.
func TestRandomWalksFindBrokenVariants(t *testing.T) {
	cases := []struct {
		name string
		sys  *System
	}{
		{"fig1-broken", NewFig1BrokenSystem(3)},
		{"fig2-broken-A", NewFig2BrokenSystem(3, Fig2BreakNoLines2022)},
		{"fig2-broken-B", NewFig2BrokenSystem(3, Fig2BreakDirectCAS)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r, err := c.sys.NewRunner(4)
			if err != nil {
				t.Fatal(err)
			}
			res := mc.RandomWalks(r, mc.WalkOptions{
				Attempts: 4,
				Walks:    3000,
				Seed:     5,
			})
			if res.Violation == nil {
				t.Skipf("%s: random sampling missed the race in 3000 walks (exhaustive MC covers it)", c.name)
			}
			t.Logf("%s: %v", c.name, res.Violation)
		})
	}
}
