package core

import "rwsync/internal/ccsim"

// This file implements the baselines the paper's contribution is
// measured against in the RMR experiments (E4 in DESIGN.md):
//
//   - CentralizedRW: the folklore counter-based reader-writer spin
//     lock (in the lineage of Courtois-Heymans-Parnas [1]).  All
//     processes spin on ONE word, so every arrival/departure
//     invalidates every spinner's cache: the writer pays Θ(readers)
//     RMRs per passage and readers pay Θ(writers+readers) under
//     contention.  This is the gap the paper's algorithms close.
//
//   - Tournament mutex: a binary tree of Peterson 2-process locks
//     (the classical O(log n)-RMR mutual exclusion construction,
//     standing in for the Danek-Hadzilacos O(log n) upper bound [5]
//     that was the best known reader-writer bound before this paper).
//     Used as a "big lock" both classes acquire exclusively, it has no
//     reader concurrency at all.

// CentralizedVars holds the single packed counter of the centralized
// reader-writer lock: writer count in bits >= 32, reader count below.
type CentralizedVars struct {
	Cnt ccsim.Var
}

// NewCentralizedVars registers the counter (a fetch&add variable).
func NewCentralizedVars(m *ccsim.Memory) *CentralizedVars {
	return &CentralizedVars{Cnt: m.NewVar("Cnt", ccsim.KindFAA, 0)}
}

// Centralized writer program counters.
const (
	cwRem      = iota
	cwDoor     // no-op doorway (the lock has no FCFS structure)
	cwAnnounce // F&A(Cnt, +WW); branch on prior state
	cwDrain    // spin until reader count is 0  (Θ(readers) RMRs)
	cwBackoff  // F&A(Cnt, -WW): another writer holds or waits
	cwRewait   // spin until no writer present, then retry
	cwCS
	cwExit // F&A(Cnt, -WW)
	cwLen
)

func centralizedWriter(v *CentralizedVars) *ccsim.Program {
	instrs := make([]ccsim.Instr, cwLen)
	phases := []ccsim.Phase{
		ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting, ccsim.PhaseWaiting,
		ccsim.PhaseWaiting, ccsim.PhaseWaiting, ccsim.PhaseCS, ccsim.PhaseExit,
	}
	instrs[cwRem] = func(c *ccsim.Ctx) int { return cwDoor }
	instrs[cwDoor] = func(c *ccsim.Ctx) int { return cwAnnounce }
	instrs[cwAnnounce] = func(c *ccsim.Ctx) int {
		old := c.FAA(v.Cnt, WW)
		switch {
		case old == 0:
			return cwCS
		case UnpackWW(old) == 0:
			return cwDrain
		default:
			return cwBackoff
		}
	}
	instrs[cwDrain] = func(c *ccsim.Ctx) int {
		if UnpackRC(c.Read(v.Cnt)) == 0 {
			return cwCS
		}
		return cwDrain
	}
	instrs[cwBackoff] = func(c *ccsim.Ctx) int {
		c.FAA(v.Cnt, -WW)
		return cwRewait
	}
	instrs[cwRewait] = func(c *ccsim.Ctx) int {
		if UnpackWW(c.Read(v.Cnt)) == 0 {
			return cwAnnounce
		}
		return cwRewait
	}
	instrs[cwCS] = func(c *ccsim.Ctx) int { return cwExit }
	instrs[cwExit] = func(c *ccsim.Ctx) int {
		c.FAA(v.Cnt, -WW)
		return cwRem
	}
	return &ccsim.Program{Name: "centralized-writer", Reader: false, Instrs: instrs, Phases: phases}
}

// Centralized reader program counters.
const (
	crRem     = iota
	crDoor    // no-op doorway
	crEnter   // F&A(Cnt, +1); enter if no writer
	crBackoff // F&A(Cnt, -1)
	crRewait  // spin until no writer present, then retry
	crCS
	crExit // F&A(Cnt, -1)
	crLen
)

func centralizedReader(v *CentralizedVars) *ccsim.Program {
	instrs := make([]ccsim.Instr, crLen)
	phases := []ccsim.Phase{
		ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting,
		ccsim.PhaseWaiting, ccsim.PhaseWaiting, ccsim.PhaseCS, ccsim.PhaseExit,
	}
	instrs[crRem] = func(c *ccsim.Ctx) int { return crDoor }
	instrs[crDoor] = func(c *ccsim.Ctx) int { return crEnter }
	instrs[crEnter] = func(c *ccsim.Ctx) int {
		old := c.FAA(v.Cnt, 1)
		if UnpackWW(old) == 0 {
			return crCS
		}
		return crBackoff
	}
	instrs[crBackoff] = func(c *ccsim.Ctx) int {
		c.FAA(v.Cnt, -1)
		return crRewait
	}
	instrs[crRewait] = func(c *ccsim.Ctx) int {
		if UnpackWW(c.Read(v.Cnt)) == 0 {
			return crEnter
		}
		return crRewait
	}
	instrs[crCS] = func(c *ccsim.Ctx) int { return crExit }
	instrs[crExit] = func(c *ccsim.Ctx) int {
		c.FAA(v.Cnt, -1)
		return crRem
	}
	return &ccsim.Program{Name: "centralized-reader", Reader: true, Instrs: instrs, Phases: phases}
}

// NewCentralizedSystem assembles the centralized baseline with
// numWriters writers and numReaders readers.
func NewCentralizedSystem(numWriters, numReaders int) *System {
	validateSplit(numWriters, numReaders)
	mem := ccsim.NewMemory(numWriters + numReaders)
	v := NewCentralizedVars(mem)
	wp := centralizedWriter(v)
	rp := centralizedReader(v)
	progs := make([]*ccsim.Program, 0, numWriters+numReaders)
	for i := 0; i < numWriters; i++ {
		progs = append(progs, wp)
	}
	for i := 0; i < numReaders; i++ {
		progs = append(progs, rp)
	}
	return &System{
		Name:       "centralized-rw",
		Mem:        mem,
		Progs:      progs,
		NumWriters: numWriters,
		NumReaders: numReaders,
		// The centralized lock has no enabledness guarantees; probes
		// are not used against it.
		EnabledBound: 0,
	}
}

// tournamentNode holds the Peterson variables of one tree node.
type tournamentNode struct {
	flag [2]ccsim.Var
	turn ccsim.Var
}

// NewTournamentSystem assembles an n-process tournament-tree mutex
// (Peterson locks at each node of a binary tree).  Every process —
// reader or writer alike — acquires the tree exclusively, so the
// system is a valid (if concurrency-free) reader-writer lock with
// Θ(log n) RMR complexity per passage.
func NewTournamentSystem(n int) *System {
	validateSplit(n, 0)
	size := 1
	for size < n {
		size *= 2
	}
	if size < 2 {
		size = 2
	}
	mem := ccsim.NewMemory(n)
	nodes := make([]tournamentNode, size) // heap-indexed 1..size-1
	for j := 1; j < size; j++ {
		nodes[j].flag[0] = mem.NewVar("node"+itoa(j)+".flag0", ccsim.KindRW, 0)
		nodes[j].flag[1] = mem.NewVar("node"+itoa(j)+".flag1", ccsim.KindRW, 0)
		nodes[j].turn = mem.NewVar("node"+itoa(j)+".turn", ccsim.KindRW, 0)
	}

	progs := make([]*ccsim.Program, n)
	for p := 0; p < n; p++ {
		progs[p] = tournamentProgram(nodes, size, p)
	}
	return &System{
		Name:         "tournament-mutex",
		Mem:          mem,
		Progs:        progs,
		NumWriters:   n,
		NumReaders:   0,
		EnabledBound: 0,
	}
}

// tournamentProgram builds process p's program: acquire Peterson locks
// leaf-to-root, CS, release root-to-leaf.
func tournamentProgram(nodes []tournamentNode, size, p int) *ccsim.Program {
	// Path from leaf to root with the side entered from at each node.
	type hop struct {
		node int
		side int64
	}
	var path []hop
	cur := size + p
	for cur > 1 {
		path = append(path, hop{node: cur / 2, side: int64(cur & 1)})
		cur /= 2
	}

	var instrs []ccsim.Instr
	var phases []ccsim.Phase
	add := func(ph ccsim.Phase, ins ccsim.Instr) {
		instrs = append(instrs, ins)
		phases = append(phases, ph)
	}

	add(ccsim.PhaseRemainder, func(c *ccsim.Ctx) int { return 1 })
	pc := 1
	for li, h := range path {
		nd := nodes[h.node]
		s := h.side
		setFlag, setTurn, spinA, spinB, next := pc, pc+1, pc+2, pc+3, pc+4
		ph := ccsim.PhaseWaiting
		if li == 0 {
			ph = ccsim.PhaseDoorway // first step of the attempt
		}
		add(ph, func(c *ccsim.Ctx) int { c.Write(nd.flag[s], 1); return setTurn })
		add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { c.Write(nd.turn, s); return spinA })
		add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int {
			if c.Read(nd.flag[1-s]) == 0 {
				return next
			}
			return spinB
		})
		add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int {
			if c.Read(nd.turn) != s {
				return next
			}
			return spinA
		})
		_ = setFlag
		pc = next
	}
	csPC := pc
	add(ccsim.PhaseCS, func(c *ccsim.Ctx) int { return csPC + 1 })
	pc++
	for i := len(path) - 1; i >= 0; i-- {
		nd := nodes[path[i].node]
		s := path[i].side
		next := pc + 1
		if i == 0 {
			next = 0
		}
		add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { c.Write(nd.flag[s], 0); return next })
		pc++
	}
	if len(path) == 0 {
		// Degenerate single-process tree: release directly.
		instrs[csPC] = func(c *ccsim.Ctx) int { return 0 }
	}
	return &ccsim.Program{Name: "tournament-" + itoa(p), Reader: false, Instrs: instrs, Phases: phases}
}
