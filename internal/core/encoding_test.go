package core

import (
	"testing"
	"testing/quick"

	"rwsync/internal/ccsim"
)

func TestPackedRoundTrip(t *testing.T) {
	f := func(ww bool, rc uint16) bool {
		w := int64(0)
		if ww {
			w = 1
		}
		v := Packed(w, int64(rc))
		return UnpackWW(v) == w && UnpackRC(v) == int64(rc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackedArithmetic(t *testing.T) {
	// The F&A algebra the algorithms rely on: component-wise adds
	// never interfere while the reader count stays non-negative.
	v := Packed(0, 0)
	v += 1 // reader registers
	v += 1
	v += WW // writer announces
	if UnpackWW(v) != 1 || UnpackRC(v) != 2 {
		t.Fatalf("packed state = [%d,%d], want [1,2]", UnpackWW(v), UnpackRC(v))
	}
	v -= 1
	v -= 1
	if v != Packed(1, 0) {
		t.Fatalf("after reader exits: %d, want %d", v, Packed(1, 0))
	}
	v -= WW
	if v != 0 {
		t.Fatalf("after writer withdraws: %d, want 0", v)
	}
	// The paper's [1,1] test value.
	if Packed(1, 1) != WW+1 {
		t.Fatal("the [1,1] sentinel must be WW+1")
	}
}

func TestTokenSideRoundTrip(t *testing.T) {
	for _, d := range []int64{0, 1} {
		tok := TokenSide(d)
		if !IsSideToken(tok) {
			t.Fatalf("TokenSide(%d) not recognized as side token", d)
		}
		if SideOfToken(tok) != d {
			t.Fatalf("SideOfToken(TokenSide(%d)) = %d", d, SideOfToken(tok))
		}
	}
}

func TestSentinelDomainsDisjoint(t *testing.T) {
	// Process ids are >= 0; every sentinel must be distinct from ids
	// and from each other (the injectivity DESIGN.md claims).
	sentinels := []int64{XTrue, TokenFalse, TokenSide(0), TokenSide(1)}
	seen := map[int64]bool{}
	for _, s := range sentinels {
		if s >= 0 {
			t.Fatalf("sentinel %d collides with the pid domain", s)
		}
		if seen[s] && s != XTrue { // XTrue and nothing else may repeat
			t.Fatalf("duplicate sentinel %d", s)
		}
		seen[s] = true
	}
	if TokenSide(0) == TokenSide(1) {
		t.Fatal("side tokens collide")
	}
	if IsSideToken(TokenFalse) || IsSideToken(XTrue) {
		t.Fatal("IsSideToken misclassifies sentinels")
	}
	if IsSideToken(0) || IsSideToken(7) {
		t.Fatal("IsSideToken misclassifies pids")
	}
}

// TestSection33ScenarioReplay scripts the exact prose scenario of
// Section 3.3 against the BROKEN Figure 1 variant (writer enters the
// CS without waiting for the exit section to clear) and confirms the
// mutual-exclusion breach the paper narrates:
//
//	"The writer w is at Line 6 waiting for Permit[0]... reader r is
//	in [the exit section after] the critical section, r' is at Line
//	17 with d = 0 set long ago... r exits and executes Line 27...
//	r' increments both sides... gets [1,1] at Line 22 and executes
//	Line 23 [waking w].  If w does not wait for r to exit, r is
//	poised to set Permit[0] for a FUTURE writer..."
func TestSection33ScenarioReplay(t *testing.T) {
	sys := NewFig1BrokenSystem(2) // writer 0, readers 1 (=r), 2 (=r')
	run, err := sys.NewRunner(3)
	if err != nil {
		t.Fatal(err)
	}

	// r enters the CS on side 0 (writer still in remainder, Gate[0] open).
	stepTo := func(proc, pc int) {
		for i := 0; run.Procs[proc].PC != pc; i++ {
			run.StepProc(proc)
			if i > 300 {
				t.Fatalf("proc %d never reached PC %d (at %d)", proc, pc, run.Procs[proc].PC)
			}
		}
	}
	stepTo(1, F1RCS)
	// r' reads D=0 (line 16) and stalls before its increment (line 17).
	stepTo(2, F1RIncCd)

	// The writer starts an attempt: D->1, then waits at line 6 for
	// Permit[0] since r is registered on side 0.
	stepTo(0, F1WWaitPermit)

	// r exits the CS: increments EC, decrements C[0] -> [1,0], and is
	// about to wake the writer... the paper wants r past line 27 with
	// PC=28 (Permit step pending).
	stepTo(1, F1RPermitT2)

	// r' now performs lines 17-23: it increments C[0] (stale d=0),
	// notices D changed, increments C[1], re-reads d=1, decrements
	// C[0] getting [1,1], and wakes the writer via Permit[0].
	stepTo(2, F1RWait)

	// The BROKEN writer proceeds into the CS of attempt 1 without
	// waiting for the exit section — r stays parked at line 28,
	// "poised to set Permit[0] equal to true for a future writer".
	stepTo(0, F1WCS)

	// Writer finishes attempt 1 and runs attempt 2 (prevD=1): it
	// waits for r', which is registered on side 1.
	stepTo(0, F1WWaitPermit)
	// r' enters the CS through Gate[1] (opened by attempt 1's exit),
	// exits completely, and — as the last side-1 reader — wakes the
	// writer.  (r' is careful not to touch Permit[0].)
	stepTo(2, F1RRem)
	// Writer completes attempt 2; its exit opens Gate[0].
	stepTo(0, F1WCS)
	stepTo(0, F1WRem)

	// r' begins a fresh attempt: d = 0, registers in C[0], sails
	// through the open Gate[0] into the CS, and STAYS there.
	stepTo(2, F1RCS)

	// Writer attempt 3 (prevD=0): line 4 sets Permit[0] = false, line
	// 5 sees C[0] = [0,1] (r' inside!) and parks at line 6.
	stepTo(0, F1WWaitPermit)

	// The stale reader r finally executes line 28: Permit[0] = true —
	// for the WRONG writer attempt.  The writer barrels into the CS
	// while r' is still there: mutual exclusion collapses, exactly as
	// Section 3.3 narrates.
	stepTo(1, F1RDecEC)
	stepTo(0, F1WCS)

	if run.PhaseOf(0) != ccsim.PhaseCS || run.PhaseOf(2) != ccsim.PhaseCS {
		t.Fatalf("expected writer and reader co-occupancy; writer=%v reader'=%v",
			run.PhaseOf(0), run.PhaseOf(2))
	}
}
