package core

import (
	"testing"

	"rwsync/internal/ccsim"
	"rwsync/internal/check"
)

// TestEpochSimRandomRunsExclusion: the stamp/recheck handshake must
// preserve mutual exclusion under adversarial interleavings — the
// checker flags any reader/writer CS overlap.  No FIFE/FCFS checks:
// the epoch fast path deliberately trades arrival order away (see the
// section note in epoch.go).
func TestEpochSimRandomRunsExclusion(t *testing.T) {
	for _, readers := range []int{1, 2, 3, 5} {
		for seed := int64(1); seed <= 8; seed++ {
			sys := NewEpochSystem(readers)
			runChecked(t, sys, ccsim.NewRandomSched(seed), 6, check.RunOpts{
				SectionBound: 64,
			})
		}
	}
}

// TestEpochSimRoundRobinCompletes: every process finishes its
// attempts under the fair deterministic schedule — in particular the
// writer's grace scan terminates (slots quiesce) and readers are not
// locked out forever by the reopening epoch.
func TestEpochSimRoundRobinCompletes(t *testing.T) {
	sys := NewEpochSystem(4)
	runChecked(t, sys, ccsim.NewRoundRobin(), 10, check.RunOpts{SectionBound: 64})
}

// TestEpochReaderZeroRMW is the operation-exact form of the epoch
// lock's central claim: a read passage performs ZERO shared-word
// read-modify-writes — every reader step is a plain load or store —
// while the writer's passages do pay RMWs (both epoch F&As).  The RMR
// counters cannot make this distinction (an RMW charges like a
// write), which is why the simulator counts RMWs separately.
func TestEpochReaderZeroRMW(t *testing.T) {
	sys := NewEpochSystem(3)
	r, err := sys.NewRunner(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(ccsim.NewRandomSched(7), 1<<20); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !r.AllDone() {
		t.Fatal("run incomplete")
	}
	for p := 1; p <= sys.NumReaders; p++ {
		if ops := sys.Mem.Ops(p); ops == 0 {
			t.Fatalf("reader %d performed no shared-memory operations", p)
		}
		if rmws := sys.Mem.RMWs(p); rmws != 0 {
			t.Fatalf("reader %d performed %d RMWs, want 0 (fast passage must be plain loads and stores)", p, rmws)
		}
	}
	if rmws := sys.Mem.RMWs(0); rmws == 0 {
		t.Fatal("writer performed no RMWs (the epoch advances are F&As; the encoding is wrong)")
	}
}

// TestCcsimRMWAccounting pins the counter itself: FAA and CAS are
// RMWs, Read and Write are not, and Clone carries the counters.
func TestCcsimRMWAccounting(t *testing.T) {
	m := ccsim.NewMemory(2)
	f := m.NewVar("f", ccsim.KindFAA, 0)
	c := m.NewVar("c", ccsim.KindCAS, 0)
	m.Read(0, f)
	m.Write(0, f, 1)
	if got := m.RMWs(0); got != 0 {
		t.Fatalf("plain read+write counted %d RMWs", got)
	}
	m.FAA(0, f, 1)
	m.CAS(1, c, 0, 5)
	if got := m.RMWs(0); got != 1 {
		t.Fatalf("process 0: %d RMWs, want 1", got)
	}
	if got := m.RMWs(1); got != 1 {
		t.Fatalf("process 1: %d RMWs, want 1", got)
	}
	cl := m.Clone()
	if cl.RMWs(0) != 1 || cl.RMWs(1) != 1 {
		t.Fatal("Clone dropped the RMW counters")
	}
}
