package core

import (
	"fmt"

	"rwsync/internal/ccsim"
)

// This file implements the paper's Figure 4: the multi-writer
// multi-reader WRITER-PRIORITY lock of Theorem 5.  The plain Figure 3
// transformation does not preserve writer priority (Section 5.1 gives
// the counterexample), so Figure 4 threads a W-token handoff between
// exiting and arriving writers around the SWWP core of Figure 1.
//
// Readers run the Figure 1 Read-lock unchanged.

// Fig4Vars bundles the Figure 1 core variables with Figure 4's
// additional writer-coordination variables and Anderson's lock M.
type Fig4Vars struct {
	F1 *Fig1Vars
	// Wcount counts writers in the try and critical sections (F&A).
	Wcount ccsim.Var
	// Wtoken is the CAS handoff token over PID ∪ {false} ∪ {0,1}
	// (encoded via TokenFalse / TokenSide).
	Wtoken ccsim.Var
	M      *AndersonVars
}

// NewFig4Vars registers the Figure 4 variables.  Wtoken starts as the
// side token for side 1: the first writer then behaves exactly like
// the first SWWP writer attempt (D toggles 0 -> 1, previous side 0).
func NewFig4Vars(m *ccsim.Memory, numWriters int) *Fig4Vars {
	v := &Fig4Vars{F1: NewFig1Vars(m)}
	v.Wcount = m.NewVar("Wcount", ccsim.KindFAA, 0)
	v.Wtoken = m.NewVar("W-token", ccsim.KindCAS, TokenSide(1))
	v.M = NewAndersonVars(m, "M", maxInt(numWriters, 1))
	return v
}

// Register assignments of the Figure 4 writer.
const (
	f4RegT    = 3 // t — W-token samples
	f4RegPrev = mwRegPrev
	f4RegCurr = mwRegCurr
	f4RegSlot = mwRegSlot
)

// Writer program counters for Figure 4 (paper line numbers in comments).
const (
	F4WRem      = iota // line 1: remainder
	F4WIncW            // line 2: F&A(Wcount, 1)
	F4WReadTok1        // line 3-4: t = W-token; if t in PID
	F4WCASFalse        // line 5: CAS(W-token, t, false)
	F4WReadTok2        // line 6-7: t = W-token; if t in {0,1}
	F4WWriteD          // line 8: D <- t
	F4WTicket          // line 9 (acquire M): ticket fetch — doorway ends
	F4WSpinSlot        // acquire M: slot spin
	F4WClaim           // acquire M: slot claim
	F4WReadD           // line 10: currD <- D, prevD <- !currD
	F4WReadTok3        // line 11: if W-token in {0,1}
	F4WWaitGate        // line 12: wait till Gate[prevD]
	F4WBody            // line 13 = Figure 1 lines 4..12 at PCs F4WBody..F4WBody+8
	f4wBodyEnd  = F4WBody + 8
	F4WCS       = f4wBodyEnd + 1 // line 14: critical section
	F4WSetTok   = F4WCS + 1      // line 15: W-token <- p
	F4WDecW     = F4WSetTok + 1  // line 16: F&A(Wcount, -1)
	F4WRelease  = F4WDecW + 1    // line 17: release(M)
	F4WReadW    = F4WRelease + 1 // line 18: if Wcount = 0
	F4WCASSide  = F4WReadW + 1   // line 19: CAS(W-token, p, prevD)
	F4WOpenGate = F4WCASSide + 1 // line 20: Gate[currD] <- true
	f4wLen      = F4WOpenGate + 1
)

// Fig4Writer builds the Figure 4 writer program.
func Fig4Writer(v *Fig4Vars) *ccsim.Program {
	instrs := make([]ccsim.Instr, 0, f4wLen)
	phases := make([]ccsim.Phase, 0, f4wLen)
	add := func(ph ccsim.Phase, ins ccsim.Instr) {
		instrs = append(instrs, ins)
		phases = append(phases, ph)
	}
	f1 := v.F1

	add(ccsim.PhaseRemainder, func(c *ccsim.Ctx) int { return F4WIncW })
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // line 2
		c.FAA(v.Wcount, 1)
		return F4WReadTok1
	})
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // lines 3-4
		t := c.Read(v.Wtoken)
		c.P.Regs[f4RegT] = t
		if t >= 0 { // t in PID
			return F4WCASFalse
		}
		return F4WReadTok2
	})
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // line 5
		c.CAS(v.Wtoken, c.P.Regs[f4RegT], TokenFalse)
		return F4WReadTok2
	})
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // lines 6-7
		t := c.Read(v.Wtoken)
		c.P.Regs[f4RegT] = t
		if IsSideToken(t) {
			return F4WWriteD
		}
		return F4WTicket
	})
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // line 8
		c.Write(f1.D, SideOfToken(c.P.Regs[f4RegT]))
		return F4WTicket
	})
	// acquire(M), lines "9": ticket is the last doorway step so that
	// doorway precedence fixes the FCFS order among writers (P3).
	instrs, phases = appendAndersonAcquire(instrs, phases, v.M, F4WTicket, F4WReadD, f4RegSlot, ccsim.PhaseDoorway)
	add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { // line 10
		curr := c.Read(f1.D)
		c.P.Regs[f4RegCurr] = curr
		c.P.Regs[f4RegPrev] = 1 - curr
		return F4WReadTok3
	})
	add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { // line 11
		if IsSideToken(c.Read(v.Wtoken)) {
			return F4WWaitGate
		}
		return F4WCS
	})
	add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { // line 12
		if c.Read(sel(c.P.Regs[f4RegPrev], f1.Gate[0], f1.Gate[1])) != 0 {
			return F4WBody
		}
		return F4WWaitGate
	})
	// line 13: SW-waiting-room() = Figure 1 lines 4..12.
	instrs, phases = appendFig1WriterTry(instrs, phases, f1, F4WBody, F4WCS, ccsim.PhaseWaiting, f4RegPrev, f4RegCurr, false)
	add(ccsim.PhaseCS, func(c *ccsim.Ctx) int { return F4WSetTok }) // line 14
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int {                   // line 15
		c.Write(v.Wtoken, int64(c.P.ID))
		return F4WDecW
	})
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { // line 16
		c.FAA(v.Wcount, -1)
		return F4WRelease
	})
	instrs, phases = appendAndersonRelease(instrs, phases, v.M, F4WReadW, f4RegSlot, ccsim.PhaseExit) // line 17
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int {                                                     // line 18
		if c.Read(v.Wcount) == 0 {
			return F4WCASSide
		}
		return F4WRem
	})
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { // line 19
		if c.CAS(v.Wtoken, int64(c.P.ID), TokenSide(c.P.Regs[f4RegPrev])) {
			return F4WOpenGate
		}
		return F4WRem
	})
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { // line 20
		c.Write(sel(c.P.Regs[f4RegCurr], f1.Gate[0], f1.Gate[1]), 1)
		return F4WRem
	})

	return &ccsim.Program{Name: "fig4-writer", Reader: false, Instrs: instrs, Phases: phases}
}

// NewMWWPSystem assembles the Theorem 5 multi-writer multi-reader
// writer-priority lock (Figure 4).  Processes 0..numWriters-1 are
// writers, the rest Figure 1 readers.
func NewMWWPSystem(numWriters, numReaders int) *System {
	validateSplit(numWriters, numReaders)
	mem := ccsim.NewMemory(numWriters + numReaders)
	v := NewFig4Vars(mem, numWriters)

	wp := Fig4Writer(v)
	rp := Fig1Reader(v.F1)
	progs := make([]*ccsim.Program, 0, numWriters+numReaders)
	for i := 0; i < numWriters; i++ {
		progs = append(progs, wp)
	}
	for i := 0; i < numReaders; i++ {
		progs = append(progs, rp)
	}
	return &System{
		Name:         "fig4-mwwp",
		Mem:          mem,
		Progs:        progs,
		NumWriters:   numWriters,
		NumReaders:   numReaders,
		EnabledBound: 4 * (f4wLen + f1rLen),
		Invariant:    fig4Invariant(v, numWriters),
	}
}

// Offsets of the SW-waiting-room instructions within the Figure 4
// writer (appendFig1WriterTry without doorway): the writer holds the
// writer-waiting unit of C[prevD] between the increment at line 5 and
// the decrement at line 7, and of EC between lines 10 and 12.
const (
	f4wHoldCLo  = F4WBody + 2 // spinning on Permit[prevD]
	f4wHoldCHi  = F4WBody + 3 // about to decrement C[prevD]
	f4wHoldECLo = F4WBody + 7 // spinning on ExitPermit
	f4wHoldECHi = F4WBody + 8 // about to decrement EC
)

// fig4Invariant checks the structural invariants of Figure 4:
// Wcount counts writers between their increment (line 2) and decrement
// (line 16), Anderson's M admits at most one holder, and — reusing the
// Appendix A.1 accounting — the packed counters C[0], C[1] and EC
// match the exact multiset of reader and writer program counters.
func fig4Invariant(v *Fig4Vars, numWriters int) func(r *ccsim.Runner) error {
	return func(r *ccsim.Runner) error {
		var wcount int64
		holders := 0
		for i := 0; i < numWriters; i++ {
			pc := r.Procs[i].PC
			if pc > F4WIncW && pc <= F4WDecW {
				wcount++
			}
			if pc > F4WClaim && pc <= F4WRelease {
				holders++
			}
		}
		if got := r.Mem.Peek(v.Wcount); got != wcount {
			return fmt.Errorf("fig4 invariant: Wcount=%d want %d", got, wcount)
		}
		if holders > 1 {
			return fmt.Errorf("fig4 invariant: %d writers hold M simultaneously", holders)
		}

		// Count consistency of the Figure 1 core under Figure 4's
		// writers (Appendix A.1, item 1 of every invariant group).
		var c0, c1, ec int64
		for i, p := range r.Procs {
			if i < numWriters {
				if p.PC >= f4wHoldCLo && p.PC <= f4wHoldCHi {
					if p.Regs[f4RegPrev] == 0 {
						c0 += WW
					} else {
						c1 += WW
					}
				}
				if p.PC >= f4wHoldECLo && p.PC <= f4wHoldECHi {
					ec += WW
				}
				continue
			}
			a, b, e := fig1ReaderContrib(p)
			c0 += a
			c1 += b
			ec += e
		}
		if got := r.Mem.Peek(v.F1.C[0]); got != c0 {
			return fmt.Errorf("fig4 invariant: C[0]=%d,%d want %d,%d",
				UnpackWW(got), UnpackRC(got), UnpackWW(c0), UnpackRC(c0))
		}
		if got := r.Mem.Peek(v.F1.C[1]); got != c1 {
			return fmt.Errorf("fig4 invariant: C[1]=%d,%d want %d,%d",
				UnpackWW(got), UnpackRC(got), UnpackWW(c1), UnpackRC(c1))
		}
		if got := r.Mem.Peek(v.F1.EC); got != ec {
			return fmt.Errorf("fig4 invariant: EC=%d,%d want %d,%d",
				UnpackWW(got), UnpackRC(got), UnpackWW(ec), UnpackRC(ec))
		}
		// At most one writer in the SWWP core past the W-token gate
		// check (PCs F4WBody..F4WCS) — implied by M, restated here to
		// localize failures.
		inCore := 0
		for i := 0; i < numWriters; i++ {
			pc := r.Procs[i].PC
			if pc >= F4WReadD && pc <= F4WCS {
				inCore++
			}
		}
		if inCore > 1 {
			return fmt.Errorf("fig4 invariant: %d writers inside the SWWP core", inCore)
		}
		return nil
	}
}
