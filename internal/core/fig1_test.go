package core

import (
	"testing"

	"rwsync/internal/ccsim"
	"rwsync/internal/check"
	"rwsync/internal/mc"
)

// runChecked is a test helper: run sys under sched with all online and
// offline property checks on, failing the test on any violation.
func runChecked(t *testing.T, sys *System, sched ccsim.Scheduler, attempts int, opts check.RunOpts) *check.RunResult {
	t.Helper()
	r, err := sys.NewRunner(attempts)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	opts.Attempts = attempts
	opts.Sched = sched
	if opts.EnabledBound == 0 {
		opts.EnabledBound = sys.EnabledBound
	}
	if opts.Invariant == nil {
		opts.Invariant = sys.Invariant
	}
	res := check.RunChecked(r, opts)
	if v := res.FirstViolation(); v != nil {
		t.Fatalf("%s: %v", sys.Name, v)
	}
	if res.Incomplete {
		t.Fatalf("%s: run incomplete (possible starvation under %T)", sys.Name, sched)
	}
	return res
}

func TestFig1RandomRunsSatisfyProperties(t *testing.T) {
	for _, readers := range []int{1, 2, 3, 5} {
		for seed := int64(1); seed <= 8; seed++ {
			sys := NewFig1System(readers)
			res := runChecked(t, sys, ccsim.NewRandomSched(seed), 6, check.RunOpts{
				FIFE:         true,
				SectionBound: 32,
			})
			tr := res.Trace.Attempts()
			if v := check.FCFSWriters(tr); v != nil {
				t.Fatalf("readers=%d seed=%d: %v", readers, seed, v)
			}
			if v := check.WriterPriority(tr); v != nil {
				t.Fatalf("readers=%d seed=%d: %v", readers, seed, v)
			}
		}
	}
}

func TestFig1RoundRobinCompletes(t *testing.T) {
	sys := NewFig1System(4)
	runChecked(t, sys, ccsim.NewRoundRobin(), 10, check.RunOpts{FIFE: true, SectionBound: 32})
}

func TestFig1StalledWriterDoesNotBlockReaders(t *testing.T) {
	// Readers must keep completing while the writer is scheduled only
	// once every 64 steps (it still completes eventually: P7).
	sys := NewFig1System(3)
	runChecked(t, sys, ccsim.NewStallSched(7, 0, 64), 5, check.RunOpts{SectionBound: 32})
}

func TestFig1ConcurrentEntering(t *testing.T) {
	// P5: with the writer halted in its remainder section, every
	// reader attempt must finish the Try section in a bounded number
	// of its own steps (no waiting-room detention at all).
	sys := NewFig1System(4)
	r, err := sys.NewRunner(8)
	if err != nil {
		t.Fatal(err)
	}
	r.CollectStats = true
	r.Halt(0) // writer stays in the remainder section
	if err := r.Run(ccsim.NewRandomSched(42), 1<<20); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, s := range r.Stats {
		if s.Steps > int64(f1rLen)+4 {
			t.Fatalf("reader %d attempt %d took %d steps with no writer (want <= %d)",
				s.Proc, s.Attempt, s.Steps, f1rLen+4)
		}
	}
}

func TestFig1RMRConstant(t *testing.T) {
	// Theorem 1: O(1) RMR per passage in the CC model, independent of
	// the number of readers.  The constant below is derived from the
	// program text: each section performs a fixed number of shared
	// accesses and every busy-wait loop is re-armed at most a bounded
	// number of times per passage.
	const maxRMR = 40
	for _, readers := range []int{1, 2, 4, 8, 16, 32} {
		sys := NewFig1System(readers)
		r, err := sys.NewRunner(4)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(ccsim.NewRandomSched(int64(readers)), 1<<24); err != nil {
			t.Fatalf("readers=%d: %v", readers, err)
		}
		for _, s := range r.Stats {
			if s.RMR > maxRMR {
				t.Fatalf("readers=%d proc=%d attempt=%d: RMR=%d exceeds constant bound %d",
					readers, s.Proc, s.Attempt, s.RMR, maxRMR)
			}
		}
	}
}

func TestFig1ModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in -short mode")
	}
	for _, cfg := range []struct{ readers, attempts int }{
		{1, 3}, {2, 2},
	} {
		sys := NewFig1System(cfg.readers)
		r, err := sys.NewRunner(cfg.attempts)
		if err != nil {
			t.Fatal(err)
		}
		res := mc.Explore(r, mc.Options{
			Attempts:    cfg.attempts,
			Invariant:   sys.Invariant,
			DetectStuck: true,
		})
		if res.Violation != nil {
			t.Fatalf("readers=%d attempts=%d: %v", cfg.readers, cfg.attempts, res.Violation)
		}
		if res.Truncated {
			t.Fatalf("readers=%d attempts=%d: truncated at %d states", cfg.readers, cfg.attempts, res.States)
		}
		t.Logf("fig1 readers=%d attempts=%d: %d states, all invariants hold", cfg.readers, cfg.attempts, res.States)
	}
}

func TestFig1BrokenModelCheckFindsViolation(t *testing.T) {
	// Section 3.3: without the writer's exit-section wait, mutual
	// exclusion fails.  The checker must find a counterexample.
	sys := NewFig1BrokenSystem(2)
	r, err := sys.NewRunner(3)
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Explore(r, mc.Options{Attempts: 3, KeepWitness: true})
	if res.Violation == nil {
		t.Fatalf("expected a mutual-exclusion violation in the broken Figure 1 variant; explored %d states", res.States)
	}
	if len(res.Witness) == 0 {
		t.Fatal("expected a counterexample schedule")
	}
	t.Logf("broken fig1: %v (witness length %d, %d states)", res.Violation, len(res.Witness), res.States)
}
