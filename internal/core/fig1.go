package core

import "rwsync/internal/ccsim"

// Fig1Vars holds handles to the shared variables of the paper's
// Figure 1 (single-writer multi-reader lock with starvation freedom
// and writer priority).
type Fig1Vars struct {
	D          ccsim.Var // side the writer attempts from (read/write)
	ExitPermit ccsim.Var // last exiting reader wakes the writer (read/write)
	Permit     [2]ccsim.Var
	Gate       [2]ccsim.Var
	EC         ccsim.Var    // F&A [writer-waiting, readers-in-exit]
	C          [2]ccsim.Var // F&A [writer-waiting, reader-count] per side
}

// NewFig1Vars registers Figure 1's shared variables with their paper
// initial values: D=0, Gate[0]=true, Gate[1]=false, counters [0,0].
func NewFig1Vars(m *ccsim.Memory) *Fig1Vars {
	v := &Fig1Vars{}
	v.D = m.NewVar("D", ccsim.KindRW, 0)
	v.ExitPermit = m.NewVar("ExitPermit", ccsim.KindRW, 0)
	v.Permit[0] = m.NewVar("Permit[0]", ccsim.KindRW, 0)
	v.Permit[1] = m.NewVar("Permit[1]", ccsim.KindRW, 0)
	v.Gate[0] = m.NewVar("Gate[0]", ccsim.KindRW, 1)
	v.Gate[1] = m.NewVar("Gate[1]", ccsim.KindRW, 0)
	v.EC = m.NewVar("EC", ccsim.KindFAA, 0)
	v.C[0] = m.NewVar("C[0]", ccsim.KindFAA, 0)
	v.C[1] = m.NewVar("C[1]", ccsim.KindFAA, 0)
	return v
}

// Register assignments of the Figure 1 writer.
const (
	f1wRegPrev = 0 // prevD
	f1wRegCurr = 1 // currD
)

// Writer program counters for Figure 1 (paper line numbers in comments).
const (
	F1WRem        = iota // line 1: remainder section
	F1WReadD             // line 2: prevD <- D; currD <- !prevD
	F1WWriteD            // line 3: D <- currD   (doorway ends here)
	F1WPermitF           // line 4: Permit[prevD] <- false
	F1WIncWW             // line 5: if F&A(C[prevD],[1,0]) != [0,0]
	F1WWaitPermit        // line 6: wait till Permit[prevD]
	F1WDecWW             // line 7: F&A(C[prevD],[-1,0])
	F1WGateF             // line 8: Gate[prevD] <- false
	F1WExitPermF         // line 9: ExitPermit <- false
	F1WIncEC             // line 10: if F&A(EC,[1,0]) != [0,0]
	F1WWaitExitP         // line 11: wait till ExitPermit
	F1WDecEC             // line 12: F&A(EC,[-1,0])
	F1WCS                // line 13: critical section
	F1WExit              // line 14: Gate[currD] <- true
	f1wLen
)

// fig1WriterOpts toggles the deliberate bug of Section 3.3.
type fig1WriterOpts struct {
	// skipExitWait removes lines 9-12 (the writer's wait for readers
	// to clear the exit section).  The paper argues this breaks
	// mutual exclusion; the model checker confirms it.
	skipExitWait bool
}

// Fig1Writer builds the Figure 1 writer program.
func Fig1Writer(v *Fig1Vars) *ccsim.Program { return fig1Writer(v, fig1WriterOpts{}) }

// Fig1WriterNoExitWait builds the broken Section 3.3 variant of the
// Figure 1 writer that enters the CS without waiting for the exit
// section to clear.
func Fig1WriterNoExitWait(v *Fig1Vars) *ccsim.Program {
	return fig1Writer(v, fig1WriterOpts{skipExitWait: true})
}

func fig1Writer(v *Fig1Vars, opts fig1WriterOpts) *ccsim.Program {
	instrs := make([]ccsim.Instr, f1wLen)
	phases := make([]ccsim.Phase, f1wLen)

	phases[F1WRem] = ccsim.PhaseRemainder
	phases[F1WReadD] = ccsim.PhaseDoorway
	phases[F1WWriteD] = ccsim.PhaseDoorway
	for pc := F1WPermitF; pc <= F1WDecEC; pc++ {
		phases[pc] = ccsim.PhaseWaiting
	}
	phases[F1WCS] = ccsim.PhaseCS
	phases[F1WExit] = ccsim.PhaseExit

	instrs[F1WRem] = func(c *ccsim.Ctx) int { return F1WReadD }
	instrs[F1WReadD] = func(c *ccsim.Ctx) int {
		prev := c.Read(v.D)
		c.P.Regs[f1wRegPrev] = prev
		c.P.Regs[f1wRegCurr] = 1 - prev
		return F1WWriteD
	}
	instrs[F1WWriteD] = func(c *ccsim.Ctx) int {
		c.Write(v.D, c.P.Regs[f1wRegCurr])
		return F1WPermitF
	}
	instrs[F1WPermitF] = func(c *ccsim.Ctx) int {
		c.Write(sel(c.P.Regs[f1wRegPrev], v.Permit[0], v.Permit[1]), 0)
		return F1WIncWW
	}
	instrs[F1WIncWW] = func(c *ccsim.Ctx) int {
		old := c.FAA(sel(c.P.Regs[f1wRegPrev], v.C[0], v.C[1]), WW)
		if old != 0 {
			return F1WWaitPermit
		}
		return F1WDecWW
	}
	instrs[F1WWaitPermit] = func(c *ccsim.Ctx) int {
		if c.Read(sel(c.P.Regs[f1wRegPrev], v.Permit[0], v.Permit[1])) != 0 {
			return F1WDecWW
		}
		return F1WWaitPermit
	}
	instrs[F1WDecWW] = func(c *ccsim.Ctx) int {
		c.FAA(sel(c.P.Regs[f1wRegPrev], v.C[0], v.C[1]), -WW)
		return F1WGateF
	}
	instrs[F1WGateF] = func(c *ccsim.Ctx) int {
		c.Write(sel(c.P.Regs[f1wRegPrev], v.Gate[0], v.Gate[1]), 0)
		if opts.skipExitWait {
			return F1WCS
		}
		return F1WExitPermF
	}
	instrs[F1WExitPermF] = func(c *ccsim.Ctx) int {
		c.Write(v.ExitPermit, 0)
		return F1WIncEC
	}
	instrs[F1WIncEC] = func(c *ccsim.Ctx) int {
		if c.FAA(v.EC, WW) != 0 {
			return F1WWaitExitP
		}
		return F1WDecEC
	}
	instrs[F1WWaitExitP] = func(c *ccsim.Ctx) int {
		if c.Read(v.ExitPermit) != 0 {
			return F1WDecEC
		}
		return F1WWaitExitP
	}
	instrs[F1WDecEC] = func(c *ccsim.Ctx) int {
		c.FAA(v.EC, -WW)
		return F1WCS
	}
	instrs[F1WCS] = func(c *ccsim.Ctx) int { return F1WExit }
	instrs[F1WExit] = func(c *ccsim.Ctx) int {
		c.Write(sel(c.P.Regs[f1wRegCurr], v.Gate[0], v.Gate[1]), 1)
		return F1WRem
	}

	name := "fig1-writer"
	if opts.skipExitWait {
		name = "fig1-writer-no-exit-wait"
	}
	return &ccsim.Program{Name: name, Reader: false, Instrs: instrs, Phases: phases}
}

// Register assignments of the Figure 1 reader.
const (
	f1rRegD  = 0 // d
	f1rRegD2 = 1 // d'
)

// Reader program counters for Figure 1 (paper line numbers in comments).
const (
	F1RRem       = iota // line 15: remainder section
	F1RReadD            // line 16: d <- D
	F1RIncCd            // line 17: F&A(C[d],[0,1])
	F1RReadD2           // line 18-19: d' <- D; if d != d'
	F1RIncCd2           // line 20: F&A(C[d'],[0,1])
	F1RReadD3           // line 21: d <- D
	F1RDecOther         // line 22: if F&A(C[!d],[0,-1]) = [1,1]
	F1RPermitT          // line 23: Permit[!d] <- true
	F1RWait             // line 24: wait till Gate[d]
	F1RCS               // line 25: critical section
	F1RIncEC            // line 26: F&A(EC,[0,1])
	F1RDecCd            // line 27: if F&A(C[d],[0,-1]) = [1,1]
	F1RPermitT2         // line 28: Permit[d] <- true
	F1RDecEC            // line 29: if F&A(EC,[0,-1]) = [1,1]
	F1RExitPermT        // line 30: ExitPermit <- true
	f1rLen
)

// Fig1Reader builds the Figure 1 reader program.
func Fig1Reader(v *Fig1Vars) *ccsim.Program {
	instrs := make([]ccsim.Instr, f1rLen)
	phases := make([]ccsim.Phase, f1rLen)

	phases[F1RRem] = ccsim.PhaseRemainder
	for pc := F1RReadD; pc <= F1RPermitT; pc++ {
		phases[pc] = ccsim.PhaseDoorway
	}
	phases[F1RWait] = ccsim.PhaseWaiting
	phases[F1RCS] = ccsim.PhaseCS
	for pc := F1RIncEC; pc <= F1RExitPermT; pc++ {
		phases[pc] = ccsim.PhaseExit
	}

	instrs[F1RRem] = func(c *ccsim.Ctx) int { return F1RReadD }
	instrs[F1RReadD] = func(c *ccsim.Ctx) int {
		c.P.Regs[f1rRegD] = c.Read(v.D)
		return F1RIncCd
	}
	instrs[F1RIncCd] = func(c *ccsim.Ctx) int {
		c.FAA(sel(c.P.Regs[f1rRegD], v.C[0], v.C[1]), 1)
		return F1RReadD2
	}
	instrs[F1RReadD2] = func(c *ccsim.Ctx) int {
		c.P.Regs[f1rRegD2] = c.Read(v.D)
		if c.P.Regs[f1rRegD2] != c.P.Regs[f1rRegD] {
			return F1RIncCd2
		}
		return F1RWait
	}
	instrs[F1RIncCd2] = func(c *ccsim.Ctx) int {
		c.FAA(sel(c.P.Regs[f1rRegD2], v.C[0], v.C[1]), 1)
		return F1RReadD3
	}
	instrs[F1RReadD3] = func(c *ccsim.Ctx) int {
		c.P.Regs[f1rRegD] = c.Read(v.D)
		return F1RDecOther
	}
	instrs[F1RDecOther] = func(c *ccsim.Ctx) int {
		other := 1 - c.P.Regs[f1rRegD]
		old := c.FAA(sel(other, v.C[0], v.C[1]), -1)
		if old == Packed(1, 1) {
			return F1RPermitT
		}
		return F1RWait
	}
	instrs[F1RPermitT] = func(c *ccsim.Ctx) int {
		other := 1 - c.P.Regs[f1rRegD]
		c.Write(sel(other, v.Permit[0], v.Permit[1]), 1)
		return F1RWait
	}
	instrs[F1RWait] = func(c *ccsim.Ctx) int {
		if c.Read(sel(c.P.Regs[f1rRegD], v.Gate[0], v.Gate[1])) != 0 {
			return F1RCS
		}
		return F1RWait
	}
	instrs[F1RCS] = func(c *ccsim.Ctx) int { return F1RIncEC }
	instrs[F1RIncEC] = func(c *ccsim.Ctx) int {
		c.FAA(v.EC, 1)
		return F1RDecCd
	}
	instrs[F1RDecCd] = func(c *ccsim.Ctx) int {
		old := c.FAA(sel(c.P.Regs[f1rRegD], v.C[0], v.C[1]), -1)
		if old == Packed(1, 1) {
			return F1RPermitT2
		}
		return F1RDecEC
	}
	instrs[F1RPermitT2] = func(c *ccsim.Ctx) int {
		c.Write(sel(c.P.Regs[f1rRegD], v.Permit[0], v.Permit[1]), 1)
		return F1RDecEC
	}
	instrs[F1RDecEC] = func(c *ccsim.Ctx) int {
		old := c.FAA(v.EC, -1)
		if old == Packed(1, 1) {
			return F1RExitPermT
		}
		return F1RRem
	}
	instrs[F1RExitPermT] = func(c *ccsim.Ctx) int {
		c.Write(v.ExitPermit, 1)
		return F1RRem
	}

	return &ccsim.Program{Name: "fig1-reader", Reader: true, Instrs: instrs, Phases: phases}
}

// NewFig1System assembles the Figure 1 single-writer multi-reader
// system: process 0 is the writer, processes 1..numReaders are readers.
func NewFig1System(numReaders int) *System {
	return newFig1System(numReaders, false)
}

// NewFig1BrokenSystem assembles the Section 3.3 broken variant (writer
// does not wait for the exit section to clear).  Model checking it must
// find a mutual-exclusion violation.
func NewFig1BrokenSystem(numReaders int) *System {
	return newFig1System(numReaders, true)
}

func newFig1System(numReaders int, broken bool) *System {
	validateSplit(1, numReaders)
	mem := ccsim.NewMemory(1 + numReaders)
	v := NewFig1Vars(mem)
	var wp *ccsim.Program
	if broken {
		wp = Fig1WriterNoExitWait(v)
	} else {
		wp = Fig1Writer(v)
	}
	progs := []*ccsim.Program{wp}
	rp := Fig1Reader(v)
	for i := 0; i < numReaders; i++ {
		progs = append(progs, rp)
	}
	name := "fig1-swwp"
	sys := &System{
		Name:       name,
		Mem:        mem,
		Progs:      progs,
		NumWriters: 1,
		NumReaders: numReaders,
		// A reader that must be enabled needs at most its remaining
		// doorway steps plus the gate read and CS entry; the writer
		// needs its full waiting room.  A small multiple of program
		// length is a safe bound.
		EnabledBound: 4 * (f1wLen + f1rLen),
	}
	if !broken {
		sys.Invariant = fig1Invariant(v, 0)
		sys.Name = "fig1-swwp"
	} else {
		sys.Name = "fig1-swwp-broken"
	}
	return sys
}
