package core

import (
	"testing"

	"rwsync/internal/ccsim"
	"rwsync/internal/check"
	"rwsync/internal/mc"
)

func TestAndersonMutex(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		for seed := int64(1); seed <= 6; seed++ {
			sys := NewAndersonSystem(n)
			res := runChecked(t, sys, ccsim.NewRandomSched(seed), 6, check.RunOpts{SectionBound: 8})
			if v := check.FCFSWriters(res.Trace.Attempts()); v != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, v)
			}
		}
	}
}

func TestAndersonModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in -short mode")
	}
	sys := NewAndersonSystem(3)
	r, err := sys.NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Explore(r, mc.Options{Attempts: 2, DetectStuck: true})
	if res.Violation != nil {
		t.Fatalf("anderson: %v", res.Violation)
	}
	t.Logf("anderson n=3 attempts=2: %d states", res.States)
}

func TestAndersonRMRConstant(t *testing.T) {
	const maxRMR = 10
	for _, n := range []int{2, 4, 8, 16, 32} {
		sys := NewAndersonSystem(n)
		r, err := sys.NewRunner(3)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(ccsim.NewRandomSched(int64(n)), 1<<24); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, s := range r.Stats {
			if s.RMR > maxRMR {
				t.Fatalf("n=%d proc=%d: RMR=%d exceeds %d", n, s.Proc, s.RMR, maxRMR)
			}
		}
	}
}

func TestMWSFRandomRunsSatisfyProperties(t *testing.T) {
	for _, cfg := range []struct{ w, r int }{{1, 2}, {2, 2}, {3, 4}} {
		for seed := int64(1); seed <= 6; seed++ {
			sys := NewMWSFSystem(cfg.w, cfg.r)
			res := runChecked(t, sys, ccsim.NewRandomSched(seed), 5, check.RunOpts{
				FIFE:         true,
				SectionBound: 32,
			})
			tr := res.Trace.Attempts()
			if v := check.FCFSWriters(tr); v != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, v)
			}
		}
	}
}

func TestMWSFStarvationFreedom(t *testing.T) {
	// P7 under a fair (round-robin) schedule: every attempt completes.
	sys := NewMWSFSystem(3, 3)
	runChecked(t, sys, ccsim.NewRoundRobin(), 8, check.RunOpts{SectionBound: 64})
}

func TestMWSFModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in -short mode")
	}
	sys := NewMWSFSystem(2, 1)
	r, err := sys.NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Explore(r, mc.Options{
		Attempts:    2,
		Invariant:   sys.Invariant,
		DetectStuck: true,
	})
	if res.Violation != nil {
		t.Fatalf("mwsf: %v", res.Violation)
	}
	if res.Truncated {
		t.Fatalf("mwsf truncated at %d states", res.States)
	}
	t.Logf("mwsf 2w+1r attempts=2: %d states", res.States)
}

func TestMWSFRMRConstant(t *testing.T) {
	const maxRMR = 48
	for _, cfg := range []struct{ w, r int }{{2, 2}, {2, 8}, {4, 16}, {4, 32}} {
		sys := NewMWSFSystem(cfg.w, cfg.r)
		r, err := sys.NewRunner(4)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(ccsim.NewRandomSched(int64(cfg.w*100+cfg.r)), 1<<24); err != nil {
			t.Fatalf("w=%d r=%d: %v", cfg.w, cfg.r, err)
		}
		for _, s := range r.Stats {
			if s.RMR > maxRMR {
				t.Fatalf("w=%d r=%d proc=%d: RMR=%d exceeds %d", cfg.w, cfg.r, s.Proc, s.RMR, maxRMR)
			}
		}
	}
}

func TestMWRPRandomRunsSatisfyProperties(t *testing.T) {
	for _, cfg := range []struct{ w, r int }{{1, 2}, {2, 2}, {3, 4}} {
		for seed := int64(1); seed <= 6; seed++ {
			sys := NewMWRPSystem(cfg.w, cfg.r)
			res := runChecked(t, sys, ccsim.NewRandomSched(seed), 5, check.RunOpts{
				FIFE:              true,
				UnstoppableReader: true,
				SectionBound:      32,
			})
			tr := res.Trace.Attempts()
			if v := check.ReaderPriority(tr); v != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, v)
			}
			if v := check.FCFSWriters(tr); v != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, v)
			}
		}
	}
}

func TestMWRPModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in -short mode")
	}
	sys := NewMWRPSystem(2, 1)
	r, err := sys.NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Explore(r, mc.Options{
		Attempts:    2,
		Invariant:   sys.Invariant,
		DetectStuck: true,
	})
	if res.Violation != nil {
		t.Fatalf("mwrp: %v", res.Violation)
	}
	if res.Truncated {
		t.Fatalf("mwrp truncated at %d states", res.States)
	}
	t.Logf("mwrp 2w+1r attempts=2: %d states", res.States)
}

func TestMWRPRMRConstant(t *testing.T) {
	const maxRMR = 48
	for _, cfg := range []struct{ w, r int }{{2, 2}, {2, 8}, {4, 16}} {
		sys := NewMWRPSystem(cfg.w, cfg.r)
		r, err := sys.NewRunner(4)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(ccsim.NewRandomSched(int64(cfg.w*100+cfg.r+7)), 1<<24); err != nil {
			t.Fatalf("w=%d r=%d: %v", cfg.w, cfg.r, err)
		}
		for _, s := range r.Stats {
			if s.RMR > maxRMR {
				t.Fatalf("w=%d r=%d proc=%d: RMR=%d exceeds %d", cfg.w, cfg.r, s.Proc, s.RMR, maxRMR)
			}
		}
	}
}
