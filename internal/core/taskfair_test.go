package core

import (
	"testing"

	"rwsync/internal/ccsim"
	"rwsync/internal/check"
	"rwsync/internal/mc"
)

func TestTaskFairMutualExclusion(t *testing.T) {
	for _, cfg := range []struct{ w, r int }{{1, 2}, {2, 3}} {
		for seed := int64(1); seed <= 6; seed++ {
			sys := NewTaskFairSystem(cfg.w, cfg.r)
			r, err := sys.NewRunner(5)
			if err != nil {
				t.Fatal(err)
			}
			tr := &check.Trace{}
			r.Sink = tr
			if err := r.Run(ccsim.NewRandomSched(seed), 1<<22); err != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, err)
			}
			if v := check.MutualExclusion(tr); v != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, v)
			}
			// Task-fairness is total FCFS: applies to writers too.
			if v := check.FCFSWriters(tr.Attempts()); v != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, v)
			}
		}
	}
}

func TestTaskFairModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in -short mode")
	}
	sys := NewTaskFairSystem(2, 2)
	r, err := sys.NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Explore(r, mc.Options{Attempts: 2, DetectStuck: true})
	if res.Violation != nil {
		t.Fatalf("taskfair: %v", res.Violation)
	}
	t.Logf("taskfair 2w+2r attempts=2: %d states", res.States)
}

// TestTaskFairConcurrentEnteringFails reproduces the paper's claim
// that queue-based fair locks like [25] do NOT satisfy concurrent
// entering (P5): with EVERY writer in the remainder section, a reader
// can still be blocked indefinitely — here, behind a reader that took
// a ticket and stalled before advancing the serving counter.  The
// same solo-run probe that passes on Figures 1 and 2
// (TestFig1ConcurrentEntering / TestFig2ConcurrentEntering) fails here.
func TestTaskFairConcurrentEnteringFails(t *testing.T) {
	sys := NewTaskFairSystem(1, 2) // writer 0 (never runs), readers 1, 2
	r, err := sys.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	r.Halt(0) // all writers remain in the remainder section, forever

	// Reader 1 takes ticket 0 and STALLS at the queue head without
	// advancing serving.
	r.StepProc(1) // leave remainder
	r.StepProc(1) // ticket
	if r.Procs[1].PC != tfrHead {
		t.Fatalf("reader 1 at PC %d, want head wait", r.Procs[1].PC)
	}
	// Reader 2 takes ticket 1 and reaches the queue-head wait.
	r.StepProc(2)
	r.StepProc(2)

	// P5 demands reader 2 be enabled (all writers are in the
	// remainder section).  It is not: its solo runs spin on serving.
	if r.EnabledToEnterCS(2, 10_000) {
		t.Fatal("expected the task-fair lock to violate concurrent entering")
	}

	// Control: the identical scenario on Figure 1 leaves the second
	// reader enabled.
	f1 := NewFig1System(2)
	rf, err := f1.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	rf.Halt(0)
	rf.StepProc(1)
	rf.StepProc(1) // reader 1 mid-doorway, stalled
	rf.StepProc(2)
	rf.StepProc(2)
	if !rf.EnabledToEnterCS(2, f1.EnabledBound) {
		t.Fatal("figure 1 reader must be enabled with all writers in remainder (P5)")
	}
}

// TestTaskFairReaderBatching: consecutive readers share the CS (the
// lock is a genuine RW lock, not a mutex).
func TestTaskFairReaderBatching(t *testing.T) {
	sys := NewTaskFairSystem(1, 3)
	r, err := sys.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	r.Halt(0)
	// March all three readers into the CS together.
	for i := 1; i <= 3; i++ {
		for r.PhaseOf(i) != ccsim.PhaseCS {
			r.StepProc(i)
		}
	}
	inCS := 0
	for i := 1; i <= 3; i++ {
		if r.PhaseOf(i) == ccsim.PhaseCS {
			inCS++
		}
	}
	if inCS != 3 {
		t.Fatalf("%d readers in CS, want 3", inCS)
	}
}
