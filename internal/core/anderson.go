package core

import "rwsync/internal/ccsim"

// AndersonVars holds the shared variables of T.E. Anderson's
// array-based queueing lock [Anderson 1990], the O(1)-RMR mutual
// exclusion lock M that the paper's Figure 3 transformation and
// Figure 4 algorithm use to serialize writers.
//
// Anderson's lock satisfies mutual exclusion, starvation freedom, FCFS
// (from the fetch&increment ticket), bounded exit, and the property
// Section 5 relies on: if a set S of processes is in the waiting room
// and no process is in the CS or exit section, some process in S is
// enabled (the process whose slot holds true).
type AndersonVars struct {
	// Ticket is the fetch&increment counter assigning waiting slots.
	Ticket ccsim.Var
	// Slots[i] is true when the process holding slot i may enter.
	Slots []ccsim.Var
	// Size is the slot-array length; it must be at least the maximum
	// number of processes that use the lock concurrently.
	Size int64
}

// NewAndersonVars registers the lock's variables: Slots[0] starts true
// (the first ticket holder enters immediately), all others false.
func NewAndersonVars(m *ccsim.Memory, name string, size int) *AndersonVars {
	if size < 1 {
		panic("core: Anderson lock needs size >= 1")
	}
	av := &AndersonVars{Size: int64(size)}
	av.Ticket = m.NewVar(name+".Ticket", ccsim.KindFAA, 0)
	for i := 0; i < size; i++ {
		init := int64(0)
		if i == 0 {
			init = 1
		}
		av.Slots = append(av.Slots, m.NewVar(name+".Slots["+itoa(i)+"]", ccsim.KindRW, init))
	}
	return av
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// appendAndersonAcquire appends the three acquire instructions
// (ticket fetch, slot spin, slot claim) starting at PC start and
// continuing at after.  The slot index is stored in register slotReg.
// ticketPhase is the phase of the ticket fetch (the doorway of locks
// built on M); the spin and claim are waiting-room steps.
func appendAndersonAcquire(instrs []ccsim.Instr, phases []ccsim.Phase, av *AndersonVars,
	start, after, slotReg int, ticketPhase ccsim.Phase) ([]ccsim.Instr, []ccsim.Phase) {

	spin := start + 1
	claim := start + 2

	instrs = append(instrs, func(c *ccsim.Ctx) int {
		c.P.Regs[slotReg] = c.FAA(av.Ticket, 1) % av.Size
		return spin
	})
	phases = append(phases, ticketPhase)

	instrs = append(instrs, func(c *ccsim.Ctx) int {
		if c.Read(av.Slots[c.P.Regs[slotReg]]) != 0 {
			return claim
		}
		return spin
	})
	phases = append(phases, ccsim.PhaseWaiting)

	instrs = append(instrs, func(c *ccsim.Ctx) int {
		c.Write(av.Slots[c.P.Regs[slotReg]], 0)
		return after
	})
	phases = append(phases, ccsim.PhaseWaiting)

	return instrs, phases
}

// appendAndersonRelease appends the single release instruction
// (opening the successor slot) at the current end of the program.
func appendAndersonRelease(instrs []ccsim.Instr, phases []ccsim.Phase, av *AndersonVars,
	after, slotReg int, phase ccsim.Phase) ([]ccsim.Instr, []ccsim.Phase) {

	instrs = append(instrs, func(c *ccsim.Ctx) int {
		c.Write(av.Slots[(c.P.Regs[slotReg]+1)%av.Size], 1)
		return after
	})
	phases = append(phases, phase)
	return instrs, phases
}

// NewAndersonSystem assembles a pure Anderson mutex system with n
// processes, used to test the substrate on its own (mutual exclusion,
// FCFS, O(1) RMR).
func NewAndersonSystem(n int) *System {
	validateSplit(n, 0)
	mem := ccsim.NewMemory(n)
	av := NewAndersonVars(mem, "M", n)

	const slotReg = 0
	build := func() *ccsim.Program {
		var instrs []ccsim.Instr
		var phases []ccsim.Phase
		instrs = append(instrs, func(c *ccsim.Ctx) int { return 1 })
		phases = append(phases, ccsim.PhaseRemainder)
		instrs, phases = appendAndersonAcquire(instrs, phases, av, 1, 4, slotReg, ccsim.PhaseDoorway)
		instrs = append(instrs, func(c *ccsim.Ctx) int { return 5 })
		phases = append(phases, ccsim.PhaseCS)
		instrs, phases = appendAndersonRelease(instrs, phases, av, 0, slotReg, ccsim.PhaseExit)
		return &ccsim.Program{Name: "anderson", Reader: false, Instrs: instrs, Phases: phases}
	}
	prog := build()
	progs := make([]*ccsim.Program, n)
	for i := range progs {
		progs[i] = prog
	}
	return &System{
		Name:         "anderson-mutex",
		Mem:          mem,
		Progs:        progs,
		NumWriters:   n,
		NumReaders:   0,
		EnabledBound: 8,
	}
}
