package core

import (
	"testing"

	"rwsync/internal/ccsim"
)

// Ablation: the RMR accounting rule for writes.  The conservative
// model (WriteAlwaysRemote, the default) charges every write-like
// operation; the MESI-like model (WriteLocalIfExclusive) makes writes
// to exclusively-held lines free.  The paper's constants must hold
// under both — the choice shifts the constant, never the asymptotics.
func TestFig1RMRConstantUnderBothWritePolicies(t *testing.T) {
	worst := func(readers int, policy ccsim.WritePolicy) int64 {
		sys := NewFig1System(readers)
		sys.Mem.SetWritePolicy(policy)
		r, err := sys.NewRunner(6)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(ccsim.NewRandomSched(11), 1<<24); err != nil {
			t.Fatal(err)
		}
		var w int64
		for _, s := range r.Stats {
			if s.RMR > w {
				w = s.RMR
			}
		}
		return w
	}
	for _, policy := range []ccsim.WritePolicy{ccsim.WriteAlwaysRemote, ccsim.WriteLocalIfExclusive} {
		small := worst(2, policy)
		large := worst(64, policy)
		if large > small+3 {
			t.Fatalf("policy %d: RMR grew %d -> %d across 2 -> 64 readers", policy, small, large)
		}
	}
	// And the MESI-like policy is never more expensive.
	if a, b := worst(16, ccsim.WriteLocalIfExclusive), worst(16, ccsim.WriteAlwaysRemote); a > b {
		t.Fatalf("exclusive-write policy (%d) charged more than the conservative one (%d)", a, b)
	}
}

// Ablation: scheduler choice.  The constant-RMR bound is a worst-case
// claim over ALL schedules; spot-check that round-robin, uniform
// random, reader-weighted and writer-stalling adversaries all observe
// the same ceiling on Figure 1.
func TestFig1RMRConstantUnderAdversarialSchedulers(t *testing.T) {
	const readers = 8
	const bound = 40
	scheds := map[string]func() ccsim.Scheduler{
		"round-robin": func() ccsim.Scheduler { return ccsim.NewRoundRobin() },
		"random":      func() ccsim.Scheduler { return ccsim.NewRandomSched(3) },
		"reader-heavy": func() ccsim.Scheduler {
			w := make([]float64, readers+1)
			w[0] = 1
			for i := 1; i <= readers; i++ {
				w[i] = 16
			}
			return ccsim.NewWeightedSched(3, w)
		},
		"writer-stalled": func() ccsim.Scheduler { return ccsim.NewStallSched(3, 0, 128) },
	}
	for name, mk := range scheds {
		sys := NewFig1System(readers)
		r, err := sys.NewRunner(5)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(mk(), 1<<24); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, s := range r.Stats {
			if s.RMR > bound {
				t.Fatalf("%s: proc %d attempt %d RMR=%d exceeds %d", name, s.Proc, s.Attempt, s.RMR, bound)
			}
		}
	}
}

// Ablation: the doorway double-registration (Figure 1 reader lines
// 18-22).  It exists so a reader that straddles the writer's D toggle
// is counted on the side the writer will wait for.  Dropping it is
// not just unfair — the writer can wait on the wrong counter forever
// (lost wakeup) or race into the CS.  We verify the code path is
// actually exercised: across random runs, some readers do take the
// d != d' branch.
func TestFig1DoubleRegistrationPathExercised(t *testing.T) {
	taken := 0
	for seed := int64(1); seed <= 30; seed++ {
		sys := NewFig1System(3)
		r, err := sys.NewRunner(4)
		if err != nil {
			t.Fatal(err)
		}
		for !r.AllDone() {
			id := int(r.TotalSteps) % 4
			if r.Procs[id].Done {
				id = r.Active()[0]
			}
			if id > 0 && r.Procs[id].PC == F1RIncCd2 {
				taken++
			}
			r.StepProc(id)
			if r.TotalSteps > 1<<16 {
				t.Fatal("run did not complete")
			}
		}
	}
	if taken == 0 {
		t.Fatal("the lines 18-22 path was never exercised; tests are not covering the subtle branch")
	}
	t.Logf("double-registration branch taken %d times across 30 runs", taken)
}
