package core

import "rwsync/internal/ccsim"

// This file adds a modern practical baseline to the RMR experiments:
// a phase-fair ticket reader-writer lock in the style of Brandenburg &
// Anderson (ECRTS 2009) — the paper's reference [26].  Phase-fair
// locks are excellent on real hardware and give strong fairness
// (readers wait for at most one writer phase), but all waiting happens
// on two global words (rin/rout), so in the CC model the writer pays
// one RMR per reader that entered before it and readers pay one per
// concurrent arrival: Θ(n) RMR per passage, not O(1).
//
// Comparing it against Figures 1-4 shows the paper's contribution is
// not subsumed by the practical state of the art it cites.

// PFTicketVars holds the four counters of the phase-fair ticket lock.
type PFTicketVars struct {
	Rin  ccsim.Var // readers-in << 8 | writer presence/phase bits
	Rout ccsim.Var // readers-out << 8
	Win  ccsim.Var // writer ticket dispenser
	Wout ccsim.Var // writer tickets served
}

// Phase-fair bit constants (low byte of Rin).
const (
	pfReaderUnit = int64(0x100)
	pfPres       = int64(0x2)
	pfPhase      = int64(0x1)
	pfWBits      = pfPres | pfPhase
)

// NewPFTicketVars registers the lock's counters (all zero).
func NewPFTicketVars(m *ccsim.Memory) *PFTicketVars {
	return &PFTicketVars{
		Rin:  m.NewVar("rin", ccsim.KindFAA, 0),
		Rout: m.NewVar("rout", ccsim.KindFAA, 0),
		Win:  m.NewVar("win", ccsim.KindFAA, 0),
		Wout: m.NewVar("wout", ccsim.KindFAA, 0),
	}
}

// Register assignments of the phase-fair programs.
const (
	pfRegW   = 0 // reader: the writer bits observed at entry
	pfRegT   = 0 // writer: my ticket
	pfRegEnt = 1 // writer: reader entries at publication time
)

// Phase-fair reader program counters.
const (
	pfrRem = iota
	pfrEnter
	pfrWait
	pfrCS
	pfrExit
	pfrLen
)

func pfReader(v *PFTicketVars) *ccsim.Program {
	instrs := make([]ccsim.Instr, pfrLen)
	phases := []ccsim.Phase{
		ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting, ccsim.PhaseCS, ccsim.PhaseExit,
	}
	instrs[pfrRem] = func(c *ccsim.Ctx) int { return pfrEnter }
	instrs[pfrEnter] = func(c *ccsim.Ctx) int {
		w := c.FAA(v.Rin, pfReaderUnit) & pfWBits
		if w == 0 {
			return pfrCS
		}
		c.P.Regs[pfRegW] = w
		return pfrWait
	}
	instrs[pfrWait] = func(c *ccsim.Ctx) int {
		// Wait for the writer bits to CHANGE (one phase boundary).
		if c.Read(v.Rin)&pfWBits != c.P.Regs[pfRegW] {
			return pfrCS
		}
		return pfrWait
	}
	instrs[pfrCS] = func(c *ccsim.Ctx) int { return pfrExit }
	instrs[pfrExit] = func(c *ccsim.Ctx) int {
		c.FAA(v.Rout, pfReaderUnit)
		return pfrRem
	}
	return &ccsim.Program{Name: "pfticket-reader", Reader: true, Instrs: instrs, Phases: phases}
}

// Phase-fair writer program counters.
const (
	pfwRem = iota
	pfwTicket
	pfwFIFO
	pfwPublish
	pfwDrain
	pfwCS
	pfwClear
	pfwServe
	pfwLen
)

func pfWriter(v *PFTicketVars) *ccsim.Program {
	instrs := make([]ccsim.Instr, pfwLen)
	phases := []ccsim.Phase{
		ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting, ccsim.PhaseWaiting,
		ccsim.PhaseWaiting, ccsim.PhaseCS, ccsim.PhaseExit, ccsim.PhaseExit,
	}
	instrs[pfwRem] = func(c *ccsim.Ctx) int { return pfwTicket }
	instrs[pfwTicket] = func(c *ccsim.Ctx) int {
		c.P.Regs[pfRegT] = c.FAA(v.Win, 1)
		return pfwFIFO
	}
	instrs[pfwFIFO] = func(c *ccsim.Ctx) int {
		if c.Read(v.Wout) == c.P.Regs[pfRegT] {
			return pfwPublish
		}
		return pfwFIFO
	}
	instrs[pfwPublish] = func(c *ccsim.Ctx) int {
		bits := pfPres | (c.P.Regs[pfRegT] & pfPhase)
		old := c.FAA(v.Rin, bits)
		c.P.Regs[pfRegEnt] = old &^ pfWBits
		return pfwDrain
	}
	instrs[pfwDrain] = func(c *ccsim.Ctx) int {
		// Θ(readers) in the CC model: every reader exit invalidates
		// rout and forces a fresh remote read here.
		if c.Read(v.Rout) == c.P.Regs[pfRegEnt] {
			return pfwCS
		}
		return pfwDrain
	}
	instrs[pfwCS] = func(c *ccsim.Ctx) int { return pfwClear }
	instrs[pfwClear] = func(c *ccsim.Ctx) int {
		bits := pfPres | (c.P.Regs[pfRegT] & pfPhase)
		c.FAA(v.Rin, -bits)
		return pfwServe
	}
	instrs[pfwServe] = func(c *ccsim.Ctx) int {
		c.FAA(v.Wout, 1)
		return pfwRem
	}
	return &ccsim.Program{Name: "pfticket-writer", Reader: false, Instrs: instrs, Phases: phases}
}

// NewPFTicketSystem assembles the phase-fair baseline with numWriters
// writers and numReaders readers.
func NewPFTicketSystem(numWriters, numReaders int) *System {
	validateSplit(numWriters, numReaders)
	mem := ccsim.NewMemory(numWriters + numReaders)
	v := NewPFTicketVars(mem)
	wp := pfWriter(v)
	rp := pfReader(v)
	progs := make([]*ccsim.Program, 0, numWriters+numReaders)
	for i := 0; i < numWriters; i++ {
		progs = append(progs, wp)
	}
	for i := 0; i < numReaders; i++ {
		progs = append(progs, rp)
	}
	return &System{
		Name:         "pfticket-rw",
		Mem:          mem,
		Progs:        progs,
		NumWriters:   numWriters,
		NumReaders:   numReaders,
		EnabledBound: 0,
		Invariant:    pfInvariant(v, numWriters, numWriters+numReaders),
	}
}

// pfInvariant checks counter consistency of the phase-fair lock:
// rin's reader field counts reader entries, rout reader exits, and
// rin-rout equals the readers currently past their entry F&A and not
// yet past their exit F&A.
func pfInvariant(v *PFTicketVars, numWriters, total int) func(r *ccsim.Runner) error {
	return func(r *ccsim.Runner) error {
		var inFlight int64
		for i := numWriters; i < total; i++ {
			pc := r.Procs[i].PC
			if pc >= pfrWait && pc <= pfrExit {
				inFlight++
			}
		}
		rin := r.Mem.Peek(v.Rin) &^ pfWBits
		rout := r.Mem.Peek(v.Rout)
		if rin-rout != inFlight*pfReaderUnit {
			return errPFCounts{rin: rin, rout: rout, want: inFlight}
		}
		return nil
	}
}

type errPFCounts struct{ rin, rout, want int64 }

func (e errPFCounts) Error() string {
	return "pfticket invariant: rin-rout=" + itoa(int((e.rin-e.rout)/pfReaderUnit)) +
		" readers in flight, want " + itoa(int(e.want))
}
