package core

import (
	"fmt"

	"rwsync/internal/ccsim"
)

// This file encodes the rwlock.Epoch reader fast path (rwlock/epoch.go)
// for the simulator, so its central claim — a read passage performs
// ZERO shared-word read-modify-writes — is checked by the same
// operation-exact accounting that validates the paper's RMR theorems,
// not just argued in comments.  The encoding is the protocol's kernel:
//
//	shared G : F&A variable, init 2   (even = fast path open)
//	shared S[i] : read/write, init 0  (reader i's stamp slot)
//
//	reader i:                        writer:
//	  g <- G                           F&A(G, 1)        // close, odd
//	  if g odd: retry                  for each i: wait S[i] = 0
//	  S[i] <- g                        CS
//	  if G != g:                       F&A(G, 1)        // reopen, even
//	    S[i] <- 0; retry
//	  CS
//	  S[i] <- 0
//
// The reader's entry is a read, a write, and a read — plain operations
// on every step; the F&As both belong to the writer.  The Go
// implementation leases S[i] from a pool and falls back to a full
// inner lock instead of retrying, but the shared-memory footprint of a
// successful fast passage is exactly this encoding's, which is what
// TestEpochReaderZeroRMW pins.
//
// Sections: in the Go code a reader that cannot enter the fast path
// does not retry — it takes the slow path through the inner lock.
// The encoding has no inner lock, so the retry stands in for the
// fallback, and it lives in the WAITING room (the doorway is one
// bookkeeping step) to keep the bounded-doorway checks honest; the
// encoding makes no FCFS/FIFE claims, exactly the trade Epoch
// documents.  Mutual exclusion must still hold, and the checker
// verifies it: if a reader's recheck saw the pre-advance epoch, its
// stamp precedes the advancing writer's scan, which then waits the
// stamp out.

// EpochVars holds handles to the epoch fast-path shared variables.
type EpochVars struct {
	G ccsim.Var   // global epoch: even = open, odd = writer inside
	S []ccsim.Var // one stamp slot per reader, 0 = quiescent
}

// NewEpochVars registers the epoch variables: G starts at 2 (even,
// open, and never equal to a cleared slot's 0), slots start empty.
func NewEpochVars(m *ccsim.Memory, numReaders int) *EpochVars {
	v := &EpochVars{G: m.NewVar("G", ccsim.KindFAA, 2)}
	for i := 0; i < numReaders; i++ {
		v.S = append(v.S, m.NewVar(epochSlotName(i), ccsim.KindRW, 0))
	}
	return v
}

func epochSlotName(i int) string { return fmt.Sprintf("S[%d]", i) }

// Reader register assignment.
const erRegG = 0 // g: the epoch value this attempt stamped

// Reader program counters.
const (
	ERRem     = iota // remainder section
	ERBegin          // doorway: one bookkeeping step, no shared ops
	ERReadG          // g <- G; retry here while g is odd
	ERStamp          // S[i] <- g
	ERRecheck        // if G = g enter, else back out
	ERBackout        // S[i] <- 0, retry
	ERCS             // critical section
	ERClear          // S[i] <- 0
	erLen
)

// EpochReader builds the fast-path reader program for the reader
// owning slot.
func EpochReader(v *EpochVars, slot ccsim.Var) *ccsim.Program {
	instrs := make([]ccsim.Instr, erLen)
	phases := make([]ccsim.Phase, erLen)

	phases[ERRem] = ccsim.PhaseRemainder
	phases[ERBegin] = ccsim.PhaseDoorway
	for pc := ERReadG; pc <= ERBackout; pc++ {
		phases[pc] = ccsim.PhaseWaiting
	}
	phases[ERCS] = ccsim.PhaseCS
	phases[ERClear] = ccsim.PhaseExit

	instrs[ERRem] = func(c *ccsim.Ctx) int { return ERBegin }
	instrs[ERBegin] = func(c *ccsim.Ctx) int { return ERReadG }
	instrs[ERReadG] = func(c *ccsim.Ctx) int {
		g := c.Read(v.G)
		if g&1 != 0 {
			return ERReadG // closed: the Go code would take the slow path
		}
		c.P.Regs[erRegG] = g
		return ERStamp
	}
	instrs[ERStamp] = func(c *ccsim.Ctx) int {
		c.Write(slot, c.P.Regs[erRegG])
		return ERRecheck
	}
	instrs[ERRecheck] = func(c *ccsim.Ctx) int {
		if c.Read(v.G) == c.P.Regs[erRegG] {
			// Dekker: no advance since our stamp, so any advancing
			// writer's scan is ordered after it and will wait us out.
			return ERCS
		}
		return ERBackout
	}
	instrs[ERBackout] = func(c *ccsim.Ctx) int {
		c.Write(slot, 0) // transient stamp: clear it for the scanning writer
		return ERReadG
	}
	instrs[ERCS] = func(c *ccsim.Ctx) int { return ERClear }
	instrs[ERClear] = func(c *ccsim.Ctx) int {
		c.Write(slot, 0)
		return ERRem
	}

	return &ccsim.Program{Name: "epoch-reader", Reader: true, Instrs: instrs, Phases: phases}
}

// Writer register assignment.
const ewRegIdx = 0 // scan index over the stamp slots

// Writer program counters.
const (
	EWRem    = iota // remainder section
	EWAdv           // F&A(G,1): odd, fast entry closed (doorway)
	EWScan          // grace wait: each slot must read 0 once
	EWCS            // critical section
	EWReopen        // F&A(G,1): even, fast path open again
	ewLen
)

// EpochWriter builds the writer program: advance, grace scan, CS,
// reopen.  The Go implementation interposes writer arbitration and a
// batch boundary; with the model's single writer every passage is a
// batch of one and the boundary is the exit.
func EpochWriter(v *EpochVars) *ccsim.Program {
	instrs := make([]ccsim.Instr, ewLen)
	phases := make([]ccsim.Phase, ewLen)

	phases[EWRem] = ccsim.PhaseRemainder
	phases[EWAdv] = ccsim.PhaseDoorway
	phases[EWScan] = ccsim.PhaseWaiting
	phases[EWCS] = ccsim.PhaseCS
	phases[EWReopen] = ccsim.PhaseExit

	instrs[EWRem] = func(c *ccsim.Ctx) int { return EWAdv }
	instrs[EWAdv] = func(c *ccsim.Ctx) int {
		c.FAA(v.G, 1) // odd: no new stamp can pass its recheck
		c.P.Regs[ewRegIdx] = 0
		return EWScan
	}
	instrs[EWScan] = func(c *ccsim.Ctx) int {
		idx := c.P.Regs[ewRegIdx]
		if idx >= int64(len(v.S)) {
			return EWCS
		}
		if c.Read(v.S[idx]) == 0 {
			// A slot observed quiescent once is settled: its owner's
			// next stamp cannot pass the recheck while G is odd, so a
			// single pass certifies the grace period.
			c.P.Regs[ewRegIdx] = idx + 1
		}
		return EWScan
	}
	instrs[EWCS] = func(c *ccsim.Ctx) int { return EWReopen }
	instrs[EWReopen] = func(c *ccsim.Ctx) int {
		c.FAA(v.G, 1) // even again: the fast path reopens
		return EWRem
	}

	return &ccsim.Program{Name: "epoch-writer", Reader: false, Instrs: instrs, Phases: phases}
}

// NewEpochSystem assembles the epoch fast-path system: process 0 is
// the writer, processes 1..numReaders its readers, each owning one
// stamp slot.
func NewEpochSystem(numReaders int) *System {
	validateSplit(1, numReaders)
	mem := ccsim.NewMemory(1 + numReaders)
	v := NewEpochVars(mem, numReaders)
	progs := []*ccsim.Program{EpochWriter(v)}
	for i := 0; i < numReaders; i++ {
		progs = append(progs, EpochReader(v, v.S[i]))
	}
	return &System{
		Name:       "epoch-read",
		Mem:        mem,
		Progs:      progs,
		NumWriters: 1,
		NumReaders: numReaders,
		// The writer's grace scan visits every slot, so its waiting
		// budget grows with the reader count.
		EnabledBound: 4*(ewLen+erLen) + 8*numReaders,
	}
}
