package core

import (
	"testing"

	"rwsync/internal/ccsim"
	"rwsync/internal/check"
)

// This file contains directed (hand-scheduled) scenario tests that
// pin down individual clauses of the paper's properties, complementing
// the exhaustive model checks and randomized stress.

// TestFig1FIFEDirected constructs the canonical FIFE situation: two
// readers queue on the same side behind a writer; the scheduler lets
// the LATER one (by doorway order) into the CS first; the earlier one
// must be enabled at that moment (P4).
func TestFig1FIFEDirected(t *testing.T) {
	sys := NewFig1System(2) // writer 0, readers 1 and 2
	r, err := sys.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	// Writer enters the CS (side 1 on its first attempt).
	stepUntil(t, r, 0, 200, func() bool { return r.PhaseOf(0) == ccsim.PhaseCS })
	// Reader 1 then reader 2 complete their doorways (both side 1,
	// gate closed): reader 1 doorway-precedes reader 2.
	stepUntil(t, r, 1, 200, func() bool { return r.PhaseOf(1) == ccsim.PhaseWaiting })
	stepUntil(t, r, 2, 200, func() bool { return r.PhaseOf(2) == ccsim.PhaseWaiting })
	// Writer exits, opening Gate[1].
	stepUntil(t, r, 0, 200, func() bool { return r.PhaseOf(0) == ccsim.PhaseRemainder || r.Procs[0].Done })
	// Adversary: reader 2 (the later one) races into the CS first.
	stepUntil(t, r, 2, 200, func() bool { return r.PhaseOf(2) == ccsim.PhaseCS })
	// FIFE: reader 1 must be enabled RIGHT NOW.
	if !r.EnabledToEnterCS(1, sys.EnabledBound) {
		t.Fatal("P4 FIFE violated: earlier reader not enabled when the later one entered the CS")
	}
}

// TestFig2RP21Directed pins down RP2 part 1 for Figure 2: a reader in
// the CS implies every reader in the waiting room is enabled.
func TestFig2RP21Directed(t *testing.T) {
	sys := NewFig2System(2) // writer 0, readers 1 and 2
	r, err := sys.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	// Reader 1 goes straight into the CS (no writer anywhere).
	stepUntil(t, r, 1, 200, func() bool { return r.PhaseOf(1) == ccsim.PhaseCS })
	// Reader 2 runs its try section.  In Figure 2 with the writer in
	// the remainder section it will not wait (X != true), which is
	// itself the property: it must reach the CS in bounded solo steps
	// from ANY point in its try section.
	r.StepProc(2) // leave the remainder section
	for r.PhaseOf(2) == ccsim.PhaseDoorway || r.PhaseOf(2) == ccsim.PhaseWaiting {
		if !r.EnabledToEnterCS(2, sys.EnabledBound) {
			t.Fatalf("RP2.1 violated: reader 2 not enabled at PC %d while reader 1 occupies the CS", r.Procs[2].PC)
		}
		r.StepProc(2)
	}
	if r.PhaseOf(2) != ccsim.PhaseCS {
		t.Fatalf("reader 2 ended in %v", r.PhaseOf(2))
	}
}

// TestFig1WP1Directed pins down WP1: a writer that completes its
// doorway before a reader begins hers is never overtaken.
func TestFig1WP1Directed(t *testing.T) {
	sys := NewFig1System(1) // writer 0, reader 1
	r, err := sys.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	// Writer completes its doorway (D toggled) but goes no further.
	stepUntil(t, r, 0, 200, func() bool { return r.PhaseOf(0) == ccsim.PhaseWaiting })
	// Reader starts AFTER the writer's doorway and runs as far as it
	// can get on its own: it must NOT reach the CS.
	for i := 0; i < 200 && r.PhaseOf(1) != ccsim.PhaseCS; i++ {
		r.StepProc(1)
	}
	if r.PhaseOf(1) == ccsim.PhaseCS {
		t.Fatal("WP1 violated: reader entered the CS before the doorway-preceding writer")
	}
	// Once the writer passes through, the reader is released.
	stepUntil(t, r, 0, 400, func() bool { return r.Procs[0].Done || r.PhaseOf(0) == ccsim.PhaseRemainder })
	stepUntil(t, r, 1, 400, func() bool { return r.PhaseOf(1) == ccsim.PhaseCS })
}

// TestFig2RP1Directed pins down RP1: a reader that completes its
// doorway before the writer begins its own is never overtaken.
func TestFig2RP1Directed(t *testing.T) {
	sys := NewFig2System(1) // writer 0, reader 1
	r, err := sys.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	// Reader completes its doorway (C incremented).
	stepUntil(t, r, 1, 200, func() bool {
		ph := r.PhaseOf(1)
		return ph == ccsim.PhaseWaiting || ph == ccsim.PhaseCS
	})
	// Writer now runs alone as far as it can: it must not reach the
	// CS, because C > 0 blocks Promote and nobody will set Permit.
	for i := 0; i < 400 && r.PhaseOf(0) != ccsim.PhaseCS; i++ {
		r.StepProc(0)
	}
	if r.PhaseOf(0) == ccsim.PhaseCS {
		t.Fatal("RP1 violated: writer entered the CS before the doorway-preceding reader")
	}
	// The reader gets in, exits; its Promote releases the writer.
	stepUntil(t, r, 1, 400, func() bool { return r.Procs[1].Done || r.PhaseOf(1) == ccsim.PhaseRemainder })
	stepUntil(t, r, 0, 400, func() bool { return r.PhaseOf(0) == ccsim.PhaseCS })
}

// TestWriterBypassMetric: the paper's locks serve writers FCFS
// (bypass 0); the centralized baseline has no writer ordering and
// exhibits bypasses under contention.
func TestWriterBypassMetric(t *testing.T) {
	run := func(sys *System, seed int64) int {
		r, err := sys.NewRunner(6)
		if err != nil {
			t.Fatal(err)
		}
		tr := &check.Trace{}
		r.Sink = tr
		if err := r.Run(ccsim.NewRandomSched(seed), 1<<22); err != nil {
			t.Fatal(err)
		}
		return check.WriterBypasses(tr.Attempts())
	}
	for seed := int64(1); seed <= 10; seed++ {
		if b := run(NewMWSFSystem(4, 2), seed); b != 0 {
			t.Fatalf("MWSF writer bypass = %d, want 0 (P3 FCFS)", b)
		}
		if b := run(NewMWWPSystem(4, 2), seed); b != 0 {
			t.Fatalf("MWWP writer bypass = %d, want 0 (P3 FCFS)", b)
		}
	}
	worst := 0
	for seed := int64(1); seed <= 20; seed++ {
		if b := run(NewCentralizedSystem(4, 2), seed); b > worst {
			worst = b
		}
	}
	if worst == 0 {
		t.Fatal("expected the centralized lock to exhibit writer bypasses under some schedule")
	}
	t.Logf("centralized worst writer bypass across 20 seeds: %d", worst)
}

// TestBoundedSectionsAllSystems checks P2 (bounded exit) and the
// bounded-doorway requirement across every algorithm, under both fair
// and adversarial schedules.
func TestBoundedSectionsAllSystems(t *testing.T) {
	systems := []func() *System{
		func() *System { return NewFig1System(3) },
		func() *System { return NewFig2System(3) },
		func() *System { return NewMWSFSystem(2, 2) },
		func() *System { return NewMWRPSystem(2, 2) },
		func() *System { return NewMWWPSystem(2, 2) },
		func() *System { return NewPFTicketSystem(2, 2) },
		func() *System { return NewAndersonSystem(4) },
	}
	scheds := []func() ccsim.Scheduler{
		func() ccsim.Scheduler { return ccsim.NewRoundRobin() },
		func() ccsim.Scheduler { return ccsim.NewRandomSched(3) },
	}
	for _, build := range systems {
		for _, mk := range scheds {
			sys := build()
			r, err := sys.NewRunner(4)
			if err != nil {
				t.Fatal(err)
			}
			r.CollectStats = true
			if err := r.Run(mk(), 1<<22); err != nil {
				t.Fatalf("%s: %v", sys.Name, err)
			}
			if v := check.BoundedSections(r.Stats, 16); v != nil {
				t.Fatalf("%s: %v", sys.Name, v)
			}
		}
	}
}
