package core

import (
	"fmt"

	"rwsync/internal/ccsim"
)

// This file makes the paper's proof invariants executable.  Appendix
// A.1 (Figure 1) and Figure 5 (Figure 2) state, for every writer
// program counter, exact relations between shared-variable values and
// the multiset of reader program counters.  The model checker
// evaluates these predicates at every reachable state, so any
// transcription error in the step machines — or any genuine algorithmic
// flaw — surfaces as a named invariant violation.

// fig1ReaderContrib returns how much reader state p currently
// contributes to the reader-count components of C[0], C[1] and EC,
// derived from Proposition A.1 and the Read-lock control flow.
func fig1ReaderContrib(p *ccsim.Proc) (c0, c1, ec int64) {
	d := p.Regs[f1rRegD]
	d2 := p.Regs[f1rRegD2]
	add := func(side int64, n int64) {
		if side == 0 {
			c0 += n
		} else {
			c1 += n
		}
	}
	switch p.PC {
	case F1RReadD2, F1RIncCd2:
		// Incremented C[d] at line 17 only.
		add(d, 1)
	case F1RReadD3:
		// Incremented C[d] (line 17) and C[d'] (line 20).
		add(d, 1)
		add(d2, 1)
	case F1RDecOther:
		// Holds one unit on each side: the two increments were on d
		// and d' with d != d', i.e. one per side.
		c0++
		c1++
	case F1RPermitT, F1RWait, F1RCS, F1RIncEC, F1RDecCd:
		// Net one unit on the side it finally belongs to (reg d).
		add(d, 1)
	}
	switch p.PC {
	case F1RDecCd, F1RPermitT2, F1RDecEC:
		// Incremented EC at line 26, not yet decremented (line 29).
		ec = 1
	}
	return c0, c1, ec
}

// fig1Invariant builds the Appendix A.1 invariant predicate for a
// Figure 1 system whose writer is process writerID and whose remaining
// processes are Figure 1 readers.
func fig1Invariant(v *Fig1Vars, writerID int) func(r *ccsim.Runner) error {
	return func(r *ccsim.Runner) error {
		m := r.Mem
		w := r.Procs[writerID]

		// --- Count consistency (item 1 of every invariant group). ---
		var c0, c1, ec int64
		for i, p := range r.Procs {
			if i == writerID {
				continue
			}
			a, b, e := fig1ReaderContrib(p)
			c0 += a
			c1 += b
			ec += e
		}
		switch w.PC {
		case F1WWaitPermit, F1WDecWW:
			// Writer holds the writer-waiting unit of C[prevD].
			if w.Regs[f1wRegPrev] == 0 {
				c0 += WW
			} else {
				c1 += WW
			}
		case F1WWaitExitP, F1WDecEC:
			ec += WW
		}
		if got := m.Peek(v.C[0]); got != c0 {
			return fmt.Errorf("fig1 invariant: C[0]=%d,%d want %d,%d (PCw=%d)",
				UnpackWW(got), UnpackRC(got), UnpackWW(c0), UnpackRC(c0), w.PC)
		}
		if got := m.Peek(v.C[1]); got != c1 {
			return fmt.Errorf("fig1 invariant: C[1]=%d,%d want %d,%d (PCw=%d)",
				UnpackWW(got), UnpackRC(got), UnpackWW(c1), UnpackRC(c1), w.PC)
		}
		if got := m.Peek(v.EC); got != ec {
			return fmt.Errorf("fig1 invariant: EC=%d,%d want %d,%d (PCw=%d)",
				UnpackWW(got), UnpackRC(got), UnpackWW(ec), UnpackRC(ec), w.PC)
		}

		// --- Gate relations (item 2 of the invariant groups). ---
		d := m.Peek(v.D)
		g := [2]int64{m.Peek(v.Gate[0]), m.Peek(v.Gate[1])}
		switch {
		case w.PC == F1WRem || w.PC == F1WReadD || w.PC == F1WWriteD:
			if g[d] != 1 || g[1-d] != 0 {
				return fmt.Errorf("fig1 invariant: PCw=%d expects Gate[D]=1,Gate[!D]=0; got Gate=%v D=%d", w.PC, g, d)
			}
		case w.PC >= F1WPermitF && w.PC <= F1WGateF:
			if g[d] != 0 || g[1-d] != 1 {
				return fmt.Errorf("fig1 invariant: PCw=%d expects Gate[D]=0,Gate[!D]=1; got Gate=%v D=%d", w.PC, g, d)
			}
		case w.PC >= F1WExitPermF && w.PC <= F1WExit:
			if g[0] != 0 || g[1] != 0 {
				return fmt.Errorf("fig1 invariant: PCw=%d expects both gates closed; got Gate=%v", w.PC, g)
			}
		}

		// --- Side exclusion (item 7/8 of the invariant groups):
		// while the writer is past its doorway, no reader on the
		// writer's current side is in the CS or the exit section. ---
		if w.PC >= F1WPermitF && w.PC <= F1WDecEC {
			for i, p := range r.Procs {
				if i == writerID {
					continue
				}
				if p.PC >= F1RCS && p.PC <= F1RExitPermT && p.Regs[f1rRegD] == d {
					return fmt.Errorf("fig1 invariant: PCw=%d but reader %d with d=D=%d at PC=%d", w.PC, i, d, p.PC)
				}
			}
		}

		// --- Empty CS and exit while the writer is in CS or at the
		// exit line (invariant group PCw in {13,14}, item 4). ---
		if w.PC == F1WCS || w.PC == F1WExit {
			for i, p := range r.Procs {
				if i == writerID {
					continue
				}
				if p.PC >= F1RCS && p.PC <= F1RExitPermT {
					return fmt.Errorf("fig1 invariant: writer at PC=%d but reader %d at PC=%d", w.PC, i, p.PC)
				}
			}
		}
		return nil
	}
}

// fig2ReaderHoldsC reports whether reader state p currently contributes
// one unit to the Figure 2 counter C (the global invariant of Figure 5:
// C equals the number of readers between their increment at line 18 and
// their decrement at line 26).
func fig2ReaderHoldsC(p *ccsim.Proc) bool {
	return p.PC >= F2RReadD && p.PC <= F2RDecC
}

// fig2Invariant builds the Figure 5 invariant predicate for a Figure 2
// system whose writer is process writerID.
func fig2Invariant(v *Fig2Vars, writerID int) func(r *ccsim.Runner) error {
	return func(r *ccsim.Runner) error {
		m := r.Mem
		w := r.Procs[writerID]

		// --- Global invariant: C counts registered readers. ---
		var c int64
		for i, p := range r.Procs {
			if i == writerID {
				continue
			}
			if fig2ReaderHoldsC(p) {
				c++
			}
		}
		if got := m.Peek(v.C); got != c {
			return fmt.Errorf("fig2 invariant: C=%d want %d (PCw=%d)", got, c, w.PC)
		}

		d := m.Peek(v.D)
		x := m.Peek(v.X)
		permit := m.Peek(v.Permit)
		g := [2]int64{m.Peek(v.Gate[0]), m.Peek(v.Gate[1])}

		// --- Gate relations per writer PC (Figure 5, item 1). ---
		switch {
		case w.PC == F2WRem || w.PC == F2WReadD:
			// PCw in {1,2}: Gate[D]=true, Gate[!D]=false.
			if g[d] != 1 || g[1-d] != 0 {
				return fmt.Errorf("fig2 invariant: PCw=%d expects Gate[D]=1,Gate[!D]=0; Gate=%v D=%d", w.PC, g, d)
			}
		case w.PC >= F2WPermF && w.PC <= F2WCS:
			// PCw in {3..6}: D was toggled; Gate[D]=false, Gate[!D]=true.
			if g[d] != 0 || g[1-d] != 1 {
				return fmt.Errorf("fig2 invariant: PCw=%d expects Gate[D]=0,Gate[!D]=1; Gate=%v D=%d", w.PC, g, d)
			}
		case w.PC == F2WGateOpen:
			// PCw = 8 (after closing Gate[!D]): both gates closed.
			if g[0] != 0 || g[1] != 0 {
				return fmt.Errorf("fig2 invariant: PCw=%d expects both gates closed; Gate=%v", w.PC, g)
			}
		case w.PC == F2WSetX:
			// PCw = 9: Gate[D]=true, Gate[!D]=false.
			if g[d] != 1 || g[1-d] != 0 {
				return fmt.Errorf("fig2 invariant: PCw=%d expects Gate[D]=1,Gate[!D]=0; Gate=%v D=%d", w.PC, g, d)
			}
		}

		// --- X and Permit relations. ---
		if w.PC == F2WRem || w.PC == F2WReadD {
			// PCw in {1,2}: X != true and Permit = true.
			if x == XTrue {
				return fmt.Errorf("fig2 invariant: PCw=%d (remainder) but X=true", w.PC)
			}
			if permit != 1 {
				return fmt.Errorf("fig2 invariant: PCw=%d (remainder) but Permit=false", w.PC)
			}
		}
		if w.PC >= F2WCS && w.PC <= F2WSetX {
			// PCw in {6..9}: X = true, Permit = true.
			if x != XTrue {
				return fmt.Errorf("fig2 invariant: PCw=%d (CS/exit) but X=%d != true", w.PC, x)
			}
			if permit != 1 {
				return fmt.Errorf("fig2 invariant: PCw=%d (CS/exit) but Permit=false", w.PC)
			}
		}

		// --- Invariant 3 of Section 4.1: a reader in the CS implies
		// X != true, or the writer is at line 9 with Gate[D] open. ---
		for i, p := range r.Procs {
			if i == writerID || p.PC != F2RCS {
				continue
			}
			if x == XTrue && !(w.PC == F2WSetX && g[d] == 1) {
				return fmt.Errorf("fig2 invariant 3: reader %d in CS with X=true while PCw=%d Gate=%v", i, w.PC, g)
			}
		}

		// --- Writer in CS excludes readers from CS (P1 restated as a
		// state predicate; the mutual-exclusion checker also covers
		// this, but here it doubles as an invariant sanity check). ---
		if w.PC == F2WCS {
			for i, p := range r.Procs {
				if i != writerID && p.PC == F2RCS {
					return fmt.Errorf("fig2 invariant: reader %d in CS while writer in CS", i)
				}
			}
		}
		return nil
	}
}
