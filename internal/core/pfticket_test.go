package core

import (
	"testing"

	"rwsync/internal/ccsim"
	"rwsync/internal/check"
	"rwsync/internal/mc"
)

func TestPFTicketMutualExclusion(t *testing.T) {
	for _, cfg := range []struct{ w, r int }{{1, 2}, {2, 3}, {3, 3}} {
		for seed := int64(1); seed <= 6; seed++ {
			sys := NewPFTicketSystem(cfg.w, cfg.r)
			r, err := sys.NewRunner(5)
			if err != nil {
				t.Fatal(err)
			}
			tr := &check.Trace{}
			r.Sink = tr
			if err := r.Run(ccsim.NewRandomSched(seed), 1<<22); err != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, err)
			}
			if v := check.MutualExclusion(tr); v != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, v)
			}
			if err := sys.CheckInvariant(r); err != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, err)
			}
			if v := check.FCFSWriters(tr.Attempts()); v != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v (ticket order is FIFO)", cfg.w, cfg.r, seed, v)
			}
		}
	}
}

func TestPFTicketModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in -short mode")
	}
	sys := NewPFTicketSystem(2, 2)
	r, err := sys.NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Explore(r, mc.Options{Attempts: 2, Invariant: sys.Invariant, DetectStuck: true})
	if res.Violation != nil {
		t.Fatalf("pfticket: %v", res.Violation)
	}
	t.Logf("pfticket 2w+2r attempts=2: %d states", res.States)
}

// TestPFTicketPhaseFairness: a reader that starts waiting while
// writers are queued is admitted after at most TWO writer CS entries
// (the phase it observed plus, in the worst interleaving, the phase
// that was being published as it arrived).
func TestPFTicketPhaseFairness(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		sys := NewPFTicketSystem(3, 2)
		r, err := sys.NewRunner(4)
		if err != nil {
			t.Fatal(err)
		}
		tr := &check.Trace{}
		r.Sink = tr
		if err := r.Run(ccsim.NewRandomSched(seed), 1<<22); err != nil {
			t.Fatal(err)
		}
		attempts := tr.Attempts()
		for _, ra := range attempts {
			if !ra.Reader || ra.EnterCS == check.Never {
				continue
			}
			writersBetween := 0
			for _, wa := range attempts {
				if wa.Reader {
					continue
				}
				if wa.EnterCS != check.Never && wa.EnterCS > ra.Begin && wa.EnterCS < ra.EnterCS {
					writersBetween++
				}
			}
			if writersBetween > 2 {
				t.Fatalf("seed=%d: reader %d/%d overtaken by %d writer phases (phase-fairness bound is 2)",
					seed, ra.Proc, ra.Index, writersBetween)
			}
		}
	}
}

// TestPFTicketWriterRMRGrowsWithReaders: the reason this practical
// baseline does not subsume the paper: its writer drains readers on a
// single word, paying RMRs proportional to the reader count.
func TestPFTicketWriterRMRGrowsWithReaders(t *testing.T) {
	// Directed schedule: park all readers inside the CS, then let the
	// writer publish and drain them one at a time.  Every reader exit
	// invalidates rout, so the writer's drain loop pays one RMR per
	// reader — the Θ(n) behaviour the paper's algorithms avoid.
	drainRMR := func(readers int) int64 {
		sys := NewPFTicketSystem(1, readers)
		r, err := sys.NewRunner(1)
		if err != nil {
			t.Fatal(err)
		}
		// Readers enter the CS (remainder step + enter step).
		for i := 1; i <= readers; i++ {
			r.StepProc(i)
			r.StepProc(i)
			if r.PhaseOf(i) != ccsim.PhaseCS {
				t.Fatalf("reader %d not in CS (phase %v)", i, r.PhaseOf(i))
			}
		}
		// Writer publishes and starts draining; release readers one
		// by one, stepping the writer's spin in between.
		for step := 0; r.PhaseOf(0) != ccsim.PhaseCS; step++ {
			r.StepProc(0)
			next := 1 + step%readers
			if !r.Procs[next].Done {
				r.StepProc(next)
			}
			if step > 100*readers {
				t.Fatal("writer never drained")
			}
		}
		return r.Mem.RMR(0)
	}
	small, large := drainRMR(2), drainRMR(48)
	if large < small+24 {
		t.Fatalf("expected pfticket writer drain RMR to grow with readers: %d (2 readers) vs %d (48 readers)", small, large)
	}
	t.Logf("pfticket writer drain RMR: %d with 2 readers, %d with 48 readers", small, large)
}

// TestFig1WriterDrainRMRConstant is the apples-to-apples companion of
// the previous test: the IDENTICAL directed scenario (readers parked
// in the CS, drained one at a time while the writer waits) costs the
// Figure 1 writer a constant number of RMRs, because only the LAST
// exiting reader touches the word the writer spins on (Permit[d]).
func TestFig1WriterDrainRMRConstant(t *testing.T) {
	drainRMR := func(readers int) int64 {
		sys := NewFig1System(readers)
		r, err := sys.NewRunner(1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= readers; i++ {
			for r.PhaseOf(i) != ccsim.PhaseCS {
				r.StepProc(i)
			}
		}
		for step := 0; r.PhaseOf(0) != ccsim.PhaseCS; step++ {
			r.StepProc(0)
			next := 1 + step%readers
			if !r.Procs[next].Done {
				r.StepProc(next)
			}
			if step > 100*readers+1000 {
				t.Fatal("writer never drained")
			}
		}
		return r.Mem.RMR(0)
	}
	small, large := drainRMR(2), drainRMR(48)
	if large > small+4 {
		t.Fatalf("fig1 writer drain RMR grew with readers: %d (2 readers) vs %d (48 readers)", small, large)
	}
	t.Logf("fig1 writer drain RMR: %d with 2 readers, %d with 48 readers (constant)", small, large)
}
