package core

import (
	"testing"

	"rwsync/internal/ccsim"
	"rwsync/internal/check"
	"rwsync/internal/mc"
)

func TestMWWPRandomRunsSatisfyProperties(t *testing.T) {
	for _, cfg := range []struct{ w, r int }{{1, 2}, {2, 2}, {3, 3}} {
		for seed := int64(1); seed <= 8; seed++ {
			sys := NewMWWPSystem(cfg.w, cfg.r)
			res := runChecked(t, sys, ccsim.NewRandomSched(seed), 5, check.RunOpts{
				FIFE:         true,
				SectionBound: 48,
			})
			tr := res.Trace.Attempts()
			if v := check.WriterPriority(tr); v != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, v)
			}
			if v := check.FCFSWriters(tr); v != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, v)
			}
		}
	}
}

func TestMWWPRoundRobinCompletes(t *testing.T) {
	sys := NewMWWPSystem(3, 3)
	runChecked(t, sys, ccsim.NewRoundRobin(), 8, check.RunOpts{SectionBound: 64})
}

func TestMWWPModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in -short mode")
	}
	for _, cfg := range []struct{ w, r, attempts int }{
		{1, 2, 2}, {2, 1, 2},
	} {
		sys := NewMWWPSystem(cfg.w, cfg.r)
		r, err := sys.NewRunner(cfg.attempts)
		if err != nil {
			t.Fatal(err)
		}
		res := mc.Explore(r, mc.Options{
			Attempts:    cfg.attempts,
			Invariant:   sys.Invariant,
			DetectStuck: true,
		})
		if res.Violation != nil {
			t.Fatalf("mwwp %dw+%dr: %v", cfg.w, cfg.r, res.Violation)
		}
		if res.Truncated {
			t.Fatalf("mwwp %dw+%dr truncated at %d states", cfg.w, cfg.r, res.States)
		}
		t.Logf("mwwp %dw+%dr attempts=%d: %d states", cfg.w, cfg.r, cfg.attempts, res.States)
	}
}

func TestMWWPRMRConstant(t *testing.T) {
	const maxRMR = 56
	for _, cfg := range []struct{ w, r int }{{2, 2}, {2, 8}, {4, 16}, {4, 32}} {
		sys := NewMWWPSystem(cfg.w, cfg.r)
		r, err := sys.NewRunner(4)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(ccsim.NewRandomSched(int64(cfg.w*131+cfg.r)), 1<<24); err != nil {
			t.Fatalf("w=%d r=%d: %v", cfg.w, cfg.r, err)
		}
		for _, s := range r.Stats {
			if s.RMR > maxRMR {
				t.Fatalf("w=%d r=%d proc=%d: RMR=%d exceeds %d", cfg.w, cfg.r, s.Proc, s.RMR, maxRMR)
			}
		}
	}
}

// stepUntil drives proc id until pred holds, failing after bound steps.
func stepUntil(t *testing.T, r *ccsim.Runner, id int, bound int, pred func() bool) {
	t.Helper()
	for i := 0; i < bound; i++ {
		if pred() {
			return
		}
		r.StepProc(id)
	}
	if !pred() {
		t.Fatalf("proc %d did not reach the target condition within %d steps (PC=%d)", id, bound, r.Procs[id].PC)
	}
}

// TestSection51TransformViolatesWriterPriority reproduces the paper's
// Section 5.1 counterexample: the plain transformation T applied to
// Figure 1 does NOT satisfy writer priority.  Schedule: writer w is in
// the CS, writer w' waits in M's waiting room, reader r completes its
// doorway and sits in the waiting room; when w executes SW-Write-exit
// (opening the gate) the reader becomes enabled and enters the CS
// before w' — even though w' >wp r (w' was in the waiting room while a
// writer occupied the CS and r was in the Try section).
func TestSection51TransformViolatesWriterPriority(t *testing.T) {
	sys := NewMWSFSystem(2, 1) // writers 0,1; reader 2
	r, err := sys.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	tr := &check.Trace{}
	r.Sink = tr

	const csPC = 15 // MWSF writer CS program counter
	// Writer 0 goes all the way into the CS.
	stepUntil(t, r, 0, 200, func() bool { return r.PhaseOf(0) == ccsim.PhaseCS })
	// Writer 1 enters M's waiting room (spinning on its Anderson slot).
	stepUntil(t, r, 1, 200, func() bool { return r.Procs[1].PC == 2 })
	for i := 0; i < 8; i++ { // let it spin: it stays in the waiting room
		r.StepProc(1)
	}
	// Reader 2 completes its doorway and reaches the waiting room.
	stepUntil(t, r, 2, 200, func() bool { return r.PhaseOf(2) == ccsim.PhaseWaiting })
	// Writer 0 exits completely (SW-Write-exit opens Gate[currD]).
	stepUntil(t, r, 0, 200, func() bool { return r.Procs[0].Done || r.PhaseOf(0) == ccsim.PhaseRemainder })
	// The reader can now enter the CS before writer 1.
	stepUntil(t, r, 2, 200, func() bool { return r.PhaseOf(2) == ccsim.PhaseCS })
	if r.PhaseOf(1) == ccsim.PhaseCS {
		t.Fatal("unexpected: writer 1 in CS")
	}
	// Finish the run so the trace is complete.
	if err := r.Run(ccsim.NewRoundRobin(), 1<<16); err != nil {
		t.Fatal(err)
	}
	v := check.WriterPriority(tr.Attempts())
	if v == nil {
		t.Fatal("expected the Section 5.1 schedule to violate WP1 under plain T∘Fig1")
	}
	t.Logf("reproduced Section 5.1: %v", v)
	_ = csPC
}

// TestMWWPSection51ScheduleRespectsWriterPriority runs the same
// adversarial idea against Figure 4 (random storms of readers around
// writer handoffs) and checks WP1 holds, i.e. Figure 4 fixes the
// Section 5.1 problem.
func TestMWWPSection51ScheduleRespectsWriterPriority(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sys := NewMWWPSystem(2, 3)
		r, err := sys.NewRunner(4)
		if err != nil {
			t.Fatal(err)
		}
		tr := &check.Trace{}
		r.Sink = tr
		// Heavily favor readers so they pounce on every gate opening.
		weights := []float64{1, 1, 20, 20, 20}
		if err := r.Run(ccsim.NewWeightedSched(seed, weights), 1<<22); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if v := check.WriterPriority(tr.Attempts()); v != nil {
			t.Fatalf("seed=%d: %v", seed, v)
		}
		if v := check.MutualExclusion(tr); v != nil {
			t.Fatalf("seed=%d: %v", seed, v)
		}
	}
}

// TestMWWPUnstoppableWriters drives the system into a WP2
// configuration — CS and exit empty, writers in the waiting room
// dominating all readers — and verifies that from that configuration,
// under schedules that step only the waiting writers, one of them
// enters the CS (the operational content of WP2).
func TestMWWPUnstoppableWriters(t *testing.T) {
	sys := NewMWWPSystem(2, 2)
	r, err := sys.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	// Both writers complete their doorways and park in the waiting room
	// (they cannot both enter: one blocks on M or the SWWP core).
	stepUntil(t, r, 0, 300, func() bool { return r.PhaseOf(0) == ccsim.PhaseWaiting || r.PhaseOf(0) == ccsim.PhaseCS })
	stepUntil(t, r, 1, 300, func() bool { return r.PhaseOf(1) == ccsim.PhaseWaiting || r.PhaseOf(1) == ccsim.PhaseCS })
	if r.PhaseOf(0) == ccsim.PhaseCS || r.PhaseOf(1) == ccsim.PhaseCS {
		// One already got in; this run trivially satisfies WP2.
		return
	}
	// Readers now begin their doorways — they are dominated (>wp) by
	// both writers, which completed doorways first.
	r.StepProc(2)
	r.StepProc(3)

	// From this configuration, stepping ONLY the writers must put one
	// of them into the CS within a bounded number of steps.
	probe := r.Clone()
	for i := 0; i < 500; i++ {
		if probe.PhaseOf(0) == ccsim.PhaseCS || probe.PhaseOf(1) == ccsim.PhaseCS {
			t.Logf("a writer entered the CS after %d writer-only steps", i)
			return
		}
		probe.StepProc(i % 2)
	}
	t.Fatal("WP2 violated: no writer entered the CS in 500 writer-only steps")
}
