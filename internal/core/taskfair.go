package core

import "rwsync/internal/ccsim"

// This file implements a task-fair ticket reader-writer lock in the
// style of Krieger, Stumm, Unrau & Hanna (ICPP 1993) — the paper's
// reference [25], cited among the algorithms that FAIL concurrent
// entering (P5).  Readers and writers are served strictly in arrival
// order; a batch of consecutive readers shares the CS.
//
// The failure mode this baseline exists to demonstrate: a reader
// behind another — possibly stalled — READER must wait for its
// predecessor to advance the serving counter, even when every writer
// is in the remainder section.  TestTaskFairConcurrentEnteringFails
// exhibits the violation with a directed schedule, and the same probe
// passes on Figures 1 and 2 (their P5 tests).

// TaskFairVars holds the lock's three counters.
type TaskFairVars struct {
	Tail    ccsim.Var // ticket dispenser (F&A)
	Serving ccsim.Var // next ticket allowed to pass the queue head
	Readers ccsim.Var // readers currently admitted (F&A)
}

// NewTaskFairVars registers the counters (all zero).
func NewTaskFairVars(m *ccsim.Memory) *TaskFairVars {
	return &TaskFairVars{
		Tail:    m.NewVar("tail", ccsim.KindFAA, 0),
		Serving: m.NewVar("serving", ccsim.KindFAA, 0),
		Readers: m.NewVar("readers", ccsim.KindFAA, 0),
	}
}

const tfRegTicket = 0

// Task-fair reader program counters.
const (
	tfrRem = iota
	tfrTicket
	tfrHead   // wait until serving == my ticket
	tfrAdmit  // readers++; serving++ (hand the head to my successor)
	tfrAdmit2 // second half of the admission (separate atomic step)
	tfrCS
	tfrExit
	tfrLen
)

func taskFairReader(v *TaskFairVars) *ccsim.Program {
	instrs := make([]ccsim.Instr, tfrLen)
	phases := []ccsim.Phase{
		ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting, ccsim.PhaseWaiting,
		ccsim.PhaseWaiting, ccsim.PhaseCS, ccsim.PhaseExit,
	}
	instrs[tfrRem] = func(c *ccsim.Ctx) int { return tfrTicket }
	instrs[tfrTicket] = func(c *ccsim.Ctx) int {
		c.P.Regs[tfRegTicket] = c.FAA(v.Tail, 1)
		return tfrHead
	}
	instrs[tfrHead] = func(c *ccsim.Ctx) int {
		// Queue-head wait: the CONCURRENT-ENTERING VIOLATION lives
		// here — a stalled reader predecessor never advances serving.
		if c.Read(v.Serving) == c.P.Regs[tfRegTicket] {
			return tfrAdmit
		}
		return tfrHead
	}
	instrs[tfrAdmit] = func(c *ccsim.Ctx) int {
		c.FAA(v.Readers, 1)
		return tfrAdmit2
	}
	instrs[tfrAdmit2] = func(c *ccsim.Ctx) int {
		c.FAA(v.Serving, 1)
		return tfrCS
	}
	instrs[tfrCS] = func(c *ccsim.Ctx) int { return tfrExit }
	instrs[tfrExit] = func(c *ccsim.Ctx) int {
		c.FAA(v.Readers, -1)
		return tfrRem
	}
	return &ccsim.Program{Name: "taskfair-reader", Reader: true, Instrs: instrs, Phases: phases}
}

// Task-fair writer program counters.
const (
	tfwRem = iota
	tfwTicket
	tfwHead  // wait until serving == my ticket
	tfwDrain // wait until admitted readers have left
	tfwCS
	tfwExit // serving++: release the queue head
	tfwLen
)

func taskFairWriter(v *TaskFairVars) *ccsim.Program {
	instrs := make([]ccsim.Instr, tfwLen)
	phases := []ccsim.Phase{
		ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting, ccsim.PhaseWaiting,
		ccsim.PhaseCS, ccsim.PhaseExit,
	}
	instrs[tfwRem] = func(c *ccsim.Ctx) int { return tfwTicket }
	instrs[tfwTicket] = func(c *ccsim.Ctx) int {
		c.P.Regs[tfRegTicket] = c.FAA(v.Tail, 1)
		return tfwHead
	}
	instrs[tfwHead] = func(c *ccsim.Ctx) int {
		if c.Read(v.Serving) == c.P.Regs[tfRegTicket] {
			return tfwDrain
		}
		return tfwHead
	}
	instrs[tfwDrain] = func(c *ccsim.Ctx) int {
		if c.Read(v.Readers) == 0 {
			return tfwCS
		}
		return tfwDrain
	}
	instrs[tfwCS] = func(c *ccsim.Ctx) int { return tfwExit }
	instrs[tfwExit] = func(c *ccsim.Ctx) int {
		c.FAA(v.Serving, 1)
		return tfwRem
	}
	return &ccsim.Program{Name: "taskfair-writer", Reader: false, Instrs: instrs, Phases: phases}
}

// NewTaskFairSystem assembles the task-fair queue baseline.
func NewTaskFairSystem(numWriters, numReaders int) *System {
	validateSplit(numWriters, numReaders)
	mem := ccsim.NewMemory(numWriters + numReaders)
	v := NewTaskFairVars(mem)
	wp := taskFairWriter(v)
	rp := taskFairReader(v)
	progs := make([]*ccsim.Program, 0, numWriters+numReaders)
	for i := 0; i < numWriters; i++ {
		progs = append(progs, wp)
	}
	for i := 0; i < numReaders; i++ {
		progs = append(progs, rp)
	}
	return &System{
		Name:       "taskfair-rw",
		Mem:        mem,
		Progs:      progs,
		NumWriters: numWriters,
		NumReaders: numReaders,
		// No EnabledBound: the lock does NOT satisfy concurrent
		// entering, so probe-based P5/FIFE checks do not apply.
		EnabledBound: 0,
	}
}
