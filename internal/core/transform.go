package core

import "rwsync/internal/ccsim"

// This file implements the paper's Figure 3 transformation T: writers
// wrap the single-writer protocol in Anderson's lock M, readers run
// the single-writer protocol unchanged.
//
//	Write-lock: acquire(M); SW-Write-try(); CS; SW-Write-exit(); release(M)
//	Read-lock:  SW-Read-try(); CS; SW-Read-exit()
//
// Applied to Figure 1 it yields the multi-writer multi-reader
// starvation-free lock of Theorem 3; applied to Figure 2, the
// multi-writer multi-reader reader-priority lock of Theorem 4.

// appendFig1WriterTry appends the Figure 1 writer's try-section body
// to a program under construction.  When withDoorway is true it starts
// at line 2 (toggle D); otherwise at line 4 (the SW-waiting-room of
// Figure 4, which assumes prevReg/currReg were already set).  All
// appended instructions carry phase ph; control continues at PC after.
func appendFig1WriterTry(instrs []ccsim.Instr, phases []ccsim.Phase, v *Fig1Vars,
	start, after int, ph ccsim.Phase, prevReg, currReg int, withDoorway bool) ([]ccsim.Instr, []ccsim.Phase) {

	add := func(ins ccsim.Instr) {
		instrs = append(instrs, ins)
		phases = append(phases, ph)
	}
	pc := start
	if withDoorway {
		readD, writeD := pc, pc+1
		pc += 2
		_ = readD
		permitF := pc
		add(func(c *ccsim.Ctx) int { // line 2
			prev := c.Read(v.D)
			c.P.Regs[prevReg] = prev
			c.P.Regs[currReg] = 1 - prev
			return writeD
		})
		add(func(c *ccsim.Ctx) int { // line 3
			c.Write(v.D, c.P.Regs[currReg])
			return permitF
		})
	}
	permitF := pc
	incWW := pc + 1
	waitPermit := pc + 2
	decWW := pc + 3
	gateF := pc + 4
	exitPermF := pc + 5
	incEC := pc + 6
	waitExitP := pc + 7
	decEC := pc + 8

	add(func(c *ccsim.Ctx) int { // line 4
		c.Write(sel(c.P.Regs[prevReg], v.Permit[0], v.Permit[1]), 0)
		return incWW
	})
	add(func(c *ccsim.Ctx) int { // line 5
		if c.FAA(sel(c.P.Regs[prevReg], v.C[0], v.C[1]), WW) != 0 {
			return waitPermit
		}
		return decWW
	})
	add(func(c *ccsim.Ctx) int { // line 6
		if c.Read(sel(c.P.Regs[prevReg], v.Permit[0], v.Permit[1])) != 0 {
			return decWW
		}
		return waitPermit
	})
	add(func(c *ccsim.Ctx) int { // line 7
		c.FAA(sel(c.P.Regs[prevReg], v.C[0], v.C[1]), -WW)
		return gateF
	})
	add(func(c *ccsim.Ctx) int { // line 8
		c.Write(sel(c.P.Regs[prevReg], v.Gate[0], v.Gate[1]), 0)
		return exitPermF
	})
	add(func(c *ccsim.Ctx) int { // line 9
		c.Write(v.ExitPermit, 0)
		return incEC
	})
	add(func(c *ccsim.Ctx) int { // line 10
		if c.FAA(v.EC, WW) != 0 {
			return waitExitP
		}
		return decEC
	})
	add(func(c *ccsim.Ctx) int { // line 11
		if c.Read(v.ExitPermit) != 0 {
			return decEC
		}
		return waitExitP
	})
	add(func(c *ccsim.Ctx) int { // line 12
		c.FAA(v.EC, -WW)
		return after
	})
	_ = permitF
	return instrs, phases
}

// Register assignments of the transformed (multi-writer) writers.
const (
	mwRegPrev = 0
	mwRegCurr = 1
	mwRegSlot = 2
	mwRegX    = 1 // Figure 2 writers reuse f2RegX; distinct from slot
	mwRegD    = 0 // Figure 2 writers reuse f2RegD
)

// NewMWSFSystem assembles the Theorem 3 multi-writer multi-reader
// starvation-free lock: T applied to Figure 1.  Processes
// 0..numWriters-1 are writers, the rest readers.
func NewMWSFSystem(numWriters, numReaders int) *System {
	validateSplit(numWriters, numReaders)
	mem := ccsim.NewMemory(numWriters + numReaders)
	v := NewFig1Vars(mem)
	av := NewAndersonVars(mem, "M", maxInt(numWriters, 1))

	var instrs []ccsim.Instr
	var phases []ccsim.Phase
	instrs = append(instrs, func(c *ccsim.Ctx) int { return 1 })
	phases = append(phases, ccsim.PhaseRemainder)
	// acquire(M): PCs 1..3; the ticket fetch is the combined doorway
	// (it fixes FCFS order among writers).
	instrs, phases = appendAndersonAcquire(instrs, phases, av, 1, 4, mwRegSlot, ccsim.PhaseDoorway)
	// SW-Write-try(): Figure 1 lines 2..12 at PCs 4..14.
	csPC := 4 + 11
	instrs, phases = appendFig1WriterTry(instrs, phases, v, 4, csPC, ccsim.PhaseWaiting, mwRegPrev, mwRegCurr, true)
	// CS at PC 15.
	instrs = append(instrs, func(c *ccsim.Ctx) int { return csPC + 1 })
	phases = append(phases, ccsim.PhaseCS)
	// SW-Write-exit(): Gate[currD] <- true at PC 16.
	instrs = append(instrs, func(c *ccsim.Ctx) int {
		c.Write(sel(c.P.Regs[mwRegCurr], v.Gate[0], v.Gate[1]), 1)
		return csPC + 2
	})
	phases = append(phases, ccsim.PhaseExit)
	// release(M) at PC 17.
	instrs, phases = appendAndersonRelease(instrs, phases, av, 0, mwRegSlot, ccsim.PhaseExit)

	wp := &ccsim.Program{Name: "mwsf-writer", Reader: false, Instrs: instrs, Phases: phases}
	rp := Fig1Reader(v)
	progs := make([]*ccsim.Program, 0, numWriters+numReaders)
	for i := 0; i < numWriters; i++ {
		progs = append(progs, wp)
	}
	for i := 0; i < numReaders; i++ {
		progs = append(progs, rp)
	}
	return &System{
		Name:         "mwsf",
		Mem:          mem,
		Progs:        progs,
		NumWriters:   numWriters,
		NumReaders:   numReaders,
		EnabledBound: 4 * (len(instrs) + f1rLen),
		Invariant:    mwAndersonInvariant(numWriters, 3, 17),
	}
}

// NewMWRPSystem assembles the Theorem 4 multi-writer multi-reader
// reader-priority lock: T applied to Figure 2.
func NewMWRPSystem(numWriters, numReaders int) *System {
	validateSplit(numWriters, numReaders)
	mem := ccsim.NewMemory(numWriters + numReaders)
	v := NewFig2Vars(mem)
	av := NewAndersonVars(mem, "M", maxInt(numWriters, 1))

	var instrs []ccsim.Instr
	var phases []ccsim.Phase
	add := func(ph ccsim.Phase, ins ccsim.Instr) {
		instrs = append(instrs, ins)
		phases = append(phases, ph)
	}
	add(ccsim.PhaseRemainder, func(c *ccsim.Ctx) int { return 1 })
	// acquire(M): PCs 1..3.
	instrs, phases = appendAndersonAcquire(instrs, phases, av, 1, 4, mwRegSlot, ccsim.PhaseDoorway)
	// SW-Write-try(): Figure 2 lines 2..5.
	const (
		readD    = 4
		writeD   = 5
		permF    = 6
		promote  = 7 // ..12
		waitPerm = 13
		csPC     = 14
		gateCl   = 15
		gateOp   = 16
		setX     = 17
		release  = 18
	)
	add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { // line 2a
		c.P.Regs[mwRegD] = c.Read(v.D)
		return writeD
	})
	add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { // line 2b
		d := 1 - c.P.Regs[mwRegD]
		c.P.Regs[mwRegD] = d
		c.Write(v.D, d)
		return permF
	})
	add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { // line 3
		c.Write(v.Permit, 0)
		return promote
	})
	instrs, phases = appendPromote(instrs, phases, v, promote, waitPerm, ccsim.PhaseWaiting, promoteOpts{})
	add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { // line 5
		if c.Read(v.Permit) != 0 {
			return csPC
		}
		return waitPerm
	})
	add(ccsim.PhaseCS, func(c *ccsim.Ctx) int { return gateCl })
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { // line 7
		c.Write(sel(1-c.P.Regs[mwRegD], v.Gate[0], v.Gate[1]), 0)
		return gateOp
	})
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { // line 8
		c.Write(sel(c.P.Regs[mwRegD], v.Gate[0], v.Gate[1]), 1)
		return setX
	})
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { // line 9
		c.Write(v.X, int64(c.P.ID))
		return release
	})
	// release(M) at PC 18.
	instrs, phases = appendAndersonRelease(instrs, phases, av, 0, mwRegSlot, ccsim.PhaseExit)

	wp := &ccsim.Program{Name: "mwrp-writer", Reader: false, Instrs: instrs, Phases: phases}
	rp := Fig2Reader(v)
	progs := make([]*ccsim.Program, 0, numWriters+numReaders)
	for i := 0; i < numWriters; i++ {
		progs = append(progs, wp)
	}
	for i := 0; i < numReaders; i++ {
		progs = append(progs, rp)
	}
	return &System{
		Name:         "mwrp",
		Mem:          mem,
		Progs:        progs,
		NumWriters:   numWriters,
		NumReaders:   numReaders,
		EnabledBound: 4 * (len(instrs) + f2rLen),
		Invariant:    mwAndersonInvariant(numWriters, 3, 18),
	}
}

// mwAndersonInvariant checks Anderson's mutual exclusion among the
// transformed writers: at most one writer may be past the slot claim
// (PC > claimPC) and not yet past the release (PC <= releasePC).
func mwAndersonInvariant(numWriters, claimPC, releasePC int) func(r *ccsim.Runner) error {
	return func(r *ccsim.Runner) error {
		holders := 0
		for i := 0; i < numWriters; i++ {
			pc := r.Procs[i].PC
			if pc > claimPC && pc <= releasePC {
				holders++
			}
		}
		if holders > 1 {
			return errAndersonMutex(holders)
		}
		return nil
	}
}

type errAndersonMutexT int

func (e errAndersonMutexT) Error() string {
	return "anderson invariant: " + itoa(int(e)) + " writers hold M simultaneously"
}

func errAndersonMutex(n int) error { return errAndersonMutexT(n) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
