package core

import (
	"testing"

	"rwsync/internal/ccsim"
)

// dsmWorstReaderRMR runs fig1 with n readers under the DSM model and
// returns the worst reader RMR per passage.
func dsmWorstReaderRMR(t *testing.T, n int) int64 {
	t.Helper()
	sys := NewFig1System(n)
	sys.Mem.SetModel(ccsim.ModelDSM)
	for v := 0; v < sys.Mem.NumVars(); v++ {
		sys.Mem.SetHome(ccsim.Var(v), v%(n+1))
	}
	r, err := sys.NewRunner(6)
	if err != nil {
		t.Fatal(err)
	}
	r.CollectStats = true
	if err := r.Run(ccsim.NewRandomSched(17), 1<<24); err != nil {
		t.Fatal(err)
	}
	var worst int64
	for _, s := range r.Stats {
		if s.Reader && s.RMR > worst {
			worst = s.RMR
		}
	}
	return worst
}

// TestFig1DSMBoundIsLost demonstrates what the paper states via the
// Danek-Hadzilacos lower bound: the constant-RMR result is specific to
// the CC model.  Under DSM accounting the very same algorithm's
// per-passage RMR is not constant — waiting readers pay every spin
// iteration on remote gates, so the worst passage grows well past the
// CC-model constant (11 for Figure 1).
func TestFig1DSMBoundIsLost(t *testing.T) {
	ccBound := int64(11) // measured CC-model constant for Figure 1
	worst := dsmWorstReaderRMR(t, 16)
	if worst <= 2*ccBound {
		t.Fatalf("expected DSM worst reader RMR to blow past the CC constant; got %d (CC bound %d)", worst, ccBound)
	}
	t.Logf("fig1 DSM worst reader RMR with 16 readers: %d (CC-model constant: %d)", worst, ccBound)
}

// TestFig1DSMStillCorrect: the accounting model changes costs, not
// semantics — mutual exclusion and completion are unaffected.
func TestFig1DSMStillCorrect(t *testing.T) {
	sys := NewFig1System(3)
	sys.Mem.SetModel(ccsim.ModelDSM)
	r, err := sys.NewRunner(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(ccsim.NewRandomSched(3), 1<<22); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckInvariant(r); err != nil {
		t.Fatal(err)
	}
}
