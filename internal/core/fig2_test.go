package core

import (
	"testing"

	"rwsync/internal/ccsim"
	"rwsync/internal/check"
	"rwsync/internal/mc"
)

func TestFig2RandomRunsSatisfyProperties(t *testing.T) {
	for _, readers := range []int{1, 2, 3, 5} {
		for seed := int64(1); seed <= 8; seed++ {
			sys := NewFig2System(readers)
			res := runChecked(t, sys, ccsim.NewRandomSched(seed), 6, check.RunOpts{
				FIFE:              true,
				UnstoppableReader: true,
				SectionBound:      32,
			})
			tr := res.Trace.Attempts()
			if v := check.ReaderPriority(tr); v != nil {
				t.Fatalf("readers=%d seed=%d: %v", readers, seed, v)
			}
		}
	}
}

func TestFig2RoundRobinCompletes(t *testing.T) {
	sys := NewFig2System(4)
	runChecked(t, sys, ccsim.NewRoundRobin(), 10, check.RunOpts{
		FIFE: true, UnstoppableReader: true, SectionBound: 32,
	})
}

func TestFig2StalledWriterDoesNotBlockReaders(t *testing.T) {
	sys := NewFig2System(3)
	runChecked(t, sys, ccsim.NewStallSched(11, 0, 64), 5, check.RunOpts{SectionBound: 32})
}

func TestFig2ConcurrentEntering(t *testing.T) {
	// P5 with the writer halted: every reader attempt is bounded.
	sys := NewFig2System(4)
	r, err := sys.NewRunner(8)
	if err != nil {
		t.Fatal(err)
	}
	r.CollectStats = true
	r.Halt(0)
	if err := r.Run(ccsim.NewRandomSched(7), 1<<20); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, s := range r.Stats {
		if s.Steps > int64(f2rLen)+4 {
			t.Fatalf("reader %d attempt %d took %d steps with no writer (want <= %d)",
				s.Proc, s.Attempt, s.Steps, f2rLen+4)
		}
	}
}

func TestFig2ReaderStormStarvesWriterButNotReaders(t *testing.T) {
	// Reader priority permits writer starvation (Section 4 intro):
	// under a reader-heavy schedule the readers keep completing even
	// while the writer sits in its try section.  We verify that the
	// readers complete all attempts with the writer stalled mid-try,
	// and that the writer eventually completes once readers stop.
	sys := NewFig2System(3)
	r, err := sys.NewRunner(0) // unlimited; we drive manually
	if err != nil {
		t.Fatal(err)
	}
	r.CollectStats = true
	sched := ccsim.NewStallSched(3, 0, 1<<30) // writer essentially never runs
	readerDone := 0
	for r.TotalSteps < 1<<16 && readerDone < 60 {
		id := sched.Next(r.Active(), r.TotalSteps)
		r.StepProc(id)
		readerDone = 0
		for _, p := range r.Procs[1:] {
			readerDone += p.Attempt
		}
	}
	if readerDone < 60 {
		t.Fatalf("readers made only %d attempts under writer stall", readerDone)
	}
}

func TestFig2RMRConstant(t *testing.T) {
	// Theorem 2: O(1) RMR per passage in the CC model.
	const maxRMR = 40
	for _, readers := range []int{1, 2, 4, 8, 16, 32} {
		sys := NewFig2System(readers)
		r, err := sys.NewRunner(4)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(ccsim.NewRandomSched(int64(readers)*3+1), 1<<24); err != nil {
			t.Fatalf("readers=%d: %v", readers, err)
		}
		for _, s := range r.Stats {
			if s.RMR > maxRMR {
				t.Fatalf("readers=%d proc=%d attempt=%d: RMR=%d exceeds constant bound %d",
					readers, s.Proc, s.Attempt, s.RMR, maxRMR)
			}
		}
	}
}

func TestFig2ModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in -short mode")
	}
	for _, cfg := range []struct{ readers, attempts int }{
		{1, 3}, {2, 2},
	} {
		sys := NewFig2System(cfg.readers)
		r, err := sys.NewRunner(cfg.attempts)
		if err != nil {
			t.Fatal(err)
		}
		res := mc.Explore(r, mc.Options{
			Attempts:    cfg.attempts,
			Invariant:   sys.Invariant,
			DetectStuck: true,
		})
		if res.Violation != nil {
			t.Fatalf("readers=%d attempts=%d: %v", cfg.readers, cfg.attempts, res.Violation)
		}
		if res.Truncated {
			t.Fatalf("readers=%d attempts=%d: truncated at %d states", cfg.readers, cfg.attempts, res.States)
		}
		t.Logf("fig2 readers=%d attempts=%d: %d states, all invariants hold", cfg.readers, cfg.attempts, res.States)
	}
}

func TestFig2BrokenAModelCheckFindsViolation(t *testing.T) {
	// Section 4.3 feature (A): without reader lines 20-22, mutual
	// exclusion fails.
	sys := NewFig2BrokenSystem(2, Fig2BreakNoLines2022)
	r, err := sys.NewRunner(3)
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Explore(r, mc.Options{Attempts: 3, KeepWitness: true})
	if res.Violation == nil {
		t.Fatalf("expected a violation in broken variant A; explored %d states", res.States)
	}
	t.Logf("broken fig2 (A): %v (witness length %d, %d states)", res.Violation, len(res.Witness), res.States)
}

func TestFig2BrokenBModelCheckFindsViolation(t *testing.T) {
	// Section 4.3 feature (B): if Promote CASes true directly instead
	// of installing its pid first, mutual exclusion fails.
	sys := NewFig2BrokenSystem(2, Fig2BreakDirectCAS)
	r, err := sys.NewRunner(3)
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Explore(r, mc.Options{Attempts: 3, KeepWitness: true})
	if res.Violation == nil {
		t.Fatalf("expected a violation in broken variant B; explored %d states", res.States)
	}
	t.Logf("broken fig2 (B): %v (witness length %d, %d states)", res.Violation, len(res.Witness), res.States)
}
