package core

import (
	"testing"

	"rwsync/internal/ccsim"
	"rwsync/internal/check"
	"rwsync/internal/mc"
)

func TestCentralizedMutualExclusion(t *testing.T) {
	for _, cfg := range []struct{ w, r int }{{1, 2}, {2, 3}, {3, 1}} {
		for seed := int64(1); seed <= 6; seed++ {
			sys := NewCentralizedSystem(cfg.w, cfg.r)
			r, err := sys.NewRunner(5)
			if err != nil {
				t.Fatal(err)
			}
			tr := &check.Trace{}
			r.Sink = tr
			if err := r.Run(ccsim.NewRandomSched(seed), 1<<22); err != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, err)
			}
			if v := check.MutualExclusion(tr); v != nil {
				t.Fatalf("w=%d r=%d seed=%d: %v", cfg.w, cfg.r, seed, v)
			}
		}
	}
}

func TestCentralizedModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in -short mode")
	}
	sys := NewCentralizedSystem(2, 2)
	r, err := sys.NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Explore(r, mc.Options{Attempts: 2, DetectStuck: true})
	if res.Violation != nil {
		t.Fatalf("centralized: %v", res.Violation)
	}
	t.Logf("centralized 2w+2r attempts=2: %d states", res.States)
}

func TestCentralizedWriterRMRGrowsWithReaders(t *testing.T) {
	// The motivating gap (E4): the centralized writer's worst-case RMR
	// per passage grows with the number of readers, because it spins on
	// the same word every exiting reader modifies.
	worst := func(readers int) int64 {
		sys := NewCentralizedSystem(1, readers)
		r, err := sys.NewRunner(3)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(ccsim.NewRandomSched(99), 1<<24); err != nil {
			t.Fatal(err)
		}
		var w int64
		for _, s := range r.Stats {
			if !s.Reader && s.RMR > w {
				w = s.RMR
			}
		}
		return w
	}
	small, large := worst(2), worst(32)
	if large < small+8 {
		t.Fatalf("expected writer RMR to grow with readers: %d (2 readers) vs %d (32 readers)", small, large)
	}
	t.Logf("centralized writer worst RMR: %d with 2 readers, %d with 32 readers", small, large)
}

func TestTournamentMutualExclusion(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		for seed := int64(1); seed <= 4; seed++ {
			sys := NewTournamentSystem(n)
			r, err := sys.NewRunner(4)
			if err != nil {
				t.Fatal(err)
			}
			tr := &check.Trace{}
			r.Sink = tr
			if err := r.Run(ccsim.NewRandomSched(seed), 1<<22); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if v := check.MutualExclusion(tr); v != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, v)
			}
		}
	}
}

func TestTournamentModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in -short mode")
	}
	for _, n := range []int{2, 3} {
		sys := NewTournamentSystem(n)
		r, err := sys.NewRunner(2)
		if err != nil {
			t.Fatal(err)
		}
		res := mc.Explore(r, mc.Options{Attempts: 2, DetectStuck: true})
		if res.Violation != nil {
			t.Fatalf("tournament n=%d: %v", n, res.Violation)
		}
		t.Logf("tournament n=%d attempts=2: %d states", n, res.States)
	}
}

func TestTournamentRMRGrowsLogarithmically(t *testing.T) {
	// Under round-robin scheduling the tournament lock pays a fixed
	// cost per tree level, so RMR per passage grows with log n while
	// the paper's locks stay flat.
	worst := func(n int) int64 {
		sys := NewTournamentSystem(n)
		r, err := sys.NewRunner(3)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectStats = true
		if err := r.Run(ccsim.NewRoundRobin(), 1<<24); err != nil {
			t.Fatal(err)
		}
		var w int64
		for _, s := range r.Stats {
			if s.RMR > w {
				w = s.RMR
			}
		}
		return w
	}
	small, large := worst(2), worst(32)
	if large <= small {
		t.Fatalf("expected tournament RMR to grow with n: %d (n=2) vs %d (n=32)", small, large)
	}
	t.Logf("tournament worst RMR: %d at n=2, %d at n=32", small, large)
}
