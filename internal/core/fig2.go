package core

import "rwsync/internal/ccsim"

// Fig2Vars holds handles to the shared variables of the paper's
// Figure 2 (single-writer multi-reader lock with reader priority).
type Fig2Vars struct {
	D      ccsim.Var
	Gate   [2]ccsim.Var
	X      ccsim.Var // CAS variable over PID ∪ {true}; XTrue encodes true
	Permit ccsim.Var // read/write boolean, initially true
	C      ccsim.Var // fetch&add reader count
}

// NewFig2Vars registers Figure 2's shared variables with their paper
// initial values: D=0, Gate[0]=true, Gate[1]=false, X = some pid
// (we use pid 0), Permit=true, C=0.
func NewFig2Vars(m *ccsim.Memory) *Fig2Vars {
	v := &Fig2Vars{}
	v.D = m.NewVar("D", ccsim.KindRW, 0)
	v.Gate[0] = m.NewVar("Gate[0]", ccsim.KindRW, 1)
	v.Gate[1] = m.NewVar("Gate[1]", ccsim.KindRW, 0)
	v.X = m.NewVar("X", ccsim.KindCAS, 0)
	v.Permit = m.NewVar("Permit", ccsim.KindRW, 1)
	v.C = m.NewVar("C", ccsim.KindFAA, 0)
	return v
}

// Register assignments shared by the Figure 2 writer and reader.
const (
	f2RegD = 0 // d — the side read from D
	f2RegX = 1 // x — the value read from X in Promote / lines 20-22
)

// promoteOpts selects the faithful Promote (lines 10-16) or the broken
// Section 4.3(B) variant that CASes true directly without first
// installing its own pid.
type promoteOpts struct {
	directCASTrue bool
}

// appendPromote appends the six-instruction Promote procedure to the
// program under construction, starting at PC start; every exit path
// continues at PC after.  It returns the instruction and phase slices
// extended by exactly six entries (PCs start..start+5).
//
// Paper lines:
//
//  10. x = X
//  11. if (x != true)
//  12. if (CAS(X, x, i))
//  13. if (!Permit)
//  14. if (C = 0)
//  15. if (CAS(X, i, true))
//  16. Permit <- true
func appendPromote(instrs []ccsim.Instr, phases []ccsim.Phase, v *Fig2Vars,
	start, after int, phase ccsim.Phase, opts promoteOpts) ([]ccsim.Instr, []ccsim.Phase) {

	cas1 := start + 1  // line 12
	perm := start + 2  // line 13
	count := start + 3 // line 14
	cas2 := start + 4  // line 15
	set := start + 5   // line 16

	add := func(ins ccsim.Instr) {
		instrs = append(instrs, ins)
		phases = append(phases, phase)
	}

	add(func(c *ccsim.Ctx) int { // read
		x := c.Read(v.X)
		c.P.Regs[f2RegX] = x
		if x == XTrue {
			return after
		}
		if opts.directCASTrue {
			// Broken variant: skip installing our pid (line 12).
			return perm
		}
		return cas1
	})
	add(func(c *ccsim.Ctx) int { // cas1
		if c.CAS(v.X, c.P.Regs[f2RegX], int64(c.P.ID)) {
			return perm
		}
		return after
	})
	add(func(c *ccsim.Ctx) int { // perm
		if c.Read(v.Permit) != 0 {
			return after
		}
		return count
	})
	add(func(c *ccsim.Ctx) int { // count
		if c.Read(v.C) != 0 {
			return after
		}
		return cas2
	})
	add(func(c *ccsim.Ctx) int { // cas2
		expect := int64(c.P.ID)
		if opts.directCASTrue {
			expect = c.P.Regs[f2RegX]
		}
		if c.CAS(v.X, expect, XTrue) {
			return set
		}
		return after
	})
	add(func(c *ccsim.Ctx) int { // set
		c.Write(v.Permit, 1)
		return after
	})
	return instrs, phases
}

// Writer program counters for Figure 2 (paper line numbers in comments).
const (
	F2WRem       = iota // line 1: remainder
	F2WReadD            // line 2a: read D
	F2WWriteD           // line 2b: D <- !D   (doorway ends here)
	F2WPermF            // line 3: Permit <- false
	F2WPromote          // lines 10-16 occupy PCs F2WPromote..F2WPromote+5
	f2wPromEnd   = F2WPromote + 5
	F2WWait      = f2wPromEnd + 1 // line 5: wait till Permit
	F2WCS        = F2WWait + 1    // line 6: critical section
	F2WGateClose = F2WCS + 1      // line 7: Gate[!D] <- false
	F2WGateOpen  = F2WGateClose + 1
	F2WSetX      = F2WGateOpen + 1 // line 9: X <- i
	f2wLen       = F2WSetX + 1
)

// Fig2Writer builds the Figure 2 writer program.
func Fig2Writer(v *Fig2Vars) *ccsim.Program { return fig2Writer(v, promoteOpts{}) }

// Fig2WriterDirectCAS builds the broken Section 4.3(B) writer whose
// Promote CASes true into X directly.
func Fig2WriterDirectCAS(v *Fig2Vars) *ccsim.Program {
	return fig2Writer(v, promoteOpts{directCASTrue: true})
}

func fig2Writer(v *Fig2Vars, opts promoteOpts) *ccsim.Program {
	instrs := make([]ccsim.Instr, 0, f2wLen)
	phases := make([]ccsim.Phase, 0, f2wLen)
	add := func(ph ccsim.Phase, ins ccsim.Instr) {
		instrs = append(instrs, ins)
		phases = append(phases, ph)
	}

	add(ccsim.PhaseRemainder, func(c *ccsim.Ctx) int { return F2WReadD })
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // line 2a
		c.P.Regs[f2RegD] = c.Read(v.D)
		return F2WWriteD
	})
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // line 2b
		d := 1 - c.P.Regs[f2RegD]
		c.P.Regs[f2RegD] = d
		c.Write(v.D, d)
		return F2WPermF
	})
	add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { // line 3
		c.Write(v.Permit, 0)
		return F2WPromote
	})
	instrs, phases = appendPromote(instrs, phases, v, F2WPromote, F2WWait, ccsim.PhaseWaiting, opts)
	add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { // line 5
		if c.Read(v.Permit) != 0 {
			return F2WCS
		}
		return F2WWait
	})
	add(ccsim.PhaseCS, func(c *ccsim.Ctx) int { return F2WGateClose })
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { // line 7
		c.Write(sel(1-c.P.Regs[f2RegD], v.Gate[0], v.Gate[1]), 0)
		return F2WGateOpen
	})
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { // line 8
		c.Write(sel(c.P.Regs[f2RegD], v.Gate[0], v.Gate[1]), 1)
		return F2WSetX
	})
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { // line 9
		c.Write(v.X, int64(c.P.ID))
		return F2WRem
	})

	name := "fig2-writer"
	if opts.directCASTrue {
		name = "fig2-writer-direct-cas"
	}
	return &ccsim.Program{Name: name, Reader: false, Instrs: instrs, Phases: phases}
}

// Reader program counters for Figure 2 (paper line numbers in comments).
const (
	F2RRem     = iota // line 17: remainder
	F2RIncC           // line 18: F&A(C, 1)
	F2RReadD          // line 19: d <- D
	F2RReadX          // line 20-21: x <- X; if x in PID
	F2RCAS            // line 22: CAS(X, x, i)
	F2RCheckX         // line 23: if X = true
	F2RWait           // line 24: wait till Gate[d]
	F2RCS             // line 25: critical section
	F2RDecC           // line 26: F&A(C, -1)
	F2RPromote        // lines 10-16 occupy PCs F2RPromote..F2RPromote+5
	f2rLen     = F2RPromote + 6
)

// fig2ReaderOpts toggles the deliberate bug of Section 4.3(A).
type fig2ReaderOpts struct {
	// skipLines2022 removes lines 20-22 (the reader's pid
	// installation into X), which the paper shows breaks mutual
	// exclusion.
	skipLines2022 bool
	promote       promoteOpts
}

// Fig2Reader builds the Figure 2 reader program.
func Fig2Reader(v *Fig2Vars) *ccsim.Program { return fig2Reader(v, fig2ReaderOpts{}) }

// Fig2ReaderNoLines2022 builds the broken Section 4.3(A) reader that
// skips lines 20-22.
func Fig2ReaderNoLines2022(v *Fig2Vars) *ccsim.Program {
	return fig2Reader(v, fig2ReaderOpts{skipLines2022: true})
}

// Fig2ReaderDirectCAS builds a reader whose Promote uses the broken
// Section 4.3(B) direct CAS.
func Fig2ReaderDirectCAS(v *Fig2Vars) *ccsim.Program {
	return fig2Reader(v, fig2ReaderOpts{promote: promoteOpts{directCASTrue: true}})
}

func fig2Reader(v *Fig2Vars, opts fig2ReaderOpts) *ccsim.Program {
	instrs := make([]ccsim.Instr, 0, f2rLen)
	phases := make([]ccsim.Phase, 0, f2rLen)
	add := func(ph ccsim.Phase, ins ccsim.Instr) {
		instrs = append(instrs, ins)
		phases = append(phases, ph)
	}

	add(ccsim.PhaseRemainder, func(c *ccsim.Ctx) int { return F2RIncC })
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // line 18
		c.FAA(v.C, 1)
		return F2RReadD
	})
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // line 19
		c.P.Regs[f2RegD] = c.Read(v.D)
		if opts.skipLines2022 {
			return F2RCheckX
		}
		return F2RReadX
	})
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // lines 20-21
		x := c.Read(v.X)
		c.P.Regs[f2RegX] = x
		if x != XTrue {
			return F2RCAS
		}
		return F2RCheckX
	})
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // line 22
		c.CAS(v.X, c.P.Regs[f2RegX], int64(c.P.ID))
		return F2RCheckX
	})
	add(ccsim.PhaseDoorway, func(c *ccsim.Ctx) int { // line 23
		if c.Read(v.X) == XTrue {
			return F2RWait
		}
		return F2RCS
	})
	add(ccsim.PhaseWaiting, func(c *ccsim.Ctx) int { // line 24
		if c.Read(sel(c.P.Regs[f2RegD], v.Gate[0], v.Gate[1])) != 0 {
			return F2RCS
		}
		return F2RWait
	})
	add(ccsim.PhaseCS, func(c *ccsim.Ctx) int { return F2RDecC })
	add(ccsim.PhaseExit, func(c *ccsim.Ctx) int { // line 26
		c.FAA(v.C, -1)
		return F2RPromote
	})
	instrs, phases = appendPromote(instrs, phases, v, F2RPromote, F2RRem, ccsim.PhaseExit, opts.promote)

	name := "fig2-reader"
	switch {
	case opts.skipLines2022:
		name = "fig2-reader-no-lines-20-22"
	case opts.promote.directCASTrue:
		name = "fig2-reader-direct-cas"
	}
	return &ccsim.Program{Name: name, Reader: true, Instrs: instrs, Phases: phases}
}

// Fig2Break selects which Section 4.3 subtle feature to disable in a
// broken Figure 2 system.
type Fig2Break int

const (
	// Fig2BreakNone builds the faithful algorithm.
	Fig2BreakNone Fig2Break = iota
	// Fig2BreakNoLines2022 removes reader lines 20-22 (feature A).
	Fig2BreakNoLines2022
	// Fig2BreakDirectCAS makes Promote CAS true directly (feature B).
	Fig2BreakDirectCAS
)

// NewFig2System assembles the Figure 2 single-writer multi-reader
// system: process 0 is the writer, processes 1..numReaders readers.
func NewFig2System(numReaders int) *System {
	return newFig2System(numReaders, Fig2BreakNone)
}

// NewFig2BrokenSystem assembles a Section 4.3 broken variant.
func NewFig2BrokenSystem(numReaders int, br Fig2Break) *System {
	return newFig2System(numReaders, br)
}

func newFig2System(numReaders int, br Fig2Break) *System {
	validateSplit(1, numReaders)
	mem := ccsim.NewMemory(1 + numReaders)
	v := NewFig2Vars(mem)

	var wp, rp *ccsim.Program
	name := "fig2-swrp"
	switch br {
	case Fig2BreakNone:
		wp, rp = Fig2Writer(v), Fig2Reader(v)
	case Fig2BreakNoLines2022:
		wp, rp = Fig2Writer(v), Fig2ReaderNoLines2022(v)
		name = "fig2-swrp-broken-A"
	case Fig2BreakDirectCAS:
		wp, rp = Fig2WriterDirectCAS(v), Fig2ReaderDirectCAS(v)
		name = "fig2-swrp-broken-B"
	}
	progs := []*ccsim.Program{wp}
	for i := 0; i < numReaders; i++ {
		progs = append(progs, rp)
	}
	sys := &System{
		Name:         name,
		Mem:          mem,
		Progs:        progs,
		NumWriters:   1,
		NumReaders:   numReaders,
		EnabledBound: 4 * (f2wLen + f2rLen),
	}
	if br == Fig2BreakNone {
		sys.Invariant = fig2Invariant(v, 0)
	}
	return sys
}
