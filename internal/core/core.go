// Package core contains executable, step-accurate encodings of the
// reader-writer algorithms of Bhatt & Jayanti, "Constant RMR Solutions
// to Reader Writer Synchronization" (Dartmouth TR2010-662 / PODC 2010),
// together with the baselines the paper argues against and the
// deliberately broken variants discussed in its Sections 3.3 and 4.3.
//
// Each algorithm is expressed as ccsim programs — one atomic
// shared-memory operation per instruction — so that
//
//   - the simulator can count remote memory references (RMRs) exactly,
//     validating the paper's O(1) RMR theorems (Theorems 1–5);
//   - the model checker can exhaustively explore bounded configurations
//     and check both the exported properties (P1–P7, RP1/2, WP1/2) and
//     the appendix invariants (Figure 5 and Appendix A.1);
//   - the broken variants demonstrably violate mutual exclusion,
//     reproducing the paper's subtle-feature arguments.
//
// The package exposes constructors that assemble a System: a memory, a
// set of programs (writers first, then readers), named variable handles
// and an optional invariant predicate.
package core

import (
	"fmt"

	"rwsync/internal/ccsim"
)

// WW is the fetch&add unit of the writer-waiting component in the
// paper's two-component F&A words [writer-waiting, reader-count]: the
// count occupies bits 0..31 and writer-waiting occupies bit 32.
const WW = int64(1) << 32

// Packed returns the packed representation of [writer-waiting=ww,
// reader-count=rc].
func Packed(ww, rc int64) int64 { return ww*WW + rc }

// UnpackWW extracts the writer-waiting component of a packed word.
func UnpackWW(v int64) int64 { return v >> 32 }

// UnpackRC extracts the reader-count component of a packed word.
func UnpackRC(v int64) int64 { return v & (WW - 1) }

// XTrue is the sentinel encoding the value "true" of the CAS variable
// X in Figure 2 (domain PID ∪ {true}); pids are process ids >= 0.
const XTrue = int64(-1)

// Sentinels for the Figure 4 CAS variable W-token
// (domain PID ∪ {false} ∪ {0,1}); pids are process ids >= 0.
const (
	// TokenFalse encodes the value "false".
	TokenFalse = int64(-2)
	// tokenSide0 and tokenSide1 encode the side values 0 and 1.
	tokenSide0 = int64(-3)
	tokenSide1 = int64(-4)
)

// TokenSide encodes side d (0 or 1) as a W-token value.
func TokenSide(d int64) int64 {
	if d == 0 {
		return tokenSide0
	}
	return tokenSide1
}

// IsSideToken reports whether t encodes a side value.
func IsSideToken(t int64) bool { return t == tokenSide0 || t == tokenSide1 }

// SideOfToken decodes the side from a side token.
func SideOfToken(t int64) int64 {
	if t == tokenSide0 {
		return 0
	}
	return 1
}

// System is an assembled instance of an algorithm: the shared memory,
// one program per process (writers first, then readers), and metadata
// used by the checkers.
type System struct {
	// Name identifies the algorithm, e.g. "fig1-swwp".
	Name string
	// Mem is the shared memory with all variables registered and
	// initialized.
	Mem *ccsim.Memory
	// Progs holds the per-process programs: processes 0..NumWriters-1
	// are writers, the rest readers.
	Progs []*ccsim.Program
	// NumWriters and NumReaders give the process split.
	NumWriters, NumReaders int
	// Invariant, if non-nil, checks algorithm-specific state
	// invariants (the paper's appendix) against a runner's current
	// configuration; it returns a descriptive error on violation.
	Invariant func(r *ccsim.Runner) error
	// EnabledBound is the step bound b for enabledness probes
	// (Definition 2): a process asserted enabled must reach the CS
	// within this many of its own steps.
	EnabledBound int
}

// NewRunner builds a ccsim runner for the system.
func (s *System) NewRunner(attemptsPerProc int) (*ccsim.Runner, error) {
	return ccsim.NewRunner(s.Mem, s.Progs, attemptsPerProc)
}

// CheckInvariant runs the system invariant, if any.
func (s *System) CheckInvariant(r *ccsim.Runner) error {
	if s.Invariant == nil {
		return nil
	}
	return s.Invariant(r)
}

// sel returns a when d == 0 and b otherwise; it mirrors the paper's
// indexed variables like Gate[d] and C[d].
func sel(d int64, a, b ccsim.Var) ccsim.Var {
	if d == 0 {
		return a
	}
	return b
}

// validateSplit panics on nonsensical process counts (programming
// error in callers, mirrors the sync package convention on misuse).
func validateSplit(writers, readers int) {
	if writers < 0 || readers < 0 || writers+readers == 0 {
		panic(fmt.Sprintf("core: invalid process split writers=%d readers=%d", writers, readers))
	}
}
