// Package stats provides the summary statistics and rendering the
// experiment harness reports RMR counts, latencies and throughput
// with: exact order statistics over small samples (Summarize), a
// fixed-footprint log-bucketed histogram for large ones (Histogram),
// and aligned-text/markdown tables (Table).
//
// # Histogram design
//
// Histogram is the measurement substrate of the scenario engine
// (internal/harness.RunScenario): each workload worker records its
// sampled latencies into a private Histogram, and the workers'
// histograms are merged after the join.  Three properties make that
// safe to put next to a lock hot path:
//
//   - Fixed footprint: one array of log-spaced buckets (32 linear
//     sub-buckets per octave, HDR-histogram layout), about 15 KiB,
//     regardless of how many observations are recorded.  Sorting a
//     sample of every op, by contrast, grows without bound on
//     duration-based runs.
//   - Allocation-free recording: Record is bit-twiddling plus an
//     array increment; TestHistogramRecordDoesNotAllocate pins this
//     with testing.AllocsPerRun.
//   - Exact merging: Merge adds bucket counts element-wise and is
//     commutative and associative, so per-worker results fold in any
//     order with no precision loss relative to one shared histogram
//     (which would have needed atomics on the hot path).
//
// Quantiles (p50/p90/p99/p99.9) come out of the bucket counts by
// nearest rank; the bucket geometry bounds their error at ~3.1% of
// the value (one part in 32), far below run-to-run latency noise.
// Min, max, mean and standard deviation are tracked exactly alongside
// the buckets.  HistSnapshot is the serializable form carried by the
// rwbench -json schema: headline quantiles plus sparse bucket counts,
// with Validate checking internal consistency when a BENCH_*.json
// record is read back.
package stats
