package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// Histogram bucket geometry: values are binned logarithmically with
// histSubBuckets linear sub-buckets per octave (the HDR-histogram
// layout).  Bucket width is at most 1/histSubBuckets of the value, so
// any quantile read back from the histogram is within ~3.1% of the
// exact sample quantile — far below run-to-run latency noise — while
// the whole structure is one fixed array, allocation- and
// comparison-free to record into, and mergeable across workers by
// element-wise addition.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits // 32 linear sub-buckets per octave
	// Index layout: values below 2*histSubBuckets map to themselves
	// (exact); above that, octave e >= 1 holds indices
	// (e+1)*histSubBuckets .. (e+1)*histSubBuckets+histSubBuckets-1.
	// The largest int64 (63 significant bits) lands in octave 58, so:
	histBuckets = (58+2)*histSubBuckets - 1 + 1 // 1920
)

// Histogram is a fixed-footprint log-bucketed histogram of int64
// observations (latencies in nanoseconds, RMR counts, ...).  The zero
// value is ready to use.  Record never allocates, so per-worker
// histograms can sit on a measurement hot path; Merge folds one
// worker's histogram into another, and quantiles come out of the
// bucket counts without sorting, so footprint and extraction cost are
// independent of how many operations were recorded.
//
// Histogram is not safe for concurrent use; give each worker its own
// and Merge after the workers join.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    float64
	sumSq  float64
	min    int64
	max    int64
}

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < 2*histSubBuckets {
		return int(v)
	}
	// Octave = how many doublings past the exact range; mantissa keeps
	// the top histSubBits+1 bits.
	e := bits.Len64(uint64(v)) - 1 - histSubBits
	return e*histSubBuckets + int(v>>uint(e))
}

// histBucketBounds returns the [lo, hi] value range of bucket idx.
func histBucketBounds(idx int) (lo, hi int64) {
	if idx < 2*histSubBuckets {
		return int64(idx), int64(idx)
	}
	e := idx/histSubBuckets - 1
	m := int64(idx - e*histSubBuckets)
	lo = m << uint(e)
	hi = lo + (1 << uint(e)) - 1
	return lo, hi
}

// Record adds one observation.  Negative values are clamped to zero
// (a latency sample can come out negative only through clock
// weirdness; losing its sign beats crashing the measurement).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.counts[histIndex(v)]++
	h.n++
	f := float64(v)
	h.sum += f
	h.sumSq += f * f
}

// Merge folds o into h.  Merging is commutative and associative, so
// per-worker histograms can be combined in any order.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.n == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.n += o.n
	h.sum += o.sum
	h.sumSq += o.sumSq
}

// N returns the number of recorded observations.
func (h *Histogram) N() int64 { return h.n }

// Min returns the smallest recorded observation (exact, not bucketed).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest recorded observation (exact, not bucketed).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact mean of the recorded observations (the sum
// is tracked alongside the buckets).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// StdDev returns the population standard deviation (exact: sum and
// sum-of-squares are tracked alongside the buckets).
func (h *Histogram) StdDev() float64 {
	if h.n == 0 {
		return 0
	}
	n := float64(h.n)
	mean := h.sum / n
	variance := h.sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// Quantile returns the p-quantile (0 < p <= 1) by nearest rank over
// the buckets: the midpoint of the bucket holding the rank-th
// observation, clamped to the exact observed [min, max].  The result
// is within one bucket width (<= value/histSubBuckets) of the exact
// sample quantile.
func (h *Histogram) Quantile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			lo, hi := histBucketBounds(i)
			v := lo + (hi-lo)/2
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Summary converts the histogram to the package's order-statistics
// Summary.  N, Min, Max, Mean and StdDev are exact; the percentiles
// are bucket-resolution (see Quantile).
func (h *Histogram) Summary() Summary {
	if h.n == 0 {
		return Summary{}
	}
	return Summary{
		N:      int(h.n),
		Min:    h.min,
		Max:    h.max,
		Mean:   h.Mean(),
		StdDev: h.StdDev(),
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
	}
}

// String renders the key quantiles compactly.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p90=%d p99=%d p99.9=%d max=%d mean=%.2f",
		h.n, h.min, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99),
		h.Quantile(0.999), h.max, h.Mean())
}

// HistSnapshot is the serializable form of a Histogram: headline
// quantiles plus the sparse bucket counts, so a consumer can re-derive
// any quantile (or merge snapshots) without the raw samples.  The
// Buckets pairs are [bucket index, count] in the package's fixed
// geometry (histSubBits linear bits per octave).
type HistSnapshot struct {
	Count  int64      `json:"count"`
	Min    int64      `json:"min"`
	Max    int64      `json:"max"`
	Mean   float64    `json:"mean"`
	P50    int64      `json:"p50"`
	P90    int64      `json:"p90"`
	P99    int64      `json:"p99"`
	P999   int64      `json:"p999"`
	Bucket [][2]int64 `json:"buckets,omitempty"`
}

// Snapshot extracts the serializable form.  Returns nil for an empty
// histogram so optional metrics marshal as absent rather than as a
// zero report.
func (h *Histogram) Snapshot() *HistSnapshot {
	if h == nil || h.n == 0 {
		return nil
	}
	s := &HistSnapshot{
		Count: h.n,
		Min:   h.min,
		Max:   h.max,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	for i, c := range h.counts {
		if c != 0 {
			s.Bucket = append(s.Bucket, [2]int64{int64(i), c})
		}
	}
	return s
}

// Validate checks a snapshot's internal consistency (as read back
// from a BENCH_*.json record): counts must agree with the bucket
// sums, quantiles must be ordered and inside [Min, Max], bucket
// indices must be in range and strictly increasing.
func (s *HistSnapshot) Validate() error {
	if s == nil {
		return nil
	}
	if s.Count <= 0 {
		return fmt.Errorf("histogram: count %d", s.Count)
	}
	if s.Min > s.Max {
		return fmt.Errorf("histogram: min %d > max %d", s.Min, s.Max)
	}
	for _, q := range [][2]int64{{s.P50, s.P90}, {s.P90, s.P99}, {s.P99, s.P999}} {
		if q[0] > q[1] {
			return fmt.Errorf("histogram: quantiles out of order (%d > %d)", q[0], q[1])
		}
	}
	if s.P50 < s.Min || s.P999 > s.Max {
		return fmt.Errorf("histogram: quantiles outside [min, max]")
	}
	// Snapshot always emits buckets for a non-empty histogram, so a
	// bare quantile summary means the bucket data was stripped or
	// lost somewhere — exactly the drift this check exists to catch.
	if len(s.Bucket) == 0 {
		return fmt.Errorf("histogram: count %d but no buckets", s.Count)
	}
	var sum int64
	prev := int64(-1)
	for _, b := range s.Bucket {
		idx, c := b[0], b[1]
		if idx <= prev || idx >= histBuckets {
			return fmt.Errorf("histogram: bad bucket index %d", idx)
		}
		if c <= 0 {
			return fmt.Errorf("histogram: bucket %d has count %d", idx, c)
		}
		prev = idx
		sum += c
	}
	if sum != s.Count {
		return fmt.Errorf("histogram: bucket sum %d != count %d", sum, s.Count)
	}
	return nil
}
