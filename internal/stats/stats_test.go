package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]int64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad order stats: %+v", s)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %f, want 3", s.Mean)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %d, want 3", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]int64{7})
	if s.Min != 7 || s.Max != 7 || s.P50 != 7 || s.P99 != 7 || s.Mean != 7 || s.StdDev != 0 {
		t.Fatalf("single-element summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []int64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input reordered")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want int64
	}{
		{0.50, 50}, {0.90, 90}, {0.99, 100}, {0.01, 10},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Fatalf("p%.0f = %d, want %d", c.p*100, got, c.want)
		}
	}
}

func TestSummarizeQuickInvariants(t *testing.T) {
	f := func(xs []int64) bool {
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		sorted := append([]int64(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		ok := s.N == len(xs) &&
			s.Min == sorted[0] &&
			s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			s.StdDev >= 0 &&
			!math.IsNaN(s.Mean)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// All data lines equally wide (alignment).
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("t", "x", "y")
	tb.AddRow("1", "2")
	md := tb.Markdown()
	for _, want := range []string{"| x | y |", "| --- | --- |", "| 1 | 2 |", "**t**"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableRowClamping(t *testing.T) {
	tb := NewTable("", "only")
	tb.AddRow("a", "b", "c")
	if len(tb.Rows[0]) != 1 {
		t.Fatalf("row not clamped: %v", tb.Rows[0])
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]int64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "n=3") || !strings.Contains(str, "mean=2.00") {
		t.Fatalf("String() = %q", str)
	}
}
