package stats

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

// TestHistogramQuantileWithinOneBucket: on random data, every
// headline quantile must land in the same log bucket as (or one
// adjacent to) the exact sorted-sample quantile — the accuracy
// contract the scenario engine's reported percentiles rest on.
func TestHistogramQuantileWithinOneBucket(t *testing.T) {
	for _, dist := range []struct {
		name string
		gen  func(r *rand.Rand) int64
	}{
		{"uniform", func(r *rand.Rand) int64 { return r.Int63n(1_000_000) }},
		{"exponentialish", func(r *rand.Rand) int64 { return int64(1) << uint(r.Intn(40)) }},
		{"small", func(r *rand.Rand) int64 { return r.Int63n(50) }},
		{"heavy-tail", func(r *rand.Rand) int64 {
			if r.Intn(100) == 0 {
				return r.Int63n(1_000_000_000)
			}
			return r.Int63n(1000)
		}},
	} {
		t.Run(dist.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			var h Histogram
			xs := make([]int64, 20000)
			for i := range xs {
				xs[i] = dist.gen(r)
				h.Record(xs[i])
			}
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
			for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
				exact := percentile(xs, p)
				got := h.Quantile(p)
				bGot, bExact := histIndex(got), histIndex(exact)
				if bGot < bExact-1 || bGot > bExact+1 {
					t.Errorf("p%v: hist %d (bucket %d) vs exact %d (bucket %d)",
						p, got, bGot, exact, bExact)
				}
			}
			if h.Min() != xs[0] || h.Max() != xs[len(xs)-1] {
				t.Errorf("min/max not exact: hist [%d,%d] vs [%d,%d]",
					h.Min(), h.Max(), xs[0], xs[len(xs)-1])
			}
		})
	}
}

// TestHistogramMergeAssociative: ((a+b)+c) and (a+(b+c)) — and the
// one-shot histogram of all the samples — must agree exactly, bucket
// for bucket, so per-worker histograms can be folded in any order.
func TestHistogramMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	parts := make([]*Histogram, 3)
	var all Histogram
	for i := range parts {
		parts[i] = new(Histogram)
		for j := 0; j < 5000+i*777; j++ {
			v := r.Int63n(1 << uint(10+i*10))
			parts[i].Record(v)
			all.Record(v)
		}
	}
	var left Histogram // (a+b)+c
	left.Merge(parts[0])
	left.Merge(parts[1])
	left.Merge(parts[2])
	var bc Histogram // a+(b+c)
	bc.Merge(parts[1])
	bc.Merge(parts[2])
	var right Histogram
	right.Merge(parts[0])
	right.Merge(&bc)
	for _, got := range []*Histogram{&left, &right} {
		if got.counts != all.counts {
			t.Fatal("merged bucket counts differ from one-shot recording")
		}
		if got.n != all.n || got.min != all.min || got.max != all.max ||
			got.sum != all.sum || got.sumSq != all.sumSq {
			t.Fatalf("merged moments differ: %+v vs %+v", got.Summary(), all.Summary())
		}
	}
	// Merging an empty or nil histogram is a no-op.
	before := left.Summary()
	left.Merge(nil)
	left.Merge(new(Histogram))
	if left.Summary() != before {
		t.Fatal("merging empty changed the histogram")
	}
}

// TestHistogramRecordDoesNotAllocate: Record is on the workload's
// sampled hot path; it must never touch the allocator.
func TestHistogramRecordDoesNotAllocate(t *testing.T) {
	h := new(Histogram)
	v := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 997
	}); n != 0 {
		t.Fatalf("Record allocates %.1f objects per call", n)
	}
	var sink Histogram
	if n := testing.AllocsPerRun(100, func() { sink.Merge(h) }); n != 0 {
		t.Fatalf("Merge allocates %.1f objects per call", n)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.N() != 0 || h.Snapshot() != nil {
		t.Fatalf("empty histogram not inert: %v", h.String())
	}
	if h.Summary() != (Summary{}) {
		t.Fatal("empty summary not zero")
	}
	h.Record(-5) // clock skew clamps to 0
	if h.Min() != 0 || h.Max() != 0 || h.N() != 1 {
		t.Fatalf("negative not clamped: %s", h.String())
	}
}

func TestHistogramSummaryMatchesSummarize(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	xs := make([]int64, 5000)
	var h Histogram
	for i := range xs {
		xs[i] = r.Int63n(100000)
		h.Record(xs[i])
	}
	exact := Summarize(xs)
	got := h.Summary()
	if got.N != exact.N || got.Min != exact.Min || got.Max != exact.Max {
		t.Fatalf("order stats differ: %+v vs %+v", got, exact)
	}
	if diff := got.Mean - exact.Mean; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("mean differs: %f vs %f", got.Mean, exact.Mean)
	}
	if diff := got.StdDev - exact.StdDev; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("stddev differs: %f vs %f", got.StdDev, exact.StdDev)
	}
}

func TestHistSnapshotRoundTripAndValidate(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 1000; i++ {
		h.Record(i * i)
	}
	s := h.Snapshot()
	if err := s.Validate(); err != nil {
		t.Fatalf("fresh snapshot invalid: %v", err)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back HistSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped snapshot invalid: %v", err)
	}
	if back.Count != s.Count || back.P999 != s.P999 || len(back.Bucket) != len(s.Bucket) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, s)
	}
	// Corruptions the validator must catch.
	for name, corrupt := range map[string]func(*HistSnapshot){
		"zero count":       func(x *HistSnapshot) { x.Count = 0 },
		"min>max":          func(x *HistSnapshot) { x.Min = x.Max + 1 },
		"p50>p90":          func(x *HistSnapshot) { x.P50 = x.P90 + 1; x.P99 = x.P50 + 1; x.P999 = x.P99 + 1 },
		"bucket mismatch":  func(x *HistSnapshot) { x.Bucket[0][1]++ },
		"bad index":        func(x *HistSnapshot) { x.Bucket[len(x.Bucket)-1][0] = histBuckets },
		"stripped buckets": func(x *HistSnapshot) { x.Bucket = nil },
	} {
		var c HistSnapshot
		if err := json.Unmarshal(raw, &c); err != nil {
			t.Fatal(err)
		}
		corrupt(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
	var nilSnap *HistSnapshot
	if err := nilSnap.Validate(); err != nil {
		t.Fatal("nil snapshot must validate (optional metric absent)")
	}
}
