package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample of int64 observations.
type Summary struct {
	N      int
	Min    int64
	Max    int64
	Mean   float64
	StdDev float64
	P50    int64
	P90    int64
	P99    int64
}

// Summarize computes a Summary.  It sorts a copy; the input is not
// modified.  An empty input yields a zero Summary.
func Summarize(xs []int64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum, sumSq float64
	for _, x := range s {
		sum += float64(x)
		sumSq += float64(x) * float64(x)
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		P50:    percentile(s, 0.50),
		P90:    percentile(s, 0.90),
		P99:    percentile(s, 0.99),
	}
}

// percentile returns the p-quantile of sorted data using the
// nearest-rank method.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.2f",
		s.N, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean)
}

// Table is a simple aligned-text table used for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		cells = cells[:len(t.Headers)]
	}
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned monospaced text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
			if i < len(t.Headers)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown returns the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Headers))
		copy(cells, row)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}
