package ccsim

import (
	"strings"
	"testing"
)

func TestNewRunnerSizeMismatch(t *testing.T) {
	m := NewMemory(2)
	prog := twoPhaseProgram(m)
	if _, err := NewRunner(m, []*Program{prog}, 1); err == nil {
		t.Fatal("expected error: 1 program for 2-process memory")
	}
}

func TestProgramValidate(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{
			"empty",
			&Program{Name: "empty"},
			"no instructions",
		},
		{
			"length mismatch",
			&Program{Name: "m", Instrs: make([]Instr, 2), Phases: make([]Phase, 1)},
			"2 instrs but 1 phases",
		},
		{
			"bad start",
			&Program{Name: "s", Instrs: make([]Instr, 1), Phases: []Phase{PhaseCS}},
			"PC 0 must be the remainder",
		},
	}
	for _, c := range cases {
		err := c.prog.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestInvalidJumpPanics(t *testing.T) {
	m := NewMemory(1)
	bad := &Program{
		Name:   "jump",
		Instrs: []Instr{func(c *Ctx) int { return 99 }},
		Phases: []Phase{PhaseRemainder},
	}
	r, err := NewRunner(m, []*Program{bad}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range jump")
		}
	}()
	r.StepProc(0)
}

func TestNewMemoryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nprocs = 0")
		}
	}()
	NewMemory(0)
}

func TestPhaseAndKindStrings(t *testing.T) {
	if PhaseCS.String() != "CS" || PhaseWaiting.String() != "waiting" {
		t.Fatal("phase names wrong")
	}
	if KindFAA.String() != "fetch&add" || KindCAS.String() != "compare&swap" {
		t.Fatal("kind names wrong")
	}
	if EvEnterCS.String() != "enter-CS" || EvEndExit.String() != "end-exit" {
		t.Fatal("event names wrong")
	}
	// Unknown values render diagnostically rather than panicking.
	if !strings.Contains(Phase(99).String(), "99") {
		t.Fatal("unknown phase should render its number")
	}
}

func TestStepProcAfterDone(t *testing.T) {
	m := NewMemory(1)
	prog := twoPhaseProgram(m)
	r, err := NewRunner(m, []*Program{prog}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(NewRoundRobin(), 100); err != nil {
		t.Fatal(err)
	}
	if !r.AllDone() {
		t.Fatal("run incomplete")
	}
	if r.StepProc(0) {
		t.Fatal("stepping a done process must be a no-op")
	}
}

func TestRunnerBudgetError(t *testing.T) {
	m := NewMemory(1)
	gate := m.NewVar("gate", KindRW, 0)
	stuck := &Program{
		Name: "stuck",
		Instrs: []Instr{
			func(c *Ctx) int { return 1 },
			func(c *Ctx) int {
				if c.Read(gate) != 0 {
					return 2
				}
				return 1
			},
			func(c *Ctx) int { return 0 },
		},
		Phases: []Phase{PhaseRemainder, PhaseDoorway, PhaseCS},
	}
	r, err := NewRunner(m, []*Program{stuck}, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = r.Run(NewRoundRobin(), 50)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("expected budget-exhausted error, got %v", err)
	}
}
