package ccsim

import (
	"testing"
	"testing/quick"
)

func TestReadCachingRMR(t *testing.T) {
	m := NewMemory(2)
	v := m.NewVar("v", KindRW, 7)

	if got := m.Read(0, v); got != 7 {
		t.Fatalf("Read = %d, want 7", got)
	}
	if m.RMR(0) != 1 {
		t.Fatalf("first read should be remote: RMR=%d", m.RMR(0))
	}
	m.Read(0, v)
	m.Read(0, v)
	if m.RMR(0) != 1 {
		t.Fatalf("cached reads must be free: RMR=%d", m.RMR(0))
	}

	// A write by process 1 invalidates process 0's copy.
	m.Write(1, v, 9)
	if got := m.Read(0, v); got != 9 {
		t.Fatalf("Read after write = %d, want 9", got)
	}
	if m.RMR(0) != 2 {
		t.Fatalf("read after invalidation should be remote: RMR=%d", m.RMR(0))
	}
}

func TestWriterOwnCacheStaysValid(t *testing.T) {
	m := NewMemory(2)
	v := m.NewVar("v", KindRW, 0)
	m.Write(0, v, 5)
	before := m.RMR(0)
	if got := m.Read(0, v); got != 5 {
		t.Fatalf("Read = %d, want 5", got)
	}
	if m.RMR(0) != before {
		t.Fatal("a writer's own subsequent read must be a cache hit")
	}
}

func TestFAAReturnsOldValue(t *testing.T) {
	m := NewMemory(1)
	v := m.NewVar("c", KindFAA, 10)
	if old := m.FAA(0, v, 5); old != 10 {
		t.Fatalf("FAA old = %d, want 10", old)
	}
	if got := m.Peek(v); got != 15 {
		t.Fatalf("after FAA value = %d, want 15", got)
	}
	if old := m.FAA(0, v, -15); old != 15 {
		t.Fatalf("FAA old = %d, want 15", old)
	}
}

func TestCASSemantics(t *testing.T) {
	m := NewMemory(1)
	v := m.NewVar("x", KindCAS, 3)
	if !m.CAS(0, v, 3, 4) {
		t.Fatal("CAS(3,4) on 3 must succeed")
	}
	if m.CAS(0, v, 3, 5) {
		t.Fatal("CAS(3,5) on 4 must fail")
	}
	if got := m.Peek(v); got != 4 {
		t.Fatalf("value = %d, want 4", got)
	}
}

func TestKindEnforcement(t *testing.T) {
	m := NewMemory(1)
	rw := m.NewVar("rw", KindRW, 0)
	faa := m.NewVar("faa", KindFAA, 0)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("FAA on RW", func() { m.FAA(0, rw, 1) })
	mustPanic("CAS on FAA", func() { m.CAS(0, faa, 0, 1) })
}

func TestWritePolicyLocalIfExclusive(t *testing.T) {
	m := NewMemory(2)
	m.SetWritePolicy(WriteLocalIfExclusive)
	v := m.NewVar("v", KindRW, 0)

	m.Write(0, v, 1) // not cached anywhere: remote
	if m.RMR(0) != 1 {
		t.Fatalf("first write RMR=%d, want 1", m.RMR(0))
	}
	m.Write(0, v, 2) // exclusive: local
	if m.RMR(0) != 1 {
		t.Fatalf("exclusive write RMR=%d, want 1", m.RMR(0))
	}
	m.Read(1, v) // process 1 caches it
	m.Write(0, v, 3)
	if m.RMR(0) != 2 {
		t.Fatalf("shared write RMR=%d, want 2", m.RMR(0))
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMemory(2)
	v := m.NewVar("v", KindRW, 1)
	m.Read(0, v)
	c := m.Clone()
	c.Write(1, v, 42)
	if m.Peek(v) != 1 {
		t.Fatal("clone write leaked into the original")
	}
	// Original cache state intact: process 0 still holds a valid copy.
	before := m.RMR(0)
	m.Read(0, v)
	if m.RMR(0) != before {
		t.Fatal("original cache state disturbed by clone")
	}
}

func TestProcSetQuick(t *testing.T) {
	// Property: set/has round-trips for arbitrary process ids.
	f := func(ids []uint8) bool {
		s := newProcSet(256)
		seen := map[int]bool{}
		for _, id := range ids {
			s.set(int(id))
			seen[int(id)] = true
		}
		for p := 0; p < 256; p++ {
			if s.has(p) != seen[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFAACommutesQuick(t *testing.T) {
	// Property: any interleaving of F&A deltas yields the same final
	// sum (the algebra packed counters rely on).
	f := func(deltas []int16) bool {
		m := NewMemory(1)
		v := m.NewVar("c", KindFAA, 0)
		var want int64
		for _, d := range deltas {
			m.FAA(0, v, int64(d))
			want += int64(d)
		}
		return m.Peek(v) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
