package ccsim

import "fmt"

// VarKind describes which atomic operations a shared variable supports,
// mirroring the paper's variable declarations ("read/write variable",
// "F&A variable", "CAS variable").
type VarKind uint8

const (
	// KindRW supports Read and Write.
	KindRW VarKind = iota
	// KindFAA supports Read, Write and fetch&add.
	KindFAA
	// KindCAS supports Read, Write and compare&swap.
	KindCAS
)

// String returns the paper-style name of the kind.
func (k VarKind) String() string {
	switch k {
	case KindRW:
		return "read/write"
	case KindFAA:
		return "fetch&add"
	case KindCAS:
		return "compare&swap"
	default:
		return fmt.Sprintf("VarKind(%d)", uint8(k))
	}
}

// Var is a handle to a shared variable registered in a Memory.
type Var int32

// Memory is the shared memory of the simulated machine together with
// the per-process cache state used for RMR accounting.
//
// Cache state never influences the values read or written — it only
// determines whether an operation is charged as remote — so the model
// checker may ignore it when hashing states.
type Memory struct {
	vals  []int64
	kinds []VarKind
	names []string

	// cached[v] is a bitset over process ids: bit p set means process
	// p holds a valid cached copy of variable v.
	cached []procSet

	nprocs int

	// rmr[p] counts remote memory references charged to process p
	// since its counter was last reset.
	rmr []int64

	// ops[p] counts all shared-memory operations by process p.
	ops []int64

	// rmws[p] counts the read-modify-write operations (F&A, CAS) among
	// ops[p].  Zero over a code path certifies the path touched shared
	// memory with plain loads and stores only — the property the epoch
	// lock's reader fast path claims, and a stronger statement than any
	// RMR bound (an RMW is charged like a write for RMRs, so rmr alone
	// cannot distinguish a store from a CAS).
	rmws []int64

	// writePolicy selects whether writes by a process that already
	// holds the sole valid copy are charged.  The default
	// (WriteAlwaysRemote) is the conservative model used in the
	// paper's upper-bound statements.
	writePolicy WritePolicy

	// model selects CC (default) or DSM accounting.
	model Model
	// homes[v] is the process whose memory module hosts v (DSM only).
	homes []int
}

// Model selects the machine model for RMR accounting.
type Model uint8

const (
	// ModelCC is the cache-coherent model (the paper's Theorems 1-5
	// apply): reads hit the cache until invalidated.
	ModelCC Model = iota
	// ModelDSM is the distributed-shared-memory model: an access to
	// variable v by process p is remote iff v's home module is not
	// p's, and there are no caches — every spin iteration on a remote
	// variable is charged.  The paper (citing Danek & Hadzilacos)
	// proves no reader-writer algorithm with concurrent entering can
	// be sublinear here; experiment E9 measures our algorithms'
	// behaviour under this model to show the CC result is model-
	// specific, not an accident of accounting.
	ModelDSM
)

// SetModel switches the accounting model.  Call before the run.
func (m *Memory) SetModel(model Model) { m.model = model }

// SetHome assigns variable v's home memory module (DSM model).
// The default home is process 0.
func (m *Memory) SetHome(v Var, proc int) { m.homes[v] = proc }

// Home returns v's home module.
func (m *Memory) Home(v Var) int { return m.homes[v] }

// WritePolicy selects the RMR accounting rule for write-like operations.
type WritePolicy uint8

const (
	// WriteAlwaysRemote charges every write/F&A/CAS one RMR
	// (conservative; matches the standard CC-model upper bounds).
	WriteAlwaysRemote WritePolicy = iota
	// WriteLocalIfExclusive charges a write-like operation only when
	// some other process holds a cached copy, or the writer itself
	// does not (a MESI-like "modified state is free" rule).
	WriteLocalIfExclusive
)

// procSet is a small bitset over process ids.
type procSet []uint64

func newProcSet(n int) procSet { return make(procSet, (n+63)/64) }

func (s procSet) has(p int) bool { return s[p/64]&(1<<(uint(p)%64)) != 0 }
func (s procSet) set(p int)      { s[p/64] |= 1 << (uint(p) % 64) }

// clearExcept clears every bit except p's.
func (s procSet) clearExcept(p int) {
	for i := range s {
		s[i] = 0
	}
	s.set(p)
}

func (s procSet) clone() procSet {
	c := make(procSet, len(s))
	copy(c, s)
	return c
}

// NewMemory returns an empty memory for nprocs processes.
func NewMemory(nprocs int) *Memory {
	if nprocs <= 0 {
		panic("ccsim: NewMemory requires nprocs >= 1")
	}
	return &Memory{
		nprocs: nprocs,
		rmr:    make([]int64, nprocs),
		ops:    make([]int64, nprocs),
		rmws:   make([]int64, nprocs),
	}
}

// SetWritePolicy changes the RMR accounting rule for writes.  It must be
// called before the run begins.
func (m *Memory) SetWritePolicy(p WritePolicy) { m.writePolicy = p }

// NewVar registers a shared variable with the given name, kind and
// initial value and returns its handle.
func (m *Memory) NewVar(name string, kind VarKind, init int64) Var {
	m.vals = append(m.vals, init)
	m.kinds = append(m.kinds, kind)
	m.names = append(m.names, name)
	m.cached = append(m.cached, newProcSet(m.nprocs))
	m.homes = append(m.homes, 0)
	return Var(len(m.vals) - 1)
}

// NumVars returns the number of registered variables.
func (m *Memory) NumVars() int { return len(m.vals) }

// NumProcs returns the number of processes the memory was sized for.
func (m *Memory) NumProcs() int { return m.nprocs }

// Name returns the registered name of v.
func (m *Memory) Name(v Var) string { return m.names[v] }

// Peek returns the current value of v without touching cache state or
// RMR counters.  It is intended for checkers and invariant predicates,
// not for simulated processes.
func (m *Memory) Peek(v Var) int64 { return m.vals[v] }

// Poke sets the value of v without touching cache state or RMR
// counters.  It is intended for test setup only.
func (m *Memory) Poke(v Var, x int64) { m.vals[v] = x }

// RMR returns the remote-reference count charged to process p since the
// last ResetRMR.
func (m *Memory) RMR(p int) int64 { return m.rmr[p] }

// Ops returns the total operation count of process p.
func (m *Memory) Ops(p int) int64 { return m.ops[p] }

// RMWs returns how many of process p's operations were
// read-modify-writes (F&A or CAS).
func (m *Memory) RMWs(p int) int64 { return m.rmws[p] }

// ResetRMR zeroes process p's RMR counter (called at attempt
// boundaries by the runner).
func (m *Memory) ResetRMR(p int) { m.rmr[p] = 0 }

// Read performs an atomic read of v by process p.
func (m *Memory) Read(p int, v Var) int64 {
	m.ops[p]++
	if m.model == ModelDSM {
		if m.homes[v] != p {
			m.rmr[p]++
		}
		return m.vals[v]
	}
	if !m.cached[v].has(p) {
		m.rmr[p]++
		m.cached[v].set(p)
	}
	return m.vals[v]
}

// chargeWrite applies the write-side RMR accounting for process p on v.
func (m *Memory) chargeWrite(p int, v Var) {
	m.ops[p]++
	if m.model == ModelDSM {
		if m.homes[v] != p {
			m.rmr[p]++
		}
		return
	}
	switch m.writePolicy {
	case WriteAlwaysRemote:
		m.rmr[p]++
	case WriteLocalIfExclusive:
		exclusive := m.cached[v].has(p)
		if exclusive {
			for i := 0; i < m.nprocs; i++ {
				if i != p && m.cached[v].has(i) {
					exclusive = false
					break
				}
			}
		}
		if !exclusive {
			m.rmr[p]++
		}
	}
	m.cached[v].clearExcept(p)
}

// Write performs an atomic write of x to v by process p.
func (m *Memory) Write(p int, v Var, x int64) {
	m.chargeWrite(p, v)
	m.vals[v] = x
}

// FAA performs fetch&add on v by process p and returns the OLD value,
// matching the paper's convention (e.g. "if F&A(C[prevD],[1,0]) != [0,0]"
// tests the pre-increment value).
func (m *Memory) FAA(p int, v Var, delta int64) int64 {
	if m.kinds[v] == KindRW {
		panic(fmt.Sprintf("ccsim: F&A on read/write variable %q", m.names[v]))
	}
	m.rmws[p]++
	m.chargeWrite(p, v)
	old := m.vals[v]
	m.vals[v] = old + delta
	return old
}

// CAS performs compare&swap on v by process p, returning whether the
// swap succeeded.
func (m *Memory) CAS(p int, v Var, old, new int64) bool {
	if m.kinds[v] != KindCAS {
		panic(fmt.Sprintf("ccsim: CAS on %s variable %q", m.kinds[v], m.names[v]))
	}
	m.rmws[p]++
	m.chargeWrite(p, v)
	if m.vals[v] != old {
		return false
	}
	m.vals[v] = new
	return true
}

// Clone returns a deep copy of the memory, including cache state and
// counters.  Used by the model checker and by enabledness probes.
func (m *Memory) Clone() *Memory {
	c := &Memory{
		vals:        append([]int64(nil), m.vals...),
		kinds:       append([]VarKind(nil), m.kinds...),
		names:       m.names, // immutable after registration
		cached:      make([]procSet, len(m.cached)),
		nprocs:      m.nprocs,
		rmr:         append([]int64(nil), m.rmr...),
		ops:         append([]int64(nil), m.ops...),
		rmws:        append([]int64(nil), m.rmws...),
		writePolicy: m.writePolicy,
		model:       m.model,
		homes:       append([]int(nil), m.homes...),
	}
	for i, s := range m.cached {
		c.cached[i] = s.clone()
	}
	return c
}

// Values returns a copy of all variable values; used for state hashing
// by the model checker.
func (m *Memory) Values() []int64 { return append([]int64(nil), m.vals...) }

// AppendValues appends all variable values to dst and returns the
// extended slice; an allocation-free variant of Values for hot paths.
func (m *Memory) AppendValues(dst []int64) []int64 { return append(dst, m.vals...) }
