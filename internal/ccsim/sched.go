package ccsim

import "math/rand"

// Scheduler decides which process takes the next step.  The simulated
// machine is asynchronous: any interleaving a Scheduler produces is a
// legal run, and adversarial schedulers are how the paper's worst cases
// are exercised.
type Scheduler interface {
	// Next returns the id of the process to step, chosen from active
	// (non-empty, sorted ascending).  step is the global step number.
	Next(active []int, step int64) int
}

// RoundRobin steps processes in cyclic id order.  Round-robin is a
// strongly fair schedule, appropriate for liveness checks
// (starvation-freedom, livelock-freedom).
type RoundRobin struct {
	last int
}

// NewRoundRobin returns a round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// Next implements Scheduler.
func (s *RoundRobin) Next(active []int, _ int64) int {
	// Pick the smallest active id strictly greater than last, wrapping.
	for _, id := range active {
		if id > s.last {
			s.last = id
			return id
		}
	}
	s.last = active[0]
	return active[0]
}

// RandomSched picks the next process uniformly at random.  Runs are
// reproducible given the seed.
type RandomSched struct {
	rng *rand.Rand
}

// NewRandomSched returns a seeded uniform scheduler.
func NewRandomSched(seed int64) *RandomSched {
	return &RandomSched{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (s *RandomSched) Next(active []int, _ int64) int {
	return active[s.rng.Intn(len(active))]
}

// WeightedSched picks the next process with probability proportional to
// its weight; processes with zero weight are stepped only when every
// active process has zero weight.  Weighting readers far above the
// writer (or vice versa) produces the storm scenarios used in the
// priority experiments.
type WeightedSched struct {
	rng     *rand.Rand
	weights []float64
}

// NewWeightedSched returns a seeded weighted scheduler; weights[i] is
// process i's weight.
func NewWeightedSched(seed int64, weights []float64) *WeightedSched {
	return &WeightedSched{rng: rand.New(rand.NewSource(seed)), weights: weights}
}

// Next implements Scheduler.
func (s *WeightedSched) Next(active []int, _ int64) int {
	total := 0.0
	for _, id := range active {
		total += s.weights[id]
	}
	if total == 0 {
		return active[s.rng.Intn(len(active))]
	}
	x := s.rng.Float64() * total
	for _, id := range active {
		x -= s.weights[id]
		if x < 0 {
			return id
		}
	}
	return active[len(active)-1]
}

// StallSched stalls one designated process: it steps the victim only
// once every Period steps, and otherwise schedules the remaining
// processes uniformly at random.  This is the adversary used to check
// that enabled processes stay enabled and that RMR bounds hold even
// when a process is almost never scheduled.
type StallSched struct {
	rng    *rand.Rand
	victim int
	period int64
}

// NewStallSched returns a scheduler that steps victim only every period
// steps.
func NewStallSched(seed int64, victim int, period int64) *StallSched {
	if period < 1 {
		period = 1
	}
	return &StallSched{rng: rand.New(rand.NewSource(seed)), victim: victim, period: period}
}

// Next implements Scheduler.
func (s *StallSched) Next(active []int, step int64) int {
	victimActive := false
	for _, id := range active {
		if id == s.victim {
			victimActive = true
			break
		}
	}
	if victimActive && step%s.period == s.period-1 {
		return s.victim
	}
	if victimActive && len(active) == 1 {
		return s.victim
	}
	for {
		id := active[s.rng.Intn(len(active))]
		if id != s.victim || !victimActive {
			return id
		}
		if len(active) == 1 {
			return id
		}
	}
}
