// Package ccsim implements a deterministic simulator of an asynchronous
// cache-coherent (CC) shared-memory multiprocessor — the machine model
// of Section 2 of Bhatt & Jayanti, "Constant RMR Solutions to Reader
// Writer Synchronization" (Dartmouth TR2010-662, PODC 2010).  Every
// RMR-complexity claim in this repository is validated by executing the
// paper's algorithms on this simulator, not by inspection.
//
// Processes execute one atomic shared-memory operation per step.  The
// simulator charges remote memory references (RMRs) exactly as the CC
// model prescribes:
//
//   - a read of variable v by process p is remote iff v is not in p's
//     cache; the read then loads v into p's cache;
//   - any write, fetch&add, or compare&swap by p costs one RMR and
//     invalidates every other process's cached copy of v (p's own cache
//     stays valid).
//
// Failed CAS operations are conservatively charged one RMR as well: on
// real hardware they still acquire the cache line exclusively.
//
// The simulator is fully deterministic given a Scheduler (adversarial
// interleavings are just schedulers), supports cloning — used by the
// internal/mc model checker for state-space search and by the
// "enabledness probes" that implement the paper's Definition 2 (a
// process is enabled if some schedule admits it to the CS without any
// other process taking a step) — and counts RMRs per attempt so that
// Theorems 1-5 can be checked empirically by internal/harness.
//
// A second accounting mode, ModelDSM, charges every access to a
// remotely-homed variable with no caching, the distributed
// shared-memory model of the paper's Section 6 discussion: by the
// Danek-Hadzilacos lower bound no reader-writer algorithm with
// concurrent entering can be sublinear there, and the harness's E9
// sweep reproduces exactly that contrast.
package ccsim
