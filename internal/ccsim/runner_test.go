package ccsim

import (
	"testing"
	"testing/quick"
)

// twoPhaseProgram is a trivial correct program: remainder -> doorway
// (one write) -> waiting (spin on a flag) -> CS -> exit (one write).
// The flag starts open, so processes never actually block.
func twoPhaseProgram(m *Memory) *Program {
	flag := m.NewVar("flag", KindRW, 1)
	scratch := m.NewVar("scratch", KindRW, 0)
	return &Program{
		Name: "two-phase",
		Instrs: []Instr{
			func(c *Ctx) int { return 1 },
			func(c *Ctx) int { c.Write(scratch, int64(c.P.ID)); return 2 },
			func(c *Ctx) int {
				if c.Read(flag) != 0 {
					return 3
				}
				return 2
			},
			func(c *Ctx) int { return 4 },
			func(c *Ctx) int { c.Write(scratch, 0); return 0 },
		},
		Phases: []Phase{PhaseRemainder, PhaseDoorway, PhaseWaiting, PhaseCS, PhaseExit},
	}
}

func TestRunnerLifecycleEvents(t *testing.T) {
	m := NewMemory(1)
	prog := twoPhaseProgram(m)
	r, err := NewRunner(m, []*Program{prog}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	r.Sink = sinkFunc(func(e Event) { events = append(events, e) })
	if err := r.Run(NewRoundRobin(), 1000); err != nil {
		t.Fatal(err)
	}
	want := []EventKind{
		EvBeginDoorway, EvEndDoorway, EvEnterCS, EvBeginExit, EvEndExit,
		EvBeginDoorway, EvEndDoorway, EvEnterCS, EvBeginExit, EvEndExit,
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for i, e := range events {
		if e.Kind != want[i] {
			t.Fatalf("event %d = %s, want %s", i, e.Kind, want[i])
		}
	}
	// Attempt indices: first five events attempt 0, next five attempt 1.
	for i, e := range events {
		wantAtt := i / 5
		if e.Attempt != wantAtt {
			t.Fatalf("event %d attempt = %d, want %d", i, e.Attempt, wantAtt)
		}
	}
}

type sinkFunc func(Event)

func (f sinkFunc) Record(e Event) { f(e) }

func TestRunnerAttemptStats(t *testing.T) {
	m := NewMemory(2)
	prog := twoPhaseProgram(m)
	r, err := NewRunner(m, []*Program{prog, prog}, 3)
	if err != nil {
		t.Fatal(err)
	}
	r.CollectStats = true
	if err := r.Run(NewRandomSched(5), 10000); err != nil {
		t.Fatal(err)
	}
	if len(r.Stats) != 6 {
		t.Fatalf("got %d attempt stats, want 6", len(r.Stats))
	}
	for _, s := range r.Stats {
		if s.DoorwaySteps != 1 {
			t.Fatalf("doorway steps = %d, want 1", s.DoorwaySteps)
		}
		if s.ExitSteps != 1 {
			t.Fatalf("exit steps = %d, want 1", s.ExitSteps)
		}
		if s.RMR == 0 || s.Steps < 3 {
			t.Fatalf("implausible stats: %+v", s)
		}
	}
}

func TestIllegalTransitionPanics(t *testing.T) {
	m := NewMemory(1)
	bad := &Program{
		Name: "bad",
		Instrs: []Instr{
			func(c *Ctx) int { return 1 },
			func(c *Ctx) int { return 0 }, // CS -> remainder is fine...
		},
		Phases: []Phase{PhaseRemainder, PhaseExit}, // ...but remainder -> exit is not
	}
	r, err := NewRunner(m, []*Program{bad}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on illegal section transition")
		}
	}()
	r.StepProc(0)
}

func TestEncodeRestoreRoundTrip(t *testing.T) {
	m := NewMemory(2)
	prog := twoPhaseProgram(m)
	r, err := NewRunner(m, []*Program{prog, prog}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Advance to an arbitrary mid-run state.
	for i := 0; i < 13; i++ {
		r.StepProc(i % 2)
	}
	enc := r.EncodeState(nil)

	// Mutate, then restore.
	for i := 0; i < 7; i++ {
		r.StepProc(0)
	}
	r.RestoreState(enc)
	enc2 := r.EncodeState(nil)
	if string(enc) != string(enc2) {
		t.Fatal("encode/restore round trip diverged")
	}
}

func TestEncodeRestoreQuick(t *testing.T) {
	// Property: restoring an encoded state always reproduces the same
	// encoding, from any reachable state and any interleaving prefix.
	f := func(schedule []uint8) bool {
		m := NewMemory(3)
		prog := twoPhaseProgram(m)
		r, err := NewRunner(m, []*Program{prog, prog, prog}, 0)
		if err != nil {
			return false
		}
		for _, b := range schedule {
			r.StepProc(int(b) % 3)
		}
		enc := r.EncodeState(nil)
		r.StepProc(0)
		r.StepProc(1)
		r.RestoreState(enc)
		return string(r.EncodeState(nil)) == string(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMemory(2)
	prog := twoPhaseProgram(m)
	r, err := NewRunner(m, []*Program{prog, prog}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.StepProc(0)
	c := r.Clone()
	for i := 0; i < 5; i++ {
		c.StepProc(1)
	}
	if r.Procs[1].PC != 0 {
		t.Fatal("stepping the clone moved the original")
	}
}

func TestEnabledToEnterCS(t *testing.T) {
	m := NewMemory(2)
	gate := m.NewVar("gate", KindRW, 0)
	waiting := &Program{
		Name: "waiter",
		Instrs: []Instr{
			func(c *Ctx) int { return 1 },
			func(c *Ctx) int { c.Read(gate); return 2 },
			func(c *Ctx) int {
				if c.Read(gate) != 0 {
					return 3
				}
				return 2
			},
			func(c *Ctx) int { return 4 },
			func(c *Ctx) int { return 0 },
		},
		Phases: []Phase{PhaseRemainder, PhaseDoorway, PhaseWaiting, PhaseCS, PhaseExit},
	}
	opener := &Program{
		Name: "opener",
		Instrs: []Instr{
			func(c *Ctx) int { return 1 },
			func(c *Ctx) int { c.Write(gate, 1); return 2 },
			func(c *Ctx) int { return 3 },
			func(c *Ctx) int { return 0 },
		},
		Phases: []Phase{PhaseRemainder, PhaseDoorway, PhaseCS, PhaseExit},
	}
	r, err := NewRunner(m, []*Program{waiting, opener}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.StepProc(0)
	r.StepProc(0) // waiter now spins at PC 2 with the gate closed
	if r.EnabledToEnterCS(0, 100) {
		t.Fatal("waiter must not be enabled while the gate is closed")
	}
	r.StepProc(1)
	r.StepProc(1) // opener opens the gate
	if !r.EnabledToEnterCS(0, 100) {
		t.Fatal("waiter must be enabled once the gate is open")
	}
	// The probe must not disturb the real runner.
	if r.PhaseOf(0) != PhaseWaiting {
		t.Fatal("probe moved the real process")
	}
}

func TestSchedulersCoverAllProcs(t *testing.T) {
	active := []int{0, 1, 2, 3}
	for _, s := range []Scheduler{NewRoundRobin(), NewRandomSched(1), NewWeightedSched(1, []float64{1, 1, 1, 1})} {
		seen := map[int]bool{}
		for i := int64(0); i < 1000; i++ {
			seen[s.Next(active, i)] = true
		}
		if len(seen) != 4 {
			t.Fatalf("%T visited only %d of 4 processes", s, len(seen))
		}
	}
}

func TestStallSchedStallsVictim(t *testing.T) {
	s := NewStallSched(3, 1, 100)
	active := []int{0, 1, 2}
	victim := 0
	for i := int64(0); i < 1000; i++ {
		if s.Next(active, i) == 1 {
			victim++
		}
	}
	if victim == 0 || victim > 20 {
		t.Fatalf("victim stepped %d times out of 1000; want sparse but nonzero", victim)
	}
}

func TestHalt(t *testing.T) {
	m := NewMemory(2)
	prog := twoPhaseProgram(m)
	r, err := NewRunner(m, []*Program{prog, prog}, 5)
	if err != nil {
		t.Fatal(err)
	}
	r.Halt(0)
	if err := r.Run(NewRoundRobin(), 1000); err != nil {
		t.Fatal(err)
	}
	if r.Procs[0].Attempt != 0 {
		t.Fatal("halted process ran")
	}
	if r.Procs[1].Attempt != 5 {
		t.Fatalf("live process completed %d attempts, want 5", r.Procs[1].Attempt)
	}
}
