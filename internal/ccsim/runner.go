package ccsim

import (
	"encoding/binary"
	"fmt"
)

// EventKind classifies lifecycle events derived from phase transitions.
type EventKind uint8

const (
	// EvBeginDoorway fires when a process leaves the remainder section
	// and starts a new attempt (first step of the doorway).
	EvBeginDoorway EventKind = iota
	// EvEndDoorway fires when a process completes the doorway (enters
	// the waiting room or goes directly to the CS).
	EvEndDoorway
	// EvEnterCS fires when a process enters the critical section.
	EvEnterCS
	// EvBeginExit fires when a process leaves the CS for the exit section.
	EvBeginExit
	// EvEndExit fires when a process completes the exit section,
	// finishing the attempt.
	EvEndExit
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvBeginDoorway:
		return "begin-doorway"
	case EvEndDoorway:
		return "end-doorway"
	case EvEnterCS:
		return "enter-CS"
	case EvBeginExit:
		return "begin-exit"
	case EvEndExit:
		return "end-exit"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one lifecycle event in a run.  Step numbers give a total
// order consistent with the simulated execution.
type Event struct {
	Step    int64
	Proc    int
	Reader  bool
	Attempt int // attempt index (0-based) the event belongs to
	Kind    EventKind
}

// EventSink receives lifecycle events during a run.
type EventSink interface {
	Record(Event)
}

// AttemptStat summarizes one completed attempt.
type AttemptStat struct {
	Proc    int
	Reader  bool
	Attempt int
	RMR     int64 // remote memory references charged during the attempt
	Steps   int64 // total steps taken during the attempt
	// DoorwaySteps counts the process's own steps spent in the
	// doorway; the paper requires the doorway to be bounded
	// straight-line code, so this must never exceed the program length.
	DoorwaySteps int64
	// ExitSteps counts the process's own steps in the exit section;
	// property P2 (bounded exit) requires a constant bound.
	ExitSteps int64
}

// Runner drives a set of processes over a shared memory under a
// scheduler, emitting events and per-attempt RMR statistics.
type Runner struct {
	Mem   *Memory
	Procs []*Proc
	Progs []*Program // Progs[i] is the program of Procs[i]

	// AttemptsPerProc is how many attempts each process performs
	// before halting.  Zero means unlimited (run until step budget).
	AttemptsPerProc int

	// Sink, if non-nil, receives lifecycle events.
	Sink EventSink

	// Stats accumulates one entry per completed attempt when
	// CollectStats is true.
	CollectStats bool
	Stats        []AttemptStat

	// TotalSteps is the number of steps executed so far.
	TotalSteps int64

	active      []int   // ids of processes not yet Done
	stepStart   []int64 // per-proc: Mem.Ops at attempt start
	doorwayDone []int64 // per-proc: Mem.Ops when the doorway completed
	exitStart   []int64 // per-proc: Mem.Ops when the exit section began
}

// NewRunner assembles a runner.  progs[i] is the program for process i;
// process ids are 0..len(progs)-1 and must match the Memory's size.
func NewRunner(mem *Memory, progs []*Program, attemptsPerProc int) (*Runner, error) {
	if len(progs) != mem.NumProcs() {
		return nil, fmt.Errorf("ccsim: %d programs for memory sized for %d processes", len(progs), mem.NumProcs())
	}
	r := &Runner{
		Mem:             mem,
		Progs:           progs,
		AttemptsPerProc: attemptsPerProc,
		stepStart:       make([]int64, len(progs)),
		doorwayDone:     make([]int64, len(progs)),
		exitStart:       make([]int64, len(progs)),
	}
	for i, pr := range progs {
		if err := pr.Validate(); err != nil {
			return nil, err
		}
		r.Procs = append(r.Procs, &Proc{ID: i})
		r.active = append(r.active, i)
	}
	return r, nil
}

// Active returns the ids of processes that have not halted.
func (r *Runner) Active() []int { return r.active }

// AllDone reports whether every process has completed its attempts.
func (r *Runner) AllDone() bool { return len(r.active) == 0 }

// PhaseOf returns the current phase of process id.
func (r *Runner) PhaseOf(id int) Phase { return r.Progs[id].Phase(r.Procs[id].PC) }

// legalTransition reports whether moving from to next is a legal
// section transition (forward within an attempt, self-loop, or
// wrapping from exit back to remainder).
func legalTransition(from, to Phase) bool {
	if from == to {
		return true
	}
	switch from {
	case PhaseRemainder:
		return to == PhaseDoorway
	case PhaseDoorway:
		return to == PhaseWaiting || to == PhaseCS
	case PhaseWaiting:
		return to == PhaseCS
	case PhaseCS:
		return to == PhaseExit || to == PhaseRemainder
	case PhaseExit:
		return to == PhaseRemainder
	}
	return false
}

// StepProc executes one step of process id, emitting events for any
// phase transition.  It reports whether the process changed state at
// all (a spinning process re-reading an unchanged variable returns to
// the same PC; its registers are unchanged, so the global safety state
// is a self-loop — the model checker uses this signal).
func (r *Runner) StepProc(id int) bool {
	p := r.Procs[id]
	if p.Done {
		return false
	}
	prog := r.Progs[id]
	from := prog.Phase(p.PC)

	if from == PhaseRemainder {
		if r.AttemptsPerProc > 0 && p.Attempt >= r.AttemptsPerProc {
			p.Done = true
			r.removeActive(id)
			return true
		}
		// Beginning a new attempt: reset the RMR meter so per-attempt
		// counts are exact.
		r.Mem.ResetRMR(id)
		r.stepStart[id] = r.Mem.Ops(id)
	}

	oldPC := p.PC
	oldRegs := p.Regs
	ctx := Ctx{M: r.Mem, P: p}
	next := prog.Instrs[p.PC](&ctx)
	r.TotalSteps++
	if next < 0 || next >= len(prog.Instrs) {
		panic(fmt.Sprintf("ccsim: program %q jumped from PC %d to invalid PC %d", prog.Name, p.PC, next))
	}
	p.PC = next
	to := prog.Phase(next)
	if !legalTransition(from, to) {
		panic(fmt.Sprintf("ccsim: program %q made illegal section transition %s -> %s (PC %d -> %d)",
			prog.Name, from, to, oldPC, next))
	}
	r.emitTransition(id, p, from, to)
	return oldPC != p.PC || oldRegs != p.Regs
}

func (r *Runner) emitTransition(id int, p *Proc, from, to Phase) {
	if from == to {
		return
	}
	emit := func(k EventKind) {
		if r.Sink != nil {
			r.Sink.Record(Event{Step: r.TotalSteps, Proc: id, Reader: r.Progs[id].Reader, Attempt: p.Attempt, Kind: k})
		}
	}
	switch {
	case from == PhaseRemainder && to == PhaseDoorway:
		emit(EvBeginDoorway)
	case from == PhaseDoorway && (to == PhaseWaiting || to == PhaseCS):
		r.doorwayDone[id] = r.Mem.Ops(id)
		emit(EvEndDoorway)
		if to == PhaseCS {
			emit(EvEnterCS)
		}
	case to == PhaseCS:
		emit(EvEnterCS)
	case from == PhaseCS:
		r.exitStart[id] = r.Mem.Ops(id)
		emit(EvBeginExit)
		if to == PhaseRemainder {
			r.finishAttempt(id, p, emit)
		}
	case from == PhaseExit && to == PhaseRemainder:
		r.finishAttempt(id, p, emit)
	}
}

func (r *Runner) finishAttempt(id int, p *Proc, emit func(EventKind)) {
	emit(EvEndExit)
	if r.CollectStats {
		r.Stats = append(r.Stats, AttemptStat{
			Proc:         id,
			Reader:       r.Progs[id].Reader,
			Attempt:      p.Attempt,
			RMR:          r.Mem.RMR(id),
			Steps:        r.Mem.Ops(id) - r.stepStart[id],
			DoorwaySteps: r.doorwayDone[id] - r.stepStart[id],
			ExitSteps:    r.Mem.Ops(id) - r.exitStart[id],
		})
	}
	p.Attempt++
}

func (r *Runner) removeActive(id int) {
	for i, a := range r.active {
		if a == id {
			r.active = append(r.active[:i], r.active[i+1:]...)
			return
		}
	}
}

// Halt marks process id as done immediately.  Tests use it to model a
// class of processes staying in the remainder section forever (e.g.
// the concurrent-entering property P5 quantifies over runs in which
// all writers remain in the remainder section).  Halting a process
// that is mid-attempt models a crash.
func (r *Runner) Halt(id int) {
	p := r.Procs[id]
	if p.Done {
		return
	}
	p.Done = true
	r.removeActive(id)
}

// Run executes steps chosen by sched until every process is done or
// maxSteps is exhausted.  It returns an error when the budget runs out,
// which liveness tests interpret as potential starvation or livelock.
func (r *Runner) Run(sched Scheduler, maxSteps int64) error {
	for !r.AllDone() {
		if r.TotalSteps >= maxSteps {
			return fmt.Errorf("ccsim: step budget %d exhausted with %d processes still active", maxSteps, len(r.active))
		}
		id := sched.Next(r.active, r.TotalSteps)
		r.StepProc(id)
	}
	return nil
}

// Clone deep-copies the runner's dynamic state (memory and processes).
// Programs are immutable and shared; sinks and stats are not copied.
// Clones are the substrate of the model checker and of enabledness
// probes.
func (r *Runner) Clone() *Runner {
	c := &Runner{
		Mem:             r.Mem.Clone(),
		Progs:           r.Progs,
		AttemptsPerProc: r.AttemptsPerProc,
		TotalSteps:      r.TotalSteps,
		active:          append([]int(nil), r.active...),
		stepStart:       append([]int64(nil), r.stepStart...),
		doorwayDone:     append([]int64(nil), r.doorwayDone...),
		exitStart:       append([]int64(nil), r.exitStart...),
	}
	for _, p := range r.Procs {
		cp := *p
		c.Procs = append(c.Procs, &cp)
	}
	return c
}

// EnabledToEnterCS implements Definition 2 of the paper operationally:
// process id is enabled in the current configuration if it reaches the
// CS within bound of its OWN steps, regardless of what other processes
// do.  Since other processes take no steps in the probe, reaching the
// CS in a solo run within the bound witnesses enabledness; failing to
// is a property violation when a checker asserts the process must be
// enabled.  The probe runs on a clone; the runner is not disturbed.
func (r *Runner) EnabledToEnterCS(id int, bound int) bool {
	c := r.Clone()
	p := c.Procs[id]
	if p.Done {
		return false
	}
	for i := 0; i < bound; i++ {
		if c.Progs[id].Phase(p.PC) == PhaseCS {
			return true
		}
		c.StepProc(id)
	}
	return c.Progs[id].Phase(p.PC) == PhaseCS
}

// RestoreState is the inverse of EncodeState: it overwrites the
// safety-relevant state (process PCs, registers, attempt counts, done
// flags, shared values) from data.  Cache state and counters are left
// as-is — they influence only RMR accounting, never control flow — so
// a restored runner takes exactly the transitions the encoded
// configuration allows.  The model checker uses Encode/Restore to
// explore the state graph without keeping full clones.
func (r *Runner) RestoreState(data []byte) {
	off := 0
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v
	}
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	r.active = r.active[:0]
	for _, p := range r.Procs {
		p.PC = int(u32())
		for i := range p.Regs {
			p.Regs[i] = int64(u64())
		}
		p.Attempt = int(u32())
		p.Done = data[off] == 1
		off++
		if !p.Done {
			r.active = append(r.active, p.ID)
		}
	}
	for v := 0; v < r.Mem.NumVars(); v++ {
		r.Mem.Poke(Var(v), int64(u64()))
	}
}

// EncodeState appends a canonical encoding of the safety-relevant
// global state (per-process PC, registers, attempt count, done flag,
// plus all shared variable values) to dst.  Cache state is excluded:
// it affects only RMR accounting, never values or control flow.
func (r *Runner) EncodeState(dst []byte) []byte {
	var buf [8]byte
	for _, p := range r.Procs {
		binary.LittleEndian.PutUint32(buf[:4], uint32(p.PC))
		dst = append(dst, buf[:4]...)
		for _, reg := range p.Regs {
			binary.LittleEndian.PutUint64(buf[:], uint64(reg))
			dst = append(dst, buf[:]...)
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(p.Attempt))
		dst = append(dst, buf[:4]...)
		if p.Done {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	for _, v := range r.Mem.Values() {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		dst = append(dst, buf[:]...)
	}
	return dst
}
