package ccsim

import "testing"

func TestDSMAccountingByHome(t *testing.T) {
	m := NewMemory(2)
	m.SetModel(ModelDSM)
	v := m.NewVar("v", KindRW, 0)
	m.SetHome(v, 1)
	if m.Home(v) != 1 {
		t.Fatalf("home = %d, want 1", m.Home(v))
	}

	// Process 0: every access remote, including repeated reads (no
	// caches in DSM).
	m.Read(0, v)
	m.Read(0, v)
	m.Read(0, v)
	if m.RMR(0) != 3 {
		t.Fatalf("remote reads RMR = %d, want 3 (no caching in DSM)", m.RMR(0))
	}
	// Process 1: accesses to its own module are free.
	m.Read(1, v)
	m.Write(1, v, 7)
	if m.RMR(1) != 0 {
		t.Fatalf("local accesses RMR = %d, want 0", m.RMR(1))
	}
	// Remote write charged.
	m.Write(0, v, 8)
	if m.RMR(0) != 4 {
		t.Fatalf("remote write RMR = %d, want 4", m.RMR(0))
	}
}

func TestDSMSpinIsCharged(t *testing.T) {
	// The crux of the DSM lower bound: a process spinning on a REMOTE
	// variable pays one RMR per iteration, unlike CC where the spin
	// hits the cache after the first read.
	mCC := NewMemory(2)
	vCC := mCC.NewVar("gate", KindRW, 0)
	for i := 0; i < 100; i++ {
		mCC.Read(0, vCC)
	}
	if mCC.RMR(0) != 1 {
		t.Fatalf("CC spin RMR = %d, want 1", mCC.RMR(0))
	}

	mDSM := NewMemory(2)
	mDSM.SetModel(ModelDSM)
	vDSM := mDSM.NewVar("gate", KindRW, 0)
	mDSM.SetHome(vDSM, 1)
	for i := 0; i < 100; i++ {
		mDSM.Read(0, vDSM)
	}
	if mDSM.RMR(0) != 100 {
		t.Fatalf("DSM spin RMR = %d, want 100", mDSM.RMR(0))
	}
}

func TestDSMCloneCarriesModel(t *testing.T) {
	m := NewMemory(2)
	m.SetModel(ModelDSM)
	v := m.NewVar("v", KindRW, 0)
	m.SetHome(v, 1)
	c := m.Clone()
	c.Read(0, v)
	c.Read(0, v)
	if c.RMR(0) != 2 {
		t.Fatalf("clone lost DSM accounting: RMR = %d, want 2", c.RMR(0))
	}
}
