package ccsim

import "fmt"

// Phase classifies a program counter into the paper's code sections
// (Section 2: remainder, doorway, waiting room, CS, exit).  The runner
// uses phase transitions to emit lifecycle events for the property
// checkers.
type Phase uint8

const (
	// PhaseRemainder is the remainder section.
	PhaseRemainder Phase = iota
	// PhaseDoorway is the bounded straight-line prefix of the Try section.
	PhaseDoorway
	// PhaseWaiting is the waiting room (busy-wait part of the Try section).
	PhaseWaiting
	// PhaseCS is the critical section.
	PhaseCS
	// PhaseExit is the exit section.
	PhaseExit
)

// String returns the section name as used in the paper.
func (ph Phase) String() string {
	switch ph {
	case PhaseRemainder:
		return "remainder"
	case PhaseDoorway:
		return "doorway"
	case PhaseWaiting:
		return "waiting"
	case PhaseCS:
		return "CS"
	case PhaseExit:
		return "exit"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(ph))
	}
}

// NumRegs is the size of each process's register file.  Registers hold
// the algorithms' local variables (d, d', prevD, currD, x, t, slot, ...).
const NumRegs = 8

// Proc is the dynamic state of one simulated process.  It is a plain
// value type: copying it (plus the Memory) captures a global state,
// which is what the model checker does.
type Proc struct {
	// ID is the process id (pid in the paper).  IDs are dense 0..n-1.
	ID int
	// PC is the program counter, an index into the program's Instrs.
	PC int
	// Regs is the register file holding the algorithm's local variables.
	Regs [NumRegs]int64
	// Attempt counts completed attempts (Try+CS+Exit cycles).
	Attempt int
	// Done reports that the process has completed all its attempts
	// and halted in the remainder section.
	Done bool
}

// Ctx is the execution context handed to an instruction: it scopes all
// shared-memory operations to the stepping process so RMRs are charged
// correctly.
type Ctx struct {
	M *Memory
	P *Proc
}

// Read reads shared variable v.
func (c *Ctx) Read(v Var) int64 { return c.M.Read(c.P.ID, v) }

// Write writes x to shared variable v.
func (c *Ctx) Write(v Var, x int64) { c.M.Write(c.P.ID, v, x) }

// FAA performs fetch&add and returns the old value.
func (c *Ctx) FAA(v Var, delta int64) int64 { return c.M.FAA(c.P.ID, v, delta) }

// CAS performs compare&swap and reports success.
func (c *Ctx) CAS(v Var, old, new int64) bool { return c.M.CAS(c.P.ID, v, old, new) }

// Instr executes exactly one atomic shared-memory operation (or a pure
// local computation) on behalf of ctx.P and returns the next program
// counter.  A busy-wait instruction returns its own PC until its
// condition holds; each retry is a fresh read step, so RMR accounting
// of spin loops is exact.
type Instr func(c *Ctx) int

// Program is the static code of a process: one Instr per PC plus the
// phase annotation used for event emission and property checking.
type Program struct {
	// Name identifies the algorithm and role, e.g. "fig1-writer".
	Name string
	// Reader reports whether processes running this program are
	// readers (as opposed to writers).
	Reader bool
	// Instrs is the instruction table, indexed by PC.
	Instrs []Instr
	// Phases gives the section of each PC; len(Phases) == len(Instrs).
	Phases []Phase
}

// Validate checks structural well-formedness of the program.
func (pr *Program) Validate() error {
	if len(pr.Instrs) == 0 {
		return fmt.Errorf("program %q has no instructions", pr.Name)
	}
	if len(pr.Instrs) != len(pr.Phases) {
		return fmt.Errorf("program %q: %d instrs but %d phases", pr.Name, len(pr.Instrs), len(pr.Phases))
	}
	if pr.Phases[0] != PhaseRemainder {
		return fmt.Errorf("program %q: PC 0 must be the remainder section", pr.Name)
	}
	return nil
}

// Phase returns the section that pc belongs to.
func (pr *Program) Phase(pc int) Phase { return pr.Phases[pc] }
