package mc

import (
	"fmt"
	"math/rand"
	"strings"

	"rwsync/internal/ccsim"
)

// WalkOptions configures RandomWalks.
type WalkOptions struct {
	// Attempts bounds attempts per process per walk.
	Attempts int
	// Walks is the number of independent random schedules to sample.
	Walks int
	// MaxSteps bounds each walk's length.
	MaxSteps int64
	// Seed makes the sampling reproducible.
	Seed int64
	// Invariant, if non-nil, is evaluated after every step.
	Invariant func(*ccsim.Runner) error
}

// WalkResult summarizes a RandomWalks run.
type WalkResult struct {
	Walks     int
	Steps     int64 // total steps across all walks
	Violation error
	// Schedule reproduces the violating walk when Violation != nil:
	// the exact sequence of process ids stepped from the initial
	// configuration.
	Schedule []int
}

// RandomWalks complements Explore for configurations whose state
// graphs are too large to exhaust: it samples many independent
// uniformly-random schedules from the initial configuration of base,
// checking mutual exclusion and the invariant at every step.  A
// violation comes with the exact schedule that produced it.
func RandomWalks(base *ccsim.Runner, opts WalkOptions) *WalkResult {
	if opts.Walks <= 0 {
		opts.Walks = 64
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 1 << 16
	}
	res := &WalkResult{}
	eOpts := Options{Invariant: opts.Invariant}

	for w := 0; w < opts.Walks; w++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(w)*1_000_003))
		r := base.Clone()
		r.AttemptsPerProc = opts.Attempts
		var schedule []int
		for s := int64(0); s < opts.MaxSteps && !r.AllDone(); s++ {
			active := r.Active()
			id := active[rng.Intn(len(active))]
			schedule = append(schedule, id)
			r.StepProc(id)
			res.Steps++
			if err := checkState(r, &eOpts); err != nil {
				res.Walks = w + 1
				res.Violation = fmt.Errorf("walk %d, step %d: %w", w, s, err)
				res.Schedule = schedule
				return res
			}
		}
	}
	res.Walks = opts.Walks
	return res
}

// FormatWitness renders a counterexample schedule with per-step
// program names and section transitions by replaying it on a clone of
// base.  Output is meant for humans debugging a violation.
func FormatWitness(base *ccsim.Runner, witness []Step, attempts int) string {
	r := base.Clone()
	r.AttemptsPerProc = attempts
	var b strings.Builder
	for i, s := range witness {
		before := r.PhaseOf(s.Proc)
		beforePC := r.Procs[s.Proc].PC
		r.StepProc(s.Proc)
		after := r.PhaseOf(s.Proc)
		afterPC := r.Procs[s.Proc].PC
		name := r.Progs[s.Proc].Name
		if before != after {
			fmt.Fprintf(&b, "%3d: proc %d (%s) PC %d->%d  %s -> %s\n",
				i, s.Proc, name, beforePC, afterPC, before, after)
		} else {
			fmt.Fprintf(&b, "%3d: proc %d (%s) PC %d->%d\n",
				i, s.Proc, name, beforePC, afterPC)
		}
	}
	w, rd := csOccupancy(r)
	fmt.Fprintf(&b, "final CS occupancy: %d writers, %d readers\n", w, rd)
	return b.String()
}
