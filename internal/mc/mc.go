package mc

import (
	"fmt"

	"rwsync/internal/ccsim"
)

// Options configures an exploration.
type Options struct {
	// Attempts bounds the attempts per process.
	Attempts int
	// MaxStates aborts the search (with Result.Truncated=true) once
	// this many distinct states have been discovered.  Zero means the
	// default of 4,000,000.
	MaxStates int
	// Invariant, if non-nil, is evaluated at every reachable state.
	Invariant func(*ccsim.Runner) error
	// DetectStuck enables stuck-state detection.
	DetectStuck bool
	// KeepWitness records parent links so a violation comes with a
	// counterexample schedule.  Costs extra memory.
	KeepWitness bool
}

// Step is one transition of a counterexample: process Proc took a step.
type Step struct {
	Proc int
}

// Result summarizes an exploration.
type Result struct {
	States    int  // distinct states discovered
	Truncated bool // MaxStates reached before exhaustion
	// Violation is nil when all checks passed everywhere.
	Violation error
	// Witness is the schedule (sequence of process ids) leading from
	// the initial state to the violating state, when KeepWitness was
	// set and a violation was found.
	Witness []Step
	// MaxFrontier is the peak BFS frontier size (diagnostics).
	MaxFrontier int
}

// csOccupancy returns (writersInCS, readersInCS) of the runner's
// current configuration.
func csOccupancy(r *ccsim.Runner) (writers, readers int) {
	for i := range r.Procs {
		if r.PhaseOf(i) == ccsim.PhaseCS {
			if r.Progs[i].Reader {
				readers++
			} else {
				writers++
			}
		}
	}
	return writers, readers
}

// checkState evaluates the per-state predicates.
func checkState(r *ccsim.Runner, opts *Options) error {
	w, rd := csOccupancy(r)
	if w > 1 || (w == 1 && rd > 0) {
		return fmt.Errorf("mutual exclusion violated: %d writers and %d readers in the CS", w, rd)
	}
	if opts.Invariant != nil {
		if err := opts.Invariant(r); err != nil {
			return err
		}
	}
	return nil
}

// Explore runs the search from the initial configuration of base.
// base is not modified.
func Explore(base *ccsim.Runner, opts Options) *Result {
	if opts.MaxStates == 0 {
		opts.MaxStates = 4_000_000
	}
	res := &Result{}

	scratch := base.Clone()
	scratch.AttemptsPerProc = opts.Attempts
	scratch.Sink = nil
	scratch.CollectStats = false

	init := string(scratch.EncodeState(nil))
	if err := checkState(scratch, &opts); err != nil {
		res.Violation = err
		res.States = 1
		return res
	}

	type nodeID = int32
	states := []string{init}
	index := map[string]nodeID{init: 0}
	var parent []nodeID
	var via []int32
	if opts.KeepWitness {
		parent = []nodeID{-1}
		via = []int32{-1}
	}

	queue := []nodeID{0}
	buf := make([]byte, 0, len(init))

	fail := func(id nodeID, err error) {
		res.Violation = err
		if opts.KeepWitness {
			var rev []Step
			for cur := id; cur > 0; cur = parent[cur] {
				rev = append(rev, Step{Proc: int(via[cur])})
			}
			for i := len(rev) - 1; i >= 0; i-- {
				res.Witness = append(res.Witness, rev[i])
			}
		}
	}

	for len(queue) > 0 {
		if len(queue) > res.MaxFrontier {
			res.MaxFrontier = len(queue)
		}
		cur := queue[0]
		queue = queue[1:]
		curEnc := states[cur]

		scratch.RestoreState([]byte(curEnc))
		active := append([]int(nil), scratch.Active()...)
		allSelfLoop := len(active) > 0

		for _, pid := range active {
			scratch.RestoreState([]byte(curEnc))
			scratch.StepProc(pid)
			buf = scratch.EncodeState(buf[:0])
			if string(buf) != curEnc {
				allSelfLoop = false
			}
			key := string(buf)
			if _, seen := index[key]; seen {
				continue
			}
			id := nodeID(len(states))
			states = append(states, key)
			index[key] = id
			if opts.KeepWitness {
				parent = append(parent, cur)
				via = append(via, int32(pid))
			}
			if err := checkState(scratch, &opts); err != nil {
				fail(id, err)
				res.States = len(states)
				return res
			}
			if len(states) >= opts.MaxStates {
				res.Truncated = true
				res.States = len(states)
				return res
			}
			queue = append(queue, id)
		}

		if opts.DetectStuck && allSelfLoop {
			fail(cur, fmt.Errorf("stuck state: all %d active processes self-loop forever", len(active)))
			res.States = len(states)
			return res
		}
	}
	res.States = len(states)
	return res
}
