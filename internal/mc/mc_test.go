package mc

import (
	"errors"
	"strings"
	"testing"

	"rwsync/internal/ccsim"
)

// buildMutex returns a 2-process system using a (correct) test-and-set
// style lock via CAS, or — with broken=true — a naive check-then-set
// lock with a race the checker must find.
func buildMutex(broken bool) *ccsim.Runner {
	m := ccsim.NewMemory(2)
	lock := m.NewVar("lock", ccsim.KindCAS, 0)
	var prog *ccsim.Program
	if broken {
		prog = &ccsim.Program{
			Name: "check-then-set",
			Instrs: []ccsim.Instr{
				func(c *ccsim.Ctx) int { return 1 },
				func(c *ccsim.Ctx) int { // doorway: no-op
					return 2
				},
				func(c *ccsim.Ctx) int { // wait until lock looks free
					if c.Read(lock) == 0 {
						return 3
					}
					return 2
				},
				func(c *ccsim.Ctx) int { // then set it (RACE)
					c.Write(lock, 1)
					return 4
				},
				func(c *ccsim.Ctx) int { return 5 }, // CS
				func(c *ccsim.Ctx) int { // exit
					c.Write(lock, 0)
					return 0
				},
			},
			Phases: []ccsim.Phase{
				ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting,
				ccsim.PhaseWaiting, ccsim.PhaseCS, ccsim.PhaseExit,
			},
		}
	} else {
		prog = &ccsim.Program{
			Name: "cas-lock",
			Instrs: []ccsim.Instr{
				func(c *ccsim.Ctx) int { return 1 },
				func(c *ccsim.Ctx) int { return 2 },
				func(c *ccsim.Ctx) int {
					if c.CAS(lock, 0, 1) {
						return 3
					}
					return 2
				},
				func(c *ccsim.Ctx) int { return 4 }, // CS
				func(c *ccsim.Ctx) int {
					c.Write(lock, 0)
					return 0
				},
			},
			Phases: []ccsim.Phase{
				ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting,
				ccsim.PhaseCS, ccsim.PhaseExit,
			},
		}
	}
	r, err := ccsim.NewRunner(m, []*ccsim.Program{prog, prog}, 2)
	if err != nil {
		panic(err)
	}
	return r
}

func TestExploreFindsRace(t *testing.T) {
	res := Explore(buildMutex(true), Options{Attempts: 2, KeepWitness: true})
	if res.Violation == nil {
		t.Fatalf("expected a mutual-exclusion violation; explored %d states", res.States)
	}
	if !strings.Contains(res.Violation.Error(), "mutual exclusion") {
		t.Fatalf("wrong violation: %v", res.Violation)
	}
	if len(res.Witness) == 0 {
		t.Fatal("expected a witness schedule")
	}
}

func TestWitnessReplaysToViolation(t *testing.T) {
	base := buildMutex(true)
	res := Explore(base, Options{Attempts: 2, KeepWitness: true})
	if res.Violation == nil {
		t.Fatal("no violation found")
	}
	// Replay the witness on a fresh clone: it must end with 2 procs in CS.
	r := base.Clone()
	r.AttemptsPerProc = 2
	for _, s := range res.Witness {
		r.StepProc(s.Proc)
	}
	inCS := 0
	for i := range r.Procs {
		if r.PhaseOf(i) == ccsim.PhaseCS {
			inCS++
		}
	}
	if inCS < 2 {
		t.Fatalf("witness replay ended with %d processes in the CS, want 2", inCS)
	}
}

func TestExplorePassesCorrectLock(t *testing.T) {
	res := Explore(buildMutex(false), Options{Attempts: 2, DetectStuck: true})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if res.States < 10 {
		t.Fatalf("implausibly few states: %d", res.States)
	}
}

func TestExploreRespectsMaxStates(t *testing.T) {
	res := Explore(buildMutex(false), Options{Attempts: 2, MaxStates: 5})
	if !res.Truncated {
		t.Fatal("expected truncation at MaxStates=5")
	}
	if res.States > 5 {
		t.Fatalf("explored %d states past the cap", res.States)
	}
}

func TestExploreInvariantCallback(t *testing.T) {
	calls := 0
	bad := errors.New("synthetic invariant failure")
	res := Explore(buildMutex(false), Options{
		Attempts: 1,
		Invariant: func(r *ccsim.Runner) error {
			calls++
			if calls == 10 {
				return bad
			}
			return nil
		},
	})
	if !errors.Is(res.Violation, bad) {
		t.Fatalf("invariant error not propagated: %v", res.Violation)
	}
}

func TestDetectStuck(t *testing.T) {
	// One process spinning forever on a gate nobody opens.
	m := ccsim.NewMemory(1)
	gate := m.NewVar("gate", ccsim.KindRW, 0)
	prog := &ccsim.Program{
		Name: "deadlock",
		Instrs: []ccsim.Instr{
			func(c *ccsim.Ctx) int { return 1 },
			func(c *ccsim.Ctx) int { c.Read(gate); return 2 },
			func(c *ccsim.Ctx) int {
				if c.Read(gate) != 0 {
					return 3
				}
				return 2
			},
			func(c *ccsim.Ctx) int { return 4 },
			func(c *ccsim.Ctx) int { return 0 },
		},
		Phases: []ccsim.Phase{
			ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting,
			ccsim.PhaseCS, ccsim.PhaseExit,
		},
	}
	r, err := ccsim.NewRunner(m, []*ccsim.Program{prog}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := Explore(r, Options{Attempts: 1, DetectStuck: true})
	if res.Violation == nil || !strings.Contains(res.Violation.Error(), "stuck") {
		t.Fatalf("expected a stuck-state violation, got %v", res.Violation)
	}
}

func TestExploreDoesNotDisturbBase(t *testing.T) {
	base := buildMutex(false)
	enc := base.EncodeState(nil)
	Explore(base, Options{Attempts: 1})
	if string(base.EncodeState(nil)) != string(enc) {
		t.Fatal("Explore mutated the base runner")
	}
}
