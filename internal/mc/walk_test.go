package mc

import (
	"strings"
	"testing"

	"rwsync/internal/ccsim"
)

func TestRandomWalksPassOnCorrectLock(t *testing.T) {
	res := RandomWalks(buildMutex(false), WalkOptions{
		Attempts: 3, Walks: 50, Seed: 1,
	})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if res.Walks != 50 || res.Steps == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestRandomWalksFindRace(t *testing.T) {
	// The broken check-then-set lock races under most interleavings;
	// 200 random walks must stumble on one.
	res := RandomWalks(buildMutex(true), WalkOptions{
		Attempts: 3, Walks: 200, Seed: 7,
	})
	if res.Violation == nil {
		t.Fatalf("expected random walks to find the race (%d steps sampled)", res.Steps)
	}
	if len(res.Schedule) == 0 {
		t.Fatal("violating walk must come with its schedule")
	}
	// The schedule replays to the violation.
	r := buildMutex(true).Clone()
	r.AttemptsPerProc = 3
	for _, id := range res.Schedule {
		r.StepProc(id)
	}
	w, rd := csOccupancy(r)
	if w+rd < 2 {
		t.Fatalf("schedule replay ended with %d+%d in CS, want >= 2", w, rd)
	}
}

func TestRandomWalksInvariantHook(t *testing.T) {
	calls := 0
	res := RandomWalks(buildMutex(false), WalkOptions{
		Attempts: 1, Walks: 2, Seed: 1,
		Invariant: func(r *ccsim.Runner) error { calls++; return nil },
	})
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	if calls == 0 {
		t.Fatal("invariant hook never called")
	}
}

func TestFormatWitness(t *testing.T) {
	base := buildMutex(true)
	res := Explore(base, Options{Attempts: 2, KeepWitness: true})
	if res.Violation == nil {
		t.Fatal("no violation")
	}
	out := FormatWitness(base, res.Witness, 2)
	if !strings.Contains(out, "final CS occupancy") {
		t.Fatalf("witness format missing summary:\n%s", out)
	}
	if !strings.Contains(out, "-> CS") {
		t.Fatalf("witness format missing CS transitions:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != len(res.Witness)+1 {
		t.Fatalf("got %d lines for %d steps", lines, len(res.Witness))
	}
}
