// Package mc is an explicit-state model checker for ccsim systems —
// the tool behind cmd/rwcheck's exhaustive section and the E5/E6
// experiments.
//
// It exhaustively explores every interleaving of a bounded
// configuration (n processes, k attempts each) by breadth-first search
// over canonical state encodings, checking at every reachable state:
//
//   - mutual exclusion (property P1 of the paper),
//   - the algorithm's proof invariants (the paper's Appendix A.1 and
//     Figure 5, supplied as a predicate), and
//   - absence of stuck states: configurations in which every
//     non-halted process only self-loops (a lost-wakeup deadlock —
//     busy-wait loops whose conditions can never again change).
//
// Exhaustiveness over bounded configurations is exactly how the
// paper's subtle-feature arguments are reproduced.  Section 3.3 argues
// that Figure 1's writer must wait out the exit section, and Section
// 4.3 that Figure 2's reader must re-register (lines 20-22) and that
// Promote may not CAS true directly: the deliberately broken variants
// in internal/core must — and do — yield a mutual-exclusion violation
// here, with a full counterexample schedule (see FormatWitness and the
// examples/counterexample program).
//
// Random deep walks (walk.go) complement the BFS when the bounded
// state space is too large to exhaust.
package mc
