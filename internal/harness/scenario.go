package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"rwsync/internal/ccsim"
	"rwsync/internal/core"
	"rwsync/internal/stats"
	"rwsync/internal/workload"
	"rwsync/rwlock"
)

// SimShape describes a simulator (RMR-accounting) scenario: named
// systems from Builders() swept over (writers, readers) points under
// the seeded random scheduler, in the CC or DSM memory model.
type SimShape struct {
	// Systems names entries of Builders().  The single-writer systems
	// (fig1-swwp, fig2-swrp) only accept points with writers == 1.
	Systems []string `json:"systems,omitempty"`
	// Points is the (writers, readers) grid; nil selects
	// SingleWriterPoints or MultiWriterPoints per system.
	Points [][2]int `json:"points,omitempty"`
	// Attempts is the per-process passage count at each point.
	Attempts int `json:"attempts"`
	// DSM switches the memory model to distributed-shared-memory
	// accounting (experiment E9), where no constant RMR bound exists.
	DSM bool `json:"dsm,omitempty"`

	// build, when set, overrides Systems with one anonymous system
	// constructor.  Only the legacy RMRSweep/RMRSweepDSM wrappers set
	// it; named scenarios go through Builders().
	build func(w, r int) *core.System
}

// Scenario is one declaratively described measurement: which locks
// (or simulator systems), what workload shape, how to pin the
// scheduler, and which probes to enable.  Every sweep the repo runs —
// the four historical ones and each new experiment — is a Scenario
// run through the one RunScenario core, so a new experiment is a
// registry entry, not a new sweep implementation.
type Scenario struct {
	// Name is the registry key (rwbench -scenario).
	Name string `json:"name"`
	// Title is the one-line table heading.
	Title string `json:"title"`
	// Description says what the scenario demonstrates.
	Description string `json:"-"`

	// Locks names NativeLocks registry entries; nil means the default
	// spin set (LockNames).  Ignored for simulator scenarios.
	Locks []string `json:"locks,omitempty"`
	// Workers is the goroutine-count grid; nil means doubling counts
	// up to 2*NumCPU.
	Workers []int `json:"workers,omitempty"`
	// ReadFractions is the read-ratio grid; nil means a single pass
	// (the dedicated-writer shapes, where the mix is structural).
	ReadFractions []float64 `json:"read_fractions,omitempty"`
	// DedicatedWriters > 0 switches to the storm shape: that many
	// workers write exclusively, the rest read exclusively.
	DedicatedWriters int `json:"dedicated_writers,omitempty"`
	// OpsPerWorker sizes op-budget runs; Duration > 0 switches to
	// deadline runs (the oversubscription mode).
	OpsPerWorker int           `json:"ops_per_worker,omitempty"`
	Duration     time.Duration `json:"-"`
	DurationMs   int64         `json:"duration_ms,omitempty"` // JSON mirror of Duration
	// CSWork/ThinkWork shape the critical and remainder sections.
	CSWork    int `json:"cs_work"`
	ThinkWork int `json:"think_work"`
	// SampleEvery is the latency sampling rate (0 = workload
	// default); MeasureAge enables the writer-visibility probe.
	SampleEvery int  `json:"sample_every,omitempty"`
	MeasureAge  bool `json:"measure_age,omitempty"`
	// WriterBurstLen/WriterBurstPause make dedicated writers bursty
	// (see workload.Config).
	WriterBurstLen   int `json:"writer_burst_len,omitempty"`
	WriterBurstPause int `json:"writer_burst_pause,omitempty"`
	// Yield makes workers yield after every op; storm scenarios set
	// it so single-core runs interleave per op instead of degrading
	// into whole scheduler quanta per worker (see workload.Config).
	Yield bool `json:"yield,omitempty"`
	// Churn runs every operation on a fresh goroutine: each worker
	// becomes a lane spawning one short-lived goroutine per op (see
	// workload.Config.Churn).  The writer-churn scenario uses it to
	// drive thousands of distinct one-passage writers — the shape a
	// bounded writer-arbitration API cannot host.
	Churn bool `json:"churn,omitempty"`
	// WriteDeadline gives every write a per-op budget through the
	// lock's LockCtx; expired writes are SHED and reported per point
	// (see workload.Config.WriteDeadline).  The writer-shed scenario
	// uses it to compare how the arbitration layers' commitment
	// points trade shed rate against writer-wait tail.
	WriteDeadline   time.Duration `json:"-"`
	WriteDeadlineUs int64         `json:"write_deadline_us,omitempty"` // JSON mirror of WriteDeadline
	// VersionBytes > 0 makes every write install a freshly allocated
	// versioned datum of that size, retiring the displaced version to
	// the lock when it implements rwlock.VersionRetirer (the Epoch
	// layer's deferred-reclamation seam) and to the GC otherwise.  The
	// age-frontier scenario pairs it with MeasureAge to chart update
	// age against retained memory.
	VersionBytes int `json:"version_bytes,omitempty"`
	// GOMAXPROCS, if > 0, is pinned for the scenario's duration (and
	// restored after) so oversubscription scenarios oversubscribe
	// even on big machines.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`

	// Stripes, when non-empty, switches the scenario to the SHARDED
	// shape: each cell runs workload.RunSharded against a fresh
	// rwmap.Map with that stripe count, every stripe guarded by one
	// instance of the cell's lock.  Sharded cells additionally measure
	// the lock's marginal bytes/instance at the cell's grid size (the
	// BytesPerLock point field).
	Stripes []int `json:"stripes,omitempty"`
	// ZipfS is the key-popularity exponent grid of a sharded scenario
	// (0 = uniform); nil means a single s=0 pass.
	ZipfS []float64 `json:"zipf_s,omitempty"`
	// Keys is the sharded key-space size (0 = workload default).
	Keys int `json:"keys,omitempty"`
	// MixedOps makes every 16th sharded op heavy (8x CSWork inside
	// the critical section — see workload.ShardedConfig.MixedOps).
	MixedOps bool `json:"mixed_ops,omitempty"`
	// HotSets, when non-empty, adds the adaptive-promotion axis to a
	// sharded scenario: each entry is a hot-set budget passed to
	// rwmap.WithAdaptiveLocks (0 = adaptive off, the all-Slim
	// baseline).  Budgets above 0 require Slim lock rows — the
	// adaptive Map owns both ends of the promote/demote swap.
	HotSets []int `json:"hot_sets,omitempty"`

	// Sim switches the scenario to the simulator side: RMR accounting
	// instead of wall-clock workloads.
	Sim *SimShape `json:"sim,omitempty"`
}

// ScenarioOptions are per-run overrides: the seed, the -quick trim,
// and the CLI's -locks/-workers/-ops/-stripes/-skew narrowing.  Zero
// values mean "use the scenario's own settings".
type ScenarioOptions struct {
	Seed    int64
	Quick   bool
	Locks   []string
	Workers []int
	Ops     int
	// Stripes/ZipfS/HotSets override a sharded scenario's grid-size,
	// skew and hot-set-budget axes.  They apply only to scenarios that
	// already sweep those axes (the serving-tier family); the CLI
	// rejects them otherwise, the same loud-rejection rule as -locks
	// on a simulator sweep.
	Stripes []int
	ZipfS   []float64
	HotSets []int
	// Metrics instruments every native and sharded cell with a fresh
	// rwlock.WithStats counter block (one per cell; a sharded cell's
	// stripes share it, so the block aggregates the grid) and folds the
	// quiescent snapshot into the point's Counters field.  The runner
	// cross-checks each block before reporting it: CheckCoherence plus
	// the workload tie (one completed passage per completed op).
	// Simulator scenarios have no native locks; Metrics is ignored
	// there (the CLI rejects -metrics when only simulator scenarios are
	// selected).
	Metrics bool
}

// ScenarioPoint is one measured cell.  Native points carry the
// latency histograms (wait = request→acquire, hold = acquire→release,
// total = the whole passage) and, when the age probe is on, the
// distribution of how stale sampled readers' views were.  Simulator
// points carry RMR summaries by role instead.
type ScenarioPoint struct {
	Lock         string  `json:"lock,omitempty"`
	System       string  `json:"system,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	Writers      int     `json:"writers,omitempty"`
	Readers      int     `json:"readers,omitempty"`
	ReadFraction float64 `json:"read_fraction,omitempty"`
	OpsPerSec    float64 `json:"ops_per_sec,omitempty"`
	ReadOps      int64   `json:"read_ops,omitempty"`
	WriteOps     int64   `json:"write_ops,omitempty"`
	// ShedOps/ShedRate report deadline-shed writes (writer-shed
	// scenario; present only when the scenario set WriteDeadline).
	ShedOps  int64   `json:"shed_ops,omitempty"`
	ShedRate float64 `json:"shed_rate,omitempty"`
	// The sharded-cell fields (additive, schema_version 2): the grid
	// size and skew of the cell, the measured marginal heap bytes per
	// lock instance at that grid size, and how many reads landed on
	// the hottest key (rank 0).
	Stripes      int     `json:"stripes,omitempty"`
	ZipfS        float64 `json:"zipf_s,omitempty"`
	BytesPerLock float64 `json:"bytes_per_lock,omitempty"`
	HotReadOps   int64   `json:"hot_read_ops,omitempty"`
	// The adaptive-promotion fields (additive): present exactly when
	// the point ran with a hot-set budget (HotSetBudget > 0).
	// Promotions/Demotions count Slim→full and full→Slim swaps,
	// HotSetMax is the promoted-set high-water mark (≤ the budget by
	// construction), and BytesPerLockHigh is the grid's bytes/lock at
	// that high water: the cold build's marginal bytes plus the
	// promoted wrappers' amortized over every stripe.
	HotSetBudget     int     `json:"hot_set_budget,omitempty"`
	Promotions       int64   `json:"promotions,omitempty"`
	Demotions        int64   `json:"demotions,omitempty"`
	HotSetMax        int     `json:"hot_set_max,omitempty"`
	BytesPerLockHigh float64 `json:"bytes_per_lock_high,omitempty"`

	ReadWait   *stats.HistSnapshot `json:"read_wait_ns,omitempty"`
	ReadHold   *stats.HistSnapshot `json:"read_hold_ns,omitempty"`
	ReadTotal  *stats.HistSnapshot `json:"read_total_ns,omitempty"`
	WriteWait  *stats.HistSnapshot `json:"write_wait_ns,omitempty"`
	WriteHold  *stats.HistSnapshot `json:"write_hold_ns,omitempty"`
	WriteTotal *stats.HistSnapshot `json:"write_total_ns,omitempty"`
	Age        *stats.HistSnapshot `json:"age_ns,omitempty"`
	// BatchSize is the combiner batch-size distribution, present only
	// when the point's lock was built with flat-combining writer
	// arbitration (a "/combine" registry entry): how many write
	// critical sections each drain of the publication list retired.
	BatchSize *stats.HistSnapshot `json:"batch_size,omitempty"`
	// The epoch counters ride only on points whose lock is an Epoch
	// wrapper (rwlock.EpochStatsOf), the same additive-schema pattern
	// as batch_size: advances/grace waits tell how aggressively the
	// fast path was closed, retired/reclaimed and the retained
	// high-water marks tell what deferred reclamation cost in held-back
	// versions and bytes.
	EpochAdvances       int64 `json:"epoch_advances,omitempty"`
	GraceWaits          int64 `json:"grace_waits,omitempty"`
	RetiredVersions     int64 `json:"retired_versions,omitempty"`
	ReclaimedVersions   int64 `json:"reclaimed_versions,omitempty"`
	RetainedVersionsMax int64 `json:"retained_versions_max,omitempty"`
	RetainedBytesMax    int64 `json:"retained_bytes_max,omitempty"`

	ReaderRMR *stats.Summary `json:"reader_rmr,omitempty"`
	WriterRMR *stats.Summary `json:"writer_rmr,omitempty"`

	// Counters is the cell's rwlock.LockStats snapshot, present exactly
	// when the run had metrics enabled (ScenarioOptions.Metrics; rwbench
	// -metrics) on a native or sharded point — never on simulator
	// points.  Rows outside the stats seam (Slim, the classical
	// baselines, sync.RWMutex) carry an all-zero block; see
	// NativeLocksWith.
	Counters *rwlock.LockStatsSnapshot `json:"counters,omitempty"`
}

// ScenarioResult is one scenario's complete run: the resolved
// configuration (after overrides and -quick trimming) and every
// measured point.
type ScenarioResult struct {
	Scenario   Scenario `json:"scenario"`
	Seed       int64    `json:"seed"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	// Metrics records whether the run instrumented its cells with
	// counter blocks (ScenarioOptions.Metrics) — the bit the validator
	// uses to require Counters on every point, or on none.
	Metrics bool            `json:"metrics,omitempty"`
	Points  []ScenarioPoint `json:"points"`
}

// --- registry ---

var (
	scenarioRegistry = map[string]Scenario{}
	scenarioOrder    []string
)

// RegisterScenario adds a scenario to the registry.  Registration
// panics on a duplicate or unnamed scenario: the registry is
// assembled at init time, so a collision is a programming error.
func RegisterScenario(sc Scenario) {
	if sc.Name == "" {
		panic("harness: scenario without a name")
	}
	if _, dup := scenarioRegistry[sc.Name]; dup {
		panic("harness: duplicate scenario " + sc.Name)
	}
	scenarioRegistry[sc.Name] = sc
	scenarioOrder = append(scenarioOrder, sc.Name)
}

// ScenarioNames returns the registered scenario names in registration
// order.
func ScenarioNames() []string {
	return append([]string(nil), scenarioOrder...)
}

// SortedScenarioNames returns the registered scenario names sorted
// lexically — the order for error listings, where the reader is
// scanning for one name.
func SortedScenarioNames() []string {
	names := ScenarioNames()
	sort.Strings(names)
	return names
}

// ScenarioByName looks up a registered scenario.
func ScenarioByName(name string) (Scenario, bool) {
	sc, ok := scenarioRegistry[name]
	return sc, ok
}

// SelectScenarios resolves a comma-separated request ("all", names,
// or empty for the default pair) to scenarios in registration order.
func SelectScenarios(request string) ([]Scenario, error) {
	request = strings.TrimSpace(request)
	if request == "" {
		request = "throughput,priority"
	}
	if request == "all" {
		out := make([]Scenario, 0, len(scenarioOrder))
		for _, name := range scenarioOrder {
			out = append(out, scenarioRegistry[name])
		}
		return out, nil
	}
	want := map[string]bool{}
	for _, part := range strings.Split(request, ",") {
		if part = strings.TrimSpace(part); part != "" {
			if _, ok := scenarioRegistry[part]; !ok {
				return nil, fmt.Errorf("unknown scenario %q (have %s)",
					part, strings.Join(SortedScenarioNames(), ", "))
			}
			want[part] = true
		}
	}
	if len(want) == 0 {
		// A request like "," parses to zero names; running nothing
		// silently would look like an instant, empty success.
		return nil, fmt.Errorf("scenario request %q selects nothing (have %s)",
			request, strings.Join(SortedScenarioNames(), ", "))
	}
	var out []Scenario
	for _, name := range scenarioOrder {
		if want[name] {
			out = append(out, scenarioRegistry[name])
		}
	}
	return out, nil
}

func init() {
	// The four historical sweeps, now registry entries over the one
	// RunScenario core.
	RegisterScenario(Scenario{
		Name:          "throughput",
		Title:         "E7: native throughput by lock, workers and read ratio",
		Description:   "mixed reader/writer ops/sec across the (workers, read%) grid",
		ReadFractions: []float64{0.5, 0.9, 0.99, 1.0},
		OpsPerWorker:  20000,
		CSWork:        32,
		ThinkWork:     32,
	})
	RegisterScenario(Scenario{
		Name:             "priority",
		Title:            "E8: 1 dedicated writer vs 8 readers — latency by class",
		Description:      "minority-class latency under a majority-class storm",
		Workers:          []int{9},
		DedicatedWriters: 1,
		OpsPerWorker:     20000,
		CSWork:           64,
		ThinkWork:        16,
		SampleEvery:      4,
	})
	RegisterScenario(Scenario{
		Name:          "oversub",
		Title:         "E12: oversubscribed throughput (workers >> GOMAXPROCS)",
		Description:   "spin vs park under scheduler pressure, deadline-based",
		Locks:         OversubLockNames(),
		Workers:       []int{16, 64},
		ReadFractions: []float64{0.9, 0.99},
		Duration:      100 * time.Millisecond,
		CSWork:        32,
		ThinkWork:     32,
		GOMAXPROCS:    2,
	})
	RegisterScenario(Scenario{
		Name:        "rmr",
		Title:       "E1-E4: RMRs per passage on the CC simulator",
		Description: "constant-RMR theorems vs growing baselines",
		Sim: &SimShape{
			Systems: []string{"fig1-swwp", "fig2-swrp", "mwsf", "mwrp", "mwwp",
				"centralized", "pfticket", "taskfair", "tournament"},
			Attempts: 8,
		},
	})
	RegisterScenario(Scenario{
		Name:        "rmr-dsm",
		Title:       "E9: RMRs per passage under DSM accounting (no constant bound exists)",
		Description: "the CC result is model-specific: the same algorithms lose O(1) under DSM",
		Sim: &SimShape{
			Systems:  []string{"fig1-swwp", "mwsf", "centralized"},
			Attempts: 6,
			DSM:      true,
		},
	})

	// The scenarios the engine makes cheap: each of these was a
	// hand-rolled measurement (or impossible) before.
	RegisterScenario(Scenario{
		Name:  "bursty-writers",
		Title: "bursty writer storms: update wait latency and read-view age",
		Description: "an administrative writer bursts against a reader storm; " +
			"the product is how long each update waits to land (write wait) " +
			"and how stale readers' views get (age) — with the MWSF row " +
			"repeated under all three writer arbitrations (MCS, bounded " +
			"Anderson, flat combining) so the layer's solo-writer overhead " +
			"shows up here and its batching win in combine-batch",
		Locks: []string{"MWWP", "MWSF", "MWSF/bounded", "MWSF/combine",
			"MWRP", "sync.RWMutex"},
		Workers:          []int{9},
		DedicatedWriters: 1,
		Duration:         150 * time.Millisecond,
		WriterBurstLen:   8,
		WriterBurstPause: 1 << 16,
		CSWork:           8,
		ThinkWork:        8,
		SampleEvery:      1,
		MeasureAge:       true,
		Yield:            true,
	})
	RegisterScenario(Scenario{
		Name:  "starvation",
		Title: "reader-starvation probe: 8 writers flood 2 readers",
		Description: "reader wait-latency tail under a writer flood — the metric " +
			"that separates reader-priority (RP1 protects readers) from " +
			"writer-priority (WP2 lets the flood shut readers out)",
		Workers:          []int{10},
		DedicatedWriters: 8,
		OpsPerWorker:     4000,
		CSWork:           32,
		ThinkWork:        8,
		SampleEvery:      1,
		Yield:            true,
	})
	RegisterScenario(Scenario{
		Name:  "writer-churn",
		Title: "writer churn: thousands of short-lived writers, one passage each",
		Description: "every write passage comes from a brand-new goroutine — the " +
			"shape the old bounded constructors could not host — comparing the " +
			"unbounded MCS writer arbitration against the bounded Anderson array " +
			"(64 slots, so the churn also hits its admission gate), the flat " +
			"combiner (which retires whole batches of one-shot writers per " +
			"handoff), and sync.RWMutex; the product is throughput and the " +
			"writer-wait tail",
		Locks:         ChurnLockNames(),
		Workers:       []int{256}, // concurrent churn lanes, each spawning fresh writers
		ReadFractions: []float64{0},
		// 256 lanes x 128 spawns = 32768 distinct writers per point.
		// The geometry is sized so the 2-P run spans many scheduler
		// quanta with a deep runnable set and a non-trivial critical
		// section: writer pile-ups (holder preempted mid-passage) are
		// then a per-run certainty rather than a coin flip, which is
		// what makes the arbitration comparison repeatable — MCS pays a
		// wake-and-schedule handoff chain per pile-up, the combiner
		// drains each pile-up as one batch (batch max ≈ lane count),
		// and a shorter or shallower run measures scheduler luck
		// instead.
		OpsPerWorker: 128,
		CSWork:       64,
		ThinkWork:    8,
		SampleEvery:  1,
		Churn:        true,
		Yield:        true,
		GOMAXPROCS:   2,
	})
	RegisterScenario(Scenario{
		Name:  "combine-batch",
		Title: "flat-combining batches under writer churn: batch size, writer wait, view age",
		Description: "the writer-churn shape (every op a fresh goroutine, " +
			"GOMAXPROCS=2) run all-write and half-read over the three writer " +
			"arbitrations — unbounded MCS, bounded Anderson (gate saturated), " +
			"flat combining — plus sync.RWMutex; the products are the " +
			"combiner's batch-size distribution (batch p50/p99/max columns), " +
			"the writer-wait tail each arbitration pays per passage, and, on " +
			"the mixed point, how stale the churned readers' views get",
		Locks:         ChurnLockNames(),
		Workers:       []int{256}, // churn lanes, each spawning fresh one-shot goroutines
		ReadFractions: []float64{0, 0.5},
		// 256 lanes x 128 spawns per point, the writer-churn geometry
		// (see there): deep enough that writer pile-ups — the
		// batch-forming mechanism under churn — occur every run.
		OpsPerWorker: 128,
		CSWork:       64,
		ThinkWork:    8,
		SampleEvery:  1,
		MeasureAge:   true,
		Churn:        true,
		Yield:        true,
		GOMAXPROCS:   2,
	})
	RegisterScenario(Scenario{
		Name:  "writer-shed",
		Title: "deadline writers under churn: shed rate vs writer-wait tail",
		Description: "the writer-churn geometry (every write a fresh goroutine, " +
			"GOMAXPROCS=2) with a per-write deadline taken through LockCtx: a " +
			"write that cannot acquire within the budget is shed instead of " +
			"served.  The products are the shed rate and the writer-wait tail " +
			"the surviving writes pay, across the arbitration layers' " +
			"commitment points — the abortable MCS queue sheds from anywhere " +
			"in the wait, the bounded Anderson array only before its committed " +
			"ticket (its gate turns deadlines into admission control), the " +
			"flat combiner sheds through its inner queue on this token path, " +
			"and sync.RWMutex's polling adapter sheds freely but pays the " +
			"poll",
		Locks:         ChurnLockNames(),
		Workers:       []int{256}, // churn lanes; 256 x 128 = 32768 one-shot writers
		ReadFractions: []float64{0},
		OpsPerWorker:  128,
		CSWork:        64,
		ThinkWork:     8,
		SampleEvery:   1,
		Churn:         true,
		Yield:         true,
		GOMAXPROCS:    2,
		// Sized between the uncontended writer wait (p50 ≈ 1µs at this
		// geometry) and the pile-up tail (p99 = several ms): shallow
		// pile-ups squeak under, deep ones blow the budget, so neither
		// shed-everything nor shed-nothing — the regime where the
		// arbitration layers' commitment points actually differ.
		WriteDeadline: 500 * time.Microsecond,
	})
	RegisterScenario(Scenario{
		Name:  "age-frontier",
		Title: "age-memory frontier: update age vs retained versions across grace aggressiveness",
		Description: "every write installs a fresh 1 KiB version and retires the old " +
			"one; the Epoch rows defer reclamation to batch boundaries (bare, " +
			"every-8, every-64 sweeps the grace aggressiveness) while the bare " +
			"MWSF and Bravo rows free versions immediately through the GC.  The " +
			"products chart the frontier the epoch layer trades along: how stale " +
			"readers' views get (age p50/p99) against how many versions and " +
			"bytes deferred reclamation holds back at its worst (retained " +
			"high-water columns) and how often writers pay a grace wait",
		Locks: []string{"MWSF", "Bravo(MWSF)", "MWSF/epoch",
			"MWSF/epoch/lazy8", "MWSF/epoch/lazy64"},
		Workers:       []int{8},
		ReadFractions: []float64{0.95},
		OpsPerWorker:  20000,
		CSWork:        16,
		ThinkWork:     16,
		SampleEvery:   1,
		MeasureAge:    true,
		VersionBytes:  1024,
	})
	RegisterScenario(Scenario{
		Name:  "zipf-grid",
		Title: "serving tier: Zipfian traffic over striped lock grids",
		Description: "a striped map (rwmap) whose every stripe is one lock " +
			"instance, swept across grid sizes 1 / 2^10 / 2^20 and key skews " +
			"s=1.07 (classic serving traffic) and s=1.5 (hot-key pathology), " +
			"with each reader-fast-path protocol in its three footprint " +
			"builds — private table, shared arena, 16-byte slim.  The " +
			"products are cross-shard throughput, per-class wait tails, the " +
			"hot key's read rate and read-view age, and the measured " +
			"bytes/lock-instance each build pays at that grid size — the " +
			"axis that decides whether 10^6 stripes are affordable at all",
		Locks:         ShardedLockNames(),
		Workers:       []int{8},
		ReadFractions: []float64{0.9},
		Stripes:       []int{1, 1 << 10, 1 << 20},
		ZipfS:         []float64{1.07, 1.5},
		Keys:          16384,
		OpsPerWorker:  10000,
		CSWork:        16,
		ThinkWork:     16,
		SampleEvery:   8,
		MeasureAge:    true,
		MixedOps:      true,
		Yield:         true,
	})
	RegisterScenario(Scenario{
		Name:  "adaptive-grid",
		Title: "serving tier: adaptive hot-stripe promotion under Zipfian skew",
		Description: "the zipf-grid's Slim builds with contention-driven lock " +
			"heterogeneity swept across hot-set budgets (0 = adaptive off, the " +
			"all-Slim baseline): every stripe starts on a 16-byte Slim lock, a " +
			"sampled traffic counter promotes the observed hot set to full " +
			"Bravo/Epoch wrappers on the shared arena and demotes them when " +
			"they cool.  The products are the promotion/demotion counts, the " +
			"hot-set high-water mark against its budget, hot-key read " +
			"throughput against the all-Slim row, and bytes/lock at high " +
			"water — the memory-vs-hot-throughput frontier the budget walks",
		Locks:         []string{"SlimBravo", "SlimEpoch"},
		Workers:       []int{8},
		ReadFractions: []float64{0.9},
		Stripes:       []int{1 << 10, 1 << 20},
		ZipfS:         []float64{1.07, 1.5},
		HotSets:       []int{0, 64, 512},
		Keys:          16384,
		OpsPerWorker:  10000,
		CSWork:        64,
		ThinkWork:     4,
		SampleEvery:   8,
		MeasureAge:    true,
		MixedOps:      true,
		Yield:         true,
	})
	RegisterScenario(Scenario{
		Name:  "latency-grid",
		Title: "latency grid: per-op latency distributions across read ratios",
		Description: "full wait/hold latency histograms per class across the " +
			"read-ratio axis — the distributional view aggregate throughput hides",
		Workers:       []int{4},
		ReadFractions: []float64{0.5, 0.75, 0.9, 0.99, 0.999},
		OpsPerWorker:  20000,
		CSWork:        32,
		ThinkWork:     32,
		SampleEvery:   2,
	})
}

// --- the one core ---

// defaultWorkerGrid is the doubling grid up to 2*NumCPU the
// throughput sweep has always used.
func defaultWorkerGrid() []int {
	var workers []int
	for w := 1; w <= 2*runtime.NumCPU(); w *= 2 {
		workers = append(workers, w)
	}
	if len(workers) == 0 {
		workers = []int{1}
	}
	return workers
}

// quickTrim shrinks a resolved scenario to smoke-test size: first
// worker count, at most two read fractions, a small op budget or
// deadline, fewer sim points and attempts.
func quickTrim(sc Scenario) Scenario {
	if len(sc.Workers) > 1 {
		sc.Workers = sc.Workers[:1]
	}
	if len(sc.ReadFractions) > 2 {
		sc.ReadFractions = sc.ReadFractions[:2]
	}
	if sc.OpsPerWorker > 500 {
		sc.OpsPerWorker = 500
	}
	if sc.Duration > 25*time.Millisecond {
		sc.Duration = 25 * time.Millisecond
	}
	if sc.Sim != nil {
		sim := *sc.Sim
		if sim.Attempts > 4 {
			sim.Attempts = 4
		}
		if len(sim.Points) > 2 {
			sim.Points = sim.Points[:2]
		}
		sc.Sim = &sim
	}
	if len(sc.Stripes) > 0 {
		// Sharded smoke: keep the stripe AXIS (the shape check needs
		// more than one grid size) but drop the 10^5-and-up grids —
		// constructing a million locks is exactly what -quick exists
		// to avoid — and run one skew.
		var kept []int
		for _, s := range sc.Stripes {
			if s <= 1024 {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			kept = []int{1024}
		}
		sc.Stripes = kept
		if len(sc.ZipfS) > 1 {
			sc.ZipfS = sc.ZipfS[:1]
		}
		if len(sc.HotSets) > 2 {
			// Keep the baseline and one budget: the smoke shape check
			// needs both an adaptive and a non-adaptive row.
			sc.HotSets = sc.HotSets[:2]
		}
	}
	return sc
}

// RunScenario is the single sweep core every scenario — historical
// and new — runs through.  It resolves the scenario's grids against
// the options, pins GOMAXPROCS if the scenario asks, and measures
// every cell: native cells through workload.Run with per-worker
// latency sampling (and the age probe when enabled), simulator cells
// through the seeded-scheduler RMR accounting.
func RunScenario(sc Scenario, opts ScenarioOptions) (*ScenarioResult, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	// Resolve overrides first, then trim, so -quick applies to
	// whatever grid will actually run.
	if len(opts.Locks) > 0 {
		sc.Locks = opts.Locks
	}
	if len(opts.Workers) > 0 {
		sc.Workers = opts.Workers
	}
	if opts.Ops > 0 && sc.Duration == 0 && sc.Sim == nil {
		sc.OpsPerWorker = opts.Ops
	}
	if len(sc.Stripes) > 0 {
		// The stripe/skew overrides only retarget scenarios that already
		// sweep those axes — applying them elsewhere would silently turn
		// a flat scenario into a sharded one with different semantics;
		// the CLI rejects that combination before it gets here.
		if len(opts.Stripes) > 0 {
			sc.Stripes = opts.Stripes
		}
		if len(opts.ZipfS) > 0 {
			sc.ZipfS = opts.ZipfS
		}
		if len(opts.HotSets) > 0 && len(sc.HotSets) > 0 {
			sc.HotSets = opts.HotSets
		}
	}
	if opts.Quick {
		sc = quickTrim(sc)
	}
	if sc.GOMAXPROCS > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(sc.GOMAXPROCS))
	}
	res := &ScenarioResult{
		Seed:       opts.Seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var err error
	switch {
	case sc.Sim != nil:
		res.Points, err = runSimScenario(sc, opts.Seed)
	case len(sc.Stripes) > 0:
		res.Metrics = opts.Metrics
		res.Points, err = runShardedScenario(&sc, opts.Seed, opts.Metrics)
	default:
		res.Metrics = opts.Metrics
		res.Points, err = runNativeScenario(&sc, opts.Seed, opts.Metrics)
	}
	if err != nil {
		return nil, err
	}
	sc.DurationMs = sc.Duration.Milliseconds()
	sc.WriteDeadlineUs = sc.WriteDeadline.Microseconds()
	res.Scenario = sc
	return res, nil
}

// checkCellCounters cross-checks an instrumented cell's quiescent
// counter block against the workload's own op accounting before it is
// reported: the block must pass CheckCoherence, and — because each
// completed workload op is exactly one completed lock passage, and
// each deadline-shed write exactly one context shed — the acquire and
// shed counters must equal the op counts.  An all-silent block (a
// Slim, baseline or sync.RWMutex row, which sit outside the stats
// seam — see NativeLocksWith — or an adaptive cell, where the Map owns
// the stripe locks) is reported as-is: absent instrumentation is a
// documented property of the row, not a measurement error.
func checkCellCounters(s *rwlock.LockStatsSnapshot, scenario, lock string, readOps, writeOps, shedOps int64) error {
	if err := s.CheckCoherence(); err != nil {
		return fmt.Errorf("scenario %s lock %s: counter block incoherent: %w", scenario, lock, err)
	}
	if s.ReadAcquires == 0 && s.WriteAcquires == 0 && s.CtxSheds == 0 {
		return nil
	}
	if int64(s.ReadAcquires) != readOps {
		return fmt.Errorf("scenario %s lock %s: %d read acquires counted for %d read ops",
			scenario, lock, s.ReadAcquires, readOps)
	}
	if int64(s.WriteAcquires) != writeOps {
		return fmt.Errorf("scenario %s lock %s: %d write acquires counted for %d write ops",
			scenario, lock, s.WriteAcquires, writeOps)
	}
	if int64(s.CtxSheds) != shedOps {
		return fmt.Errorf("scenario %s lock %s: %d context sheds counted for %d shed ops",
			scenario, lock, s.CtxSheds, shedOps)
	}
	return nil
}

// runNativeScenario sweeps real locks with real goroutines.  It may
// fill in sc's defaulted grids (so the result records what ran).
func runNativeScenario(sc *Scenario, seed int64, metrics bool) ([]ScenarioPoint, error) {
	if len(sc.Locks) == 0 {
		sc.Locks = LockNames()
	}
	builders := NativeLocks()
	for _, name := range sc.Locks {
		if builders[name] == nil {
			return nil, fmt.Errorf("scenario %s: unknown lock %q (have %v)",
				sc.Name, name, SortedLockNames())
		}
	}
	if len(sc.Workers) == 0 {
		sc.Workers = defaultWorkerGrid()
	}
	for _, w := range sc.Workers {
		if w < 1 {
			return nil, fmt.Errorf("scenario %s: worker count %d (need >= 1)", sc.Name, w)
		}
		if sc.DedicatedWriters > 0 && w < 2 {
			// A storm shape needs both classes present; silently
			// running it all-writer would mislabel the measurement.
			return nil, fmt.Errorf("scenario %s: %d workers cannot host %d dedicated writer(s) plus a reader",
				sc.Name, w, sc.DedicatedWriters)
		}
	}
	fractions := sc.ReadFractions
	if len(fractions) == 0 {
		// Dedicated-writer shapes: the mix is structural, one pass.
		fractions = []float64{0}
	}
	var points []ScenarioPoint
	for _, name := range sc.Locks {
		for _, w := range sc.Workers {
			for _, f := range fractions {
				dedicated := sc.DedicatedWriters
				if dedicated >= w {
					dedicated = w - 1 // keep at least one reader in the probe
				}
				build := builders[name]
				var cellStats *rwlock.LockStats
				if metrics {
					// A fresh counter block per cell, and a constructor
					// that threads it through every layer of the cell's
					// lock (the wrapper and its inner lock share the
					// block, so nothing double-counts).
					cellStats = new(rwlock.LockStats)
					build = NativeLocksWith(rwlock.WithStats(cellStats))[name]
				}
				l := build()
				r := workload.Run(l, workload.Config{
					Workers:          w,
					ReadFraction:     f,
					DedicatedWriters: dedicated,
					OpsPerWorker:     sc.OpsPerWorker,
					Duration:         sc.Duration,
					CSWork:           sc.CSWork,
					ThinkWork:        sc.ThinkWork,
					Seed:             seed,
					SampleEvery:      sc.SampleEvery,
					MeasureAge:       sc.MeasureAge,
					WriterBurstLen:   sc.WriterBurstLen,
					WriterBurstPause: sc.WriterBurstPause,
					Yield:            sc.Yield,
					Churn:            sc.Churn,
					WriteDeadline:    sc.WriteDeadline,
					VersionBytes:     sc.VersionBytes,
				})
				pt := ScenarioPoint{
					Lock:         name,
					Workers:      w,
					ReadFraction: f,
					OpsPerSec:    r.Throughput(),
					ReadOps:      r.ReadOps,
					WriteOps:     r.WriteOps,
					ShedOps:      r.ShedOps,
					ShedRate:     r.ShedRate(),
					ReadWait:     r.ReadWaitNs.Snapshot(),
					ReadHold:     r.ReadHoldNs.Snapshot(),
					ReadTotal:    r.ReadTotalNs.Snapshot(),
					WriteWait:    r.WriteWaitNs.Snapshot(),
					WriteHold:    r.WriteHoldNs.Snapshot(),
					WriteTotal:   r.WriteTotalNs.Snapshot(),
					Age:          r.AgeNs.Snapshot(),
					BatchSize:    batchSizeSnapshot(l),
				}
				if es, ok := rwlock.EpochStatsOf(l); ok {
					pt.EpochAdvances = es.Advances
					pt.GraceWaits = es.GraceWaits
					pt.RetiredVersions = es.Retired
					pt.ReclaimedVersions = es.Reclaimed
					pt.RetainedVersionsMax = es.MaxRetainedVersions
					pt.RetainedBytesMax = es.MaxRetainedBytes
				}
				if sc.DedicatedWriters > 0 {
					pt.Writers = dedicated
					pt.Readers = w - dedicated
				}
				if cellStats != nil {
					// The workers have joined: the block is quiescent, so
					// the full coherence set holds and the acquire counts
					// must tie to the workload's op counts exactly.
					snap := cellStats.Snapshot()
					if err := checkCellCounters(&snap, sc.Name, name, r.ReadOps, r.WriteOps, r.ShedOps); err != nil {
						return nil, err
					}
					pt.Counters = &snap
				}
				points = append(points, pt)
			}
		}
	}
	return points, nil
}

// batchSizeSnapshot folds a combining lock's batch-size counts into a
// histogram snapshot (nil when l does not combine, or combined
// nothing — the workers have joined, so the quiescence the stats
// accessor requires holds).  The last Sizes bucket aggregates batches
// past the exact range; they are recorded at the observed maximum,
// which is exact when the overflow batch is unique and conservative
// otherwise.
func batchSizeSnapshot(l rwlock.RWLock) *stats.HistSnapshot {
	cs, ok := rwlock.CombinerStatsOf(l)
	if !ok || cs.Batches == 0 {
		return nil
	}
	h := new(stats.Histogram)
	for i, count := range cs.Sizes {
		size := int64(i + 1)
		if i == len(cs.Sizes)-1 && cs.MaxBatch > size {
			size = cs.MaxBatch
		}
		for j := int64(0); j < count; j++ {
			h.Record(size)
		}
	}
	return h.Snapshot()
}

// runSimScenario sweeps simulator systems under RMR accounting.  This
// is the same core the legacy RMRSweep/RMRSweepDSM wrappers run
// through.
func runSimScenario(sc Scenario, seed int64) ([]ScenarioPoint, error) {
	sim := sc.Sim
	type namedBuild struct {
		name  string
		build func(w, r int) *core.System
	}
	var systems []namedBuild
	if sim.build != nil {
		systems = []namedBuild{{name: sc.Name, build: sim.build}}
	} else {
		builders := Builders()
		for _, name := range sim.Systems {
			b := builders[name]
			if b == nil {
				return nil, fmt.Errorf("scenario %s: unknown system %q", sc.Name, name)
			}
			systems = append(systems, namedBuild{name: name, build: b})
		}
	}
	attempts := sim.Attempts
	if attempts <= 0 {
		attempts = 8
	}
	var points []ScenarioPoint
	for _, s := range systems {
		pts := sim.Points
		if pts == nil {
			if s.name == "fig1-swwp" || s.name == "fig2-swrp" {
				pts = SingleWriterPoints()
			} else {
				pts = MultiWriterPoints()
			}
			if len(pts) > 4 { // named grids are long; the scenario view samples them
				pts = [][2]int{pts[0], pts[2], pts[len(pts)-1]}
			}
		}
		for _, pt := range pts {
			row, err := runSimPoint(s.build, pt[0], pt[1], attempts, seed, sim.DSM)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
			reader, writer := row.Reader, row.Writer
			points = append(points, ScenarioPoint{
				System:    s.name,
				Writers:   pt[0],
				Readers:   pt[1],
				ReaderRMR: &reader,
				WriterRMR: &writer,
			})
		}
	}
	return points, nil
}

// runSimPoint measures one (writers, readers) cell on the simulator:
// build the system, optionally re-home its variables for DSM
// accounting, run the seeded random scheduler, and summarize RMRs by
// role.
func runSimPoint(build func(w, r int) *core.System, w, r, attempts int, seed int64, dsm bool) (RMRRow, error) {
	sys := build(w, r)
	if dsm {
		sys.Mem.SetModel(ccsim.ModelDSM)
		for v := 0; v < sys.Mem.NumVars(); v++ {
			sys.Mem.SetHome(ccsim.Var(v), v%(w+r))
		}
	}
	run, err := sys.NewRunner(attempts)
	if err != nil {
		return RMRRow{}, fmt.Errorf("harness: %s w=%d r=%d: %w", sys.Name, w, r, err)
	}
	run.CollectStats = true
	budget := int64(attempts) * int64(w+r) * 1 << 16
	if err := run.Run(ccsim.NewRandomSched(seed+int64(w*1000+r)), budget); err != nil {
		return RMRRow{}, fmt.Errorf("harness: %s w=%d r=%d: %w", sys.Name, w, r, err)
	}
	var readerRMR, writerRMR []int64
	for _, s := range run.Stats {
		if s.Reader {
			readerRMR = append(readerRMR, s.RMR)
		} else {
			writerRMR = append(writerRMR, s.RMR)
		}
	}
	return RMRRow{
		Writers: w,
		Readers: r,
		Reader:  stats.Summarize(readerRMR),
		Writer:  stats.Summarize(writerRMR),
	}, nil
}

// --- presentation ---

// ScenarioTable renders a scenario result with the columns its
// metrics call for: simulator results get RMR columns; native results
// get throughput plus wait-latency tails, and an age column when the
// writer-visibility probe ran.  The full histograms ride only in the
// JSON report — the table is the human summary.
func ScenarioTable(res *ScenarioResult) *stats.Table {
	title := fmt.Sprintf("%s [scenario %s, seed %d, GOMAXPROCS=%d]",
		res.Scenario.Title, res.Scenario.Name, res.Seed, res.GOMAXPROCS)
	if res.Scenario.Sim != nil {
		t := stats.NewTable(title,
			"system", "writers", "readers",
			"reader RMR mean", "reader RMR max",
			"writer RMR mean", "writer RMR max")
		for _, p := range res.Points {
			t.AddRow(p.System,
				fmt.Sprintf("%d", p.Writers),
				fmt.Sprintf("%d", p.Readers),
				fmt.Sprintf("%.1f", p.ReaderRMR.Mean),
				fmt.Sprintf("%d", p.ReaderRMR.Max),
				fmt.Sprintf("%.1f", p.WriterRMR.Mean),
				fmt.Sprintf("%d", p.WriterRMR.Max))
		}
		return t
	}
	hasAge, hasBatch, hasEpoch := false, false, false
	hasShed := res.Scenario.WriteDeadline > 0 || res.Scenario.WriteDeadlineUs > 0
	for _, p := range res.Points {
		if p.Age != nil {
			hasAge = true
		}
		if p.BatchSize != nil {
			hasBatch = true
		}
		if p.EpochAdvances > 0 {
			hasEpoch = true
		}
	}
	sharded := len(res.Scenario.Stripes) > 0
	headers := []string{"lock", "workers", "read%"}
	if sharded {
		// The serving-tier axes ride on every row: the grid size and
		// skew identify the cell, B/lock is the footprint that cell's
		// grid pays per stripe, hot rd/s is the skew made visible.
		headers = append(headers, "stripes", "zipf s", "B/lock")
	}
	adaptive := len(res.Scenario.HotSets) > 0
	if adaptive {
		// The adaptive axis: the budget identifies the cell (0 = the
		// all-Slim baseline), promo/demo and hot max tell how the
		// maintainer spent it, B/lk hi is the footprint at the
		// promotion high-water mark.
		headers = append(headers, "hotset", "promo", "demo", "hot max", "B/lk hi")
	}
	headers = append(headers, "ops/s")
	if sharded {
		headers = append(headers, "hot rd/s")
	}
	headers = append(headers,
		"rd wait p50", "rd wait p99", "rd wait p99.9",
		"wr wait p50", "wr wait p99", "wr wait p99.9")
	if hasShed {
		headers = append(headers, "shed%")
	}
	if hasAge {
		headers = append(headers, "age p50", "age p99")
	}
	if hasBatch {
		headers = append(headers, "batch p50", "batch p99", "batch max")
	}
	if hasEpoch {
		// The age-frontier columns: how often the fast path was closed
		// (grace waits) against what deferred reclamation held back at
		// its worst (retained versions / bytes).  Non-epoch rows show
		// "-": they retire nothing and retain nothing.
		headers = append(headers, "grace", "ret vers max", "ret bytes max")
	}
	t := stats.NewTable(title, headers...)
	q := func(h *stats.HistSnapshot, pick func(*stats.HistSnapshot) int64) string {
		if h == nil {
			return "-"
		}
		return fmt.Sprintf("%d", pick(h))
	}
	for _, p := range res.Points {
		readPct := fmt.Sprintf("%.4g", p.ReadFraction*100)
		if p.Readers > 0 || p.Writers > 0 {
			readPct = fmt.Sprintf("%dr/%dw", p.Readers, p.Writers)
		}
		row := []string{
			p.Lock,
			fmt.Sprintf("%d", p.Workers),
			readPct,
		}
		if sharded {
			row = append(row,
				fmt.Sprintf("%d", p.Stripes),
				fmt.Sprintf("%.4g", p.ZipfS),
				fmt.Sprintf("%.0f", p.BytesPerLock))
		}
		if adaptive {
			// Budget-0 rows are the all-Slim baseline: zero counters and
			// the plain B/lock as the high water, so every row stays
			// numeric for downstream shape checks.
			high := p.BytesPerLockHigh
			if p.HotSetBudget == 0 {
				high = p.BytesPerLock
			}
			row = append(row,
				fmt.Sprintf("%d", p.HotSetBudget),
				fmt.Sprintf("%d", p.Promotions),
				fmt.Sprintf("%d", p.Demotions),
				fmt.Sprintf("%d", p.HotSetMax),
				fmt.Sprintf("%.1f", high))
		}
		row = append(row, fmt.Sprintf("%.0f", p.OpsPerSec))
		if sharded {
			hot := 0.0
			if p.HotReadOps > 0 && res.Scenario.OpsPerWorker > 0 && p.OpsPerSec > 0 {
				// hot rd/s = hot reads × (ops/s ÷ total ops): elapsed
				// time is not carried per point, so reconstruct it from
				// the throughput the point already reports.
				hot = float64(p.HotReadOps) * p.OpsPerSec / float64(p.ReadOps+p.WriteOps)
			}
			row = append(row, fmt.Sprintf("%.0f", hot))
		}
		row = append(row,
			q(p.ReadWait, func(h *stats.HistSnapshot) int64 { return h.P50 }),
			q(p.ReadWait, func(h *stats.HistSnapshot) int64 { return h.P99 }),
			q(p.ReadWait, func(h *stats.HistSnapshot) int64 { return h.P999 }),
			q(p.WriteWait, func(h *stats.HistSnapshot) int64 { return h.P50 }),
			q(p.WriteWait, func(h *stats.HistSnapshot) int64 { return h.P99 }),
			q(p.WriteWait, func(h *stats.HistSnapshot) int64 { return h.P999 }),
		)
		if hasShed {
			row = append(row, fmt.Sprintf("%.1f", p.ShedRate*100))
		}
		if hasAge {
			row = append(row,
				q(p.Age, func(h *stats.HistSnapshot) int64 { return h.P50 }),
				q(p.Age, func(h *stats.HistSnapshot) int64 { return h.P99 }))
		}
		if hasBatch {
			row = append(row,
				q(p.BatchSize, func(h *stats.HistSnapshot) int64 { return h.P50 }),
				q(p.BatchSize, func(h *stats.HistSnapshot) int64 { return h.P99 }),
				q(p.BatchSize, func(h *stats.HistSnapshot) int64 { return h.Max }))
		}
		if hasEpoch {
			if p.EpochAdvances > 0 {
				row = append(row,
					fmt.Sprintf("%d", p.GraceWaits),
					fmt.Sprintf("%d", p.RetainedVersionsMax),
					fmt.Sprintf("%d", p.RetainedBytesMax))
			} else {
				row = append(row, "-", "-", "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}
