package harness

import (
	"sort"
	"strings"
	"testing"
	"time"
)

func TestRMRSweepFlatForFig1(t *testing.T) {
	builders := Builders()
	rows, err := RMRSweep(builders["fig1-swwp"], [][2]int{{1, 2}, {1, 16}}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Theorem 1: the writer's worst RMR must not grow with readers.
	if rows[1].Writer.Max > rows[0].Writer.Max+2 {
		t.Fatalf("fig1 writer RMR grew: %d -> %d", rows[0].Writer.Max, rows[1].Writer.Max)
	}
}

func TestRMRSweepGrowsForCentralized(t *testing.T) {
	builders := Builders()
	rows, err := RMRSweep(builders["centralized"], [][2]int{{1, 2}, {8, 64}}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Reader.Max <= rows[0].Reader.Max {
		t.Fatalf("centralized reader RMR did not grow: %d -> %d", rows[0].Reader.Max, rows[1].Reader.Max)
	}
}

func TestRMRSweepDSMExceedsCC(t *testing.T) {
	builders := Builders()
	pts := [][2]int{{1, 16}}
	cc, err := RMRSweep(builders["fig1-swwp"], pts, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	dsm, err := RMRSweepDSM(builders["fig1-swwp"], pts, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dsm[0].Reader.Max <= cc[0].Reader.Max {
		t.Fatalf("DSM reader RMR (%d) should exceed CC (%d)", dsm[0].Reader.Max, cc[0].Reader.Max)
	}
}

func TestRMRTableShape(t *testing.T) {
	builders := Builders()
	rows, err := RMRSweep(builders["mwsf"], [][2]int{{2, 2}}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := RMRTable("title", rows).Render()
	if !strings.Contains(out, "title") || !strings.Contains(out, "writer RMR max") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestBuildersCoverAllAlgorithms(t *testing.T) {
	b := Builders()
	for _, name := range []string{"fig1-swwp", "fig2-swrp", "mwsf", "mwrp", "mwwp", "centralized", "pfticket", "taskfair", "tournament"} {
		f, ok := b[name]
		if !ok {
			t.Fatalf("missing builder %q", name)
		}
		w := 1
		sys := f(w, 2)
		if sys == nil || sys.Mem == nil || len(sys.Progs) == 0 {
			t.Fatalf("builder %q produced a broken system", name)
		}
	}
}

func TestThroughputSweepAndTable(t *testing.T) {
	pts := ThroughputSweep([]int{2}, []float64{0.9}, 300, 1)
	if len(pts) != len(LockNames()) {
		t.Fatalf("got %d points, want %d", len(pts), len(LockNames()))
	}
	for _, p := range pts {
		if p.OpsPerSec <= 0 {
			t.Fatalf("lock %s reported no throughput", p.Lock)
		}
	}
	out := ThroughputTable("tp", pts).Render()
	for _, name := range LockNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("table missing %s:\n%s", name, out)
		}
	}
}

func TestPrioritySweepAndTable(t *testing.T) {
	pts := PrioritySweep(2, 300, 1)
	if len(pts) != len(LockNames()) {
		t.Fatalf("got %d points, want %d", len(pts), len(LockNames()))
	}
	for _, p := range pts {
		if p.WriteP50Ns <= 0 || p.ReadP50Ns <= 0 {
			t.Fatalf("lock %s missing latencies: %+v", p.Lock, p)
		}
	}
	out := PriorityTable("prio", pts).Render()
	if !strings.Contains(out, "write p99 ns") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestNativeLocksConstructAll(t *testing.T) {
	for name, f := range NativeLocks() {
		l := f()
		tok := l.Lock()
		l.Unlock(tok)
		rt := l.RLock()
		l.RUnlock(rt)
		_ = name
	}
}

func TestRegistryNameListsConsistent(t *testing.T) {
	builders := NativeLocks()
	for _, names := range [][]string{LockNames(), AllLockNames(), OversubLockNames()} {
		for _, name := range names {
			if builders[name] == nil {
				t.Fatalf("name list entry %q missing from NativeLocks", name)
			}
		}
	}
	// Every registry entry must be presentable: AllLockNames is the
	// complete ordering.
	if len(AllLockNames()) != len(builders) {
		t.Fatalf("AllLockNames has %d entries, registry %d", len(AllLockNames()), len(builders))
	}
}

func TestSortedNameLists(t *testing.T) {
	// The sorted listings back error messages: they must cover the
	// same sets as the presentation orders and actually be sorted.
	sortedLocks := SortedLockNames()
	if !sort.StringsAreSorted(sortedLocks) {
		t.Fatalf("SortedLockNames not sorted: %v", sortedLocks)
	}
	if len(sortedLocks) != len(AllLockNames()) {
		t.Fatalf("SortedLockNames has %d entries, AllLockNames %d",
			len(sortedLocks), len(AllLockNames()))
	}
	sortedScenarios := SortedScenarioNames()
	if !sort.StringsAreSorted(sortedScenarios) {
		t.Fatalf("SortedScenarioNames not sorted: %v", sortedScenarios)
	}
	if len(sortedScenarios) != len(ScenarioNames()) {
		t.Fatalf("SortedScenarioNames has %d entries, ScenarioNames %d",
			len(sortedScenarios), len(ScenarioNames()))
	}
}

func TestSelectLockNamesParkVariants(t *testing.T) {
	got, err := SelectLockNames([]string{"MWSF/park", "MWSF"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "MWSF" || got[1] != "MWSF/park" {
		t.Fatalf("SelectLockNames = %v, want canonical [MWSF MWSF/park]", got)
	}
	if _, err := SelectLockNames(nil); err != nil {
		t.Fatal(err)
	}
}

func TestOversubscribedSweep(t *testing.T) {
	pts := OversubscribedSweepLocks([]string{"MWSF/park", "sync.RWMutex"},
		[]int{16}, []float64{0.9}, 20*time.Millisecond, 1)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.OpsPerSec <= 0 {
			t.Fatalf("lock %s reported no throughput", p.Lock)
		}
		if p.Workers != 16 {
			t.Fatalf("point kept workers=%d, want 16", p.Workers)
		}
	}
	out := ThroughputTable("oversub", pts).Render()
	if !strings.Contains(out, "MWSF/park") {
		t.Fatalf("table missing park column:\n%s", out)
	}
}
