package harness

import (
	"sort"
	"strings"
	"testing"
	"time"

	"rwsync/rwlock"
)

func TestRMRSweepFlatForFig1(t *testing.T) {
	builders := Builders()
	rows, err := RMRSweep(builders["fig1-swwp"], [][2]int{{1, 2}, {1, 16}}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Theorem 1: the writer's worst RMR must not grow with readers.
	if rows[1].Writer.Max > rows[0].Writer.Max+2 {
		t.Fatalf("fig1 writer RMR grew: %d -> %d", rows[0].Writer.Max, rows[1].Writer.Max)
	}
}

func TestRMRSweepGrowsForCentralized(t *testing.T) {
	builders := Builders()
	rows, err := RMRSweep(builders["centralized"], [][2]int{{1, 2}, {8, 64}}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Reader.Max <= rows[0].Reader.Max {
		t.Fatalf("centralized reader RMR did not grow: %d -> %d", rows[0].Reader.Max, rows[1].Reader.Max)
	}
}

func TestRMRSweepDSMExceedsCC(t *testing.T) {
	builders := Builders()
	pts := [][2]int{{1, 16}}
	cc, err := RMRSweep(builders["fig1-swwp"], pts, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	dsm, err := RMRSweepDSM(builders["fig1-swwp"], pts, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dsm[0].Reader.Max <= cc[0].Reader.Max {
		t.Fatalf("DSM reader RMR (%d) should exceed CC (%d)", dsm[0].Reader.Max, cc[0].Reader.Max)
	}
}

func TestRMRTableShape(t *testing.T) {
	builders := Builders()
	rows, err := RMRSweep(builders["mwsf"], [][2]int{{2, 2}}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := RMRTable("title", rows).Render()
	if !strings.Contains(out, "title") || !strings.Contains(out, "writer RMR max") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestBuildersCoverAllAlgorithms(t *testing.T) {
	b := Builders()
	for _, name := range []string{"fig1-swwp", "fig2-swrp", "mwsf", "mwrp", "mwwp", "centralized", "pfticket", "taskfair", "tournament"} {
		f, ok := b[name]
		if !ok {
			t.Fatalf("missing builder %q", name)
		}
		w := 1
		sys := f(w, 2)
		if sys == nil || sys.Mem == nil || len(sys.Progs) == 0 {
			t.Fatalf("builder %q produced a broken system", name)
		}
	}
}

func TestThroughputSweepAndTable(t *testing.T) {
	pts := ThroughputSweep([]int{2}, []float64{0.9}, 300, 1)
	if len(pts) != len(LockNames()) {
		t.Fatalf("got %d points, want %d", len(pts), len(LockNames()))
	}
	for _, p := range pts {
		if p.OpsPerSec <= 0 {
			t.Fatalf("lock %s reported no throughput", p.Lock)
		}
	}
	out := ThroughputTable("tp", pts).Render()
	for _, name := range LockNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("table missing %s:\n%s", name, out)
		}
	}
}

func TestPrioritySweepAndTable(t *testing.T) {
	pts := PrioritySweep(2, 300, 1)
	if len(pts) != len(LockNames()) {
		t.Fatalf("got %d points, want %d", len(pts), len(LockNames()))
	}
	for _, p := range pts {
		if p.WriteP50Ns <= 0 || p.ReadP50Ns <= 0 {
			t.Fatalf("lock %s missing latencies: %+v", p.Lock, p)
		}
	}
	out := PriorityTable("prio", pts).Render()
	if !strings.Contains(out, "write p99 ns") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestNativeLocksConstructAll(t *testing.T) {
	for name, f := range NativeLocks() {
		l := f()
		tok := l.Lock()
		l.Unlock(tok)
		rt := l.RLock()
		l.RUnlock(rt)
		_ = name
	}
}

func TestRegistryNameListsConsistent(t *testing.T) {
	builders := NativeLocks()
	for _, names := range [][]string{LockNames(), AllLockNames(), OversubLockNames()} {
		for _, name := range names {
			if builders[name] == nil {
				t.Fatalf("name list entry %q missing from NativeLocks", name)
			}
		}
	}
	// Every registry entry must be presentable: AllLockNames is the
	// complete ordering.
	if len(AllLockNames()) != len(builders) {
		t.Fatalf("AllLockNames has %d entries, registry %d", len(AllLockNames()), len(builders))
	}
}

func TestSortedNameLists(t *testing.T) {
	// The sorted listings back error messages: they must cover the
	// same sets as the presentation orders and actually be sorted.
	sortedLocks := SortedLockNames()
	if !sort.StringsAreSorted(sortedLocks) {
		t.Fatalf("SortedLockNames not sorted: %v", sortedLocks)
	}
	if len(sortedLocks) != len(AllLockNames()) {
		t.Fatalf("SortedLockNames has %d entries, AllLockNames %d",
			len(sortedLocks), len(AllLockNames()))
	}
	sortedScenarios := SortedScenarioNames()
	if !sort.StringsAreSorted(sortedScenarios) {
		t.Fatalf("SortedScenarioNames not sorted: %v", sortedScenarios)
	}
	if len(sortedScenarios) != len(ScenarioNames()) {
		t.Fatalf("SortedScenarioNames has %d entries, ScenarioNames %d",
			len(sortedScenarios), len(ScenarioNames()))
	}
}

func TestSelectLockNamesParkVariants(t *testing.T) {
	got, err := SelectLockNames([]string{"MWSF/park", "MWSF"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "MWSF" || got[1] != "MWSF/park" {
		t.Fatalf("SelectLockNames = %v, want canonical [MWSF MWSF/park]", got)
	}
	if _, err := SelectLockNames(nil); err != nil {
		t.Fatal(err)
	}
}

func TestOversubscribedSweep(t *testing.T) {
	pts := OversubscribedSweepLocks([]string{"MWSF/park", "sync.RWMutex"},
		[]int{16}, []float64{0.9}, 20*time.Millisecond, 1)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.OpsPerSec <= 0 {
			t.Fatalf("lock %s reported no throughput", p.Lock)
		}
		if p.Workers != 16 {
			t.Fatalf("point kept workers=%d, want 16", p.Workers)
		}
	}
	out := ThroughputTable("oversub", pts).Render()
	if !strings.Contains(out, "MWSF/park") {
		t.Fatalf("table missing park column:\n%s", out)
	}
}

// TestNativeLocksWithStats pins the -metrics seam: a WithStats extra
// must reach every layer of every registry row that is inside the
// stats seam — one acquire counted per passage, nothing
// double-counted — while the documented outside rows (Slim, the
// classical baselines, sync.RWMutex) stay silent without erroring.
func TestNativeLocksWithStats(t *testing.T) {
	outside := map[string]bool{
		"SlimBravo": true, "SlimEpoch": true,
		"CentralizedRW": true, "CentralizedRW/park": true,
		"PhaseFairRW": true, "PhaseFairRW/park": true,
		"TaskFairRW": true, "TaskFairRW/park": true,
		"sync.RWMutex": true,
	}
	for name := range NativeLocks() {
		st := new(rwlock.LockStats)
		l := NativeLocksWith(rwlock.WithStats(st))[name]()
		for i := 0; i < 3; i++ {
			tok := l.Lock()
			l.Unlock(tok)
			rt := l.RLock()
			l.RUnlock(rt)
		}
		snap := st.Snapshot()
		if err := snap.CheckCoherence(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if outside[name] {
			if snap.ReadAcquires != 0 || snap.WriteAcquires != 0 {
				t.Errorf("%s: outside the stats seam but counted %d/%d acquires",
					name, snap.ReadAcquires, snap.WriteAcquires)
			}
			continue
		}
		if snap.ReadAcquires != 3 || snap.WriteAcquires != 3 {
			t.Errorf("%s: counted %d reads / %d writes, want 3/3",
				name, snap.ReadAcquires, snap.WriteAcquires)
		}
	}
}

// TestRunScenarioMetrics pins the engine-level contract: a Metrics run
// carries one coherent counter block per point (validated against the
// op counts by the runner itself) and records the metrics bit.
func TestRunScenarioMetrics(t *testing.T) {
	sc, ok := ScenarioByName("throughput")
	if !ok {
		t.Fatal("throughput scenario not registered")
	}
	res, err := RunScenario(sc, ScenarioOptions{
		Seed:    1,
		Quick:   true,
		Metrics: true,
		Ops:     200,
		Workers: []int{2},
		Locks:   []string{"MWSF/combine", "sync.RWMutex"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics {
		t.Fatal("metrics bit not recorded on the result")
	}
	var combined uint64
	for _, p := range res.Points {
		if p.Counters == nil {
			t.Fatalf("lock %s: no counters", p.Lock)
		}
		if p.Lock == "MWSF/combine" {
			combined = p.Counters.CombinedOps
		}
	}
	// The combining row's closure writes must have flowed through the
	// combiner's counters, not just the wrapper's.
	if combined == 0 {
		t.Fatal("MWSF/combine cell counted no combined ops")
	}
}
