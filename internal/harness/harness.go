package harness

import (
	"fmt"
	"sort"
	"time"

	"rwsync/internal/core"
	"rwsync/internal/stats"
	"rwsync/rwlock"
)

// RMRRow is one sweep point of an RMR experiment.
type RMRRow struct {
	Writers int
	Readers int
	// Reader and Writer summarize RMRs per completed attempt by role.
	Reader stats.Summary
	Writer stats.Summary
}

// rmrScenario routes the legacy build-function interface through the
// unified RunScenario core via SimShape's private build hook.
func rmrScenario(build func(writers, readers int) *core.System, points [][2]int, attempts int, seed int64, dsm bool) ([]RMRRow, error) {
	res, err := RunScenario(Scenario{
		Name: "rmr-sweep",
		Sim:  &SimShape{Points: points, Attempts: attempts, DSM: dsm, build: build},
	}, ScenarioOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	rows := make([]RMRRow, 0, len(res.Points))
	for _, p := range res.Points {
		rows = append(rows, RMRRow{
			Writers: p.Writers,
			Readers: p.Readers,
			Reader:  *p.ReaderRMR,
			Writer:  *p.WriterRMR,
		})
	}
	return rows, nil
}

// RMRSweep summarizes per-attempt RMR counts under the default
// cache-coherent memory model.
func RMRSweep(build func(writers, readers int) *core.System, points [][2]int, attempts int, seed int64) ([]RMRRow, error) {
	return rmrScenario(build, points, attempts, seed, false)
}

// RMRSweepDSM is RMRSweep under the DSM accounting model (experiment
// E9): variables are homed round-robin across the processes and there
// are no caches, so every spin iteration on a remote variable is
// charged.  The paper proves (via Danek & Hadzilacos's lower bound)
// that NO reader-writer algorithm with concurrent entering can be
// sublinear in this model; this sweep shows our CC-constant algorithms
// indeed lose their bound, i.e. the CC result is model-specific.
func RMRSweepDSM(build func(writers, readers int) *core.System, points [][2]int, attempts int, seed int64) ([]RMRRow, error) {
	return rmrScenario(build, points, attempts, seed, true)
}

// RMRTable formats sweep rows as a table: RMRs per passage by role.
func RMRTable(title string, rows []RMRRow) *stats.Table {
	t := stats.NewTable(title,
		"writers", "readers",
		"reader RMR mean", "reader RMR max",
		"writer RMR mean", "writer RMR max")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Writers),
			fmt.Sprintf("%d", r.Readers),
			fmt.Sprintf("%.1f", r.Reader.Mean),
			fmt.Sprintf("%d", r.Reader.Max),
			fmt.Sprintf("%.1f", r.Writer.Mean),
			fmt.Sprintf("%d", r.Writer.Max),
		)
	}
	return t
}

// SingleWriterPoints is the standard sweep for E1/E2: one writer,
// doubling readers.
func SingleWriterPoints() [][2]int {
	return [][2]int{{1, 1}, {1, 2}, {1, 4}, {1, 8}, {1, 16}, {1, 32}, {1, 64}}
}

// MultiWriterPoints is the standard sweep for E3: doubling both roles.
func MultiWriterPoints() [][2]int {
	return [][2]int{{1, 2}, {2, 2}, {2, 8}, {4, 8}, {4, 16}, {8, 32}, {8, 64}}
}

// Builders returns the named system constructors of every algorithm
// that participates in the RMR experiments.
func Builders() map[string]func(w, r int) *core.System {
	return map[string]func(w, r int) *core.System{
		"fig1-swwp": func(w, r int) *core.System {
			if w != 1 {
				panic("fig1 is single-writer")
			}
			return core.NewFig1System(r)
		},
		"fig2-swrp": func(w, r int) *core.System {
			if w != 1 {
				panic("fig2 is single-writer")
			}
			return core.NewFig2System(r)
		},
		"mwsf":        core.NewMWSFSystem,
		"mwrp":        core.NewMWRPSystem,
		"mwwp":        core.NewMWWPSystem,
		"centralized": core.NewCentralizedSystem,
		"pfticket":    core.NewPFTicketSystem,
		"taskfair":    core.NewTaskFairSystem,
		"tournament": func(w, r int) *core.System {
			return core.NewTournamentSystem(w + r)
		},
		"epoch-read": func(w, r int) *core.System {
			if w != 1 {
				panic("epoch-read is single-writer")
			}
			return core.NewEpochSystem(r)
		},
	}
}

// boundedWriters is the Anderson-array capacity of the registry's
// "/bounded" lock variants.  One constant for every sweep: sweeping
// the same lock with two different bounds silently compares two
// different memory layouts.  64 comfortably exceeds every worker
// count the classic experiments use, so in those grids the bounded
// variants measure the Anderson array itself, not its admission gate;
// the writer-churn scenario deliberately exceeds it so the gate shows
// up in the writer-wait tail.
const boundedWriters = 64

// NativeLocks returns the named native lock constructors used in the
// throughput and priority experiments.  The Bravo(...) entries wrap
// the paper's multi-writer locks in the BRAVO sharded reader fast path
// (arXiv:1810.01553), the repo's reader-scalability layer.  The
// "/park" entries are the same locks with the SpinThenPark wait
// strategy — the oversubscription configuration; sync.RWMutex needs
// no variant because its waiters always park in the runtime.  The
// multi-writer locks default to the unbounded MCS writer arbitration;
// the "/bounded" entries select the Anderson array capped at
// boundedWriters concurrent write attempts (rwlock.WithBoundedWriters)
// and the "/combine" entries select flat-combining arbitration
// (rwlock.WithCombiningWriters, batching over the MCS queue), so the
// registry exposes every writerMutex implementation.  The "/epoch"
// entries wrap the same cores in the epoch-stamped reader fast path
// (rwlock.NewEpoch* — zero shared-word RMWs per read passage, writers
// pay a grace wait); "/epoch/lazy8" and "/epoch/lazy64" stretch the
// version-reclaim cadence (rwlock.WithEpochReclaimEvery), the knob
// the age-frontier scenario sweeps.
//
// The serving-tier entries put the reader fast paths in their grid
// builds: "Bravo(MWSF)/shared" and "MWSF/epoch/shared" are the full
// wrappers on the package-default shared reader arena (the private
// per-lock table/registry is shed; see rwlock.WithSharedReaderTable),
// and "SlimBravo"/"SlimEpoch" are the 16-byte packed variants the
// 10^5–10^6-stripe serving maps are built from.
func NativeLocks() map[string]func() rwlock.RWLock { return NativeLocksWith() }

// NativeLocksWith is NativeLocks with extra options appended to every
// constructor — the seam the -metrics runs use to hand each measured
// cell's locks one rwlock.WithStats counter block.  Three registry
// rows sit outside the stats seam by design and silently ignore a
// WithStats extra: the Slim locks (a per-instance stats pointer would
// double the 16-byte footprint — observe a Slim grid through
// rwmap.Map.Stats instead), the classical baselines (they model the
// literature's algorithms, not this package's layers), and
// sync.RWMutex (no constructor options at all).  Their instrumented
// cells report an all-zero counter block.
func NativeLocksWith(extra ...rwlock.Option) map[string]func() rwlock.RWLock {
	park := rwlock.WithWaitStrategy(rwlock.SpinThenPark)
	bound := rwlock.WithBoundedWriters(boundedWriters)
	comb := rwlock.WithCombiningWriters()
	shared := rwlock.WithSharedReaderTable(rwlock.DefaultReaderTable())
	// opt appends the extras to a constructor's own options; the base
	// slice is a fresh vararg allocation per call, so the append never
	// aliases another constructor's options.
	opt := func(base ...rwlock.Option) []rwlock.Option { return append(base, extra...) }
	return map[string]func() rwlock.RWLock{
		"MWSF":               func() rwlock.RWLock { return rwlock.NewMWSF(opt()...) },
		"MWRP":               func() rwlock.RWLock { return rwlock.NewMWRP(opt()...) },
		"MWWP":               func() rwlock.RWLock { return rwlock.NewMWWP(opt()...) },
		"MWSF/park":          func() rwlock.RWLock { return rwlock.NewMWSF(opt(park)...) },
		"MWRP/park":          func() rwlock.RWLock { return rwlock.NewMWRP(opt(park)...) },
		"MWWP/park":          func() rwlock.RWLock { return rwlock.NewMWWP(opt(park)...) },
		"MWSF/bounded":       func() rwlock.RWLock { return rwlock.NewMWSF(opt(bound)...) },
		"MWRP/bounded":       func() rwlock.RWLock { return rwlock.NewMWRP(opt(bound)...) },
		"MWWP/bounded":       func() rwlock.RWLock { return rwlock.NewMWWP(opt(bound)...) },
		"MWSF/bounded/park":  func() rwlock.RWLock { return rwlock.NewMWSF(opt(bound, park)...) },
		"MWRP/bounded/park":  func() rwlock.RWLock { return rwlock.NewMWRP(opt(bound, park)...) },
		"MWWP/bounded/park":  func() rwlock.RWLock { return rwlock.NewMWWP(opt(bound, park)...) },
		"MWSF/combine":       func() rwlock.RWLock { return rwlock.NewMWSF(opt(comb)...) },
		"MWRP/combine":       func() rwlock.RWLock { return rwlock.NewMWRP(opt(comb)...) },
		"MWWP/combine":       func() rwlock.RWLock { return rwlock.NewMWWP(opt(comb)...) },
		"MWSF/combine/park":  func() rwlock.RWLock { return rwlock.NewMWSF(opt(comb, park)...) },
		"MWRP/combine/park":  func() rwlock.RWLock { return rwlock.NewMWRP(opt(comb, park)...) },
		"MWWP/combine/park":  func() rwlock.RWLock { return rwlock.NewMWWP(opt(comb, park)...) },
		"MWSF/epoch":         func() rwlock.RWLock { return rwlock.NewEpochMWSF(opt()...) },
		"MWRP/epoch":         func() rwlock.RWLock { return rwlock.NewEpochMWRP(opt()...) },
		"MWWP/epoch":         func() rwlock.RWLock { return rwlock.NewEpochMWWP(opt()...) },
		"MWSF/epoch/park":    func() rwlock.RWLock { return rwlock.NewEpochMWSF(opt(park)...) },
		"MWRP/epoch/park":    func() rwlock.RWLock { return rwlock.NewEpochMWRP(opt(park)...) },
		"MWWP/epoch/park":    func() rwlock.RWLock { return rwlock.NewEpochMWWP(opt(park)...) },
		"MWSF/epoch/lazy8":   func() rwlock.RWLock { return rwlock.NewEpochMWSF(opt(rwlock.WithEpochReclaimEvery(8))...) },
		"MWSF/epoch/lazy64":  func() rwlock.RWLock { return rwlock.NewEpochMWSF(opt(rwlock.WithEpochReclaimEvery(64))...) },
		"Bravo(MWSF)":        func() rwlock.RWLock { return rwlock.NewBravoMWSF(opt()...) },
		"Bravo(MWRP)":        func() rwlock.RWLock { return rwlock.NewBravoMWRP(opt()...) },
		"Bravo(MWWP)":        func() rwlock.RWLock { return rwlock.NewBravoMWWP(opt()...) },
		"Bravo(MWSF)/park":   func() rwlock.RWLock { return rwlock.NewBravoMWSF(opt(park)...) },
		"Bravo(MWRP)/park":   func() rwlock.RWLock { return rwlock.NewBravoMWRP(opt(park)...) },
		"Bravo(MWWP)/park":   func() rwlock.RWLock { return rwlock.NewBravoMWWP(opt(park)...) },
		"Bravo(MWSF)/shared": func() rwlock.RWLock { return rwlock.NewBravoMWSF(opt(shared)...) },
		"MWSF/epoch/shared":  func() rwlock.RWLock { return rwlock.NewEpochMWSF(opt(shared)...) },
		"SlimBravo":          func() rwlock.RWLock { return rwlock.NewSlimBravo(opt()...) },
		"SlimEpoch":          func() rwlock.RWLock { return rwlock.NewSlimEpoch(opt()...) },
		"CentralizedRW":      func() rwlock.RWLock { return rwlock.NewCentralizedRW(opt()...) },
		"CentralizedRW/park": func() rwlock.RWLock { return rwlock.NewCentralizedRW(opt(park)...) },
		"PhaseFairRW":        func() rwlock.RWLock { return rwlock.NewPhaseFairRW(opt()...) },
		"PhaseFairRW/park":   func() rwlock.RWLock { return rwlock.NewPhaseFairRW(opt(park)...) },
		"TaskFairRW":         func() rwlock.RWLock { return rwlock.NewTaskFairRW(opt()...) },
		"TaskFairRW/park":    func() rwlock.RWLock { return rwlock.NewTaskFairRW(opt(park)...) },
		"sync.RWMutex":       func() rwlock.RWLock { return rwlock.NewRWMutexLock() },
	}
}

// LockNames returns the canonical presentation order of the DEFAULT
// sweep: the spin-strategy locks, as before this PR.  The "/park"
// registry entries are opt-in (AllLockNames, or -locks on rwbench):
// doubling every default table would bury the spin-vs-spin
// comparisons the paper's experiments are about.
func LockNames() []string {
	return []string{
		"MWSF", "Bravo(MWSF)",
		"MWRP", "Bravo(MWRP)",
		"MWWP", "Bravo(MWWP)",
		"CentralizedRW", "PhaseFairRW", "TaskFairRW", "sync.RWMutex",
	}
}

// AllLockNames returns every registry entry in presentation order:
// each spin lock followed by its /park variant, with the multi-writer
// locks' bounded-arbitration ("/bounded") and flat-combining
// ("/combine") builds alongside.
func AllLockNames() []string {
	return []string{
		"MWSF", "MWSF/park", "MWSF/bounded", "MWSF/bounded/park",
		"MWSF/combine", "MWSF/combine/park",
		"MWSF/epoch", "MWSF/epoch/park", "MWSF/epoch/lazy8", "MWSF/epoch/lazy64",
		"MWSF/epoch/shared",
		"Bravo(MWSF)", "Bravo(MWSF)/park", "Bravo(MWSF)/shared",
		"SlimBravo", "SlimEpoch",
		"MWRP", "MWRP/park", "MWRP/bounded", "MWRP/bounded/park",
		"MWRP/combine", "MWRP/combine/park",
		"MWRP/epoch", "MWRP/epoch/park",
		"Bravo(MWRP)", "Bravo(MWRP)/park",
		"MWWP", "MWWP/park", "MWWP/bounded", "MWWP/bounded/park",
		"MWWP/combine", "MWWP/combine/park",
		"MWWP/epoch", "MWWP/epoch/park",
		"Bravo(MWWP)", "Bravo(MWWP)/park",
		"CentralizedRW", "CentralizedRW/park",
		"PhaseFairRW", "PhaseFairRW/park",
		"TaskFairRW", "TaskFairRW/park",
		"sync.RWMutex",
	}
}

// SortedLockNames returns every registry entry sorted lexically — the
// order for error listings and other lookup aids, where a reader is
// scanning for one name, not reading the families in presentation
// order.
func SortedLockNames() []string {
	names := AllLockNames()
	sort.Strings(names)
	return names
}

// OversubLockNames is the default lock set of the oversubscription
// sweep: each constant-RMR discipline spin vs park, with sync.RWMutex
// as the always-parking baseline.
func OversubLockNames() []string {
	return []string{
		"MWSF", "MWSF/park", "Bravo(MWSF)", "Bravo(MWSF)/park",
		"MWWP", "MWWP/park",
		"sync.RWMutex",
	}
}

// ChurnLockNames is the lock set of the writer-churn scenario: the
// unbounded MCS arbitration vs the bounded Anderson arbitration vs
// the flat combiner (all parking — the churn oversubscribes by
// construction) vs the runtime baseline.  All three writerMutex
// implementations over the same core, so the writer-wait tail
// isolates the arbitration layer.
func ChurnLockNames() []string {
	return []string{
		"MWSF/park", "MWSF/bounded/park", "MWSF/combine/park",
		"sync.RWMutex",
	}
}

// SelectLockNames validates and canonicalizes a lock-name subset: it
// returns the requested names in AllLockNames order, or an error
// naming the unknown entry.  An empty request selects the default
// (spin) locks.
func SelectLockNames(requested []string) ([]string, error) {
	if len(requested) == 0 {
		return LockNames(), nil
	}
	want := make(map[string]bool, len(requested))
	for _, name := range requested {
		want[name] = true
	}
	var out []string
	for _, name := range AllLockNames() {
		if want[name] {
			out = append(out, name)
			delete(want, name)
		}
	}
	for name := range want {
		return nil, fmt.Errorf("unknown lock %q (have %v)", name, SortedLockNames())
	}
	return out, nil
}

// ThroughputPoint is one cell of the E7 (and oversubscription)
// experiments.  The json tags are the rwbench -json schema.
type ThroughputPoint struct {
	Lock         string  `json:"lock"`
	Workers      int     `json:"workers"`
	ReadFraction float64 `json:"read_fraction"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// ThroughputSweep measures ops/sec for every lock at every (workers,
// readFraction) point.
func ThroughputSweep(workers []int, fractions []float64, opsPerWorker int, seed int64) []ThroughputPoint {
	return ThroughputSweepLocks(LockNames(), workers, fractions, opsPerWorker, seed)
}

// ThroughputSweepLocks is ThroughputSweep restricted to the named
// locks (names as in AllLockNames; see SelectLockNames for
// validation).  It is a thin adapter over the unified RunScenario
// core: the "throughput" registry entry with the caller's grids.
func ThroughputSweepLocks(names []string, workers []int, fractions []float64, opsPerWorker int, seed int64) []ThroughputPoint {
	sc := mustScenario("throughput")
	sc.Locks = names
	sc.Workers = workers
	sc.ReadFractions = fractions
	sc.OpsPerWorker = opsPerWorker
	return throughputPoints(mustRun(sc, ScenarioOptions{Seed: seed}))
}

// mustScenario and mustRun back the legacy sweep adapters, whose
// signatures predate error returns: a bad lock name or a missing
// registry entry must stay a loud failure (it used to be a nil-map
// panic), not a silently empty sweep.
func mustScenario(name string) Scenario {
	sc, ok := ScenarioByName(name)
	if !ok {
		panic("harness: scenario " + name + " not registered")
	}
	return sc
}

func mustRun(sc Scenario, opts ScenarioOptions) *ScenarioResult {
	res, err := RunScenario(sc, opts)
	if err != nil {
		panic("harness: " + err.Error())
	}
	return res
}

// throughputPoints projects scenario points to the legacy
// ThroughputPoint shape.
func throughputPoints(res *ScenarioResult) []ThroughputPoint {
	out := make([]ThroughputPoint, 0, len(res.Points))
	for _, p := range res.Points {
		out = append(out, ThroughputPoint{
			Lock: p.Lock, Workers: p.Workers, ReadFraction: p.ReadFraction, OpsPerSec: p.OpsPerSec,
		})
	}
	return out
}

// OversubscribedSweepLocks measures ops/sec for the named locks with
// workers ≫ GOMAXPROCS, each point running for a fixed duration
// (duration-based because oversubscribed workers finish fixed op
// budgets at wildly different times).  The caller is expected to have
// pinned GOMAXPROCS (rwbench's -oversub does; BenchmarkOversubscribed
// does) — the sweep itself only shapes the workload.
func OversubscribedSweepLocks(names []string, workers []int, fractions []float64, d time.Duration, seed int64) []ThroughputPoint {
	sc := mustScenario("oversub")
	sc.Locks = names
	sc.Workers = workers
	sc.ReadFractions = fractions
	sc.Duration = d
	sc.GOMAXPROCS = 0 // this legacy entry point leaves pinning to the caller
	return throughputPoints(mustRun(sc, ScenarioOptions{Seed: seed}))
}

// ThroughputTable formats E7 results, one row per (workers, fraction),
// one column per lock that appears in pts (in LockNames order).
func ThroughputTable(title string, pts []ThroughputPoint) *stats.Table {
	present := make(map[string]bool)
	for _, p := range pts {
		present[p.Lock] = true
	}
	var names []string
	for _, name := range AllLockNames() {
		if present[name] {
			names = append(names, name)
		}
	}
	headers := append([]string{"workers", "read%"}, names...)
	t := stats.NewTable(title, headers...)
	type key struct {
		w int
		f float64
	}
	cells := make(map[key]map[string]float64)
	var order []key
	for _, p := range pts {
		k := key{p.Workers, p.ReadFraction}
		if cells[k] == nil {
			cells[k] = make(map[string]float64)
			order = append(order, k)
		}
		cells[k][p.Lock] = p.OpsPerSec
	}
	for _, k := range order {
		row := []string{fmt.Sprintf("%d", k.w), fmt.Sprintf("%.0f", k.f*100)}
		for _, name := range names {
			row = append(row, fmt.Sprintf("%.0f", cells[k][name]))
		}
		t.AddRow(row...)
	}
	return t
}

// PriorityPoint is one cell of the E8 experiment: latency of the
// minority class under a storm of the majority class.  The json tags
// are the rwbench -json schema.
type PriorityPoint struct {
	Lock        string  `json:"lock"`
	WriteP50Ns  int64   `json:"write_p50_ns"`
	WriteP99Ns  int64   `json:"write_p99_ns"`
	ReadP50Ns   int64   `json:"read_p50_ns"`
	ReadP99Ns   int64   `json:"read_p99_ns"`
	WriterShare float64 `json:"writer_share"` // fraction of completed ops that were writes
}

// PrioritySweep runs one dedicated writer against readerCount readers
// per lock and reports both classes' latency distributions.  Under
// MWWP the writer's tail latency should stay low even under the
// storm; under MWRP the readers' should.
func PrioritySweep(readerCount, opsPerWorker int, seed int64) []PriorityPoint {
	return PrioritySweepLocks(LockNames(), readerCount, opsPerWorker, seed)
}

// PrioritySweepLocks is PrioritySweep restricted to the named locks.
// Another RunScenario adapter: the "priority" registry entry with the
// caller's reader count and op budget.
func PrioritySweepLocks(names []string, readerCount, opsPerWorker int, seed int64) []PriorityPoint {
	sc := mustScenario("priority")
	sc.Locks = names
	sc.Workers = []int{readerCount + 1}
	sc.OpsPerWorker = opsPerWorker
	res := mustRun(sc, ScenarioOptions{Seed: seed})
	out := make([]PriorityPoint, 0, len(res.Points))
	for _, p := range res.Points {
		total := p.ReadOps + p.WriteOps
		share := 0.0
		if total > 0 {
			share = float64(p.WriteOps) / float64(total)
		}
		pp := PriorityPoint{Lock: p.Lock, WriterShare: share}
		if p.WriteTotal != nil {
			pp.WriteP50Ns, pp.WriteP99Ns = p.WriteTotal.P50, p.WriteTotal.P99
		}
		if p.ReadTotal != nil {
			pp.ReadP50Ns, pp.ReadP99Ns = p.ReadTotal.P50, p.ReadTotal.P99
		}
		out = append(out, pp)
	}
	return out
}

// PriorityTable formats E8 results.
func PriorityTable(title string, pts []PriorityPoint) *stats.Table {
	t := stats.NewTable(title, "lock", "write p50 ns", "write p99 ns", "read p50 ns", "read p99 ns")
	for _, p := range pts {
		t.AddRow(p.Lock,
			fmt.Sprintf("%d", p.WriteP50Ns),
			fmt.Sprintf("%d", p.WriteP99Ns),
			fmt.Sprintf("%d", p.ReadP50Ns),
			fmt.Sprintf("%d", p.ReadP99Ns),
		)
	}
	return t
}
