package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"

	"rwsync/internal/workload"
	"rwsync/rwlock"
	"rwsync/rwmap"
)

// ShardedLockNames is the default lock set of the sharded (serving
// tier) scenarios: each reader-fast-path protocol in its three grid
// builds — private table, shared arena, 16-byte slim — plus the
// runtime baseline.  The triples are what the bytes/lock column is
// about: same protocol, three footprints.
func ShardedLockNames() []string {
	return []string{
		"Bravo(MWSF)", "Bravo(MWSF)/shared", "SlimBravo",
		"MWSF/epoch", "MWSF/epoch/shared", "SlimEpoch",
		"sync.RWMutex",
	}
}

// ShardedScenarioNames returns the registered scenarios that sweep a
// stripe axis, sorted lexically — the listing for the CLI's "-stripes
// applies to no selected scenario" rejection.
func ShardedScenarioNames() []string {
	var names []string
	for _, name := range ScenarioNames() {
		if sc, ok := ScenarioByName(name); ok && len(sc.Stripes) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// measureBytesPerLock reports the marginal heap bytes per lock
// instance when n instances are built the way a stripe grid builds
// them: construct all n, then give each one warm read and write
// passage so lazily allocated state (Epoch's pool locals and stamp
// slots, Bravo's first drain) is charged to the lock that owns it.
// One build-and-passage happens before the window to warm shared
// machinery (the default arena, lazy globals), and GC is disabled
// across the window so the delta is exact allocation volume, not
// collector timing.
func measureBytesPerLock(build func() rwlock.RWLock, n int) float64 {
	if n < 1 {
		n = 1
	}
	w := build()
	rt := w.RLock()
	w.RUnlock(rt)
	wt := w.Lock()
	w.Unlock(wt)
	locks := make([]rwlock.RWLock, n)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := range locks {
		locks[i] = build()
	}
	for _, l := range locks {
		rt := l.RLock()
		l.RUnlock(rt)
		wt := l.Lock()
		l.Unlock(wt)
	}
	runtime.ReadMemStats(&after)
	per := float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
	runtime.KeepAlive(locks)
	runtime.KeepAlive(w)
	return per
}

// adaptiveProtocols maps the Slim lock registry names to the
// promotion protocol an adaptive cell runs them under; only these
// names may carry a hot-set budget (the adaptive Map owns the stripe
// locks on both ends of the swap, and it builds Slim cold stripes).
var adaptiveProtocols = map[string]rwmap.Protocol{
	"SlimBravo": rwmap.PromoteBravo,
	"SlimEpoch": rwmap.PromoteEpoch,
}

// AdaptiveScenarioNames returns the registered scenarios that sweep a
// hot-set-budget axis, sorted lexically — the listing for the CLI's
// "-hotset applies to no selected scenario" rejection.
func AdaptiveScenarioNames() []string {
	var names []string
	for _, name := range ScenarioNames() {
		if sc, ok := ScenarioByName(name); ok && len(sc.HotSets) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// measureHotWrapperBytes reports the marginal bytes of one promoted
// full wrapper on the shared arena — what each occupied slot of the
// hot-set budget costs beyond its stripe's Slim lock.  Measured on
// the promotion constructors themselves so the number prices exactly
// what promote builds.
func measureHotWrapperBytes(proto rwmap.Protocol) float64 {
	build := func() rwlock.RWLock { return rwlock.NewBravoShared(nil, nil) }
	if proto == rwmap.PromoteEpoch {
		build = func() rwlock.RWLock { return rwlock.NewEpochShared(nil, nil) }
	}
	return measureBytesPerLock(build, 256)
}

// runShardedScenario sweeps striped maps: every (lock, stripes, s)
// cell is a fresh rwmap grid under workload.RunSharded, with the
// lock's bytes/instance measured once per (lock, stripes) pair — a
// standalone grid, built and released before the workload's own, so
// the number is the lock's marginal cost, not the map's.  A HotSets
// axis additionally sweeps adaptive promotion budgets (0 = adaptive
// off) over the same cells.
func runShardedScenario(sc *Scenario, seed int64, metrics bool) ([]ScenarioPoint, error) {
	if len(sc.Locks) == 0 {
		sc.Locks = ShardedLockNames()
	}
	builders := NativeLocks()
	for _, name := range sc.Locks {
		if builders[name] == nil {
			return nil, fmt.Errorf("scenario %s: unknown lock %q (have %v)",
				sc.Name, name, SortedLockNames())
		}
	}
	hotSets := sc.HotSets
	if len(hotSets) == 0 {
		hotSets = []int{0}
	}
	for _, hs := range hotSets {
		if hs < 0 {
			return nil, fmt.Errorf("scenario %s: hot-set budget %d (need >= 0)", sc.Name, hs)
		}
		if hs == 0 {
			continue
		}
		for _, name := range sc.Locks {
			if _, ok := adaptiveProtocols[name]; !ok {
				slim := make([]string, 0, len(adaptiveProtocols))
				for n := range adaptiveProtocols {
					slim = append(slim, n)
				}
				sort.Strings(slim)
				return nil, fmt.Errorf("scenario %s: hot-set budget %d needs Slim lock rows (have %v), got %q",
					sc.Name, hs, slim, name)
			}
		}
	}
	if len(sc.Workers) == 0 {
		sc.Workers = []int{8}
	}
	for _, w := range sc.Workers {
		if w < 1 {
			return nil, fmt.Errorf("scenario %s: worker count %d (need >= 1)", sc.Name, w)
		}
	}
	for _, st := range sc.Stripes {
		if st < 1 {
			return nil, fmt.Errorf("scenario %s: stripe count %d (need >= 1)", sc.Name, st)
		}
	}
	fractions := sc.ReadFractions
	if len(fractions) == 0 {
		fractions = []float64{0.9}
	}
	skews := sc.ZipfS
	if len(skews) == 0 {
		skews = []float64{0}
	}
	hotBytes := map[rwmap.Protocol]float64{}
	var points []ScenarioPoint
	for _, name := range sc.Locks {
		build := builders[name]
		for _, stripes := range sc.Stripes {
			bpl := measureBytesPerLock(build, stripes)
			for _, hs := range hotSets {
				var ad *rwmap.AdaptiveConfig
				if hs > 0 {
					proto := adaptiveProtocols[name]
					if _, done := hotBytes[proto]; !done {
						hotBytes[proto] = measureHotWrapperBytes(proto)
					}
					// Measurement-friendly cadence: the library defaults
					// (sample 1/64, 1024-sample windows) are tuned for
					// long-lived servers; a bounded benchmark run wants
					// promotion to land in the first few percent of the
					// ops and at least a dozen demotion sweeps, so the
					// steady promoted state is what gets measured rather
					// than the cold start.
					ad = &rwmap.AdaptiveConfig{
						HotSet:      hs,
						Protocol:    proto,
						SampleEvery: 8,
						WindowLen:   512,
						PromoteAt:   4,
					}
				}
				for _, s := range skews {
					for _, w := range sc.Workers {
						for _, f := range fractions {
							// Instrumented cells get a fresh counter block
							// shared by every stripe lock of the cell's
							// grid, so the block aggregates the whole map.
							// The bytes/lock measurement above keeps the
							// plain constructor: its warm passages must not
							// leak into the cell's counts.  Adaptive cells
							// build their own Slim stripes (the factory is
							// unused) and report the documented all-zero
							// block — a Slim grid is observed through
							// rwmap.Map.Stats, not the lock seam.
							factory := build
							var cellStats *rwlock.LockStats
							if metrics {
								cellStats = new(rwlock.LockStats)
								factory = NativeLocksWith(rwlock.WithStats(cellStats))[name]
							}
							r := workload.RunSharded(workload.ShardedConfig{
								Workers:      w,
								ReadFraction: f,
								OpsPerWorker: sc.OpsPerWorker,
								Duration:     sc.Duration,
								Stripes:      stripes,
								Keys:         sc.Keys,
								ZipfS:        s,
								CSWork:       sc.CSWork,
								ThinkWork:    sc.ThinkWork,
								MixedOps:     sc.MixedOps,
								Seed:         seed,
								SampleEvery:  sc.SampleEvery,
								MeasureAge:   sc.MeasureAge,
								Yield:        sc.Yield,
								LockFactory:  factory,
								Adaptive:     ad,
							})
							p := ScenarioPoint{
								Lock:         name,
								Workers:      w,
								ReadFraction: f,
								Stripes:      stripes,
								ZipfS:        s,
								BytesPerLock: bpl,
								OpsPerSec:    r.Throughput(),
								ReadOps:      r.ReadOps,
								WriteOps:     r.WriteOps,
								HotReadOps:   r.HotReadOps,
								ReadWait:     r.ReadWaitNs.Snapshot(),
								ReadHold:     r.ReadHoldNs.Snapshot(),
								ReadTotal:    r.ReadTotalNs.Snapshot(),
								WriteWait:    r.WriteWaitNs.Snapshot(),
								WriteHold:    r.WriteHoldNs.Snapshot(),
								WriteTotal:   r.WriteTotalNs.Snapshot(),
								Age:          r.AgeNs.Snapshot(),
							}
							if hs > 0 {
								st := r.MapStats
								p.HotSetBudget = hs
								p.Promotions = st.Promotions
								p.Demotions = st.Demotions
								p.HotSetMax = st.HotSetMax
								// Bytes/lock at the promotion high-water mark:
								// every stripe pays the cold build, the hot-set
								// peak pays one full wrapper each, amortized
								// over the grid.
								p.BytesPerLockHigh = bpl +
									float64(st.HotSetMax)*hotBytes[adaptiveProtocols[name]]/float64(stripes)
							}
							if cellStats != nil {
								snap := cellStats.Snapshot()
								if err := checkCellCounters(&snap, sc.Name, name, r.ReadOps, r.WriteOps, 0); err != nil {
									return nil, err
								}
								p.Counters = &snap
							}
							points = append(points, p)
						}
					}
				}
			}
		}
	}
	return points, nil
}
