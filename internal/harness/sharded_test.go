package harness

import (
	"sort"
	"strings"
	"testing"

	"rwsync/rwlock"
)

func TestShardedScenarioNames(t *testing.T) {
	names := ShardedScenarioNames()
	if len(names) == 0 {
		t.Fatal("no sharded scenarios registered")
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ShardedScenarioNames not sorted: %v", names)
	}
	found := false
	for _, n := range names {
		sc, ok := ScenarioByName(n)
		if !ok || len(sc.Stripes) == 0 {
			t.Fatalf("listed scenario %q has no stripe axis", n)
		}
		if n == "zipf-grid" {
			found = true
		}
	}
	if !found {
		t.Fatalf("zipf-grid missing from sharded listing: %v", names)
	}
}

func TestShardedLockNamesResolve(t *testing.T) {
	builders := NativeLocks()
	for _, name := range ShardedLockNames() {
		if builders[name] == nil {
			t.Errorf("sharded lock %q not in the registry", name)
		}
	}
}

func TestMeasureBytesPerLock(t *testing.T) {
	slim := measureBytesPerLock(func() rwlock.RWLock { return rwlock.NewSlimBravo() }, 2048)
	priv := measureBytesPerLock(func() rwlock.RWLock { return rwlock.NewBravoMWSF() }, 256)
	if slim <= 0 || priv <= 0 {
		t.Fatalf("non-positive footprints: slim=%.0f priv=%.0f", slim, priv)
	}
	if priv <= slim {
		t.Fatalf("private Bravo (%.0f B) not larger than slim (%.0f B)", priv, slim)
	}
}

// TestRunShardedScenarioShape: every point of a sharded run carries
// the grid-size, skew, footprint, and hot-key columns — the invariant
// the CI shape check and the report validator both rest on.
func TestRunShardedScenarioShape(t *testing.T) {
	res, err := RunScenario(Scenario{
		Name:         "sharded-shape",
		Title:        "shape probe",
		Locks:        []string{"SlimBravo", "sync.RWMutex"},
		Workers:      []int{4},
		OpsPerWorker: 400,
		Stripes:      []int{4, 64},
		ZipfS:        []float64{1.07},
		Keys:         512,
		SampleEvery:  4,
		MeasureAge:   true,
	}, ScenarioOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 { // 2 locks x 2 stripe counts x 1 skew x 1 workers x 1 fraction
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	for i, p := range res.Points {
		if p.Stripes != 4 && p.Stripes != 64 {
			t.Errorf("point %d: stripes = %d", i, p.Stripes)
		}
		if p.ZipfS != 1.07 {
			t.Errorf("point %d: zipf_s = %v", i, p.ZipfS)
		}
		if p.BytesPerLock <= 0 {
			t.Errorf("point %d: bytes_per_lock = %v", i, p.BytesPerLock)
		}
		if p.HotReadOps <= 0 || p.HotReadOps > p.ReadOps {
			t.Errorf("point %d: hot_read_ops = %d of %d reads", i, p.HotReadOps, p.ReadOps)
		}
		if p.OpsPerSec <= 0 || p.ReadWait == nil || p.WriteWait == nil {
			t.Errorf("point %d: missing core measurements (%+v)", i, p)
		}
	}
	out := ScenarioTable(res).Render()
	for _, col := range []string{"stripes", "zipf s", "B/lock", "hot rd/s"} {
		if !strings.Contains(out, col) {
			t.Fatalf("sharded table missing %q column:\n%s", col, out)
		}
	}
}

func TestRunShardedScenarioRejectsBadGrids(t *testing.T) {
	if _, err := RunScenario(Scenario{
		Name: "bad", Stripes: []int{0},
	}, ScenarioOptions{Seed: 1}); err == nil {
		t.Error("stripe count 0 accepted")
	}
	if _, err := RunScenario(Scenario{
		Name: "bad", Stripes: []int{4}, Locks: []string{"NoSuchLock"},
	}, ScenarioOptions{Seed: 1}); err == nil {
		t.Error("unknown lock accepted on the sharded path")
	}
	if _, err := RunScenario(Scenario{
		Name: "bad", Stripes: []int{4}, Workers: []int{0},
	}, ScenarioOptions{Seed: 1}); err == nil {
		t.Error("worker count 0 accepted on the sharded path")
	}
}

// TestQuickTrimKeepsStripeAxis: -quick must keep more than one grid
// size (the CI shape check sweeps the axis) while dropping the
// 10^5-and-up grids, and must trim the skew axis to one value.
func TestQuickTrimKeepsStripeAxis(t *testing.T) {
	sc := Scenario{
		Stripes: []int{1, 1 << 10, 1 << 20},
		ZipfS:   []float64{1.07, 1.5},
	}
	q := quickTrim(sc)
	if len(q.Stripes) != 2 || q.Stripes[0] != 1 || q.Stripes[1] != 1<<10 {
		t.Fatalf("quick stripes = %v, want [1 1024]", q.Stripes)
	}
	if len(q.ZipfS) != 1 {
		t.Fatalf("quick skews = %v, want one", q.ZipfS)
	}
	// All-huge grids still leave a smoke-sized one to run.
	q = quickTrim(Scenario{Stripes: []int{1 << 20}})
	if len(q.Stripes) != 1 || q.Stripes[0] != 1024 {
		t.Fatalf("quick all-huge stripes = %v, want [1024]", q.Stripes)
	}
}

// TestScenarioOptionsStripeOverride: the CLI's -stripes/-skew land on
// sharded scenarios and are ignored for flat ones.
func TestScenarioOptionsStripeOverride(t *testing.T) {
	res, err := RunScenario(Scenario{
		Name:         "override-probe",
		Locks:        []string{"SlimEpoch"},
		Workers:      []int{2},
		OpsPerWorker: 200,
		Stripes:      []int{1 << 20},
		Keys:         64,
	}, ScenarioOptions{Seed: 1, Stripes: []int{8}, ZipfS: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Stripes != 8 || p.ZipfS != 0.5 {
			t.Fatalf("override not applied: stripes=%d zipf=%v", p.Stripes, p.ZipfS)
		}
	}
	flat, err := RunScenario(Scenario{
		Name:         "flat-probe",
		Locks:        []string{"MWSF"},
		Workers:      []int{2},
		OpsPerWorker: 200,
	}, ScenarioOptions{Seed: 1, Stripes: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range flat.Points {
		if p.Stripes != 0 {
			t.Fatalf("flat scenario grew a stripe axis: %+v", p)
		}
	}
}
