// Package harness assembles the repository's numbered experiments
// (E1-E9; the rwcheck native stress E10, the BenchmarkReadHeavy grid
// E11 and the oversubscription grid E12 build on its registries) and
// owns the registries that name every algorithm under test.  The
// cmd/rmrbench and cmd/rwbench tools and the repository-root
// bench_test.go entry points are thin wrappers over this package.
//
// # The scenario engine
//
// Every measurement the repo runs is a Scenario: a declarative record
// naming the lock set (or simulator systems), the workload shape
// (worker grid, read-ratio grid or dedicated-writer storm, op budget
// or deadline, critical-section and think work, writer burstiness), a
// GOMAXPROCS pin, and the probes to enable (latency sampling rate,
// writer-visibility age).  RunScenario is the one sweep core: it
// resolves the grids, pins the scheduler if asked, and measures every
// cell — native cells through internal/workload with per-worker
// latency histograms (internal/stats.Histogram), simulator cells
// through internal/ccsim RMR accounting.  A new experiment is a
// RegisterScenario call of ~20 lines, selectable by name via rwbench
// -scenario, rendered by ScenarioTable, and carried losslessly
// (full histograms) by the rwbench -json schema.
//
// The four historical sweeps are registry entries run through the
// same core — "throughput" (E7), "priority" (E8), "oversub" (E12) and
// "rmr"/"rmr-dsm" (E1-E4/E9) — and their legacy function entry points
// (ThroughputSweepLocks, PrioritySweepLocks, OversubscribedSweepLocks,
// RMRSweep, RMRSweepDSM) survive as thin adapters over RunScenario.
// The engine-native scenarios measure what the hand-coded sweeps
// never could: "bursty-writers" (an administrative writer's update
// wait latency and readers' view age under a storm — the kvstore
// example's measurement, promoted), "starvation" (the reader
// wait-latency tail under a writer flood), and "latency-grid" (full
// per-class latency distributions across the read-ratio axis).
//
// # Registries
//
// Simulator side (Builders): named constructors for the step-accurate
// encodings of Figures 1-4 and the baselines, validating the paper's
// Theorems 1-5 against centralized/phase-fair/task-fair/tournament
// locks whose RMRs grow with the process count, plus the DSM-model
// contrast where no constant bound can exist.
//
// Native side (NativeLocks): real goroutines over sync/atomic.  The
// native registry carries every rwlock implementation, including the
// Bravo(...) wrappers — the BRAVO sharded reader fast path
// (arXiv:1810.01553) layered over the constant-RMR locks — which only
// exist natively: their whole point is real cache-line traffic, which
// the CC simulator already charges at one RMR per reader regardless.
// Use SelectLockNames to validate user-supplied subsets of the
// registry (the cmd/rwbench -locks flag) and SelectScenarios for the
// -scenario flag.
package harness
