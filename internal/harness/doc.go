// Package harness assembles the repository's numbered experiments
// (E1-E9; the rwcheck native stress E10 and the BenchmarkReadHeavy
// grid E11 build on its registries) and owns the registries that name
// every algorithm under test.  The cmd/rmrbench and cmd/rwbench tools
// and the repository-root bench_test.go entry points are thin
// wrappers over this package.
//
// Simulator side (Builders, RMRSweep, RMRSweepDSM): RMRs-per-passage
// sweeps on the internal/ccsim cache-coherent machine, validating the
// paper's Theorems 1-2 (Figures 1-2, experiments E1/E2), Theorems 3-5
// (the Section 5 multi-writer constructions, E3) against the
// centralized, phase-fair-ticket, task-fair and tournament baselines
// whose RMRs grow with the process count (E4), plus the DSM-model
// contrast where no constant bound can exist (E9).
//
// Native side (NativeLocks, ThroughputSweep, PrioritySweep): real
// goroutines over sync/atomic, measuring mixed-workload throughput
// (E7) and minority-class latency under a majority-class storm (E8).
// The native registry carries every rwlock implementation, including
// the Bravo(...) wrappers — the BRAVO sharded reader fast path
// (arXiv:1810.01553) layered over the constant-RMR locks — which only
// exist natively: their whole point is real cache-line traffic, which
// the CC simulator already charges at one RMR per reader regardless.
// Use SelectLockNames to validate user-supplied subsets of the
// registry (the cmd/rwbench -locks flag).
package harness
