package harness

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestScenarioRegistryHasAllEntries(t *testing.T) {
	// The four historical sweeps plus the engine-native scenarios
	// (and the DSM contrast) must all be registered.
	for _, name := range []string{
		"throughput", "priority", "oversub", "rmr", "rmr-dsm",
		"bursty-writers", "starvation", "writer-churn", "combine-batch",
		"writer-shed", "age-frontier", "latency-grid",
	} {
		if _, ok := ScenarioByName(name); !ok {
			t.Errorf("scenario %q not registered (have %v)", name, ScenarioNames())
		}
	}
}

func TestSelectScenarios(t *testing.T) {
	all, err := SelectScenarios("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ScenarioNames()) {
		t.Fatalf("all selected %d of %d", len(all), len(ScenarioNames()))
	}
	def, err := SelectScenarios("")
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != 2 || def[0].Name != "throughput" || def[1].Name != "priority" {
		t.Fatalf("default selection = %v", def)
	}
	two, err := SelectScenarios("latency-grid, bursty-writers")
	if err != nil {
		t.Fatal(err)
	}
	// Registration order, not request order.
	if len(two) != 2 || two[0].Name != "bursty-writers" || two[1].Name != "latency-grid" {
		t.Fatalf("subset selection = %v", two)
	}
	if _, err := SelectScenarios("no-such"); err == nil ||
		!strings.Contains(err.Error(), "no-such") {
		t.Fatalf("unknown scenario not rejected: %v", err)
	}
	// SelectScenarios must not disturb registration order (it is the
	// presentation order everywhere).
	if names := ScenarioNames(); names[0] != "throughput" {
		t.Fatalf("registry order disturbed: %v", names)
	}
}

func TestRunScenarioNativeGrid(t *testing.T) {
	sc, _ := ScenarioByName("throughput")
	sc.SampleEvery = 1 // 300 ops at the sparse default rate would leave write histograms empty
	res, err := RunScenario(sc, ScenarioOptions{
		Seed:    1,
		Locks:   []string{"MWSF", "sync.RWMutex"},
		Workers: []int{2},
		Ops:     300,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 locks x 1 worker count x 4 fractions.
	if len(res.Points) != 8 {
		t.Fatalf("got %d points, want 8", len(res.Points))
	}
	for _, p := range res.Points {
		if p.OpsPerSec <= 0 {
			t.Fatalf("no throughput at %+v", p)
		}
		if p.ReadFraction < 1 && p.WriteWait == nil {
			t.Fatalf("mixed point missing write-wait histogram: %+v", p)
		}
		if p.ReadTotal != nil {
			if err := p.ReadTotal.Validate(); err != nil {
				t.Fatalf("invalid histogram: %v", err)
			}
		}
	}
	// The result records the resolved grid.
	if len(res.Scenario.Workers) != 1 || res.Scenario.Workers[0] != 2 {
		t.Fatalf("resolved grid not recorded: %+v", res.Scenario.Workers)
	}
}

func TestRunScenarioRejectsDegenerateWorkerGrids(t *testing.T) {
	sc, _ := ScenarioByName("throughput")
	if _, err := RunScenario(sc, ScenarioOptions{Workers: []int{0}}); err == nil {
		t.Fatal("worker count 0 not rejected")
	}
	// A storm shape with a single worker cannot host both classes:
	// running it would silently measure an all-writer workload.
	storm, _ := ScenarioByName("starvation")
	if _, err := RunScenario(storm, ScenarioOptions{Workers: []int{1},
		Locks: []string{"MWSF"}}); err == nil {
		t.Fatal("dedicated-writer scenario with 1 worker not rejected")
	}
	// And the clamp keeps at least one reader when the grid is valid
	// but smaller than the writer count.
	res, err := RunScenario(storm, ScenarioOptions{Quick: true,
		Workers: []int{2}, Locks: []string{"MWSF"}})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Points[0]; p.Writers != 1 || p.Readers != 1 {
		t.Fatalf("clamp lost a class: %dw/%dr", p.Writers, p.Readers)
	}
}

func TestLegacySweepAdaptersFailLoudly(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ThroughputSweepLocks with an unknown lock must panic, not return an empty sweep")
		}
	}()
	ThroughputSweepLocks([]string{"NoSuchLock"}, []int{1}, []float64{0.9}, 100, 1)
}

func TestRunScenarioUnknownLock(t *testing.T) {
	sc, _ := ScenarioByName("throughput")
	if _, err := RunScenario(sc, ScenarioOptions{Locks: []string{"NoSuchLock"}}); err == nil ||
		!strings.Contains(err.Error(), "NoSuchLock") {
		t.Fatalf("unknown lock not rejected: %v", err)
	}
}

func TestRunScenarioBurstyMeasuresAge(t *testing.T) {
	sc, _ := ScenarioByName("bursty-writers")
	sc.Duration = 40 * time.Millisecond
	res, err := RunScenario(sc, ScenarioOptions{Seed: 1, Locks: []string{"MWWP"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("got %d points", len(res.Points))
	}
	p := res.Points[0]
	if p.Age == nil || p.Age.Count == 0 {
		t.Fatal("bursty scenario did not measure age")
	}
	if p.WriteWait == nil || p.WriteWait.Count == 0 {
		t.Fatal("bursty scenario did not measure write wait latency")
	}
	if p.Writers != 1 || p.Readers != 8 {
		t.Fatalf("dedicated split not recorded: %dw/%dr", p.Writers, p.Readers)
	}
	if err := p.Age.Validate(); err != nil {
		t.Fatalf("age histogram invalid: %v", err)
	}
}

func TestRunScenarioStarvationProbe(t *testing.T) {
	sc, _ := ScenarioByName("starvation")
	res, err := RunScenario(sc, ScenarioOptions{Seed: 1, Quick: true,
		Locks: []string{"MWWP", "MWRP"}})
	if err != nil {
		t.Fatal(err)
	}
	byLock := map[string]ScenarioPoint{}
	for _, p := range res.Points {
		byLock[p.Lock] = p
		if p.ReadWait == nil || p.ReadWait.Count == 0 {
			t.Fatalf("starvation probe lost its product (reader wait) for %s", p.Lock)
		}
	}
	if len(byLock) != 2 {
		t.Fatalf("points: %+v", res.Points)
	}
}

// TestRunScenarioWriterChurn runs the churn scenario at full size:
// every write passage comes from a distinct short-lived goroutine
// (256 lanes x 128 spawns = 32768 writers per lock — the ≥1000-writer
// acceptance shape), and the product — throughput plus the
// writer-wait tail — must be present for the MCS arbitration, the
// bounded-Anderson arbitration, the flat combiner, and the
// sync.RWMutex baseline alike.  CI runs this under -race, where any
// CS overlap between two one-shot writers is a detected data race.
func TestRunScenarioWriterChurn(t *testing.T) {
	sc, ok := ScenarioByName("writer-churn")
	if !ok {
		t.Fatal("writer-churn scenario not registered")
	}
	if !sc.Churn {
		t.Fatal("writer-churn scenario does not set Churn")
	}
	if writers := sc.Workers[0] * sc.OpsPerWorker; writers < 1000 {
		t.Fatalf("scenario spawns %d distinct writers, want >= 1000", writers)
	}
	res, err := RunScenario(sc, ScenarioOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, name := range ChurnLockNames() {
		want[name] = true
	}
	if len(res.Points) != len(want) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(want))
	}
	for _, p := range res.Points {
		if !want[p.Lock] {
			t.Fatalf("unexpected lock %q in churn sweep", p.Lock)
		}
		delete(want, p.Lock)
		if p.OpsPerSec <= 0 {
			t.Fatalf("%s: no throughput", p.Lock)
		}
		if p.WriteOps != int64(sc.Workers[0]*sc.OpsPerWorker) {
			t.Fatalf("%s: %d write passages, want %d", p.Lock, p.WriteOps,
				sc.Workers[0]*sc.OpsPerWorker)
		}
		if p.ReadOps != 0 {
			t.Fatalf("%s: churn sweep performed %d reads", p.Lock, p.ReadOps)
		}
		if p.WriteWait == nil || p.WriteWait.Count == 0 {
			t.Fatalf("%s: writer-wait histogram missing (the scenario's product)", p.Lock)
		}
		if p.WriteWait.P99 < 0 {
			t.Fatalf("%s: writer-wait p99 = %d", p.Lock, p.WriteWait.P99)
		}
		// Exactly the combining variant carries a batch-size
		// distribution, and it must account for every write passage.
		// (Batch sizes > 1 are schedule-dependent — preemption
		// pile-ups — so their presence is pinned by the recorded
		// BENCH_1.json grid, not asserted here.)
		if isCombine := strings.Contains(p.Lock, "/combine"); isCombine {
			if p.BatchSize == nil {
				t.Fatalf("%s: batch-size histogram missing", p.Lock)
			}
			if p.BatchSize.Count < 1 || p.BatchSize.Count > p.WriteOps {
				t.Fatalf("%s: %d batches for %d writes", p.Lock, p.BatchSize.Count, p.WriteOps)
			}
		} else if p.BatchSize != nil {
			t.Fatalf("%s: non-combining lock carries a batch-size histogram", p.Lock)
		}
	}
	if len(want) != 0 {
		t.Fatalf("locks missing from churn sweep: %v", want)
	}
	// The MCS vs bounded vs baseline comparison must be one table.
	out := ScenarioTable(res).Render()
	for _, name := range ChurnLockNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("churn table missing %s:\n%s", name, out)
		}
	}
}

// TestRunScenarioCombineBatch: the combine-batch scenario sweeps the
// three writer arbitrations over the churn shape at two read
// fractions, the combiner's points carry the batch-size histogram,
// and the rendered table carries the batch columns.  A trimmed op
// budget keeps the -race run cheap; the full grid is the recorded
// BENCH_1.json.
func TestRunScenarioCombineBatch(t *testing.T) {
	sc, ok := ScenarioByName("combine-batch")
	if !ok {
		t.Fatal("combine-batch scenario not registered")
	}
	if !sc.Churn || sc.GOMAXPROCS != 2 || !sc.MeasureAge {
		t.Fatalf("combine-batch lost its shape: churn=%v gomaxprocs=%d age=%v",
			sc.Churn, sc.GOMAXPROCS, sc.MeasureAge)
	}
	res, err := RunScenario(sc, ScenarioOptions{Seed: 1, Ops: 32})
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(ChurnLockNames()) * len(sc.ReadFractions)
	if len(res.Points) != wantPoints {
		t.Fatalf("got %d points, want %d", len(res.Points), wantPoints)
	}
	sawBatch, sawAge := false, false
	for _, p := range res.Points {
		combine := strings.Contains(p.Lock, "/combine")
		if combine && p.BatchSize != nil {
			sawBatch = true
		}
		if !combine && p.BatchSize != nil {
			t.Fatalf("%s carries a batch-size histogram", p.Lock)
		}
		if p.Age != nil {
			sawAge = true
		}
	}
	if !sawBatch {
		t.Fatal("no combiner point carries a batch-size histogram")
	}
	if !sawAge {
		t.Fatal("no point carries the read-view age probe (mixed fraction missing?)")
	}
	out := ScenarioTable(res).Render()
	for _, col := range []string{"batch p50", "batch p99", "batch max", "age p50"} {
		if !strings.Contains(out, col) {
			t.Fatalf("combine-batch table missing %q column:\n%s", col, out)
		}
	}
}

func TestRunScenarioSimThroughCore(t *testing.T) {
	sc, _ := ScenarioByName("rmr")
	sc.Sim = &SimShape{Systems: []string{"fig1-swwp", "centralized"}, Attempts: 4}
	res, err := RunScenario(sc, ScenarioOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("sim scenario produced no points")
	}
	for _, p := range res.Points {
		if p.System == "" || p.ReaderRMR == nil || p.WriterRMR == nil {
			t.Fatalf("sim point incomplete: %+v", p)
		}
		if p.Lock != "" || p.ReadWait != nil {
			t.Fatalf("sim point carries native metrics: %+v", p)
		}
	}
}

func TestRunScenarioPinsAndRestoresGOMAXPROCS(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	sc, _ := ScenarioByName("oversub")
	res, err := RunScenario(sc, ScenarioOptions{
		Seed: 1, Quick: true, Locks: []string{"MWSF/park"}, Workers: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GOMAXPROCS != 2 {
		t.Fatalf("oversub scenario ran at GOMAXPROCS=%d, want 2", res.GOMAXPROCS)
	}
	if after := runtime.GOMAXPROCS(0); after != before {
		t.Fatalf("GOMAXPROCS not restored: %d -> %d", before, after)
	}
	// Duration mode: -quick must have trimmed the deadline.
	if res.Scenario.DurationMs > 25 {
		t.Fatalf("quick did not trim duration: %dms", res.Scenario.DurationMs)
	}
}

func TestQuickTrimShrinksEveryAxis(t *testing.T) {
	sc := Scenario{
		Workers:       []int{1, 2, 4},
		ReadFractions: []float64{0.5, 0.9, 0.99},
		OpsPerWorker:  100000,
		Duration:      time.Second,
		Sim:           &SimShape{Attempts: 16, Points: [][2]int{{1, 1}, {1, 2}, {1, 4}}},
	}
	q := quickTrim(sc)
	if len(q.Workers) != 1 || len(q.ReadFractions) != 2 || q.OpsPerWorker != 500 ||
		q.Duration != 25*time.Millisecond || q.Sim.Attempts != 4 || len(q.Sim.Points) != 2 {
		t.Fatalf("quickTrim left an axis large: %+v", q)
	}
	// The original is untouched (Sim is copied, not aliased).
	if sc.Sim.Attempts != 16 || len(sc.Sim.Points) != 3 {
		t.Fatalf("quickTrim mutated the input scenario: %+v", sc.Sim)
	}
}

func TestScenarioTableNativeColumns(t *testing.T) {
	sc, _ := ScenarioByName("bursty-writers")
	sc.Duration = 30 * time.Millisecond
	res, err := RunScenario(sc, ScenarioOptions{Seed: 1, Locks: []string{"MWWP", "MWRP"}})
	if err != nil {
		t.Fatal(err)
	}
	out := ScenarioTable(res).Render()
	for _, col := range []string{"rd wait p99.9", "wr wait p99", "age p99", "MWWP", "8r/1w"} {
		if !strings.Contains(out, col) {
			t.Fatalf("table missing %q:\n%s", col, out)
		}
	}
}

func TestScenarioTableSimColumns(t *testing.T) {
	sc, _ := ScenarioByName("rmr-dsm")
	res, err := RunScenario(sc, ScenarioOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := ScenarioTable(res).Render()
	if !strings.Contains(out, "reader RMR max") || !strings.Contains(out, "fig1-swwp") {
		t.Fatalf("sim table malformed:\n%s", out)
	}
}
