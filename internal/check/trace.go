package check

import (
	"fmt"
	"math"
	"sort"

	"rwsync/internal/ccsim"
)

// Never is the timestamp used for events that did not occur.
const Never = int64(math.MaxInt64)

// Attempt is the assembled lifecycle of one attempt: the step numbers
// of its section transitions (Never when the transition never
// happened, e.g. an attempt still waiting when the run ended).
type Attempt struct {
	Proc    int
	Index   int // attempt index within the process
	Reader  bool
	Begin   int64 // doorway began (attempt started)
	DoorEnd int64 // doorway completed
	EnterCS int64
	ExitBeg int64 // CS left, exit section began
	End     int64 // exit completed (attempt finished)
}

// Complete reports whether the attempt finished its exit section.
func (a *Attempt) Complete() bool { return a.End != Never }

// DoorwayPrecedes implements Definition 1: a doorway-precedes b iff a
// completed the doorway before b began executing it.
func (a *Attempt) DoorwayPrecedes(b *Attempt) bool {
	return a.DoorEnd != Never && a.DoorEnd < b.Begin
}

// Trace is an append-only event log; it implements ccsim.EventSink.
type Trace struct {
	Events []ccsim.Event
}

// Record implements ccsim.EventSink.
func (t *Trace) Record(e ccsim.Event) { t.Events = append(t.Events, e) }

// Attempts assembles the raw events into per-attempt records, sorted
// by (Proc, Index).
func (t *Trace) Attempts() []*Attempt {
	m := make(map[int64]*Attempt)
	key := func(proc, idx int) int64 { return int64(proc)<<32 | int64(idx) }
	get := func(e ccsim.Event) *Attempt {
		k := key(e.Proc, e.Attempt)
		a, ok := m[k]
		if !ok {
			a = &Attempt{
				Proc: e.Proc, Index: e.Attempt, Reader: e.Reader,
				Begin: Never, DoorEnd: Never, EnterCS: Never, ExitBeg: Never, End: Never,
			}
			m[k] = a
		}
		return a
	}
	for _, e := range t.Events {
		a := get(e)
		switch e.Kind {
		case ccsim.EvBeginDoorway:
			a.Begin = e.Step
		case ccsim.EvEndDoorway:
			a.DoorEnd = e.Step
		case ccsim.EvEnterCS:
			a.EnterCS = e.Step
		case ccsim.EvBeginExit:
			a.ExitBeg = e.Step
		case ccsim.EvEndExit:
			a.End = e.Step
		}
	}
	out := make([]*Attempt, 0, len(m))
	for _, a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Violation describes a property violation found by a checker.
type Violation struct {
	Property string
	Detail   string
}

// Error makes Violation usable as an error.
func (v *Violation) Error() string { return v.Property + ": " + v.Detail }

func violationf(prop, format string, args ...any) *Violation {
	return &Violation{Property: prop, Detail: fmt.Sprintf(format, args...)}
}
