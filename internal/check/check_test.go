package check

import (
	"testing"

	"rwsync/internal/ccsim"
)

// ev builds an event quickly.
func ev(step int64, proc int, reader bool, attempt int, kind ccsim.EventKind) ccsim.Event {
	return ccsim.Event{Step: step, Proc: proc, Reader: reader, Attempt: attempt, Kind: kind}
}

func TestTraceAttemptAssembly(t *testing.T) {
	tr := &Trace{}
	tr.Record(ev(1, 0, false, 0, ccsim.EvBeginDoorway))
	tr.Record(ev(2, 0, false, 0, ccsim.EvEndDoorway))
	tr.Record(ev(5, 0, false, 0, ccsim.EvEnterCS))
	tr.Record(ev(7, 0, false, 0, ccsim.EvBeginExit))
	tr.Record(ev(9, 0, false, 0, ccsim.EvEndExit))
	tr.Record(ev(11, 1, true, 0, ccsim.EvBeginDoorway))

	as := tr.Attempts()
	if len(as) != 2 {
		t.Fatalf("got %d attempts, want 2", len(as))
	}
	w := as[0]
	if w.Begin != 1 || w.DoorEnd != 2 || w.EnterCS != 5 || w.ExitBeg != 7 || w.End != 9 {
		t.Fatalf("writer attempt mis-assembled: %+v", w)
	}
	if !w.Complete() {
		t.Fatal("completed attempt reported incomplete")
	}
	r := as[1]
	if r.Begin != 11 || r.DoorEnd != Never || r.Complete() {
		t.Fatalf("incomplete attempt mis-assembled: %+v", r)
	}
}

func TestDoorwayPrecedes(t *testing.T) {
	a := &Attempt{DoorEnd: 5}
	b := &Attempt{Begin: 7}
	c := &Attempt{Begin: 3}
	d := &Attempt{DoorEnd: Never}
	if !a.DoorwayPrecedes(b) {
		t.Fatal("5 < 7 must precede")
	}
	if a.DoorwayPrecedes(c) {
		t.Fatal("5 > 3 must not precede")
	}
	if d.DoorwayPrecedes(b) {
		t.Fatal("incomplete doorway precedes nothing")
	}
}

func TestMutualExclusionDetectsOverlap(t *testing.T) {
	// Reader in CS, then writer enters before the reader exits.
	tr := &Trace{}
	tr.Record(ev(1, 1, true, 0, ccsim.EvEnterCS))
	tr.Record(ev(2, 0, false, 0, ccsim.EvEnterCS))
	v := MutualExclusion(tr)
	if v == nil {
		t.Fatal("expected a violation")
	}
	if v.Property != "P1 mutual exclusion" {
		t.Fatalf("wrong property: %v", v)
	}
}

func TestMutualExclusionAllowsReaderSharing(t *testing.T) {
	tr := &Trace{}
	tr.Record(ev(1, 1, true, 0, ccsim.EvEnterCS))
	tr.Record(ev(2, 2, true, 0, ccsim.EvEnterCS))
	tr.Record(ev(3, 1, true, 0, ccsim.EvBeginExit))
	tr.Record(ev(4, 2, true, 0, ccsim.EvBeginExit))
	tr.Record(ev(5, 0, false, 0, ccsim.EvEnterCS))
	if v := MutualExclusion(tr); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
}

func TestFCFSWritersDetectsOvertake(t *testing.T) {
	a := &Attempt{Proc: 0, Reader: false, Begin: 1, DoorEnd: 2, EnterCS: 20}
	b := &Attempt{Proc: 1, Reader: false, Begin: 5, DoorEnd: 6, EnterCS: 10}
	if v := FCFSWriters([]*Attempt{a, b}); v == nil {
		t.Fatal("expected FCFS violation: a doorway-precedes b but b entered first")
	}
	// Swap entry order: no violation.
	a.EnterCS, b.EnterCS = 10, 20
	if v := FCFSWriters([]*Attempt{a, b}); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
}

func TestFCFSWritersHandlesStarvedPredecessor(t *testing.T) {
	// a doorway-precedes b, b entered, a never did: that IS a
	// violation (b entered before a).
	a := &Attempt{Proc: 0, Reader: false, Begin: 1, DoorEnd: 2, EnterCS: Never}
	b := &Attempt{Proc: 1, Reader: false, Begin: 5, DoorEnd: 6, EnterCS: 10}
	if v := FCFSWriters([]*Attempt{a, b}); v == nil {
		t.Fatal("expected violation when the predecessor never enters")
	}
}

func TestBoundedSections(t *testing.T) {
	stats := []ccsim.AttemptStat{
		{Proc: 0, DoorwaySteps: 3, ExitSteps: 2},
		{Proc: 1, DoorwaySteps: 9, ExitSteps: 1},
	}
	if v := BoundedSections(stats, 10); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	if v := BoundedSections(stats, 8); v == nil {
		t.Fatal("expected doorway bound violation at 9 > 8")
	}
	stats[0].ExitSteps = 100
	if v := BoundedSections(stats, 50); v == nil {
		t.Fatal("expected exit bound violation")
	}
}

func TestOverlapsHelper(t *testing.T) {
	iv := [][2]int64{{10, 20}, {30, 40}}
	cases := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 5, false},
		{0, 11, true},
		{20, 30, false}, // half-open: [10,20) and [30,40)
		{35, 36, true},
		{40, 50, false},
		{15, 15, false}, // empty interval
		{25, 26, false},
	}
	for _, c := range cases {
		if got := overlaps(iv, c.lo, c.hi); got != c.want {
			t.Fatalf("overlaps(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestReaderPriorityRelation(t *testing.T) {
	// Scenario: reader r in waiting room [10, 50), writer w in Try
	// [20, 60), CS occupied during [15, 25).  r >rp w holds via the
	// occupancy clause; w entered at 60 after r at 50: no violation.
	r := &Attempt{Proc: 1, Reader: true, Begin: 5, DoorEnd: 10, EnterCS: 50, ExitBeg: 55}
	w := &Attempt{Proc: 0, Reader: false, Begin: 20, DoorEnd: 22, EnterCS: 60, ExitBeg: 70}
	occ := &Attempt{Proc: 2, Reader: true, Begin: 12, DoorEnd: 13, EnterCS: 15, ExitBeg: 25}
	if v := ReaderPriority([]*Attempt{r, w, occ}); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	// Flip the CS entries: now the writer overtakes a >rp reader.
	r.EnterCS, w.EnterCS = 60, 50
	w.ExitBeg = 55
	r.ExitBeg = 70
	if v := ReaderPriority([]*Attempt{r, w, occ}); v == nil {
		t.Fatal("expected RP1 violation")
	}
}

func TestWriterPriorityRelation(t *testing.T) {
	// w doorway-precedes r and r entered first: WP1 violation.
	w := &Attempt{Proc: 0, Reader: false, Begin: 1, DoorEnd: 2, EnterCS: 50, ExitBeg: 60}
	r := &Attempt{Proc: 1, Reader: true, Begin: 10, DoorEnd: 12, EnterCS: 20, ExitBeg: 30}
	if v := WriterPriority([]*Attempt{w, r}); v == nil {
		t.Fatal("expected WP1 violation")
	}
	// r began its doorway before w finished its own: doorway
	// concurrent, no writer was in the CS: no violation.
	r.Begin = 1
	if v := WriterPriority([]*Attempt{w, r}); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
}

func TestWriterPriorityOccupancyClauseUsesWriterCSOnly(t *testing.T) {
	// A READER occupies the CS while w waits and r is in Try: that
	// does NOT establish w >wp r (Definition 4 requires a writer in
	// the CS), so r entering first is fine.  r begins its doorway
	// before w completes its own, so doorway precedence is out too.
	w := &Attempt{Proc: 0, Reader: false, Begin: 5, DoorEnd: 6, EnterCS: 50, ExitBeg: 60}
	r := &Attempt{Proc: 1, Reader: true, Begin: 5, DoorEnd: 12, EnterCS: 20, ExitBeg: 30}
	occ := &Attempt{Proc: 2, Reader: true, Begin: 1, DoorEnd: 2, EnterCS: 3, ExitBeg: 40}
	if v := WriterPriority([]*Attempt{w, r, occ}); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
}

func TestRunCheckedReportsIncomplete(t *testing.T) {
	// A process that spins forever on a closed gate: the run must be
	// reported incomplete, not hang.
	m := ccsim.NewMemory(1)
	gate := m.NewVar("gate", ccsim.KindRW, 0)
	prog := &ccsim.Program{
		Name: "stuck",
		Instrs: []ccsim.Instr{
			func(c *ccsim.Ctx) int { return 1 },
			func(c *ccsim.Ctx) int { c.Read(gate); return 2 },
			func(c *ccsim.Ctx) int {
				if c.Read(gate) != 0 {
					return 3
				}
				return 2
			},
			func(c *ccsim.Ctx) int { return 4 },
			func(c *ccsim.Ctx) int { return 0 },
		},
		Phases: []ccsim.Phase{ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting, ccsim.PhaseCS, ccsim.PhaseExit},
	}
	r, err := ccsim.NewRunner(m, []*ccsim.Program{prog}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := RunChecked(r, RunOpts{Attempts: 1, MaxSteps: 1000})
	if !res.Incomplete {
		t.Fatal("expected an incomplete run")
	}
}

func TestViolationError(t *testing.T) {
	v := violationf("P1", "proc %d", 3)
	if v.Error() != "P1: proc 3" {
		t.Fatalf("Error() = %q", v.Error())
	}
}
