package check

import (
	"sort"

	"rwsync/internal/ccsim"
)

// MutualExclusion checks P1 over a trace: whenever a writer is in the
// CS, no other process is.  It returns the first violation found, or
// nil.
func MutualExclusion(t *Trace) *Violation {
	readersIn := 0
	writersIn := 0
	for _, e := range t.Events {
		switch e.Kind {
		case ccsim.EvEnterCS:
			if e.Reader {
				if writersIn > 0 {
					return violationf("P1 mutual exclusion",
						"reader %d entered the CS at step %d while a writer was inside", e.Proc, e.Step)
				}
				readersIn++
			} else {
				if writersIn > 0 || readersIn > 0 {
					return violationf("P1 mutual exclusion",
						"writer %d entered the CS at step %d while %d writers and %d readers were inside",
						e.Proc, e.Step, writersIn, readersIn)
				}
				writersIn++
			}
		case ccsim.EvBeginExit:
			if e.Reader {
				readersIn--
			} else {
				writersIn--
			}
		}
	}
	return nil
}

// FCFSWriters checks P3: if write attempt a doorway-precedes write
// attempt b, then b does not enter the CS before a.
func FCFSWriters(attempts []*Attempt) *Violation {
	var writes []*Attempt
	for _, a := range attempts {
		if !a.Reader {
			writes = append(writes, a)
		}
	}
	for _, a := range writes {
		for _, b := range writes {
			if a == b || !a.DoorwayPrecedes(b) {
				continue
			}
			if b.EnterCS < a.EnterCS {
				return violationf("P3 FCFS among writers",
					"writer %d/%d doorway-precedes writer %d/%d but entered the CS later (steps %d vs %d)",
					a.Proc, a.Index, b.Proc, b.Index, a.EnterCS, b.EnterCS)
			}
		}
	}
	return nil
}

// BoundedSections checks that every completed attempt's doorway and
// exit section used at most bound of the process's own steps (the
// paper requires a bounded doorway by definition of the Try section,
// and bounded exit is property P2).
func BoundedSections(stats []ccsim.AttemptStat, bound int64) *Violation {
	for _, s := range stats {
		if s.DoorwaySteps > bound {
			return violationf("bounded doorway",
				"proc %d attempt %d took %d doorway steps (bound %d)", s.Proc, s.Attempt, s.DoorwaySteps, bound)
		}
		if s.ExitSteps > bound {
			return violationf("P2 bounded exit",
				"proc %d attempt %d took %d exit steps (bound %d)", s.Proc, s.Attempt, s.ExitSteps, bound)
		}
	}
	return nil
}

// csIntervals returns the sorted [EnterCS, ExitBeg) occupancy
// intervals of the given attempts; attempts that never exited extend
// to Never.
func csIntervals(attempts []*Attempt, onlyWriters bool) [][2]int64 {
	var iv [][2]int64
	for _, a := range attempts {
		if a.EnterCS == Never {
			continue
		}
		if onlyWriters && a.Reader {
			continue
		}
		end := a.ExitBeg
		if end == Never {
			end = Never
		}
		iv = append(iv, [2]int64{a.EnterCS, end})
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	return iv
}

// overlaps reports whether any interval in iv intersects [lo, hi).
func overlaps(iv [][2]int64, lo, hi int64) bool {
	if lo >= hi {
		return false
	}
	i := sort.Search(len(iv), func(i int) bool { return iv[i][1] > lo })
	return i < len(iv) && iv[i][0] < hi
}

// readerPriorityRelated implements Definition 3 (r >rp w):
// r doorway-precedes w, or there is a time when some process is in the
// CS, r is in the waiting room, and w is in the Try section.
func readerPriorityRelated(r, w *Attempt, anyCS [][2]int64) bool {
	if r.DoorwayPrecedes(w) {
		return true
	}
	// r in waiting room: [DoorEnd, EnterCS); w in Try: [Begin, EnterCS).
	lo := max64(r.DoorEnd, w.Begin)
	hi := min64(r.EnterCS, w.EnterCS)
	return overlaps(anyCS, lo, hi)
}

// writerPriorityRelated implements Definition 4 (w >wp r):
// w doorway-precedes r, or there is a time when some WRITER is in the
// CS, w is in the waiting room, and r is in the Try section.
func writerPriorityRelated(w, r *Attempt, writerCS [][2]int64) bool {
	if w.DoorwayPrecedes(r) {
		return true
	}
	lo := max64(w.DoorEnd, r.Begin)
	hi := min64(w.EnterCS, r.EnterCS)
	return overlaps(writerCS, lo, hi)
}

// ReaderPriority checks RP1: if r >rp w then w does not enter the CS
// before r.
func ReaderPriority(attempts []*Attempt) *Violation {
	anyCS := csIntervals(attempts, false)
	for _, r := range attempts {
		if !r.Reader {
			continue
		}
		for _, w := range attempts {
			if w.Reader {
				continue
			}
			if readerPriorityRelated(r, w, anyCS) && w.EnterCS < r.EnterCS {
				return violationf("RP1 reader priority",
					"read attempt %d/%d >rp write attempt %d/%d, but the writer entered the CS first (steps %d vs %d)",
					r.Proc, r.Index, w.Proc, w.Index, r.EnterCS, w.EnterCS)
			}
		}
	}
	return nil
}

// WriterPriority checks WP1: if w >wp r then r does not enter the CS
// before w.
func WriterPriority(attempts []*Attempt) *Violation {
	writerCS := csIntervals(attempts, true)
	for _, w := range attempts {
		if w.Reader {
			continue
		}
		for _, r := range attempts {
			if !r.Reader {
				continue
			}
			if writerPriorityRelated(w, r, writerCS) && r.EnterCS < w.EnterCS {
				return violationf("WP1 writer priority",
					"write attempt %d/%d >wp read attempt %d/%d, but the reader entered the CS first (steps %d vs %d)",
					w.Proc, w.Index, r.Proc, r.Index, w.EnterCS, r.EnterCS)
			}
		}
	}
	return nil
}

// WriterBypasses returns, for the worst-affected write attempt, how
// many other write attempts with strictly later doorways entered the
// CS before it.  FCFS locks (P3) score 0; locks without writer
// ordering (e.g. the centralized baseline) can score arbitrarily high
// — the metric quantifies the fairness half of the paper's claims.
func WriterBypasses(attempts []*Attempt) int {
	worst := 0
	for _, a := range attempts {
		if a.Reader {
			continue
		}
		n := 0
		for _, b := range attempts {
			if b.Reader || a == b {
				continue
			}
			if a.DoorwayPrecedes(b) && b.EnterCS < a.EnterCS {
				n++
			}
		}
		if n > worst {
			worst = n
		}
	}
	return worst
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
