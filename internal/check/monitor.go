package check

import (
	"rwsync/internal/ccsim"
)

// attemptState tracks a live attempt for the online monitor.
type attemptState struct {
	proc    int
	reader  bool
	begin   int64 // step the doorway began
	doorEnd int64 // step the doorway completed; Never until then
	inCS    bool
	// entered records that the attempt has (ever) entered the CS; FIFE
	// and unstoppable-reader probes apply only to attempts still on
	// their way in, not to attempts already in the CS or exit section.
	entered bool
}

// Monitor is an online event sink that checks properties requiring
// enabledness probes at specific moments of the run:
//
//   - FIFE (P4): when a read attempt r' enters the CS, every read
//     attempt that doorway-precedes it and has not yet entered must be
//     enabled (Definition 2, decided by a solo-run probe).
//   - Unstoppable reader, part 1 (RP2.1): when a reader is in the CS,
//     every reader in the waiting room must be enabled.
//
// It also performs the same streaming occupancy check as
// MutualExclusion so that violations surface immediately.
type Monitor struct {
	R *ccsim.Runner
	// EnabledBound is the own-step bound b used by probes.
	EnabledBound int
	// FIFE enables the first-in-first-enabled probe on reader CS entry.
	FIFE bool
	// UnstoppableReader enables the RP2.1 probe on reader CS entry.
	UnstoppableReader bool

	// Trace accumulates all events for offline checking.
	Trace Trace

	// Violations collects everything found; the run is not stopped.
	Violations []*Violation

	active    map[int]*attemptState // keyed by proc id
	readersIn int
	writersIn int
}

// NewMonitor builds a monitor for runner r with probe bound bound.
func NewMonitor(r *ccsim.Runner, bound int) *Monitor {
	return &Monitor{R: r, EnabledBound: bound, active: make(map[int]*attemptState)}
}

// Record implements ccsim.EventSink.
func (m *Monitor) Record(e ccsim.Event) {
	m.Trace.Record(e)
	switch e.Kind {
	case ccsim.EvBeginDoorway:
		m.active[e.Proc] = &attemptState{proc: e.Proc, reader: e.Reader, begin: e.Step, doorEnd: Never}
	case ccsim.EvEndDoorway:
		if a := m.active[e.Proc]; a != nil {
			a.doorEnd = e.Step
		}
	case ccsim.EvEnterCS:
		m.onEnterCS(e)
	case ccsim.EvBeginExit:
		if e.Reader {
			m.readersIn--
		} else {
			m.writersIn--
		}
		if a := m.active[e.Proc]; a != nil {
			a.inCS = false
		}
	case ccsim.EvEndExit:
		delete(m.active, e.Proc)
	}
}

func (m *Monitor) onEnterCS(e ccsim.Event) {
	// Streaming mutual exclusion.
	if e.Reader {
		if m.writersIn > 0 {
			m.Violations = append(m.Violations, violationf("P1 mutual exclusion",
				"reader %d entered the CS at step %d while a writer was inside", e.Proc, e.Step))
		}
		m.readersIn++
	} else {
		if m.writersIn > 0 || m.readersIn > 0 {
			m.Violations = append(m.Violations, violationf("P1 mutual exclusion",
				"writer %d entered the CS at step %d while occupied (%dw/%dr)", e.Proc, e.Step, m.writersIn, m.readersIn))
		}
		m.writersIn++
	}
	cur := m.active[e.Proc]
	if cur != nil {
		cur.inCS = true
		cur.entered = true
	}
	if !e.Reader || cur == nil {
		return
	}

	// A reader just entered the CS: probe the properties that this
	// configuration triggers.
	for _, a := range m.active {
		if !a.reader || a.proc == e.Proc || a.entered {
			continue
		}
		// FIFE: a doorway-precedes the entering attempt, yet the
		// entering attempt got in first — a must now be enabled.
		fife := m.FIFE && a.doorEnd != Never && a.doorEnd < cur.begin
		// RP2.1: a reader occupies the CS; every reader in the
		// waiting room (doorway complete, not yet in CS) must be
		// enabled.
		unstoppable := m.UnstoppableReader && a.doorEnd != Never
		if !fife && !unstoppable {
			continue
		}
		if !m.R.EnabledToEnterCS(a.proc, m.EnabledBound) {
			prop := "P4 FIFE among readers"
			if !fife {
				prop = "RP2.1 unstoppable reader"
			}
			m.Violations = append(m.Violations, violationf(prop,
				"reader %d (doorway done at %d) not enabled when reader %d entered the CS at step %d",
				a.proc, a.doorEnd, e.Proc, e.Step))
		}
	}
}

// RunOpts configures RunChecked.
type RunOpts struct {
	// Attempts per process (0 = unlimited; then MaxSteps bounds the run).
	Attempts int
	// MaxSteps bounds the run length.
	MaxSteps int64
	// Sched drives the interleaving.
	Sched ccsim.Scheduler
	// EnabledBound is the probe bound (own steps to reach the CS).
	EnabledBound int
	// FIFE / UnstoppableReader select the online probes.
	FIFE              bool
	UnstoppableReader bool
	// Invariant, if non-nil, is evaluated every InvariantEvery steps
	// (default 1) and after the final step.
	Invariant      func(*ccsim.Runner) error
	InvariantEvery int64
	// SectionBound checks bounded doorway / bounded exit (P2) on every
	// completed attempt; 0 disables.
	SectionBound int64
}

// RunResult is the outcome of RunChecked.
type RunResult struct {
	Trace      *Trace
	Stats      []ccsim.AttemptStat
	Violations []*Violation
	// Incomplete is set when the step budget ran out before all
	// processes finished (potential starvation/livelock under the
	// given scheduler).
	Incomplete bool
}

// FirstViolation returns the first recorded violation, or nil.
func (r *RunResult) FirstViolation() *Violation {
	if len(r.Violations) == 0 {
		return nil
	}
	return r.Violations[0]
}

// RunChecked executes a monitored run of the runner under opts,
// performing online probes, periodic invariant evaluation, and the
// full battery of offline trace checks afterwards.
func RunChecked(r *ccsim.Runner, opts RunOpts) *RunResult {
	if opts.Sched == nil {
		opts.Sched = ccsim.NewRoundRobin()
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 1 << 22
	}
	every := opts.InvariantEvery
	if every <= 0 {
		every = 1
	}

	r.AttemptsPerProc = opts.Attempts
	r.CollectStats = true
	mon := NewMonitor(r, opts.EnabledBound)
	mon.FIFE = opts.FIFE
	mon.UnstoppableReader = opts.UnstoppableReader
	r.Sink = mon

	res := &RunResult{Trace: &mon.Trace}
	for !r.AllDone() {
		if r.TotalSteps >= opts.MaxSteps {
			res.Incomplete = true
			break
		}
		id := opts.Sched.Next(r.Active(), r.TotalSteps)
		r.StepProc(id)
		if opts.Invariant != nil && r.TotalSteps%every == 0 {
			if err := opts.Invariant(r); err != nil {
				res.Violations = append(res.Violations, violationf("invariant", "%v (step %d)", err, r.TotalSteps))
				break
			}
		}
	}
	if opts.Invariant != nil {
		if err := opts.Invariant(r); err != nil {
			res.Violations = append(res.Violations, violationf("invariant", "%v (final)", err))
		}
	}

	res.Stats = r.Stats
	res.Violations = append(res.Violations, mon.Violations...)
	if v := MutualExclusion(&mon.Trace); v != nil {
		res.Violations = append(res.Violations, v)
	}
	if opts.SectionBound > 0 {
		if v := BoundedSections(r.Stats, opts.SectionBound); v != nil {
			res.Violations = append(res.Violations, v)
		}
	}
	return res
}
