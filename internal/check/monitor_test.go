package check

import (
	"testing"

	"rwsync/internal/ccsim"
)

// gateSystem builds a 3-process system (1 opener "writer", 2 waiting
// "readers") whose readers block on a gate the writer opens, giving
// the monitor deterministic material to probe.
func gateSystem() (*ccsim.Memory, []*ccsim.Program) {
	m := ccsim.NewMemory(3)
	gate := m.NewVar("gate", ccsim.KindRW, 0)
	writer := &ccsim.Program{
		Name: "opener",
		Instrs: []ccsim.Instr{
			func(c *ccsim.Ctx) int { return 1 },
			func(c *ccsim.Ctx) int { c.Read(gate); return 2 }, // doorway
			func(c *ccsim.Ctx) int { return 3 },               // CS
			func(c *ccsim.Ctx) int { c.Write(gate, 1); return 0 },
		},
		Phases: []ccsim.Phase{ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseCS, ccsim.PhaseExit},
	}
	reader := &ccsim.Program{
		Name:   "gated-reader",
		Reader: true,
		Instrs: []ccsim.Instr{
			func(c *ccsim.Ctx) int { return 1 },
			func(c *ccsim.Ctx) int { c.Read(gate); return 2 }, // doorway
			func(c *ccsim.Ctx) int { // waiting room
				if c.Read(gate) != 0 {
					return 3
				}
				return 2
			},
			func(c *ccsim.Ctx) int { return 4 }, // CS
			func(c *ccsim.Ctx) int { c.Read(gate); return 0 },
		},
		Phases: []ccsim.Phase{ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting, ccsim.PhaseCS, ccsim.PhaseExit},
	}
	return m, []*ccsim.Program{writer, reader, reader}
}

func TestMonitorFIFEProbePasses(t *testing.T) {
	// Both readers wait on the same gate; when one enters, the other
	// is enabled (the gate stays open): no FIFE violation.
	m, progs := gateSystem()
	r, err := ccsim.NewRunner(m, progs, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := RunChecked(r, RunOpts{
		Attempts:     1,
		Sched:        ccsim.NewRoundRobin(),
		EnabledBound: 16,
		FIFE:         true,
	})
	if v := res.FirstViolation(); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
}

// TestMonitorFIFEProbeCatchesViolation crafts a lock where FIFE truly
// fails: the gate CLOSES after admitting one reader, so the reader
// left behind — which doorway-preceded the one that got in — is not
// enabled.
func TestMonitorFIFEProbeCatchesViolation(t *testing.T) {
	m := ccsim.NewMemory(2)
	gate := m.NewVar("gate", ccsim.KindCAS, 1)
	// A turnstile reader: it enters the CS by atomically slamming the
	// gate shut behind it, so the reader left waiting is NOT enabled.
	reader := &ccsim.Program{
		Name:   "turnstile",
		Reader: true,
		Instrs: []ccsim.Instr{
			func(c *ccsim.Ctx) int { return 1 },
			func(c *ccsim.Ctx) int { c.Read(gate); return 2 }, // doorway
			func(c *ccsim.Ctx) int { // waiting room: CAS through the gate
				if c.CAS(gate, 1, 0) {
					return 3
				}
				return 2
			},
			func(c *ccsim.Ctx) int { return 4 },               // CS
			func(c *ccsim.Ctx) int { c.Read(gate); return 0 }, // exit (never reopens)
		},
		Phases: []ccsim.Phase{ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting, ccsim.PhaseCS, ccsim.PhaseExit},
	}
	r, err := ccsim.NewRunner(m, []*ccsim.Program{reader, reader}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Proc 0 completes its doorway FIRST, then proc 1 overtakes.
	mon := NewMonitor(r, 32)
	mon.FIFE = true
	r.Sink = mon
	r.StepProc(0)
	r.StepProc(0) // proc 0: doorway done, now waiting
	r.StepProc(1)
	r.StepProc(1) // proc 1: doorway done
	r.StepProc(1) // proc 1: CAS through the gate, into the CS
	found := false
	for _, v := range mon.Violations {
		if v.Property == "P4 FIFE among readers" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a FIFE violation; got %v", mon.Violations)
	}
}

func TestMonitorUnstoppableReaderProbe(t *testing.T) {
	// Same turnstile construction, but exercised through the
	// UnstoppableReader flag with the doorway orders swapped so FIFE
	// alone would not fire.
	m := ccsim.NewMemory(2)
	gate := m.NewVar("gate", ccsim.KindCAS, 1)
	reader := &ccsim.Program{
		Name:   "turnstile",
		Reader: true,
		Instrs: []ccsim.Instr{
			func(c *ccsim.Ctx) int { return 1 },
			func(c *ccsim.Ctx) int { c.Read(gate); return 2 },
			func(c *ccsim.Ctx) int {
				if c.CAS(gate, 1, 0) {
					return 3
				}
				return 2
			},
			func(c *ccsim.Ctx) int { return 4 },
			func(c *ccsim.Ctx) int { c.Read(gate); return 0 },
		},
		Phases: []ccsim.Phase{ccsim.PhaseRemainder, ccsim.PhaseDoorway, ccsim.PhaseWaiting, ccsim.PhaseCS, ccsim.PhaseExit},
	}
	r, err := ccsim.NewRunner(m, []*ccsim.Program{reader, reader}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(r, 32)
	mon.UnstoppableReader = true
	r.Sink = mon
	// Proc 1 enters the CS first; proc 0's doorway completes later,
	// so FIFE does not relate them — but RP2.1 still requires the
	// waiting reader to be enabled while a reader occupies the CS.
	r.StepProc(1)
	r.StepProc(1) // proc 1 doorway done
	r.StepProc(0)
	r.StepProc(0) // proc 0 doorway done (later)
	r.StepProc(1) // proc 1 CASes through the gate into the CS
	found := false
	for _, v := range mon.Violations {
		if v.Property == "RP2.1 unstoppable reader" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an RP2.1 violation; got %v", mon.Violations)
	}
}

func TestMonitorStreamingMutex(t *testing.T) {
	// Two writers entering the CS back-to-back without exits must
	// trip the streaming occupancy check.
	mon := NewMonitor(nil, 0)
	mon.Record(ccsim.Event{Step: 1, Proc: 0, Kind: ccsim.EvBeginDoorway})
	mon.Record(ccsim.Event{Step: 2, Proc: 0, Kind: ccsim.EvEnterCS})
	mon.Record(ccsim.Event{Step: 3, Proc: 1, Kind: ccsim.EvBeginDoorway})
	mon.Record(ccsim.Event{Step: 4, Proc: 1, Kind: ccsim.EvEnterCS})
	if len(mon.Violations) == 0 {
		t.Fatal("expected a streaming mutual-exclusion violation")
	}
}
