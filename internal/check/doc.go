// Package check verifies the paper's behavioural properties against
// simulator runs: the Section 2 specification — mutual exclusion (P1),
// bounded exit (P2), FCFS among writers (P3), FIFE among readers (P4),
// concurrent entering (P5), livelock/starvation freedom (P6/P7) — and
// the priority relations that distinguish the three disciplines
// (RP1/RP2 for reader priority, Section 4; WP1/WP2 for writer
// priority, Section 3).
//
// Two complementary mechanisms are provided:
//
//   - Trace: an offline event log assembled into per-attempt records,
//     over which the pairwise and interval-based properties are
//     decided exactly;
//   - Monitor: an online event sink that, at the moments the
//     definitions quantify over, issues "enabledness probes"
//     (Runner.EnabledToEnterCS — the paper's Definition 2 made
//     operational) for FIFE and the unstoppable-reader/writer
//     properties.
//
// The package is the oracle behind cmd/rwcheck's monitored random
// stress section and the property assertions in internal/core's tests;
// the exhaustive counterpart over all interleavings is internal/mc.
package check
