// Package rwsync reproduces Bhatt & Jayanti, "Constant RMR Solutions
// to Reader Writer Synchronization" (Dartmouth TR2010-662, PODC 2010)
// as a production-quality Go library.
//
// The importable artifact is the rwlock subpackage: reader-writer
// locks with O(1) remote-memory-reference complexity on
// cache-coherent machines, in writer-priority, reader-priority and
// no-priority (starvation-free) flavors.
//
// The internal packages form the research substrate: a
// cache-coherent-machine simulator with exact RMR accounting
// (internal/ccsim), step-accurate encodings of the paper's Figures 1-4
// plus baselines and deliberately broken variants (internal/core), an
// explicit-state model checker (internal/mc), trace- and probe-based
// property checkers (internal/check), and the experiment harness
// (internal/harness) behind cmd/rmrbench, cmd/rwbench, cmd/rwcheck and
// the repository-level benchmarks in bench_test.go.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package rwsync
