// Package rwsync reproduces Bhatt & Jayanti, "Constant RMR Solutions
// to Reader Writer Synchronization" (Dartmouth TR2010-662, PODC 2010)
// as a production-quality Go library.
//
// The importable artifact is the rwlock subpackage: reader-writer
// locks with O(1) remote-memory-reference complexity on
// cache-coherent machines, in writer-priority, reader-priority and
// no-priority (starvation-free) flavors — plus rwlock.Bravo, a
// BRAVO-style sharded reader fast path (Dice & Kogan, arXiv:1810.01553)
// that layers multicore reader scalability over any of them, a
// pluggable writer-arbitration layer (an unbounded MCS queue by
// default, the paper's bounded Anderson array via
// rwlock.WithBoundedWriters, and a flat-combining batcher via
// rwlock.WithCombiningWriters that retires whole batches of
// closure-path writes per lock handoff), and a pluggable waiting layer
// (rwlock.WithWaitStrategy) that realizes every wait either as the
// paper's cooperative busy-wait (SpinYield) or as bounded spinning
// followed by parking (SpinThenPark, for the oversubscribed regime
// where goroutines outnumber GOMAXPROCS).
//
// The internal packages form the research substrate: a
// cache-coherent-machine simulator with exact RMR accounting
// (internal/ccsim), step-accurate encodings of the paper's Figures 1-4
// plus baselines and deliberately broken variants (internal/core), an
// explicit-state model checker (internal/mc), trace- and probe-based
// property checkers (internal/check), and the experiment harness
// (internal/harness) behind cmd/rmrbench, cmd/rwbench, cmd/rwcheck and
// the repository-level benchmarks in bench_test.go.
//
// See README.md for a tour of the layout, the quickstart, and how to
// run the benchmarks and the model checker.
package rwsync
