package rwmap

import (
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"rwsync/rwlock"
)

// Adaptive per-stripe lock promotion.
//
// BRAVO's argument (arXiv:1810.01553) is that read bias should follow
// observed traffic; this file applies the same argument one level up,
// to which stripes deserve a full-fat lock at all.  Every stripe
// starts on a 16-byte Slim lock.  A sampled traffic counter — one
// packed word per stripe, touched by 1-in-SampleEvery operations so
// the cold fast path pays ~nothing — finds the stripes whose observed
// rate crosses the promotion threshold, and just those get a full
// Bravo/Epoch wrapper over the shared reader arena: near-full-wrapper
// hot-key throughput at near-Slim memory.  When a promoted stripe
// cools it demotes back to its original Slim lock, returning its slot
// in the hot-set budget.
//
// Decisions are windowed: the global sampled-op counter is sliced
// into windows of WindowLen sampled ops, each stripe's counter word
// packs (window tag | hits in that window), and a stripe promotes the
// moment its in-window hits reach PromoteAt.  Demotion is the
// low-duty-cycle maintainer: the sampled op that crosses a window
// boundary sweeps the promoted list — O(hot-set budget), never
// O(stripes), and no goroutine per stripe (or at all) — demoting
// stripes whose previous window stayed under DemoteBelow.
//
// The swap protocol lives in stripe.swap / stripe.rlock: publish the
// new bundle while holding the old lock's write passage, and make
// every acquirer revalidate the published bundle after acquiring.

// Protocol selects the lock family an adaptive Map builds: the Slim
// cold build and the matching full wrapper hot stripes promote to.
type Protocol int

const (
	// PromoteBravo (the default) runs SlimBravo cold stripes and
	// promotes to Bravo(MWSF) on the shared arena.
	PromoteBravo Protocol = iota
	// PromoteEpoch runs SlimEpoch cold stripes and promotes to
	// Epoch(MWSF) on the shared arena.
	PromoteEpoch
)

// AdaptiveConfig tunes WithAdaptiveLocks.  The zero value of every
// field but HotSet is replaced by the documented default; HotSet must
// be positive for the config to mean anything.
type AdaptiveConfig struct {
	// HotSet bounds how many stripes may hold a promoted full wrapper
	// at once — the memory budget.  Each promoted stripe costs a full
	// wrapper (~2 KB on the shared arena) against the Slim lock's 16
	// bytes; the budget caps the grid's bytes high-water at
	// coldBytes + HotSet×wrapperBytes regardless of traffic.
	HotSet int
	// Protocol selects the cold/hot lock family (default PromoteBravo).
	Protocol Protocol
	// SampleEvery is the sampling rate: each operation consults the
	// traffic counter with probability 1/SampleEvery (rounded up to a
	// power of two; default 64).  1 samples every op — exact counts,
	// and with single-threaded traffic fully deterministic, which is
	// what the determinism tests pin.
	SampleEvery int
	// WindowLen is the decision window in sampled ops (default 1024).
	WindowLen int
	// PromoteAt promotes a stripe when its sampled hits within one
	// window reach this count (default 8).
	PromoteAt int
	// DemoteBelow demotes a promoted stripe when a full window passes
	// with fewer sampled hits than this (default 2).  Must be at most
	// PromoteAt; the gap is the hysteresis that keeps a stripe on the
	// boundary from thrashing through promote/demote swaps.
	DemoteBelow int
	// Table is the shared reader arena promoted wrappers claim slots
	// in (default rwlock.DefaultReaderTable — the same arena the Slim
	// cold stripes use).
	Table *rwlock.ReaderTable
}

// WithAdaptiveLocks turns on adaptive per-stripe lock promotion.
// Incompatible with WithLockFactory: adaptive mode owns the stripe
// locks on both ends of the swap.
func WithAdaptiveLocks(c AdaptiveConfig) Option {
	if c.HotSet <= 0 {
		panic("rwmap: WithAdaptiveLocks needs a positive HotSet budget")
	}
	return func(cfg *config) { cfg.adaptive = c }
}

// WithHotSet is WithAdaptiveLocks with every knob but the hot-set
// budget at its default.
func WithHotSet(n int) Option {
	return WithAdaptiveLocks(AdaptiveConfig{HotSet: n})
}

// coldFactory returns the constructor for the unpromoted stripes.
func (c AdaptiveConfig) coldFactory() func() rwlock.RWLock {
	if c.Protocol == PromoteEpoch {
		return func() rwlock.RWLock { return rwlock.NewSlimEpoch() }
	}
	return func() rwlock.RWLock { return rwlock.NewSlimBravo() }
}

// adaptive is the per-Map promotion state.  The two sampled-path
// atomic words are padded apart from each other and from the
// read-mostly configuration so the sampler's cross-stripe write
// traffic does not invalidate the lines the op fast path loads.  The
// per-stripe counters deliberately are not line-padded each: at 2^20
// stripes a cache line per counter would cost 4x the Slim grid it is
// budgeting for, so they live in their own dedicated array (8 bytes a
// stripe, no sharing with the stripe structs the unsampled fast path
// reads) and only 1-in-SampleEvery ops dirty a line of it.
type adaptive struct {
	proto       Protocol
	tbl         *rwlock.ReaderTable
	sampleMask  uint64 // SampleEvery-1; 0 samples every op
	windowLen   uint64
	promoteAt   uint32
	demoteBelow uint32
	budget      int

	// hits is the per-stripe traffic counter array: window tag in the
	// high 32 bits, sampled hits within that window in the low 32.
	hits []atomic.Uint64

	_       [64]byte
	sampled atomic.Uint64 // total sampled ops; window = sampled/windowLen
	_       [56]byte

	// mu serializes the maintainer: promotions, the window sweep, and
	// the Stats snapshot.  The sampled fast path never takes it — only
	// threshold crossings and window boundaries do.
	mu         sync.Mutex
	hot        []uint32 // promoted stripe indices, unordered
	hotMax     int
	promotions int64
	demotions  int64
}

func newAdaptive(c AdaptiveConfig, stripes int) *adaptive {
	if c.SampleEvery < 1 {
		c.SampleEvery = 64
	}
	if c.SampleEvery&(c.SampleEvery-1) != 0 {
		c.SampleEvery = 1 << bits.Len(uint(c.SampleEvery))
	}
	if c.WindowLen < 1 {
		c.WindowLen = 1024
	}
	if c.PromoteAt < 1 {
		c.PromoteAt = 8
	}
	if c.DemoteBelow < 1 {
		c.DemoteBelow = 2
	}
	if c.DemoteBelow > c.PromoteAt {
		c.DemoteBelow = c.PromoteAt
	}
	if c.Table == nil {
		c.Table = rwlock.DefaultReaderTable()
	}
	return &adaptive{
		proto:       c.Protocol,
		tbl:         c.Table,
		sampleMask:  uint64(c.SampleEvery - 1),
		windowLen:   uint64(c.WindowLen),
		promoteAt:   uint32(c.PromoteAt),
		demoteBelow: uint32(c.DemoteBelow),
		budget:      c.HotSet,
		hits:        make([]atomic.Uint64, stripes),
		hot:         make([]uint32, 0, c.HotSet),
	}
}

// sample is the 1-in-N tail of every Map operation on an adaptive
// Map.  The unsampled path is one random draw and a mask test; the
// sampled path is one atomic add and one CAS on the stripe's counter
// word.  Allocation-free in steady state — only an actual promotion
// or demotion builds anything.
func (m *Map[K, V]) sample(i uint64) {
	a := m.ad
	if a.sampleMask != 0 && rand.Uint64()&a.sampleMask != 0 {
		return
	}
	n := a.sampled.Add(1)
	w := n / a.windowLen
	c := &a.hits[i]
	for {
		old := c.Load()
		if uint32(old>>32) == uint32(w) {
			cnt := uint32(old)
			if cnt >= a.promoteAt {
				// Saturated for this window: the tag is already current
				// and recounting buys nothing.
				break
			}
			if c.CompareAndSwap(old, old+1) {
				if cnt+1 == a.promoteAt {
					m.promote(i)
				}
				break
			}
		} else if c.CompareAndSwap(old, w<<32|1) {
			break
		}
	}
	if n%a.windowLen == 0 {
		// This op crossed into window w; amortize the maintainer here.
		m.sweep(w)
	}
}

// promote swaps stripe i's Slim lock for a full wrapper on the shared
// arena, if the hot-set budget has room.  Runs on the sampled op that
// carried the stripe over the threshold, after that op released the
// stripe lock (swap re-acquires it in write mode).
func (m *Map[K, V]) promote(i uint64) {
	a := m.ad
	s := &m.stripes[i]
	if s.cur.Load().hot {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	old := s.cur.Load()
	if old.hot || len(a.hot) >= a.budget {
		// Lost the race, or the budget is spent; the stripe stays Slim
		// and may try again when a demotion frees a slot.
		return
	}
	var l rwlock.RWLock
	if a.proto == PromoteEpoch {
		l = rwlock.NewEpochShared(a.tbl, nil)
	} else {
		l = rwlock.NewBravoShared(a.tbl, nil)
	}
	nl := &stripeLock{lock: l, hot: true, cold: old}
	s.swap(old, nl)
	a.hot = append(a.hot, uint32(i))
	a.promotions++
	if len(a.hot) > a.hotMax {
		a.hotMax = len(a.hot)
	}
}

// sweep is the maintainer: on entry to window w it walks the promoted
// list — O(budget), never O(stripes) — and demotes every stripe whose
// previous window stayed under DemoteBelow, republishing the original
// Slim bundle stashed at promotion.  The abandoned wrapper is garbage
// once the last straggler backs out of it.
func (m *Map[K, V]) sweep(w uint64) {
	a := m.ad
	a.mu.Lock()
	defer a.mu.Unlock()
	kept := a.hot[:0]
	for _, i := range a.hot {
		word := a.hits[i].Load()
		tag, cnt := uint32(word>>32), uint32(word)
		if tag == uint32(w) || (tag == uint32(w-1) && cnt >= a.demoteBelow) {
			kept = append(kept, i)
			continue
		}
		s := &m.stripes[i]
		hotSL := s.cur.Load()
		s.swap(hotSL, hotSL.cold)
		a.demotions++
	}
	a.hot = kept
}

// MapStats is a snapshot of the adaptive promotion state.  On a
// non-adaptive Map only Adaptive=false is meaningful.
type MapStats struct {
	Adaptive     bool
	HotSetBudget int   // the WithHotSet/WithAdaptiveLocks budget
	HotSetSize   int   // stripes currently promoted
	HotSetMax    int   // high-water mark of HotSetSize
	Promotions   int64 // total Slim→full swaps
	Demotions    int64 // total full→Slim swaps
	SampledOps   uint64
	Hot          []int // currently promoted stripe indices, sorted
}

// Stats snapshots the adaptive promotion counters.
func (m *Map[K, V]) Stats() MapStats {
	a := m.ad
	if a == nil {
		return MapStats{}
	}
	a.mu.Lock()
	st := MapStats{
		Adaptive:     true,
		HotSetBudget: a.budget,
		HotSetSize:   len(a.hot),
		HotSetMax:    a.hotMax,
		Promotions:   a.promotions,
		Demotions:    a.demotions,
		SampledOps:   a.sampled.Load(),
		Hot:          make([]int, len(a.hot)),
	}
	for i, idx := range a.hot {
		st.Hot[i] = int(idx)
	}
	a.mu.Unlock()
	sort.Ints(st.Hot)
	return st
}
