package rwmap

import (
	"sync"
	"testing"

	"rwsync/rwlock"
)

// TestStripeRounding: the stripe count is clamped to [1, 1<<20] and
// rounded UP to a power of two — the mask indexing depends on it.
func TestStripeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {-5, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {1000, 1024},
		{1 << 20, 1 << 20}, {1<<20 + 1, 1 << 20}, {1 << 25, 1 << 20},
	} {
		m := New[int, int](WithStripes(tc.in))
		if got := m.Stripes(); got != tc.want {
			t.Errorf("WithStripes(%d): %d stripes, want %d", tc.in, got, tc.want)
		}
	}
	if got := New[int, int]().Stripes(); got != defaultStripes {
		t.Errorf("default stripes = %d, want %d", got, defaultStripes)
	}
}

// TestBasicOps: the sequential contract of the whole surface.
func TestBasicOps(t *testing.T) {
	m := New[string, int](WithStripes(8))
	if _, ok := m.Get("a"); ok {
		t.Fatal("Get on empty map reported a value")
	}
	m.Put("a", 1)
	m.Put("b", 2)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v, want 1,true", v, ok)
	}
	if n := m.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	m.Put("a", 10) // overwrite
	if v, _ := m.Get("a"); v != 10 {
		t.Fatalf("Get(a) after overwrite = %d, want 10", v)
	}
	m.Delete("a")
	if _, ok := m.Get("a"); ok {
		t.Fatal("Get(a) after Delete reported a value")
	}
	m.Delete("never-there") // deleting a missing key is a no-op
	if n := m.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}

	var got int
	var had bool
	m.Read("b", func(v int, ok bool) { got, had = v, ok })
	if !had || got != 2 {
		t.Fatalf("Read(b) = %d,%v, want 2,true", got, had)
	}
}

// TestUpdate: read-modify-write atomicity surface — insert, mutate,
// and delete through the closure, including the missing-key case.
func TestUpdate(t *testing.T) {
	m := New[string, int](WithStripes(4))
	m.Update("ctr", func(v int, ok bool) (int, bool) {
		if ok {
			t.Error("Update saw a value in an empty map")
		}
		return 1, true
	})
	m.Update("ctr", func(v int, ok bool) (int, bool) {
		if !ok || v != 1 {
			t.Errorf("Update saw %d,%v, want 1,true", v, ok)
		}
		return v + 1, true
	})
	if v, _ := m.Get("ctr"); v != 2 {
		t.Fatalf("ctr = %d, want 2", v)
	}
	m.Update("ctr", func(v int, ok bool) (int, bool) { return 0, false }) // delete
	if _, ok := m.Get("ctr"); ok {
		t.Fatal("entry survived an Update that returned keep=false")
	}
	// keep=false on a missing key must stay a no-op, not a phantom
	// delete of something else.
	m.Update("ghost", func(v int, ok bool) (int, bool) { return 0, false })
	if n := m.Len(); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
}

// TestRange: full walk, early stop, and the per-stripe lock release
// on the early-return path (a leaked RLock would deadlock the writer
// below).
func TestRange(t *testing.T) {
	m := New[int, int](WithStripes(8))
	for i := 0; i < 100; i++ {
		m.Put(i, i*i)
	}
	seen := map[int]int{}
	m.Range(func(k, v int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("Range visited %d entries, want 100", len(seen))
	}
	for k, v := range seen {
		if v != k*k {
			t.Fatalf("Range saw %d -> %d, want %d", k, v, k*k)
		}
	}
	calls := 0
	m.Range(func(k, v int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early-stop Range made %d calls, want 1", calls)
	}
	// All stripe locks must be free again.
	for i := 0; i < 100; i++ {
		m.Put(i, 0)
	}
}

// TestLockOf: the measurement seam — the same key always maps to the
// same lock, and that lock really guards the key (a held write lock
// blocks the key's Get path, proven here by TryRLock).
func TestLockOf(t *testing.T) {
	m := New[string, int](WithStripes(16))
	if m.LockOf("k") != m.LockOf("k") {
		t.Fatal("LockOf not stable for a key")
	}
	l := m.LockOf("k")
	wt := l.Lock()
	if tl, ok := l.(rwlock.TryRWLock); ok {
		if _, got := tl.TryRLock(); got {
			t.Fatal("TryRLock succeeded while the stripe writer held")
		}
	}
	l.Unlock(wt)
	m.Put("k", 1) // and the stripe still works after direct lock use
}

// mapFactories is the lock-factory matrix the concurrency tests run
// over: the slim default, both full fast-path wrappers (one on a
// shared arena), a flat-combining lock (Update batches through its
// closure path), and the plain paper lock.
func mapFactories() map[string]Option {
	shared := rwlock.NewReaderTable(64)
	return map[string]Option{
		"SlimBravo-default": WithLockFactory(func() rwlock.RWLock { return rwlock.NewSlimBravo() }),
		"SlimEpoch":         WithLockFactory(func() rwlock.RWLock { return rwlock.NewSlimEpoch() }),
		"Bravo-shared":      WithLockFactory(func() rwlock.RWLock { return rwlock.NewBravoMWSF(rwlock.WithSharedReaderTable(shared)) }),
		"Epoch":             WithLockFactory(func() rwlock.RWLock { return rwlock.NewEpochMWSF() }),
		"MWSF-combine":      WithLockFactory(func() rwlock.RWLock { return rwlock.NewMWSF(rwlock.WithCombiningWriters()) }),
		"MWSF":              WithLockFactory(func() rwlock.RWLock { return rwlock.NewMWSF() }),
	}
}

// TestConcurrentUpdates: N goroutines increment M counters through
// Update; every increment must survive (lost updates = a striping or
// exclusion bug), under every lock factory.  Run with -race this also
// proves Get/Update exclusion per stripe.
func TestConcurrentUpdates(t *testing.T) {
	for name, opt := range mapFactories() {
		t.Run(name, func(t *testing.T) {
			m := New[int, int](WithStripes(8), opt)
			const goroutines, keys, iters = 8, 5, 200
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						k := (g + i) % keys
						m.Update(k, func(v int, ok bool) (int, bool) { return v + 1, true })
						m.Get(k)
					}
				}(g)
			}
			wg.Wait()
			total := 0
			m.Range(func(k, v int) bool { total += v; return true })
			if total != goroutines*iters {
				t.Fatalf("counter sum = %d, want %d (lost updates)", total, goroutines*iters)
			}
		})
	}
}

// TestConcurrentMixed: readers walk and Get while writers Put and
// Delete disjoint key ranges — the torn-state check is the race
// detector's.
func TestConcurrentMixed(t *testing.T) {
	m := New[int, [2]int](WithStripes(16))
	const writers, readers, iters = 4, 4, 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * iters
			for i := 0; i < iters; i++ {
				m.Put(base+i, [2]int{i, i})
				if i%3 == 0 {
					m.Delete(base + i)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if v, ok := m.Get(i); ok && v[0] != v[1] {
					t.Errorf("torn value %v", v)
					return
				}
				if i%64 == 0 {
					m.Range(func(k int, v [2]int) bool { return v[0] == v[1] })
				}
			}
		}()
	}
	wg.Wait()
}

// TestMillionStripes: the serving-tier scale point — a 2^20-stripe
// map on the default slim locks constructs, serves, and stays
// correct.  This is the configuration the footprint numbers exist
// for; skipped in -short.
func TestMillionStripes(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-stripe construction in -short")
	}
	m := New[uint64, uint64](WithStripes(1 << 20))
	if m.Stripes() != 1<<20 {
		t.Fatalf("Stripes = %d, want %d", m.Stripes(), 1<<20)
	}
	for i := uint64(0); i < 4096; i++ {
		m.Put(i, i)
	}
	for i := uint64(0); i < 4096; i++ {
		if v, ok := m.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if n := m.Len(); n != 4096 {
		t.Fatalf("Len = %d, want 4096", n)
	}
}
